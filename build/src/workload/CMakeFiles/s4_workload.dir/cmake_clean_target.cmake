file(REMOVE_RECURSE
  "libs4_workload.a"
)
