file(REMOVE_RECURSE
  "CMakeFiles/s4_workload.dir/capacity.cc.o"
  "CMakeFiles/s4_workload.dir/capacity.cc.o.d"
  "CMakeFiles/s4_workload.dir/microbench.cc.o"
  "CMakeFiles/s4_workload.dir/microbench.cc.o.d"
  "CMakeFiles/s4_workload.dir/postmark.cc.o"
  "CMakeFiles/s4_workload.dir/postmark.cc.o.d"
  "CMakeFiles/s4_workload.dir/ssh_build.cc.o"
  "CMakeFiles/s4_workload.dir/ssh_build.cc.o.d"
  "libs4_workload.a"
  "libs4_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
