# Empty compiler generated dependencies file for s4_workload.
# This may be replaced when dependencies are built.
