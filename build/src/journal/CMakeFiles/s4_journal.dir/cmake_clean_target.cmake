file(REMOVE_RECURSE
  "libs4_journal.a"
)
