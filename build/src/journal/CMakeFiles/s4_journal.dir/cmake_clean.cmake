file(REMOVE_RECURSE
  "CMakeFiles/s4_journal.dir/entry.cc.o"
  "CMakeFiles/s4_journal.dir/entry.cc.o.d"
  "CMakeFiles/s4_journal.dir/sector.cc.o"
  "CMakeFiles/s4_journal.dir/sector.cc.o.d"
  "libs4_journal.a"
  "libs4_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
