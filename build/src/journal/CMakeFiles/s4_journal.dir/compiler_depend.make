# Empty compiler generated dependencies file for s4_journal.
# This may be replaced when dependencies are built.
