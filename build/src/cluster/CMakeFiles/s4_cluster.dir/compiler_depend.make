# Empty compiler generated dependencies file for s4_cluster.
# This may be replaced when dependencies are built.
