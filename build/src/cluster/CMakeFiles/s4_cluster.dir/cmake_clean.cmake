file(REMOVE_RECURSE
  "CMakeFiles/s4_cluster.dir/mirrored_drive.cc.o"
  "CMakeFiles/s4_cluster.dir/mirrored_drive.cc.o.d"
  "CMakeFiles/s4_cluster.dir/striped_volume.cc.o"
  "CMakeFiles/s4_cluster.dir/striped_volume.cc.o.d"
  "libs4_cluster.a"
  "libs4_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
