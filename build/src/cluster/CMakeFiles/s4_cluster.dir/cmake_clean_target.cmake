file(REMOVE_RECURSE
  "libs4_cluster.a"
)
