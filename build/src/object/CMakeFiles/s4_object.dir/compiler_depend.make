# Empty compiler generated dependencies file for s4_object.
# This may be replaced when dependencies are built.
