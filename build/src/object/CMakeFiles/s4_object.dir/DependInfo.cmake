
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/object/inode.cc" "src/object/CMakeFiles/s4_object.dir/inode.cc.o" "gcc" "src/object/CMakeFiles/s4_object.dir/inode.cc.o.d"
  "/root/repo/src/object/object_map.cc" "src/object/CMakeFiles/s4_object.dir/object_map.cc.o" "gcc" "src/object/CMakeFiles/s4_object.dir/object_map.cc.o.d"
  "/root/repo/src/object/types.cc" "src/object/CMakeFiles/s4_object.dir/types.cc.o" "gcc" "src/object/CMakeFiles/s4_object.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s4_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/s4_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/s4_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
