file(REMOVE_RECURSE
  "CMakeFiles/s4_object.dir/inode.cc.o"
  "CMakeFiles/s4_object.dir/inode.cc.o.d"
  "CMakeFiles/s4_object.dir/object_map.cc.o"
  "CMakeFiles/s4_object.dir/object_map.cc.o.d"
  "CMakeFiles/s4_object.dir/types.cc.o"
  "CMakeFiles/s4_object.dir/types.cc.o.d"
  "libs4_object.a"
  "libs4_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
