file(REMOVE_RECURSE
  "libs4_object.a"
)
