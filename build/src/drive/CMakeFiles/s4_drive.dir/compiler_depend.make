# Empty compiler generated dependencies file for s4_drive.
# This may be replaced when dependencies are built.
