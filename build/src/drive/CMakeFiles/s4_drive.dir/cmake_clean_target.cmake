file(REMOVE_RECURSE
  "libs4_drive.a"
)
