file(REMOVE_RECURSE
  "CMakeFiles/s4_drive.dir/drive_cleaner.cc.o"
  "CMakeFiles/s4_drive.dir/drive_cleaner.cc.o.d"
  "CMakeFiles/s4_drive.dir/drive_history.cc.o"
  "CMakeFiles/s4_drive.dir/drive_history.cc.o.d"
  "CMakeFiles/s4_drive.dir/drive_ops.cc.o"
  "CMakeFiles/s4_drive.dir/drive_ops.cc.o.d"
  "CMakeFiles/s4_drive.dir/s4_drive.cc.o"
  "CMakeFiles/s4_drive.dir/s4_drive.cc.o.d"
  "libs4_drive.a"
  "libs4_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
