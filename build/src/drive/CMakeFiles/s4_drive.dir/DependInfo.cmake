
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drive/drive_cleaner.cc" "src/drive/CMakeFiles/s4_drive.dir/drive_cleaner.cc.o" "gcc" "src/drive/CMakeFiles/s4_drive.dir/drive_cleaner.cc.o.d"
  "/root/repo/src/drive/drive_history.cc" "src/drive/CMakeFiles/s4_drive.dir/drive_history.cc.o" "gcc" "src/drive/CMakeFiles/s4_drive.dir/drive_history.cc.o.d"
  "/root/repo/src/drive/drive_ops.cc" "src/drive/CMakeFiles/s4_drive.dir/drive_ops.cc.o" "gcc" "src/drive/CMakeFiles/s4_drive.dir/drive_ops.cc.o.d"
  "/root/repo/src/drive/s4_drive.cc" "src/drive/CMakeFiles/s4_drive.dir/s4_drive.cc.o" "gcc" "src/drive/CMakeFiles/s4_drive.dir/s4_drive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s4_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/s4_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/s4_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/s4_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/s4_object.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/s4_audit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
