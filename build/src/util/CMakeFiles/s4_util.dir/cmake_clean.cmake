file(REMOVE_RECURSE
  "CMakeFiles/s4_util.dir/codec.cc.o"
  "CMakeFiles/s4_util.dir/codec.cc.o.d"
  "CMakeFiles/s4_util.dir/crc32.cc.o"
  "CMakeFiles/s4_util.dir/crc32.cc.o.d"
  "CMakeFiles/s4_util.dir/logging.cc.o"
  "CMakeFiles/s4_util.dir/logging.cc.o.d"
  "CMakeFiles/s4_util.dir/rng.cc.o"
  "CMakeFiles/s4_util.dir/rng.cc.o.d"
  "CMakeFiles/s4_util.dir/status.cc.o"
  "CMakeFiles/s4_util.dir/status.cc.o.d"
  "libs4_util.a"
  "libs4_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
