file(REMOVE_RECURSE
  "libs4_util.a"
)
