# Empty dependencies file for s4_util.
# This may be replaced when dependencies are built.
