file(REMOVE_RECURSE
  "CMakeFiles/s4_recovery.dir/diagnosis.cc.o"
  "CMakeFiles/s4_recovery.dir/diagnosis.cc.o.d"
  "CMakeFiles/s4_recovery.dir/history_browser.cc.o"
  "CMakeFiles/s4_recovery.dir/history_browser.cc.o.d"
  "CMakeFiles/s4_recovery.dir/history_compaction.cc.o"
  "CMakeFiles/s4_recovery.dir/history_compaction.cc.o.d"
  "CMakeFiles/s4_recovery.dir/landmark_archive.cc.o"
  "CMakeFiles/s4_recovery.dir/landmark_archive.cc.o.d"
  "libs4_recovery.a"
  "libs4_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
