# Empty dependencies file for s4_recovery.
# This may be replaced when dependencies are built.
