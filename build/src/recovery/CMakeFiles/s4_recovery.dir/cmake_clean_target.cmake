file(REMOVE_RECURSE
  "libs4_recovery.a"
)
