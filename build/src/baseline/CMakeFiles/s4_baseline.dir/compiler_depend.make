# Empty compiler generated dependencies file for s4_baseline.
# This may be replaced when dependencies are built.
