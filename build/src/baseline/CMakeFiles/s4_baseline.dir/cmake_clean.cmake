file(REMOVE_RECURSE
  "CMakeFiles/s4_baseline.dir/conventional_versioning.cc.o"
  "CMakeFiles/s4_baseline.dir/conventional_versioning.cc.o.d"
  "CMakeFiles/s4_baseline.dir/ffs_like.cc.o"
  "CMakeFiles/s4_baseline.dir/ffs_like.cc.o.d"
  "CMakeFiles/s4_baseline.dir/snapshot_store.cc.o"
  "CMakeFiles/s4_baseline.dir/snapshot_store.cc.o.d"
  "libs4_baseline.a"
  "libs4_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
