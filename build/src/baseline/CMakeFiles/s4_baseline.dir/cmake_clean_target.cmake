file(REMOVE_RECURSE
  "libs4_baseline.a"
)
