file(REMOVE_RECURSE
  "CMakeFiles/s4_delta.dir/delta.cc.o"
  "CMakeFiles/s4_delta.dir/delta.cc.o.d"
  "CMakeFiles/s4_delta.dir/lz.cc.o"
  "CMakeFiles/s4_delta.dir/lz.cc.o.d"
  "libs4_delta.a"
  "libs4_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
