file(REMOVE_RECURSE
  "libs4_delta.a"
)
