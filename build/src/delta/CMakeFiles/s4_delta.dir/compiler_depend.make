# Empty compiler generated dependencies file for s4_delta.
# This may be replaced when dependencies are built.
