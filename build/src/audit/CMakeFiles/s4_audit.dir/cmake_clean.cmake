file(REMOVE_RECURSE
  "CMakeFiles/s4_audit.dir/audit_log.cc.o"
  "CMakeFiles/s4_audit.dir/audit_log.cc.o.d"
  "libs4_audit.a"
  "libs4_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
