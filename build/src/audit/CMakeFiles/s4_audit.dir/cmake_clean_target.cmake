file(REMOVE_RECURSE
  "libs4_audit.a"
)
