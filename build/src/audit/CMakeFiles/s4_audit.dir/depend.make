# Empty dependencies file for s4_audit.
# This may be replaced when dependencies are built.
