file(REMOVE_RECURSE
  "libs4_sim.a"
)
