# Empty compiler generated dependencies file for s4_sim.
# This may be replaced when dependencies are built.
