file(REMOVE_RECURSE
  "CMakeFiles/s4_sim.dir/block_device.cc.o"
  "CMakeFiles/s4_sim.dir/block_device.cc.o.d"
  "libs4_sim.a"
  "libs4_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
