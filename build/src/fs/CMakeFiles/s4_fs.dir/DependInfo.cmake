
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/dir_format.cc" "src/fs/CMakeFiles/s4_fs.dir/dir_format.cc.o" "gcc" "src/fs/CMakeFiles/s4_fs.dir/dir_format.cc.o.d"
  "/root/repo/src/fs/file_system.cc" "src/fs/CMakeFiles/s4_fs.dir/file_system.cc.o" "gcc" "src/fs/CMakeFiles/s4_fs.dir/file_system.cc.o.d"
  "/root/repo/src/fs/nfs_attr.cc" "src/fs/CMakeFiles/s4_fs.dir/nfs_attr.cc.o" "gcc" "src/fs/CMakeFiles/s4_fs.dir/nfs_attr.cc.o.d"
  "/root/repo/src/fs/s4_fs.cc" "src/fs/CMakeFiles/s4_fs.dir/s4_fs.cc.o" "gcc" "src/fs/CMakeFiles/s4_fs.dir/s4_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s4_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/s4_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/drive/CMakeFiles/s4_drive.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/s4_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/s4_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/s4_object.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/s4_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/s4_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
