file(REMOVE_RECURSE
  "libs4_fs.a"
)
