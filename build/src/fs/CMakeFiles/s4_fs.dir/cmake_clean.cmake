file(REMOVE_RECURSE
  "CMakeFiles/s4_fs.dir/dir_format.cc.o"
  "CMakeFiles/s4_fs.dir/dir_format.cc.o.d"
  "CMakeFiles/s4_fs.dir/file_system.cc.o"
  "CMakeFiles/s4_fs.dir/file_system.cc.o.d"
  "CMakeFiles/s4_fs.dir/nfs_attr.cc.o"
  "CMakeFiles/s4_fs.dir/nfs_attr.cc.o.d"
  "CMakeFiles/s4_fs.dir/s4_fs.cc.o"
  "CMakeFiles/s4_fs.dir/s4_fs.cc.o.d"
  "libs4_fs.a"
  "libs4_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
