# Empty compiler generated dependencies file for s4_fs.
# This may be replaced when dependencies are built.
