
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/auth.cc" "src/rpc/CMakeFiles/s4_rpc.dir/auth.cc.o" "gcc" "src/rpc/CMakeFiles/s4_rpc.dir/auth.cc.o.d"
  "/root/repo/src/rpc/client.cc" "src/rpc/CMakeFiles/s4_rpc.dir/client.cc.o" "gcc" "src/rpc/CMakeFiles/s4_rpc.dir/client.cc.o.d"
  "/root/repo/src/rpc/messages.cc" "src/rpc/CMakeFiles/s4_rpc.dir/messages.cc.o" "gcc" "src/rpc/CMakeFiles/s4_rpc.dir/messages.cc.o.d"
  "/root/repo/src/rpc/transport.cc" "src/rpc/CMakeFiles/s4_rpc.dir/transport.cc.o" "gcc" "src/rpc/CMakeFiles/s4_rpc.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s4_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/s4_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/drive/CMakeFiles/s4_drive.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/s4_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/s4_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/s4_object.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/s4_lfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
