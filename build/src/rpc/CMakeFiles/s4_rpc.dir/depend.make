# Empty dependencies file for s4_rpc.
# This may be replaced when dependencies are built.
