file(REMOVE_RECURSE
  "CMakeFiles/s4_rpc.dir/auth.cc.o"
  "CMakeFiles/s4_rpc.dir/auth.cc.o.d"
  "CMakeFiles/s4_rpc.dir/client.cc.o"
  "CMakeFiles/s4_rpc.dir/client.cc.o.d"
  "CMakeFiles/s4_rpc.dir/messages.cc.o"
  "CMakeFiles/s4_rpc.dir/messages.cc.o.d"
  "CMakeFiles/s4_rpc.dir/transport.cc.o"
  "CMakeFiles/s4_rpc.dir/transport.cc.o.d"
  "libs4_rpc.a"
  "libs4_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
