file(REMOVE_RECURSE
  "libs4_rpc.a"
)
