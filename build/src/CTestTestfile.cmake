# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("lfs")
subdirs("journal")
subdirs("object")
subdirs("cache")
subdirs("audit")
subdirs("drive")
subdirs("rpc")
subdirs("fs")
subdirs("delta")
subdirs("baseline")
subdirs("recovery")
subdirs("cluster")
subdirs("workload")
