# Empty dependencies file for s4_lfs.
# This may be replaced when dependencies are built.
