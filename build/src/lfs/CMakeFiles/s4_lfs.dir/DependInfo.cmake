
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfs/format.cc" "src/lfs/CMakeFiles/s4_lfs.dir/format.cc.o" "gcc" "src/lfs/CMakeFiles/s4_lfs.dir/format.cc.o.d"
  "/root/repo/src/lfs/scan.cc" "src/lfs/CMakeFiles/s4_lfs.dir/scan.cc.o" "gcc" "src/lfs/CMakeFiles/s4_lfs.dir/scan.cc.o.d"
  "/root/repo/src/lfs/segment_writer.cc" "src/lfs/CMakeFiles/s4_lfs.dir/segment_writer.cc.o" "gcc" "src/lfs/CMakeFiles/s4_lfs.dir/segment_writer.cc.o.d"
  "/root/repo/src/lfs/usage_table.cc" "src/lfs/CMakeFiles/s4_lfs.dir/usage_table.cc.o" "gcc" "src/lfs/CMakeFiles/s4_lfs.dir/usage_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s4_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/s4_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
