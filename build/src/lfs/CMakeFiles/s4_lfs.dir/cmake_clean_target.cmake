file(REMOVE_RECURSE
  "libs4_lfs.a"
)
