file(REMOVE_RECURSE
  "CMakeFiles/s4_lfs.dir/format.cc.o"
  "CMakeFiles/s4_lfs.dir/format.cc.o.d"
  "CMakeFiles/s4_lfs.dir/scan.cc.o"
  "CMakeFiles/s4_lfs.dir/scan.cc.o.d"
  "CMakeFiles/s4_lfs.dir/segment_writer.cc.o"
  "CMakeFiles/s4_lfs.dir/segment_writer.cc.o.d"
  "CMakeFiles/s4_lfs.dir/usage_table.cc.o"
  "CMakeFiles/s4_lfs.dir/usage_table.cc.o.d"
  "libs4_lfs.a"
  "libs4_lfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_lfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
