# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/drive_basic_test[1]_include.cmake")
include("/root/repo/build/tests/drive_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/drive_security_test[1]_include.cmake")
include("/root/repo/build/tests/drive_cleaner_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/delta_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_tools_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/lfs_test[1]_include.cmake")
include("/root/repo/build/tests/journal_object_test[1]_include.cmake")
include("/root/repo/build/tests/drive_property_test[1]_include.cmake")
include("/root/repo/build/tests/history_compaction_test[1]_include.cmake")
include("/root/repo/build/tests/drive_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/auth_test[1]_include.cmake")
include("/root/repo/build/tests/landmark_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_coverage_test[1]_include.cmake")
