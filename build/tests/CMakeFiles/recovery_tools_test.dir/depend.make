# Empty dependencies file for recovery_tools_test.
# This may be replaced when dependencies are built.
