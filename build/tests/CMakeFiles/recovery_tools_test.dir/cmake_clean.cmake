file(REMOVE_RECURSE
  "CMakeFiles/recovery_tools_test.dir/recovery_tools_test.cc.o"
  "CMakeFiles/recovery_tools_test.dir/recovery_tools_test.cc.o.d"
  "recovery_tools_test"
  "recovery_tools_test.pdb"
  "recovery_tools_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
