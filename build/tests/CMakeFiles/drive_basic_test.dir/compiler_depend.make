# Empty compiler generated dependencies file for drive_basic_test.
# This may be replaced when dependencies are built.
