file(REMOVE_RECURSE
  "CMakeFiles/drive_basic_test.dir/drive_basic_test.cc.o"
  "CMakeFiles/drive_basic_test.dir/drive_basic_test.cc.o.d"
  "drive_basic_test"
  "drive_basic_test.pdb"
  "drive_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
