# Empty dependencies file for drive_recovery_test.
# This may be replaced when dependencies are built.
