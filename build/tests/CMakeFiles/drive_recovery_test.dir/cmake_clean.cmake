file(REMOVE_RECURSE
  "CMakeFiles/drive_recovery_test.dir/drive_recovery_test.cc.o"
  "CMakeFiles/drive_recovery_test.dir/drive_recovery_test.cc.o.d"
  "drive_recovery_test"
  "drive_recovery_test.pdb"
  "drive_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
