file(REMOVE_RECURSE
  "CMakeFiles/drive_robustness_test.dir/drive_robustness_test.cc.o"
  "CMakeFiles/drive_robustness_test.dir/drive_robustness_test.cc.o.d"
  "drive_robustness_test"
  "drive_robustness_test.pdb"
  "drive_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
