# Empty dependencies file for drive_robustness_test.
# This may be replaced when dependencies are built.
