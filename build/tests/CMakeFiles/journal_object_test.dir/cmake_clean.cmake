file(REMOVE_RECURSE
  "CMakeFiles/journal_object_test.dir/journal_object_test.cc.o"
  "CMakeFiles/journal_object_test.dir/journal_object_test.cc.o.d"
  "journal_object_test"
  "journal_object_test.pdb"
  "journal_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journal_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
