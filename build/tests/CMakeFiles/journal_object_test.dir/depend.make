# Empty dependencies file for journal_object_test.
# This may be replaced when dependencies are built.
