# Empty dependencies file for drive_property_test.
# This may be replaced when dependencies are built.
