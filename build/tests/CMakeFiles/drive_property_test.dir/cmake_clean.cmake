file(REMOVE_RECURSE
  "CMakeFiles/drive_property_test.dir/drive_property_test.cc.o"
  "CMakeFiles/drive_property_test.dir/drive_property_test.cc.o.d"
  "drive_property_test"
  "drive_property_test.pdb"
  "drive_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
