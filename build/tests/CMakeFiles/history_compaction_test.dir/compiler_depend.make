# Empty compiler generated dependencies file for history_compaction_test.
# This may be replaced when dependencies are built.
