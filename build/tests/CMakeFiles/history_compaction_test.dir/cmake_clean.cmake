file(REMOVE_RECURSE
  "CMakeFiles/history_compaction_test.dir/history_compaction_test.cc.o"
  "CMakeFiles/history_compaction_test.dir/history_compaction_test.cc.o.d"
  "history_compaction_test"
  "history_compaction_test.pdb"
  "history_compaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
