file(REMOVE_RECURSE
  "CMakeFiles/drive_security_test.dir/drive_security_test.cc.o"
  "CMakeFiles/drive_security_test.dir/drive_security_test.cc.o.d"
  "drive_security_test"
  "drive_security_test.pdb"
  "drive_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
