# Empty compiler generated dependencies file for drive_security_test.
# This may be replaced when dependencies are built.
