# Empty compiler generated dependencies file for rpc_coverage_test.
# This may be replaced when dependencies are built.
