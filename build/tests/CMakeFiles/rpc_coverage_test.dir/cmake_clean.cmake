file(REMOVE_RECURSE
  "CMakeFiles/rpc_coverage_test.dir/rpc_coverage_test.cc.o"
  "CMakeFiles/rpc_coverage_test.dir/rpc_coverage_test.cc.o.d"
  "rpc_coverage_test"
  "rpc_coverage_test.pdb"
  "rpc_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
