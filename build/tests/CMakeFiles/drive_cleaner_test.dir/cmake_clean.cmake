file(REMOVE_RECURSE
  "CMakeFiles/drive_cleaner_test.dir/drive_cleaner_test.cc.o"
  "CMakeFiles/drive_cleaner_test.dir/drive_cleaner_test.cc.o.d"
  "drive_cleaner_test"
  "drive_cleaner_test.pdb"
  "drive_cleaner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_cleaner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
