# Empty dependencies file for drive_cleaner_test.
# This may be replaced when dependencies are built.
