file(REMOVE_RECURSE
  "CMakeFiles/versioned_fileserver.dir/versioned_fileserver.cpp.o"
  "CMakeFiles/versioned_fileserver.dir/versioned_fileserver.cpp.o.d"
  "versioned_fileserver"
  "versioned_fileserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_fileserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
