# Empty compiler generated dependencies file for versioned_fileserver.
# This may be replaced when dependencies are built.
