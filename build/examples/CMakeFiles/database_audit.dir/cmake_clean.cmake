file(REMOVE_RECURSE
  "CMakeFiles/database_audit.dir/database_audit.cpp.o"
  "CMakeFiles/database_audit.dir/database_audit.cpp.o.d"
  "database_audit"
  "database_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
