# Empty compiler generated dependencies file for database_audit.
# This may be replaced when dependencies are built.
