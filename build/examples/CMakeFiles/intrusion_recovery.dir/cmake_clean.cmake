file(REMOVE_RECURSE
  "CMakeFiles/intrusion_recovery.dir/intrusion_recovery.cpp.o"
  "CMakeFiles/intrusion_recovery.dir/intrusion_recovery.cpp.o.d"
  "intrusion_recovery"
  "intrusion_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrusion_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
