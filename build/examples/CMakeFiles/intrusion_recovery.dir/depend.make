# Empty dependencies file for intrusion_recovery.
# This may be replaced when dependencies are built.
