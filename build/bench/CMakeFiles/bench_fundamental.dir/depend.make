# Empty dependencies file for bench_fundamental.
# This may be replaced when dependencies are built.
