file(REMOVE_RECURSE
  "CMakeFiles/bench_fundamental.dir/bench_fundamental.cc.o"
  "CMakeFiles/bench_fundamental.dir/bench_fundamental.cc.o.d"
  "bench_fundamental"
  "bench_fundamental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fundamental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
