file(REMOVE_RECURSE
  "CMakeFiles/bench_sshbuild.dir/bench_sshbuild.cc.o"
  "CMakeFiles/bench_sshbuild.dir/bench_sshbuild.cc.o.d"
  "bench_sshbuild"
  "bench_sshbuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sshbuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
