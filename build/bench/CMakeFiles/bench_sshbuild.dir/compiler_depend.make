# Empty compiler generated dependencies file for bench_sshbuild.
# This may be replaced when dependencies are built.
