
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sshbuild.cc" "bench/CMakeFiles/bench_sshbuild.dir/bench_sshbuild.cc.o" "gcc" "bench/CMakeFiles/bench_sshbuild.dir/bench_sshbuild.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drive/CMakeFiles/s4_drive.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/s4_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/s4_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/s4_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/s4_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/delta/CMakeFiles/s4_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/s4_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/s4_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/s4_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/s4_object.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/s4_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/s4_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/s4_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
