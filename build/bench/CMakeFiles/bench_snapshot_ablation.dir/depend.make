# Empty dependencies file for bench_snapshot_ablation.
# This may be replaced when dependencies are built.
