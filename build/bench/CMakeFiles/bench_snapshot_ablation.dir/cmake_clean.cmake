file(REMOVE_RECURSE
  "CMakeFiles/bench_snapshot_ablation.dir/bench_snapshot_ablation.cc.o"
  "CMakeFiles/bench_snapshot_ablation.dir/bench_snapshot_ablation.cc.o.d"
  "bench_snapshot_ablation"
  "bench_snapshot_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snapshot_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
