// Batched RPC + group commit microbenchmark (no paper figure; perf PR).
//
// Two views of the same question — what does batching buy on the write
// path?
//
//   1. File-system level: a write-heavy workload (create + overwrite) on
//      the S4-NAS stack, unbatched (one Sync RPC after every mutating op,
//      NFSv2 discipline) vs group-commit sizes 8 and 32 with vectored
//      kBatch frames. Reports ops/sec, disk writes per logical op, and the
//      sync/batch RPC counts.
//   2. Raw RPC level: N Write RPCs issued one frame at a time vs packed
//      into kBatch envelopes, showing the round-trip savings alone.
//
// Usage: bench_batch [--quick] [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace s4 {
namespace bench {
namespace {

struct BatchConfig {
  const char* name;       // also the BENCH_batch_<name>.json suffix
  uint32_t group_commit;  // 1 = per-op sync (unbatched)
  bool batch_rpcs;
};

constexpr BatchConfig kConfigs[] = {
    {"unbatched", 1, false},
    {"group8", 8, true},
    {"group32", 32, true},
};

bool g_quick = false;

struct Row {
  double sim_seconds = 0;
  uint64_t logical_ops = 0;
  uint64_t disk_writes = 0;
  uint64_t net_messages = 0;
  uint64_t rpc_syncs = 0;
  uint64_t rpc_batches = 0;
};
std::map<std::string, Row> g_rows;

// Write-heavy mix: create files, then overwrite them round-robin. Every op
// is mutating, so the sync discipline dominates — the worst case the paper
// measures in section 5.2 and the best case for group commit.
void RunFsWorkload(::benchmark::State& state, const BatchConfig& config) {
  const uint32_t files = g_quick ? 50 : 200;
  const uint32_t writes = g_quick ? 500 : 4000;
  const uint32_t write_bytes = 4096;

  for (auto _ : state) {
    ServerOptions opts;
    opts.fs_group_commit_ops = config.group_commit;
    opts.fs_batch_rpcs = config.batch_rpcs;
    ServerKind kind =
        config.group_commit > 1 ? ServerKind::kS4NasBatched : ServerKind::kS4Nas;
    auto server = MakeServer(kind, opts);

    auto root = server->fs->Root();
    S4_CHECK(root.ok());
    std::vector<FileHandle> handles;
    handles.reserve(files);
    for (uint32_t i = 0; i < files; ++i) {
      auto h = server->fs->CreateFile(*root, "f" + std::to_string(i), 0644);
      S4_CHECK(h.ok());
      handles.push_back(*h);
    }
    Bytes payload(write_bytes, 0x5A);
    for (uint32_t i = 0; i < writes; ++i) {
      FileHandle h = handles[i % files];
      uint64_t offset = (i / files) % 4 * write_bytes;
      S4_CHECK(server->fs->WriteFile(h, offset, payload).ok());
      server->Tick();
    }
    server->Drain();

    Row row;
    row.sim_seconds = server->SimSeconds();
    row.logical_ops = files + writes;
    row.disk_writes = server->device->stats().writes;
    row.net_messages = server->transport->stats().messages_sent;
    row.rpc_syncs = server->s4_fs->stats().rpc_syncs;
    row.rpc_batches = server->s4_fs->stats().rpc_batches;
    g_rows[config.name] = row;

    state.SetIterationTime(row.sim_seconds);
    state.counters["ops_per_s"] = row.logical_ops / row.sim_seconds;
    state.counters["disk_w_per_op"] =
        static_cast<double>(row.disk_writes) / row.logical_ops;
    WriteBenchJson(*server, std::string("batch_") + config.name);
  }
}

// Raw RPC round-trips: the same N Write+Sync pairs, one frame per RPC vs
// one kBatch frame per `group` sub-ops.
void RunRawRpc(::benchmark::State& state, uint32_t group) {
  const uint32_t total_writes = g_quick ? 512 : 2048;
  const uint32_t write_bytes = 4096;

  for (auto _ : state) {
    auto server = MakeServer(ServerKind::kS4Nas);
    auto id = server->client->Create(Bytes());
    S4_CHECK(id.ok());

    Bytes payload(write_bytes, 0xC3);
    if (group <= 1) {
      for (uint32_t i = 0; i < total_writes; ++i) {
        S4_CHECK(server->client->Write(*id, i * write_bytes, payload).ok());
        S4_CHECK(server->client->Sync().ok());
      }
    } else {
      for (uint32_t base = 0; base < total_writes; base += group) {
        std::vector<RpcRequest> subs;
        uint32_t n = std::min(group, total_writes - base);
        subs.reserve(n + 1);
        for (uint32_t i = 0; i < n; ++i) {
          RpcRequest req;
          req.op = RpcOp::kWrite;
          req.object = *id;
          req.offset = static_cast<uint64_t>(base + i) * write_bytes;
          req.data = payload;
          subs.push_back(std::move(req));
        }
        RpcRequest sync;
        sync.op = RpcOp::kSync;
        subs.push_back(std::move(sync));
        auto resps = server->client->CallBatch(std::move(subs));
        S4_CHECK(resps.ok());
        for (const RpcResponse& r : *resps) {
          S4_CHECK(r.ok());
        }
      }
    }

    double sim_s = server->SimSeconds();
    state.SetIterationTime(sim_s);
    state.counters["ops_per_s"] = total_writes / sim_s;
    state.counters["net_msgs"] =
        static_cast<double>(server->transport->stats().messages_sent);
    state.counters["disk_w_per_op"] =
        static_cast<double>(server->device->stats().writes) / total_writes;
  }
}

void PrintSummary() {
  std::printf("\n=== Batched RPC + group commit (write-heavy fs workload) ===\n");
  std::printf("%-12s %10s %12s %14s %10s %10s %10s\n", "config", "sim (s)", "ops/sec",
              "disk w/op", "net msgs", "syncs", "batches");
  for (const BatchConfig& config : kConfigs) {
    auto it = g_rows.find(config.name);
    if (it == g_rows.end()) {
      continue;
    }
    const Row& r = it->second;
    std::printf("%-12s %10.2f %12.1f %14.3f %10llu %10llu %10llu\n", config.name,
                r.sim_seconds, r.logical_ops / r.sim_seconds,
                static_cast<double>(r.disk_writes) / r.logical_ops,
                static_cast<unsigned long long>(r.net_messages),
                static_cast<unsigned long long>(r.rpc_syncs),
                static_cast<unsigned long long>(r.rpc_batches));
  }
  std::printf("\nExpected shape: each sync point costs one journal chunk write; grouping\n"
              "N ops per sync divides disk writes per op and removes one round-trip\n"
              "per op via the vectored kBatch frame.\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      s4::bench::g_quick = true;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  for (const auto& config : s4::bench::kConfigs) {
    std::string name = std::string("BatchFs/") + config.name;
    ::benchmark::RegisterBenchmark(name.c_str(),
                                   [&config](::benchmark::State& state) {
                                     s4::bench::RunFsWorkload(state, config);
                                   })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
  }
  for (uint32_t group : {1u, 8u, 32u}) {
    std::string name = "BatchRawRpc/group" + std::to_string(group);
    ::benchmark::RegisterBenchmark(name.c_str(),
                                   [group](::benchmark::State& state) {
                                     s4::bench::RunRawRpc(state, group);
                                   })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintSummary();
  return 0;
}
