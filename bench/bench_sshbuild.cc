// Figure 4: SSH-build (unpack / configure / build) on the four servers.
//
// Paper result: S4 and BSD perform similarly in all three phases; the Linux
// server is anomalously fast in configure because its "synchronous" mount
// issues far fewer metadata write I/Os. The build phase is CPU-bound and
// nearly identical everywhere.
#include <benchmark/benchmark.h>

#include <cctype>
#include <map>
#include <string>

#include "bench/harness.h"
#include "src/workload/ssh_build.h"

namespace s4 {
namespace bench {
namespace {

std::map<ServerKind, SshBuildReport> g_rows;

std::string Slug(ServerKind kind) {
  std::string s = ServerName(kind);
  for (char& c : s) {
    c = c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

void RunSshBuild(::benchmark::State& state, ServerKind kind) {
  for (auto _ : state) {
    auto server = MakeServer(kind);
    SshBuild build(server->fs, server->clock.get(), SshBuildConfig{});
    auto report = build.Run();
    S4_CHECK(report.ok());
    server->Drain();
    state.SetIterationTime(ToSeconds(report->unpack + report->configure + report->build));
    state.counters["unpack_s"] = ToSeconds(report->unpack);
    state.counters["configure_s"] = ToSeconds(report->configure);
    state.counters["build_s"] = ToSeconds(report->build);
    g_rows[kind] = *report;
    WriteBenchJson(*server, "sshbuild_" + Slug(kind));
  }
}

void PrintFigure4() {
  std::printf("\n=== Figure 4: SSH-build benchmark (simulated seconds) ===\n");
  std::printf("%-18s %10s %13s %10s %10s\n", "server", "unpack", "configure", "build",
              "total");
  for (auto kind : {ServerKind::kS4Nas, ServerKind::kS4NasBatched, ServerKind::kS4Nfs,
                    ServerKind::kFfsNfs, ServerKind::kExt2Nfs}) {
    auto it = g_rows.find(kind);
    if (it == g_rows.end()) {
      continue;
    }
    const SshBuildReport& r = it->second;
    std::printf("%-18s %10s %13s %10s %10s\n", ServerName(kind), Secs(r.unpack).c_str(),
                Secs(r.configure).c_str(), Secs(r.build).c_str(),
                Secs(r.unpack + r.configure + r.build).c_str());
  }
  std::printf("\nExpected shape (paper): S4 and BSD similar in every phase; Linux's\n"
              "flawed sync mount makes its configure phase anomalously fast; the build\n"
              "phase is CPU-bound and close across all systems.\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  using s4::bench::ServerKind;
  for (auto kind : {ServerKind::kS4Nas, ServerKind::kS4NasBatched, ServerKind::kS4Nfs,
                    ServerKind::kFfsNfs, ServerKind::kExt2Nfs}) {
    std::string name = std::string("SshBuild/") + s4::bench::ServerName(kind);
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [kind](::benchmark::State& state) { s4::bench::RunSshBuild(state, kind); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintFigure4();
  return 0;
}
