// Figure 2: journal-based metadata vs. conventional versioning.
//
// Paper claim: a conventional versioning system materialises a new data
// block, new indirect block(s), a new inode, and an inode-log entry for every
// update — up to 4x growth in disk usage for small writes to a large file.
// S4's journal-based metadata replaces all of that with one compact journal
// entry, so versioning metadata is nearly free.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/baseline/conventional_versioning.h"
#include "src/util/rng.h"

namespace s4 {
namespace bench {
namespace {

constexpr uint64_t kFileBytes = 3ull * 1024 * 1024;  // deep into double-indirect
constexpr uint32_t kUpdates = 500;
constexpr uint32_t kUpdateBytes = 4096;

struct MetadataRow {
  double data_bytes_per_update = 0;
  double metadata_bytes_per_update = 0;
  double growth_factor = 0;  // total consumed / data written
};
MetadataRow g_conventional;
MetadataRow g_s4;

void RunConventional(::benchmark::State& state) {
  for (auto _ : state) {
    SimClock clock;
    BlockDevice device((1ull << 30) / kSectorSize, &clock);
    ConventionalVersioningStore store(&device, &clock);
    auto id = store.CreateObject();
    S4_CHECK(id.ok());
    Rng rng(1);
    Bytes base = rng.RandomBytes(kFileBytes);
    S4_CHECK(store.Write(*id, 0, base).ok());

    ConventionalStats before = store.stats();
    SimTime t0 = clock.Now();
    for (uint32_t i = 0; i < kUpdates; ++i) {
      uint64_t offset = (rng.Below(kFileBytes / kBlockSize)) * kBlockSize;
      Bytes data = rng.RandomBytes(kUpdateBytes);
      S4_CHECK(store.Write(*id, offset, data).ok());
    }
    ConventionalStats after = store.stats();
    state.SetIterationTime(ToSeconds(clock.Now() - t0));

    double data = static_cast<double>(after.data_bytes - before.data_bytes) / kUpdates;
    double meta = static_cast<double>(after.metadata_bytes - before.metadata_bytes) / kUpdates;
    g_conventional = MetadataRow{data, meta, (data + meta) / kUpdateBytes};
    state.counters["meta_B_per_update"] = meta;
    state.counters["growth_x"] = g_conventional.growth_factor;
  }
}

void RunS4(::benchmark::State& state) {
  for (auto _ : state) {
    SimClock clock;
    BlockDevice device((1ull << 30) / kSectorSize, &clock);
    S4DriveOptions opts;
    auto drive = S4Drive::Format(&device, &clock, opts);
    S4_CHECK(drive.ok());
    Credentials user;
    user.user = 1;
    auto id = (*drive)->Create(user, {});
    S4_CHECK(id.ok());
    Rng rng(1);
    Bytes base = rng.RandomBytes(kFileBytes);
    S4_CHECK((*drive)->Write(user, *id, 0, base).ok());
    S4_CHECK((*drive)->Sync(user).ok());

    const DriveStats& s0 = (*drive)->stats();
    uint64_t journal_before = s0.journal_sectors_written;
    uint64_t checkpoints_before = s0.inode_checkpoints;
    uint64_t data_before = s0.data_blocks_written;
    SimTime t0 = clock.Now();
    for (uint32_t i = 0; i < kUpdates; ++i) {
      uint64_t offset = (rng.Below(kFileBytes / kBlockSize)) * kBlockSize;
      Bytes data = rng.RandomBytes(kUpdateBytes);
      S4_CHECK((*drive)->Write(user, *id, offset, data).ok());
      S4_CHECK((*drive)->Sync(user).ok());
    }
    const DriveStats& s1 = (*drive)->stats();
    state.SetIterationTime(ToSeconds(clock.Now() - t0));

    double data =
        static_cast<double>(s1.data_blocks_written - data_before) * kBlockSize / kUpdates;
    // Journal sectors are the versioning metadata; amortise any checkpoints
    // the cache wrote during the run.
    double meta = (static_cast<double>(s1.journal_sectors_written - journal_before) *
                       kSectorSize +
                   static_cast<double>(s1.inode_checkpoints - checkpoints_before) * 2048.0) /
                  kUpdates;
    g_s4 = MetadataRow{data, meta, (data + meta) / kUpdateBytes};
    state.counters["meta_B_per_update"] = meta;
    state.counters["growth_x"] = g_s4.growth_factor;
  }
}

void PrintFigure2() {
  std::printf("\n=== Figure 2: metadata versioning efficiency ===\n");
  std::printf("(%u random %uB block updates to a %.0fMB file; bytes consumed per update)\n\n",
              kUpdates, kUpdateBytes, kFileBytes / 1048576.0);
  std::printf("%-28s %14s %16s %10s\n", "system", "data (B)", "metadata (B)", "growth");
  std::printf("%-28s %14.0f %16.0f %9.2fx\n", "conventional versioning",
              g_conventional.data_bytes_per_update, g_conventional.metadata_bytes_per_update,
              g_conventional.growth_factor);
  std::printf("%-28s %14.0f %16.0f %9.2fx\n", "S4 journal-based metadata",
              g_s4.data_bytes_per_update, g_s4.metadata_bytes_per_update, g_s4.growth_factor);
  std::printf("\nExpected shape (paper): conventional versioning approaches 4x growth for\n"
              "indirect-block files; journal-based metadata stays close to 1x (a journal\n"
              "entry of a few dozen bytes per update).\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

BENCHMARK(s4::bench::RunConventional)->UseManualTime()->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(s4::bench::RunS4)->UseManualTime()->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintFigure2();
  return 0;
}
