// Figure 6: audit log overhead.
//
// Paper result, small-file microbenchmark (10,000 1KB files in 10 dirs):
// auditing costs 2.8% on create, 2.9% on delete, and 7.2% on read (audit
// blocks interleave with data in the segments, reducing read locality).
// Macro benchmarks lose only 1-3%.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workload/microbench.h"
#include "src/workload/postmark.h"

namespace s4 {
namespace bench {
namespace {

std::map<bool, MicrobenchReport> g_micro;
std::map<bool, PostMarkReport> g_macro;

// Chained-vs-unchained audit framing on the batched PostMark path (the
// group-commit flush amortises the per-record hashing); the chained server is
// kept alive so its stats land in BENCH_audit.json.
std::map<bool, SimDuration> g_chain_time;
std::unique_ptr<Server> g_chain_server;

ServerOptions WithAudit(bool audit) {
  ServerOptions options;
  options.audit_enabled = audit;
  // Small enough that the 10MB file set misses the cache: the read phase
  // then sees the segment-locality cost of interleaved audit blocks.
  options.s4_block_cache = 6ull << 20;
  options.s4_object_cache = 2ull << 20;
  return options;
}

void RunMicro(::benchmark::State& state, bool audit) {
  for (auto _ : state) {
    auto server = MakeServer(ServerKind::kS4Nfs, WithAudit(audit));
    auto report = RunSmallFileMicrobench(server->fs, server->clock.get(), MicrobenchConfig{});
    S4_CHECK(report.ok());
    state.SetIterationTime(ToSeconds(report->create + report->read + report->remove));
    state.counters["create_s"] = ToSeconds(report->create);
    state.counters["read_s"] = ToSeconds(report->read);
    state.counters["delete_s"] = ToSeconds(report->remove);
    g_micro[audit] = *report;
  }
}

void RunMacro(::benchmark::State& state, bool audit) {
  for (auto _ : state) {
    auto server = MakeServer(ServerKind::kS4Nfs, WithAudit(audit));
    PostMarkConfig config;
    config.file_count = 2000;
    config.transactions = 8000;
    config.cleaner_hook = [s = server.get()] { s->Tick(); };
    PostMark pm(server->fs, server->clock.get(), config);
    auto report = pm.Run();
    S4_CHECK(report.ok());
    state.SetIterationTime(ToSeconds(report->create_phase + report->transaction_phase));
    g_macro[audit] = *report;
  }
}

double Overhead(SimDuration with, SimDuration without) {
  return without == 0 ? 0.0 : 100.0 * (ToSeconds(with) / ToSeconds(without) - 1.0);
}

void RunChain(::benchmark::State& state, bool chained) {
  for (auto _ : state) {
    ServerOptions options;
    options.audit_enabled = true;
    options.tweak_drive_options = [chained](S4DriveOptions& o) { o.audit_chain = chained; };
    auto server = MakeServer(ServerKind::kS4NasBatched, options);
    PostMarkConfig config;
    config.file_count = 2000;
    config.transactions = 8000;
    config.cleaner_hook = [s = server.get()] { s->Tick(); };
    PostMark pm(server->fs, server->clock.get(), config);
    auto report = pm.Run();
    S4_CHECK(report.ok());
    server->Drain();
    SimDuration total = report->create_phase + report->transaction_phase;
    state.SetIterationTime(ToSeconds(total));
    g_chain_time[chained] = total;
    if (chained) {
      g_chain_server = std::move(server);
    }
  }
}

double ChainOverheadPct() {
  return Overhead(g_chain_time[true], g_chain_time[false]);
}

void WriteChainJson() {
  if (g_chain_server == nullptr) {
    return;
  }
  const MetricRegistry& reg = g_chain_server->drive->metrics();
  char extra[512];
  std::snprintf(extra, sizeof(extra),
                "\"audit\": {\"postmark_unchained_s\": %.6f, \"postmark_chained_s\": %.6f, "
                "\"chain_overhead_pct\": %.2f, \"records\": %llu, \"blocks_written\": %llu, "
                "\"marker_writes\": %llu, \"chain_breaks\": %llu}",
                ToSeconds(g_chain_time[false]), ToSeconds(g_chain_time[true]),
                ChainOverheadPct(),
                static_cast<unsigned long long>(reg.CounterValue("audit.records")),
                static_cast<unsigned long long>(reg.CounterValue("audit.blocks_written")),
                static_cast<unsigned long long>(reg.CounterValue("audit.marker_writes")),
                static_cast<unsigned long long>(reg.CounterValue("audit.chain_breaks")));
  WriteBenchJson(*g_chain_server, "audit", extra);
}

void PrintFigure6() {
  std::printf("\n=== Figure 6: auditing overhead (small-file microbenchmark) ===\n");
  std::printf("(10,000 1KB files in 10 directories on the S4-enhanced NFS server)\n\n");
  std::printf("%-10s %14s %14s %12s\n", "phase", "no audit (s)", "audit (s)", "overhead");
  const MicrobenchReport& off = g_micro[false];
  const MicrobenchReport& on = g_micro[true];
  std::printf("%-10s %14s %14s %11.1f%%\n", "create", Secs(off.create).c_str(),
              Secs(on.create).c_str(), Overhead(on.create, off.create));
  std::printf("%-10s %14s %14s %11.1f%%\n", "read", Secs(off.read).c_str(),
              Secs(on.read).c_str(), Overhead(on.read, off.read));
  std::printf("%-10s %14s %14s %11.1f%%\n", "delete", Secs(off.remove).c_str(),
              Secs(on.remove).c_str(), Overhead(on.remove, off.remove));

  const PostMarkReport& moff = g_macro[false];
  const PostMarkReport& mon = g_macro[true];
  SimDuration total_off = moff.create_phase + moff.transaction_phase;
  SimDuration total_on = mon.create_phase + mon.transaction_phase;
  std::printf("\nMacro check (PostMark total): %s s -> %s s, overhead %.1f%%\n",
              Secs(total_off).c_str(), Secs(total_on).c_str(),
              Overhead(total_on, total_off));
  std::printf("\nExpected shape (paper): create/delete ~3%%, read ~7%% (audit blocks\n"
              "interleaved with data reduce segment read locality); macro 1-3%%.\n");

  std::printf("\n=== Hash-chained audit framing (batched PostMark) ===\n");
  std::printf("%-12s %14s\n", "framing", "total (s)");
  std::printf("%-12s %14s\n", "bare", Secs(g_chain_time[false]).c_str());
  std::printf("%-12s %14s\n", "chained", Secs(g_chain_time[true]).c_str());
  std::printf("chained overhead: %.1f%% (gate: 10%%)\n", ChainOverheadPct());
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  // --check: exit nonzero if the chained framing costs more than 10% on the
  // batched PostMark run (stripped before benchmark::Initialize, which
  // rejects unknown flags).
  bool check = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--check") {
        check = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  for (bool audit : {false, true}) {
    std::string micro_name = std::string("Microbench/audit:") + (audit ? "on" : "off");
    ::benchmark::RegisterBenchmark(
        micro_name.c_str(),
        [audit](::benchmark::State& state) { s4::bench::RunMicro(state, audit); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
    std::string macro_name = std::string("PostMark/audit:") + (audit ? "on" : "off");
    ::benchmark::RegisterBenchmark(
        macro_name.c_str(),
        [audit](::benchmark::State& state) { s4::bench::RunMacro(state, audit); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
  }
  for (bool chained : {false, true}) {
    std::string name = std::string("PostMarkBatched/chain:") + (chained ? "on" : "off");
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [chained](::benchmark::State& state) { s4::bench::RunChain(state, chained); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintFigure6();
  s4::bench::WriteChainJson();
  if (check) {
    double pct = s4::bench::ChainOverheadPct();
    if (pct > 10.0) {
      std::fprintf(stderr, "FAIL: chained audit overhead %.1f%% exceeds 10%% gate\n", pct);
      return 1;
    }
    std::printf("PASS: chained audit overhead %.1f%% within 10%% gate\n", pct);
  }
  return 0;
}
