// Figure 7: projected detection window from a 10GB history pool (20% of a
// 50GB disk) under the write rates of three published workload studies —
// baseline, with cross-version differencing, and with differencing plus
// compression. The differencing/compression multipliers are *measured* with
// this repository's own delta and LZ implementations on a synthetic
// versioned source tree (the paper measured ~3x and ~5x with Xdelta + gzip
// on a week of its CVS history).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/harness.h"
#include "src/workload/capacity.h"

namespace s4 {
namespace bench {
namespace {

constexpr double kPoolGb = 10.0;
CompactionRatios g_ratios;

void MeasureRatios(::benchmark::State& state) {
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    g_ratios = MeasureCompactionRatios(/*files=*/40, /*versions=*/8, /*file_bytes=*/60000,
                                       /*edit_fraction=*/0.5, /*seed=*/7);
    auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
    state.counters["diff_x"] = g_ratios.differencing;
    state.counters["diff_lz_x"] = g_ratios.differencing_and_compression;
  }
}

void PrintFigure7() {
  std::printf("\n=== Figure 7: projected detection window (10GB history pool) ===\n");
  std::printf("measured multipliers: differencing %.1fx, differencing+compression %.1fx\n\n",
              g_ratios.differencing, g_ratios.differencing_and_compression);
  std::printf("%-36s %12s %10s %12s %14s\n", "workload study", "MB/day", "baseline",
              "+differencing", "+compression");
  for (const TraceStudy& study : PaperTraceStudies()) {
    double base = DetectionWindowDays(kPoolGb, study.write_mb_per_day, 1.0);
    double diff = DetectionWindowDays(kPoolGb, study.write_mb_per_day, g_ratios.differencing);
    double both = DetectionWindowDays(kPoolGb, study.write_mb_per_day,
                                      g_ratios.differencing_and_compression);
    std::printf("%-36s %12.0f %9.0fd %12.0fd %13.0fd\n", study.name.c_str(),
                study.write_mb_per_day, base, diff, both);
  }
  std::printf("\nExpected shape (paper): baseline windows of ~70d (AFS), ~10d (NT),\n"
              "~90d (Elephant); differencing ~3x and compression ~5x cumulative,\n"
              "yielding 50 to 470 days across the studies.\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

BENCHMARK(s4::bench::MeasureRatios)->UseManualTime()->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintFigure7();
  return 0;
}
