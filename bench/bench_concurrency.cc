// DriveExecutor concurrency benchmarks: aggregate throughput scaling of an
// eight-drive array as the worker pool grows (W=1/2/4), and pure
// snapshot-read scaling over four drives.
//
// Unlike bench_cluster (which reconstructs a parallel makespan from serial,
// attributed busy time), this bench runs REAL worker threads: every request
// executes inside a private SimClock lane, the executor charges each task to
// the earliest-free virtual capacity slot, and after Drain() the global clock
// sits at the true overlapped makespan. The scaling numbers therefore measure
// the concurrency substrate itself — striped ordering, snapshot reads,
// deferred audit, idle-slice maintenance — not a post-hoc model.
//
// Phase 1 (scaling): identical per-drive PostMark-style transaction streams
// (read one object + append to another, periodic Sync barriers, periodic
// cleaner maintenance requests) are pushed through DriveExecutor::SubmitFrame
// at W=1, 2, 4. Exclusive appends serialise per drive (the time floor) but
// overlap across drives; with more drives than workers the pool stays
// saturated, so aggregate throughput should comfortably exceed 2x at W=4.
//
// Phase 2 (read scaling): a pure read stream over four drives, no mutations.
// Reads are kShared snapshot ops — no locks, no ordering edges, no time-floor
// updates — so W=4 isolates how the lock-free read path scales.
//
// Usage: bench_concurrency [--quick] [--check]
//   --quick  smaller transaction counts (CI)
//   --check  exit non-zero unless W=4 aggregate throughput >= 2x W=1 in both
//            phases
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/drive/s4_drive.h"
#include "src/exec/drive_executor.h"
#include "src/rpc/messages.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "src/util/check.h"

namespace s4 {
namespace bench {
namespace {

Credentials UserCreds() {
  Credentials c;
  c.user = 100;
  c.client = 1;
  return c;
}

Bytes ReadFrame(ObjectId id, uint64_t offset, uint64_t len) {
  RpcRequest req;
  req.op = RpcOp::kRead;
  req.creds = UserCreds();
  req.object = id;
  req.offset = offset;
  req.length = len;
  return req.Encode();
}

Bytes AppendFrame(ObjectId id, uint64_t len, uint8_t fill) {
  RpcRequest req;
  req.op = RpcOp::kAppend;
  req.creds = UserCreds();
  req.object = id;
  req.data.assign(len, fill);
  return req.Encode();
}

Bytes SyncFrame() {
  RpcRequest req;
  req.op = RpcOp::kSync;
  req.creds = UserCreds();
  return req.Encode();
}

// A multi-drive rig on one shared clock: the unit the executor schedules.
struct Rig {
  std::unique_ptr<SimClock> clock;
  // Small caches so the working set actually hits the platters: the point of
  // the scaling runs is device-time overlap, which a cache that swallows the
  // whole object set would hide.
  S4DriveOptions opts = [] {
    S4DriveOptions o;
    o.segment_sectors = 512;  // 256KB
    o.block_cache_bytes = 1 << 20;
    o.object_cache_bytes = 64 << 10;
    o.checkpoint_interval_bytes = 4 << 20;
    return o;
  }();
  std::vector<std::unique_ptr<BlockDevice>> devices;
  std::vector<std::unique_ptr<S4Drive>> drives;
  std::vector<std::unique_ptr<S4RpcServer>> servers;
  std::vector<std::vector<ObjectId>> objects;  // per drive

  std::vector<S4Drive*> drive_ptrs() const {
    std::vector<S4Drive*> out;
    for (const auto& d : drives) {
      out.push_back(d.get());
    }
    return out;
  }
};

std::unique_ptr<Rig> MakeRig(size_t n_drives, uint32_t objects_per_drive,
                             uint32_t object_bytes) {
  auto rig = std::make_unique<Rig>();
  rig->clock = std::make_unique<SimClock>(SimTime{0});
  for (size_t i = 0; i < n_drives; ++i) {
    rig->devices.push_back(
        std::make_unique<BlockDevice>((256ull << 20) / kSectorSize, rig->clock.get()));
    auto drive = S4Drive::Format(rig->devices.back().get(), rig->clock.get(), rig->opts);
    S4_CHECK(drive.ok());
    rig->drives.push_back(std::move(*drive));
    rig->servers.push_back(
        std::make_unique<S4RpcServer>(rig->drives.back().get(), static_cast<int32_t>(i)));
  }
  // Populate serially (no executor yet): the measured phase starts from a
  // synced, cache-cold-ish state identical for every worker count.
  rig->objects.resize(n_drives);
  for (size_t d = 0; d < n_drives; ++d) {
    for (uint32_t i = 0; i < objects_per_drive; ++i) {
      auto id = rig->drives[d]->Create(UserCreds(), {});
      S4_CHECK(id.ok());
      Bytes payload(object_bytes, static_cast<uint8_t>('a' + (i % 23)));
      S4_CHECK(rig->drives[d]->Write(UserCreds(), *id, 0, payload).ok());
      rig->objects[d].push_back(*id);
    }
    S4_CHECK(rig->drives[d]->Sync(UserCreds()).ok());
  }
  return rig;
}

struct ScalePoint {
  int workers = 0;
  uint64_t ops = 0;          // foreground frames completed
  uint64_t maint_slices = 0;
  double elapsed_s = 0;      // simulated makespan (clock delta over the phase)
  double ops_per_s = 0;
  double busy_sum_s = 0;     // total device busy time across drives
  double busy_max_s = 0;     // busiest device (the scaling bound)
};

// --- Phase 1: multi-drive transaction scaling --------------------------------

ScalePoint RunScale(int workers, bool quick) {
  const size_t kDrives = 8;
  const uint32_t kObjects = quick ? 128 : 384;       // per drive
  const uint32_t kObjectBytes = 4096;
  const uint32_t kAppendBytes = 1024;
  const uint32_t kTransactions = quick ? 300 : 1200;  // per drive

  auto rig = MakeRig(kDrives, kObjects, kObjectBytes);

  DriveExecutor::Options eopts;
  eopts.workers = workers;
  DriveExecutor exec(rig->clock.get(), rig->drive_ptrs(), eopts);
  for (size_t d = 0; d < kDrives; ++d) {
    S4Drive* drive = rig->drives[d].get();
    exec.AttachMaintenance(static_cast<int>(d), [drive] {
      auto r = drive->RunCleanerPass(1);
      return r.ok() && drive->CleanerNeeded();
    });
  }

  // Identical deterministic streams for every worker count; only the overlap
  // differs. Submission happens outside any lane, so it costs no sim time.
  std::vector<uint64_t> rng(kDrives);
  for (size_t d = 0; d < kDrives; ++d) {
    rng[d] = 0x5eedull * (d + 1);
  }
  auto next = [&rng](size_t d) {
    rng[d] = rng[d] * 6364136223846793005ull + 1442695040888963407ull;
    return rng[d] >> 33;
  };

  const SimTime start = rig->clock->Now();
  std::vector<DiskStats> disk0;
  for (const auto& dev : rig->devices) {
    disk0.push_back(dev->stats());
  }
  uint64_t submitted = 0;
  for (uint32_t t = 0; t < kTransactions; ++t) {
    for (size_t d = 0; d < kDrives; ++d) {
      const std::vector<ObjectId>& objs = rig->objects[d];
      ObjectId r = objs[next(d) % objs.size()];
      ObjectId w = objs[next(d) % objs.size()];
      int di = static_cast<int>(d);
      exec.SubmitFrame(di, rig->servers[d].get(), ReadFrame(r, 0, kObjectBytes));
      exec.SubmitFrame(di, rig->servers[d].get(), AppendFrame(w, kAppendBytes, 'x'));
      submitted += 2;
      if (t % 64 == 0) {
        exec.SubmitMaintenance(di);
      }
      if (t % 128 == 127) {
        exec.SubmitFrame(di, rig->servers[d].get(), SyncFrame());
        ++submitted;
      }
    }
  }
  for (size_t d = 0; d < kDrives; ++d) {
    exec.SubmitFrame(static_cast<int>(d), rig->servers[d].get(), SyncFrame());
    ++submitted;
  }
  exec.Drain();

  ScalePoint p;
  p.workers = workers;
  for (size_t d = 0; d < kDrives; ++d) {
    p.ops += exec.completed(static_cast<int>(d));
    p.maint_slices += exec.maintenance_slices(static_cast<int>(d));
  }
  S4_CHECK(p.ops == submitted);
  p.elapsed_s = ToSeconds(rig->clock->Now() - start);
  p.ops_per_s = p.elapsed_s > 0 ? static_cast<double>(p.ops) / p.elapsed_s : 0;
  for (size_t d = 0; d < kDrives; ++d) {
    double b = ToSeconds((rig->devices[d]->stats() - disk0[d]).busy_time);
    p.busy_sum_s += b;
    p.busy_max_s = std::max(p.busy_max_s, b);
    std::printf("  drive %zu: busy %.3fs charged_span %.3fs\n", d, b,
                ToSeconds(exec.charged_span(static_cast<int>(d))));
  }
  return p;
}

// --- Phase 2: snapshot-read scaling (pure shared class) ----------------------

// Pure kShared snapshot reads over eight drives, no exclusive chains at all:
// isolates the lock-free read path. Reads never raise the per-drive time
// floor and take no ordering edges against each other, so W=4 overlaps
// device-bound reads across the array. (On a SINGLE drive the platter itself
// serialises device-bound reads — BlockDevice is honest about that — so the
// single-drive overlap number would always be ~1x and measure nothing. And
// with exactly as many drives as workers the schedule is pairing-sensitive:
// whichever drive loses the dispatch race collects idle gaps — see
// DriveExecutor::gap_span — so, as in phase 1, the array is kept wider than
// the worker pool to keep every capacity slot saturated.)
ScalePoint RunReadOverlap(int workers, bool quick) {
  const size_t kDrives = 8;
  const uint32_t kObjects = quick ? 300 : 600;  // x4KB: ~1.2-2.4MB > 1MB cache
  const uint32_t kObjectBytes = 4096;
  const uint32_t kReads = quick ? 1200 : 4800;  // total, spread across drives

  auto rig = MakeRig(kDrives, kObjects, kObjectBytes);
  DriveExecutor::Options eopts;
  eopts.workers = workers;
  // Prime every queue before releasing the workers: this phase measures how
  // shared-class reads schedule across a saturated array, not how fast the
  // submitting thread encodes frames.
  eopts.start_paused = true;
  eopts.max_pending_per_drive = kReads / kDrives + 1;
  DriveExecutor exec(rig->clock.get(), rig->drive_ptrs(), eopts);

  uint64_t rng = 0xfeedull;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };

  const SimTime start = rig->clock->Now();
  std::vector<DiskStats> disk0;
  for (const auto& dev : rig->devices) {
    disk0.push_back(dev->stats());
  }
  for (uint32_t i = 0; i < kReads; ++i) {
    const size_t d = i % kDrives;
    const std::vector<ObjectId>& objs = rig->objects[d];
    exec.SubmitFrame(static_cast<int>(d), rig->servers[d].get(),
                     ReadFrame(objs[next() % objs.size()], 0, kObjectBytes));
  }
  exec.Start();
  exec.Drain();

  ScalePoint p;
  p.workers = workers;
  for (size_t d = 0; d < kDrives; ++d) {
    p.ops += exec.completed(static_cast<int>(d));
  }
  S4_CHECK(p.ops == kReads);
  p.elapsed_s = ToSeconds(rig->clock->Now() - start);
  p.ops_per_s = p.elapsed_s > 0 ? static_cast<double>(p.ops) / p.elapsed_s : 0;
  for (size_t d = 0; d < kDrives; ++d) {
    double b = ToSeconds((rig->devices[d]->stats() - disk0[d]).busy_time);
    p.busy_sum_s += b;
    p.busy_max_s = std::max(p.busy_max_s, b);
    std::printf("  read drive %zu: busy %.3fs charged_span %.3fs gap %.3fs frontier %.3fs\n",
                d, b, ToSeconds(exec.charged_span(static_cast<int>(d))),
                ToSeconds(exec.gap_span(static_cast<int>(d))),
                ToSeconds(rig->drives[d]->DeviceBusyUntil() - start));
  }
  return p;
}

// --- Reporting ---------------------------------------------------------------

void WriteJson(const std::vector<ScalePoint>& scaling, const ScalePoint& read1,
               const ScalePoint& read4, double speedup, double read_speedup) {
  std::FILE* f = std::fopen("BENCH_concurrency.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_concurrency: cannot open BENCH_concurrency.json\n");
    return;
  }
  auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::fprintf(f, "{\n  \"bench\": \"concurrency\",\n  \"server\": \"S4-executor\",\n");
  std::fprintf(f, "  \"concurrency\": {\n    \"drives\": 8,\n    \"scaling\": [");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& p = scaling[i];
    std::fprintf(f,
                 "%s\n      {\"workers\": %d, \"ops\": %llu, \"elapsed_s\": %.6f, "
                 "\"ops_per_s\": %.1f, \"maint_slices\": %llu}",
                 i == 0 ? "" : ",", p.workers, u(p.ops), p.elapsed_s, p.ops_per_s,
                 u(p.maint_slices));
  }
  std::fprintf(f, "\n    ],\n    \"speedup_4x\": %.3f,\n", speedup);
  std::fprintf(f,
               "    \"read_overlap\": {\"drives\": 8, \"reads\": %llu, \"w1_elapsed_s\": %.6f, "
               "\"w4_elapsed_s\": %.6f, \"speedup\": %.3f}\n",
               u(read1.ops), read1.elapsed_s, read4.elapsed_s, read_speedup);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

int Run(bool quick, bool check) {
  std::vector<ScalePoint> scaling;
  for (int w : {1, 2, 4}) {
    std::printf("bench_concurrency: scaling run W=%d (8 drives)...\n", w);
    scaling.push_back(RunScale(w, quick));
  }
  std::printf("bench_concurrency: snapshot-read scaling (8 drives, W=1 vs W=4)...\n");
  ScalePoint read1 = RunReadOverlap(1, quick);
  ScalePoint read4 = RunReadOverlap(4, quick);

  double speedup = scaling.front().ops_per_s > 0
                       ? scaling.back().ops_per_s / scaling.front().ops_per_s
                       : 0;
  double read_speedup = read4.ops_per_s > 0 && read1.ops_per_s > 0
                            ? read4.ops_per_s / read1.ops_per_s
                            : 0;

  std::printf("\n=== Executor scaling (8 drives, lane-overlapped makespan) ===\n");
  std::printf("%4s %8s %12s %10s %8s %11s %11s %10s\n", "W", "ops", "elapsed(s)",
              "ops/sec", "maint", "busy_sum(s)", "busy_max(s)", "speedup");
  for (const ScalePoint& p : scaling) {
    std::printf("%4d %8llu %12.3f %10.1f %8llu %11.3f %11.3f %9.2fx\n", p.workers,
                static_cast<unsigned long long>(p.ops), p.elapsed_s, p.ops_per_s,
                static_cast<unsigned long long>(p.maint_slices), p.busy_sum_s,
                p.busy_max_s,
                scaling.front().ops_per_s > 0 ? p.ops_per_s / scaling.front().ops_per_s
                                              : 0);
  }
  std::printf("\n=== Snapshot-read scaling (8 drives, shared class only) ===\n");
  std::printf("W=1 %.3fs vs W=4 %.3fs over %llu reads (%.2fx)\n", read1.elapsed_s,
              read4.elapsed_s, static_cast<unsigned long long>(read1.ops), read_speedup);

  WriteJson(scaling, read1, read4, speedup, read_speedup);

  if (check) {
    bool ok = true;
    if (speedup < 2.0) {
      std::fprintf(stderr, "CHECK FAILED: W=4 speedup %.2fx < 2.0x\n", speedup);
      ok = false;
    }
    // Phase 2's gate is a serialization tripwire, not a throughput target: if
    // shared-class reads ever took ordering edges against each other this
    // ratio collapses to ~1.0x. The typical value is ~2x, but the schedule
    // packs whole chains onto capacity slots, so one straggler worker can
    // tail-chain a drive and shave the ratio; 1.5x keeps the tripwire firm
    // without flaking on that packing noise.
    if (read_speedup < 1.5) {
      std::fprintf(stderr,
                   "CHECK FAILED: snapshot-read scaling %.2fx < 1.5x (shared reads "
                   "are not overlapping across drives)\n",
                   read_speedup);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::printf("\nall checks passed: scaling %.2fx >= 2.0x, read scaling %.2fx >= 1.5x\n",
                speedup, read_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    }
  }
  return s4::bench::Run(quick, check);
}
