// Figure 3: PostMark on the four server configurations.
//
// Paper result: the S4 systems perform comparably to the BSD and Linux NFS
// servers — slightly better, thanks to the log-structured layout turning
// PostMark's small synchronous writes into sequential segment writes.
//
// Usage: bench_postmark [--quick] [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <cctype>
#include <cstring>
#include <map>
#include <string>

#include "bench/harness.h"
#include "src/workload/postmark.h"

namespace s4 {
namespace bench {
namespace {

PostMarkConfig Config(bool quick) {
  PostMarkConfig config;  // paper defaults: 5,000 files, 20,000 transactions
  if (quick) {
    config.file_count = 1000;
    config.transactions = 4000;
  }
  return config;
}

struct Row {
  PostMarkReport report;
  uint32_t transactions = 0;
  uint64_t disk_writes = 0;
};
std::map<ServerKind, Row> g_rows;
bool g_quick = false;

// JSON file suffix for a server kind ("BENCH_postmark_<slug>.json").
std::string Slug(ServerKind kind) {
  std::string s = ServerName(kind);
  for (char& c : s) {
    c = c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

void RunPostMark(::benchmark::State& state, ServerKind kind) {
  for (auto _ : state) {
    auto server = MakeServer(kind);
    PostMarkConfig config = Config(g_quick);
    config.cleaner_hook = [s = server.get()] { s->Tick(); };
    PostMark pm(server->fs, server->clock.get(), config);
    auto report = pm.Run();
    S4_CHECK(report.ok());
    server->Drain();
    state.SetIterationTime(ToSeconds(report->create_phase + report->transaction_phase));
    state.counters["create_s"] = ToSeconds(report->create_phase);
    state.counters["txn_s"] = ToSeconds(report->transaction_phase);
    state.counters["tx_per_s"] = report->TransactionsPerSecond(config.transactions);
    g_rows[kind] = Row{*report, config.transactions, server->device->stats().writes};
    WriteBenchJson(*server, "postmark_" + Slug(kind));
  }
}

void PrintFigure3() {
  std::printf("\n=== Figure 3: PostMark benchmark (simulated seconds) ===\n");
  std::printf("%-18s %12s %14s %10s %12s\n", "server", "create (s)", "transact (s)", "tx/sec",
              "dw/txn");
  for (auto kind : {ServerKind::kS4Nas, ServerKind::kS4NasBatched, ServerKind::kS4Nfs,
                    ServerKind::kFfsNfs, ServerKind::kExt2Nfs}) {
    auto it = g_rows.find(kind);
    if (it == g_rows.end()) {
      continue;
    }
    const Row& row = it->second;
    std::printf("%-18s %12s %14s %10.1f %12.2f\n", ServerName(kind),
                Secs(row.report.create_phase).c_str(),
                Secs(row.report.transaction_phase).c_str(),
                row.report.TransactionsPerSecond(row.transactions),
                row.transactions > 0 ? static_cast<double>(row.disk_writes) / row.transactions
                                     : 0.0);
  }
  std::printf("\nExpected shape (paper): S4 comparable to, slightly faster than, the\n"
              "in-place NFS servers on both phases. The batched S4 mode (group commit\n"
              "+ vectored RPCs) should cut disk writes per transaction by >=2x.\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      s4::bench::g_quick = true;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  using s4::bench::ServerKind;
  for (auto kind : {ServerKind::kS4Nas, ServerKind::kS4NasBatched, ServerKind::kS4Nfs,
                    ServerKind::kFfsNfs, ServerKind::kExt2Nfs}) {
    std::string name = std::string("PostMark/") + s4::bench::ServerName(kind);
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [kind](::benchmark::State& state) { s4::bench::RunPostMark(state, kind); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintFigure3();
  return 0;
}
