// Back-in-time access cost vs. version depth: journal sectors read to
// reconstruct an old version, with and without the waypoint index.
//
// Backward undo reconstruction reads every journal sector newer than the
// target, so its cost grows linearly with how far back the target lies. The
// waypoint index bounds time-limited walks and lets deep targets be rebuilt
// by forward replay from the create end, making the cost O(log n + K) in
// chain depth. This bench sweeps the depth (versions between the target and
// the present) and reports the walk-sectors-read metric for both
// configurations; the deepest point is the headline number (the PR gate
// expects >= 10x fewer sectors read at depth 10k).
//
// Deliberately no remount between build and measure: a cold mount would
// rebuild the object's in-memory state by replaying the whole chain, dwarfing
// and masking the reconstruction walk this bench isolates.
//
// Usage: bench_history [--quick]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace s4 {
namespace bench {
namespace {

bool g_quick = false;

std::vector<uint64_t> DepthTargets() {
  if (g_quick) {
    return {10, 100, 1000};
  }
  return {10, 100, 1000, 10000};
}

struct Point {
  uint64_t depth = 0;
  uint64_t sectors_waypoints = 0;   // walk sectors read, waypoint index on
  uint64_t sectors_baseline = 0;    // same read, index disabled
  double disk_ms_waypoints = 0;
  double disk_ms_baseline = 0;
};
std::vector<Point> g_points;

// One configuration: builds a fresh drive, lays down `depth + 8` synced
// versions of one object, then reads back the version at `depth` writes
// before the present. Returns (walk sectors read, simulated disk millis).
struct Measured {
  uint64_t sectors = 0;
  double disk_ms = 0;
};
Measured MeasureDepth(uint64_t depth, uint32_t waypoint_interval,
                      std::unique_ptr<Server>* out_server) {
  ServerOptions options;
  options.disk_bytes = 2ull << 30;
  options.cleaner_enabled = false;  // nothing may expire mid-measurement
  options.tweak_drive_options = [waypoint_interval](S4DriveOptions& o) {
    o.waypoint_interval_sectors = waypoint_interval;
  };
  auto server = MakeServer(ServerKind::kS4Nas, options);
  S4Drive* drive = server->drive.get();
  Credentials user;
  user.user = 100;
  user.client = 1;

  auto id = drive->Create(user, {});
  S4_CHECK(id.ok());
  // Each loop iteration is one durable version: a one-block overwrite plus a
  // Sync that flushes the journal. The target version sits `depth` versions
  // before the newest.
  Bytes block(kBlockSize, 0x00);
  SimTime target_time = 0;
  uint64_t total = depth + 8;  // a small pre-target prefix, then the depth
  for (uint64_t v = 0; v < total; ++v) {
    server->clock->Advance(kSecond);
    block[0] = static_cast<uint8_t>(v);
    S4_CHECK(drive->Write(user, *id, 0, block).ok());
    S4_CHECK(drive->Sync(user).ok());
    if (v == total - depth - 1) {
      target_time = server->clock->Now();
    }
  }

  const MetricRegistry& reg = drive->metrics();
  uint64_t sectors_before = reg.CounterValue("history.walk_sectors_read");
  SimTime sim_before = server->clock->Now();
  Credentials admin;
  admin.admin_key = drive->options().admin_key;
  auto got = drive->Read(admin, *id, 0, kBlockSize, target_time);
  S4_CHECK(got.ok());
  S4_CHECK((*got)[0] == static_cast<uint8_t>(total - depth - 1));

  Measured m;
  m.sectors = reg.CounterValue("history.walk_sectors_read") - sectors_before;
  m.disk_ms = ToMillis(server->clock->Now() - sim_before);
  if (out_server != nullptr) {
    *out_server = std::move(server);
  }
  return m;
}

std::unique_ptr<Server> g_last_server;  // deepest waypoint run, for the JSON dump

void RunPoint(::benchmark::State& state, uint64_t depth) {
  for (auto _ : state) {
    Point p;
    p.depth = depth;
    bool keep = depth == DepthTargets().back();
    Measured with = MeasureDepth(depth, /*waypoint_interval=*/8,
                                 keep ? &g_last_server : nullptr);
    Measured without = MeasureDepth(depth, /*waypoint_interval=*/0, nullptr);
    p.sectors_waypoints = with.sectors;
    p.sectors_baseline = without.sectors;
    p.disk_ms_waypoints = with.disk_ms;
    p.disk_ms_baseline = without.disk_ms;
    g_points.push_back(p);
    state.SetIterationTime(std::max(with.disk_ms, 0.001) / 1e3);
    state.counters["sectors_wp"] = static_cast<double>(with.sectors);
    state.counters["sectors_base"] = static_cast<double>(without.sectors);
  }
}

void PrintSummaryAndWriteJson() {
  std::printf("\n=== Back-in-time access cost vs. version depth ===\n");
  std::printf("%8s %16s %16s %10s %14s %14s\n", "depth", "sectors (wp)",
              "sectors (base)", "ratio", "disk_ms (wp)", "disk_ms (base)");
  std::string extra = "\"history\": {\"points\": [";
  for (size_t i = 0; i < g_points.size(); ++i) {
    const Point& p = g_points[i];
    double ratio = p.sectors_waypoints > 0
                       ? static_cast<double>(p.sectors_baseline) / p.sectors_waypoints
                       : 0.0;
    std::printf("%8llu %16llu %16llu %9.1fx %14.3f %14.3f\n",
                static_cast<unsigned long long>(p.depth),
                static_cast<unsigned long long>(p.sectors_waypoints),
                static_cast<unsigned long long>(p.sectors_baseline), ratio,
                p.disk_ms_waypoints, p.disk_ms_baseline);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"depth\": %llu, \"walk_sectors_waypoints\": %llu, "
                  "\"walk_sectors_baseline\": %llu, \"ratio\": %.2f}",
                  i == 0 ? "" : ", ", static_cast<unsigned long long>(p.depth),
                  static_cast<unsigned long long>(p.sectors_waypoints),
                  static_cast<unsigned long long>(p.sectors_baseline), ratio);
    extra += buf;
  }
  extra += "]}";
  std::printf("\nExpected shape: baseline sectors grow linearly with depth; the waypoint\n"
              "configuration stays near-flat (seek overshoot bounded by the interval), so\n"
              "the ratio at the deepest point should be well past the 10x gate.\n");
  if (g_last_server != nullptr) {
    WriteBenchJson(*g_last_server, "history", extra);
  }
  // The deepest point is the acceptance gate; surface a loud failure in the
  // bench output (CI treats benches as reports, so print rather than abort).
  if (!g_points.empty()) {
    const Point& deepest = g_points.back();
    if (deepest.sectors_waypoints * 10 > deepest.sectors_baseline) {
      std::printf("\n!! GATE: depth %llu read %llu sectors with waypoints vs %llu without "
                  "(< 10x improvement)\n",
                  static_cast<unsigned long long>(deepest.depth),
                  static_cast<unsigned long long>(deepest.sectors_waypoints),
                  static_cast<unsigned long long>(deepest.sectors_baseline));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      s4::bench::g_quick = true;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  for (uint64_t depth : s4::bench::DepthTargets()) {
    std::string name = "History/depth:" + std::to_string(depth);
    ::benchmark::RegisterBenchmark(name.c_str(),
                                   [depth](::benchmark::State& state) {
                                     s4::bench::RunPoint(state, depth);
                                   })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintSummaryAndWriteJson();
  s4::bench::g_last_server.reset();
  return 0;
}
