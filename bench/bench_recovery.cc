// Mount cost: clean mounts vs. crash recovery, as a function of journal
// length since the last checkpoint.
//
// Two series, same workload:
//   clean  — Unmount() then Mount(): the quorum superblocks record the
//            checkpoint seq, so the mount skips the log scan entirely.
//            Disk cost must be flat in the journal length — O(1)-ish.
//   dirty  — crash (drop the drive) then Mount(): roll-forward must rescan
//            every chunk written after the covered sequence number, but the
//            scan is bounded to candidate segments (checkpoint-time active +
//            allocation-order free chain) and skips payload reads for chunks
//            the checkpoint already covers, so it grows with the
//            post-checkpoint journal — not with disk size.
//
// Reported per point:
//   wall_ms   host milliseconds spent inside S4Drive::Mount
//   disk_ms   simulated disk time consumed by mount I/O
//   reads     disk read commands issued by the mount
//
// Usage: bench_recovery [--quick] [--check]
//   --quick  smaller journal series (CI)
//   --check  exit non-zero unless (a) dirty recovery at the largest point
//            beats the pre-bounded-scan baseline by >= 3x, and (b) clean
//            mount disk cost is flat (max/min <= 1.5) across journal sizes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/drive/s4_drive.h"
#include "src/obs/trace.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "src/util/check.h"

namespace s4 {
namespace bench {
namespace {

constexpr uint64_t kDiskBytes = 512ull << 20;

bool g_quick = false;

struct Point {
  uint64_t journal_mb = 0;
  double wall_ms = 0;
  double disk_ms = 0;
  double audit_ms = 0;  // of disk_ms: the audit-chain tamper sweep
  uint64_t reads = 0;
};
std::vector<Point> g_dirty;
std::vector<Point> g_clean;

std::vector<uint64_t> JournalMbTargets() {
  if (g_quick) {
    return {1, 8};
  }
  return {1, 4, 16, 64};
}

// Formats a drive, grows the post-checkpoint journal to the target length,
// then either crashes (dirty) or unmounts (clean), and measures the
// subsequent Mount. The measured point lands in g_dirty or g_clean.
void RunPoint(::benchmark::State& state, uint64_t journal_mb, bool dirty) {
  for (auto _ : state) {
    SimClock clock(SimTime{1000000});
    BlockDevice device(kDiskBytes / kSectorSize, &clock);
    S4DriveOptions options;
    // Effectively disable auto-checkpoints: the only checkpoint on disk is
    // the one Format wrote, so the whole workload is roll-forward territory.
    options.checkpoint_interval_bytes = ~0ull;
    auto drive = S4Drive::Format(&device, &clock, options);
    S4_CHECK(drive.ok());

    // Grow the post-checkpoint journal to the target length: overwrite one
    // object block by block, syncing every 16 blocks so the log is made of
    // realistically sized chunks interleaved with journal sectors.
    Credentials user;
    user.user = 1;
    user.client = 1;
    auto id = (*drive)->Create(user, {});
    S4_CHECK(id.ok());
    Bytes block(kBlockSize, 0x5A);
    uint64_t target_bytes = journal_mb << 20;
    uint64_t written = 0;
    uint32_t block_index = 0;
    while (written < target_bytes) {
      S4_CHECK((*drive)->Write(user, *id, uint64_t{block_index} * kBlockSize, block).ok());
      written += kBlockSize;
      if (++block_index % 16 == 0) {
        S4_CHECK((*drive)->Sync(user).ok());
      }
      // Bound the object size so indirect chains stay realistic while the
      // journal keeps growing (overwrites version the same blocks).
      if (block_index == 2048) {
        block_index = 0;
      }
    }
    S4_CHECK((*drive)->Sync(user).ok());

    if (dirty) {
      // Crash: the drive dies with its caches; no checkpoint is written.
      drive->reset();
    } else {
      // Clean shutdown: checkpoint + clean-marked superblock replicas.
      S4_CHECK((*drive)->Unmount().ok());
      drive->reset();
    }

    DiskStats before = device.stats();
    SimTime sim_before = clock.Now();
    auto wall_start = std::chrono::steady_clock::now();
    auto mounted = S4Drive::Mount(&device, &clock, options);
    auto wall_end = std::chrono::steady_clock::now();
    S4_CHECK(mounted.ok());
    DiskStats delta = device.stats() - before;

    Point p;
    p.journal_mb = journal_mb;
    p.wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
    p.disk_ms = ToMillis(clock.Now() - sim_before);
    // The audit-chain tamper sweep runs on every mount (clean included): a
    // byte flipped offline is only caught by re-hashing the chronicle, so
    // its cost scales with operation history, not journal length. Pull it
    // out of the mount span so the clean series isolates recovery cost.
    for (const TraceEvent& e : (*mounted)->tracer().events()) {
      if (std::strcmp(e.name, "mount.audit_verify") == 0) {
        p.audit_ms += ToMillis(e.duration);
      }
    }
    if (std::getenv("BENCH_RECOVERY_SPANS") != nullptr) {
      std::map<std::string, std::pair<uint64_t, double>> agg;
      for (const TraceEvent& e : (*mounted)->tracer().events()) {
        auto& a = agg[e.name];
        ++a.first;
        a.second += ToMillis(e.duration);
      }
      std::printf("--- spans: %s journal_mb=%llu ---\n", dirty ? "dirty" : "clean",
                  static_cast<unsigned long long>(journal_mb));
      for (const auto& [name, a] : agg) {
        std::printf("  %-28s n=%-6llu %10.2f ms\n", name.c_str(),
                    static_cast<unsigned long long>(a.first), a.second);
      }
    }
    p.reads = delta.reads;
    (dirty ? g_dirty : g_clean).push_back(p);
    state.SetIterationTime(p.wall_ms / 1e3);
  }
}

void PrintSeries(const char* title, const std::vector<Point>& points) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%12s %12s %12s %12s %12s\n", "journal_mb", "wall_ms", "disk_ms",
              "audit_ms", "reads");
  for (const Point& p : points) {
    std::printf("%12llu %12.2f %12.2f %12.2f %12llu\n",
                static_cast<unsigned long long>(p.journal_mb), p.wall_ms, p.disk_ms,
                p.audit_ms, static_cast<unsigned long long>(p.reads));
  }
}

void PrintSummary() {
  PrintSeries("Clean mount cost vs. journal length (expected flat)", g_clean);
  PrintSeries("Crash-recovery cost vs. post-checkpoint journal length", g_dirty);
  std::printf("\nExpected shape: clean mounts read the superblock quorum plus the\n"
              "checkpoint — constant in the journal length. Dirty mounts grow with\n"
              "the post-checkpoint journal (bounded candidate scan), and the\n"
              "checkpoint_interval_bytes option caps that cost in deployment.\n");
}

// This bench has no long-lived Server stack (each point formats and crashes
// its own drive), so the machine-readable dump is a bare point list rather
// than the harness's per-server schema. Host wall_ms is deliberately left
// out: it varies with CI hardware, while disk_ms and reads are simulated and
// comparable across runs.
void WriteJson() {
  std::FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_recovery: cannot open BENCH_recovery.json\n");
    return;
  }
  auto dump = [f](const char* section, const std::vector<Point>& points) {
    std::fprintf(f, "  \"%s\": {\"points\": [", section);
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(f,
                   "%s{\"journal_mb\": %llu, \"disk_ms\": %.2f, \"audit_ms\": %.2f, "
                   "\"reads\": %llu}",
                   i == 0 ? "" : ", ", static_cast<unsigned long long>(p.journal_mb),
                   p.disk_ms, p.audit_ms, static_cast<unsigned long long>(p.reads));
    }
    std::fprintf(f, "]}");
  };
  std::fprintf(f, "{\n  \"bench\": \"recovery\",\n");
  dump("recovery", g_dirty);
  std::fprintf(f, ",\n");
  dump("recovery_clean", g_clean);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

// Gates, enforced with --check:
//
// (a) Dirty recovery at the largest journal must beat the unbounded-scan
//     baseline (full-disk segment sweep + per-chunk payload CRC) by >= 3x.
//     Baseline disk_ms, measured before the bounded scan landed:
//       64 MB journal: 15832.0   (full series largest point)
//        8 MB journal:  4842.12  (quick series largest point)
// (b) Clean-mount recovery cost must be flat across journal lengths: the
//     quorum vote + checkpoint load touches no log segments, so max/min
//     <= 1.5x regardless of how much journal the previous incarnation
//     wrote. The audit-chain tamper sweep is excluded: it re-hashes the
//     whole chronicle on every mount by design (audit_chain_test pins that
//     a byte flipped offline is detected AT MOUNT), so its cost necessarily
//     grows with operation history. It is reported as its own column.
int RunChecks() {
  S4_CHECK(!g_dirty.empty() && !g_clean.empty());
  int failures = 0;

  const double baseline_ms = g_quick ? 4842.12 : 15832.0;
  const Point& worst =
      *std::max_element(g_dirty.begin(), g_dirty.end(),
                        [](const Point& a, const Point& b) {
                          return a.journal_mb < b.journal_mb;
                        });
  double speedup = worst.disk_ms > 0 ? baseline_ms / worst.disk_ms : 0;
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "CHECK FAILED: dirty recovery at %llu MB took %.2f disk_ms; "
                 "baseline %.2f, speedup %.2fx < 3x\n",
                 static_cast<unsigned long long>(worst.journal_mb), worst.disk_ms,
                 baseline_ms, speedup);
    ++failures;
  }

  auto recovery_ms = [](const Point& p) { return p.disk_ms - p.audit_ms; };
  auto minmax = std::minmax_element(g_clean.begin(), g_clean.end(),
                                    [&](const Point& a, const Point& b) {
                                      return recovery_ms(a) < recovery_ms(b);
                                    });
  double lo = recovery_ms(*minmax.first);
  double hi = recovery_ms(*minmax.second);
  double flatness = lo > 0 ? hi / lo : 1e9;
  if (flatness > 1.5) {
    std::fprintf(stderr,
                 "CHECK FAILED: clean mount recovery cost (disk_ms - audit_ms) "
                 "not flat: min %.2f, max %.2f, ratio %.2fx > 1.5x\n",
                 lo, hi, flatness);
    ++failures;
  }

  if (failures == 0) {
    std::printf("\nall checks passed: dirty speedup %.2fx >= 3x, "
                "clean flatness %.2fx <= 1.5x\n",
                speedup, flatness);
  }
  return failures;
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      s4::bench::g_quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      ++i;
      continue;
    }
    for (int j = i; j + 1 < argc; ++j) {
      argv[j] = argv[j + 1];
    }
    --argc;
  }
  for (uint64_t mb : s4::bench::JournalMbTargets()) {
    for (bool dirty : {false, true}) {
      std::string name = std::string(dirty ? "Recovery" : "CleanMount") +
                         "/journal_mb:" + std::to_string(mb);
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [mb, dirty](::benchmark::State& state) {
                                       s4::bench::RunPoint(state, mb, dirty);
                                     })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintSummary();
  s4::bench::WriteJson();
  return check ? s4::bench::RunChecks() : 0;
}
