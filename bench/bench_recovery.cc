// Crash-recovery cost: mount (checkpoint load + log roll-forward) time as a
// function of journal length since the last checkpoint.
//
// The S4 recovery design writes checkpoints on a byte cadence precisely to
// bound this: roll-forward must rescan every chunk written after the covered
// sequence number, so mount cost should grow linearly with the
// post-checkpoint log — and the checkpoint interval is the knob trading
// steady-state checkpoint traffic against worst-case recovery time.
//
// Reported per point:
//   wall_ms   host milliseconds spent inside S4Drive::Mount
//   disk_ms   simulated disk time consumed by recovery I/O
//   reads     disk read commands issued by recovery
//
// Usage: bench_recovery [--quick]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/drive/s4_drive.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "src/util/check.h"

namespace s4 {
namespace bench {
namespace {

constexpr uint64_t kDiskBytes = 512ull << 20;

bool g_quick = false;

struct Point {
  uint64_t journal_mb = 0;
  double wall_ms = 0;
  double disk_ms = 0;
  uint64_t reads = 0;
};
std::vector<Point> g_points;

std::vector<uint64_t> JournalMbTargets() {
  if (g_quick) {
    return {1, 8};
  }
  return {1, 4, 16, 64};
}

void RunPoint(::benchmark::State& state, uint64_t journal_mb) {
  for (auto _ : state) {
    SimClock clock(SimTime{1000000});
    BlockDevice device(kDiskBytes / kSectorSize, &clock);
    S4DriveOptions options;
    // Effectively disable auto-checkpoints: the only checkpoint on disk is
    // the one Format wrote, so the whole workload is roll-forward work.
    options.checkpoint_interval_bytes = ~0ull;
    auto drive = S4Drive::Format(&device, &clock, options);
    S4_CHECK(drive.ok());

    // Grow the post-checkpoint journal to the target length: overwrite one
    // object block by block, syncing every 16 blocks so the log is made of
    // realistically sized chunks interleaved with journal sectors.
    Credentials user;
    user.user = 1;
    user.client = 1;
    auto id = (*drive)->Create(user, {});
    S4_CHECK(id.ok());
    Bytes block(kBlockSize, 0x5A);
    uint64_t target_bytes = journal_mb << 20;
    uint64_t written = 0;
    uint32_t block_index = 0;
    while (written < target_bytes) {
      S4_CHECK((*drive)->Write(user, *id, uint64_t{block_index} * kBlockSize, block).ok());
      written += kBlockSize;
      if (++block_index % 16 == 0) {
        S4_CHECK((*drive)->Sync(user).ok());
      }
      // Bound the object size so indirect chains stay realistic while the
      // journal keeps growing (overwrites version the same blocks).
      if (block_index == 2048) {
        block_index = 0;
      }
    }
    S4_CHECK((*drive)->Sync(user).ok());

    // Crash: the drive object dies with its caches; no checkpoint is written.
    drive->reset();

    DiskStats before = device.stats();
    SimTime sim_before = clock.Now();
    auto wall_start = std::chrono::steady_clock::now();
    auto mounted = S4Drive::Mount(&device, &clock, options);
    auto wall_end = std::chrono::steady_clock::now();
    S4_CHECK(mounted.ok());
    DiskStats delta = device.stats() - before;

    Point p;
    p.journal_mb = journal_mb;
    p.wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
    p.disk_ms = ToMillis(clock.Now() - sim_before);
    p.reads = delta.reads;
    g_points.push_back(p);
    state.SetIterationTime(p.wall_ms / 1e3);
  }
}

void PrintSummary() {
  std::printf("\n=== Recovery cost vs. post-checkpoint journal length ===\n");
  std::printf("%12s %12s %12s %12s\n", "journal_mb", "wall_ms", "disk_ms", "reads");
  for (const Point& p : g_points) {
    std::printf("%12llu %12.2f %12.2f %12llu\n",
                static_cast<unsigned long long>(p.journal_mb), p.wall_ms, p.disk_ms,
                static_cast<unsigned long long>(p.reads));
  }
  std::printf("\nExpected shape: both disk time and read count grow linearly with the\n"
              "journal length — recovery rescans every post-checkpoint chunk. The\n"
              "checkpoint_interval_bytes option caps this cost in deployment.\n");
}

// This bench has no long-lived Server stack (each point formats and crashes
// its own drive), so the machine-readable dump is a bare point list rather
// than the harness's per-server schema. Host wall_ms is deliberately left
// out: it varies with CI hardware, while disk_ms and reads are simulated and
// comparable across runs.
void WriteJson() {
  std::FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_recovery: cannot open BENCH_recovery.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"recovery\",\n  \"recovery\": {\"points\": [");
  for (size_t i = 0; i < g_points.size(); ++i) {
    const Point& p = g_points[i];
    std::fprintf(f, "%s{\"journal_mb\": %llu, \"disk_ms\": %.2f, \"reads\": %llu}",
                 i == 0 ? "" : ", ", static_cast<unsigned long long>(p.journal_mb),
                 p.disk_ms, static_cast<unsigned long long>(p.reads));
  }
  std::fprintf(f, "]}\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      s4::bench::g_quick = true;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  for (uint64_t mb : s4::bench::JournalMbTargets()) {
    std::string name = "Recovery/journal_mb:" + std::to_string(mb);
    ::benchmark::RegisterBenchmark(name.c_str(),
                                   [mb](::benchmark::State& state) {
                                     s4::bench::RunPoint(state, mb);
                                   })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintSummary();
  s4::bench::WriteJson();
  return 0;
}
