// Design-choice ablations for the S4 drive (DESIGN.md section 6).
//
// Three sweeps isolate the structural decisions the paper's design rests on:
//   segment size     - bigger segments batch more per sequential write but
//                      roll over less gracefully;
//   buffer cache     - the sharp 2%->10% drop in Figure 5 is the working set
//                      escaping the cache, so cache size moves the knee;
//   journal packing  - how many pending entries are packed per flush trades
//                      journal-sector count against sync latency.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/harness.h"
#include "src/workload/postmark.h"

namespace s4 {
namespace bench {
namespace {

struct Row {
  std::string label;
  double tx_per_sec = 0;
  uint64_t journal_sectors = 0;
};
std::vector<Row> g_segment_rows;
std::vector<Row> g_cache_rows;
std::vector<Row> g_journal_rows;

PostMarkConfig WorkloadConfig() {
  PostMarkConfig config;
  config.file_count = 1500;
  config.transactions = 6000;
  return config;
}

Row RunWith(S4DriveOptions drive_opts, const std::string& label) {
  auto clock = std::make_unique<SimClock>();
  auto device = std::make_unique<BlockDevice>((1ull << 30) / kSectorSize, clock.get());
  auto drive = S4Drive::Format(device.get(), clock.get(), drive_opts);
  S4_CHECK(drive.ok());
  S4RpcServer server(drive->get());
  LoopbackTransport transport(&server, clock.get());
  Credentials user;
  user.user = 100;
  user.client = 1;
  S4Client client(&transport, user);
  auto fs = S4FileSystem::Format(&client, "root");
  S4_CHECK(fs.ok());

  PostMarkConfig config = WorkloadConfig();
  config.cleaner_hook = [&] {
    if ((*drive)->CleanerNeeded()) {
      S4_CHECK((*drive)->RunCleanerPass(2).ok());
    }
  };
  PostMark pm(fs->get(), clock.get(), config);
  auto report = pm.Run();
  S4_CHECK(report.ok());
  Row row;
  row.label = label;
  row.tx_per_sec = report->TransactionsPerSecond(config.transactions);
  row.journal_sectors = (*drive)->stats().journal_sectors_written;
  return row;
}

void SegmentSizeSweep(::benchmark::State& state, uint32_t segment_sectors) {
  for (auto _ : state) {
    S4DriveOptions opts;
    opts.segment_sectors = segment_sectors;
    Row row = RunWith(opts, std::to_string(segment_sectors * kSectorSize / 1024) + "KB");
    g_segment_rows.push_back(row);
    state.counters["tx_per_s"] = row.tx_per_sec;
    state.SetIterationTime(1.0);
  }
}

void CacheSizeSweep(::benchmark::State& state, uint64_t cache_bytes) {
  for (auto _ : state) {
    S4DriveOptions opts;
    opts.block_cache_bytes = cache_bytes;
    Row row = RunWith(opts, std::to_string(cache_bytes >> 20) + "MB");
    g_cache_rows.push_back(row);
    state.counters["tx_per_s"] = row.tx_per_sec;
    state.SetIterationTime(1.0);
  }
}

void JournalPackingSweep(::benchmark::State& state, uint64_t flush_entries) {
  for (auto _ : state) {
    S4DriveOptions opts;
    opts.journal_flush_entries = flush_entries;
    Row row = RunWith(opts, std::to_string(flush_entries) + " entries");
    g_journal_rows.push_back(row);
    state.counters["tx_per_s"] = row.tx_per_sec;
    state.counters["journal_sectors"] = static_cast<double>(row.journal_sectors);
    state.SetIterationTime(1.0);
  }
}

void PrintAblations() {
  auto print = [](const char* title, const std::vector<Row>& rows, bool journal) {
    std::printf("\n--- ablation: %s ---\n", title);
    for (const Row& row : rows) {
      if (journal) {
        std::printf("  %-14s %8.1f tx/s   %8llu journal sectors\n", row.label.c_str(),
                    row.tx_per_sec, static_cast<unsigned long long>(row.journal_sectors));
      } else {
        std::printf("  %-14s %8.1f tx/s\n", row.label.c_str(), row.tx_per_sec);
      }
    }
  };
  std::printf("\n=== Design-choice ablations (PostMark 1500 files / 6000 txns) ===\n");
  print("segment size", g_segment_rows, false);
  print("drive buffer cache size", g_cache_rows, false);
  print("journal packing threshold", g_journal_rows, true);
  std::printf("\nExpected: throughput is flat-to-slightly-better with larger segments\n"
              "(sync writes dominate); cache size sets where the Figure 5 knee sits;\n"
              "journal packing barely moves throughput because NFSv2 syncs flush\n"
              "per-op anyway — the LFS structure, not the packing, is what matters.\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (uint32_t seg : {128u, 512u, 1024u, 4096u}) {
    std::string name = "Ablation/segment_kb:" + std::to_string(seg * 512 / 1024);
    ::benchmark::RegisterBenchmark(name.c_str(), [seg](::benchmark::State& state) {
      s4::bench::SegmentSizeSweep(state, seg);
    })->UseManualTime()->Iterations(1);
  }
  for (uint64_t mb : {4ull, 16ull, 64ull}) {
    std::string name = "Ablation/cache_mb:" + std::to_string(mb);
    ::benchmark::RegisterBenchmark(name.c_str(), [mb](::benchmark::State& state) {
      s4::bench::CacheSizeSweep(state, mb << 20);
    })->UseManualTime()->Iterations(1);
  }
  for (uint64_t entries : {8ull, 64ull, 512ull}) {
    std::string name = "Ablation/journal_flush:" + std::to_string(entries);
    ::benchmark::RegisterBenchmark(name.c_str(), [entries](::benchmark::State& state) {
      s4::bench::JournalPackingSweep(state, entries);
    })->UseManualTime()->Iterations(1);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintAblations();
  return 0;
}
