// Figure 5: cleaner overhead vs. capacity utilisation.
//
// PostMark transactions against S4 with the initial file set scaled to fill
// 2%..90% of the disk, run once with no cleaning and once with continuous
// foreground cleaning competing for the disk arm. Paper result: performance
// falls as utilisation rises (cache + disk locality), and foreground
// cleaning costs up to ~50% in the worst case — more than a classic LFS
// cleaner, because S4 cleans object-by-object and history pins segments.
//
// Scaled for the harness: 1GB disk (paper: 2GB), 10,000 transactions
// (paper: 50,000). Utilisation is the swept variable either way.
//
// Usage: bench_cleaner [--quick]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "bench/harness.h"
#include "src/exec/drive_executor.h"
#include "src/workload/postmark.h"

namespace s4 {
namespace bench {
namespace {

constexpr uint64_t kDiskBytes = 1ull << 30;
constexpr uint32_t kTransactions = 10000;
// Average PostMark file is ~4.9KB of data, but a create also appends a
// directory record (a fresh 4KB directory-block version whose predecessor
// joins the history pool) plus journal sectors: ~15KB of log per create.
constexpr uint64_t kBytesPerFile = 15 * 1024;

bool g_quick = false;

struct Point {
  double utilization = 0;
  double tx_per_sec = 0;
};
std::map<bool, std::vector<Point>> g_series;  // cleaning? -> points

std::vector<uint32_t> UtilizationTargets() {
  if (g_quick) {
    return {2, 30, 65};
  }
  return {2, 10, 30, 50, 65, 80};
}

void RunPoint(::benchmark::State& state, uint32_t util_percent, bool cleaning) {
  for (auto _ : state) {
    ServerOptions options;
    options.disk_bytes = kDiskBytes;
    // Short enough that versions age out during the run, so the cleaner has
    // real reclamation work whose per-freed-byte cost grows with utilisation
    // (the classic LFS cleaning economics the paper measures).
    options.detection_window = kMinute;
    auto server = MakeServer(ServerKind::kS4Nfs, options);

    // Fill the disk to the target utilisation. A 15KB file lands on disk
    // with journal framing, directory metadata, and per-op audit-chronicle
    // records — measured at ~1.53x the payload — so derate the fill by that
    // factor; otherwise the high-utilisation points overshoot into a full
    // disk before the transaction phase. The figure plots *measured*
    // utilisation (the `util` counter), not the nominal target.
    constexpr uint64_t kOnDiskBytesPerFile = kBytesPerFile * 155 / 100;
    uint32_t files = static_cast<uint32_t>(kDiskBytes * util_percent / 100 /
                                           kOnDiskBytesPerFile);
    PostMarkConfig config;
    config.file_count = std::max<uint32_t>(files, 100);
    config.transactions = kTransactions;
    config.max_append = 2048;
    if (cleaning) {
      // Continuous foreground cleaning: expiry + compaction passes compete
      // with the benchmark for the disk arm instead of waiting for idle time.
      config.cleaner_hook = [s = server.get()] {
        S4_CHECK(s->drive->RunCleanerPass(1, /*force_compaction=*/true).ok());
      };
      config.cleaner_interval = 100;
    }
    PostMark pm(server->fs, server->clock.get(), config);
    auto created = pm.RunCreateOnly();
    S4_CHECK(created.ok());
    double utilization = server->drive->SpaceUtilization();

    auto report = pm.RunTransactionsOnly();
    S4_CHECK(report.ok());
    double tps = report->TransactionsPerSecond(config.transactions);
    state.SetIterationTime(ToSeconds(report->transaction_phase));
    state.counters["util"] = utilization;
    state.counters["tx_per_s"] = tps;
    g_series[cleaning].push_back(Point{utilization, tps});
  }
}

// ---------------------------------------------------------------------------
// Steady-state cleaning cost: incremental (expiry index + waypoint seek) vs
// the full-scan baseline. Most of the disk is pinned by static live data so
// the cleaner runs in its space-pressure regime (no expiry batching), and a
// small population of hot objects keeps window-long chains churning. Each
// steady pass then has a little expirable tail per object; the full-scan
// baseline re-reads every object's whole surviving chain to find it, while
// the incremental cleaner seeks straight to it. The PR gate expects the
// incremental passes to read >= 5x fewer journal sectors.
// ---------------------------------------------------------------------------

struct SteadyState {
  uint64_t passes = 0;
  uint64_t walk_sectors = 0;
  uint64_t objects_visited = 0;
  uint64_t freed_sectors = 0;
};
SteadyState g_steady[2];                       // [incremental?]
std::unique_ptr<Server> g_steady_server;       // incremental run, for the JSON

SteadyState RunSteadyState(bool incremental) {
  const uint32_t kObjects = g_quick ? 4 : 6;
  const SimDuration kWindow = g_quick ? 10 * kMinute : 20 * kMinute;
  const SimDuration kSpacing = 10 * kSecond;
  const SimDuration kBuildSpan = kWindow + kWindow / 2;
  const int kPasses = g_quick ? 4 : 8;
  const SimDuration kPassEvery = kMinute;

  ServerOptions options;
  options.disk_bytes = 128ull << 20;
  options.detection_window = kWindow;
  options.tweak_drive_options = [incremental](S4DriveOptions& o) {
    o.cleaner_incremental = incremental;
    o.waypoint_interval_sectors = 4;
    // The static filler drives utilisation high on purpose; the throttle is
    // not what this scenario measures.
    o.throttle_threshold = 2.0;
    o.reject_threshold = 2.0;
  };
  auto server = MakeServer(ServerKind::kS4Nas, options);
  S4Drive* drive = server->drive.get();
  Credentials user;
  user.user = 100;
  user.client = 1;

  // Pin ~80% of the disk with static live data: free segments drop below the
  // cleaner's comfort threshold, which turns expiry batching off — the
  // steady-state regime where every pass must earn its sectors back.
  auto filler = drive->Create(user, {});
  S4_CHECK(filler.ok());
  Bytes mb(1 << 20, 0x42);
  for (uint64_t off = 0; off < (104ull << 20); off += mb.size()) {
    S4_CHECK(drive->Write(user, *filler, off, mb).ok());
  }
  S4_CHECK(drive->Sync(user).ok());

  // Hot population: one synced one-block version per object per step, chains
  // spanning 1.5 windows so the tail is already expirable.
  std::vector<ObjectId> ids;
  for (uint32_t i = 0; i < kObjects; ++i) {
    auto id = drive->Create(user, {});
    S4_CHECK(id.ok());
    ids.push_back(*id);
  }
  Bytes block(kBlockSize, 0);
  auto churn_step = [&](uint64_t step) {
    server->clock->Advance(kSpacing);
    block[0] = static_cast<uint8_t>(step);
    for (ObjectId id : ids) {
      S4_CHECK(drive->Write(user, id, 0, block).ok());
    }
    S4_CHECK(drive->Sync(user).ok());
  };
  uint64_t build_steps = kBuildSpan / kSpacing;
  for (uint64_t step = 0; step < build_steps; ++step) {
    churn_step(step);
  }

  // Warm-up pass: drains the half-window backlog (expensive in both modes,
  // not what steady state measures).
  S4_CHECK(drive->RunCleanerPass(1).ok());

  const MetricRegistry& reg = drive->metrics();
  SteadyState result;
  uint64_t sectors0 = reg.CounterValue("cleaner.walk_sectors_read");
  uint64_t visited0 = reg.CounterValue("cleaner.objects_visited");
  uint64_t freed0 = reg.CounterValue("cleaner.sectors_expired");
  for (int pass = 0; pass < kPasses; ++pass) {
    for (uint64_t step = 0; step < kPassEvery / kSpacing; ++step) {
      churn_step(step);
    }
    S4_CHECK(drive->RunCleanerPass(1).ok());
    ++result.passes;
  }
  result.walk_sectors = reg.CounterValue("cleaner.walk_sectors_read") - sectors0;
  result.objects_visited = reg.CounterValue("cleaner.objects_visited") - visited0;
  result.freed_sectors = reg.CounterValue("cleaner.sectors_expired") - freed0;
  if (incremental) {
    g_steady_server = std::move(server);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Idle-slice scheduling vs inline cleaning: foreground tail latency.
//
// A burst of foreground writes runs through the DriveExecutor while the
// cleaner has a real reclamation backlog. "Inline" forces a cleaner pass
// into the burst every 64 submissions, the pre-executor discipline.
// "Idle-slice" requests maintenance just as often but lets the executor's
// scheduler grant it only in queue-empty gaps (with its starvation floor),
// so cleaning slides behind the burst instead of stalling it. The foreground
// sojourn p99 — submission-to-completion simulated time — must not regress
// when cleaning moves to idle slices; that is this scenario's gate.
// ---------------------------------------------------------------------------

struct IdleSlicePoint {
  double fg_p99_us = 0;       // p99 foreground sojourn (burst start -> op done)
  double fg_makespan_s = 0;   // burst start -> last foreground completion
  uint64_t cleaner_passes = 0;
};
IdleSlicePoint g_idle_slice[2];  // [idle?]

IdleSlicePoint RunIdleSlicePoint(bool idle_slice) {
  const uint32_t kObjects = 8;
  const uint32_t kBurst = g_quick ? 256 : 1024;
  const uint32_t kMaintEvery = 64;
  const SimDuration kWindow = kMinute;

  ServerOptions options;
  options.disk_bytes = 256ull << 20;
  options.detection_window = kWindow;
  auto server = MakeServer(ServerKind::kS4Nas, options);
  S4Drive* drive = server->drive.get();
  Credentials user;
  user.user = 100;
  user.client = 1;

  // Build an expirable backlog: version chains spanning 1.5 windows, so the
  // passes taken during the burst do real reclamation work.
  std::vector<ObjectId> ids;
  for (uint32_t i = 0; i < kObjects; ++i) {
    auto id = drive->Create(user, {});
    S4_CHECK(id.ok());
    ids.push_back(*id);
  }
  Bytes block(4096, 0x6C);
  const SimDuration kSpacing = 10 * kSecond;
  for (uint64_t step = 0; step < (kWindow + kWindow / 2) / kSpacing; ++step) {
    server->clock->Advance(kSpacing);
    block[0] = static_cast<uint8_t>(step);
    for (ObjectId id : ids) {
      S4_CHECK(drive->Write(user, id, 0, block).ok());
    }
    S4_CHECK(drive->Sync(user).ok());
  }

  const uint64_t passes0 = drive->metrics().CounterValue("cleaner.passes");
  std::mutex mu;
  std::vector<SimDuration> sojourns;
  sojourns.reserve(kBurst);
  IdleSlicePoint p;
  {
    DriveExecutor::Options eopts;
    eopts.workers = 1;
    DriveExecutor exec(server->clock.get(), {drive}, eopts);
    if (idle_slice) {
      exec.AttachMaintenance(0, [drive] {
        auto r = drive->RunCleanerPass(1, /*force_compaction=*/true);
        return r.ok() && drive->CleanerNeeded();
      });
    }
    SimClock* clock = server->clock.get();
    const SimTime t0 = clock->Now();
    for (uint32_t i = 0; i < kBurst; ++i) {
      if (i % kMaintEvery == 0) {
        if (idle_slice) {
          exec.SubmitMaintenance(0);
        } else {
          exec.Submit(0, 0, DriveExecutor::Mode::kExclusive, [drive] {
            S4_CHECK(drive->RunCleanerPass(1, /*force_compaction=*/true).ok());
          });
        }
      }
      const ObjectId id = ids[i % ids.size()];
      exec.Submit(0, id, DriveExecutor::Mode::kExclusive,
                  [drive, clock, id, t0, &block, &user, &mu, &sojourns] {
                    S4_CHECK(drive->Write(user, id, 0, block).ok());
                    std::lock_guard<std::mutex> lock(mu);
                    sojourns.push_back(clock->Now() - t0);
                  });
    }
    exec.Drain();
  }
  S4_CHECK(sojourns.size() == kBurst);
  std::sort(sojourns.begin(), sojourns.end());
  p.fg_p99_us = static_cast<double>(sojourns[(kBurst * 99) / 100 - 1]);
  p.fg_makespan_s = ToSeconds(sojourns.back());
  p.cleaner_passes = drive->metrics().CounterValue("cleaner.passes") - passes0;
  return p;
}

void RunIdleSliceComparison() {
  g_idle_slice[1] = RunIdleSlicePoint(/*idle_slice=*/true);
  g_idle_slice[0] = RunIdleSlicePoint(/*idle_slice=*/false);
  const IdleSlicePoint& idle = g_idle_slice[1];
  const IdleSlicePoint& inl = g_idle_slice[0];
  std::printf("\n=== Idle-slice cleaning vs inline: foreground tail ===\n");
  std::printf("%12s %14s %16s %14s\n", "mode", "fg p99 (us)", "fg makespan (s)",
              "cleaner passes");
  std::printf("%12s %14.0f %16.3f %14llu\n", "idle-slice", idle.fg_p99_us,
              idle.fg_makespan_s, static_cast<unsigned long long>(idle.cleaner_passes));
  std::printf("%12s %14.0f %16.3f %14llu\n", "inline", inl.fg_p99_us,
              inl.fg_makespan_s, static_cast<unsigned long long>(inl.cleaner_passes));
  if (idle.fg_p99_us > inl.fg_p99_us) {
    std::printf("\n!! GATE: idle-slice foreground p99 %.0fus regressed past inline "
                "cleaning %.0fus\n", idle.fg_p99_us, inl.fg_p99_us);
  }
}

void RunSteadyStateComparison() {
  g_steady[1] = RunSteadyState(/*incremental=*/true);
  g_steady[0] = RunSteadyState(/*incremental=*/false);
  const SteadyState& inc = g_steady[1];
  const SteadyState& full = g_steady[0];
  double ratio = inc.walk_sectors > 0
                     ? static_cast<double>(full.walk_sectors) / inc.walk_sectors
                     : 0.0;
  std::printf("\n=== Steady-state cleaning: incremental vs full-scan ===\n");
  std::printf("%14s %14s %16s %14s\n", "mode", "walk sectors", "objects visited",
              "freed sectors");
  std::printf("%14s %14llu %16llu %14llu\n", "incremental",
              static_cast<unsigned long long>(inc.walk_sectors),
              static_cast<unsigned long long>(inc.objects_visited),
              static_cast<unsigned long long>(inc.freed_sectors));
  std::printf("%14s %14llu %16llu %14llu\n", "full-scan",
              static_cast<unsigned long long>(full.walk_sectors),
              static_cast<unsigned long long>(full.objects_visited),
              static_cast<unsigned long long>(full.freed_sectors));
  std::printf("%14s %13.1fx\n", "ratio", ratio);
  if (ratio < 5.0) {
    std::printf("\n!! GATE: steady-state incremental pass read only %.1fx fewer sectors "
                "than full scan (< 5x)\n", ratio);
  }
  if (g_steady_server != nullptr) {
    char extra[1024];
    std::string figure5;
    for (bool cleaning : {false, true}) {
      for (const Point& p : g_series[cleaning]) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%s{\"util\": %.3f, \"tx_per_s\": %.1f, \"cleaning\": %s}",
                      figure5.empty() ? "" : ", ", p.utilization, p.tx_per_sec,
                      cleaning ? "true" : "false");
        figure5 += buf;
      }
    }
    std::snprintf(extra, sizeof(extra),
                  "\"cleaner\": {\"steady_state\": {\"passes\": %llu, "
                  "\"walk_sectors_incremental\": %llu, \"walk_sectors_full_scan\": %llu, "
                  "\"freed_sectors_incremental\": %llu, \"freed_sectors_full_scan\": %llu, "
                  "\"ratio\": %.2f}, "
                  "\"idle_slice\": {\"fg_p99_us\": %.0f, \"fg_p99_us_inline\": %.0f, "
                  "\"fg_makespan_s\": %.3f, \"inline_makespan_s\": %.3f, "
                  "\"passes\": %llu}, \"figure5\": [%s]}",
                  static_cast<unsigned long long>(inc.passes),
                  static_cast<unsigned long long>(inc.walk_sectors),
                  static_cast<unsigned long long>(full.walk_sectors),
                  static_cast<unsigned long long>(inc.freed_sectors),
                  static_cast<unsigned long long>(full.freed_sectors), ratio,
                  g_idle_slice[1].fg_p99_us, g_idle_slice[0].fg_p99_us,
                  g_idle_slice[1].fg_makespan_s, g_idle_slice[0].fg_makespan_s,
                  static_cast<unsigned long long>(g_idle_slice[1].cleaner_passes),
                  figure5.c_str());
    WriteBenchJson(*g_steady_server, "cleaner", extra);
    g_steady_server.reset();
  }
}

void PrintFigure5() {
  std::printf("\n=== Figure 5: foreground cleaning overhead vs. utilisation ===\n");
  std::printf("(PostMark, %u transactions, %lluMB disk)\n\n", kTransactions,
              static_cast<unsigned long long>(kDiskBytes >> 20));
  std::printf("%12s %18s %18s %12s\n", "utilisation", "no-clean (tx/s)", "cleaning (tx/s)",
              "overhead");
  const auto& off = g_series[false];
  const auto& on = g_series[true];
  for (size_t i = 0; i < off.size() && i < on.size(); ++i) {
    double overhead = off[i].tx_per_sec > 0
                          ? 100.0 * (1.0 - on[i].tx_per_sec / off[i].tx_per_sec)
                          : 0.0;
    std::printf("%11.0f%% %18.1f %18.1f %11.1f%%\n", off[i].utilization * 100,
                off[i].tx_per_sec, on[i].tx_per_sec, overhead);
  }
  std::printf("\nExpected shape (paper): throughput falls with utilisation; continuous\n"
              "foreground cleaning costs up to ~50%% at high utilisation, and the extra\n"
              "utilisation contributed by the history pool adds ~10%% more cleaning\n"
              "overhead (the section 5.1.5 example).\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      s4::bench::g_quick = true;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  for (bool cleaning : {false, true}) {
    for (uint32_t util : s4::bench::UtilizationTargets()) {
      std::string name = "Cleaner/util:" + std::to_string(util) + "/clean:" +
                         (cleaning ? "on" : "off");
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [util, cleaning](::benchmark::State& state) {
                                       s4::bench::RunPoint(state, util, cleaning);
                                     })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(::benchmark::kSecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintFigure5();
  s4::bench::RunIdleSliceComparison();
  s4::bench::RunSteadyStateComparison();
  return 0;
}
