// Figure 5: cleaner overhead vs. capacity utilisation.
//
// PostMark transactions against S4 with the initial file set scaled to fill
// 2%..90% of the disk, run once with no cleaning and once with continuous
// foreground cleaning competing for the disk arm. Paper result: performance
// falls as utilisation rises (cache + disk locality), and foreground
// cleaning costs up to ~50% in the worst case — more than a classic LFS
// cleaner, because S4 cleans object-by-object and history pins segments.
//
// Scaled for the harness: 1GB disk (paper: 2GB), 10,000 transactions
// (paper: 50,000). Utilisation is the swept variable either way.
//
// Usage: bench_cleaner [--quick]
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <vector>

#include "bench/harness.h"
#include "src/workload/postmark.h"

namespace s4 {
namespace bench {
namespace {

constexpr uint64_t kDiskBytes = 1ull << 30;
constexpr uint32_t kTransactions = 10000;
// Average PostMark file is ~4.9KB of data, but a create also appends a
// directory record (a fresh 4KB directory-block version whose predecessor
// joins the history pool) plus journal sectors: ~15KB of log per create.
constexpr uint64_t kBytesPerFile = 15 * 1024;

bool g_quick = false;

struct Point {
  double utilization = 0;
  double tx_per_sec = 0;
};
std::map<bool, std::vector<Point>> g_series;  // cleaning? -> points

std::vector<uint32_t> UtilizationTargets() {
  if (g_quick) {
    return {2, 30, 65};
  }
  return {2, 10, 30, 50, 65, 80};
}

void RunPoint(::benchmark::State& state, uint32_t util_percent, bool cleaning) {
  for (auto _ : state) {
    ServerOptions options;
    options.disk_bytes = kDiskBytes;
    // Short enough that versions age out during the run, so the cleaner has
    // real reclamation work whose per-freed-byte cost grows with utilisation
    // (the classic LFS cleaning economics the paper measures).
    options.detection_window = kMinute;
    auto server = MakeServer(ServerKind::kS4Nfs, options);

    // Fill the disk to the target utilisation.
    uint32_t files = static_cast<uint32_t>(kDiskBytes * util_percent / 100 / kBytesPerFile);
    PostMarkConfig config;
    config.file_count = std::max<uint32_t>(files, 100);
    config.transactions = kTransactions;
    config.max_append = 2048;
    if (cleaning) {
      // Continuous foreground cleaning: expiry + compaction passes compete
      // with the benchmark for the disk arm instead of waiting for idle time.
      config.cleaner_hook = [s = server.get()] {
        S4_CHECK(s->drive->RunCleanerPass(1, /*force_compaction=*/true).ok());
      };
      config.cleaner_interval = 100;
    }
    PostMark pm(server->fs, server->clock.get(), config);
    auto created = pm.RunCreateOnly();
    S4_CHECK(created.ok());
    double utilization = server->drive->SpaceUtilization();

    auto report = pm.RunTransactionsOnly();
    S4_CHECK(report.ok());
    double tps = report->TransactionsPerSecond(config.transactions);
    state.SetIterationTime(ToSeconds(report->transaction_phase));
    state.counters["util"] = utilization;
    state.counters["tx_per_s"] = tps;
    g_series[cleaning].push_back(Point{utilization, tps});
  }
}

void PrintFigure5() {
  std::printf("\n=== Figure 5: foreground cleaning overhead vs. utilisation ===\n");
  std::printf("(PostMark, %u transactions, %lluMB disk)\n\n", kTransactions,
              static_cast<unsigned long long>(kDiskBytes >> 20));
  std::printf("%12s %18s %18s %12s\n", "utilisation", "no-clean (tx/s)", "cleaning (tx/s)",
              "overhead");
  const auto& off = g_series[false];
  const auto& on = g_series[true];
  for (size_t i = 0; i < off.size() && i < on.size(); ++i) {
    double overhead = off[i].tx_per_sec > 0
                          ? 100.0 * (1.0 - on[i].tx_per_sec / off[i].tx_per_sec)
                          : 0.0;
    std::printf("%11.0f%% %18.1f %18.1f %11.1f%%\n", off[i].utilization * 100,
                off[i].tx_per_sec, on[i].tx_per_sec, overhead);
  }
  std::printf("\nExpected shape (paper): throughput falls with utilisation; continuous\n"
              "foreground cleaning costs up to ~50%% at high utilisation, and the extra\n"
              "utilisation contributed by the history pool adds ~10%% more cleaning\n"
              "overhead (the section 5.1.5 example).\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      s4::bench::g_quick = true;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  for (bool cleaning : {false, true}) {
    for (uint32_t util : s4::bench::UtilizationTargets()) {
      std::string name = "Cleaner/util:" + std::to_string(util) + "/clean:" +
                         (cleaning ? "on" : "off");
      ::benchmark::RegisterBenchmark(name.c_str(),
                                     [util, cleaning](::benchmark::State& state) {
                                       s4::bench::RunPoint(state, util, cleaning);
                                     })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(::benchmark::kSecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintFigure5();
  return 0;
}
