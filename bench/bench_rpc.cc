// Table 1: the S4 RPC interface — every operation exercised end to end over
// the network transport, with measured per-operation latency and its
// time-based-access capability.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/harness.h"
#include "src/util/rng.h"

namespace s4 {
namespace bench {
namespace {

struct OpRow {
  const char* name;
  bool time_based;
  const char* description;
  double mean_us = 0;
};

std::vector<OpRow> g_rows = {
    {"Create", false, "Create an object", 0},
    {"Delete", false, "Delete an object", 0},
    {"Read", true, "Read data from an object", 0},
    {"Write", false, "Write data to an object", 0},
    {"Append", false, "Append data to the end of an object", 0},
    {"Truncate", false, "Truncate an object to a specified length", 0},
    {"GetAttr", true, "Get the attributes of an object", 0},
    {"SetAttr", false, "Set the opaque attributes of an object", 0},
    {"GetACLByUser", true, "Get an ACL entry by UserID", 0},
    {"GetACLByIndex", true, "Get an ACL entry by table index", 0},
    {"SetACL", false, "Set an ACL entry for an object", 0},
    {"PCreate", false, "Create a partition (name -> ObjectID)", 0},
    {"PDelete", false, "Delete a partition", 0},
    {"PList", true, "List the partitions", 0},
    {"PMount", true, "Retrieve the ObjectID given its name", 0},
    {"Sync", false, "Sync the entire cache to disk", 0},
    {"Flush", false, "Remove all versions between two times (admin)", 0},
    {"FlushO", false, "Remove versions of one object (admin)", 0},
    {"SetWindow", false, "Adjust the guaranteed detection window (admin)", 0},
};

constexpr int kReps = 64;

void MeasureAll(::benchmark::State& state) {
  for (auto _ : state) {
    auto server = MakeServer(ServerKind::kS4Nas);
    S4Client* client = server->client.get();
    Credentials admin;
    admin.admin_key = server->drive->options().admin_key;
    S4Client admin_client(server->transport.get(), admin);
    SimClock* clock = server->clock.get();
    Rng rng(3);
    Bytes payload = rng.RandomBytes(4096);

    auto timed = [&](const char* name, auto&& fn) {
      SimTime t0 = clock->Now();
      for (int i = 0; i < kReps; ++i) {
        fn(i);
      }
      double mean = static_cast<double>(clock->Now() - t0) / kReps;
      for (auto& row : g_rows) {
        if (std::string(row.name) == name) {
          row.mean_us = mean;
        }
      }
    };

    // Working objects.
    std::vector<ObjectId> ids;
    for (int i = 0; i < kReps + 2; ++i) {
      auto id = client->Create({});
      S4_CHECK(id.ok());
      S4_CHECK(client->Write(*id, 0, payload).ok());
      ids.push_back(*id);
    }
    SimTime version_time = clock->Now();
    clock->Advance(kSecond);

    timed("Create", [&](int) { S4_CHECK(client->Create({}).ok()); });
    timed("Write", [&](int i) { S4_CHECK(client->Write(ids[i], 0, payload).ok()); });
    timed("Append", [&](int i) { S4_CHECK(client->Append(ids[i], payload).ok()); });
    timed("Read", [&](int i) { S4_CHECK(client->Read(ids[i], 0, 4096).ok()); });
    timed("Truncate", [&](int i) { S4_CHECK(client->Truncate(ids[i], 1024).ok()); });
    timed("GetAttr", [&](int i) { S4_CHECK(client->GetAttr(ids[i]).ok()); });
    timed("SetAttr", [&](int i) { S4_CHECK(client->SetAttr(ids[i], BytesOf("a")).ok()); });
    timed("SetACL", [&](int i) {
      S4_CHECK(client->SetAcl(ids[i], AclEntry{200, kPermRead}).ok());
    });
    timed("GetACLByUser", [&](int i) { S4_CHECK(client->GetAclByUser(ids[i], 200).ok()); });
    timed("GetACLByIndex", [&](int i) { S4_CHECK(client->GetAclByIndex(ids[i], 0).ok()); });
    timed("PCreate", [&](int i) {
      S4_CHECK(client->PCreate("part" + std::to_string(i), ids[i]).ok());
    });
    timed("PMount", [&](int i) {
      S4_CHECK(client->PMount("part" + std::to_string(i)).ok());
    });
    timed("PList", [&](int) { S4_CHECK(client->PList().ok()); });
    timed("PDelete", [&](int i) {
      S4_CHECK(client->PDelete("part" + std::to_string(i)).ok());
    });
    timed("Sync", [&](int) { S4_CHECK(client->Sync().ok()); });
    timed("Delete", [&](int i) { S4_CHECK(client->Delete(ids[i]).ok()); });
    timed("FlushO", [&](int i) {
      S4_CHECK(admin_client.FlushObject(ids[i], 0, version_time).ok());
    });
    timed("Flush", [&](int) { S4_CHECK(admin_client.Flush(0, 1).ok()); });
    timed("SetWindow", [&](int) { S4_CHECK(admin_client.SetWindow(7 * kDay).ok()); });

    state.SetIterationTime(ToSeconds(clock->Now()));
    WriteBenchJson(*server, "rpc_table1");
  }
}

void PrintTable1() {
  std::printf("\n=== Table 1: S4 RPC interface (measured over the network transport) ===\n");
  std::printf("%-15s %6s %12s   %s\n", "RPC", "time?", "mean (us)", "description");
  for (const auto& row : g_rows) {
    std::printf("%-15s %6s %12.0f   %s\n", row.name, row.time_based ? "yes" : "no",
                row.mean_us, row.description);
  }
  std::printf("\nAll modifications create new versions; time-based reads accept an extra\n"
              "time parameter resolved against the history pool.\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

BENCHMARK(s4::bench::MeasureAll)->UseManualTime()->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintTable1();
  return 0;
}
