// Section 5.1.5: the fundamental performance cost of self-securing storage.
//
// Compares the full S4 configuration (comprehensive versioning + auditing)
// against the same drive with both disabled — a plain journaling LFS that
// provides no data-protection guarantees. Paper claim: the fundamental costs
// degrade performance by less than 13%.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workload/microbench.h"
#include "src/workload/postmark.h"

namespace s4 {
namespace bench {
namespace {

ServerOptions Protection(bool enabled) {
  ServerOptions options;
  options.versioning_enabled = enabled;
  options.audit_enabled = enabled;
  return options;
}

std::map<bool, SimDuration> g_postmark;
std::map<bool, SimDuration> g_micro;

void RunPostMarkCfg(::benchmark::State& state, bool protection) {
  for (auto _ : state) {
    auto server = MakeServer(ServerKind::kS4Nfs, Protection(protection));
    PostMarkConfig config;
    config.file_count = 2000;
    config.transactions = 8000;
    config.cleaner_hook = [s = server.get()] { s->Tick(); };
    PostMark pm(server->fs, server->clock.get(), config);
    auto report = pm.Run();
    S4_CHECK(report.ok());
    SimDuration total = report->create_phase + report->transaction_phase;
    g_postmark[protection] = total;
    state.SetIterationTime(ToSeconds(total));
    WriteBenchJson(*server, std::string("fundamental_postmark_") +
                                (protection ? "protected" : "unprotected"));
  }
}

void RunMicroCfg(::benchmark::State& state, bool protection) {
  for (auto _ : state) {
    auto server = MakeServer(ServerKind::kS4Nfs, Protection(protection));
    MicrobenchConfig config;
    config.file_count = 5000;
    auto report = RunSmallFileMicrobench(server->fs, server->clock.get(), config);
    S4_CHECK(report.ok());
    SimDuration total = report->create + report->read + report->remove;
    g_micro[protection] = total;
    state.SetIterationTime(ToSeconds(total));
    WriteBenchJson(*server, std::string("fundamental_micro_") +
                                (protection ? "protected" : "unprotected"));
  }
}

void PrintSection515() {
  auto overhead = [](SimDuration with, SimDuration without) {
    return 100.0 * (ToSeconds(with) / ToSeconds(without) - 1.0);
  };
  std::printf("\n=== Section 5.1.5: fundamental costs of self-securing storage ===\n");
  std::printf("(full versioning+auditing vs. the same drive with no protection)\n\n");
  std::printf("%-22s %16s %16s %10s\n", "workload", "unprotected (s)", "protected (s)",
              "cost");
  std::printf("%-22s %16s %16s %9.1f%%\n", "PostMark",
              Secs(g_postmark[false]).c_str(), Secs(g_postmark[true]).c_str(),
              overhead(g_postmark[true], g_postmark[false]));
  std::printf("%-22s %16s %16s %9.1f%%\n", "small-file microbench",
              Secs(g_micro[false]).c_str(), Secs(g_micro[true]).c_str(),
              overhead(g_micro[true], g_micro[false]));
  std::printf("\nExpected shape (paper): versioning is nearly free (journal-based\n"
              "metadata + LFS), auditing costs 1-3%%; total fundamental cost < 13%%.\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (bool protection : {false, true}) {
    std::string pm_name =
        std::string("PostMark/protection:") + (protection ? "on" : "off");
    ::benchmark::RegisterBenchmark(pm_name.c_str(),
                                   [protection](::benchmark::State& state) {
                                     s4::bench::RunPostMarkCfg(state, protection);
                                   })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
    std::string mb_name =
        std::string("Microbench/protection:") + (protection ? "on" : "off");
    ::benchmark::RegisterBenchmark(mb_name.c_str(),
                                   [protection](::benchmark::State& state) {
                                     s4::bench::RunMicroCfg(state, protection);
                                   })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintSection515();
  return 0;
}
