// Shared benchmark harness: constructs the four server configurations the
// paper compares (section 5.1.1) on identical simulated hardware.
//
//   s4-nas  - S4 drive as network-attached object store; the S4 client
//             daemon runs on the client machine, so every S4 RPC crosses
//             the 100Mb network (Figure 1a).
//   s4-nfs  - S4-enhanced NFS server: NFS-to-S4 translation co-located with
//             the drive; only NFS operations cross the network (Figure 1b).
//   ffs-nfs - FreeBSD-like NFS server exporting an FFS-style in-place file
//             system with synchronous metadata.
//   ext2-nfs- Linux-2.2-like NFS server whose "synchronous" mount defers
//             metadata writes (the flaw the paper observed).
#ifndef S4_BENCH_HARNESS_H_
#define S4_BENCH_HARNESS_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/ffs_like.h"
#include "src/drive/s4_drive.h"
#include "src/fs/nfs_wrapper.h"
#include "src/fs/s4_fs.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "src/util/check.h"

namespace s4 {
namespace bench {

enum class ServerKind { kS4Nas, kS4NasBatched, kS4Nfs, kFfsNfs, kExt2Nfs };

inline const char* ServerName(ServerKind kind) {
  switch (kind) {
    case ServerKind::kS4Nas:
      return "S4-NAS";
    case ServerKind::kS4NasBatched:
      return "S4-NAS-batched";
    case ServerKind::kS4Nfs:
      return "S4-NFS";
    case ServerKind::kFfsNfs:
      return "BSD-FFS-NFS";
    case ServerKind::kExt2Nfs:
      return "Linux-ext2-NFS";
  }
  return "?";
}

struct ServerOptions {
  uint64_t disk_bytes = 2ull << 30;
  // Paper testbed: 128MB drive buffer cache, 32MB object cache, 512MB server
  // RAM for the NFS baselines. Buffer cache scaled ~1/2 to keep the harness
  // snappy while preserving cache-to-working-set ratios.
  uint64_t s4_block_cache = 64ull << 20;
  uint64_t s4_object_cache = 32ull << 20;
  uint64_t ffs_buffer_cache = 96ull << 20;
  SimDuration detection_window = 7 * kDay;
  bool audit_enabled = true;
  bool versioning_enabled = true;
  bool cleaner_enabled = true;
  // ext2 personality: background metadata write-back cadence.
  uint32_t ext2_flush_every_ops = 512;
  // Batched S4 mode (kS4NasBatched): how many mutating NFS ops share one
  // Sync RPC, and whether the final mutating RPC rides the same kBatch frame
  // as the Sync. Ignored by the other kinds.
  uint32_t fs_group_commit_ops = 32;
  bool fs_batch_rpcs = true;
  // Last-word hook over the drive options (S4 kinds only): runs after the
  // fields above are applied, so ablation benches can flip knobs the
  // ServerOptions surface does not expose (waypoint cadence, cleaner pacing).
  std::function<void(S4DriveOptions&)> tweak_drive_options;
};

// One fully wired server + client stack. All members are owned; `fs` is the
// FileSystemApi workloads should use.
struct Server {
  ServerKind kind;
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<S4Drive> drive;
  std::unique_ptr<S4RpcServer> rpc_server;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<S4Client> client;
  std::unique_ptr<S4FileSystem> s4_fs;
  std::unique_ptr<FfsLikeServer> ffs;
  std::unique_ptr<NfsServerWrapper> nfs;
  FileSystemApi* fs = nullptr;
  uint32_t ext2_flush_every_ops = 0;
  uint64_t ops_since_flush = 0;

  // Housekeeping between operations: background cleaning for S4, deferred
  // metadata write-back for the ext2 personality. Call periodically from
  // workload hooks.
  void Tick() {
    if (drive != nullptr && drive->CleanerNeeded()) {
      S4_CHECK(drive->RunCleanerPass(2).ok());
    }
    if (ffs != nullptr && ext2_flush_every_ops > 0 &&
        ++ops_since_flush >= ext2_flush_every_ops) {
      ops_since_flush = 0;
      S4_CHECK(ffs->FlushMetadata().ok());
    }
  }

  double SimSeconds() const { return ToSeconds(clock->Now()); }

  // Drains any deferred group-commit sync (batched S4 mode) so results are
  // durable before stats are read or the workload ends.
  void Drain() {
    if (s4_fs != nullptr) {
      S4_CHECK(s4_fs->Commit().ok());
    }
  }
};

inline std::unique_ptr<Server> MakeServer(ServerKind kind, ServerOptions options = {}) {
  auto server = std::make_unique<Server>();
  server->kind = kind;
  server->clock = std::make_unique<SimClock>(SimTime{0});
  server->device =
      std::make_unique<BlockDevice>(options.disk_bytes / kSectorSize, server->clock.get());

  Credentials user;
  user.user = 100;
  user.client = 1;

  switch (kind) {
    case ServerKind::kS4Nas:
    case ServerKind::kS4NasBatched:
    case ServerKind::kS4Nfs: {
      S4DriveOptions drive_opts;
      drive_opts.block_cache_bytes = options.s4_block_cache;
      drive_opts.object_cache_bytes = options.s4_object_cache;
      drive_opts.detection_window = options.detection_window;
      drive_opts.audit_enabled = options.audit_enabled;
      drive_opts.versioning_enabled = options.versioning_enabled;
      drive_opts.cleaner_enabled = options.cleaner_enabled;
      if (options.tweak_drive_options) {
        options.tweak_drive_options(drive_opts);
      }
      auto drive = S4Drive::Format(server->device.get(), server->clock.get(), drive_opts);
      S4_CHECK(drive.ok());
      server->drive = std::move(*drive);
      server->rpc_server = std::make_unique<S4RpcServer>(server->drive.get());
      NetModel net;
      if (kind == ServerKind::kS4Nfs) {
        // Translation co-located with the drive: S4 RPCs are local.
        net.per_message_latency = 2;
        net.bandwidth_mb_s = 400.0;
      }
      server->transport = std::make_unique<LoopbackTransport>(server->rpc_server.get(),
                                                              server->clock.get(), net);
      server->client = std::make_unique<S4Client>(server->transport.get(), user);
      S4FileSystemOptions fs_opts;
      if (kind == ServerKind::kS4NasBatched) {
        fs_opts.group_commit_ops = options.fs_group_commit_ops;
        fs_opts.batch_rpcs = options.fs_batch_rpcs;
      }
      auto fs = S4FileSystem::Format(server->client.get(), "root", fs_opts);
      S4_CHECK(fs.ok());
      server->s4_fs = std::move(*fs);
      if (kind == ServerKind::kS4Nfs) {
        server->nfs = std::make_unique<NfsServerWrapper>(server->s4_fs.get(),
                                                         server->clock.get());
        server->fs = server->nfs.get();
      } else {
        server->fs = server->s4_fs.get();
      }
      break;
    }
    case ServerKind::kFfsNfs:
    case ServerKind::kExt2Nfs: {
      FfsOptions ffs_opts;
      ffs_opts.sync_metadata = kind == ServerKind::kFfsNfs;
      ffs_opts.buffer_cache_bytes = options.ffs_buffer_cache;
      auto fs = FfsLikeServer::Format(server->device.get(), server->clock.get(), ffs_opts);
      S4_CHECK(fs.ok());
      server->ffs = std::move(*fs);
      server->nfs =
          std::make_unique<NfsServerWrapper>(server->ffs.get(), server->clock.get());
      server->fs = server->nfs.get();
      if (kind == ServerKind::kExt2Nfs) {
        server->ext2_flush_every_ops = options.ext2_flush_every_ops;
      }
      break;
    }
  }
  return server;
}

// Formats a simulated duration as seconds with 2 decimals.
inline std::string Secs(SimDuration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ToSeconds(d));
  return buf;
}

// Machine-readable results: writes BENCH_<name>.json in the working
// directory with the op mix and latency percentiles (from the drive's per-op
// histograms), bytes moved on disk and network, and the full metric dump.
// Baseline servers without an S4 drive get the disk section only. CI uploads
// these files as artifacts so runs can be compared across commits.
//
// `extra_sections`, when non-empty, is raw JSON spliced in as additional
// top-level members (e.g. "\"history\": {...}") — benches use it for sweep
// tables that do not fit the per-server schema.
inline bool WriteBenchJson(const Server& server, const std::string& name,
                           const std::string& extra_sections = "") {
  std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteBenchJson: cannot open %s\n", path.c_str());
    return false;
  }
  auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"server\": \"%s\",\n  \"sim_seconds\": %.6f,\n",
               name.c_str(), ServerName(server.kind), server.SimSeconds());
  const DiskStats& disk = server.device->stats();
  std::fprintf(f,
               "  \"disk\": {\"reads\": %llu, \"writes\": %llu, \"bytes_read\": %llu, "
               "\"bytes_written\": %llu, \"seeks\": %llu, \"busy_seconds\": %.6f}",
               u(disk.reads), u(disk.writes), u(disk.sectors_read * kSectorSize),
               u(disk.sectors_written * kSectorSize), u(disk.seeks),
               ToSeconds(disk.busy_time));
  if (server.transport != nullptr) {
    const NetStats& net = server.transport->stats();
    std::fprintf(f,
                 ",\n  \"net\": {\"messages_sent\": %llu, \"bytes_sent\": %llu, "
                 "\"messages_received\": %llu, \"bytes_received\": %llu}",
                 u(net.messages_sent), u(net.bytes_sent), u(net.messages_received),
                 u(net.bytes_received));
  }
  if (server.s4_fs != nullptr) {
    const S4FileSystemStats& fss = server.s4_fs->stats();
    std::fprintf(f,
                 ",\n  \"fs\": {\"rpc_syncs\": %llu, \"deferred_syncs\": %llu, "
                 "\"rpc_batches\": %llu}",
                 u(fss.rpc_syncs), u(fss.deferred_syncs), u(fss.rpc_batches));
  }
  if (server.drive != nullptr) {
    const SegmentWriterStats& sw = server.drive->writer_stats();
    std::fprintf(f,
                 ",\n  \"lfs\": {\"records_appended\": %llu, \"chunks_flushed\": %llu, "
                 "\"sectors_flushed\": %llu, \"bytes_coalesced\": %llu, "
                 "\"bytes_flushed\": %llu}",
                 u(sw.records_appended), u(sw.chunks_flushed), u(sw.sectors_flushed),
                 u(sw.bytes_coalesced), u(sw.bytes_flushed));
    const MetricRegistry& reg = server.drive->metrics();
    std::fprintf(f, ",\n  \"ops\": {");
    bool first = true;
    for (int op = 1; op <= kMaxRpcOp; ++op) {
      const char* op_name = RpcOpName(static_cast<RpcOp>(op));
      const Histogram* h =
          reg.FindHistogram(std::string("drive.op.") + op_name + ".latency");
      if (h == nullptr || h->count() == 0) {
        continue;
      }
      std::fprintf(f,
                   "%s\n    \"%s\": {\"count\": %llu, \"mean_us\": %.1f, \"p50_us\": %lld, "
                   "\"p90_us\": %lld, \"p99_us\": %lld, \"max_us\": %lld}",
                   first ? "" : ",", op_name, u(h->count()), h->Mean(),
                   static_cast<long long>(h->Percentile(0.50)),
                   static_cast<long long>(h->Percentile(0.90)),
                   static_cast<long long>(h->Percentile(0.99)),
                   static_cast<long long>(h->max()));
      first = false;
    }
    std::fprintf(f, "%s},\n  \"metrics\": %s", first ? "" : "\n  ", reg.ToJson().c_str());
  } else {
    std::fprintf(f, "\n");
  }
  if (!extra_sections.empty()) {
    std::fprintf(f, ",\n  %s\n", extra_sections.c_str());
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace bench
}  // namespace s4

#endif  // S4_BENCH_HARNESS_H_
