// ShardRouter array benchmarks: aggregate throughput scaling (N=1/2/4),
// degraded-read penalty after a device loss, and rebuild interference on
// foreground traffic.
//
// The simulator is single-threaded, so an N-shard run executes shard work
// serially even though a real array overlaps it. Every shard call is
// attributed to its shard by the router (attributed_busy), and the bench
// reconstructs the parallel makespan as
//
//     makespan = elapsed - sum(busy) + max(busy)
//
// i.e. all non-drive time (client, network issue, think time) stays serial
// and the per-shard device time overlaps, bounded by the busiest shard.
//
// N=1 runs with parity disabled (a one-drive array has nothing to pair a
// parity object with); N=2/4 pay full parity maintenance, so the scaling
// numbers include the redundancy tax.
//
// Usage: bench_cluster [--quick] [--check]
//   --quick  smaller PostMark configuration (CI)
//   --check  exit non-zero unless N=4 aggregate throughput >= 2.5x N=1 and
//            the rebuild stayed within its per-tick byte budget
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/shard_router.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "src/util/check.h"
#include "src/workload/postmark.h"

namespace s4 {
namespace bench {
namespace {

Bytes Payload(size_t n, char fill) { return Bytes(n, static_cast<uint8_t>(fill)); }

// One N-drive array: drives, RPC plumbing, router. Mirrors the single-drive
// bench harness but with per-shard endpoints so the network model, like the
// drives, is per-device (and therefore parallel under the makespan model).
struct Cluster {
  std::unique_ptr<SimClock> clock;
  // Small caches so the working set actually hits the platters: the point of
  // the scaling runs is device-time overlap, which a cache that swallows the
  // whole object set would hide.
  S4DriveOptions opts = [] {
    S4DriveOptions o;
    o.segment_sectors = 512;  // 256KB
    o.block_cache_bytes = 1 << 20;
    o.object_cache_bytes = 64 << 10;
    o.checkpoint_interval_bytes = 4 << 20;
    return o;
  }();
  std::vector<std::unique_ptr<BlockDevice>> devices;
  std::vector<std::unique_ptr<S4Drive>> drives;
  std::vector<std::unique_ptr<S4RpcServer>> servers;
  std::vector<std::unique_ptr<LoopbackTransport>> transports;
  std::unique_ptr<ShardRouter> router;

  size_t AddDrive() {
    size_t i = devices.size();
    devices.push_back(
        std::make_unique<BlockDevice>((512ull << 20) / kSectorSize, clock.get()));
    auto drive = S4Drive::Format(devices.back().get(), clock.get(), opts);
    S4_CHECK(drive.ok());
    drives.push_back(std::move(*drive));
    servers.push_back(
        std::make_unique<S4RpcServer>(drives.back().get(), static_cast<int32_t>(i)));
    transports.push_back(std::make_unique<LoopbackTransport>(
        servers.back().get(), clock.get(), NetModel(), "shard" + std::to_string(i)));
    return i;
  }

  ShardEndpoint Endpoint(size_t i) {
    ShardEndpoint ep;
    ep.drive = drives[i].get();
    ep.transport = transports[i].get();
    return ep;
  }
};

std::unique_ptr<Cluster> MakeCluster(size_t n, bool parity) {
  auto c = std::make_unique<Cluster>();
  c->clock = std::make_unique<SimClock>(SimTime{0});
  for (size_t i = 0; i < n; ++i) {
    c->AddDrive();
  }
  std::vector<ShardEndpoint> eps;
  for (size_t i = 0; i < n; ++i) {
    eps.push_back(c->Endpoint(i));
  }
  Credentials user;
  user.user = 100;
  user.client = 1;
  ShardRouter::Options ropts;
  ropts.admin_key = c->opts.admin_key;
  ropts.parity_enabled = parity;
  auto router = ShardRouter::Format(std::move(eps), c->clock.get(), user, ropts);
  S4_CHECK(router.ok());
  c->router = std::move(*router);
  return c;
}

// Busy-time snapshot for makespan reconstruction over a phase.
struct BusySnapshot {
  std::vector<SimDuration> busy;
  SimTime start = 0;
};

BusySnapshot Snap(const Cluster& c) {
  return BusySnapshot{c.router->attributed_busy(), c.clock->Now()};
}

struct Makespan {
  double elapsed_s = 0;   // serial simulation time
  double makespan_s = 0;  // reconstructed parallel time
  double max_busy_s = 0;  // busiest shard (the scaling bound)
};

Makespan MeasureSince(const Cluster& c, const BusySnapshot& s0) {
  SimDuration elapsed = c.clock->Now() - s0.start;
  const std::vector<SimDuration>& busy = c.router->attributed_busy();
  SimDuration sum = 0;
  SimDuration mx = 0;
  for (size_t i = 0; i < busy.size(); ++i) {
    SimDuration d = busy[i] - (i < s0.busy.size() ? s0.busy[i] : 0);
    sum += d;
    mx = std::max(mx, d);
  }
  Makespan m;
  m.elapsed_s = ToSeconds(elapsed);
  m.makespan_s = ToSeconds(elapsed - sum + mx);
  m.max_busy_s = ToSeconds(mx);
  return m;
}

int64_t PercentileUs(std::vector<SimDuration> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// --- Phase 1: PostMark-style scaling ----------------------------------------

struct ScalePoint {
  size_t n = 0;
  bool parity = false;
  uint32_t transactions = 0;
  Makespan txn;
  double tx_per_s = 0;
  uint64_t parity_deltas = 0;
};

// PostMark transaction mix issued directly against the object API: each
// transaction reads one object and appends to (or rewrites a block of)
// another, the same read/append pairing PostMark's transaction phase uses.
// Running the raw object plane keeps every shard's work attributable to the
// router, which is what the makespan model needs.
struct ObjectSet {
  std::vector<ObjectId> ids;
  std::vector<uint64_t> sizes;
};

ObjectSet Populate(Cluster& c, uint32_t count, uint32_t object_bytes) {
  ObjectSet set;
  for (uint32_t i = 0; i < count; ++i) {
    auto id = c.router->Create({});
    S4_CHECK(id.ok());
    S4_CHECK(c.router->Write(*id, 0, Payload(object_bytes, 'a' + (i % 23))).ok());
    set.ids.push_back(*id);
    set.sizes.push_back(object_bytes);
  }
  S4_CHECK(c.router->Sync().ok());
  return set;
}

ScalePoint RunScale(size_t n, bool quick) {
  const uint32_t kObjects = quick ? 400 : 1200;
  const uint32_t kTransactions = quick ? 4000 : 20000;
  const uint32_t kObjectBytes = 4096;
  const uint32_t kAppendBytes = 1024;

  auto c = MakeCluster(n, /*parity=*/n > 1);
  ObjectSet set = Populate(*c, kObjects, kObjectBytes);

  uint64_t rng = 0x5eedul * (n + 1);
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };

  BusySnapshot snap = Snap(*c);
  for (uint32_t t = 0; t < kTransactions; ++t) {
    size_t r = next() % set.ids.size();
    size_t w = next() % set.ids.size();
    // PostMark pairs a read with an append per transaction (no overwrites in
    // the transaction phase); appends are also the parity-friendly case — the
    // XOR delta needs no old-data read.
    auto data = c->router->Read(set.ids[r], 0, kObjectBytes);
    S4_CHECK(data.ok());
    auto sz = c->router->Append(set.ids[w], Payload(kAppendBytes, 'x'));
    S4_CHECK(sz.ok());
    set.sizes[w] = *sz;
    if (t % 64 == 0) {
      S4_CHECK(c->router->MaintainShards().ok());
    }
  }
  S4_CHECK(c->router->Sync().ok());

  ScalePoint point;
  point.n = n;
  point.parity = n > 1;
  point.transactions = kTransactions;
  point.txn = MeasureSince(*c, snap);
  point.tx_per_s =
      point.txn.makespan_s > 0 ? kTransactions / point.txn.makespan_s : 0;
  point.parity_deltas = c->router->rstats().parity_deltas;
  return point;
}

// --- Phase 2: degraded-read penalty -----------------------------------------

struct DegradedResult {
  double healthy_read_us = 0;
  double degraded_read_us = 0;
  double penalty_x = 0;
};

// --- Phase 3: rebuild interference ------------------------------------------

struct RebuildResult {
  uint64_t budget_bytes = 0;
  uint64_t ticks = 0;
  uint64_t bytes_reconstructed = 0;
  uint64_t entries = 0;
  double avg_tick_bytes = 0;
  int64_t baseline_p99_us = 0;    // foreground op p99, shard down but no rebuild
  int64_t foreground_p99_us = 0;  // foreground op p99 while rebuilding
  double interference_x = 0;
  bool completed = false;
  bool under_budget = false;
};

// Phases 2+3 share one 4-shard array: measure reads healthy, kill a shard,
// measure the same reads degraded, then attach a spare and rebuild under
// foreground traffic.
void RunDegradedAndRebuild(bool quick, DegradedResult* degraded, RebuildResult* rebuild) {
  const size_t kShards = 4;
  const uint32_t kObjects = quick ? 64 : 160;
  const uint32_t kObjectBytes = 4096;
  const size_t kFailed = 1;

  auto c = MakeCluster(kShards, /*parity=*/true);
  ObjectSet set = Populate(*c, kObjects, kObjectBytes);

  // Objects homed on the shard we are about to lose (their reads go
  // degraded) and on survivors (safe foreground targets during rebuild).
  std::vector<ObjectId> on_failed;
  std::vector<ObjectId> on_survivors;
  for (ObjectId id : set.ids) {
    const ShardMap::GidInfo* info = c->router->map().Find(id);
    S4_CHECK(info != nullptr);
    (info->shard == kFailed ? on_failed : on_survivors).push_back(id);
  }
  S4_CHECK(!on_failed.empty());
  S4_CHECK(!on_survivors.empty());

  auto timed_read = [&](ObjectId id) {
    SimTime t0 = c->clock->Now();
    auto data = c->router->Read(id, 0, kObjectBytes);
    S4_CHECK(data.ok());
    S4_CHECK(data->size() == kObjectBytes);
    return c->clock->Now() - t0;
  };

  // Foreground mix used for the interference baseline and during rebuild:
  // read one survivor object, append to another. No creates — a create whose
  // gid routes to the rebuilding shard is refused (kUnavailable) by design.
  uint64_t rng = 0xfeedul;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  auto foreground_op = [&](std::vector<SimDuration>* lat) {
    SimTime t0 = c->clock->Now();
    auto data = c->router->Read(on_survivors[next() % on_survivors.size()], 0, 512);
    S4_CHECK(data.ok());
    auto sz =
        c->router->Append(on_survivors[next() % on_survivors.size()], Payload(512, 'f'));
    S4_CHECK(sz.ok());
    // Durable op, like the paper's synchronous NFS-backed workloads: the
    // flush cost lands inside every sample instead of spiking the unlucky op
    // that happens to fill the in-memory segment.
    S4_CHECK(c->router->Sync().ok());
    lat->push_back(c->clock->Now() - t0);
  };

  // Healthy read latency (mean over the soon-to-be-degraded set).
  SimDuration healthy_total = 0;
  for (ObjectId id : on_failed) {
    healthy_total += timed_read(id);
  }

  c->router->FailShard(kFailed);

  SimDuration degraded_total = 0;
  for (ObjectId id : on_failed) {
    degraded_total += timed_read(id);
  }

  // Interference baseline: the foreground mix in the same degraded state the
  // rebuild will run in (parity subs to the dead shard are skipped either
  // way), but with no rebuild I/O competing. A short warmup first so both
  // measured loops run against warmed caches.
  std::vector<SimDuration> warmup_lat;
  for (int i = 0; i < 32; ++i) {
    foreground_op(&warmup_lat);
  }
  std::vector<SimDuration> baseline_lat;
  const int kBaselineOps = quick ? 64 : 200;
  for (int i = 0; i < kBaselineOps; ++i) {
    foreground_op(&baseline_lat);
  }
  degraded->healthy_read_us =
      static_cast<double>(healthy_total) / static_cast<double>(on_failed.size());
  degraded->degraded_read_us =
      static_cast<double>(degraded_total) / static_cast<double>(on_failed.size());
  degraded->penalty_x = degraded->healthy_read_us > 0
                            ? degraded->degraded_read_us / degraded->healthy_read_us
                            : 0;

  // Attach a freshly formatted spare and rebuild under budget, pumping the
  // foreground mix between ticks.
  size_t spare = c->AddDrive();
  S4_CHECK(c->router->AttachSpare(kFailed, c->Endpoint(spare)).ok());
  rebuild->budget_bytes = quick ? 8ull << 10 : 16ull << 10;

  std::vector<SimDuration> rebuild_lat;
  bool done = false;
  while (!done) {
    auto tick = c->router->RebuildTick(rebuild->budget_bytes);
    S4_CHECK(tick.ok());
    done = *tick;
    foreground_op(&rebuild_lat);
    foreground_op(&rebuild_lat);
    S4_CHECK(c->router->rebuild_progress().ticks < 100000 || done);
  }
  const RebuildProgress& prog = c->router->rebuild_progress();
  rebuild->ticks = prog.ticks;
  rebuild->bytes_reconstructed = prog.bytes_reconstructed;
  rebuild->entries = prog.entries_done;
  rebuild->avg_tick_bytes =
      prog.ticks > 0 ? static_cast<double>(prog.bytes_reconstructed) / prog.ticks : 0;
  rebuild->baseline_p99_us = PercentileUs(baseline_lat, 0.99);
  rebuild->foreground_p99_us = PercentileUs(rebuild_lat, 0.99);
  rebuild->interference_x =
      rebuild->baseline_p99_us > 0
          ? static_cast<double>(rebuild->foreground_p99_us) / rebuild->baseline_p99_us
          : 0;
  rebuild->completed = done;
  // A tick may overshoot by the final entry it starts (one object plus its
  // lane record), never by more.
  rebuild->under_budget =
      rebuild->avg_tick_bytes <= rebuild->budget_bytes + kObjectBytes + kParityDataOffset;

  // The rebuilt shard must serve every lost object's content directly again.
  for (ObjectId id : on_failed) {
    auto data = c->router->Read(id, 0, kObjectBytes);
    S4_CHECK(data.ok());
    S4_CHECK(data->size() == kObjectBytes);
  }
  S4_CHECK(c->router->rstats().degraded_reads > 0);
}

// --- Reporting ---------------------------------------------------------------

void WriteJson(const std::vector<ScalePoint>& scaling, const DegradedResult& degraded,
               const RebuildResult& rebuild, double speedup) {
  std::FILE* f = std::fopen("BENCH_cluster.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_cluster: cannot open BENCH_cluster.json\n");
    return;
  }
  auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::fprintf(f, "{\n  \"bench\": \"cluster\",\n  \"server\": \"S4-array\",\n");
  std::fprintf(f, "  \"cluster\": {\n    \"scaling\": [");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& p = scaling[i];
    std::fprintf(f,
                 "%s\n      {\"n\": %zu, \"parity\": %s, \"transactions\": %u, "
                 "\"elapsed_s\": %.6f, \"makespan_s\": %.6f, \"max_busy_s\": %.6f, "
                 "\"tx_per_s\": %.1f, \"parity_deltas\": %llu}",
                 i == 0 ? "" : ",", p.n, p.parity ? "true" : "false", p.transactions,
                 p.txn.elapsed_s, p.txn.makespan_s, p.txn.max_busy_s, p.tx_per_s,
                 u(p.parity_deltas));
  }
  std::fprintf(f, "\n    ],\n    \"speedup_4x\": %.3f,\n", speedup);
  std::fprintf(f,
               "    \"degraded\": {\"healthy_read_us\": %.1f, \"degraded_read_us\": %.1f, "
               "\"penalty_x\": %.3f},\n",
               degraded.healthy_read_us, degraded.degraded_read_us, degraded.penalty_x);
  std::fprintf(f,
               "    \"rebuild\": {\"budget_bytes\": %llu, \"ticks\": %llu, "
               "\"bytes_reconstructed\": %llu, \"entries\": %llu, "
               "\"avg_tick_bytes\": %.1f, \"baseline_p99_us\": %lld, "
               "\"foreground_p99_us\": %lld, \"interference_x\": %.3f, "
               "\"completed\": %s, \"under_budget\": %s}\n",
               u(rebuild.budget_bytes), u(rebuild.ticks), u(rebuild.bytes_reconstructed),
               u(rebuild.entries), rebuild.avg_tick_bytes,
               static_cast<long long>(rebuild.baseline_p99_us),
               static_cast<long long>(rebuild.foreground_p99_us), rebuild.interference_x,
               rebuild.completed ? "true" : "false",
               rebuild.under_budget ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

int Run(bool quick, bool check) {
  std::vector<ScalePoint> scaling;
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}}) {
    std::printf("bench_cluster: scaling run N=%zu%s...\n", n,
                n > 1 ? " (parity on)" : " (parity off)");
    scaling.push_back(RunScale(n, quick));
  }

  DegradedResult degraded;
  RebuildResult rebuild;
  std::printf("bench_cluster: degraded + rebuild phases (N=4)...\n");
  RunDegradedAndRebuild(quick, &degraded, &rebuild);

  double speedup = scaling.front().tx_per_s > 0
                       ? scaling.back().tx_per_s / scaling.front().tx_per_s
                       : 0;

  std::printf("\n=== ShardRouter scaling (transaction mix, parallel makespan) ===\n");
  std::printf("%4s %8s %8s %12s %12s %10s %10s\n", "N", "parity", "txns", "elapsed(s)",
              "makespan(s)", "tx/sec", "speedup");
  for (const ScalePoint& p : scaling) {
    std::printf("%4zu %8s %8u %12.2f %12.2f %10.1f %9.2fx\n", p.n,
                p.parity ? "yes" : "no", p.transactions, p.txn.elapsed_s,
                p.txn.makespan_s, p.tx_per_s,
                scaling.front().tx_per_s > 0 ? p.tx_per_s / scaling.front().tx_per_s : 0);
  }
  std::printf("\n=== Degraded reads (one shard lost, XOR reconstruction) ===\n");
  std::printf("healthy %.0fus -> degraded %.0fus  (penalty %.2fx)\n",
              degraded.healthy_read_us, degraded.degraded_read_us, degraded.penalty_x);
  std::printf("\n=== Online rebuild (budget %llu KB/tick) ===\n",
              static_cast<unsigned long long>(rebuild.budget_bytes >> 10));
  std::printf("%llu entries in %llu ticks, %.1f KB/tick avg (%s), foreground p99 "
              "%lldus vs %lldus degraded-idle (%.2fx)\n",
              static_cast<unsigned long long>(rebuild.entries),
              static_cast<unsigned long long>(rebuild.ticks),
              rebuild.avg_tick_bytes / 1024.0,
              rebuild.under_budget ? "under budget" : "OVER BUDGET",
              static_cast<long long>(rebuild.foreground_p99_us),
              static_cast<long long>(rebuild.baseline_p99_us), rebuild.interference_x);

  WriteJson(scaling, degraded, rebuild, speedup);

  if (check) {
    bool ok = true;
    if (speedup < 2.5) {
      std::fprintf(stderr, "CHECK FAILED: N=4 speedup %.2fx < 2.5x\n", speedup);
      ok = false;
    }
    if (!rebuild.completed || !rebuild.under_budget) {
      std::fprintf(stderr, "CHECK FAILED: rebuild completed=%d under_budget=%d\n",
                   rebuild.completed, rebuild.under_budget);
      ok = false;
    }
    if (degraded.penalty_x <= 1.0) {
      std::fprintf(stderr,
                   "CHECK FAILED: degraded penalty %.2fx <= 1x (reconstruction is "
                   "not free; a smaller number means the bench measured nothing)\n",
                   degraded.penalty_x);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::printf("\nall checks passed: speedup %.2fx >= 2.5x, rebuild paced under "
                "budget\n", speedup);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    }
    // Other flags (e.g. google-benchmark ones CI passes to sibling benches)
    // are ignored: this bench is a deterministic phase sweep, not a
    // google-benchmark registration.
  }
  return s4::bench::Run(quick, check);
}
