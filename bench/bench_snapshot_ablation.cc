// Section 6 ablation: comprehensive versioning vs. copy-on-write snapshots.
//
// An intrusion-shaped workload — short-lived exploit tools (created then
// deleted) and repeatedly scrubbed log files — runs against (a) a snapshot
// store at several snapshot intervals and (b) the real S4 drive. Measured:
// what fraction of the forensically interesting state each scheme can
// recover. Comprehensive versioning is the snapshot-interval -> 0 limit and
// captures everything.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/harness.h"
#include "src/baseline/snapshot_store.h"
#include "src/util/rng.h"

namespace s4 {
namespace bench {
namespace {

struct AblationResult {
  std::string scheme;
  double tools_captured = 0;        // short-lived files recoverable
  double versions_captured = 0;     // intermediate log versions recoverable
};
std::vector<AblationResult> g_results;

constexpr int kTools = 40;
constexpr int kLogEdits = 40;
// The intruder's tool lives on disk for 30 seconds; log scrubs come 10
// seconds after the incriminating entry.
constexpr SimDuration kToolLifetime = 30 * kSecond;
constexpr SimDuration kScrubDelay = 10 * kSecond;
constexpr SimDuration kEventGap = 3 * kMinute;

void RunSnapshotScheme(::benchmark::State& state, SimDuration interval) {
  for (auto _ : state) {
    SimClock clock(0);
    SnapshotStore store(&clock);
    Rng rng(13);
    SimTime next_snapshot = interval;
    auto tick_to = [&](SimTime target) {
      while (next_snapshot <= target) {
        clock.AdvanceTo(next_snapshot);
        store.TakeSnapshot();
        next_snapshot += interval;
      }
      clock.AdvanceTo(target);
    };

    int tools_captured = 0;
    int versions_captured = 0;
    uint64_t log = store.CreateObject();
    for (int i = 0; i < kTools; ++i) {
      SimTime base = clock.Now() + kEventGap;
      tick_to(base);
      // Exploit tool: created, used, deleted.
      uint64_t tool = store.CreateObject();
      Bytes payload = rng.RandomBytes(2000);
      S4_CHECK(store.Write(tool, payload).ok());
      tick_to(base + kToolLifetime);
      S4_CHECK(store.Delete(tool).ok());
      if (store.AnySnapshotHolds(tool, payload)) {
        ++tools_captured;
      }
      // Incriminating log entry, scrubbed shortly after.
      if (i < kLogEdits) {
        Bytes evidence = rng.RandomBytes(500);
        S4_CHECK(store.Write(log, evidence).ok());
        tick_to(clock.Now() + kScrubDelay);
        S4_CHECK(store.Write(log, rng.RandomBytes(500)).ok());
        if (store.AnySnapshotHolds(log, evidence)) {
          ++versions_captured;
        }
      }
    }
    AblationResult result;
    result.scheme = "snapshots @ " + std::to_string(interval / kSecond) + "s";
    result.tools_captured = 100.0 * tools_captured / kTools;
    result.versions_captured = 100.0 * versions_captured / kLogEdits;
    g_results.push_back(result);
    state.SetIterationTime(ToSeconds(clock.Now()));
    state.counters["tools_pct"] = result.tools_captured;
    state.counters["versions_pct"] = result.versions_captured;
  }
}

void RunS4Scheme(::benchmark::State& state) {
  for (auto _ : state) {
    ServerOptions options;
    options.disk_bytes = 256ull << 20;
    auto server = MakeServer(ServerKind::kS4Nas, options);
    S4Client* client = server->client.get();
    SimClock* clock = server->clock.get();
    Credentials admin;
    admin.admin_key = server->drive->options().admin_key;
    Rng rng(13);

    int tools_captured = 0;
    int versions_captured = 0;
    auto log = client->Create({});
    S4_CHECK(log.ok());
    for (int i = 0; i < kTools; ++i) {
      clock->Advance(kEventGap);
      auto tool = client->Create({});
      S4_CHECK(tool.ok());
      Bytes payload = rng.RandomBytes(2000);
      S4_CHECK(client->Write(*tool, 0, payload).ok());
      SimTime staged = clock->Now();
      clock->Advance(kToolLifetime);
      S4_CHECK(client->Delete(*tool).ok());
      auto recovered = server->drive->Read(admin, *tool, 0, payload.size(), staged);
      if (recovered.ok() && *recovered == payload) {
        ++tools_captured;
      }
      if (i < kLogEdits) {
        Bytes evidence = rng.RandomBytes(500);
        S4_CHECK(client->Write(*log, 0, evidence).ok());
        SimTime written = clock->Now();
        clock->Advance(kScrubDelay);
        S4_CHECK(client->Write(*log, 0, rng.RandomBytes(500)).ok());
        auto old = server->drive->Read(admin, *log, 0, evidence.size(), written);
        if (old.ok() && *old == evidence) {
          ++versions_captured;
        }
      }
    }
    AblationResult result;
    result.scheme = "S4 comprehensive versioning";
    result.tools_captured = 100.0 * tools_captured / kTools;
    result.versions_captured = 100.0 * versions_captured / kLogEdits;
    g_results.push_back(result);
    state.SetIterationTime(server->SimSeconds());
    state.counters["tools_pct"] = result.tools_captured;
    state.counters["versions_pct"] = result.versions_captured;
  }
}

void PrintAblation() {
  std::printf("\n=== Section 6 ablation: versioning vs. snapshots ===\n");
  std::printf("(%d exploit tools alive %llds; %d log entries scrubbed after %llds)\n\n",
              kTools, static_cast<long long>(kToolLifetime / kSecond), kLogEdits,
              static_cast<long long>(kScrubDelay / kSecond));
  std::printf("%-32s %18s %22s\n", "scheme", "tools captured", "log versions captured");
  for (const auto& r : g_results) {
    std::printf("%-32s %17.0f%% %21.0f%%\n", r.scheme.c_str(), r.tools_captured,
                r.versions_captured);
  }
  std::printf("\nExpected shape: snapshots miss short-lived files and intermediate\n"
              "versions unless the interval shrinks below the data's lifetime;\n"
              "comprehensive versioning (interval -> 0) captures 100%%.\n");
}

}  // namespace
}  // namespace bench
}  // namespace s4

int main(int argc, char** argv) {
  for (s4::SimDuration interval :
       {s4::kHour, 10 * s4::kMinute, s4::kMinute, 10 * s4::kSecond}) {
    std::string name = "Snapshots/interval_s:" + std::to_string(interval / s4::kSecond);
    ::benchmark::RegisterBenchmark(name.c_str(),
                                   [interval](::benchmark::State& state) {
                                     s4::bench::RunSnapshotScheme(state, interval);
                                   })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kSecond);
  }
  ::benchmark::RegisterBenchmark("S4Comprehensive", [](::benchmark::State& state) {
    s4::bench::RunS4Scheme(state);
  })->UseManualTime()->Iterations(1)->Unit(::benchmark::kSecond);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  s4::bench::PrintAblation();
  return 0;
}
