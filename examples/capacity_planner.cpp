// Detection-window capacity planner (the Figure 7 analysis as a tool).
//
//   ./capacity_planner [pool_gb] [write_mb_per_day]
//
// Answers the administrator's sizing question from section 3.3: given a
// history pool budget and a measured write rate, how many days of complete
// version history — the guaranteed detection window — can the drive hold?
// The differencing and compression multipliers are measured live using the
// repository's delta/LZ implementations.
#include <cstdio>
#include <cstdlib>

#include "src/workload/capacity.h"

using namespace s4;

int main(int argc, char** argv) {
  double pool_gb = argc > 1 ? std::atof(argv[1]) : 10.0;
  double custom_rate = argc > 2 ? std::atof(argv[2]) : 0.0;

  std::printf("Measuring achievable history-pool compaction on a synthetic\n"
              "versioned source tree (delta + LZ, this repo's implementations)...\n");
  CompactionRatios ratios = MeasureCompactionRatios(/*files=*/30, /*versions=*/8,
                                                    /*file_bytes=*/60000,
                                                    /*edit_fraction=*/0.5, /*seed=*/7);
  std::printf("  cross-version differencing: %.1fx\n", ratios.differencing);
  std::printf("  differencing + compression: %.1fx\n\n",
              ratios.differencing_and_compression);

  std::printf("History pool: %.1f GB\n\n", pool_gb);
  std::printf("%-36s %10s %10s %12s %14s\n", "workload", "MB/day", "baseline",
              "+differencing", "+compression");
  auto print_row = [&](const std::string& name, double rate) {
    std::printf("%-36s %10.0f %9.0fd %12.0fd %13.0fd\n", name.c_str(), rate,
                DetectionWindowDays(pool_gb, rate, 1.0),
                DetectionWindowDays(pool_gb, rate, ratios.differencing),
                DetectionWindowDays(pool_gb, rate, ratios.differencing_and_compression));
  };
  for (const TraceStudy& study : PaperTraceStudies()) {
    print_row(study.name, study.write_mb_per_day);
  }
  if (custom_rate > 0) {
    print_row("your workload", custom_rate);
  }
  std::printf("\nRule of thumb (paper section 5.2): dedicating 20%% of a modern disk\n"
              "buys multi-week windows in most environments; differencing and\n"
              "compression extend them several-fold.\n");
  return 0;
}
