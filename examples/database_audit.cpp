// Self-securing storage for databases (paper section 6).
//
//   ./database_audit
//
// "Self-securing storage can increase the post-intrusion recoverability of
// database systems in two ways: (1) by preventing undetectable tampering
// with stored log records, and (2) by preventing undetectable changes to
// data that bypass the log. After an intrusion, self-securing storage allows
// a database system to verify its log's integrity and confirm that all
// changes are correctly reflected in the log."
//
// A miniature key-value database keeps a write-ahead log and a checkpointed
// table, both as S4 objects. An intruder rewrites a committed log record and
// patches the table directly, bypassing the log. The recovery pass uses the
// drive's history pool to prove exactly what was tampered with and rebuilds
// a trustworthy state.
#include <cstdio>
#include <map>
#include <string>

#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/util/codec.h"

using namespace s4;

namespace {

// A write-ahead-logged key-value store on two S4 objects.
class MiniDb {
 public:
  explicit MiniDb(S4Client* client) : client_(client) {
    wal_ = client_->Create(BytesOf("minidb-wal")).value();
    table_ = client_->Create(BytesOf("minidb-table")).value();
  }

  ObjectId wal() const { return wal_; }
  ObjectId table() const { return table_; }

  void Put(const std::string& key, const std::string& value) {
    Encoder rec;
    rec.PutU32(0xDBDBDBDB);
    rec.PutString(key);
    rec.PutString(value);
    client_->Append(wal_, rec.bytes()).value();
    client_->Sync().ToString();
    cache_[key] = value;
  }

  // Flushes the table representation (a checkpoint in DB terms).
  void Checkpoint() {
    Encoder enc;
    enc.PutVarint(cache_.size());
    for (const auto& [k, v] : cache_) {
      enc.PutString(k);
      enc.PutString(v);
    }
    client_->Write(table_, 0, enc.bytes()).ToString();
    client_->Truncate(table_, enc.size()).ToString();
    client_->Sync().ToString();
  }

  // Replays the CURRENT log from scratch.
  std::map<std::string, std::string> ReplayLog() {
    auto attrs = client_->GetAttr(wal_).value();
    Bytes raw = client_->Read(wal_, 0, attrs.size).value();
    return Replay(raw);
  }

  static std::map<std::string, std::string> Replay(const Bytes& raw) {
    std::map<std::string, std::string> table;
    Decoder dec(raw);
    while (!dec.done()) {
      auto magic = dec.U32();
      if (!magic.ok() || *magic != 0xDBDBDBDB) {
        break;
      }
      std::string key = dec.String().value();
      std::string value = dec.String().value();
      table[key] = value;
    }
    return table;
  }

  std::map<std::string, std::string> ReadTable() {
    auto attrs = client_->GetAttr(table_).value();
    Bytes raw = client_->Read(table_, 0, attrs.size).value();
    std::map<std::string, std::string> table;
    Decoder dec(raw);
    auto n = dec.Varint();
    if (n.ok()) {
      for (uint64_t i = 0; i < *n; ++i) {
        std::string key = dec.String().value();
        std::string value = dec.String().value();
        table[key] = value;
      }
    }
    return table;
  }

 private:
  S4Client* client_;
  ObjectId wal_ = 0;
  ObjectId table_ = 0;
  std::map<std::string, std::string> cache_;
};

}  // namespace

int main() {
  SimClock clock;
  BlockDevice disk((256ull << 20) / kSectorSize, &clock);
  S4DriveOptions options;
  auto drive = S4Drive::Format(&disk, &clock, options).value();
  S4RpcServer rpc(drive.get());
  LoopbackTransport transport(&rpc, &clock);
  Credentials dba;
  dba.user = 50;
  dba.client = 1;
  S4Client client(&transport, dba);
  Credentials admin;
  admin.admin_key = options.admin_key;

  // --- Normal operation -------------------------------------------------
  MiniDb db(&client);
  db.Put("alice", "balance=1000");
  db.Put("bob", "balance=250");
  db.Put("carol", "balance=9000");
  db.Checkpoint();
  SimTime pre_intrusion = clock.Now();
  std::printf("database committed; WAL and table checkpointed at t=%lld\n",
              static_cast<long long>(pre_intrusion));

  // --- Intrusion ---------------------------------------------------------
  clock.Advance(kHour);
  // 1. Tamper with a committed WAL record in place (history rewriting).
  auto wal_attrs = client.GetAttr(db.wal()).value();
  Bytes wal_now = client.Read(db.wal(), 0, wal_attrs.size).value();
  std::string as_str = StringOf(wal_now);
  size_t pos = as_str.find("balance=250");
  client.Write(db.wal(), pos, BytesOf("balance=999")).ToString();
  // 2. Patch the table directly, bypassing the log entirely.
  auto table_attrs = client.GetAttr(db.table()).value();
  Bytes table_now = client.Read(db.table(), 0, table_attrs.size).value();
  std::string table_str = StringOf(table_now);
  size_t cpos = table_str.find("balance=9000");
  client.Write(db.table(), cpos, BytesOf("balance=0009")).ToString();
  client.Sync().ToString();
  std::printf("intruder rewrote a WAL record and patched the table directly\n\n");

  // --- Post-intrusion verification ---------------------------------------
  std::printf("--- verification against the history pool ---\n");
  // (1) Log integrity: the committed prefix of a WAL must never change.
  Bytes wal_then = drive->Read(admin, db.wal(), 0, wal_attrs.size, pre_intrusion).value();
  Bytes wal_cur = drive->Read(admin, db.wal(), 0, wal_attrs.size).value();
  bool log_tampered = wal_then != wal_cur;
  std::printf("WAL committed-prefix intact: %s\n", log_tampered ? "NO - TAMPERED" : "yes");

  // (2) All changes reflected in the log: replaying the pristine WAL must
  // reproduce the table.
  auto replayed = MiniDb::Replay(wal_then);
  auto table_state = db.ReadTable();
  bool bypass_detected = false;
  for (const auto& [key, value] : table_state) {
    auto it = replayed.find(key);
    if (it == replayed.end() || it->second != value) {
      std::printf("table row '%s' = '%s' NOT justified by the log (log says '%s')\n",
                  key.c_str(), value.c_str(),
                  it == replayed.end() ? "<absent>" : it->second.c_str());
      bypass_detected = true;
    }
  }
  if (!bypass_detected) {
    std::printf("table fully justified by the log\n");
  }

  // --- Recovery ----------------------------------------------------------
  std::printf("\n--- recovery ---\n");
  // The pristine log from the history pool is the trusted source of truth.
  std::printf("rebuilding table from the pre-intrusion WAL...\n");
  for (const auto& [key, value] : MiniDb::Replay(wal_then)) {
    std::printf("  %s -> %s\n", key.c_str(), value.c_str());
  }
  std::printf("\nbob's real balance (from trusted log): %s\n",
              MiniDb::Replay(wal_then)["bob"].c_str());
  std::printf("carol's real balance (from trusted log): %s\n",
              MiniDb::Replay(wal_then)["carol"].c_str());
  return 0;
}
