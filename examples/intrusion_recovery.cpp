// Intrusion diagnosis and recovery walkthrough (paper sections 2 and 3.1).
//
//   ./intrusion_recovery
//
// An intruder compromises a user account, scrubs the system log, installs a
// backdoor, stages an exploit tool and deletes it. The administrator then
// uses the audit log and history pool to reconstruct the break-in minute by
// minute and undo the damage — without wiping the machine or reaching for
// week-old backup tapes.
#include <cstdio>

#include "src/fs/s4_fs.h"
#include "src/util/check.h"
#include "src/recovery/diagnosis.h"
#include "src/recovery/history_browser.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"

using namespace s4;

int main() {
  SimClock clock;
  BlockDevice disk((512ull << 20) / kSectorSize, &clock);
  S4DriveOptions options;
  auto drive = S4Drive::Format(&disk, &clock, options).value();
  S4RpcServer rpc(drive.get());
  LoopbackTransport transport(&rpc, &clock);

  Credentials alice;
  alice.user = 100;
  alice.client = 1;
  S4Client client(&transport, alice);
  auto fs = S4FileSystem::Format(&client, "root").value();

  // --- Normal operation -----------------------------------------------
  FileHandle logdir = MakeDirs(fs.get(), "/var/log").value();
  FileHandle authlog = fs->CreateFile(logdir, "auth.log", 0644).value();
  S4_CHECK_OK(fs->WriteFile(authlog, 0, BytesOf("09:00 sshd: session opened for alice\n")));
  FileHandle bindir = MakeDirs(fs.get(), "/usr/bin").value();
  FileHandle sshd = fs->CreateFile(bindir, "sshd", 0755).value();
  S4_CHECK_OK(fs->WriteFile(sshd, 0, BytesOf("ELF..genuine sshd binary..")));
  clock.Advance(kHour);
  SimTime pre_intrusion = clock.Now();
  std::printf("[t=%6llds] system healthy; baseline recorded\n",
              static_cast<long long>(pre_intrusion / kSecond));

  // --- The intrusion (client 9, stolen credentials) ---------------------
  clock.Advance(kMinute);
  Credentials stolen = alice;
  stolen.client = 9;
  S4Client evil(&transport, stolen);
  auto evil_fs = S4FileSystem::Mount(&evil, "root").value();

  // 1. Append incriminating activity, then scrub the log.
  FileHandle e_log = ResolvePath(evil_fs.get(), "/var/log/auth.log").value();
  S4_CHECK_OK(evil_fs->WriteFile(e_log, 37, BytesOf("10:01 sshd: ROOT LOGIN from evil.example\n")));
  SimTime incriminating = clock.Now();
  clock.Advance(30 * kSecond);
  S4_CHECK_OK(evil_fs->SetSize(e_log, 0));
  S4_CHECK_OK(evil_fs->WriteFile(e_log, 0, BytesOf("09:00 sshd: session opened for alice\n")));
  std::printf("[t=%6llds] intruder scrubbed /var/log/auth.log\n",
              static_cast<long long>(clock.Now() / kSecond));

  // 2. Replace a system binary with a trojaned copy.
  FileHandle e_sshd = ResolvePath(evil_fs.get(), "/usr/bin/sshd").value();
  S4_CHECK_OK(evil_fs->WriteFile(e_sshd, 0, BytesOf("ELF..sshd WITH BACKDOOR..")));

  // 3. Stage an exploit tool, use it, delete it.
  FileHandle tmp = MakeDirs(evil_fs.get(), "/tmp").value();
  FileHandle tool = evil_fs->CreateFile(tmp, ".x", 0755).value();
  S4_CHECK_OK(evil_fs->WriteFile(tool, 0, BytesOf("#!/bin/sh\n# privilege escalation exploit\n")));
  SimTime tool_staged = clock.Now();
  clock.Advance(2 * kMinute);
  S4_CHECK_OK(evil_fs->Remove(tmp, ".x"));
  SimTime intrusion_end = clock.Now();
  std::printf("[t=%6llds] intruder cleaned up and left\n",
              static_cast<long long>(intrusion_end / kSecond));

  // --- Diagnosis -------------------------------------------------------
  clock.Advance(kDay);  // detection latency: a day passes before anyone notices
  Credentials admin;
  admin.admin_key = options.admin_key;
  S4Client admin_client(&transport, admin);
  HistoryBrowser browser(&admin_client, "root");
  IntrusionDiagnosis diagnosis(drive.get(), admin);

  std::printf("\n--- administrator's diagnosis ---\n");
  auto report = diagnosis.Analyze(/*client=*/9, pre_intrusion, intrusion_end).value();
  std::printf("objects modified by client 9: %zu; deleted: %zu; read: %zu\n",
              report.modified.size(), report.deleted.size(), report.read.size());

  // The scrubbed log: read it as it was just after the intruder logged in,
  // before the scrub.
  Bytes true_log = browser.ReadAt("/var/log/auth.log", incriminating).value();
  std::printf("recovered log contents:\n%s", StringOf(true_log).c_str());

  // Tamper check on the system binary against the pre-intrusion baseline.
  FileHandle cur_sshd = ResolvePath(fs.get(), "/usr/bin/sshd").value();
  bool tampered = diagnosis.IsTampered(cur_sshd, pre_intrusion).value();
  std::printf("/usr/bin/sshd tampered: %s\n", tampered ? "YES" : "no");

  // The deleted exploit tool is recoverable for forensics.
  Bytes exploit = browser.ReadAt("/tmp/.x", tool_staged).value();
  std::printf("recovered exploit tool (%zu bytes): %.30s...\n", exploit.size(),
              StringOf(exploit).c_str());

  // --- Recovery --------------------------------------------------------
  std::printf("\n--- recovery ---\n");
  auto restored = diagnosis.RestoreModified(report, pre_intrusion).value();
  std::printf("restored %zu objects to their pre-intrusion state\n", restored.size());
  Status resurrect =
      browser.ResurrectFile(fs.get(), "/tmp/.x", tool_staged, "/evidence/exploit.sh");
  std::printf("exploit tool preserved as /evidence/exploit.sh: %s\n",
              resurrect.ToString().c_str());

  bool still_tampered = diagnosis.IsTampered(cur_sshd, pre_intrusion).value();
  std::printf("/usr/bin/sshd tampered after restore: %s\n",
              still_tampered ? "YES" : "no");
  Bytes log_now = fs->ReadFile(authlog, 0, 256).value();
  std::printf("auth.log after restore:\n%s", StringOf(log_now).c_str());
  std::printf("\nNote: the intruder's own writes remain in the history pool as\n"
              "evidence; restoration only adds new versions on top.\n");
  return 0;
}
