// A self-securing NFS file server in action (Figure 1 of the paper).
//
//   ./versioned_fileserver
//
// Mounts the S4/NFS translation layer over the drive, edits a small project
// tree the way a user would, and then browses the tree *as it was* at
// several points in the past with time-enhanced ls/cat — ending with a
// one-call restore of an accidentally clobbered file.
#include <cstdio>

#include "src/fs/s4_fs.h"
#include "src/util/check.h"
#include "src/recovery/history_browser.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"

using namespace s4;

namespace {

void TimeLs(HistoryBrowser* browser, const std::string& path, SimTime at,
            const char* label) {
  std::printf("\n$ ls --time=%s %s\n", label, path.c_str());
  auto entries = browser->ListAt(path, at);
  if (!entries.ok()) {
    std::printf("  (%s)\n", entries.status().ToString().c_str());
    return;
  }
  for (const auto& e : *entries) {
    std::printf("  %-6s %8llu  %s\n", e.type == FileType::kDirectory ? "dir" : "file",
                static_cast<unsigned long long>(e.size), e.name.c_str());
  }
}

}  // namespace

int main() {
  SimClock clock;
  BlockDevice disk((512ull << 20) / kSectorSize, &clock);
  S4DriveOptions options;
  auto drive = S4Drive::Format(&disk, &clock, options).value();
  S4RpcServer rpc(drive.get());
  LoopbackTransport transport(&rpc, &clock);
  Credentials dev;
  dev.user = 500;
  dev.client = 1;
  S4Client client(&transport, dev);
  auto fs = S4FileSystem::Format(&client, "root").value();

  // Monday: the project starts.
  FileHandle src = MakeDirs(fs.get(), "/project/src").value();
  FileHandle main_c = fs->CreateFile(src, "main.c", 0644).value();
  S4_CHECK_OK(fs->WriteFile(main_c, 0, BytesOf("int main() { return 0; }\n")));
  FileHandle readme = fs->CreateFile(
      ResolvePath(fs.get(), "/project").value(), "README", 0644).value();
  S4_CHECK_OK(fs->WriteFile(readme, 0, BytesOf("project v0.1\n")));
  SimTime monday = clock.Now();

  // Tuesday: a feature lands, a scratch file comes and goes.
  clock.Advance(kDay);
  S4_CHECK_OK(fs->WriteFile(main_c, 0, BytesOf("int main() { do_feature(); return 0; }\n")));
  FileHandle scratch = fs->CreateFile(src, "notes.tmp", 0644).value();
  S4_CHECK_OK(fs->WriteFile(scratch, 0, BytesOf("ideas: refactor parser\n")));
  SimTime tuesday = clock.Now();
  clock.Advance(kHour);
  S4_CHECK_OK(fs->Remove(src, "notes.tmp"));

  // Wednesday: disaster — main.c is clobbered by a bad script.
  clock.Advance(kDay);
  S4_CHECK_OK(fs->WriteFile(main_c, 0, BytesOf("#OVERWRITTEN BY BROKEN DEPLOY SCRIPT#\n")));
  S4_CHECK_OK(fs->SetSize(main_c, 38));
  SimTime wednesday = clock.Now();

  // Browse history. The developer created these files, so the Recovery flag
  // on their ACLs lets them read their own old versions.
  HistoryBrowser browser(&client, "root");
  TimeLs(&browser, "/project/src", monday, "monday");
  TimeLs(&browser, "/project/src", tuesday, "tuesday");
  TimeLs(&browser, "/project/src", wednesday, "wednesday");

  std::printf("\n$ cat --time=tuesday /project/src/main.c\n%s",
              StringOf(browser.ReadAt("/project/src/main.c", tuesday).value()).c_str());
  std::printf("\n$ cat /project/src/main.c   # current, clobbered\n%s",
              StringOf(fs->ReadFile(main_c, 0, 256).value()).c_str());

  // The deleted scratch file is still reachable through Tuesday's directory.
  std::printf("\n$ cat --time=tuesday /project/src/notes.tmp\n%s",
              StringOf(browser.ReadAt("/project/src/notes.tmp", tuesday).value()).c_str());

  // One-call restore of the clobbered file.
  S4_CHECK_OK(browser.RestoreFile("/project/src/main.c", tuesday));
  std::printf("\n$ s4-restore --time=tuesday /project/src/main.c\n");
  std::printf("$ cat /project/src/main.c   # restored\n%s",
              StringOf(fs->ReadFile(main_c, 0, 256).value()).c_str());

  // Version history of the file, oldest first.
  auto versions = browser.VersionsOf("/project/src/main.c", clock.Now()).value();
  std::printf("\n$ s4-versions /project/src/main.c\n");
  for (const auto& [time, cause] : versions) {
    std::printf("  t=%8llds  cause=%u\n", static_cast<long long>(time / kSecond), cause);
  }
  return 0;
}
