// Quickstart: the S4 self-securing object store in ~60 lines.
//
//   ./quickstart
//
// Creates a drive on a simulated disk, stores an object, overwrites and
// deletes it, then shows that every prior state is still there — the core
// guarantee: no client, however privileged, can silently destroy data
// within the detection window.
#include <cstdio>

#include "src/drive/s4_drive.h"
#include "src/util/check.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"

using namespace s4;

int main() {
  // A 256MB simulated disk and a drive with a 7-day detection window.
  SimClock clock;
  BlockDevice disk((256ull << 20) / kSectorSize, &clock);
  S4DriveOptions options;
  options.detection_window = 7 * kDay;
  auto drive = S4Drive::Format(&disk, &clock, options);
  if (!drive.ok()) {
    std::fprintf(stderr, "format failed: %s\n", drive.status().ToString().c_str());
    return 1;
  }

  Credentials alice;
  alice.user = 100;
  alice.client = 1;

  // Store a document.
  ObjectId doc = (*drive)->Create(alice, BytesOf("type=text")).value();
  S4_CHECK_OK((*drive)->Write(alice, doc, 0, BytesOf("draft 1: the original text")));
  SimTime t_draft1 = clock.Now();
  std::printf("wrote draft 1 at t=%lld\n", static_cast<long long>(t_draft1));

  // Time passes; the document is overwritten...
  clock.Advance(kHour);
  S4_CHECK_OK((*drive)->Write(alice, doc, 0, BytesOf("draft 2: heavily rewritten")));
  SimTime t_draft2 = clock.Now();

  // ...and later deleted entirely.
  clock.Advance(kHour);
  S4_CHECK_OK((*drive)->Delete(alice, doc));
  std::printf("object deleted at t=%lld\n", static_cast<long long>(clock.Now()));

  // A normal read now fails:
  auto now_read = (*drive)->Read(alice, doc, 0, 64);
  std::printf("read (current):  %s\n", now_read.status().ToString().c_str());

  // But time-based reads reach every version that ever existed:
  auto v1 = (*drive)->Read(alice, doc, 0, 64, t_draft1);
  auto v2 = (*drive)->Read(alice, doc, 0, 64, t_draft2);
  std::printf("read @ draft 1:  \"%s\"\n", StringOf(*v1).c_str());
  std::printf("read @ draft 2:  \"%s\"\n", StringOf(*v2).c_str());

  // The version list enumerates the object's whole life.
  auto versions = (*drive)->GetVersionList(alice, doc);
  std::printf("version history: %zu mutations\n", versions->size());

  // And the audit log remembers who did what (admin-only).
  Credentials admin;
  admin.admin_key = options.admin_key;
  auto audit = (*drive)->QueryAudit(admin, AuditQuery{});
  std::printf("audit log holds %zu records; last op: %s by user %u\n", audit->size(),
              RpcOpName(audit->back().op), audit->back().user);
  return 0;
}
