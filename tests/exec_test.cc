// DriveExecutor tests: frame classification, same-object ordering under a
// multi-worker pool, parallel speedup across drives and across snapshot
// readers, deferred-audit durability, the idle-slice maintenance hook, and
// thread-safety of the per-endpoint NetStats accumulator. Run these under
// -DS4_SANITIZE=thread in CI: they are the data-race regression net for the
// whole concurrency substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/exec/drive_executor.h"
#include "src/rpc/messages.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

Credentials UserCreds() {
  Credentials c;
  c.user = 1;
  c.client = 1;
  return c;
}

Bytes WriteFrame(ObjectId id, uint64_t offset, uint64_t len, uint8_t fill) {
  RpcRequest req;
  req.op = RpcOp::kWrite;
  req.creds = UserCreds();
  req.object = id;
  req.offset = offset;
  req.data.assign(len, fill);
  return req.Encode();
}

Bytes AppendFrame(ObjectId id, uint64_t len, uint8_t fill) {
  RpcRequest req;
  req.op = RpcOp::kAppend;
  req.creds = UserCreds();
  req.object = id;
  req.data.assign(len, fill);
  return req.Encode();
}

Bytes ReadFrame(ObjectId id, uint64_t offset, uint64_t len) {
  RpcRequest req;
  req.op = RpcOp::kRead;
  req.creds = UserCreds();
  req.object = id;
  req.offset = offset;
  req.length = len;
  return req.Encode();
}

// A multi-drive rig on one shared clock: the unit the executor schedules.
struct Rig {
  std::unique_ptr<SimClock> clock;
  std::vector<std::unique_ptr<BlockDevice>> devices;
  std::vector<std::unique_ptr<S4Drive>> drives;
  std::vector<std::unique_ptr<S4RpcServer>> servers;

  std::vector<S4Drive*> drive_ptrs() const {
    std::vector<S4Drive*> out;
    for (const auto& d : drives) {
      out.push_back(d.get());
    }
    return out;
  }
};

Rig MakeRig(int n_drives) {
  Rig rig;
  rig.clock = std::make_unique<SimClock>(SimTime{1000000});
  for (int i = 0; i < n_drives; ++i) {
    rig.devices.push_back(
        std::make_unique<BlockDevice>((64ull << 20) / kSectorSize, rig.clock.get()));
    auto drive =
        S4Drive::Format(rig.devices.back().get(), rig.clock.get(), DriveTest::SmallOptions());
    EXPECT_OK(drive.status());
    rig.drives.push_back(std::move(*drive));
    rig.servers.push_back(std::make_unique<S4RpcServer>(rig.drives.back().get(), i));
  }
  return rig;
}

TEST(ClassifyTest, ReadClassOpsAreShared) {
  for (RpcOp op : {RpcOp::kRead, RpcOp::kGetAttr, RpcOp::kGetAclByUser,
                   RpcOp::kGetAclByIndex, RpcOp::kGetVersionList}) {
    RpcRequest req;
    req.op = op;
    req.creds = UserCreds();
    req.object = 42;
    uint64_t stripe = 0;
    DriveExecutor::Mode mode = DriveExecutor::Mode::kBarrier;
    DriveExecutor::Classify(PeekRequestFrame(req.Encode()), &stripe, &mode);
    EXPECT_EQ(mode, DriveExecutor::Mode::kShared) << RpcOpName(op);
  }
}

TEST(ClassifyTest, SameObjectSameStripeAcrossOps) {
  uint64_t write_stripe = 0, read_stripe = 0, other_stripe = 0;
  DriveExecutor::Mode mode = DriveExecutor::Mode::kBarrier;
  DriveExecutor::Classify(PeekRequestFrame(WriteFrame(7, 0, 8, 1)), &write_stripe, &mode);
  EXPECT_EQ(mode, DriveExecutor::Mode::kExclusive);
  DriveExecutor::Classify(PeekRequestFrame(ReadFrame(7, 0, 8)), &read_stripe, &mode);
  DriveExecutor::Classify(PeekRequestFrame(ReadFrame(8, 0, 8)), &other_stripe, &mode);
  EXPECT_EQ(write_stripe, read_stripe) << "same object must share a stripe";
  EXPECT_NE(read_stripe, other_stripe) << "distinct objects should stripe apart";
}

TEST(ClassifyTest, HostileAndGlobalFramesAreBarriers) {
  uint64_t stripe = 0;
  DriveExecutor::Mode mode = DriveExecutor::Mode::kShared;
  // Malformed bytes.
  DriveExecutor::Classify(PeekRequestFrame(Bytes{1, 2, 3}), &stripe, &mode);
  EXPECT_EQ(mode, DriveExecutor::Mode::kBarrier);
  // Batch envelope.
  RpcBatchRequest batch;
  RpcRequest sub;
  sub.op = RpcOp::kSync;
  sub.creds = UserCreds();
  batch.subs.push_back(sub);
  mode = DriveExecutor::Mode::kShared;
  DriveExecutor::Classify(PeekRequestFrame(batch.Encode()), &stripe, &mode);
  EXPECT_EQ(mode, DriveExecutor::Mode::kBarrier);
  // Drive-global op.
  RpcRequest sync;
  sync.op = RpcOp::kSync;
  sync.creds = UserCreds();
  mode = DriveExecutor::Mode::kShared;
  DriveExecutor::Classify(PeekRequestFrame(sync.Encode()), &stripe, &mode);
  EXPECT_EQ(mode, DriveExecutor::Mode::kBarrier);
}

// Same-object writes submitted in order must execute in order no matter how
// many workers race: the recovered content is the last write of the
// submission sequence, and a read submitted after the writes sees all of
// them.
TEST(DriveExecutorTest, SameObjectOrderingUnderManyWorkers) {
  Rig rig = MakeRig(1);
  auto id = rig.drives[0]->Create(UserCreds(), {});
  ASSERT_OK(id.status());

  DriveExecutor::Options opts;
  opts.workers = 4;
  DriveExecutor exec(rig.clock.get(), rig.drive_ptrs(), opts);

  constexpr int kAppends = 64;
  for (int i = 0; i < kAppends; ++i) {
    exec.SubmitFrame(0, rig.servers[0].get(), AppendFrame(*id, 16, static_cast<uint8_t>(i + 1)));
  }
  Bytes read_response;
  exec.SubmitFrame(0, rig.servers[0].get(), ReadFrame(*id, 0, 16 * kAppends), &read_response);
  exec.Drain();

  auto resp = RpcResponse::Decode(read_response);
  ASSERT_OK(resp.status());
  ASSERT_TRUE(resp->ok()) << resp->message;
  ASSERT_EQ(resp->data.size(), 16u * kAppends);
  for (int i = 0; i < kAppends; ++i) {
    for (int b = 0; b < 16; ++b) {
      ASSERT_EQ(resp->data[static_cast<size_t>(i) * 16 + static_cast<size_t>(b)],
                static_cast<uint8_t>(i + 1))
          << "append " << i << " executed out of submission order";
    }
  }
}

// Independent drives overlap: the same per-drive workload on 4 drives takes
// less simulated time with 4 workers than with 1. (The full ratio gate lives
// in bench_concurrency; here we only require genuine overlap.)
TEST(DriveExecutorTest, MultiDriveWorkloadOverlaps) {
  auto run_with_workers = [](int workers) {
    Rig rig = MakeRig(4);
    std::vector<ObjectId> ids;
    for (int d = 0; d < 4; ++d) {
      auto id = rig.drives[static_cast<size_t>(d)]->Create(UserCreds(), {});
      EXPECT_OK(id.status());
      ids.push_back(*id);
    }
    SimTime start = rig.clock->Now();
    {
      DriveExecutor::Options opts;
      opts.workers = workers;
      DriveExecutor exec(rig.clock.get(), rig.drive_ptrs(), opts);
      for (int i = 0; i < 32; ++i) {
        for (int d = 0; d < 4; ++d) {
          exec.SubmitFrame(d, rig.servers[static_cast<size_t>(d)].get(),
                           WriteFrame(ids[static_cast<size_t>(d)],
                                      static_cast<uint64_t>(i) * 4096, 4096,
                                      static_cast<uint8_t>(i + 1)));
        }
      }
      exec.Drain();
    }
    return rig.clock->Now() - start;
  };

  SimDuration serial = run_with_workers(1);
  SimDuration parallel = run_with_workers(4);
  EXPECT_LT(parallel, serial) << "4 workers over 4 drives must overlap I/O";
  EXPECT_LT(parallel * 2, serial)
      << "expected at least 2x overlap, got serial=" << serial << " parallel=" << parallel;
}

// Snapshot readers overlap on ONE drive: cached reads of distinct objects
// are CPU-bound, so 4 workers should finish the read phase in well under the
// serial time.
TEST(DriveExecutorTest, SharedReadsOverlapOnOneDrive) {
  auto run_with_workers = [](int workers) {
    Rig rig = MakeRig(1);
    std::vector<ObjectId> ids;
    for (int i = 0; i < 16; ++i) {
      auto id = rig.drives[0]->Create(UserCreds(), {});
      EXPECT_OK(id.status());
      EXPECT_OK(rig.drives[0]->Write(UserCreds(), *id, 0, Bytes(4096, 0xAB)));
      ids.push_back(*id);
    }
    SimTime start = rig.clock->Now();
    {
      DriveExecutor::Options opts;
      opts.workers = workers;
      DriveExecutor exec(rig.clock.get(), rig.drive_ptrs(), opts);
      for (int round = 0; round < 8; ++round) {
        for (ObjectId id : ids) {
          exec.SubmitFrame(0, rig.servers[0].get(), ReadFrame(id, 0, 4096));
        }
      }
      exec.Drain();
    }
    return rig.clock->Now() - start;
  };

  SimDuration serial = run_with_workers(1);
  SimDuration parallel = run_with_workers(4);
  EXPECT_LT(parallel, serial)
      << "snapshot readers must overlap: serial=" << serial << " parallel=" << parallel;
}

// Snapshot readers defer their audit records; after Drain every one of them
// must be in the chronicle — none dropped, and the drive's record counter
// must match the op counter exactly as in the serial world.
TEST(DriveExecutorTest, DeferredAuditsAllLand) {
  Rig rig = MakeRig(1);
  auto id = rig.drives[0]->Create(UserCreds(), {});
  ASSERT_OK(id.status());
  ASSERT_OK(rig.drives[0]->Write(UserCreds(), *id, 0, Bytes(1024, 0x5A)));
  uint64_t before = rig.drives[0]->metrics().CounterValue("audit.records");

  constexpr uint64_t kReads = 40;
  {
    DriveExecutor::Options opts;
    opts.workers = 4;
    DriveExecutor exec(rig.clock.get(), rig.drive_ptrs(), opts);
    for (uint64_t i = 0; i < kReads; ++i) {
      exec.SubmitFrame(0, rig.servers[0].get(), ReadFrame(*id, 0, 1024));
    }
    exec.Drain();
  }
  uint64_t after = rig.drives[0]->metrics().CounterValue("audit.records");
  EXPECT_EQ(after - before, kReads)
      << "every snapshot reader's deferred audit record must reach the chronicle";
}

// The maintenance hook runs in idle gaps and only then (absent starvation):
// with foreground queued the slice count stays put; once the queue drains,
// slices run until the step reports no more work.
TEST(DriveExecutorTest, MaintenanceRunsInIdleGaps) {
  Rig rig = MakeRig(1);
  DriveExecutor::Options opts;
  opts.workers = 2;
  DriveExecutor exec(rig.clock.get(), rig.drive_ptrs(), opts);

  std::atomic<int> slices{0};
  exec.AttachMaintenance(0, [&slices] {
    int n = slices.fetch_add(1) + 1;
    return n < 3;  // three slices of work, then done
  });
  exec.SubmitMaintenance(0);

  for (int waited = 0; slices.load() < 3 && waited < 5000; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(slices.load(), 3) << "maintenance slices must run while the drive is idle";
  EXPECT_EQ(exec.maintenance_slices(0), 3u);

  // Done maintenance stays done: new foreground work does not revive it.
  auto id = rig.drives[0]->Create(UserCreds(), {});
  ASSERT_OK(id.status());
  exec.SubmitFrame(0, rig.servers[0].get(), WriteFrame(*id, 0, 512, 1));
  exec.Drain();
  EXPECT_EQ(slices.load(), 3);
}

// Per-endpoint NetStats: many workers pushing frames through ONE transport
// must produce exact totals — the accumulator is atomic, the snapshot is
// taken after Drain. Run under TSan this is the transport-stats race
// regression test.
TEST(DriveExecutorTest, NetStatsExactUnderConcurrency) {
  Rig rig = MakeRig(1);
  LoopbackTransport transport(rig.servers[0].get(), rig.clock.get(), NetModel(), "ep0");
  std::vector<ObjectId> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = rig.drives[0]->Create(UserCreds(), {});
    ASSERT_OK(id.status());
    ASSERT_OK(rig.drives[0]->Write(UserCreds(), *id, 0, Bytes(256, 0x11)));
    ids.push_back(*id);
  }

  constexpr int kRounds = 16;
  uint64_t expected_bytes_sent = 0;
  {
    DriveExecutor::Options opts;
    opts.workers = 4;
    DriveExecutor exec(rig.clock.get(), rig.drive_ptrs(), opts);
    for (int round = 0; round < kRounds; ++round) {
      for (ObjectId id : ids) {
        Bytes frame = ReadFrame(id, 0, 256);
        expected_bytes_sent += frame.size();
        uint64_t stripe = 0;
        DriveExecutor::Mode mode = DriveExecutor::Mode::kBarrier;
        DriveExecutor::Classify(PeekRequestFrame(frame), &stripe, &mode);
        exec.Submit(0, stripe, mode, [&transport, frame = std::move(frame)] {
          // Discarding the response is fine here: the test asserts on the
          // transport's own accounting, not on payloads.
          (void)transport.Call(frame);
        });
      }
    }
    exec.Drain();
  }

  NetStats stats = transport.stats();
  EXPECT_EQ(stats.messages_sent, static_cast<uint64_t>(kRounds) * ids.size());
  EXPECT_EQ(stats.bytes_sent, expected_bytes_sent);
  EXPECT_EQ(stats.messages_received, static_cast<uint64_t>(kRounds) * ids.size());
  EXPECT_GT(stats.bytes_received, 0u);
}

// Concurrent submitters: Submit/SubmitFrame must be callable from many
// client threads at once (the concurrent crash harness and bench both do).
TEST(DriveExecutorTest, ConcurrentSubmitters) {
  Rig rig = MakeRig(1);
  std::vector<ObjectId> ids;
  for (int t = 0; t < 4; ++t) {
    auto id = rig.drives[0]->Create(UserCreds(), {});
    ASSERT_OK(id.status());
    ids.push_back(*id);
  }
  {
    DriveExecutor::Options opts;
    opts.workers = 4;
    DriveExecutor exec(rig.clock.get(), rig.drive_ptrs(), opts);
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&exec, &rig, &ids, t] {
        for (int i = 0; i < 32; ++i) {
          exec.SubmitFrame(0, rig.servers[0].get(),
                           AppendFrame(ids[static_cast<size_t>(t)], 64,
                                       static_cast<uint8_t>(i + 1)));
        }
      });
    }
    for (auto& c : clients) {
      c.join();
    }
    exec.Drain();
    EXPECT_EQ(exec.completed(0), 4u * 32u);
  }
  for (ObjectId id : ids) {
    auto attr = rig.drives[0]->GetAttr(UserCreds(), id);
    ASSERT_OK(attr.status());
    EXPECT_EQ(attr->size, 64u * 32u);
  }
}

}  // namespace
}  // namespace s4
