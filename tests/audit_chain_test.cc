// Hash-chained audit chronicle: codec-level regression for the DecodeAll
// corruption-masking bug, chain-frame verdicts, commit-marker behavior, and
// drive-level tamper detection at mount / query / challenge time.
#include <gtest/gtest.h>

#include "src/audit/audit_chain.h"
#include "src/audit/audit_log.h"
#include "src/journal/commit_marker.h"
#include "src/lfs/format.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

AuditRecord MakeRecord(uint64_t i) {
  AuditRecord rec;
  rec.time = static_cast<SimTime>(5000 + i);
  rec.client = 3;
  rec.user = 100;
  rec.op = RpcOp::kWrite;
  rec.object = 40 + i;
  rec.length = 128;
  return rec;
}

// ---------------------------------------------------------------------------
// Satellite bugfix: DecodeAll must not mask mid-stream corruption as a
// truncated tail.
// ---------------------------------------------------------------------------

// Legacy (unframed) stream plus the byte offset where each record starts.
Bytes LegacyStream(size_t records, std::vector<size_t>* starts) {
  Encoder enc;
  for (size_t i = 0; i < records; ++i) {
    starts->push_back(enc.size());
    MakeRecord(i).EncodeTo(&enc);
  }
  return enc.Take();
}

TEST(AuditDecodeAllTest, MidStreamCorruptionIsAnErrorNotATail) {
  std::vector<size_t> starts;
  Bytes stream = LegacyStream(5, &starts);

  // Clobber the op byte of record 2 (i64 time + u32 client + u32 user = 16
  // bytes in) with an out-of-range op code. Before the fix this returned OK
  // with the rest of the log silently dropped.
  Bytes bad = stream;
  bad[starts[2] + 16] = 0xFF;
  std::vector<AuditRecord> out;
  Status s = AuditLogCodec::DecodeAll(bad, AuditQuery{}, &out);
  EXPECT_EQ(s.code(), ErrorCode::kDataCorruption);
  // Records before the break are still returned.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].object, 40u);
  EXPECT_EQ(out[1].object, 41u);

  // A short read at the FINAL record — the crash-truncated unflushed tail —
  // is still tolerated, at every cut point inside the last record.
  for (size_t cut = starts[4] + 1; cut < stream.size(); ++cut) {
    out.clear();
    EXPECT_OK(AuditLogCodec::DecodeAll(ByteSpan(stream).subspan(0, cut), AuditQuery{}, &out));
    EXPECT_EQ(out.size(), 4u) << "cut at " << cut;
  }

  // But a cut that beheads a NON-final record leaves trailing garbage after
  // the decode failure and must be reported.
  Bytes gutted(stream.begin(), stream.begin() + starts[1] + 4);
  gutted.insert(gutted.end(), stream.begin() + starts[2], stream.end());
  out.clear();
  EXPECT_EQ(AuditLogCodec::DecodeAll(gutted, AuditQuery{}, &out).code(),
            ErrorCode::kDataCorruption);
  EXPECT_EQ(out.size(), 1u);
}

// ---------------------------------------------------------------------------
// Chain frame verdicts
// ---------------------------------------------------------------------------

TEST(AuditChainTest, CleanTailVersusCorruptedDependsOnCommitBoundary) {
  AuditChainState state;
  Encoder enc;
  std::vector<uint64_t> starts;
  for (uint64_t i = 0; i < 3; ++i) {
    starts.push_back(state.next_offset);
    AppendChainFrame(MakeRecord(i), &state, &enc);
  }
  Bytes chain = enc.Take();

  // Cut inside frame 2: nothing committed past the cut -> torn flush.
  ByteSpan cut = ByteSpan(chain).subspan(0, starts[2] + 3);
  AuditChainScan torn = ScanChain(cut, 0, AuditChainState(), starts[2], nullptr);
  EXPECT_EQ(torn.verdict, AuditVerdict::kCleanTail);
  EXPECT_EQ(torn.records, 2u);
  EXPECT_EQ(torn.end_state.next_offset, starts[2]);

  // Same bytes, but the commit marker said frame 2 was durable -> tamper.
  AuditChainScan broken = ScanChain(cut, 0, AuditChainState(), chain.size(), nullptr);
  EXPECT_EQ(broken.verdict, AuditVerdict::kCorrupted);

  // A flipped byte below the committed boundary is always corruption, and
  // the scan reports the frame that diverged while keeping prior records.
  Bytes flipped = chain;
  flipped[starts[1] + 5] ^= 0x20;
  AuditChainScan scan = ScanChain(flipped, 0, AuditChainState(), chain.size(), nullptr);
  EXPECT_EQ(scan.verdict, AuditVerdict::kCorrupted);
  EXPECT_EQ(scan.records, 1u);
  EXPECT_EQ(scan.first_bad_seq, 1u);
  EXPECT_EQ(scan.bad_offset, starts[1]);
}

TEST(AuditChainTest, CommitMarkerSectorRoundTrips) {
  AuditCommitMarker m;
  m.generation = 7;
  m.committed_size = 4096;
  m.chain_seq = 12;
  m.chain_link = 0x1234ABCD;
  Bytes sector = m.EncodeSector();
  ASSERT_EQ(sector.size(), kSectorSize);
  ASSERT_OK_AND_ASSIGN(AuditCommitMarker back, AuditCommitMarker::DecodeSector(sector));
  EXPECT_EQ(back.generation, 7u);
  EXPECT_EQ(back.committed_size, 4096u);
  EXPECT_EQ(back.chain_seq, 12u);
  EXPECT_EQ(back.chain_link, 0x1234ABCDu);
  sector[100] ^= 0x01;
  EXPECT_FALSE(AuditCommitMarker::DecodeSector(sector).ok());
}

// ---------------------------------------------------------------------------
// Drive-level tamper evidence
// ---------------------------------------------------------------------------

class AuditChainDriveTest : public DriveTest {
 protected:
  // A few audited mutations, ending in a Sync (which forces the framed tail
  // onto the platter; the commit marker catches up at unmount/checkpoint).
  ObjectId SomeOps() {
    Credentials alice = User(100, 7);
    auto id = drive_->Create(alice, {});
    EXPECT_OK(id.status());
    EXPECT_OK(drive_->Write(alice, *id, 0, BytesOf("chronicle")));
    (void)drive_->Read(alice, *id, 0, 9);  // result unused; audited either way
    EXPECT_OK(drive_->Sync(alice));
    return *id;
  }

  uint64_t Counter(const char* name) { return drive_->metrics().CounterValue(name); }
};

TEST_F(AuditChainDriveTest, SingleFlippedByteDetectedAtMountAndQuery) {
  SomeOps();
  // Settle the buffered tail (the Sync op's own record) into the object so
  // the block addresses below are the ones the remount will actually read.
  ASSERT_OK(drive_->QueryAudit(Admin(), AuditQuery{}).status());
  ASSERT_OK_AND_ASSIGN(std::vector<DiskAddr> addrs,
                       drive_->DebugObjectBlockAddrs(kAuditLogObjectId));
  ASSERT_FALSE(addrs.empty());
  ASSERT_OK(drive_->Unmount());
  drive_.reset();

  // One flipped bit in the first committed audit sector, behind the drive's
  // back.
  Bytes sector;
  ASSERT_OK(device_->Read(addrs[0], 1, &sector));
  sector[9] ^= 0x01;
  ASSERT_OK(device_->Write(addrs[0], sector));

  // Mount survives (the chronicle is evidence, not a boot dependency) but
  // flags the break; reading the log back reports corruption rather than a
  // silently shortened history.
  auto mounted = S4Drive::Mount(device_.get(), clock_.get(), opts_);
  ASSERT_OK(mounted.status());
  drive_ = std::move(*mounted);
  EXPECT_GE(Counter("audit.chain_breaks"), 1u);
  EXPECT_EQ(Counter("audit.clean_tail_truncations"), 0u);
  EXPECT_EQ(drive_->QueryAudit(Admin(), AuditQuery{}).status().code(),
            ErrorCode::kDataCorruption);
}

TEST_F(AuditChainDriveTest, CleanUnmountRemountVerifiesWholeChain) {
  SomeOps();
  AuditChainState before = drive_->DebugAuditChainState();
  ASSERT_OK(drive_->Unmount());
  drive_.reset();
  auto mounted = S4Drive::Mount(device_.get(), clock_.get(), opts_);
  ASSERT_OK(mounted.status());
  drive_ = std::move(*mounted);
  EXPECT_EQ(Counter("audit.chain_breaks"), 0u);
  EXPECT_TRUE(drive_->DebugAuditChainState() == before);
  EXPECT_OK(drive_->QueryAudit(Admin(), AuditQuery{}).status());
}

TEST_F(AuditChainDriveTest, DestroyedMarkerSectorsAreNotATamperAlarm) {
  SomeOps();
  ASSERT_OK(drive_->Unmount());
  drive_.reset();

  // An attacker (or bad sector) taking out both marker copies must not turn
  // an intact chain into a false alarm: the checkpointed chain state is the
  // second committed-size floor, and the chain itself still verifies.
  Bytes sector0;
  ASSERT_OK(device_->Read(0, 1, &sector0));
  ASSERT_OK_AND_ASSIGN(Superblock sb, Superblock::Decode(sector0));
  ASSERT_NE(sb.audit_marker_a, kNullAddr);
  device_->CorruptSectors(sb.audit_marker_a);
  device_->CorruptSectors(sb.audit_marker_b);

  auto mounted = S4Drive::Mount(device_.get(), clock_.get(), opts_);
  ASSERT_OK(mounted.status());
  drive_ = std::move(*mounted);
  EXPECT_EQ(Counter("audit.chain_breaks"), 0u);
  EXPECT_OK(drive_->QueryAudit(Admin(), AuditQuery{}).status());
}

TEST_F(AuditChainDriveTest, SyncMakesAuditTailCrashDurable) {
  // Satellite: kSync must force the audit buffer durable, so a power cut
  // right after an acknowledged Sync loses nothing before it.
  ObjectId id = SomeOps();
  CrashAndRemount();
  EXPECT_EQ(Counter("audit.chain_breaks"), 0u);
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> records,
                       drive_->QueryAudit(Admin(), AuditQuery{}));
  bool saw_create = false, saw_write = false, saw_read = false;
  for (const AuditRecord& r : records) {
    saw_create |= r.op == RpcOp::kCreate && r.object == id;
    saw_write |= r.op == RpcOp::kWrite && r.object == id;
    saw_read |= r.op == RpcOp::kRead && r.object == id;
  }
  EXPECT_TRUE(saw_create);
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_read);
}

TEST_F(AuditChainDriveTest, HistoryFlushMakesAuditTrailDurableFirst) {
  // kFlush purges history; the audit records describing what was purged (and
  // everything before) must hit the media before the purge is acknowledged.
  Credentials alice = User(100, 7);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("evidence")));
  ASSERT_OK(drive_->Flush(Admin(), 0, 1));
  CrashAndRemount();
  EXPECT_EQ(Counter("audit.chain_breaks"), 0u);
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> records,
                       drive_->QueryAudit(Admin(), AuditQuery{}));
  bool saw_write = false, saw_flush = false;
  for (const AuditRecord& r : records) {
    saw_write |= r.op == RpcOp::kWrite && r.object == id;
    saw_flush |= r.op == RpcOp::kFlush;
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_flush);
}

TEST_F(AuditChainDriveTest, ChallengeProvesChainAndDetectsDivergence) {
  SomeOps();
  // Genesis challenge straight against the drive API.
  ASSERT_OK_AND_ASSIGN(AuditChallengeProof proof, drive_->AuditChallenge(Admin(), 0));
  AuditChainState saved;
  ASSERT_OK(VerifyChallengeProof(proof.frames, &saved));
  EXPECT_TRUE(saved == proof.end_state);

  // Non-admins cannot run challenges.
  EXPECT_EQ(drive_->AuditChallenge(User(100), 0).status().code(),
            ErrorCode::kPermissionDenied);

  // A tampered proof (one flipped byte) fails verification.
  ASSERT_GT(proof.frames.size(), 10u);
  proof.frames[7] ^= 0x04;
  AuditChainState fresh;
  EXPECT_EQ(VerifyChallengeProof(proof.frames, &fresh).code(), ErrorCode::kDataCorruption);
}

TEST_F(AuditChainDriveTest, LegacyUnchainedModeStillWorks) {
  // The bench baseline (and pre-chain volumes) run with audit_chain off;
  // records must still round-trip through the legacy codec path.
  S4DriveOptions opts = SmallOptions();
  opts.audit_chain = false;
  SetUpDrive(opts, 64ull << 20);
  ObjectId id = SomeOps();
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> records,
                       drive_->QueryAudit(Admin(), AuditQuery{}));
  bool saw_write = false;
  for (const AuditRecord& r : records) {
    saw_write |= r.op == RpcOp::kWrite && r.object == id;
  }
  EXPECT_TRUE(saw_write);
  EXPECT_EQ(Counter("audit.marker_writes"), 0u);
}

}  // namespace
}  // namespace s4
