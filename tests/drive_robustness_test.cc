// Hostile-environment robustness: corrupted checkpoint regions, purge/
// cleaner interplay, recovery idempotence, and mount failure modes.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace s4 {
namespace {

TEST_F(DriveTest, MountFallsBackToOlderCheckpointRegion) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("first epoch")));
  ASSERT_OK(drive_->WriteCheckpoint());
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("second epoch")));
  ASSERT_OK(drive_->WriteCheckpoint());
  drive_.reset();

  // Corrupt the NEWER checkpoint region (generation alternates A/B; clobber
  // both first sectors' CRC one at a time and ensure mount still works from
  // the survivor plus roll-forward).
  device_->SimulateCrashTornSector(1);  // region A head
  auto remounted = S4Drive::Mount(device_.get(), clock_.get(), opts_);
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  drive_ = std::move(*remounted);
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(got), "second epoch");
}

TEST_F(DriveTest, MountFailsCleanlyWhenBothCheckpointsCorrupt) {
  ASSERT_OK(drive_->Unmount());
  drive_.reset();
  device_->SimulateCrashTornSector(1);
  device_->SimulateCrashTornSector(1 + 2048);  // region B head for 64MB geometry
  auto remounted = S4Drive::Mount(device_.get(), clock_.get(), opts_);
  ASSERT_FALSE(remounted.ok());
  EXPECT_EQ(remounted.status().code(), ErrorCode::kDataCorruption);
}

TEST_F(DriveTest, MountOfBlankDeviceFails) {
  auto blank_clock = std::make_unique<SimClock>();
  BlockDevice blank((16ull << 20) / kSectorSize, blank_clock.get());
  auto mounted = S4Drive::Mount(&blank, blank_clock.get(), opts_);
  EXPECT_FALSE(mounted.ok());
}

TEST_F(DriveTest, RecoveryIsIdempotent) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("stable")));
  ASSERT_OK(drive_->Sync(alice));
  // Mount repeatedly without writing anything: recovery must not change the
  // on-disk state it recovers from.
  for (int i = 0; i < 3; ++i) {
    CrashAndRemount();
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64));
    ASSERT_EQ(StringOf(got), "stable");
  }
}

TEST_F(DriveTest, PurgedRangesSurviveCrash) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v2")));
  SimTime t2 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v3")));
  ASSERT_OK(drive_->FlushObject(Admin(), id, t1, t2));
  ASSERT_OK(drive_->WriteCheckpoint());

  CrashAndRemount();
  // The purge is remembered: the destroyed version still fails loudly.
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, t1).status().code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(cur), "v3");
}

TEST_F(DriveTest, CleanerSkipsPurgedVersionsWithoutDoubleFree) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(31);
  std::vector<SimTime> times;
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(drive_->Write(alice, id, 0, rng.RandomBytes(20000)));
    times.push_back(clock_->Now());
    clock_->Advance(kMinute);
  }
  // Purge the middle of the history, then age everything out and clean.
  ASSERT_OK(drive_->FlushObject(Admin(), id, times[2], times[5]));
  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  // Accounting stayed consistent (no S4_CHECK underflow) and the object's
  // current contents are intact.
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 20000u);
}

TEST_F(DriveTest, ShrinkWindowThenCleanReclaimsSooner) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v2")));
  ASSERT_OK(drive_->Sync(alice));
  clock_->Advance(10 * kMinute);  // inside the 1-hour window
  // Admin shrinks the window to 1 minute; the old version is now expirable.
  ASSERT_OK(drive_->SetWindow(Admin(), kMinute));
  ASSERT_OK(drive_->RunCleanerPass(4).status());
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, t1).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(DriveTest, GrowWindowRetainsMore) {
  ASSERT_OK(drive_->SetWindow(Admin(), 24 * kHour));
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("precious")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("newer")));
  clock_->Advance(10 * kHour);  // would have expired under the 1h default
  ASSERT_OK(drive_->RunCleanerPass(4).status());
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64, t1));
  EXPECT_EQ(StringOf(got), "precious");
}

TEST_F(DriveTest, ZeroLengthAndBoundaryOps) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  // Zero-length write is a no-op, not an error.
  ASSERT_OK(drive_->Write(alice, id, 0, {}));
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 0u);
  // Zero-length read of empty object.
  ASSERT_OK_AND_ASSIGN(Bytes empty, drive_->Read(alice, id, 0, 0));
  EXPECT_TRUE(empty.empty());
  // Exact block-boundary writes.
  Bytes block(kBlockSize, 0x42);
  ASSERT_OK(drive_->Write(alice, id, 0, block));
  ASSERT_OK(drive_->Write(alice, id, kBlockSize, block));
  ASSERT_OK_AND_ASSIGN(Bytes two, drive_->Read(alice, id, 0, 2 * kBlockSize));
  EXPECT_EQ(two.size(), 2 * kBlockSize);
  // Truncate to exactly a block boundary and back.
  ASSERT_OK(drive_->Truncate(alice, id, kBlockSize));
  ASSERT_OK_AND_ASSIGN(Bytes one, drive_->Read(alice, id, 0, 2 * kBlockSize));
  EXPECT_EQ(one.size(), kBlockSize);
}

TEST_F(DriveTest, OpsOnNonexistentObjects) {
  Credentials alice = User(100);
  ObjectId ghost = 999999;
  EXPECT_EQ(drive_->Read(alice, ghost, 0, 10).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(drive_->Write(alice, ghost, 0, BytesOf("x")).code(), ErrorCode::kNotFound);
  EXPECT_EQ(drive_->Delete(alice, ghost).code(), ErrorCode::kNotFound);
  EXPECT_EQ(drive_->GetAttr(alice, ghost).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(drive_->GetVersionList(alice, ghost).status().code(), ErrorCode::kNotFound);
}

TEST_F(DriveTest, DoubleDeleteRejected) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Delete(alice, id));
  EXPECT_EQ(drive_->Delete(alice, id).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(drive_->Write(alice, id, 0, BytesOf("zombie")).code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(DriveTest, EvictionWriteBackFailureSurfacesOnNextSync) {
  FaultInjector fi;
  device_->set_fault_injector(&fi);
  Credentials alice = User(100);

  // Fill the tiny object cache with dirty objects: each carries pending
  // journal entries that a future eviction must write back.
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
    ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("dirty " + std::to_string(i))));
  }

  // The next device write loses power. Creates write nothing themselves, but
  // each insert evicts a dirty LRU object whose write-back eventually flushes
  // a chunk — and that flush dies on the powered-off device. The client that
  // issued the Create sees success; durability was lost behind its back.
  fi.SchedulePowerCut(1);
  for (int i = 0; i < 400; ++i) {
    auto r = drive_->Create(alice, {});
    (void)r;
    if (fi.power_cut_fired() && i % 8 == 7) {
      break;  // a few extra creates after the cut force failed evictions
    }
  }
  ASSERT_TRUE(fi.power_cut_fired()) << "workload never reached a device write";
  fi.PowerOn();

  // Regression: the stored eviction failure must surface on the next Sync
  // instead of being consumed silently by internal checkpoint housekeeping.
  Status sync = drive_->Sync(alice);
  ASSERT_FALSE(sync.ok()) << "eviction write-back failure was swallowed";
  // Reporting consumes the sticky error; the drive then syncs cleanly.
  EXPECT_OK(drive_->Sync(alice));
}

TEST_F(DriveTest, TimeBasedReadBeforeCreationFails) {
  Credentials alice = User(100);
  clock_->Advance(kMinute);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 10, SimTime{0}).status().code(),
            ErrorCode::kNotFound);
}

}  // namespace
}  // namespace s4
