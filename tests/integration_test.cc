// Whole-system integration: the fully authenticated NFS stack
// (S4FileSystem -> signed RPCs -> AuthGateway -> drive), throttle recovery
// after cleaning, and a combined end-to-end scenario that exercises
// versioning, crash recovery, cleaning, and diagnosis together.
#include <gtest/gtest.h>

#include "src/fs/s4_fs.h"
#include "src/recovery/history_browser.h"
#include "src/rpc/auth.h"
#include "src/rpc/client.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

TEST_F(DriveTest, AuthenticatedNfsStackEndToEnd) {
  // Wire: fs -> client stub -> signer -> gateway -> server -> drive.
  S4RpcServer server(drive_.get());
  AuthGateway gateway(&server);
  AuthLoopbackTransport transport(&gateway, clock_.get());
  MacKey key{};
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(i * 7);
  }
  gateway.RegisterPrincipal(1, 100, key);
  SigningTransport signer(&transport, 1, 100, key);
  S4Client client(&signer, User(100, 1));
  ASSERT_OK_AND_ASSIGN(auto fs, S4FileSystem::Format(&client, "root"));

  // Normal file system work flows through the authenticated path.
  ASSERT_OK_AND_ASSIGN(FileHandle dir, MakeDirs(fs.get(), "/secure/docs"));
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs->CreateFile(dir, "report.txt", 0644));
  ASSERT_OK(fs->WriteFile(f, 0, BytesOf("quarterly numbers")));
  ASSERT_OK_AND_ASSIGN(Bytes got, fs->ReadFile(f, 0, 64));
  EXPECT_EQ(StringOf(got), "quarterly numbers");

  // An unauthenticated client bounces off the gateway before the drive.
  S4Client anonymous(&transport, User(100, 1));
  EXPECT_EQ(anonymous.Read(f, 0, 64).status().code(), ErrorCode::kPermissionDenied);
  uint64_t ops_before = drive_->stats().ops_total;
  (void)anonymous.Read(f, 0, 64);  // denial checked above; only counting ops
  EXPECT_EQ(drive_->stats().ops_total, ops_before);  // never reached the drive
}

TEST_F(DriveTest, ThrottledClientRecoversAfterCleaning) {
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 5 * kMinute;
    return o;
  }(), 24ull << 20);
  Credentials greedy = User(1, 1);
  ASSERT_OK_AND_ASSIGN(ObjectId obj, drive_->Create(greedy, {}));
  Rng rng(61);
  Bytes chunk = rng.RandomBytes(256 * 1024);

  // Churn the same region until throttled: the superseded versions pile up
  // as history and exhaust the pool.
  bool throttled = false;
  for (int i = 0; i < 300 && !throttled; ++i) {
    Status s = drive_->Write(greedy, obj, 0, chunk);
    if (s.code() == ErrorCode::kThrottled) {
      throttled = true;
    } else if (!s.ok()) {
      break;
    }
  }
  ASSERT_TRUE(throttled);

  // Let history age out, clean, and try again: service resumes.
  clock_->Advance(10 * kMinute);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(drive_->RunCleanerPass(8).status());
  }
  clock_->Advance(10 * kSecond);  // client's write-rate EMA decays too
  EXPECT_OK(drive_->Write(greedy, obj, 0, BytesOf("welcome back")));
}

TEST_F(DriveTest, FullLifecycleScenario) {
  // Day 0: users build a small tree; some files churn.
  Credentials alice = User(100, 1);
  Rng rng(62);
  ASSERT_OK_AND_ASSIGN(ObjectId config, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, config, 0, BytesOf("config generation 0")));
  std::vector<std::pair<SimTime, std::string>> config_history;
  config_history.emplace_back(clock_->Now(), "config generation 0");

  for (int gen = 1; gen <= 5; ++gen) {
    clock_->Advance(4 * kMinute);
    std::string content = "config generation " + std::to_string(gen);
    ASSERT_OK(drive_->Write(alice, config, 0, BytesOf(content)));
    config_history.emplace_back(clock_->Now(), content);
    // Unrelated churn.
    ASSERT_OK_AND_ASSIGN(ObjectId tmp, drive_->Create(alice, {}));
    ASSERT_OK(drive_->Write(alice, tmp, 0, rng.RandomBytes(30000)));
    ASSERT_OK(drive_->Delete(alice, tmp));
  }
  // Checkpoint (audit records ride whole blocks; durability is at
  // checkpoint granularity), then crash + remount.
  ASSERT_OK(drive_->WriteCheckpoint());
  CrashAndRemount();
  for (const auto& [t, content] : config_history) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(Admin(), config, 0, 64, t));
    ASSERT_EQ(StringOf(got), content);
  }

  // Time passes beyond the window; cleaning expires the early generations.
  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_FALSE(drive_->Read(Admin(), config, 0, 64, config_history[0].first).ok());
  // Current state still perfect.
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, config, 0, 64));
  EXPECT_EQ(StringOf(cur), "config generation 5");

  // And the audit log still tells the story.
  AuditQuery writes;
  writes.op = RpcOp::kWrite;
  writes.object = config;
  ASSERT_OK_AND_ASSIGN(auto records, drive_->QueryAudit(Admin(), writes));
  EXPECT_GE(records.size(), 6u);
}

}  // namespace
}  // namespace s4
