// Fixture: cluster code reaching past the S4Drive public API into a drive
// internal (the audit log type). Must fire S4L008.
namespace s4 {

void PeekInsideTheDrive() {
  AuditLog* chronicle = nullptr;  // drive-internal type named in cluster code
  (void)chronicle;  // fixture only needs the token to appear
}

}  // namespace s4
