// Fixture enum: kDelete is declared but neither implemented through the
// Execute pipeline nor dispatched by the transport -> S4L002 fires twice.
namespace s4 {

enum class RpcOp : uint8_t {
  kInvalid = 0,
  kCreate = 1,
  kDelete = 2,
  kBatch = 3,
};

}  // namespace s4
