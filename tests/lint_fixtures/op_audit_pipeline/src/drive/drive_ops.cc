// Fixture: implements kCreate via the audit pipeline, but kDelete is missing.
#include "src/audit/audit_log.h"

namespace s4 {

Result<ObjectId> S4Drive::Create(OpContext* ctx, const Bytes& attrs) {
  OpArgs a{RpcOp::kCreate};
  return Execute(ctx, a, [&]() -> Result<ObjectId> { return 1; });
}

}  // namespace s4
