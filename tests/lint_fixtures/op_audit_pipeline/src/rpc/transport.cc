// Fixture: dispatches kCreate only; kDelete is missing from the switch.
#include "src/audit/audit_log.h"

namespace s4 {

Bytes Dispatch(RpcOp op) {
  switch (op) {
    case RpcOp::kCreate:
      return HandleCreate();
    default:
      return {};
  }
}

}  // namespace s4
