// Fixture: S4L009 must fire — a drive-layer thread means the layer is trying
// to schedule work on its own instead of relying on the executor's
// stripe/exclusivity scheduling. (Raw mutexes are S4L010's fixture.)
#include <thread>

namespace s4 {

struct BadDriveState {
  int sequence = 0;
};

void BumpSequenceAsync(BadDriveState* s) {
  std::thread t([s] { ++s->sequence; });
  t.join();
}

}  // namespace s4
