// Fixture: S4L009 must fire — a drive-layer mutex means the layer is trying
// to synchronise on its own instead of relying on the executor's
// stripe/exclusivity scheduling.
#include <mutex>

namespace s4 {

struct BadDriveState {
  std::mutex mu;
  int sequence = 0;
};

void BumpSequence(BadDriveState* s) {
  std::lock_guard<std::mutex> lock(s->mu);
  ++s->sequence;
}

}  // namespace s4
