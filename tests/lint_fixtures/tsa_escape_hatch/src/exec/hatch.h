// Fixture: S4L010 must fire — an S4_NO_THREAD_SAFETY_ANALYSIS escape hatch
// with no rationale comment on the same or preceding line. Note the blank
// line below keeps this header comment from counting as the rationale.
#ifndef FIXTURE_HATCH_H_
#define FIXTURE_HATCH_H_

namespace s4 {

class Hatch {
 public:
  void Sneak() S4_NO_THREAD_SAFETY_ANALYSIS;

 private:
  Mutex mu_{LockRank::kExecutor, "Hatch"};
  int hidden_ S4_GUARDED_BY(mu_) = 0;
};

}  // namespace s4

#endif  // FIXTURE_HATCH_H_
