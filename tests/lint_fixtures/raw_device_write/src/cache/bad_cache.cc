// Fixture: S4L001 must fire — a cache layer writing straight to the device
// would bypass the versioning/audit write path.
namespace s4 {

void FlushDirty(BlockDevice* device_, uint64_t lba, const Bytes& data) {
  device_->Write(lba, data);
}

}  // namespace s4
