// Fixture: must produce zero findings. Exercises the negative space of every
// rule: tokens in comments/strings, variable-silencing (void), and an
// annotated discard are all allowed.
#include <string>

namespace s4 {

// The word throw, system_clock, and device_->Write( in a comment are fine.
std::string Describe(int index) {
  (void)index;  // not a call: plain unused-variable silencer
  std::string s = "clients may throw std::rand at the wall, we don't";
  // Annotated discard of a call result is allowed:
  (void)s.empty();  // emptiness is irrelevant here; call kept for symmetry
  return s;
}

}  // namespace s4
