// Fixture: S4L004 must fire — src/ code never throws; fallible paths return
// Status/Result.
#include <stdexcept>

namespace s4 {

void Mount(bool ok) {
  if (!ok) {
    throw std::runtime_error("mount failed");
  }
}

}  // namespace s4
