// Negative fixture for S4L007: a component outside the drive's audit
// append/trim path writing the reserved audit object. A cache layer that can
// append to the chronicle could forge records from inside the trust boundary.
#include "src/util/bytes.h"

namespace s4 {

void BadAuditWriter(SegmentWriter* writer, ByteSpan block) {
  // VIOLATION: only src/drive/drive_ops.cc may mutate the audit object.
  (void)writer->Append(RecordKind::kData, kAuditLogObjectId, 0, block);
}

}  // namespace s4
