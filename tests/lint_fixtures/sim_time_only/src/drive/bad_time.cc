// Fixture: S4L003 must fire — wall-clock time in the drive layer breaks
// deterministic replay of the crash/fault harnesses.
#include <chrono>

namespace s4 {

uint64_t NowMicros() {
  auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace s4
