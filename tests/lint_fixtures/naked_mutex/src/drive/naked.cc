// Fixture: S4L010 must fire — a naked std::mutex outside src/util/sync.*
// bypasses both the Clang Thread Safety annotations and the runtime
// lock-rank checker. The sanctioned spelling is s4::Mutex + s4::MutexLock.
#include <mutex>

namespace s4 {

struct NakedState {
  std::mutex mu;
  int value = 0;
};

void Bump(NakedState* s) {
  std::lock_guard<std::mutex> lock(s->mu);
  ++s->value;
}

}  // namespace s4
