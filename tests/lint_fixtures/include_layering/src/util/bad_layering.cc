// Fixture: S4L006 must fire — util is the bottom layer and may not reach up
// into drive.
#include "src/drive/s4_drive.h"

namespace s4 {

void Helper() {}

}  // namespace s4
