// Fixture: S4L005 must fire — a (void)-discarded call (here, almost certainly
// a [[nodiscard]] Status) with no rationale comment.
namespace s4 {

void Teardown(Store* store) {
  (void)store->Flush();
}

}  // namespace s4
