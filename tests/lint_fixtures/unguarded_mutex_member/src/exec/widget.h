// Fixture: S4L010 must fire — an s4::Mutex member with no
// S4_GUARDED_BY(mu_) referent anywhere in the file. A lock that no
// annotation names guards nothing the static analysis can see; either
// annotate the state it protects or delete it. (Lives under src/exec so the
// wrapper types themselves are allowed — S4L009 stays quiet.)
#ifndef FIXTURE_WIDGET_H_
#define FIXTURE_WIDGET_H_

namespace s4 {

class Widget {
 public:
  void Poke();

 private:
  Mutex mu_{LockRank::kExecutor, "Widget"};
  int pokes_ = 0;
};

}  // namespace s4

#endif  // FIXTURE_WIDGET_H_
