// Table 1 conformance over the wire: every RPC round-trips through frame
// encode -> transport -> dispatch -> drive -> response encode, and the
// time-based access column matches the paper exactly.
#include <gtest/gtest.h>

#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class RpcCoverageTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    server_ = std::make_unique<S4RpcServer>(drive_.get());
    transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
    alice_ = std::make_unique<S4Client>(transport_.get(), User(100));
    admin_client_ = std::make_unique<S4Client>(transport_.get(), Admin());
  }

  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<S4Client> alice_;
  std::unique_ptr<S4Client> admin_client_;
};

TEST_F(RpcCoverageTest, AllNineteenOpsRoundTrip) {
  // Create / Write / Append / Read / Truncate.
  ASSERT_OK_AND_ASSIGN(ObjectId id, alice_->Create(BytesOf("attrs")));
  ASSERT_OK(alice_->Write(id, 0, BytesOf("hello ")));
  ASSERT_OK_AND_ASSIGN(uint64_t size, alice_->Append(id, BytesOf("world")));
  EXPECT_EQ(size, 11u);
  ASSERT_OK_AND_ASSIGN(Bytes got, alice_->Read(id, 0, 64));
  EXPECT_EQ(StringOf(got), "hello world");
  ASSERT_OK(alice_->Truncate(id, 5));

  // GetAttr / SetAttr.
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, alice_->GetAttr(id));
  EXPECT_EQ(attrs.size, 5u);
  EXPECT_EQ(StringOf(attrs.opaque), "attrs");
  ASSERT_OK(alice_->SetAttr(id, BytesOf("attrs2")));

  // SetACL / GetACLByUser / GetACLByIndex.
  ASSERT_OK(alice_->SetAcl(id, AclEntry{200, kPermRead}));
  ASSERT_OK_AND_ASSIGN(AclEntry by_user, alice_->GetAclByUser(id, 200));
  EXPECT_EQ(by_user.perms, kPermRead);
  ASSERT_OK_AND_ASSIGN(AclEntry by_index, alice_->GetAclByIndex(id, 0));
  EXPECT_EQ(by_index.user, 100u);

  // PCreate / PMount / PList / PDelete.
  ASSERT_OK(alice_->PCreate("vol0", id));
  ASSERT_OK_AND_ASSIGN(ObjectId mounted, alice_->PMount("vol0"));
  EXPECT_EQ(mounted, id);
  ASSERT_OK_AND_ASSIGN(auto partitions, alice_->PList());
  ASSERT_EQ(partitions.size(), 1u);
  EXPECT_EQ(partitions[0].first, "vol0");
  ASSERT_OK(alice_->PDelete("vol0"));

  // Sync / SetWindow / Flush / FlushO (admin) / Delete / GetVersionList.
  ASSERT_OK(alice_->Sync());
  ASSERT_OK(admin_client_->SetWindow(3 * kDay));
  ASSERT_OK(admin_client_->Flush(0, 1));
  ASSERT_OK(admin_client_->FlushObject(id, 0, 1));
  ASSERT_OK_AND_ASSIGN(auto versions, alice_->GetVersionList(id));
  EXPECT_GE(versions.size(), 4u);
  ASSERT_OK(alice_->Delete(id));
}

TEST_F(RpcCoverageTest, AuditChallengeRoundTripsOverTheWire) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, alice_->Create({}));
  ASSERT_OK(alice_->Write(id, 0, BytesOf("x")));
  ASSERT_OK(alice_->Sync());

  // The external auditor verifies the whole chain from genesis, then only
  // the new frames on the next challenge.
  AuditChainState saved;
  ASSERT_OK(admin_client_->AuditChallenge(&saved));
  EXPECT_GT(saved.next_seq, 0u);
  uint64_t seq = saved.next_seq;
  ASSERT_OK(alice_->Write(id, 0, BytesOf("y")));
  ASSERT_OK(admin_client_->AuditChallenge(&saved));
  EXPECT_GT(saved.next_seq, seq);

  // Challenges are an admin capability.
  AuditChainState theirs;
  EXPECT_EQ(alice_->AuditChallenge(&theirs).code(), ErrorCode::kPermissionDenied);
}

TEST_F(RpcCoverageTest, TimeBasedAccessColumnMatchesTable1) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, alice_->Create(BytesOf("v1-attrs")));
  ASSERT_OK(alice_->Write(id, 0, BytesOf("version one")));
  ASSERT_OK(alice_->SetAcl(id, AclEntry{200, kPermRead | kPermRecovery}));
  ASSERT_OK(alice_->PCreate("snap", id));
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(alice_->Write(id, 0, BytesOf("version TWO")));
  ASSERT_OK(alice_->SetAttr(id, BytesOf("v2-attrs")));
  ASSERT_OK(alice_->SetAcl(id, AclEntry{200, kPermRead}));
  ASSERT_OK(alice_->PDelete("snap"));

  // "yes" rows: Read, GetAttr, GetACLByUser, GetACLByIndex, PList, PMount.
  ASSERT_OK_AND_ASSIGN(Bytes old_data, alice_->Read(id, 0, 64, t1));
  EXPECT_EQ(StringOf(old_data), "version one");
  ASSERT_OK_AND_ASSIGN(ObjectAttrs old_attrs, alice_->GetAttr(id, t1));
  EXPECT_EQ(StringOf(old_attrs.opaque), "v1-attrs");
  ASSERT_OK_AND_ASSIGN(AclEntry old_acl, alice_->GetAclByUser(id, 200, t1));
  EXPECT_EQ(old_acl.perms, kPermRead | kPermRecovery);
  ASSERT_OK_AND_ASSIGN(AclEntry old_acl_i, alice_->GetAclByIndex(id, 1, t1));
  EXPECT_EQ(old_acl_i.user, 200u);
  ASSERT_OK_AND_ASSIGN(auto old_parts, alice_->PList(t1));
  ASSERT_EQ(old_parts.size(), 1u);
  ASSERT_OK_AND_ASSIGN(ObjectId old_mount, alice_->PMount("snap", t1));
  EXPECT_EQ(old_mount, id);
  // The partition is gone in the present.
  EXPECT_EQ(alice_->PMount("snap").status().code(), ErrorCode::kNotFound);
}

TEST_F(RpcCoverageTest, AdminOpsRequireAdminOverTheWire) {
  EXPECT_EQ(alice_->SetWindow(kDay).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(alice_->Flush(0, 1).code(), ErrorCode::kPermissionDenied);
  ASSERT_OK_AND_ASSIGN(ObjectId id, alice_->Create({}));
  EXPECT_EQ(alice_->FlushObject(id, 0, 1).code(), ErrorCode::kPermissionDenied);
}

TEST_F(RpcCoverageTest, ErrorsSurviveTheWire) {
  // Error codes and messages cross the transport intact.
  auto missing = alice_->Read(424242, 0, 10);
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(missing.status().message().empty());
  auto bad_attr = alice_->Create(Bytes(10000, 0));
  EXPECT_EQ(bad_attr.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(RpcCoverageTest, TransportCountsRequestsSentAndResponsesReceived) {
  // Each Call is exactly one request out and one response back; responses
  // must not be double-counted as sent traffic.
  ASSERT_OK_AND_ASSIGN(ObjectId id, alice_->Create({}));
  const NetStats after_create = transport_->stats();
  EXPECT_EQ(after_create.messages_sent, 1u);
  EXPECT_EQ(after_create.messages_received, 1u);

  // A large write is request-heavy: payload travels in the request.
  Bytes big(1 << 20, 0x33);
  ASSERT_OK(alice_->Write(id, 0, big));
  NetStats s = transport_->stats();
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.messages_received, 2u);
  uint64_t write_sent = s.bytes_sent - after_create.bytes_sent;
  uint64_t write_received = s.bytes_received - after_create.bytes_received;
  EXPECT_GT(write_sent, big.size());
  EXPECT_LT(write_received, 1024u);

  // A large read is response-heavy: payload travels in the response.
  ASSERT_OK_AND_ASSIGN(Bytes got, alice_->Read(id, 0, big.size()));
  EXPECT_EQ(got.size(), big.size());
  const NetStats before_read = s;
  s = transport_->stats();
  EXPECT_EQ(s.messages_sent, 3u);
  EXPECT_EQ(s.messages_received, 3u);
  uint64_t read_sent = s.bytes_sent - before_read.bytes_sent;
  uint64_t read_received = s.bytes_received - before_read.bytes_received;
  EXPECT_LT(read_sent, 1024u);
  EXPECT_GT(read_received, big.size());
}

TEST_F(RpcCoverageTest, ResponseRoundTripsEveryErrorCode) {
  // Regression: RpcResponse::Decode used to bound-check the code byte
  // against kInternal (10), so a legitimate kUnavailable (11) response —
  // e.g. the drive reporting a transient device error — failed to decode
  // and surfaced to the client as DATA_CORRUPTION instead.
  for (uint8_t raw = 0; raw < kNumErrorCodes; ++raw) {
    RpcResponse resp;
    resp.code = static_cast<ErrorCode>(raw);
    resp.message = "detail";
    Bytes frame = resp.Encode();
    auto decoded = RpcResponse::Decode(frame);
    ASSERT_OK(decoded.status()) << "code " << ErrorCodeName(resp.code);
    EXPECT_EQ(decoded->code, resp.code);
  }
}

TEST_F(RpcCoverageTest, GarbageFramesGetErrorResponses) {
  Rng rng(71);
  for (int i = 0; i < 20; ++i) {
    Bytes garbage = rng.RandomBytes(16 + rng.Below(256));
    Bytes response = server_->Handle(garbage);
    ASSERT_OK_AND_ASSIGN(RpcResponse resp, RpcResponse::Decode(response));
    EXPECT_FALSE(resp.ok());
  }
  // The drive is still healthy afterwards.
  ASSERT_OK(alice_->Create({}).status());
}

}  // namespace
}  // namespace s4
