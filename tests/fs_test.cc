// S4/NFS translation layer tests, exercising the full stack:
// S4FileSystem -> S4Client -> RPC transport -> S4RpcServer -> S4Drive.
#include <gtest/gtest.h>

#include "src/fs/nfs_wrapper.h"
#include "src/fs/s4_fs.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class FsTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    server_ = std::make_unique<S4RpcServer>(drive_.get());
    transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
    client_ = std::make_unique<S4Client>(transport_.get(), User(100));
    ASSERT_OK_AND_ASSIGN(fs_, S4FileSystem::Format(client_.get(), "root"));
  }

  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<S4Client> client_;
  std::unique_ptr<S4FileSystem> fs_;
};

TEST_F(FsTest, CreateWriteReadFile) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "hello.txt", 0644));
  ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("file contents")));
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(f, 0, 64));
  EXPECT_EQ(StringOf(got), "file contents");
  ASSERT_OK_AND_ASSIGN(FileHandle again, fs_->Lookup(root, "hello.txt"));
  EXPECT_EQ(again, f);
}

TEST_F(FsTest, DirectoryTree) {
  ASSERT_OK_AND_ASSIGN(FileHandle dir, MakeDirs(fs_.get(), "/usr/local/bin"));
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(dir, "tool", 0755));
  ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("#!/bin/sh")));
  ASSERT_OK_AND_ASSIGN(FileHandle resolved, ResolvePath(fs_.get(), "/usr/local/bin/tool"));
  EXPECT_EQ(resolved, f);
  ASSERT_OK_AND_ASSIGN(FileAttr attr, fs_->GetAttr(resolved));
  EXPECT_EQ(attr.type, FileType::kFile);
  EXPECT_EQ(attr.mode, 0755u);
  EXPECT_EQ(attr.size, 9u);
}

TEST_F(FsTest, RemoveAndReaddir) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(fs_->CreateFile(root, "f" + std::to_string(i), 0644).status());
  }
  ASSERT_OK(fs_->Remove(root, "f7"));
  ASSERT_OK(fs_->Remove(root, "f13"));
  ASSERT_OK_AND_ASSIGN(std::vector<DirEntry> entries, fs_->ReadDir(root));
  EXPECT_EQ(entries.size(), 18u);
  EXPECT_EQ(fs_->Lookup(root, "f7").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs_->Remove(root, "f7").code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, RenameReplacesTarget) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle a, fs_->CreateFile(root, "a", 0644));
  ASSERT_OK(fs_->WriteFile(a, 0, BytesOf("contents of a")));
  ASSERT_OK_AND_ASSIGN(FileHandle b, fs_->CreateFile(root, "b", 0644));
  (void)b;
  ASSERT_OK(fs_->Rename(root, "a", root, "b"));
  ASSERT_OK_AND_ASSIGN(FileHandle now_b, fs_->Lookup(root, "b"));
  EXPECT_EQ(now_b, a);
  EXPECT_EQ(fs_->Lookup(root, "a").status().code(), ErrorCode::kNotFound);
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(now_b, 0, 64));
  EXPECT_EQ(StringOf(got), "contents of a");
}

TEST_F(FsTest, RenameAcrossDirectories) {
  ASSERT_OK_AND_ASSIGN(FileHandle src, MakeDirs(fs_.get(), "/src"));
  ASSERT_OK_AND_ASSIGN(FileHandle dst, MakeDirs(fs_.get(), "/dst"));
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(src, "file", 0644));
  ASSERT_OK(fs_->Rename(src, "file", dst, "moved"));
  ASSERT_OK_AND_ASSIGN(FileHandle got, fs_->Lookup(dst, "moved"));
  EXPECT_EQ(got, f);
  EXPECT_EQ(fs_->Lookup(src, "file").status().code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, RmdirOnlyWhenEmpty) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle d, fs_->Mkdir(root, "dir", 0755));
  ASSERT_OK(fs_->CreateFile(d, "occupant", 0644).status());
  EXPECT_EQ(fs_->Rmdir(root, "dir").code(), ErrorCode::kFailedPrecondition);
  ASSERT_OK(fs_->Remove(d, "occupant"));
  ASSERT_OK(fs_->Rmdir(root, "dir"));
  EXPECT_EQ(fs_->Lookup(root, "dir").status().code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, Symlinks) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle l, fs_->Symlink(root, "link", "/target/path"));
  ASSERT_OK_AND_ASSIGN(std::string target, fs_->ReadLink(l));
  EXPECT_EQ(target, "/target/path");
  ASSERT_OK_AND_ASSIGN(FileAttr attr, fs_->GetAttr(l));
  EXPECT_EQ(attr.type, FileType::kSymlink);
}

TEST_F(FsTest, TruncateAndExtend) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "f", 0644));
  ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("0123456789")));
  ASSERT_OK(fs_->SetSize(f, 4));
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(f, 0, 64));
  EXPECT_EQ(StringOf(got), "0123");
}

TEST_F(FsTest, ManyFilesAcrossDirectories) {
  // A PostMark-shaped smoke test through the whole stack.
  Rng rng(11);
  std::vector<std::pair<FileHandle, Bytes>> files;
  for (int d = 0; d < 5; ++d) {
    ASSERT_OK_AND_ASSIGN(FileHandle dir, MakeDirs(fs_.get(), "/d" + std::to_string(d)));
    for (int i = 0; i < 40; ++i) {
      ASSERT_OK_AND_ASSIGN(FileHandle f,
                           fs_->CreateFile(dir, "file" + std::to_string(i), 0644));
      Bytes data = rng.RandomBytes(512 + rng.Below(8 * 1024));
      ASSERT_OK(fs_->WriteFile(f, 0, data));
      files.emplace_back(f, std::move(data));
    }
  }
  for (const auto& [f, data] : files) {
    ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(f, 0, data.size()));
    ASSERT_EQ(got, data);
  }
}

TEST_F(FsTest, FileSystemSurvivesDriveCrash) {
  ASSERT_OK_AND_ASSIGN(FileHandle dir, MakeDirs(fs_.get(), "/home/user"));
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(dir, "doc.txt", 0644));
  ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("important document")));
  // NFSv2: the write already hit stable storage; no explicit sync needed.

  CrashAndRemount();
  server_ = std::make_unique<S4RpcServer>(drive_.get());
  transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
  client_ = std::make_unique<S4Client>(transport_.get(), User(100));
  ASSERT_OK_AND_ASSIGN(fs_, S4FileSystem::Mount(client_.get(), "root"));

  ASSERT_OK_AND_ASSIGN(FileHandle resolved, ResolvePath(fs_.get(), "/home/user/doc.txt"));
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(resolved, 0, 64));
  EXPECT_EQ(StringOf(got), "important document");
}

TEST_F(FsTest, DirCompactionKeepsEntries) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  // Create and delete many files so tombstones force compaction.
  for (int round = 0; round < 5; ++round) {
    std::vector<std::string> names;
    for (int i = 0; i < 30; ++i) {
      std::string name = "tmp" + std::to_string(round) + "_" + std::to_string(i);
      ASSERT_OK(fs_->CreateFile(root, name, 0644).status());
      names.push_back(name);
    }
    for (const auto& name : names) {
      ASSERT_OK(fs_->Remove(root, name));
    }
  }
  ASSERT_OK(fs_->CreateFile(root, "survivor", 0644).status());
  ASSERT_OK_AND_ASSIGN(std::vector<DirEntry> entries, fs_->ReadDir(root));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "survivor");
  // The directory stream was rewritten small.
  ASSERT_OK_AND_ASSIGN(FileHandle root2, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileAttr attr, fs_->GetAttr(root2));
  EXPECT_LT(attr.size, 1024u);
}

TEST_F(FsTest, RpcLayerChargesNetworkTime) {
  SimTime before = clock_->Now();
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "f", 0644));
  Rng rng(1);
  Bytes big = rng.RandomBytes(1 << 20);
  ASSERT_OK(fs_->WriteFile(f, 0, big));
  SimTime elapsed = clock_->Now() - before;
  // 1MB at 12.5MB/s is at least 80ms of wire time.
  EXPECT_GT(elapsed, 80 * kMillisecond);
  EXPECT_GT(transport_->stats().bytes_sent, 1u << 20);
}

}  // namespace
}  // namespace s4
