// Concurrent crash-consistency sweep: N client threads race batched append
// streams through a multi-worker DriveExecutor, power is cut at sampled disk
// write boundaries (clean and torn), and recovery must uphold the same
// invariants as the serial harness — idempotent remount, unbroken audit
// chain, monotone version history, intact waypoints — plus the concurrency-
// specific one: each object's recovered content is an exact prefix of its
// thread's submission order.
#include <gtest/gtest.h>

#include "tests/crash_harness.h"

namespace s4 {
namespace {

TEST(ConcurrentCrashTest, CleanCutSweep) {
  ConcurrentCrashHarness harness(/*threads=*/4, /*appends_per_thread=*/48);
  uint64_t points = harness.CountWritePoints();
  ASSERT_GT(points, 10u) << "workload too small to sweep";
  // The interleave is scheduling-dependent, so sample points well inside the
  // observed range rather than sweeping every boundary.
  int fired = 0;
  for (uint64_t k : {uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{5}, uint64_t{8},
                     points / 4, points / 2, (points * 3) / 4}) {
    if (k == 0) {
      continue;
    }
    if (harness.RunConcurrentCrashPoint(k, /*torn_tail=*/false)) {
      ++fired;
    }
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  EXPECT_GE(fired, 4) << "most sampled crash points should land inside the workload";
}

TEST(ConcurrentCrashTest, TornTailSweep) {
  ConcurrentCrashHarness harness(/*threads=*/4, /*appends_per_thread=*/48);
  uint64_t points = harness.CountWritePoints();
  ASSERT_GT(points, 10u);
  int fired = 0;
  for (uint64_t k : {uint64_t{2}, uint64_t{4}, uint64_t{7}, points / 3, points / 2,
                     (points * 2) / 3}) {
    if (k == 0) {
      continue;
    }
    if (harness.RunConcurrentCrashPoint(k, /*torn_tail=*/true)) {
      ++fired;
    }
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  EXPECT_GE(fired, 3);
}

TEST(ConcurrentCrashTest, FaultFreeConcurrentRunRecoversEverything) {
  // Degenerate "crash" beyond the workload: nothing fires, but the harness
  // still proves a fault-free concurrent run leaves a mountable drive.
  ConcurrentCrashHarness harness(/*threads=*/2, /*appends_per_thread=*/16);
  EXPECT_FALSE(harness.RunConcurrentCrashPoint(1u << 30, /*torn_tail=*/false));
}

}  // namespace
}  // namespace s4
