// TSA fixture (must FAIL under -Werror=thread-safety): calling an
// S4_EXCLUDES(mu_) entry point while already holding mu_ — the callee would
// self-deadlock acquiring it again.
#include "src/util/sync.h"

namespace {

class Box {
 public:
  void Poke() S4_EXCLUDES(mu_) {
    s4::MutexLock lock(&mu_);
    ++value_;
  }

  void Reenter() S4_EXCLUDES(mu_) {
    s4::MutexLock lock(&mu_);
    Poke();  // Poke excludes mu_, but we hold it
  }

 private:
  s4::Mutex mu_{s4::LockRank::kExecutor, "Box"};
  int value_ S4_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Box b;
  b.Reenter();
  return 0;
}
