// TSA fixture (must FAIL under -Werror=thread-safety): releasing a mutex
// the thread does not hold (the runtime checker would also abort here, but
// only on the executed path; clang rejects every path).
#include "src/util/sync.h"

namespace {

class Box {
 public:
  void Oops() {
    mu_.Unlock();  // never locked
  }

 private:
  s4::Mutex mu_{s4::LockRank::kExecutor, "Box"};
};

}  // namespace

int main() {
  Box b;
  b.Oops();
  return 0;
}
