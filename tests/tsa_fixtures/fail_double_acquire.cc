// TSA fixture (must FAIL under -Werror=thread-safety): acquiring a mutex
// the thread already holds (s4::Mutex is non-recursive; at runtime the rank
// checker would abort, but clang rejects it before it can run).
#include "src/util/sync.h"

namespace {

class Box {
 public:
  void Poke() S4_EXCLUDES(mu_) {
    mu_.Lock();
    mu_.Lock();  // second acquisition of a held lock
    ++value_;
    mu_.Unlock();
    mu_.Unlock();
  }

 private:
  s4::Mutex mu_{s4::LockRank::kExecutor, "Box"};
  int value_ S4_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Box b;
  b.Poke();
  return 0;
}
