// TSA fixture (must FAIL under -Werror=thread-safety): reading a
// GUARDED_BY member without holding its mutex.
#include "src/util/sync.h"

namespace {

class Box {
 public:
  int Peek() const {
    return value_;  // read without mu_
  }

 private:
  mutable s4::Mutex mu_{s4::LockRank::kExecutor, "Box"};
  int value_ S4_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Box b;
  return b.Peek();
}
