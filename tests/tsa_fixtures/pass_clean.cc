// TSA fixture (must COMPILE under -Werror=thread-safety): the sanctioned
// idioms — scoped locks around guarded state, REQUIRES helpers called under
// the lock, EXCLUDES entry points, reader locks for shared reads, and a
// manual Lock/Unlock pair. If this file fails, the harness flags are broken,
// not the negative fixtures.
#include "src/util/sync.h"

namespace {

class Account {
 public:
  void Deposit(long amount) S4_EXCLUDES(mu_) {
    s4::MutexLock lock(&mu_);
    balance_ += amount;
    AuditLocked();
  }

  long balance() const S4_EXCLUDES(mu_) {
    s4::MutexLock lock(&mu_);
    return balance_;
  }

  void ManualBump() S4_EXCLUDES(mu_) {
    mu_.Lock();
    balance_ += 1;
    mu_.Unlock();
  }

 private:
  void AuditLocked() S4_REQUIRES(mu_) { ++audits_; }

  mutable s4::Mutex mu_{s4::LockRank::kExecutor, "Account"};
  long balance_ S4_GUARDED_BY(mu_) = 0;
  long audits_ S4_GUARDED_BY(mu_) = 0;
};

class Table {
 public:
  void Put(int v) S4_EXCLUDES(mu_) {
    s4::WriterLock lock(&mu_);
    value_ = v;
  }

  int Get() const S4_EXCLUDES(mu_) {
    s4::ReaderLock lock(&mu_);
    return value_;
  }

 private:
  mutable s4::SharedMutex mu_{s4::LockRank::kMetrics, "Table"};
  int value_ S4_GUARDED_BY(mu_) = 0;
};

void Use() {
  Account a;
  a.Deposit(5);
  a.ManualBump();
  (void)a.balance();  // fixture exercises the call, not the result
  Table t;
  t.Put(1);
  (void)t.Get();  // fixture exercises the call, not the result
}

}  // namespace

int main() {
  Use();
  return 0;
}
