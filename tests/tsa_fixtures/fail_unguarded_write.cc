// TSA fixture (must FAIL under -Werror=thread-safety): writing a
// GUARDED_BY member without holding its mutex.
#include "src/util/sync.h"

namespace {

class Box {
 public:
  void Poke() {
    value_ = 7;  // write without mu_
  }

 private:
  s4::Mutex mu_{s4::LockRank::kExecutor, "Box"};
  int value_ S4_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Box b;
  b.Poke();
  return 0;
}
