// TSA fixture (must FAIL under -Werror=thread-safety): calling an
// S4_REQUIRES(mu_) helper without holding the lock.
#include "src/util/sync.h"

namespace {

class Box {
 public:
  void Poke() {
    PokeLocked();  // requires mu_, not held
  }

 private:
  void PokeLocked() S4_REQUIRES(mu_) { ++value_; }

  s4::Mutex mu_{s4::LockRank::kExecutor, "Box"};
  int value_ S4_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Box b;
  b.Poke();
  return 0;
}
