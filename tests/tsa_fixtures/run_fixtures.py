#!/usr/bin/env python3
"""Compile-fail harness for the Clang Thread Safety Analysis fixtures.

Every fail_*.cc in this directory demonstrates one distinct misuse of the
annotated sync layer (src/util/sync.h) and must be REJECTED by
`-Werror=thread-safety`; pass_*.cc files show the sanctioned idioms and must
be accepted. To prove a rejection comes from the analysis and not from an
ordinary compile error, each fail fixture must also compile cleanly with the
analysis switched off.

Thread Safety Analysis is clang-only. When the compiler does not understand
`-Werror=thread-safety` (gcc), the harness exits 77 — the ctest skip code —
so the tier-1 suite stays green on gcc-only hosts while the clang CI job
enforces the matrix.

Usage: run_fixtures.py [--cxx COMPILER] [--root REPO_ROOT]
Exit: 0 = all fixtures behaved, 1 = a fixture misbehaved, 77 = no TSA support.
"""

import argparse
import glob
import os
import shutil
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_ROOT = os.path.dirname(os.path.dirname(HERE))

BASE_FLAGS = ["-std=c++20", "-fsyntax-only"]
TSA_FLAGS = ["-Wthread-safety", "-Werror=thread-safety"]


def compile_ok(cxx, root, path, tsa):
    cmd = [cxx] + BASE_FLAGS + ["-I", root] + (TSA_FLAGS if tsa else []) + [path]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                          text=True)
    return proc.returncode == 0, proc.stderr


def pick_compiler(arg):
    candidates = [arg, os.environ.get("CXX"), "clang++", "c++"]
    for c in candidates:
        if c and shutil.which(c):
            return c
    return None


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cxx", default=None, help="compiler to use")
    parser.add_argument("--root", default=DEFAULT_ROOT, help="repo root (-I)")
    args = parser.parse_args(argv)

    cxx = pick_compiler(args.cxx)
    if cxx is None:
        print("tsa_fixtures: no C++ compiler found; skipping")
        return 77

    passes = sorted(glob.glob(os.path.join(HERE, "pass_*.cc")))
    fails = sorted(glob.glob(os.path.join(HERE, "fail_*.cc")))
    if not passes or not fails:
        print("tsa_fixtures: fixture files missing")
        return 1

    # Probe: a compiler with no thread-safety analysis either rejects the
    # flag outright or accepts it as a no-op. Require that it (a) accepts the
    # clean fixture under the flags and (b) rejects at least the unguarded
    # read — otherwise the analysis is not really running and the matrix
    # proves nothing, so skip.
    ok, err = compile_ok(cxx, args.root, passes[0], tsa=True)
    if not ok:
        if "thread-safety" in err or "unrecognized" in err or "unknown" in err:
            print(f"tsa_fixtures: {cxx} does not support -Werror=thread-safety; "
                  "skipping (enforced by the clang CI job)")
            return 77
        print(f"tsa_fixtures: FAIL {os.path.basename(passes[0])} must compile "
              f"under the analysis:\n{err}")
        return 1
    probe_ok, _ = compile_ok(cxx, args.root,
                             os.path.join(HERE, "fail_unguarded_read.cc"),
                             tsa=True)
    if probe_ok:
        print(f"tsa_fixtures: {cxx} silently ignores the thread-safety "
              "analysis; skipping (enforced by the clang CI job)")
        return 77

    failures = 0
    for path in passes:
        name = os.path.basename(path)
        ok, err = compile_ok(cxx, args.root, path, tsa=True)
        if ok:
            print(f"tsa_fixtures: {name}: OK (accepted)")
        else:
            failures += 1
            print(f"tsa_fixtures: FAIL {name} rejected by the analysis:\n{err}")

    for path in fails:
        name = os.path.basename(path)
        ok, err = compile_ok(cxx, args.root, path, tsa=False)
        if not ok:
            failures += 1
            print(f"tsa_fixtures: FAIL {name} must compile without the "
                  f"analysis (plain compile error, not a TSA rejection):\n{err}")
            continue
        ok, err = compile_ok(cxx, args.root, path, tsa=True)
        if ok:
            failures += 1
            print(f"tsa_fixtures: FAIL {name} was NOT rejected by "
                  "-Werror=thread-safety")
        else:
            first = err.strip().splitlines()[0] if err.strip() else ""
            print(f"tsa_fixtures: {name}: OK (rejected: {first})")

    if failures:
        print(f"tsa_fixtures: {failures} fixture(s) misbehaved")
        return 1
    print(f"tsa_fixtures: {len(passes)} pass + {len(fails)} fail fixtures "
          "all behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
