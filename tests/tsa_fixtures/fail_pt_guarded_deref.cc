// TSA fixture (must FAIL under -Werror=thread-safety): dereferencing a
// PT_GUARDED_BY pointer without holding the guarding mutex (mirrors
// BlockDevice::injector_: the pointer itself and its pointee are both
// lock-protected).
#include "src/util/sync.h"

namespace {

class Box {
 public:
  void Poke() {
    s4::MutexLock lock(&mu_);
    target_ = &slot_;
  }

  void Stab() {
    *target_ = 9;  // pointee access without mu_ (and an unguarded read of
                   // the pointer itself)
  }

 private:
  s4::Mutex mu_{s4::LockRank::kExecutor, "Box"};
  int slot_ = 0;
  int* target_ S4_GUARDED_BY(mu_) S4_PT_GUARDED_BY(mu_) = nullptr;
};

}  // namespace

int main() {
  Box b;
  b.Poke();
  b.Stab();
  return 0;
}
