// TSA fixture (must FAIL under -Werror=thread-safety): writing a GUARDED_BY
// member while holding only the shared (reader) side of its SharedMutex —
// concurrent readers would race with the write.
#include "src/util/sync.h"

namespace {

class Table {
 public:
  void Sneak(int v) S4_EXCLUDES(mu_) {
    s4::ReaderLock lock(&mu_);
    value_ = v;  // write under a shared lock
  }

 private:
  mutable s4::SharedMutex mu_{s4::LockRank::kMetrics, "Table"};
  int value_ S4_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Sneak(3);
  return 0;
}
