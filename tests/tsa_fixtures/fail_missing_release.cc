// TSA fixture (must FAIL under -Werror=thread-safety): a path that returns
// with the mutex still held (manual Lock with no matching Unlock).
#include "src/util/sync.h"

namespace {

class Box {
 public:
  void Poke() S4_EXCLUDES(mu_) {
    mu_.Lock();
    ++value_;
    // missing mu_.Unlock(): still held at end of function
  }

 private:
  s4::Mutex mu_{s4::LockRank::kExecutor, "Box"};
  int value_ S4_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Box b;
  b.Poke();
  return 0;
}
