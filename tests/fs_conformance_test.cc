// FileSystemApi conformance suite, parameterised over every server
// implementation: the S4/NFS translator (through the full RPC stack) and
// both personalities of the FFS-like baseline. The benchmarks compare these
// systems, so they must implement identical semantics.
#include <gtest/gtest.h>

#include <memory>

#include "src/baseline/ffs_like.h"
#include "src/fs/s4_fs.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

enum class Backend { kS4, kFfsSync, kFfsAsync };

std::string BackendName(Backend b) {
  switch (b) {
    case Backend::kS4:
      return "S4";
    case Backend::kFfsSync:
      return "FfsSync";
    case Backend::kFfsAsync:
      return "FfsAsync";
  }
  return "?";
}

class FsConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<SimClock>(SimTime{1000000});
    device_ = std::make_unique<BlockDevice>((64ull << 20) / kSectorSize, clock_.get());
    switch (GetParam()) {
      case Backend::kS4: {
        S4DriveOptions opts;
        opts.segment_sectors = 512;
        opts.detection_window = kHour;
        auto drive = S4Drive::Format(device_.get(), clock_.get(), opts);
        ASSERT_TRUE(drive.ok()) << drive.status().ToString();
        drive_ = std::move(*drive);
        server_ = std::make_unique<S4RpcServer>(drive_.get());
        transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
        Credentials user;
        user.user = 100;
        user.client = 1;
        client_ = std::make_unique<S4Client>(transport_.get(), user);
        auto fs = S4FileSystem::Format(client_.get(), "root");
        ASSERT_TRUE(fs.ok()) << fs.status().ToString();
        s4_fs_ = std::move(*fs);
        fs_ = s4_fs_.get();
        break;
      }
      case Backend::kFfsSync:
      case Backend::kFfsAsync: {
        FfsOptions opts;
        opts.sync_metadata = GetParam() == Backend::kFfsSync;
        auto fs = FfsLikeServer::Format(device_.get(), clock_.get(), opts);
        ASSERT_TRUE(fs.ok()) << fs.status().ToString();
        ffs_ = std::move(*fs);
        fs_ = ffs_.get();
        break;
      }
    }
  }

  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<BlockDevice> device_;
  std::unique_ptr<S4Drive> drive_;
  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<S4Client> client_;
  std::unique_ptr<S4FileSystem> s4_fs_;
  std::unique_ptr<FfsLikeServer> ffs_;
  FileSystemApi* fs_ = nullptr;
};

TEST_P(FsConformanceTest, BasicFileLifecycle) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "file", 0640));
  ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("hello")));
  ASSERT_OK_AND_ASSIGN(FileAttr attr, fs_->GetAttr(f));
  EXPECT_EQ(attr.size, 5u);
  EXPECT_EQ(attr.mode, 0640u);
  EXPECT_EQ(attr.type, FileType::kFile);
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(f, 0, 100));
  EXPECT_EQ(StringOf(got), "hello");
  ASSERT_OK(fs_->Remove(root, "file"));
  EXPECT_EQ(fs_->Lookup(root, "file").status().code(), ErrorCode::kNotFound);
}

TEST_P(FsConformanceTest, DuplicateCreateRejected) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK(fs_->CreateFile(root, "x", 0644).status());
  EXPECT_EQ(fs_->CreateFile(root, "x", 0644).status().code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs_->Mkdir(root, "x", 0755).status().code(), ErrorCode::kAlreadyExists);
}

TEST_P(FsConformanceTest, NestedDirectories) {
  ASSERT_OK_AND_ASSIGN(FileHandle leaf, MakeDirs(fs_, "/a/b/c/d"));
  ASSERT_OK(fs_->CreateFile(leaf, "deep", 0644).status());
  ASSERT_OK_AND_ASSIGN(FileHandle found, ResolvePath(fs_, "/a/b/c/d/deep"));
  ASSERT_OK_AND_ASSIGN(FileAttr attr, fs_->GetAttr(found));
  EXPECT_EQ(attr.type, FileType::kFile);
}

TEST_P(FsConformanceTest, OverwriteMiddleOfFile) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "f", 0644));
  Rng rng(9);
  Bytes data = rng.RandomBytes(20000);
  ASSERT_OK(fs_->WriteFile(f, 0, data));
  Bytes patch = rng.RandomBytes(5000);
  ASSERT_OK(fs_->WriteFile(f, 7000, patch));
  std::copy(patch.begin(), patch.end(), data.begin() + 7000);
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(f, 0, data.size()));
  EXPECT_EQ(got, data);
}

TEST_P(FsConformanceTest, TruncateShrinkAndExtend) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "f", 0644));
  Rng rng(10);
  Bytes data = rng.RandomBytes(10000);
  ASSERT_OK(fs_->WriteFile(f, 0, data));
  ASSERT_OK(fs_->SetSize(f, 3000));
  ASSERT_OK_AND_ASSIGN(FileAttr attr, fs_->GetAttr(f));
  EXPECT_EQ(attr.size, 3000u);
  ASSERT_OK(fs_->SetSize(f, 8000));
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(f, 0, 8000));
  ASSERT_EQ(got.size(), 8000u);
  for (size_t i = 0; i < 3000; ++i) {
    ASSERT_EQ(got[i], data[i]) << i;
  }
  for (size_t i = 3000; i < 8000; ++i) {
    ASSERT_EQ(got[i], 0) << i;
  }
}

TEST_P(FsConformanceTest, RenameWithinAndAcross) {
  ASSERT_OK_AND_ASSIGN(FileHandle a, MakeDirs(fs_, "/a"));
  ASSERT_OK_AND_ASSIGN(FileHandle b, MakeDirs(fs_, "/b"));
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(a, "one", 0644));
  ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("payload")));
  ASSERT_OK(fs_->Rename(a, "one", a, "two"));
  ASSERT_OK(fs_->Rename(a, "two", b, "three"));
  ASSERT_OK_AND_ASSIGN(FileHandle moved, ResolvePath(fs_, "/b/three"));
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(moved, 0, 64));
  EXPECT_EQ(StringOf(got), "payload");
  EXPECT_EQ(fs_->Lookup(a, "one").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs_->Lookup(a, "two").status().code(), ErrorCode::kNotFound);
}

TEST_P(FsConformanceTest, SymlinkRoundTrip) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle l, fs_->Symlink(root, "lnk", "/some/where"));
  ASSERT_OK_AND_ASSIGN(std::string target, fs_->ReadLink(l));
  EXPECT_EQ(target, "/some/where");
}

TEST_P(FsConformanceTest, ReadDirListsEverything) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK(fs_->CreateFile(root, "f1", 0644).status());
  ASSERT_OK(fs_->Mkdir(root, "d1", 0755).status());
  ASSERT_OK(fs_->Symlink(root, "l1", "t").status());
  ASSERT_OK_AND_ASSIGN(std::vector<DirEntry> entries, fs_->ReadDir(root));
  EXPECT_EQ(entries.size(), 3u);
}

TEST_P(FsConformanceTest, SparseFileReadsZeros) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "sparse", 0644));
  ASSERT_OK(fs_->WriteFile(f, 1 << 20, BytesOf("end")));
  ASSERT_OK_AND_ASSIGN(Bytes hole, fs_->ReadFile(f, 500000, 64));
  for (uint8_t byte : hole) {
    ASSERT_EQ(byte, 0);
  }
}

TEST_P(FsConformanceTest, LargeFileThroughIndirection) {
  // Exceeds the FFS direct-block reach (48KB) and single-indirect boundary.
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "big", 0644));
  Rng rng(11);
  Bytes data = rng.RandomBytes(3 * 1024 * 1024);
  for (uint64_t off = 0; off < data.size(); off += 64 * 1024) {
    uint64_t n = std::min<uint64_t>(64 * 1024, data.size() - off);
    ASSERT_OK(fs_->WriteFile(f, off, ByteSpan(data).subspan(off, n)));
  }
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(f, 0, data.size()));
  EXPECT_EQ(got, data);
}

TEST_P(FsConformanceTest, ManySmallFilesChurn) {
  Rng rng(12);
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  std::map<std::string, Bytes> oracle;
  for (int step = 0; step < 300; ++step) {
    uint64_t action = rng.Below(10);
    if (action < 5 || oracle.empty()) {
      std::string name = "c" + std::to_string(step);
      Bytes data = rng.RandomBytes(1 + rng.Below(6000), 0.3);
      ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, name, 0644));
      ASSERT_OK(fs_->WriteFile(f, 0, data));
      oracle[name] = std::move(data);
    } else if (action < 8) {
      auto it = oracle.begin();
      std::advance(it, rng.Below(oracle.size()));
      ASSERT_OK_AND_ASSIGN(FileHandle f, ResolvePath(fs_, "/" + it->first));
      ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(f, 0, it->second.size() + 10));
      ASSERT_EQ(got, it->second) << it->first;
    } else {
      auto it = oracle.begin();
      std::advance(it, rng.Below(oracle.size()));
      ASSERT_OK(fs_->Remove(root, it->first));
      oracle.erase(it);
    }
  }
  ASSERT_OK_AND_ASSIGN(std::vector<DirEntry> entries, fs_->ReadDir(root));
  EXPECT_EQ(entries.size(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FsConformanceTest,
                         ::testing::Values(Backend::kS4, Backend::kFfsSync,
                                           Backend::kFfsAsync),
                         [](const ::testing::TestParamInfo<Backend>& param_info) {
                           return BackendName(param_info.param);
                         });

}  // namespace
}  // namespace s4
