// Landmark versioning (section 6): versions promoted to landmarks survive
// past the detection window with full self-securing protection.
#include <gtest/gtest.h>

#include "src/recovery/landmark_archive.h"
#include "src/rpc/transport.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class LandmarkTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    server_ = std::make_unique<S4RpcServer>(drive_.get());
    transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
    client_ = std::make_unique<S4Client>(transport_.get(), User(100));
  }

  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<S4Client> client_;
};

TEST_F(LandmarkTest, PreserveListRetrieve) {
  ASSERT_OK_AND_ASSIGN(ObjectId doc, client_->Create(BytesOf("doc-attrs")));
  ASSERT_OK(client_->Write(doc, 0, BytesOf("thesis draft v1")));
  SimTime v1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(client_->Write(doc, 0, BytesOf("thesis draft v2!")));

  ASSERT_OK_AND_ASSIGN(auto archive, LandmarkArchive::Create(client_.get()));
  ASSERT_OK_AND_ASSIGN(Landmark lm, archive->Preserve(doc, v1, "submitted-version"));
  EXPECT_EQ(lm.source, doc);
  EXPECT_EQ(lm.size, 15u);

  ASSERT_OK_AND_ASSIGN(std::vector<Landmark> all, archive->List());
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].label, "submitted-version");
  ASSERT_OK_AND_ASSIGN(Bytes content, archive->Retrieve(0));
  EXPECT_EQ(StringOf(content), "thesis draft v1");
}

TEST_F(LandmarkTest, LandmarkOutlivesDetectionWindow) {
  ASSERT_OK_AND_ASSIGN(ObjectId doc, client_->Create({}));
  ASSERT_OK(client_->Write(doc, 0, BytesOf("precious milestone")));
  SimTime v1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(client_->Write(doc, 0, BytesOf("later scribbles....")));

  ASSERT_OK_AND_ASSIGN(auto archive, LandmarkArchive::Create(client_.get()));
  ASSERT_OK(archive->Preserve(doc, v1, "milestone").status());

  // Age far past the 1-hour window and clean: the raw version dies...
  clock_->Advance(3 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_FALSE(drive_->Read(Admin(), doc, 0, 64, v1).ok());
  // ...but the landmark survives, and restores.
  ASSERT_OK_AND_ASSIGN(Bytes content, archive->Retrieve(0));
  EXPECT_EQ(StringOf(content), "precious milestone");
  ASSERT_OK(archive->RestoreTo(0, doc));
  ASSERT_OK_AND_ASSIGN(Bytes now, client_->Read(doc, 0, 64));
  EXPECT_EQ(StringOf(now), "precious milestone");
}

TEST_F(LandmarkTest, MultipleLandmarksAcrossObjects) {
  Rng rng(51);
  std::vector<std::pair<ObjectId, Bytes>> versions;
  ASSERT_OK_AND_ASSIGN(auto archive, LandmarkArchive::Create(client_.get()));
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));
    Bytes data = rng.RandomBytes(1 + rng.Below(30000));
    ASSERT_OK(client_->Write(id, 0, data));
    SimTime t = clock_->Now();
    clock_->Advance(kSecond);
    ASSERT_OK(client_->Write(id, 0, rng.RandomBytes(100)));
    ASSERT_OK(archive->Preserve(id, t, "v" + std::to_string(i)).status());
    versions.emplace_back(id, std::move(data));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<Landmark> all, archive->List());
  ASSERT_EQ(all.size(), 5u);
  for (size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(all[i].source, versions[i].first);
    ASSERT_OK_AND_ASSIGN(Bytes content, archive->Retrieve(i));
    EXPECT_EQ(content, versions[i].second);
  }
  EXPECT_EQ(archive->Retrieve(99).status().code(), ErrorCode::kNotFound);
}

TEST_F(LandmarkTest, ArchiveItselfIsSelfSecuring) {
  // Even the archive object is versioned: an intruder truncating it cannot
  // destroy preserved landmarks within the window.
  ASSERT_OK_AND_ASSIGN(ObjectId doc, client_->Create({}));
  ASSERT_OK(client_->Write(doc, 0, BytesOf("evidence")));
  SimTime v1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK_AND_ASSIGN(auto archive, LandmarkArchive::Create(client_.get()));
  ASSERT_OK(archive->Preserve(doc, v1, "evidence").status());
  SimTime before_attack = clock_->Now();
  clock_->Advance(kSecond);
  // Intruder wipes the archive object.
  ASSERT_OK(client_->Truncate(archive->archive_object(), 0));
  // Admin reads the archive as it was and finds the landmark intact.
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs,
                       drive_->GetAttr(Admin(), archive->archive_object(), before_attack));
  EXPECT_GT(attrs.size, 0u);
}

}  // namespace
}  // namespace s4
