// Differencing and compression substrate: exact round trips, effectiveness
// on version-chain-shaped inputs, and robustness against corrupt streams.
#include <gtest/gtest.h>

#include <tuple>

#include "src/delta/delta.h"
#include "src/delta/lz.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

TEST(DeltaTest, EmptyInputs) {
  Bytes delta = ComputeDelta({}, {});
  ASSERT_OK_AND_ASSIGN(Bytes out, ApplyDelta({}, delta));
  EXPECT_TRUE(out.empty());
}

TEST(DeltaTest, IdenticalInputsCollapse) {
  Rng rng(1);
  Bytes data = rng.RandomBytes(100000);
  Bytes delta = ComputeDelta(data, data);
  EXPECT_LT(delta.size(), 64u);  // one COPY instruction
  ASSERT_OK_AND_ASSIGN(Bytes out, ApplyDelta(data, delta));
  EXPECT_EQ(out, data);
  ASSERT_OK_AND_ASSIGN(double frac, DeltaCopyFraction(delta));
  EXPECT_DOUBLE_EQ(frac, 1.0);
}

TEST(DeltaTest, UnrelatedInputsDegradeGracefully) {
  Rng rng(2);
  Bytes source = rng.RandomBytes(50000);
  Bytes target = rng.RandomBytes(50000);
  Bytes delta = ComputeDelta(source, target);
  EXPECT_LT(delta.size(), target.size() + 1024);
  ASSERT_OK_AND_ASSIGN(Bytes out, ApplyDelta(source, delta));
  EXPECT_EQ(out, target);
}

TEST(DeltaTest, SmallEditProducesSmallDelta) {
  Rng rng(3);
  Bytes source = rng.RandomBytes(200000, 0.5);
  Bytes target = source;
  // Edit 1% in the middle.
  Bytes patch = rng.RandomBytes(2000);
  std::copy(patch.begin(), patch.end(), target.begin() + 100000);
  Bytes delta = ComputeDelta(source, target);
  EXPECT_LT(delta.size(), 8000u);  // ~1% of data plus framing
  ASSERT_OK_AND_ASSIGN(Bytes out, ApplyDelta(source, delta));
  EXPECT_EQ(out, target);
}

TEST(DeltaTest, InsertionShiftsHandled) {
  Rng rng(4);
  Bytes source = rng.RandomBytes(60000, 0.4);
  Bytes target = source;
  Bytes inserted = rng.RandomBytes(500);
  target.insert(target.begin() + 30000, inserted.begin(), inserted.end());
  Bytes delta = ComputeDelta(source, target);
  EXPECT_LT(delta.size(), 4000u);
  ASSERT_OK_AND_ASSIGN(Bytes out, ApplyDelta(source, delta));
  EXPECT_EQ(out, target);
}

TEST(DeltaTest, CorruptDeltaRejected) {
  Rng rng(5);
  Bytes source = rng.RandomBytes(1000);
  Bytes delta = ComputeDelta(source, source);
  delta[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(ApplyDelta(source, delta).ok());
}

TEST(DeltaTest, TruncatedDeltaRejected) {
  Rng rng(6);
  Bytes source = rng.RandomBytes(10000);
  Bytes target = rng.RandomBytes(10000);
  Bytes delta = ComputeDelta(source, target);
  delta.resize(delta.size() / 2);
  EXPECT_FALSE(ApplyDelta(source, delta).ok());
}

class DeltaPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double, uint64_t>> {};

TEST_P(DeltaPropertyTest, RoundTripExact) {
  auto [size, compressibility, seed] = GetParam();
  Rng rng(seed);
  Bytes source = rng.RandomBytes(size, compressibility);
  // Target = source with random edits of random sizes.
  Bytes target = source;
  uint64_t edits = rng.Below(8);
  for (uint64_t e = 0; e < edits && !target.empty(); ++e) {
    size_t at = rng.Below(target.size());
    size_t span = std::min<size_t>(1 + rng.Below(2000), target.size() - at);
    Bytes patch = rng.RandomBytes(span, compressibility);
    std::copy(patch.begin(), patch.end(), target.begin() + at);
  }
  Bytes delta = ComputeDelta(source, target);
  ASSERT_OK_AND_ASSIGN(Bytes out, ApplyDelta(source, delta));
  EXPECT_EQ(out, target);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaPropertyTest,
    ::testing::Combine(::testing::Values(0u, 1u, 15u, 4096u, 65537u, 300000u),
                       ::testing::Values(0.0, 0.5, 0.9),
                       ::testing::Values(1u, 99u)));

TEST(LzTest, EmptyInput) {
  Bytes packed = LzCompress({});
  ASSERT_OK_AND_ASSIGN(Bytes out, LzDecompress(packed));
  EXPECT_TRUE(out.empty());
}

TEST(LzTest, RepetitiveDataCompressesWell) {
  Rng rng(7);
  Bytes data = rng.RandomBytes(100000, 0.95);
  Bytes packed = LzCompress(data);
  EXPECT_LT(packed.size(), data.size() / 3);
  ASSERT_OK_AND_ASSIGN(Bytes out, LzDecompress(packed));
  EXPECT_EQ(out, data);
}

TEST(LzTest, RandomDataBarelyGrows) {
  Rng rng(8);
  Bytes data = rng.RandomBytes(100000, 0.0);
  Bytes packed = LzCompress(data);
  EXPECT_LT(packed.size(), data.size() + data.size() / 64 + 64);
  ASSERT_OK_AND_ASSIGN(Bytes out, LzDecompress(packed));
  EXPECT_EQ(out, data);
}

TEST(LzTest, OverlappingMatchRuns) {
  // Run-length-style input exercises the overlapping-copy decode path.
  Bytes data(50000, 'A');
  Bytes packed = LzCompress(data);
  EXPECT_LT(packed.size(), 2048u);
  ASSERT_OK_AND_ASSIGN(Bytes out, LzDecompress(packed));
  EXPECT_EQ(out, data);
}

TEST(LzTest, CorruptStreamRejected) {
  Rng rng(9);
  Bytes data = rng.RandomBytes(10000, 0.8);
  Bytes packed = LzCompress(data);
  packed[4] ^= 0x80;  // corrupt the size varint region
  auto result = LzDecompress(packed);
  if (result.ok()) {
    EXPECT_NE(*result, data);  // at minimum it must not silently "succeed"
  }
}

class LzPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double, uint64_t>> {};

TEST_P(LzPropertyTest, RoundTripExact) {
  auto [size, compressibility, seed] = GetParam();
  Rng rng(seed);
  Bytes data = rng.RandomBytes(size, compressibility);
  Bytes packed = LzCompress(data);
  ASSERT_OK_AND_ASSIGN(Bytes out, LzDecompress(packed));
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LzPropertyTest,
    ::testing::Combine(::testing::Values(0u, 1u, 3u, 4u, 255u, 70000u, 250000u),
                       ::testing::Values(0.0, 0.3, 0.7, 0.95),
                       ::testing::Values(2u, 77u)));

TEST(DeltaLzTest, ChainedCompactionRoundTrip) {
  // The cleaner's intended pipeline: store an old version as
  // LzCompress(ComputeDelta(new, old)) and get it back exactly.
  Rng rng(10);
  Bytes newer = rng.RandomBytes(150000, 0.7);
  Bytes older = newer;
  Bytes patch = rng.RandomBytes(3000, 0.7);
  std::copy(patch.begin(), patch.end(), older.begin() + 50000);

  Bytes delta = ComputeDelta(newer, older);
  Bytes packed = LzCompress(delta);
  EXPECT_LT(packed.size(), older.size() / 10);

  ASSERT_OK_AND_ASSIGN(Bytes delta_back, LzDecompress(packed));
  ASSERT_OK_AND_ASSIGN(Bytes older_back, ApplyDelta(newer, delta_back));
  EXPECT_EQ(older_back, older);
}

}  // namespace
}  // namespace s4
