// Fault-injection tests: FaultInjector unit behavior, CRC-checked degradation
// of the drive read path under media faults, and the systematic
// crash-consistency sweep (power cut at every disk-write boundary of a
// scripted workload, clean and torn variants).
#include <gtest/gtest.h>

#include <iostream>

#include "src/drive/s4_drive.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "tests/crash_harness.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector unit tests (device level)
// ---------------------------------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : clock_(0), device_(1024, &clock_) {
    device_.set_fault_injector(&injector_);
  }

  Bytes Pattern(uint64_t sectors, uint8_t fill) { return Bytes(sectors * kSectorSize, fill); }

  SimClock clock_;
  BlockDevice device_;
  FaultInjector injector_;
};

TEST_F(FaultInjectorTest, PowerCutAfterNthWrite) {
  injector_.SchedulePowerCut(/*nth_write=*/3);
  EXPECT_OK(device_.Write(0, Pattern(1, 0xAA)));
  EXPECT_OK(device_.Write(8, Pattern(1, 0xBB)));
  EXPECT_EQ(injector_.writes_until_cut(), 1u);

  // The third write is the one that loses power: nothing of it persists.
  Status s = device_.Write(16, Pattern(1, 0xCC));
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(injector_.power_cut_fired());
  EXPECT_TRUE(injector_.powered_off());

  // All commands fail until power returns.
  Bytes out;
  EXPECT_EQ(device_.Read(0, 1, &out).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(device_.Write(24, Pattern(1, 0xDD)).code(), ErrorCode::kUnavailable);

  injector_.PowerOn();
  ASSERT_OK(device_.Read(0, 1, &out));
  EXPECT_EQ(out, Pattern(1, 0xAA));  // pre-cut write survived
  ASSERT_OK(device_.Read(16, 1, &out));
  EXPECT_EQ(out, Pattern(1, 0x00));  // cut write never reached the media
}

TEST_F(FaultInjectorTest, TornWritePersistsPrefixAndCorruptsRun) {
  injector_.SchedulePowerCut(/*nth_write=*/1, /*persist_sectors=*/2, /*corrupt_sectors=*/1);
  EXPECT_EQ(device_.Write(0, Pattern(8, 0x55)).code(), ErrorCode::kUnavailable);
  injector_.PowerOn();

  Bytes out;
  ASSERT_OK(device_.Read(0, 2, &out));
  EXPECT_EQ(out, Pattern(2, 0x55));  // prefix intact
  ASSERT_OK(device_.Read(2, 1, &out));
  EXPECT_EQ(out, Pattern(1, 0xDE));  // torn sector is garbage
  ASSERT_OK(device_.Read(3, 5, &out));
  EXPECT_EQ(out, Pattern(5, 0x00));  // tail never written
}

TEST_F(FaultInjectorTest, BitRotFlipsOneBitPersistently) {
  ASSERT_OK(device_.Write(5, Pattern(1, 0xFF)));
  injector_.ScheduleBitRot(/*lba=*/5, /*byte_offset=*/7, /*mask=*/0x10);

  Bytes out;
  ASSERT_OK(device_.Read(5, 1, &out));
  EXPECT_EQ(out[7], 0xEF);  // bit flipped
  EXPECT_EQ(out[6], 0xFF);

  // The damage is on the media: a second read sees the same corruption.
  ASSERT_OK(device_.Read(5, 1, &out));
  EXPECT_EQ(out[7], 0xEF);
}

TEST_F(FaultInjectorTest, TransientReadErrorRecoversOnRetry) {
  ASSERT_OK(device_.Write(9, Pattern(1, 0x42)));
  injector_.ScheduleReadError(/*lba=*/9, /*count=*/2);

  Bytes out;
  EXPECT_EQ(device_.Read(9, 1, &out).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(device_.Read(9, 1, &out).code(), ErrorCode::kUnavailable);
  ASSERT_OK(device_.Read(9, 1, &out));
  EXPECT_EQ(out, Pattern(1, 0x42));
}

TEST_F(FaultInjectorTest, LegacyTornSectorWrapperStillCorrupts) {
  ASSERT_OK(device_.Write(3, Pattern(1, 0x77)));
  device_.SimulateCrashTornSector(3);
  Bytes out;
  ASSERT_OK(device_.Read(3, 1, &out));
  EXPECT_EQ(out, Pattern(1, 0xDE));
}

// ---------------------------------------------------------------------------
// Drive-level degradation under media faults
// ---------------------------------------------------------------------------

class DriveFaultTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    device_->set_fault_injector(&injector_);
  }
  FaultInjector injector_;
};

TEST_F(DriveFaultTest, BitRotOnJournalIsDetectedNotFatal) {
  auto u = User(1);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(u, {}));
  Bytes data(kBlockSize, 0xAB);
  ASSERT_OK(drive_->Write(u, id, 0, data));
  ASSERT_OK(drive_->Sync(u));

  // Rot every sector the workload wrote. CRCs must catch whatever a
  // subsequent read touches; no read may crash the drive.
  for (uint64_t lba = 0; lba < device_->sector_count(); ++lba) {
    injector_.ScheduleBitRot(lba, /*byte_offset=*/100, /*mask=*/0x08);
  }
  // Drop caches so reads go to the (rotted) media.
  drive_.reset();
  auto remount = S4Drive::Mount(device_.get(), clock_.get(), opts_);
  // Mount either fails cleanly (corruption detected in metadata) or
  // succeeds; both are acceptable — what is not acceptable is a crash.
  if (remount.ok()) {
    drive_ = std::move(*remount);
    auto r = drive_->Read(Admin(), id, 0, kBlockSize);
    // Data blocks carry no per-block CRC; metadata does. Either way the
    // call must return, OK or not.
    (void)r;
  }
}

TEST_F(DriveFaultTest, TransientReadErrorSurfacesAsUnavailable) {
  auto u = User(1);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(u, {}));
  Bytes data(kBlockSize, 0xCD);
  ASSERT_OK(drive_->Write(u, id, 0, data));
  ASSERT_OK(drive_->Sync(u));
  CrashAndRemount();  // empty the block cache so the read hits the device
  device_->set_fault_injector(&injector_);

  for (uint64_t lba = 0; lba < device_->sector_count(); ++lba) {
    injector_.ScheduleReadError(lba, 1);
  }
  auto r = drive_->Read(User(1), id, 0, kBlockSize);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);

  // The faults are transient, but one drive-level read touches several LBAs
  // (inode, journal, data — and with chained audit enabled, audit blocks
  // interleave and shift the layout), each armed with its own single-shot
  // error — retry until the schedule drains.
  Bytes again;
  for (int attempt = 0; attempt < 30; ++attempt) {
    auto retry = drive_->Read(User(1), id, 0, kBlockSize);
    if (retry.ok()) {
      again = std::move(*retry);
      break;
    }
    EXPECT_EQ(retry.status().code(), ErrorCode::kUnavailable);
  }
  EXPECT_EQ(again, data);
}

// ---------------------------------------------------------------------------
// Payload CRC: a chunk whose payload is damaged is treated as torn by scan
// ---------------------------------------------------------------------------

TEST(ChunkPayloadCrcTest, TornPayloadStopsScanAtPriorChunk) {
  SimClock clock(0);
  BlockDevice device(4096, &clock);
  Superblock sb;
  sb.total_sectors = 4096;
  sb.segment_sectors = 128;
  sb.segment_count = 4;
  sb.first_segment = 16;
  SegmentUsageTable sut(sb.segment_count, sb.segment_sectors);
  SegmentWriter writer(&device, &sb, &sut, &clock, /*next_seq=*/1);

  // Chunk 1: one data block. Chunk 2: another.
  Bytes block_a(kBlockSize, 0x11);
  Bytes block_b(kBlockSize, 0x22);
  ASSERT_OK_AND_ASSIGN(DiskAddr addr_a, writer.Append(RecordKind::kData, 7, 0, block_a));
  ASSERT_OK(writer.Flush());
  ASSERT_OK_AND_ASSIGN(DiskAddr addr_b, writer.Append(RecordKind::kData, 7, 1, block_b));
  ASSERT_OK(writer.Flush());

  // Both chunks scan back intact.
  ASSERT_OK_AND_ASSIGN(std::vector<ScannedChunk> chunks,
                       ScanSegment(&device, sb, writer.active_segment()));
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].records[0].addr, addr_a);
  EXPECT_EQ(chunks[1].records[0].addr, addr_b);

  // Tear one payload sector of the SECOND chunk. Its summary is still valid,
  // but the payload CRC no longer matches: scan must stop after chunk 1
  // instead of yielding a chunk whose data is garbage.
  device.CorruptSectors(addr_b + 2, 1);
  ASSERT_OK_AND_ASSIGN(chunks, ScanSegment(&device, sb, writer.active_segment()));
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].seq, 1u);

  // Damage to the FIRST chunk's payload drops everything from that point on.
  device.CorruptSectors(addr_a, 1);
  ASSERT_OK_AND_ASSIGN(chunks, ScanSegment(&device, sb, writer.active_segment()));
  EXPECT_TRUE(chunks.empty());
}

// ---------------------------------------------------------------------------
// Systematic crash sweep: cut power at EVERY write boundary
// ---------------------------------------------------------------------------

ScriptOp Op(ScriptOp::Kind kind, size_t slot, uint64_t offset = 0, uint64_t length = 0,
            uint8_t fill = 0) {
  ScriptOp op;
  op.kind = kind;
  op.slot = slot;
  op.offset = offset;
  op.length = length;
  op.fill = fill;
  return op;
}

// A workload exercising every mutating RPC, with Syncs between phases so the
// sweep crosses data-chunk, journal, audit, and checkpoint write boundaries.
std::vector<ScriptOp> StandardScript() {
  std::vector<ScriptOp> script;
  script.push_back(Op(ScriptOp::kCreate, 0));
  script.push_back(Op(ScriptOp::kWrite, 0, 0, 2 * kBlockSize, 0xA1));
  script.push_back(Op(ScriptOp::kSync, 0));
  script.push_back(Op(ScriptOp::kCreate, 1));
  script.push_back(Op(ScriptOp::kAppend, 1, 0, kBlockSize + 100, 0xB2));
  script.push_back(Op(ScriptOp::kWrite, 0, kBlockSize, kBlockSize, 0xC3));
  script.push_back(Op(ScriptOp::kSync, 0));
  ScriptOp acl = Op(ScriptOp::kSetAcl, 1);
  acl.acl = AclEntry{2, kPermRead};
  script.push_back(acl);
  script.push_back(Op(ScriptOp::kTruncate, 0, 0, kBlockSize / 2));
  script.push_back(Op(ScriptOp::kSync, 0));
  script.push_back(Op(ScriptOp::kDelete, 1));
  script.push_back(Op(ScriptOp::kAppend, 0, 0, 3 * kBlockSize, 0xD4));
  script.push_back(Op(ScriptOp::kSync, 0));
  // Large phase: spills over a 256KB segment boundary so the sweep crosses
  // chunk-rollover and (with a small checkpoint interval) checkpoint writes.
  script.push_back(Op(ScriptOp::kCreate, 2));
  script.push_back(Op(ScriptOp::kAppend, 2, 0, 70 * kBlockSize, 0xE5));
  script.push_back(Op(ScriptOp::kSync, 2));
  script.push_back(Op(ScriptOp::kWrite, 2, 10 * kBlockSize, kBlockSize, 0xF6));
  script.push_back(Op(ScriptOp::kSync, 2));
  return script;
}

S4DriveOptions SweepOptions() {
  S4DriveOptions opts = DriveTest::SmallOptions();
  // Force auto-checkpoints during the workload so the sweep also cuts power
  // inside checkpoint-region writes.
  opts.checkpoint_interval_bytes = 128 << 10;
  return opts;
}

TEST(CrashSweepTest, CleanPowerCutAtEveryWriteBoundary) {
  CrashHarness harness(StandardScript(), SweepOptions());
  uint64_t n = harness.CountWritePoints();
  ASSERT_GE(n, 8u) << "workload too small to exercise multiple boundaries";
  std::cerr << "[ sweep    ] " << n << " write boundaries\n";
  for (uint64_t k = 1; k <= n; ++k) {
    harness.RunCrashPoint(k, /*torn_tail=*/false);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(CrashSweepTest, TornTailPowerCutAtEveryWriteBoundary) {
  CrashHarness harness(StandardScript(), SweepOptions());
  uint64_t n = harness.CountWritePoints();
  ASSERT_GE(n, 8u) << "workload too small to exercise multiple boundaries";
  for (uint64_t k = 1; k <= n; ++k) {
    harness.RunCrashPoint(k, /*torn_tail=*/true);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched (group-commit) variant: same script, mutations ride kBatch frames
// whose final sub-op is the Sync. Every write boundary is swept; snapshots
// exist only for acknowledged Syncs, so the check is the group-commit
// invariant — a sync point is durable as a whole, or the journal ends at the
// previous intact chunk.
// ---------------------------------------------------------------------------

TEST(CrashSweepTest, BatchedGroupCommitCleanCutAtEveryWriteBoundary) {
  CrashHarness harness(StandardScript(), SweepOptions(), 64ull << 20, /*batched=*/true);
  uint64_t n = harness.CountWritePoints();
  ASSERT_GE(n, 4u) << "batched workload produced too few write boundaries";
  std::cerr << "[ sweep    ] " << n << " write boundaries (batched)\n";

  // The script has the same sync points either way, so the batched replay
  // must not ADD disk-write boundaries: all sub-ops of a batch group-commit
  // into the chunks one synced replay would produce. (The disk-write
  // reduction comes from issuing fewer syncs, which bench_batch measures.)
  CrashHarness unbatched(StandardScript(), SweepOptions());
  EXPECT_LE(n, unbatched.CountWritePoints());

  for (uint64_t k = 1; k <= n; ++k) {
    harness.RunCrashPoint(k, /*torn_tail=*/false);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Audit-chain sweep: many tiny metadata ops with frequent Syncs, so most
// write boundaries are audit-block flushes (the commit marker itself only
// advances at checkpoints/unmount and so lags every cut point here). Every
// cut — clean or torn — must recover as a clean tail (never a chain break),
// idempotently, losing at most the post-last-sync records. The harness
// checks all of that in VerifyAuditLog/VerifyRecoveryIdempotent.
// ---------------------------------------------------------------------------

std::vector<ScriptOp> AuditHeavyScript() {
  std::vector<ScriptOp> script;
  script.push_back(Op(ScriptOp::kCreate, 0));
  for (int round = 0; round < 10; ++round) {
    script.push_back(Op(ScriptOp::kWrite, 0, 0, 64, static_cast<uint8_t>(0x10 + round)));
    ScriptOp acl = Op(ScriptOp::kSetAcl, 0);
    acl.acl = AclEntry{2, kPermRead};
    script.push_back(acl);
    script.push_back(Op(ScriptOp::kTruncate, 0, 0, 32));
    script.push_back(Op(ScriptOp::kSync, 0));
  }
  return script;
}

TEST(CrashSweepTest, AuditChainCleanCutAtEveryFlushBoundary) {
  CrashHarness harness(AuditHeavyScript(), SweepOptions());
  uint64_t n = harness.CountWritePoints();
  ASSERT_GE(n, 8u) << "audit workload produced too few write boundaries";
  std::cerr << "[ sweep    ] " << n << " write boundaries (audit-heavy)\n";
  for (uint64_t k = 1; k <= n; ++k) {
    harness.RunCrashPoint(k, /*torn_tail=*/false);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(CrashSweepTest, AuditChainTornTailAtEveryFlushBoundary) {
  CrashHarness harness(AuditHeavyScript(), SweepOptions());
  uint64_t n = harness.CountWritePoints();
  ASSERT_GE(n, 8u) << "audit workload produced too few write boundaries";
  for (uint64_t k = 1; k <= n; ++k) {
    harness.RunCrashPoint(k, /*torn_tail=*/true);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(CrashSweepTest, BatchedGroupCommitTornTailAtEveryWriteBoundary) {
  CrashHarness harness(StandardScript(), SweepOptions(), 64ull << 20, /*batched=*/true);
  uint64_t n = harness.CountWritePoints();
  ASSERT_GE(n, 4u) << "batched workload produced too few write boundaries";
  for (uint64_t k = 1; k <= n; ++k) {
    harness.RunCrashPoint(k, /*torn_tail=*/true);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Unmount sweep: cut power at every write of the clean-unmount sequence —
// the final checkpoint and each of the three superblock replica rewrites.
// Any prefix of the clean mark (including a torn replica sector) must leave
// a volume that mounts and preserves every synced state.
// ---------------------------------------------------------------------------

TEST(CrashSweepTest, UnmountCleanCutAtEveryWriteBoundary) {
  CrashHarness harness(StandardScript(), SweepOptions());
  uint64_t n = harness.CountUnmountWrites();
  ASSERT_GE(n, 4u) << "unmount issued too few writes to tear the clean mark";
  std::cerr << "[ sweep    ] " << n << " unmount write boundaries\n";
  for (uint64_t k = 1; k <= n; ++k) {
    harness.RunUnmountCrashPoint(k, /*torn_tail=*/false);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(CrashSweepTest, UnmountTornTailAtEveryWriteBoundary) {
  CrashHarness harness(StandardScript(), SweepOptions());
  uint64_t n = harness.CountUnmountWrites();
  ASSERT_GE(n, 4u) << "unmount issued too few writes to tear the clean mark";
  for (uint64_t k = 1; k <= n; ++k) {
    harness.RunUnmountCrashPoint(k, /*torn_tail=*/true);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Power cut during recovery itself: the first crash interrupts the workload
// (or the clean unmount), the second interrupts the recovering mount's own
// writes — superblock healing, the dirty re-mark, a torn-audit-tail trim.
// Recovery must be restartable from any prefix of its write sequence.
// ---------------------------------------------------------------------------

TEST(CrashSweepTest, PowerCutDuringRecoveryAfterWorkloadCrash) {
  CrashHarness harness(StandardScript(), SweepOptions());
  uint64_t n = harness.CountWritePoints();
  ASSERT_GE(n, 8u) << "workload too small to exercise multiple boundaries";
  // A full cross product squares the sweep; sample workload crash points
  // across the run. Torn tails maximise recovery's own writes (audit trim).
  for (uint64_t kw : {n / 4, n / 2, n - 1}) {
    if (kw == 0) {
      continue;
    }
    for (bool torn : {false, true}) {
      uint64_t r = harness.CountRecoveryWrites(kw, torn);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
      for (uint64_t kr = 1; kr <= r; ++kr) {
        harness.RunRecoveryCrashPoint(kw, kr, torn);
        if (::testing::Test::HasFatalFailure()) {
          return;
        }
      }
    }
  }
}

TEST(CrashSweepTest, PowerCutDuringRecoveryAfterUnmountCrash) {
  CrashHarness harness(StandardScript(), SweepOptions());
  uint64_t n = harness.CountUnmountWrites();
  ASSERT_GE(n, 4u) << "unmount issued too few writes to tear the clean mark";
  // Every unmount crash point, crossed with every write the recovering
  // mount then issues (this is where a clean-won vote is re-marked dirty
  // across all three replicas — each of those writes gets torn too).
  for (uint64_t ku = 1; ku <= n; ++ku) {
    for (bool torn : {false, true}) {
      uint64_t r = harness.CountRecoveryWrites(ku, torn, /*during_unmount=*/true);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
      for (uint64_t kr = 1; kr <= r; ++kr) {
        harness.RunRecoveryCrashPoint(ku, kr, torn, /*during_unmount=*/true);
        if (::testing::Test::HasFatalFailure()) {
          return;
        }
      }
    }
  }
}

}  // namespace
}  // namespace s4
