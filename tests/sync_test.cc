// Tests for the annotated sync layer (src/util/sync.h): the runtime
// lock-rank checker (death tests), CondVar's release/reacquire bookkeeping
// across Wait, and a TSan-visible stress pass over the sanctioned lock-free
// fast paths (SimClock lanes, AtomicNetStats, metric instruments,
// BlockDevice::busy_until) — the regression net for the lock-discipline
// audit of the concurrency substrate.
#include "src/util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/block_device.h"
#include "src/sim/net_model.h"
#include "src/sim/sim_clock.h"

namespace s4 {
namespace {

TEST(SyncTest, LockUnlockRoundTrip) {
  Mutex mu(LockRank::kExecutor, "test");
  mu.Lock();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
  EXPECT_EQ(mu.rank(), 10);
  EXPECT_STREQ(mu.name(), "test");
}

TEST(SyncTest, InOrderNestingIsAllowed) {
  Mutex low(LockRank::kExecutor, "low");
  Mutex mid(LockRank::kDevice, "mid");
  Mutex high(LockRank::kTracer, "high");
  MutexLock a(&low);
  MutexLock b(&mid);
  MutexLock c(&high);
}

TEST(SyncTest, SharedMutexReadersOverlap) {
  SharedMutex mu(LockRank::kMetrics, "shared");
  mu.LockShared();
  std::thread other([&mu] {
    mu.LockShared();
    mu.UnlockShared();
  });
  other.join();
  mu.UnlockShared();
  WriterLock w(&mu);
}

// The rank checker is compiled out of optimised release builds; every
// death test below only makes sense when it is active.
#if S4_LOCK_RANK_CHECKS

TEST(SyncDeathTest, OutOfOrderAcquisitionAborts) {
  Mutex device(LockRank::kDevice, "device");
  Mutex executor(LockRank::kExecutor, "executor");
  MutexLock hold(&device);
  // kExecutor (10) under kDevice (20) inverts the hierarchy. The report
  // must name both locks and both ranks.
  EXPECT_DEATH(
      { MutexLock bad(&executor); },
      "lock-rank violation.*\"executor\" \\(rank 10\\) while holding "
      "\"device\" \\(rank 20\\)");
}

TEST(SyncDeathTest, EqualRankAcquisitionAborts) {
  Mutex a(LockRank::kDevice, "device-a");
  Mutex b(LockRank::kDevice, "device-b");
  MutexLock hold(&a);
  // Equal ranks are also an ordering hazard: two threads taking (a, b) and
  // (b, a) would deadlock, so the hierarchy demands strictly increasing.
  EXPECT_DEATH({ MutexLock bad(&b); }, "lock-rank violation");
}

TEST(SyncDeathTest, RecursiveAcquisitionAborts) {
  Mutex mu(LockRank::kExecutor, "recursive");
  MutexLock hold(&mu);
  EXPECT_DEATH({ mu.Lock(); }, "recursive acquisition");
}

TEST(SyncDeathTest, ReleasingUnheldLockAborts) {
  Mutex held(LockRank::kExecutor, "held");
  Mutex other(LockRank::kDevice, "other");
  MutexLock hold(&held);
  EXPECT_DEATH({ other.Unlock(); },
               "releasing a lock this thread does not hold");
}

TEST(SyncDeathTest, SharedAcquisitionChecksRankToo) {
  SharedMutex metrics(LockRank::kMetrics, "metrics");
  Mutex executor(LockRank::kExecutor, "executor");
  ReaderLock hold(&metrics);
  EXPECT_DEATH({ MutexLock bad(&executor); }, "lock-rank violation");
}

TEST(SyncDeathTest, CondVarWaitReacquireRechecksRank) {
  // Wait() releases the mutex in the checker, so a notifier thread can take
  // it; after wake the reacquire is re-pushed, so a *later* out-of-order
  // acquisition still aborts. This exercises the pop/push pair around wait.
  Mutex mu(LockRank::kDevice, "waiter");
  CondVar cv;
  bool ready = false;  // guarded by mu (plain bool: test-local)

  mu.Lock();
  std::thread notifier([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  while (!ready) {
    cv.Wait(&mu);
  }
  notifier.join();
  // Still holding mu after the wait: the checker must agree.
  Mutex executor(LockRank::kExecutor, "executor");
  EXPECT_DEATH({ MutexLock bad(&executor); }, "lock-rank violation");
  mu.Unlock();
}

#endif  // S4_LOCK_RANK_CHECKS

TEST(SyncTest, CondVarWaitReturnsHoldingTheLock) {
  Mutex mu(LockRank::kExecutor, "cv");
  CondVar cv;
  int stage = 0;  // guarded by mu (plain int: test-local)

  std::thread worker([&] {
    mu.Lock();
    while (stage < 1) {
      cv.Wait(&mu);
    }
    // Wait returned => we hold mu: mutate under it and hand back.
    stage = 2;
    mu.Unlock();
    cv.NotifyAll();
  });

  {
    mu.Lock();
    stage = 1;
    mu.Unlock();
    cv.NotifyAll();
  }
  mu.Lock();
  while (stage < 2) {
    cv.Wait(&mu);
  }
  EXPECT_EQ(stage, 2);
  mu.Unlock();
  worker.join();
}

// --- Lock-free fast-path audit regressions --------------------------------
// Each sanctioned lock-free path from the concurrency substrate gets hit
// from several threads at once. Run under TSan (the `tsan` CI job builds
// this test with -fsanitize=thread) any unsynchronised access here is a
// hard failure; on plain builds the final counts still verify atomicity.

TEST(LockFreeAuditTest, NetStatsConcurrentAccumulate) {
  AtomicNetStats stats;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kIters; ++i) {
        stats.messages_sent.fetch_add(1, std::memory_order_relaxed);
        stats.bytes_sent.fetch_add(64, std::memory_order_relaxed);
        // Concurrent snapshots must be tear-free per field.
        NetStats snap = stats.Snapshot();
        ASSERT_LE(snap.messages_sent,
                  static_cast<uint64_t>(kThreads) * kIters);
      }
    });
  }
  for (auto& th : threads) th.join();
  NetStats snap = stats.Snapshot();
  EXPECT_EQ(snap.messages_sent, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.bytes_sent, static_cast<uint64_t>(kThreads) * kIters * 64);
}

TEST(LockFreeAuditTest, MetricInstrumentsConcurrentPublish) {
  MetricRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // First-use creation races on the registry lock; increments race on
      // the relaxed atomics. Both must be clean under TSan.
      Counter* c = registry.GetCounter("audit.shared_counter");
      Histogram* h = registry.GetHistogram("audit.shared_histo");
      Gauge* g = registry.GetGauge("audit.gauge_" + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        c->Inc();
        h->Record(static_cast<uint64_t>(i));
        g->Set(i);
        if (i % 256 == 0) {
          (void)registry.CounterValue("audit.shared_counter");  // hot read
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.CounterValue("audit.shared_counter"),
            static_cast<uint64_t>(kThreads) * kIters);
  const Histogram* h = registry.FindHistogram("audit.shared_histo");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(LockFreeAuditTest, SimClockLanesAndAbsorb) {
  SimClock clock;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock, t] {
      for (int i = 0; i < 2000; ++i) {
        SimClock::Lane lane(&clock, /*id=*/t + 1,
                            /*start=*/static_cast<SimTime>(i),
                            /*shared=*/true);
        clock.Advance(5);
        clock.AbsorbLane(lane.now());
      }
    });
  }
  for (auto& th : threads) th.join();
  // The global clock converged to the max lane end ever absorbed.
  EXPECT_GE(clock.Now(), static_cast<SimTime>(1999 + 5));
}

TEST(LockFreeAuditTest, DeviceBusyUntilUnderConcurrentIo) {
  // busy_until() deliberately takes the device lock (rank kDevice) rather
  // than reading a racy word; this pins the behaviour: concurrent writers
  // and busy_until() pollers must produce a consistent, TSan-clean result.
  SimClock clock;
  BlockDevice dev(/*sector_count=*/1 << 16, &clock);
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    SimTime last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      SimTime now = dev.busy_until();
      EXPECT_GE(now, last);  // the busy frontier never moves backwards
      last = now;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&dev, t] {
      Bytes buf(8 * kSectorSize, static_cast<uint8_t>(t));
      for (int i = 0; i < 500; ++i) {
        uint64_t lba = static_cast<uint64_t>(t) * 8192 +
                       static_cast<uint64_t>(i) * 8;
        EXPECT_TRUE(dev.Write(lba, ByteSpan(buf)).ok());
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_GT(dev.busy_until(), 0u);
  EXPECT_EQ(dev.stats().writes, static_cast<uint64_t>(kThreads) * 500);
}

}  // namespace
}  // namespace s4
