// Property tests: the drive's core invariants must hold across geometry and
// cache configurations, operation mixes, and crash points.
//
// Invariant 1 (current-state correctness): after any sequence of operations,
//   reads return exactly what an in-memory oracle holds.
// Invariant 2 (history correctness): any version inside the window matches
//   the oracle's snapshot at that time.
// Invariant 3 (durability): after a crash, everything synced is intact.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "tests/test_util.h"

namespace s4 {
namespace {

// (segment_sectors, block_cache_bytes, object_cache_bytes, sync_every, seed)
using DriveConfig = std::tuple<uint32_t, uint64_t, uint64_t, int, uint64_t>;

class DrivePropertyTest : public ::testing::TestWithParam<DriveConfig> {
 protected:
  void SetUp() override {
    auto [segment_sectors, block_cache, object_cache, sync_every, seed] = GetParam();
    opts_.segment_sectors = segment_sectors;
    opts_.block_cache_bytes = block_cache;
    opts_.object_cache_bytes = object_cache;
    opts_.detection_window = kHour;
    sync_every_ = sync_every;
    seed_ = seed;
    clock_ = std::make_unique<SimClock>(SimTime{1000000});
    device_ = std::make_unique<BlockDevice>((48ull << 20) / kSectorSize, clock_.get());
    auto drive = S4Drive::Format(device_.get(), clock_.get(), opts_);
    ASSERT_TRUE(drive.ok()) << drive.status().ToString();
    drive_ = std::move(*drive);
  }

  S4DriveOptions opts_;
  int sync_every_ = 8;
  uint64_t seed_ = 0;
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<BlockDevice> device_;
  std::unique_ptr<S4Drive> drive_;
};

TEST_P(DrivePropertyTest, RandomOpsMatchOracle) {
  Credentials alice;
  alice.user = 100;
  alice.client = 1;
  Rng rng(seed_);
  std::map<ObjectId, Bytes> oracle;   // live objects' full contents
  struct Snapshot {
    ObjectId id;
    SimTime time;
    Bytes content;
  };
  std::vector<Snapshot> history;
  std::vector<ObjectId> live;

  for (int step = 0; step < 400; ++step) {
    clock_->Advance(kSecond);
    uint64_t action = rng.Below(100);
    if (action < 20 || live.empty()) {
      ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
      live.push_back(id);
      oracle[id] = {};
    } else if (action < 60) {
      // Write at a random offset (possibly creating holes / extending).
      ObjectId id = live[rng.Below(live.size())];
      uint64_t offset = rng.Below(40000);
      Bytes data = rng.RandomBytes(1 + rng.Below(20000));
      ASSERT_OK(drive_->Write(alice, id, offset, data));
      Bytes& content = oracle[id];
      if (content.size() < offset + data.size()) {
        content.resize(offset + data.size(), 0);
      }
      std::copy(data.begin(), data.end(), content.begin() + offset);
      history.push_back({id, clock_->Now(), content});
    } else if (action < 70) {
      ObjectId id = live[rng.Below(live.size())];
      uint64_t new_size = rng.Below(50000);
      ASSERT_OK(drive_->Truncate(alice, id, new_size));
      Bytes& content = oracle[id];
      content.resize(new_size, 0);
      history.push_back({id, clock_->Now(), content});
    } else if (action < 80) {
      // Append.
      ObjectId id = live[rng.Below(live.size())];
      Bytes data = rng.RandomBytes(1 + rng.Below(5000));
      ASSERT_OK(drive_->Append(alice, id, data).status());
      Bytes& content = oracle[id];
      content.insert(content.end(), data.begin(), data.end());
      history.push_back({id, clock_->Now(), content});
    } else if (action < 88) {
      // Full read vs oracle.
      ObjectId id = live[rng.Below(live.size())];
      const Bytes& expect = oracle[id];
      ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, expect.size() + 100));
      ASSERT_EQ(got, expect) << "object " << id << " step " << step;
    } else if (action < 93) {
      // Random historical read vs oracle snapshot.
      if (!history.empty()) {
        const Snapshot& snap = history[rng.Below(history.size())];
        auto got = drive_->Read(alice, snap.id, 0, snap.content.size() + 100, snap.time);
        ASSERT_TRUE(got.ok()) << got.status().ToString() << " step " << step;
        ASSERT_EQ(*got, snap.content) << "object " << snap.id << " @" << snap.time;
      }
    } else if (action < 96) {
      size_t pick = rng.Below(live.size());
      ObjectId id = live[pick];
      ASSERT_OK(drive_->Delete(alice, id));
      live.erase(live.begin() + pick);
      oracle.erase(id);
    } else {
      ASSERT_OK(drive_->Sync(alice));
    }
    if (sync_every_ > 0 && step % sync_every_ == sync_every_ - 1) {
      ASSERT_OK(drive_->Sync(alice));
    }
  }

  // Final sweep: every live object matches, every recorded version matches.
  for (const auto& [id, expect] : oracle) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, expect.size() + 100));
    ASSERT_EQ(got, expect) << "final object " << id;
  }
  for (size_t i = 0; i < history.size(); i += 7) {
    const Snapshot& snap = history[i];
    ASSERT_OK_AND_ASSIGN(Bytes got,
                         drive_->Read(alice, snap.id, 0, snap.content.size() + 100, snap.time));
    ASSERT_EQ(got, snap.content) << "final history " << snap.id << " @" << snap.time;
  }
}

TEST_P(DrivePropertyTest, CrashPreservesSyncedState) {
  Credentials alice;
  alice.user = 100;
  alice.client = 1;
  Rng rng(seed_ + 1000);
  std::map<ObjectId, Bytes> synced_oracle;
  std::vector<ObjectId> live;

  for (int round = 0; round < 4; ++round) {
    // A burst of operations...
    std::map<ObjectId, Bytes> oracle = synced_oracle;
    for (int step = 0; step < 60; ++step) {
      clock_->Advance(kSecond);
      uint64_t action = rng.Below(10);
      if (action < 3 || live.empty()) {
        ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
        live.push_back(id);
        oracle[id] = {};
      } else {
        ObjectId id = live[rng.Below(live.size())];
        if (oracle.count(id) == 0) {
          continue;  // created pre-crash burst bookkeeping mismatch guard
        }
        Bytes data = rng.RandomBytes(1 + rng.Below(12000));
        ASSERT_OK(drive_->Write(alice, id, 0, data));
        Bytes& content = oracle[id];
        if (content.size() < data.size()) {
          content.resize(data.size(), 0);
        }
        std::copy(data.begin(), data.end(), content.begin());
      }
    }
    // ...synced...
    ASSERT_OK(drive_->Sync(alice));
    synced_oracle = oracle;
    // ...then a crash and remount.
    drive_.reset();
    auto drive = S4Drive::Mount(device_.get(), clock_.get(), opts_);
    ASSERT_TRUE(drive.ok()) << drive.status().ToString();
    drive_ = std::move(*drive);
    // Everything synced must read back exactly.
    for (const auto& [id, expect] : synced_oracle) {
      ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, expect.size() + 100));
      ASSERT_EQ(got, expect) << "round " << round << " object " << id;
    }
  }
}

std::string ConfigName(const ::testing::TestParamInfo<DriveConfig>& info) {
  auto [seg, bc, oc, sync, seed] = info.param;
  return "seg" + std::to_string(seg) + "_bc" + std::to_string(bc >> 10) + "k_oc" +
         std::to_string(oc >> 10) + "k_sync" + std::to_string(sync) + "_s" +
         std::to_string(seed);
}

const DriveConfig kConfigs[] = {
    // Paper-proportioned caches.
    DriveConfig{512, 2 << 20, 256 << 10, 8, 1},
    // Tiny caches: eviction and checkpoint churn on every step.
    DriveConfig{512, 64 << 10, 16 << 10, 8, 2},
    // Small segments: constant rollover.
    DriveConfig{128, 1 << 20, 128 << 10, 8, 3},
    // Large segments, rare syncs: big pending state.
    DriveConfig{2048, 4 << 20, 512 << 10, 50, 4},
    // Sync after every op: NFSv2-like.
    DriveConfig{512, 1 << 20, 128 << 10, 1, 5},
};

INSTANTIATE_TEST_SUITE_P(ConfigSweep, DrivePropertyTest, ::testing::ValuesIn(kConfigs),
                         ConfigName);

}  // namespace
}  // namespace s4
