// Baseline comparators: the conventional-versioning store's metadata blowup
// (Figure 2's premise) and the snapshot store's coverage gaps (section 6).
#include <gtest/gtest.h>

#include "src/baseline/conventional_versioning.h"
#include "src/baseline/snapshot_store.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

TEST(ConventionalVersioningTest, ReadBackCurrentVersion) {
  SimClock clock;
  BlockDevice device((64ull << 20) / kSectorSize, &clock);
  ConventionalVersioningStore store(&device, &clock);
  ASSERT_OK_AND_ASSIGN(uint64_t id, store.CreateObject());
  Rng rng(1);
  Bytes data = rng.RandomBytes(100000);
  ASSERT_OK(store.Write(id, 0, data));
  Bytes patch = rng.RandomBytes(5000);
  ASSERT_OK(store.Write(id, 40000, patch));
  std::copy(patch.begin(), patch.end(), data.begin() + 40000);
  ASSERT_OK_AND_ASSIGN(Bytes got, store.Read(id, 0, data.size()));
  EXPECT_EQ(got, data);
}

TEST(ConventionalVersioningTest, SmallUpdateToLargeFileCostsFullMetadataChain) {
  SimClock clock;
  BlockDevice device((512ull << 20) / kSectorSize, &clock);
  ConventionalVersioningStore store(&device, &clock);
  ASSERT_OK_AND_ASSIGN(uint64_t id, store.CreateObject());
  Rng rng(2);
  // Build a file deep into double-indirect territory (> 12 + 512 blocks).
  Bytes big = rng.RandomBytes(3 * 1024 * 1024);
  ASSERT_OK(store.Write(id, 0, big));

  ConventionalStats before = store.stats();
  // One 4KB write into the doubly-indirected region...
  Bytes block = rng.RandomBytes(4096);
  ASSERT_OK(store.Write(id, 2500 * 1024, block));
  ConventionalStats after = store.stats();

  uint64_t data_delta = after.data_bytes - before.data_bytes;
  uint64_t meta_delta = after.metadata_bytes - before.metadata_bytes;
  EXPECT_EQ(data_delta, 4096u);
  // ...forces a new leaf indirect block, a new double-indirect block, a new
  // inode, and an inode-log entry: metadata alone exceeds 2x the data.
  EXPECT_GE(meta_delta, 2 * 4096u);
}

TEST(SnapshotStoreTest, SnapshotsSeeOnlyWhatWasCurrentAtCapture) {
  SimClock clock(1000);
  SnapshotStore store(&clock);
  uint64_t id = store.CreateObject();
  ASSERT_OK(store.Write(id, BytesOf("v1")));
  size_t snap1 = store.TakeSnapshot();
  clock.Advance(kMinute);
  ASSERT_OK(store.Write(id, BytesOf("v2")));
  size_t snap2 = store.TakeSnapshot();

  ASSERT_OK_AND_ASSIGN(Bytes at1, store.ReadAtSnapshot(snap1, id));
  EXPECT_EQ(StringOf(at1), "v1");
  ASSERT_OK_AND_ASSIGN(Bytes at2, store.ReadAtSnapshot(snap2, id));
  EXPECT_EQ(StringOf(at2), "v2");
}

TEST(SnapshotStoreTest, ShortLivedFileInvisibleToSnapshots) {
  // The section-6 failure mode: a file created and deleted between two
  // snapshots (an exploit tool) is unrecoverable from snapshots alone.
  SimClock clock(1000);
  SnapshotStore store(&clock);
  store.TakeSnapshot();
  uint64_t tool = store.CreateObject();
  ASSERT_OK(store.Write(tool, BytesOf("exploit")));
  ASSERT_OK(store.Delete(tool));
  store.TakeSnapshot();
  EXPECT_FALSE(store.AnySnapshotHolds(tool, BytesOf("exploit")));
  EXPECT_EQ(store.ReadAtSnapshot(0, tool).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.ReadAtSnapshot(1, tool).status().code(), ErrorCode::kNotFound);
}

TEST(SnapshotStoreTest, IntermediateVersionsLostBetweenSnapshots) {
  SimClock clock(1000);
  SnapshotStore store(&clock);
  uint64_t id = store.CreateObject();
  ASSERT_OK(store.Write(id, BytesOf("evidence")));
  // Overwritten before any snapshot fires.
  ASSERT_OK(store.Write(id, BytesOf("scrubbed")));
  store.TakeSnapshot();
  EXPECT_FALSE(store.AnySnapshotHolds(id, BytesOf("evidence")));
  EXPECT_TRUE(store.AnySnapshotHolds(id, BytesOf("scrubbed")));
}

}  // namespace
}  // namespace s4
