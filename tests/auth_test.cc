// Authenticated access (paper section 3.2): the device verifies each request
// came from a valid (client, user) pair — MAC verification, replay defense,
// identity binding, and trustworthy audit attribution.
#include <gtest/gtest.h>

#include "src/rpc/auth.h"
#include "src/rpc/client.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

TEST(SipHashTest, ReferenceVector) {
  // The SipHash-2-4 reference test vector (key 000102...0f over bytes
  // 00 01 .. 3e) — first entry: empty input.
  MacKey key;
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(SipHash24(key, {}), 0x726fdb47dd0e0e31ull);
  Bytes one = {0x00};
  EXPECT_EQ(SipHash24(key, one), 0x74f839c593dc67fdull);
  Bytes eight = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  EXPECT_EQ(SipHash24(key, eight), 0x93f5f5799a932462ull);
}

TEST(SipHashTest, KeySensitivity) {
  MacKey a{};
  MacKey b{};
  b[0] = 1;
  Bytes data = BytesOf("same message");
  EXPECT_NE(SipHash24(a, data), SipHash24(b, data));
}

class AuthTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    server_ = std::make_unique<S4RpcServer>(drive_.get());
    gateway_ = std::make_unique<AuthGateway>(server_.get());
    transport_ = std::make_unique<AuthLoopbackTransport>(gateway_.get(), clock_.get());
    for (int i = 0; i < 16; ++i) {
      alice_key_[i] = static_cast<uint8_t>(0xA0 + i);
    }
    gateway_->RegisterPrincipal(/*client=*/1, /*user=*/100, alice_key_);
    signer_ = std::make_unique<SigningTransport>(transport_.get(), 1, 100, alice_key_);
    client_ = std::make_unique<S4Client>(signer_.get(), User(100, 1));
  }

  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<AuthGateway> gateway_;
  std::unique_ptr<AuthLoopbackTransport> transport_;
  std::unique_ptr<SigningTransport> signer_;
  std::unique_ptr<S4Client> client_;
  MacKey alice_key_;
};

TEST_F(AuthTest, SignedRequestsGoThrough) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));
  ASSERT_OK(client_->Write(id, 0, BytesOf("authenticated data")));
  ASSERT_OK_AND_ASSIGN(Bytes got, client_->Read(id, 0, 64));
  EXPECT_EQ(StringOf(got), "authenticated data");
}

TEST_F(AuthTest, UnsignedFramesRejected) {
  // A bare request frame (no envelope) bounces off the gateway.
  RpcRequest req;
  req.op = RpcOp::kCreate;
  req.creds = User(100, 1);
  ASSERT_OK_AND_ASSIGN(Bytes frame, transport_->Call(req.Encode()));
  ASSERT_OK_AND_ASSIGN(RpcResponse resp, RpcResponse::Decode(frame));
  EXPECT_EQ(resp.code, ErrorCode::kPermissionDenied);
}

TEST_F(AuthTest, ForgedMacRejected) {
  signer_->CorruptNextMac();
  EXPECT_EQ(client_->Create({}).status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(gateway_->rejected_bad_mac(), 1u);
  // Subsequent honest requests still work.
  ASSERT_OK(client_->Create({}).status());
}

TEST_F(AuthTest, ReplayRejected) {
  ASSERT_OK(client_->Create({}).status());
  ASSERT_OK_AND_ASSIGN(Bytes frame, signer_->ReplayLast());
  ASSERT_OK_AND_ASSIGN(RpcResponse resp, RpcResponse::Decode(frame));
  EXPECT_EQ(resp.code, ErrorCode::kPermissionDenied);
  EXPECT_EQ(gateway_->rejected_replay(), 1u);
}

TEST_F(AuthTest, CannotSpeakForAnotherUser) {
  // Alice's key signs a request claiming to be user 200.
  SigningTransport impostor(transport_.get(), 1, 100, alice_key_);
  Credentials forged;
  forged.client = 1;
  forged.user = 200;  // claims bob inside the frame
  S4Client bad_client(&impostor, forged);
  EXPECT_EQ(bad_client.Create({}).status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(gateway_->rejected_identity_mismatch(), 1u);
}

TEST_F(AuthTest, UnknownPrincipalRejected) {
  MacKey mallory_key{};
  SigningTransport mallory(transport_.get(), 9, 666, mallory_key);
  S4Client bad_client(&mallory, User(666, 9));
  EXPECT_EQ(bad_client.Create({}).status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(gateway_->rejected_unknown_principal(), 1u);
}

TEST_F(AuthTest, RevocationCutsAccess) {
  ASSERT_OK(client_->Create({}).status());
  gateway_->RevokePrincipal(1, 100);
  EXPECT_EQ(client_->Create({}).status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(AuthTest, AuditAttributionIsTrustworthy) {
  // With authentication, audit records can only name principals that really
  // issued requests: forged-identity attempts never reach the drive.
  ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));
  ASSERT_OK(client_->Write(id, 0, BytesOf("x")));
  SigningTransport impostor(transport_.get(), 1, 100, alice_key_);
  Credentials forged = User(200, 1);
  S4Client bad_client(&impostor, forged);
  (void)bad_client.Write(id, 0, BytesOf("forged"));  // must be rejected; audited below

  AuditQuery as_bob;
  as_bob.user = 200;
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> bob_records,
                       drive_->QueryAudit(Admin(), as_bob));
  EXPECT_TRUE(bob_records.empty());  // nothing was ever attributed to user 200
}

}  // namespace
}  // namespace s4
