// Version waypoints and the journal-sector cache: cadence, persistence
// across checkpoint/remount/recovery, forward-vs-backward reconstruction
// equivalence, seek savings, cache coherence against the cleaner, and a
// crash-point sweep with a checkpoint-heavy option set.
#include <gtest/gtest.h>

#include "tests/crash_harness.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

// A small waypoint interval makes every behaviour observable with short
// chains; each Sync flushes at least one journal sector per dirty object.
S4DriveOptions WaypointOptions(uint32_t interval = 2) {
  S4DriveOptions o = DriveTest::SmallOptions();
  o.waypoint_interval_sectors = interval;
  return o;
}

class WaypointTest : public DriveTest {
 protected:
  void SetUp() override { SetUpDrive(WaypointOptions(), 64ull << 20); }

  // One synced version per call: a write followed by Sync flushes the
  // pending journal entries into (at least) one on-disk sector.
  void WriteVersion(ObjectId id, const Bytes& data) {
    Credentials alice = User(100);
    clock_->Advance(kSecond);
    ASSERT_OK(drive_->Write(alice, id, 0, data));
    ASSERT_OK(drive_->Sync(alice));
  }
};

TEST_F(WaypointTest, WaypointsFollowTheConfiguredCadence) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  for (int i = 0; i < 12; ++i) {
    WriteVersion(id, BytesOf("version " + std::to_string(i)));
  }
  auto entry = drive_->DebugObjectEntry(id);
  ASSERT_TRUE(entry.has_value());
  // 12 syncs produced at least 12 sectors; with interval 2 that is at least
  // 6 waypoints. Times must be strictly ascending and above the barrier.
  EXPECT_GE(entry->waypoints.size(), 6u);
  SimTime prev = entry->history_barrier;
  for (const JournalWaypoint& w : entry->waypoints) {
    EXPECT_GT(w.time, prev);
    EXPECT_NE(w.addr, kNullAddr);
    prev = w.time;
  }
  EXPECT_OK(drive_->VerifyObjectWaypoints(id));

  // Seek semantics: the oldest waypoint strictly above a time t must exist
  // for any t below the newest waypoint, and be the first such.
  SimTime mid = entry->waypoints[entry->waypoints.size() / 2].time;
  const JournalWaypoint* w = entry->SeekWaypointAbove(mid - 1);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->time, mid);
  EXPECT_EQ(entry->SeekWaypointAbove(entry->waypoints.back().time), nullptr);
}

TEST_F(WaypointTest, DisabledIntervalRecordsNoWaypoints) {
  SetUpDrive(WaypointOptions(/*interval=*/0), 64ull << 20);
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  for (int i = 0; i < 8; ++i) {
    WriteVersion(id, BytesOf("v" + std::to_string(i)));
  }
  auto entry = drive_->DebugObjectEntry(id);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->waypoints.empty());
  EXPECT_OK(drive_->VerifyObjectWaypoints(id));
}

TEST_F(WaypointTest, WaypointsSurviveCrashAndRecovery) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  std::vector<std::pair<SimTime, Bytes>> versions;
  for (int i = 0; i < 16; ++i) {
    Bytes data = BytesOf("persisted version " + std::to_string(i));
    WriteVersion(id, data);
    versions.emplace_back(clock_->Now(), data);
  }
  auto before = drive_->DebugObjectEntry(id);
  ASSERT_TRUE(before.has_value());
  ASSERT_FALSE(before->waypoints.empty());

  // Recovery = checkpoint load + roll-forward; the rebuilt cadence must be
  // byte-identical because sectors_since_waypoint is checkpointed and
  // post-checkpoint sectors are re-noted in append order.
  CrashAndRemount();
  auto after = drive_->DebugObjectEntry(id);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->waypoints.size(), before->waypoints.size());
  for (size_t i = 0; i < before->waypoints.size(); ++i) {
    EXPECT_EQ(after->waypoints[i].time, before->waypoints[i].time) << "waypoint " << i;
    EXPECT_EQ(after->waypoints[i].addr, before->waypoints[i].addr) << "waypoint " << i;
  }
  EXPECT_EQ(after->sectors_since_waypoint, before->sectors_since_waypoint);
  EXPECT_OK(drive_->VerifyAllWaypoints());

  // And the history they index is still fully reconstructible.
  for (const auto& [t, data] : versions) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(Admin(), id, 0, data.size(), t));
    EXPECT_EQ(got, data);
  }
}

TEST_F(WaypointTest, RecoveryRebuildsWaypointsAcrossDeviceCheckpoints) {
  // A tiny checkpoint interval forces several device checkpoints inside the
  // workload, so recovery exercises both halves: waypoints restored from the
  // checkpointed object map AND waypoints re-noted by roll-forward.
  S4DriveOptions o = WaypointOptions();
  o.checkpoint_interval_bytes = 64 << 10;
  SetUpDrive(o, 64ull << 20);
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(11);
  for (int i = 0; i < 24; ++i) {
    clock_->Advance(kSecond);
    ASSERT_OK(drive_->Write(alice, id, 0, rng.RandomBytes(16 * 1024)));
    ASSERT_OK(drive_->Sync(alice));
  }
  auto before = drive_->DebugObjectEntry(id);
  ASSERT_TRUE(before.has_value());
  CrashAndRemount();
  auto after = drive_->DebugObjectEntry(id);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->waypoints.size(), before->waypoints.size());
  for (size_t i = 0; i < before->waypoints.size(); ++i) {
    EXPECT_EQ(after->waypoints[i].time, before->waypoints[i].time) << "waypoint " << i;
    EXPECT_EQ(after->waypoints[i].addr, before->waypoints[i].addr) << "waypoint " << i;
  }
  EXPECT_OK(drive_->VerifyAllWaypoints());
}

TEST_F(WaypointTest, ForwardAndBackwardReconstructionAgree) {
  // Oracle test across the whole depth range: early versions are rebuilt by
  // forward replay (cheaper from the create end), recent ones by backward
  // undo. Both must reproduce the modelled contents exactly.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(7);
  std::vector<std::pair<SimTime, Bytes>> versions;
  Bytes content;
  for (int i = 0; i < 40; ++i) {
    clock_->Advance(kSecond);
    uint64_t off = rng.Below(8) * 512;
    Bytes patch = rng.RandomBytes(512 + rng.Below(2048));
    ASSERT_OK(drive_->Write(alice, id, off, patch));
    if (content.size() < off + patch.size()) {
      content.resize(off + patch.size(), 0);
    }
    std::copy(patch.begin(), patch.end(), content.begin() + off);
    ASSERT_OK(drive_->Sync(alice));
    versions.emplace_back(clock_->Now(), content);
  }

  uint64_t forward_before = drive_->metrics().CounterValue("history.forward_reconstructions");
  for (const auto& [t, data] : versions) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(Admin(), id, 0, data.size(), t));
    ASSERT_EQ(got, data) << "version at t=" << t;
    ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(Admin(), id, t));
    EXPECT_EQ(attrs.size, data.size());
  }
  // The early targets are closer to the create end than to the present, so
  // at least some reads must have taken the forward-replay path.
  EXPECT_GT(drive_->metrics().CounterValue("history.forward_reconstructions"), forward_before);
}

TEST_F(WaypointTest, WaypointSeekShortensBoundedWalks) {
  // A purge bounded at an old time must seek past the newer chain instead of
  // reading it: with waypoints the bounded walk reads far fewer sectors than
  // the chain holds.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  std::vector<SimTime> times;
  for (int i = 0; i < 32; ++i) {
    WriteVersion(id, BytesOf("seek target " + std::to_string(i)));
    times.push_back(clock_->Now());
  }
  uint64_t seeks_before = drive_->metrics().CounterValue("history.waypoint_seeks");
  uint64_t read_before = drive_->metrics().CounterValue("history.walk_sectors_read");
  // Bound the walk at the 4th version: everything newer is skippable.
  ASSERT_OK(drive_->FlushObject(Admin(), id, times[0], times[3]));
  uint64_t seeks = drive_->metrics().CounterValue("history.waypoint_seeks") - seeks_before;
  uint64_t read = drive_->metrics().CounterValue("history.walk_sectors_read") - read_before;
  EXPECT_GE(seeks, 1u);
  // 32 synced versions put well over 16 sectors on the chain; the bounded
  // walk must have skipped most of them (interval 2 leaves at most ~2
  // sectors of overshoot past the seek point, plus the target territory).
  EXPECT_LT(read, 16u);
}

TEST_F(WaypointTest, JournalSectorCacheServesRepeatWalks) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  for (int i = 0; i < 10; ++i) {
    WriteVersion(id, BytesOf("cached " + std::to_string(i)));
  }
  // Drop the object cache state? Not needed: version-list walks always read
  // the on-disk chain. The first walk warms the jsector cache, the second
  // must be served from it.
  ASSERT_OK(drive_->GetVersionList(Admin(), id).status());
  uint64_t hits_before = drive_->metrics().CounterValue("cache.jsector.hits");
  uint64_t misses_before = drive_->metrics().CounterValue("cache.jsector.misses");
  ASSERT_OK_AND_ASSIGN(std::vector<VersionInfo> versions, drive_->GetVersionList(Admin(), id));
  EXPECT_GE(versions.size(), 10u);
  EXPECT_GT(drive_->metrics().CounterValue("cache.jsector.hits"), hits_before);
  EXPECT_EQ(drive_->metrics().CounterValue("cache.jsector.misses"), misses_before);
}

TEST_F(WaypointTest, CacheStaysCoherentWhenCleanerFreesSectors) {
  // Warm the jsector cache with a deep walk, expire the history, clean, then
  // churn enough new data through the log that the freed segments are reused.
  // If the cleaner failed to invalidate the cache, later walks would decode
  // stale sectors at reused addresses and misattribute history.
  S4DriveOptions o = WaypointOptions();
  o.detection_window = 10 * kMinute;
  SetUpDrive(o, 16ull << 20);
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    clock_->Advance(kSecond);
    ASSERT_OK(drive_->Write(alice, id, 0, rng.RandomBytes(8 * 1024)));
    ASSERT_OK(drive_->Sync(alice));
  }
  SimTime old_version = clock_->Now();
  ASSERT_OK(drive_->GetVersionList(Admin(), id).status());  // warms the cache

  clock_->Advance(2 * o.detection_window);
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, old_version - kSecond).status().code(),
            ErrorCode::kFailedPrecondition);

  // Reuse the reclaimed space with a fresh object's history.
  ASSERT_OK_AND_ASSIGN(ObjectId fresh, drive_->Create(alice, {}));
  std::vector<std::pair<SimTime, Bytes>> versions;
  for (int i = 0; i < 20; ++i) {
    clock_->Advance(kSecond);
    Bytes data = rng.RandomBytes(8 * 1024);
    ASSERT_OK(drive_->Write(alice, fresh, 0, data));
    ASSERT_OK(drive_->Sync(alice));
    versions.emplace_back(clock_->Now(), data);
  }
  for (const auto& [t, data] : versions) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(Admin(), fresh, 0, data.size(), t));
    EXPECT_EQ(got, data);
  }
  EXPECT_OK(drive_->VerifyAllWaypoints());
}

TEST_F(WaypointTest, PurgedRangesNeverUseForwardReplay) {
  // Forward replay re-derives block addresses from the *superseded* entries,
  // which carry no purge knowledge; reconstruction must fall back to the
  // backward path (which consults the purge list) once any range is purged.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  std::vector<SimTime> times;
  for (int i = 0; i < 24; ++i) {
    WriteVersion(id, BytesOf("purge probe " + std::to_string(i)));
    times.push_back(clock_->Now());
  }
  ASSERT_OK(drive_->FlushObject(Admin(), id, times[4], times[6]));
  uint64_t forward_before = drive_->metrics().CounterValue("history.forward_reconstructions");
  // A purged-range read fails loudly rather than returning reused contents.
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, times[5]).status().code(),
            ErrorCode::kFailedPrecondition);
  // An early (pre-purge) version is still exact — via the backward path.
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(Admin(), id, 0, 64, times[2]));
  EXPECT_EQ(StringOf(Bytes(got.begin(), got.begin() + 13)), "purge probe 2");
  EXPECT_EQ(drive_->metrics().CounterValue("history.forward_reconstructions"), forward_before);
}

TEST(WaypointCrashSweep, PowerCutNeverLeavesTornWaypoints) {
  // Sweep power cuts across every write boundary of a checkpoint-heavy
  // workload, clean-cut and torn-tail. The harness's post-recovery
  // invariants include VerifyAllWaypoints: a cut mid-checkpoint or mid-chunk
  // must never leave a waypoint pointing at torn or unreachable territory.
  S4DriveOptions o = WaypointOptions();
  o.checkpoint_interval_bytes = 32 << 10;  // checkpoint storms inside the sweep
  std::vector<ScriptOp> script;
  auto op = [](ScriptOp::Kind kind, size_t slot, uint64_t length = 0, uint8_t fill = 0) {
    ScriptOp so{};
    so.kind = kind;
    so.slot = slot;
    so.length = length;
    so.fill = fill;
    return so;
  };
  script.push_back(op(ScriptOp::kCreate, 0));
  script.push_back(op(ScriptOp::kCreate, 1));
  for (int round = 0; round < 6; ++round) {
    uint8_t fill = static_cast<uint8_t>(0x10 + round);
    script.push_back(op(ScriptOp::kWrite, 0, 4096, fill));
    script.push_back(op(ScriptOp::kAppend, 1, 2048, fill));
    script.push_back(op(ScriptOp::kSync, 0));
  }
  CrashHarness harness(script, o);
  uint64_t points = harness.CountWritePoints();
  ASSERT_GT(points, 0u);
  for (uint64_t k = 1; k <= points; ++k) {
    harness.RunCrashPoint(k, /*torn_tail=*/false);
    harness.RunCrashPoint(k, /*torn_tail=*/true);
  }
}

}  // namespace
}  // namespace s4
