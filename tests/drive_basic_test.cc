// End-to-end behaviour of the S4 drive: create/write/read, comprehensive
// versioning with time-based access, delete + resurrection, and sync.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace s4 {
namespace {

TEST_F(DriveTest, CreateWriteRead) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, BytesOf("attrs")));
  Bytes payload = BytesOf("hello self-securing storage");
  ASSERT_OK(drive_->Write(alice, id, 0, payload));
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, payload.size()));
  EXPECT_EQ(got, payload);
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, payload.size());
  EXPECT_EQ(StringOf(attrs.opaque), "attrs");
}

TEST_F(DriveTest, ReadBeyondEofClamps) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("12345")));
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 3, 100));
  EXPECT_EQ(StringOf(got), "45");
  ASSERT_OK_AND_ASSIGN(Bytes beyond, drive_->Read(alice, id, 10, 5));
  EXPECT_TRUE(beyond.empty());
}

TEST_F(DriveTest, OverwriteKeepsOldVersion) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("version one")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("VERSION TWO")));

  ASSERT_OK_AND_ASSIGN(Bytes current, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(current), "VERSION TWO");
  ASSERT_OK_AND_ASSIGN(Bytes old, drive_->Read(alice, id, 0, 64, t1));
  EXPECT_EQ(StringOf(old), "version one");
}

TEST_F(DriveTest, EveryModificationIsAVersion) {
  // Unlike close-to-close versioning file systems, S4 versions every write.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  std::vector<std::pair<SimTime, std::string>> snapshots;
  for (int i = 0; i < 10; ++i) {
    std::string content = "generation " + std::to_string(i);
    ASSERT_OK(drive_->Write(alice, id, 0, BytesOf(content)));
    snapshots.emplace_back(clock_->Now(), content);
    clock_->Advance(kSecond);
  }
  for (const auto& [t, content] : snapshots) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64, t));
    EXPECT_EQ(StringOf(got), content) << "at time " << t;
  }
}

TEST_F(DriveTest, DeletedObjectRecoverableFromHistory) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Bytes secret = BytesOf("exploit-tool-v1: evidence the intruder wanted gone");
  ASSERT_OK(drive_->Write(alice, id, 0, secret));
  SimTime before_delete = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Delete(alice, id));

  // Normal reads fail...
  EXPECT_EQ(drive_->Read(alice, id, 0, 64).status().code(), ErrorCode::kFailedPrecondition);
  // ...but the version from before the delete is fully recoverable.
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, secret.size(), before_delete));
  EXPECT_EQ(got, secret);
  // And a read at a post-delete time correctly reports absence.
  EXPECT_EQ(drive_->Read(alice, id, 0, 64, clock_->Now()).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(DriveTest, TruncateVersioned) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Bytes data(10000, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  ASSERT_OK(drive_->Write(alice, id, 0, data));
  SimTime t_full = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Truncate(alice, id, 100));
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 100u);

  // Old full contents still reconstructible.
  ASSERT_OK_AND_ASSIGN(Bytes old, drive_->Read(alice, id, 0, data.size(), t_full));
  EXPECT_EQ(old, data);

  // Extending after truncation reads zeros in the gap, not stale data.
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Truncate(alice, id, 5000));
  ASSERT_OK_AND_ASSIGN(Bytes reext, drive_->Read(alice, id, 100, 4900));
  for (uint8_t b : reext) {
    ASSERT_EQ(b, 0);
  }
}

TEST_F(DriveTest, AppendGrowsObject) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK_AND_ASSIGN(uint64_t s1, drive_->Append(alice, id, BytesOf("abc")));
  EXPECT_EQ(s1, 3u);
  ASSERT_OK_AND_ASSIGN(uint64_t s2, drive_->Append(alice, id, BytesOf("def")));
  EXPECT_EQ(s2, 6u);
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 6));
  EXPECT_EQ(StringOf(got), "abcdef");
}

TEST_F(DriveTest, SetAttrVersioned) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->SetAttr(alice, id, BytesOf("v2")));
  ASSERT_OK_AND_ASSIGN(ObjectAttrs now_attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(StringOf(now_attrs.opaque), "v2");
  ASSERT_OK_AND_ASSIGN(ObjectAttrs old_attrs, drive_->GetAttr(alice, id, t1));
  EXPECT_EQ(StringOf(old_attrs.opaque), "v1");
}

TEST_F(DriveTest, LargeMultiBlockWrite) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(42);
  Bytes data = rng.RandomBytes(300 * 1024);  // spans many blocks and entries
  ASSERT_OK(drive_->Write(alice, id, 0, data));
  ASSERT_OK(drive_->Sync(alice));
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, data.size()));
  EXPECT_EQ(got, data);

  // Overwrite the middle; both generations remain readable.
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  Bytes patch = rng.RandomBytes(50 * 1024);
  ASSERT_OK(drive_->Write(alice, id, 100 * 1024, patch));
  ASSERT_OK_AND_ASSIGN(Bytes old, drive_->Read(alice, id, 0, data.size(), t1));
  EXPECT_EQ(old, data);
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, id, 100 * 1024, patch.size()));
  EXPECT_EQ(cur, patch);
}

TEST_F(DriveTest, SparseWriteReadsZerosInHoles) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 100000, BytesOf("far out")));
  ASSERT_OK_AND_ASSIGN(Bytes hole, drive_->Read(alice, id, 50000, 100));
  for (uint8_t b : hole) {
    ASSERT_EQ(b, 0);
  }
  ASSERT_OK_AND_ASSIGN(Bytes tail, drive_->Read(alice, id, 100000, 7));
  EXPECT_EQ(StringOf(tail), "far out");
}

TEST_F(DriveTest, VersionListEnumeratesMutations) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  for (int i = 0; i < 3; ++i) {
    clock_->Advance(kSecond);
    ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("x" + std::to_string(i))));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<VersionInfo> versions,
                       drive_->GetVersionList(alice, id));
  // create + 3 writes
  ASSERT_EQ(versions.size(), 4u);
  EXPECT_EQ(versions[0].cause, JournalEntryType::kCreate);
  for (size_t i = 1; i < versions.size(); ++i) {
    EXPECT_EQ(versions[i].cause, JournalEntryType::kWrite);
    EXPECT_GT(versions[i].time, versions[i - 1].time);
  }
}

TEST_F(DriveTest, ReadPathCountersTrackCacheAndHistory) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Bytes data(8 * kBlockSize, 0x5A);
  ASSERT_OK(drive_->Write(alice, id, 0, data));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("generation two")));
  ASSERT_OK(drive_->Sync(alice));

  const MetricRegistry& reg = drive_->metrics();
  // Warm reads are served from the block cache.
  ASSERT_OK(drive_->Read(alice, id, 0, 64).status());
  ASSERT_OK(drive_->Read(alice, id, 0, 64).status());
  EXPECT_GT(reg.CounterValue("cache.block.hits"), 0u);

  // A time-based read walks the history pool to reconstruct the old version.
  uint64_t walks_before = reg.CounterValue("history.reconstruction_walks");
  ASSERT_OK_AND_ASSIGN(Bytes old, drive_->Read(alice, id, 0, data.size(), t1));
  EXPECT_EQ(old, data);
  EXPECT_GT(reg.CounterValue("history.reconstruction_walks"), walks_before);
  EXPECT_GT(drive_->stats().time_based_reads, 0u);

  // A cold remount empties the cache: the next read misses and pulls sectors
  // off the platters. (The remounted drive has a fresh registry.)
  CrashAndRemount();
  ASSERT_OK(drive_->Read(alice, id, 0, 64).status());
  EXPECT_GT(drive_->metrics().CounterValue("cache.block.misses"), 0u);
  EXPECT_GT(drive_->metrics().CounterValue("cache.sectors_read"), 0u);
}

TEST_F(DriveTest, ManyObjectsSurviveCacheEviction) {
  // Object cache is tiny (64KB); creating many objects forces eviction and
  // checkpointing, and everything must still read back.
  Credentials alice = User(100);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
    ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("object " + std::to_string(i))));
    ids.push_back(id);
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, ids[i], 0, 64));
    EXPECT_EQ(StringOf(got), "object " + std::to_string(i));
  }
}

}  // namespace
}  // namespace s4
