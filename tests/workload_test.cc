// Workload generators: sanity of PostMark / SSH-build / microbench reports
// on the S4 stack and a baseline, plus the capacity model arithmetic.
#include <gtest/gtest.h>

#include "bench/harness.h"
#include "src/workload/capacity.h"
#include "src/workload/microbench.h"
#include "src/workload/postmark.h"
#include "src/workload/ssh_build.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

TEST(WorkloadTest, PostMarkSmallRunOnS4) {
  auto server = bench::MakeServer(bench::ServerKind::kS4Nas, [] {
    bench::ServerOptions o;
    o.disk_bytes = 256ull << 20;
    return o;
  }());
  PostMarkConfig config;
  config.file_count = 300;
  config.transactions = 600;
  PostMark pm(server->fs, server->clock.get(), config);
  ASSERT_OK_AND_ASSIGN(PostMarkReport report, pm.Run());
  EXPECT_GE(report.files_created, 300u);
  EXPECT_GT(report.create_phase, 0);
  EXPECT_GT(report.transaction_phase, 0);
  EXPECT_GT(report.reads + report.appends, 0u);
  EXPECT_GT(report.TransactionsPerSecond(config.transactions), 0.0);
}

TEST(WorkloadTest, PostMarkSmallRunOnFfs) {
  auto server = bench::MakeServer(bench::ServerKind::kFfsNfs, [] {
    bench::ServerOptions o;
    o.disk_bytes = 256ull << 20;
    return o;
  }());
  PostMarkConfig config;
  config.file_count = 300;
  config.transactions = 600;
  PostMark pm(server->fs, server->clock.get(), config);
  ASSERT_OK_AND_ASSIGN(PostMarkReport report, pm.Run());
  EXPECT_GE(report.files_created, 300u);
}

TEST(WorkloadTest, PostMarkDeterministic) {
  auto run = [] {
    auto server = bench::MakeServer(bench::ServerKind::kS4Nas, [] {
      bench::ServerOptions o;
      o.disk_bytes = 256ull << 20;
      return o;
    }());
    PostMarkConfig config;
    config.file_count = 100;
    config.transactions = 200;
    PostMark pm(server->fs, server->clock.get(), config);
    auto report = pm.Run();
    S4_CHECK(report.ok());
    return report->transaction_phase;
  };
  EXPECT_EQ(run(), run());
}

TEST(WorkloadTest, SshBuildPhasesOnS4) {
  auto server = bench::MakeServer(bench::ServerKind::kS4Nfs, [] {
    bench::ServerOptions o;
    o.disk_bytes = 512ull << 20;
    return o;
  }());
  SshBuildConfig config;
  config.source_files = 60;
  config.configure_probes = 10;
  config.tree_bytes = 700 * 1024;
  SshBuild build(server->fs, server->clock.get(), config);
  ASSERT_OK_AND_ASSIGN(SshBuildReport report, build.Run());
  EXPECT_GT(report.unpack, 0);
  EXPECT_GT(report.configure, 0);
  EXPECT_GT(report.build, 0);
  // The build phase is the long, CPU-heavy one (as in the paper).
  EXPECT_GT(report.build, report.configure);
}

TEST(WorkloadTest, MicrobenchRuns) {
  auto server = bench::MakeServer(bench::ServerKind::kS4Nfs, [] {
    bench::ServerOptions o;
    o.disk_bytes = 512ull << 20;
    return o;
  }());
  MicrobenchConfig config;
  config.file_count = 500;
  ASSERT_OK_AND_ASSIGN(MicrobenchReport report,
                       RunSmallFileMicrobench(server->fs, server->clock.get(), config));
  EXPECT_GT(report.create, 0);
  EXPECT_GT(report.read, 0);
  EXPECT_GT(report.remove, 0);
}

TEST(CapacityTest, WindowArithmeticMatchesPaper) {
  // 10GB pool at the AFS study's 143MB/day: "over 70 days".
  EXPECT_GT(DetectionWindowDays(10.0, 143.0, 1.0), 70.0);
  // 1GB/day (NT): "10 days worth".
  EXPECT_NEAR(DetectionWindowDays(10.0, 1000.0, 1.0), 10.24, 0.5);
  // 110MB/day (Elephant): "over 90 days".
  EXPECT_GT(DetectionWindowDays(10.0, 110.0, 1.0), 90.0);
}

TEST(CapacityTest, MeasuredRatiosInPaperBallpark) {
  // A day of development replaces roughly half of each touched file's
  // content (compiled trees churn heavily; the paper's CVS+compile
  // measurement behaved similarly).
  CompactionRatios ratios = MeasureCompactionRatios(/*files=*/12, /*versions=*/8,
                                                    /*file_bytes=*/40000,
                                                    /*edit_fraction=*/0.5, /*seed=*/5);
  // Paper: differencing ~3x ("increased space efficiency by 200%"),
  // compression on top ~5x total. Synthetic trees land in the same regime.
  EXPECT_GT(ratios.differencing, 2.0);
  EXPECT_LT(ratios.differencing, 6.0);
  EXPECT_GT(ratios.differencing_and_compression, ratios.differencing);
  EXPECT_GT(ratios.differencing_and_compression, 3.5);
  EXPECT_LT(ratios.differencing_and_compression, 12.0);
}

}  // namespace
}  // namespace s4
