// Shared fixtures/helpers for the S4 test suite.
#ifndef S4_TESTS_TEST_UTIL_H_
#define S4_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "src/drive/s4_drive.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "src/util/rng.h"

namespace s4 {

#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()
#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                      \
  ASSERT_OK_AND_ASSIGN_IMPL_(S4_CONCAT_(t_res_, __LINE__), lhs, rexpr)
#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, rexpr)           \
  auto tmp = (rexpr);                                         \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();           \
  lhs = std::move(tmp).value()

// A small formatted drive on a small simulated disk, suitable for unit
// tests: 64MB disk, 256KB segments, tiny caches so eviction paths are
// exercised, 1-hour detection window.
class DriveTest : public ::testing::Test {
 public:
  static S4DriveOptions SmallOptions() {
    S4DriveOptions opts;
    opts.segment_sectors = 512;  // 256KB
    opts.block_cache_bytes = 1 << 20;
    opts.object_cache_bytes = 64 << 10;
    opts.detection_window = kHour;
    opts.checkpoint_interval_bytes = 4 << 20;
    return opts;
  }

 protected:
  void SetUp() override { SetUpDrive(SmallOptions(), 64ull << 20); }

  void SetUpDrive(const S4DriveOptions& opts, uint64_t disk_bytes) {
    clock_ = std::make_unique<SimClock>(SimTime{1000000});
    device_ = std::make_unique<BlockDevice>(disk_bytes / kSectorSize, clock_.get());
    auto drive = S4Drive::Format(device_.get(), clock_.get(), opts);
    ASSERT_TRUE(drive.ok()) << drive.status().ToString();
    drive_ = std::move(*drive);
    opts_ = opts;
  }

  // Simulates a crash: drops the drive (in-memory caches and buffers die)
  // and re-mounts from the on-disk state.
  void CrashAndRemount() {
    drive_.reset();  // no Unmount: unsynced state is lost, like power loss
    auto drive = S4Drive::Mount(device_.get(), clock_.get(), opts_);
    ASSERT_TRUE(drive.ok()) << drive.status().ToString();
    drive_ = std::move(*drive);
  }

  Credentials User(UserId user, ClientId client = 1) const {
    Credentials c;
    c.user = user;
    c.client = client;
    return c;
  }

  Credentials Admin() const {
    Credentials c;
    c.user = 0;
    c.client = 0;
    c.admin_key = opts_.admin_key;
    return c;
  }

  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<BlockDevice> device_;
  std::unique_ptr<S4Drive> drive_;
  S4DriveOptions opts_;
};

}  // namespace s4

#endif  // S4_TESTS_TEST_UTIL_H_
