// Cleaner behaviour: age-based expiry, the guaranteed detection window
// (safety invariant: nothing inside the window is ever freed), segment
// reclamation, and compaction under space pressure.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace s4 {
namespace {

TEST_F(DriveTest, NothingExpiresInsideWindow) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v2")));
  ASSERT_OK(drive_->Sync(alice));

  // Cleaner runs well inside the 1-hour window: v1 must survive.
  clock_->Advance(10 * kMinute);
  ASSERT_OK_AND_ASSIGN(uint32_t freed, drive_->RunCleanerPass(4));
  (void)freed;
  ASSERT_OK_AND_ASSIGN(Bytes old, drive_->Read(alice, id, 0, 64, t1));
  EXPECT_EQ(StringOf(old), "v1");
}

TEST_F(DriveTest, OldVersionsExpireAfterWindow) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("ancient")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("still current")));
  ASSERT_OK(drive_->Sync(alice));

  clock_->Advance(2 * kHour);  // window is 1 hour
  ASSERT_OK(drive_->RunCleanerPass(4).status());

  // The expired version is refused; the current version is intact.
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, t1).status().code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(cur), "still current");
}

TEST_F(DriveTest, DeletedObjectsFullyReclaimedAfterWindow) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("short-lived")));
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Delete(alice, id));
  ASSERT_OK(drive_->Sync(alice));
  uint64_t history_before = drive_->HistoryPoolBytes();
  EXPECT_GT(history_before, 0u);

  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(4).status());

  // Object gone entirely: even admin time-reads fail, space reclaimed.
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, clock_->Now() - 2 * kHour).status().code(),
            ErrorCode::kNotFound);
  EXPECT_LT(drive_->HistoryPoolBytes(), history_before);
}

TEST_F(DriveTest, HistoryPoolShrinksWhenVersionsAge) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(1);
  Bytes data = rng.RandomBytes(64 * 1024);
  ASSERT_OK(drive_->Write(alice, id, 0, data));
  for (int i = 0; i < 10; ++i) {
    clock_->Advance(kMinute);
    Bytes patch = rng.RandomBytes(64 * 1024);
    ASSERT_OK(drive_->Write(alice, id, 0, patch));
  }
  ASSERT_OK(drive_->Sync(alice));
  uint64_t history_full = drive_->HistoryPoolBytes();
  EXPECT_GT(history_full, 9 * 64 * 1024u);

  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_EQ(drive_->HistoryPoolBytes(), 0u);
}

TEST_F(DriveTest, SegmentsBecomeFreeAgain) {
  // Churn data far past the window; after cleaning, utilization returns to a
  // low level instead of only ever growing.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    Bytes data = rng.RandomBytes(128 * 1024);
    ASSERT_OK(drive_->Write(alice, id, 0, data));
    ASSERT_OK(drive_->Sync(alice));
    clock_->Advance(10 * kMinute);
  }
  double util_before = drive_->SpaceUtilization();
  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(16).status());
  double util_after = drive_->SpaceUtilization();
  EXPECT_LT(util_after, util_before);
  EXPECT_GT(drive_->stats().cleaner_segments_reclaimed, 0u);

  // Current data still correct after reclamation.
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 128 * 1024u);
}

TEST_F(DriveTest, ReclaimedSegmentsAreReusable) {
  // Fill, expire, clean — then keep writing well past the original capacity.
  // Only works if reclaimed segments actually return to service.
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 10 * kMinute;
    return o;
  }(), 16ull << 20);
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(3);
  // Total writes: ~40MB onto a 16MB disk.
  for (int round = 0; round < 320; ++round) {
    Bytes data = rng.RandomBytes(128 * 1024);
    ASSERT_OK(drive_->Write(alice, id, 0, data));
    clock_->Advance(kMinute);
    if (drive_->CleanerNeeded()) {
      ASSERT_OK(drive_->RunCleanerPass(8).status());
    }
  }
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 128 * 1024u);
}

TEST_F(DriveTest, CleanerSafetyUnderMixedWorkload) {
  // Randomized writes/deletes with periodic cleaning; every version that is
  // still inside the window must remain exactly reconstructible (oracle).
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 30 * kMinute;
    return o;
  }(), 64ull << 20);
  Credentials alice = User(100);
  Rng rng(4);
  struct Snapshot {
    SimTime time;
    Bytes content;
  };
  std::map<ObjectId, std::vector<Snapshot>> oracle;
  std::vector<ObjectId> live;

  for (int step = 0; step < 200; ++step) {
    clock_->Advance(kMinute);
    uint64_t action = rng.Below(10);
    if (action < 2 || live.empty()) {
      ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
      live.push_back(id);
      oracle[id].push_back({clock_->Now(), {}});
    } else if (action < 8) {
      ObjectId id = live[rng.Below(live.size())];
      Bytes data = rng.RandomBytes(1 + rng.Below(30000));
      ASSERT_OK(drive_->Write(alice, id, 0, data));
      // Oracle content: overwrite prefix of previous content.
      Bytes full = oracle[id].back().content;
      if (full.size() < data.size()) {
        full.resize(data.size());
      }
      std::copy(data.begin(), data.end(), full.begin());
      oracle[id].push_back({clock_->Now(), full});
    } else if (action == 8) {
      ObjectId id = live[rng.Below(live.size())];
      ASSERT_OK(drive_->Sync(alice));
      (void)id;
    } else {
      size_t pick = rng.Below(live.size());
      ObjectId id = live[pick];
      ASSERT_OK(drive_->Delete(alice, id));
      live.erase(live.begin() + pick);
    }
    if (step % 20 == 19) {
      ASSERT_OK(drive_->RunCleanerPass(4).status());
      // Verify all oracle versions still inside the window.
      SimTime cutoff = clock_->Now() - 30 * kMinute;
      for (const auto& [id, snaps] : oracle) {
        for (const auto& snap : snaps) {
          if (snap.time <= cutoff || snap.content.empty()) {
            continue;
          }
          auto got = drive_->Read(Admin(), id, 0, snap.content.size(), snap.time);
          ASSERT_TRUE(got.ok()) << "obj " << id << " at " << snap.time << ": "
                                << got.status().ToString();
          ASSERT_EQ(*got, snap.content) << "obj " << id << " at " << snap.time;
        }
      }
    }
  }
}

TEST_F(DriveTest, CompactionRelocatesLiveData) {
  // Build fragmented segments (interleave long-lived and short-lived data),
  // expire the short-lived parts, and force compaction.
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 5 * kMinute;
    return o;
  }(), 16ull << 20);
  Credentials alice = User(100);
  Rng rng(5);
  std::vector<std::pair<ObjectId, Bytes>> keepers;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId keeper, drive_->Create(alice, {}));
    Bytes keep_data = rng.RandomBytes(8 * 1024);
    ASSERT_OK(drive_->Write(alice, keeper, 0, keep_data));
    keepers.emplace_back(keeper, keep_data);
    ASSERT_OK_AND_ASSIGN(ObjectId chaff, drive_->Create(alice, {}));
    ASSERT_OK(drive_->Write(alice, chaff, 0, rng.RandomBytes(120 * 1024)));
    ASSERT_OK(drive_->Delete(alice, chaff));
    clock_->Advance(kMinute);
  }
  ASSERT_OK(drive_->Sync(alice));
  clock_->Advance(10 * kMinute);
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(drive_->RunCleanerPass(8, /*force_compaction=*/true).status());
  }
  EXPECT_GT(drive_->stats().cleaner_sectors_copied, 0u);
  // All keepers still intact after relocation.
  for (const auto& [id, data] : keepers) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, data.size()));
    EXPECT_EQ(got, data);
  }
}

TEST_F(DriveTest, CompactionSurvivesCrash) {
  // Relocations bypass the journal; the re-checkpoint + deferred reuse rules
  // must make them crash-safe.
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 5 * kMinute;
    return o;
  }(), 16ull << 20);
  Credentials alice = User(100);
  Rng rng(6);
  std::vector<std::pair<ObjectId, Bytes>> keepers;
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId keeper, drive_->Create(alice, {}));
    Bytes keep_data = rng.RandomBytes(8 * 1024);
    ASSERT_OK(drive_->Write(alice, keeper, 0, keep_data));
    keepers.emplace_back(keeper, keep_data);
    ASSERT_OK_AND_ASSIGN(ObjectId chaff, drive_->Create(alice, {}));
    ASSERT_OK(drive_->Write(alice, chaff, 0, rng.RandomBytes(200 * 1024)));
    ASSERT_OK(drive_->Delete(alice, chaff));
    clock_->Advance(kMinute);
  }
  ASSERT_OK(drive_->Sync(alice));
  clock_->Advance(10 * kMinute);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(drive_->RunCleanerPass(8, /*force_compaction=*/true).status());
  }
  CrashAndRemount();
  for (const auto& [id, data] : keepers) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, data.size()));
    EXPECT_EQ(got, data);
  }
}

// ---------------------------------------------------------------------------
// Incremental cleaner: expiry index, pass budget, idempotence
// ---------------------------------------------------------------------------

TEST_F(DriveTest, CleanerPassOverCleanDriveReadsNothing) {
  // After one pass has expired everything expirable, a second pass must be
  // (near-)free: the expiry index holds no key at or below the cutoff, so no
  // object is visited and no journal sector is read.
  Credentials alice = User(100);
  Rng rng(21);
  for (int obj = 0; obj < 8; ++obj) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
    for (int v = 0; v < 6; ++v) {
      ASSERT_OK(drive_->Write(alice, id, 0, rng.RandomBytes(4 * 1024)));
      clock_->Advance(kMinute);
    }
  }
  ASSERT_OK(drive_->Sync(alice));
  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_EQ(drive_->HistoryPoolBytes(), 0u);

  uint64_t read_before = drive_->metrics().CounterValue("cleaner.walk_sectors_read");
  uint64_t visited_before = drive_->metrics().CounterValue("cleaner.objects_visited");
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_EQ(drive_->metrics().CounterValue("cleaner.walk_sectors_read"), read_before);
  EXPECT_EQ(drive_->metrics().CounterValue("cleaner.objects_visited"), visited_before);
}

TEST_F(DriveTest, CleanerIsIdempotentAfterDeferredCheckpointFrees) {
  // Entries newer than the object's inode checkpoint gate their sectors; the
  // end-of-visit checkpoint + re-walk must free them within the pass, leaving
  // nothing for a second pass to redo on an unchanged drive.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(22);
  for (int v = 0; v < 10; ++v) {
    ASSERT_OK(drive_->Write(alice, id, 0, rng.RandomBytes(8 * 1024)));
    ASSERT_OK(drive_->Sync(alice));
    clock_->Advance(kMinute);
  }
  clock_->Advance(2 * kHour);
  ASSERT_OK_AND_ASSIGN(uint32_t first, drive_->RunCleanerPass(8));
  (void)first;
  EXPECT_EQ(drive_->HistoryPoolBytes(), 0u);
  // The object is live and its chain fully reclaimed: it must have left the
  // expiry index, so the second pass does not even visit it.
  uint64_t visited_before = drive_->metrics().CounterValue("cleaner.objects_visited");
  uint64_t expired_before = drive_->metrics().CounterValue("cleaner.sectors_expired");
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_EQ(drive_->metrics().CounterValue("cleaner.objects_visited"), visited_before);
  EXPECT_EQ(drive_->metrics().CounterValue("cleaner.sectors_expired"), expired_before);
  // Current state intact throughout.
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 8 * 1024u);
}

TEST_F(DriveTest, SectorBudgetPacesThePassAndCarriesWorkOver) {
  // A tiny per-pass budget must (a) stop the pass early, reporting the
  // deferred candidates, and (b) still reclaim everything across repeated
  // passes — pacing trades latency, never correctness.
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.cleaner_pass_sector_budget = 4;
    return o;
  }(), 64ull << 20);
  Credentials alice = User(100);
  Rng rng(23);
  for (int obj = 0; obj < 12; ++obj) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
    for (int v = 0; v < 4; ++v) {
      ASSERT_OK(drive_->Write(alice, id, 0, rng.RandomBytes(4 * 1024)));
      ASSERT_OK(drive_->Sync(alice));
      clock_->Advance(kMinute);
    }
  }
  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(2).status());
  EXPECT_GT(drive_->metrics().CounterValue("cleaner.objects_skipped_budget"), 0u);
  EXPECT_GT(drive_->HistoryPoolBytes(), 0u) << "budget should have deferred some chains";
  for (int pass = 0; pass < 64 && drive_->HistoryPoolBytes() > 0; ++pass) {
    ASSERT_OK(drive_->RunCleanerPass(2).status());
  }
  EXPECT_EQ(drive_->HistoryPoolBytes(), 0u);
}

TEST_F(DriveTest, IncrementalAndFullScanCleanersAgree) {
  // The expiry-index path and the full-scan path must reach the same end
  // state on the same workload: same reclaimed pool, same surviving data.
  auto run = [&](bool incremental) -> uint64_t {
    SetUpDrive([&] {
      S4DriveOptions o = SmallOptions();
      o.cleaner_incremental = incremental;
      return o;
    }(), 64ull << 20);
    Credentials alice = User(100);
    Rng rng(24);  // same seed: identical workload
    std::vector<ObjectId> ids;
    for (int obj = 0; obj < 6; ++obj) {
      auto created = drive_->Create(alice, {});
      EXPECT_TRUE(created.ok());
      ids.push_back(*created);
      for (int v = 0; v < 5; ++v) {
        EXPECT_OK(drive_->Write(alice, ids.back(), 0, rng.RandomBytes(6 * 1024)));
        EXPECT_OK(drive_->Sync(alice));
        clock_->Advance(kMinute);
      }
    }
    EXPECT_OK(drive_->Delete(alice, ids[0]));
    EXPECT_OK(drive_->Sync(alice));
    clock_->Advance(2 * kHour);
    EXPECT_OK(drive_->RunCleanerPass(8).status());
    // Survivors readable, deleted object fully gone.
    for (size_t i = 1; i < ids.size(); ++i) {
      EXPECT_OK(drive_->GetAttr(alice, ids[i]).status());
    }
    EXPECT_EQ(drive_->GetAttr(alice, ids[0]).status().code(), ErrorCode::kNotFound);
    return drive_->HistoryPoolBytes();
  };
  uint64_t incremental_pool = run(true);
  uint64_t full_scan_pool = run(false);
  EXPECT_EQ(incremental_pool, full_scan_pool);
  EXPECT_EQ(incremental_pool, 0u);
}

TEST_F(DriveTest, ExpiryIndexSurvivesRemount) {
  // The index is rebuilt from the object map on mount; history that aged out
  // while the drive was down is still found and reclaimed.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(25);
  for (int v = 0; v < 8; ++v) {
    ASSERT_OK(drive_->Write(alice, id, 0, rng.RandomBytes(8 * 1024)));
    ASSERT_OK(drive_->Sync(alice));
    clock_->Advance(kMinute);
  }
  EXPECT_GT(drive_->HistoryPoolBytes(), 0u);
  CrashAndRemount();
  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_EQ(drive_->HistoryPoolBytes(), 0u);
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 8 * 1024u);
}

TEST_F(DriveTest, VersioningDisabledFreesImmediately) {
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.versioning_enabled = false;
    o.audit_enabled = false;
    return o;
  }(), 16ull << 20);
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v2")));
  // No history pool grows; time-based access is refused.
  EXPECT_EQ(drive_->HistoryPoolBytes(), 0u);
  EXPECT_EQ(drive_->Read(alice, id, 0, 64, t1).status().code(), ErrorCode::kUnimplemented);
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(cur), "v2");
}

// ---------------------------------------------------------------------------
// Space-exhaustion throttle (section 3.3): decay, fair share, reject
// ---------------------------------------------------------------------------

// Lowered thresholds make the throttle observable without actually filling
// the disk: threshold 0 engages the rate check on every write, and a tiny
// fair share makes any burst "over-share".
class ThrottleTest : public DriveTest {
 protected:
  void SetUp() override {}  // each test picks its own options

  void SetUpThrottle(double throttle_threshold, double reject_threshold,
                     double fair_share) {
    S4DriveOptions o = SmallOptions();
    o.throttle_threshold = throttle_threshold;
    o.reject_threshold = reject_threshold;
    o.fair_share_bytes_per_sec = fair_share;
    SetUpDrive(o, 64ull << 20);
  }
};

TEST_F(ThrottleTest, OverShareClientIsDelayedAndDecayRestoresService) {
  SetUpThrottle(/*throttle=*/0.0, /*reject=*/2.0, /*fair_share=*/1000.0);
  Credentials alice = User(100, /*client=*/7);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));

  // First write: no load history yet, full service.
  ASSERT_OK(drive_->Write(alice, id, 0, Bytes(1 << 20, 0xAA)));
  EXPECT_EQ(drive_->stats().throttle_delays, 0u);

  // The burst pushed the client's decayed rate (~1MB/5s) far over the 1KB/s
  // fair share: the next write is progressively delayed, not refused.
  SimTime before = clock_->Now();
  ASSERT_OK(drive_->Write(alice, id, 0, Bytes(kBlockSize, 0xBB)));
  EXPECT_EQ(drive_->stats().throttle_delays, 1u);
  EXPECT_EQ(drive_->stats().throttle_rejects, 0u);
  EXPECT_GT(clock_->Now() - before, 0);

  // Idle far longer than the 5s decay constant. The stale rate is only
  // refreshed by the next accepted write; after it, the exponential decay
  // has pulled the client back under fair share and service is full again.
  clock_->Advance(kMinute);
  ASSERT_OK(drive_->Write(alice, id, 0, Bytes(kBlockSize, 0xCC)));
  uint64_t delays_after_decay_write = drive_->stats().throttle_delays;
  ASSERT_OK(drive_->Write(alice, id, 0, Bytes(kBlockSize, 0xDD)));
  EXPECT_EQ(drive_->stats().throttle_delays, delays_after_decay_write)
      << "decayed client should not be delayed";
}

TEST_F(ThrottleTest, FairShareClientKeepsFullService) {
  SetUpThrottle(/*throttle=*/0.0, /*reject=*/2.0, /*fair_share=*/2.0 * (1 << 20));
  Credentials alice = User(100, /*client=*/7);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));

  // Writing one 4KB block per second is well under the 2MB/s fair share:
  // even with the utilisation gate forced open, nothing is delayed.
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(drive_->Write(alice, id, 0, Bytes(kBlockSize, 0xEE)));
    clock_->Advance(kSecond);
  }
  EXPECT_EQ(drive_->stats().throttle_delays, 0u);
  EXPECT_EQ(drive_->stats().throttle_rejects, 0u);
}

TEST_F(ThrottleTest, NearExhaustionOverShareWritesAreRefused) {
  SetUpThrottle(/*throttle=*/0.0, /*reject=*/0.0, /*fair_share=*/1000.0);
  Credentials alice = User(100, /*client=*/7);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));

  // Build up an over-share rate, then hit the reject wall.
  ASSERT_OK(drive_->Write(alice, id, 0, Bytes(1 << 20, 0xAA)));
  Status s = drive_->Write(alice, id, 0, Bytes(kBlockSize, 0xBB));
  EXPECT_EQ(s.code(), ErrorCode::kThrottled);
  EXPECT_GE(drive_->stats().throttle_rejects, 1u);

  // A different, well-behaved client still gets service.
  Credentials bob = User(101, /*client=*/8);
  ASSERT_OK_AND_ASSIGN(ObjectId id2, drive_->Create(bob, {}));
  EXPECT_OK(drive_->Write(bob, id2, 0, Bytes(kBlockSize, 0xCC)));
}

TEST_F(DriveTest, UnreadableCheckpointDuringFullExpiryIsSurfacedNotSwallowed) {
  // Regression: when the delete-time checkpoint of a fully expired object
  // could not be read back, the cleaner silently skipped releasing the
  // history blocks it references — a permanent, invisible space leak. The
  // pass must still succeed (one bad object must not wedge expiry), but the
  // failure now lands on the obs plane.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, Bytes(kBlockSize, 0x5A)));
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Delete(alice, id));
  ASSERT_OK(drive_->Sync(Admin()));

  auto entry = drive_->DebugObjectEntry(id);
  ASSERT_TRUE(entry.has_value());
  ASSERT_NE(entry->checkpoint_addr, kNullAddr);
  ASSERT_GT(entry->checkpoint_sectors, 0u);

  // Remount so the checkpoint is no longer cached, then corrupt it on disk.
  CrashAndRemount();
  Bytes garbage(entry->checkpoint_sectors * kSectorSize, 0xFF);
  ASSERT_OK(device_->Write(entry->checkpoint_addr, garbage));

  clock_->Advance(2 * kHour);  // age the deleted object out of the window
  ASSERT_OK(drive_->RunCleanerPass(4).status());

  EXPECT_GE(drive_->metrics().CounterValue("cleaner.checkpoint_decode_errors"), 1u);
  // The object itself is still fully expired despite the bad checkpoint.
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, clock_->Now() - 2 * kHour).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(ThrottleTest, AdminIsExemptFromThrottle) {
  SetUpThrottle(/*throttle=*/0.0, /*reject=*/0.0, /*fair_share=*/10.0);
  Credentials admin = Admin();
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(admin, {}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(drive_->Write(admin, id, 0, Bytes(1 << 20, 0xAD)));
  }
  EXPECT_EQ(drive_->stats().throttle_delays, 0u);
  EXPECT_EQ(drive_->stats().throttle_rejects, 0u);
}

}  // namespace
}  // namespace s4
