// Cleaner behaviour: age-based expiry, the guaranteed detection window
// (safety invariant: nothing inside the window is ever freed), segment
// reclamation, and compaction under space pressure.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace s4 {
namespace {

TEST_F(DriveTest, NothingExpiresInsideWindow) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v2")));
  ASSERT_OK(drive_->Sync(alice));

  // Cleaner runs well inside the 1-hour window: v1 must survive.
  clock_->Advance(10 * kMinute);
  ASSERT_OK_AND_ASSIGN(uint32_t freed, drive_->RunCleanerPass(4));
  (void)freed;
  ASSERT_OK_AND_ASSIGN(Bytes old, drive_->Read(alice, id, 0, 64, t1));
  EXPECT_EQ(StringOf(old), "v1");
}

TEST_F(DriveTest, OldVersionsExpireAfterWindow) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("ancient")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("still current")));
  ASSERT_OK(drive_->Sync(alice));

  clock_->Advance(2 * kHour);  // window is 1 hour
  ASSERT_OK(drive_->RunCleanerPass(4).status());

  // The expired version is refused; the current version is intact.
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, t1).status().code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(cur), "still current");
}

TEST_F(DriveTest, DeletedObjectsFullyReclaimedAfterWindow) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("short-lived")));
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Delete(alice, id));
  ASSERT_OK(drive_->Sync(alice));
  uint64_t history_before = drive_->HistoryPoolBytes();
  EXPECT_GT(history_before, 0u);

  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(4).status());

  // Object gone entirely: even admin time-reads fail, space reclaimed.
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, clock_->Now() - 2 * kHour).status().code(),
            ErrorCode::kNotFound);
  EXPECT_LT(drive_->HistoryPoolBytes(), history_before);
}

TEST_F(DriveTest, HistoryPoolShrinksWhenVersionsAge) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(1);
  Bytes data = rng.RandomBytes(64 * 1024);
  ASSERT_OK(drive_->Write(alice, id, 0, data));
  for (int i = 0; i < 10; ++i) {
    clock_->Advance(kMinute);
    Bytes patch = rng.RandomBytes(64 * 1024);
    ASSERT_OK(drive_->Write(alice, id, 0, patch));
  }
  ASSERT_OK(drive_->Sync(alice));
  uint64_t history_full = drive_->HistoryPoolBytes();
  EXPECT_GT(history_full, 9 * 64 * 1024u);

  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(8).status());
  EXPECT_EQ(drive_->HistoryPoolBytes(), 0u);
}

TEST_F(DriveTest, SegmentsBecomeFreeAgain) {
  // Churn data far past the window; after cleaning, utilization returns to a
  // low level instead of only ever growing.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    Bytes data = rng.RandomBytes(128 * 1024);
    ASSERT_OK(drive_->Write(alice, id, 0, data));
    ASSERT_OK(drive_->Sync(alice));
    clock_->Advance(10 * kMinute);
  }
  double util_before = drive_->SpaceUtilization();
  clock_->Advance(2 * kHour);
  ASSERT_OK(drive_->RunCleanerPass(16).status());
  double util_after = drive_->SpaceUtilization();
  EXPECT_LT(util_after, util_before);
  EXPECT_GT(drive_->stats().cleaner_segments_reclaimed, 0u);

  // Current data still correct after reclamation.
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 128 * 1024u);
}

TEST_F(DriveTest, ReclaimedSegmentsAreReusable) {
  // Fill, expire, clean — then keep writing well past the original capacity.
  // Only works if reclaimed segments actually return to service.
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 10 * kMinute;
    return o;
  }(), 16ull << 20);
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(3);
  // Total writes: ~40MB onto a 16MB disk.
  for (int round = 0; round < 320; ++round) {
    Bytes data = rng.RandomBytes(128 * 1024);
    ASSERT_OK(drive_->Write(alice, id, 0, data));
    clock_->Advance(kMinute);
    if (drive_->CleanerNeeded()) {
      ASSERT_OK(drive_->RunCleanerPass(8).status());
    }
  }
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, drive_->GetAttr(alice, id));
  EXPECT_EQ(attrs.size, 128 * 1024u);
}

TEST_F(DriveTest, CleanerSafetyUnderMixedWorkload) {
  // Randomized writes/deletes with periodic cleaning; every version that is
  // still inside the window must remain exactly reconstructible (oracle).
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 30 * kMinute;
    return o;
  }(), 64ull << 20);
  Credentials alice = User(100);
  Rng rng(4);
  struct Snapshot {
    SimTime time;
    Bytes content;
  };
  std::map<ObjectId, std::vector<Snapshot>> oracle;
  std::vector<ObjectId> live;

  for (int step = 0; step < 200; ++step) {
    clock_->Advance(kMinute);
    uint64_t action = rng.Below(10);
    if (action < 2 || live.empty()) {
      ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
      live.push_back(id);
      oracle[id].push_back({clock_->Now(), {}});
    } else if (action < 8) {
      ObjectId id = live[rng.Below(live.size())];
      Bytes data = rng.RandomBytes(1 + rng.Below(30000));
      ASSERT_OK(drive_->Write(alice, id, 0, data));
      // Oracle content: overwrite prefix of previous content.
      Bytes full = oracle[id].back().content;
      if (full.size() < data.size()) {
        full.resize(data.size());
      }
      std::copy(data.begin(), data.end(), full.begin());
      oracle[id].push_back({clock_->Now(), full});
    } else if (action == 8) {
      ObjectId id = live[rng.Below(live.size())];
      ASSERT_OK(drive_->Sync(alice));
      (void)id;
    } else {
      size_t pick = rng.Below(live.size());
      ObjectId id = live[pick];
      ASSERT_OK(drive_->Delete(alice, id));
      live.erase(live.begin() + pick);
    }
    if (step % 20 == 19) {
      ASSERT_OK(drive_->RunCleanerPass(4).status());
      // Verify all oracle versions still inside the window.
      SimTime cutoff = clock_->Now() - 30 * kMinute;
      for (const auto& [id, snaps] : oracle) {
        for (const auto& snap : snaps) {
          if (snap.time <= cutoff || snap.content.empty()) {
            continue;
          }
          auto got = drive_->Read(Admin(), id, 0, snap.content.size(), snap.time);
          ASSERT_TRUE(got.ok()) << "obj " << id << " at " << snap.time << ": "
                                << got.status().ToString();
          ASSERT_EQ(*got, snap.content) << "obj " << id << " at " << snap.time;
        }
      }
    }
  }
}

TEST_F(DriveTest, CompactionRelocatesLiveData) {
  // Build fragmented segments (interleave long-lived and short-lived data),
  // expire the short-lived parts, and force compaction.
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 5 * kMinute;
    return o;
  }(), 16ull << 20);
  Credentials alice = User(100);
  Rng rng(5);
  std::vector<std::pair<ObjectId, Bytes>> keepers;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId keeper, drive_->Create(alice, {}));
    Bytes keep_data = rng.RandomBytes(8 * 1024);
    ASSERT_OK(drive_->Write(alice, keeper, 0, keep_data));
    keepers.emplace_back(keeper, keep_data);
    ASSERT_OK_AND_ASSIGN(ObjectId chaff, drive_->Create(alice, {}));
    ASSERT_OK(drive_->Write(alice, chaff, 0, rng.RandomBytes(120 * 1024)));
    ASSERT_OK(drive_->Delete(alice, chaff));
    clock_->Advance(kMinute);
  }
  ASSERT_OK(drive_->Sync(alice));
  clock_->Advance(10 * kMinute);
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(drive_->RunCleanerPass(8, /*force_compaction=*/true).status());
  }
  EXPECT_GT(drive_->stats().cleaner_sectors_copied, 0u);
  // All keepers still intact after relocation.
  for (const auto& [id, data] : keepers) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, data.size()));
    EXPECT_EQ(got, data);
  }
}

TEST_F(DriveTest, CompactionSurvivesCrash) {
  // Relocations bypass the journal; the re-checkpoint + deferred reuse rules
  // must make them crash-safe.
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.detection_window = 5 * kMinute;
    return o;
  }(), 16ull << 20);
  Credentials alice = User(100);
  Rng rng(6);
  std::vector<std::pair<ObjectId, Bytes>> keepers;
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId keeper, drive_->Create(alice, {}));
    Bytes keep_data = rng.RandomBytes(8 * 1024);
    ASSERT_OK(drive_->Write(alice, keeper, 0, keep_data));
    keepers.emplace_back(keeper, keep_data);
    ASSERT_OK_AND_ASSIGN(ObjectId chaff, drive_->Create(alice, {}));
    ASSERT_OK(drive_->Write(alice, chaff, 0, rng.RandomBytes(200 * 1024)));
    ASSERT_OK(drive_->Delete(alice, chaff));
    clock_->Advance(kMinute);
  }
  ASSERT_OK(drive_->Sync(alice));
  clock_->Advance(10 * kMinute);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(drive_->RunCleanerPass(8, /*force_compaction=*/true).status());
  }
  CrashAndRemount();
  for (const auto& [id, data] : keepers) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, data.size()));
    EXPECT_EQ(got, data);
  }
}

TEST_F(DriveTest, VersioningDisabledFreesImmediately) {
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.versioning_enabled = false;
    o.audit_enabled = false;
    return o;
  }(), 16ull << 20);
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v2")));
  // No history pool grows; time-based access is refused.
  EXPECT_EQ(drive_->HistoryPoolBytes(), 0u);
  EXPECT_EQ(drive_->Read(alice, id, 0, 64, t1).status().code(), ErrorCode::kUnimplemented);
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(cur), "v2");
}

}  // namespace
}  // namespace s4
