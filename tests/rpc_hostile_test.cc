// Hostile clients at the RPC boundary: truncated frames, corrupted CRCs,
// out-of-range opcodes, oversized payloads, and random garbage. The server
// must answer every frame with a well-formed error response, leave an audit
// record (op kInvalid) for the intrusion-diagnosis trail, and keep serving
// legitimate clients — never crash.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class RpcHostileTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    server_ = std::make_unique<S4RpcServer>(drive_.get());
    transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
    client_ = std::make_unique<S4Client>(transport_.get(), User(100));
  }

  // A well-formed Create frame to mutate.
  Bytes ValidFrame() const {
    RpcRequest req;
    req.op = RpcOp::kCreate;
    req.creds.user = 100;
    req.creds.client = 1;
    return req.Encode();
  }

  // Re-seals a mutated frame so only the intended field is wrong.
  static Bytes Reseal(Bytes frame) {
    uint32_t crc = Crc32c(ByteSpan(frame.data(), frame.size() - 4));
    Encoder tail(4);
    tail.PutU32(crc);
    Bytes t = tail.Take();
    std::copy(t.begin(), t.end(), frame.end() - 4);
    return frame;
  }

  // Feeds a frame to the server and requires a decodable error response.
  ErrorCode ExpectRejected(ByteSpan frame) {
    Bytes response = server_->Handle(frame);
    auto resp = RpcResponse::Decode(response);
    EXPECT_TRUE(resp.ok()) << "rejection response must itself be well-formed: "
                           << resp.status().ToString();
    if (!resp.ok()) {
      return ErrorCode::kOk;
    }
    EXPECT_FALSE(resp->ok());
    return resp->code;
  }

  uint64_t RejectedAuditRecords() { return AuditRecordsFor(RpcOp::kInvalid); }

  uint64_t AuditRecordsFor(RpcOp op) {
    AuditQuery query;
    query.op = op;
    auto records = drive_->QueryAudit(Admin(), query);
    EXPECT_TRUE(records.ok()) << records.status().ToString();
    return records.ok() ? records->size() : 0;
  }

  // Hand-rolled kBatch frame whose declared count may lie about the payload.
  // Mirrors RpcBatchRequest::Encode's framing (magic + body + CRC trailer).
  static Bytes RawBatchFrame(uint64_t declared_count,
                             const std::vector<Bytes>& sub_frames,
                             ByteSpan trailing = {}) {
    Encoder body(64);
    body.PutVarint(declared_count);
    for (const Bytes& sub : sub_frames) {
      body.PutLengthPrefixed(sub);
    }
    body.PutBytes(trailing);
    Encoder out(body.size() + 12);
    out.PutU32(0x53344251);  // "S4BQ"
    out.PutBytes(body.bytes());
    out.PutU32(Crc32c(out.bytes()));
    return out.Take();
  }

  // The drive still serves a legitimate client after the abuse.
  void ExpectDriveHealthy() {
    auto id = client_->Create(BytesOf("post-abuse"));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_OK(client_->Write(*id, 0, BytesOf("still alive")));
    auto got = client_->Read(*id, 0, 64);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(StringOf(*got), "still alive");
  }

  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<S4Client> client_;
};

TEST_F(RpcHostileTest, TruncatedFramesAreRejectedAndAudited) {
  Bytes frame = ValidFrame();
  uint64_t audited = RejectedAuditRecords();
  uint64_t rejects = 0;

  // Every prefix shorter than the minimum frame, plus mid-body truncations
  // (which also break the CRC).
  std::vector<size_t> cuts = {0, 1, 4, 7};
  for (size_t len = 8; len < frame.size(); len += 7) {
    cuts.push_back(len);
  }
  for (size_t len : cuts) {
    EXPECT_EQ(ExpectRejected(ByteSpan(frame.data(), len)), ErrorCode::kDataCorruption)
        << "prefix of " << len << " bytes";
    ++rejects;
  }
  // A CRC-valid frame whose body ends mid-field must also fail cleanly.
  Bytes sliced(frame.begin(), frame.begin() + 16);
  sliced.resize(20);
  EXPECT_EQ(ExpectRejected(Reseal(sliced)), ErrorCode::kDataCorruption);
  ++rejects;

  EXPECT_EQ(RejectedAuditRecords(), audited + rejects);
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, CorruptedCrcIsRejectedAndAudited) {
  uint64_t audited = RejectedAuditRecords();
  // Flip one byte anywhere: body corruption and direct CRC-field corruption
  // are both caught by the frame checksum.
  for (size_t pos : {size_t{5}, size_t{10}}) {
    Bytes frame = ValidFrame();
    ASSERT_GT(frame.size(), pos + 4);
    frame[pos] ^= 0xFF;
    EXPECT_EQ(ExpectRejected(frame), ErrorCode::kDataCorruption);
  }
  Bytes frame = ValidFrame();
  frame[frame.size() - 1] ^= 0x01;  // the CRC itself
  EXPECT_EQ(ExpectRejected(frame), ErrorCode::kDataCorruption);

  EXPECT_EQ(RejectedAuditRecords(), audited + 3);
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, OutOfRangeOpcodesAreRejectedAndAudited) {
  uint64_t audited = RejectedAuditRecords();
  // Byte 4 is the op code (after the 4-byte magic). 0 and 21..255 are not
  // Table-1 ops; resealing keeps the CRC valid so the op check itself fires.
  for (uint8_t op : {uint8_t{0}, uint8_t{21}, uint8_t{0x7F}, uint8_t{0xFF}}) {
    Bytes frame = ValidFrame();
    frame[4] = op;
    EXPECT_EQ(ExpectRejected(Reseal(std::move(frame))), ErrorCode::kInvalidArgument)
        << "op byte " << static_cast<int>(op);
  }
  EXPECT_EQ(RejectedAuditRecords(), audited + 4);

  // The audit trail records the rejection under the kInvalid marker with the
  // error that was returned to the wire.
  AuditQuery query;
  query.op = RpcOp::kInvalid;
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> records, drive_->QueryAudit(Admin(), query));
  ASSERT_FALSE(records.empty());
  EXPECT_NE(records.back().result, static_cast<uint8_t>(ErrorCode::kOk));
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, OversizedFrameIsRejectedBeforeDecode) {
  uint64_t audited = RejectedAuditRecords();
  Bytes huge(S4RpcServer::kMaxFrameBytes + 1, 0xAB);
  EXPECT_EQ(ExpectRejected(huge), ErrorCode::kInvalidArgument);
  EXPECT_EQ(RejectedAuditRecords(), audited + 1);

  // At the cap the size gate passes and the CRC check takes over.
  Bytes at_cap(S4RpcServer::kMaxFrameBytes, 0xAB);
  EXPECT_EQ(ExpectRejected(at_cap), ErrorCode::kDataCorruption);
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, RandomGarbageNeverCrashesTheServer) {
  Rng rng(1337);
  uint64_t audited = RejectedAuditRecords();
  int frames = 0;
  for (size_t size : {size_t{1}, size_t{8}, size_t{64}, size_t{512}, size_t{4096}}) {
    for (int i = 0; i < 8; ++i) {
      Bytes garbage = rng.RandomBytes(size);
      Bytes response = server_->Handle(garbage);
      ASSERT_OK_AND_ASSIGN(RpcResponse resp, RpcResponse::Decode(response));
      EXPECT_FALSE(resp.ok()) << "random garbage must never be accepted";
      ++frames;
    }
  }
  EXPECT_EQ(RejectedAuditRecords(), audited + frames);
  EXPECT_EQ(drive_->metrics().CounterValue("rpc.rejected_frames"), audited + frames);
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, BatchWithTruncatedSubRequestIsRejectedAtomically) {
  uint64_t audited = RejectedAuditRecords();
  uint64_t creates = AuditRecordsFor(RpcOp::kCreate);

  // First sub-request is a perfectly valid Create; the second is cut short.
  // The whole envelope must be rejected before ANY sub-op dispatches: the
  // valid Create must leave no trace.
  Bytes good = ValidFrame();
  for (size_t cut : {size_t{0}, size_t{4}, good.size() / 2, good.size() - 1}) {
    Bytes truncated(good.begin(), good.begin() + cut);
    EXPECT_EQ(ExpectRejected(RawBatchFrame(2, {good, truncated})),
              ErrorCode::kDataCorruption)
        << "sub-request cut to " << cut << " bytes";
  }
  EXPECT_EQ(RejectedAuditRecords(), audited + 4);
  EXPECT_EQ(AuditRecordsFor(RpcOp::kCreate), creates) << "batch partially applied";
  EXPECT_EQ(AuditRecordsFor(RpcOp::kBatch), 0u);
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, BatchCountFieldLiesAreRejected) {
  uint64_t audited = RejectedAuditRecords();
  Bytes good = ValidFrame();

  // Empty batch: nothing to apply, nothing to audit per-op.
  EXPECT_EQ(ExpectRejected(RawBatchFrame(0, {})), ErrorCode::kInvalidArgument);
  // Count beyond the hard cap, regardless of actual payload.
  EXPECT_EQ(ExpectRejected(RawBatchFrame(100000, {good})), ErrorCode::kInvalidArgument);
  // Count says 3 sub-requests, body carries 1: decode runs off the end.
  EXPECT_EQ(ExpectRejected(RawBatchFrame(3, {good})), ErrorCode::kDataCorruption);
  // Count says 1 but two follow: the second is trailing garbage.
  EXPECT_EQ(ExpectRejected(RawBatchFrame(1, {good, good})), ErrorCode::kDataCorruption);

  EXPECT_EQ(RejectedAuditRecords(), audited + 4);
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, OversizedBatchIsRejected) {
  uint64_t audited = RejectedAuditRecords();
  uint64_t creates = AuditRecordsFor(RpcOp::kCreate);

  // One past the sub-request cap, every sub individually valid.
  Bytes good = ValidFrame();
  std::vector<Bytes> subs(RpcBatchRequest::kMaxSubRequests + 1, good);
  EXPECT_EQ(ExpectRejected(RawBatchFrame(subs.size(), subs)),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(RejectedAuditRecords(), audited + 1);
  EXPECT_EQ(AuditRecordsFor(RpcOp::kCreate), creates) << "capped batch partially applied";

  // At the cap the batch goes through whole.
  subs.resize(RpcBatchRequest::kMaxSubRequests);
  RpcBatchRequest batch;
  for (size_t i = 0; i < RpcBatchRequest::kMaxSubRequests; ++i) {
    RpcRequest req;
    req.op = RpcOp::kCreate;
    req.creds.user = 100;
    req.creds.client = 1;
    batch.subs.push_back(std::move(req));
  }
  Bytes response = server_->Handle(batch.Encode());
  ASSERT_OK_AND_ASSIGN(RpcBatchResponse resp, RpcBatchResponse::Decode(response));
  EXPECT_EQ(resp.subs.size(), RpcBatchRequest::kMaxSubRequests);
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, NestedBatchFramesAreRejected) {
  uint64_t audited = RejectedAuditRecords();
  Bytes good = ValidFrame();

  // A batch frame as a sub-request: sub-requests must be single-op frames.
  Bytes inner = RawBatchFrame(1, {good});
  EXPECT_EQ(ExpectRejected(RawBatchFrame(1, {inner})), ErrorCode::kDataCorruption);

  // A single-op frame whose op byte is kBatch (21): still out of range for
  // the single-frame decoder, so batches cannot smuggle themselves inline.
  Bytes op21 = ValidFrame();
  op21[4] = 21;
  EXPECT_EQ(ExpectRejected(Reseal(std::move(op21))), ErrorCode::kInvalidArgument);

  EXPECT_EQ(RejectedAuditRecords(), audited + 2);
  ExpectDriveHealthy();
}

TEST_F(RpcHostileTest, ValidFrameWithHostileFieldValuesFailsInTheDrive) {
  // Well-formed frames carrying absurd arguments exercise the drive's own
  // validation, not the frame codec: these are NOT audit-kInvalid rejects.
  uint64_t audited = RejectedAuditRecords();

  RpcRequest req;
  req.creds.user = 100;
  req.creds.client = 1;
  req.op = RpcOp::kRead;
  req.object = ~0ull;  // nonexistent object id
  req.offset = ~0ull;
  req.length = ~0ull;
  Bytes response = server_->Handle(req.Encode());
  ASSERT_OK_AND_ASSIGN(RpcResponse resp, RpcResponse::Decode(response));
  EXPECT_EQ(resp.code, ErrorCode::kNotFound);

  EXPECT_EQ(RejectedAuditRecords(), audited);  // audited as kRead, not kInvalid
  ExpectDriveHealthy();
}

}  // namespace
}  // namespace s4
