// Status / Result<T> contract tests: the error-propagation primitives every
// layer leans on. Covers the [[nodiscard]] sweep's companion guarantees —
// comparison semantics, name exhaustiveness, move-only payloads, and the
// S4_ASSIGN_OR_RETURN comma/paren behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "src/util/status.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

TEST(StatusTest, EqualityComparesCodeAndIgnoresMessage) {
  // The documented contract: messages are human-readable detail, never
  // something callers may branch on.
  EXPECT_EQ(Status::NotFound("object 7"), Status::NotFound("object 8"));
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_NE(Status::NotFound("x"), Status::PermissionDenied("x"));
  EXPECT_NE(Status::Ok(), Status::Internal(""));
  // operator!= is the exact negation of operator==.
  Status a = Status::Throttled("busy");
  Status b = Status::Throttled("very busy");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a != b);
}

TEST(StatusTest, ErrorCodeNamesAreExhaustiveAndDistinct) {
  // Every defined code must have a real name; if a new ErrorCode is added
  // without extending ErrorCodeName, the switch in status.cc fails -Wswitch
  // at compile time and this test fails at runtime (the fallthrough returns
  // "UNKNOWN").
  std::set<std::string> names;
  for (uint8_t raw = 0; raw < kNumErrorCodes; ++raw) {
    std::string name = ErrorCodeName(static_cast<ErrorCode>(raw));
    EXPECT_NE(name, "UNKNOWN") << "ErrorCode value " << int(raw) << " has no name";
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  // Out-of-range values (hostile wire bytes) get the sentinel, not garbage.
  EXPECT_STREQ(ErrorCodeName(static_cast<ErrorCode>(kNumErrorCodes)), "UNKNOWN");
  EXPECT_STREQ(ErrorCodeName(static_cast<ErrorCode>(0xFF)), "UNKNOWN");
}

TEST(StatusTest, ToStringIncludesNameAndMessage) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status::DataCorruption("crc mismatch").ToString(),
            "DATA_CORRUPTION: crc mismatch");
  EXPECT_EQ(Status(ErrorCode::kUnavailable, "").ToString(), "UNAVAILABLE");
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 41);
  // Move the payload out through the rvalue overload.
  std::unique_ptr<int> owned = std::move(r).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 41);

  Result<std::unique_ptr<int>> err = Status::NotFound("no ptr");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, ErrorToValueRoundTrip) {
  // Reassignment flips the variant in both directions without leaking the
  // previous alternative.
  Result<std::string> r = Status::Unavailable("device off");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  r = std::string("back online");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "back online");
  EXPECT_TRUE(r.status().ok());  // status() of an ok Result is kOk
  r = Status::Internal("gone again");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
}

TEST(ResultTest, StatusAccessorOutlivesCall) {
  // status() on an ok Result returns a reference to a static kOk, so it must
  // stay valid after the Result dies.
  const Status* s = nullptr;
  {
    Result<int> r = 1;
    s = &r.status();
  }
  EXPECT_TRUE(s->ok());
}

// --- S4_ASSIGN_OR_RETURN edge cases -----------------------------------

Result<std::pair<int, int>> MakePair(bool ok) {
  if (!ok) {
    return Status::InvalidArgument("no pair");
  }
  return std::pair<int, int>{3, 4};
}

Status UsesCommaTypeLhs(bool ok, int* out) {
  // A declared type containing a comma: wrapped in parentheses, which the
  // macro strips.
  S4_ASSIGN_OR_RETURN((std::pair<int, int> p), MakePair(ok));
  *out = p.first + p.second;
  return Status::Ok();
}

Result<int> Add(int a, int b) { return a + b; }

Status UsesCommaExpression(int* out) {
  // Commas in the *expression* (multiple call arguments) need no wrapping:
  // the macro takes the expression variadically.
  S4_ASSIGN_OR_RETURN(int sum, Add(20, 22));
  *out = sum;
  return Status::Ok();
}

Status UsesBareLhs(bool ok, int* out) {
  S4_ASSIGN_OR_RETURN(auto p, MakePair(ok));
  *out = p.first;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnHandlesCommasInTypeAndExpression) {
  int out = 0;
  ASSERT_OK(UsesCommaTypeLhs(true, &out));
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UsesCommaTypeLhs(false, &out).code(), ErrorCode::kInvalidArgument);

  ASSERT_OK(UsesCommaExpression(&out));
  EXPECT_EQ(out, 42);

  ASSERT_OK(UsesBareLhs(true, &out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(UsesBareLhs(false, &out).code(), ErrorCode::kInvalidArgument);
}

Status AssignsToExistingVariable(int* out) {
  int value = -1;
  S4_ASSIGN_OR_RETURN(value, Add(1, 2));
  *out = value;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnAssignsToExistingVariable) {
  int out = 0;
  ASSERT_OK(AssignsToExistingVariable(&out));
  EXPECT_EQ(out, 3);
}

Status ReturnsEarly(int* side_effect) {
  S4_RETURN_IF_ERROR(Status::OutOfSpace("full"));
  *side_effect = 1;  // must not run
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagatesAndShortCircuits) {
  int side_effect = 0;
  EXPECT_EQ(ReturnsEarly(&side_effect).code(), ErrorCode::kOutOfSpace);
  EXPECT_EQ(side_effect, 0);
}

}  // namespace
}  // namespace s4
