// Foundation utilities: codec round trips (including property sweeps),
// CRC32C vectors, deterministic RNG, and Status/Result plumbing.
#include <gtest/gtest.h>

#include "src/cache/lru.h"
#include "src/util/codec.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: thing");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = Status::Internal("boom");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInternal);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) {
      return Status::InvalidArgument("nope");
    }
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    S4_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 14);
  EXPECT_EQ(outer(true).status().code(), ErrorCode::kInvalidArgument);
}

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU16(0xBEEF);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  Decoder dec(enc.bytes());
  EXPECT_EQ(*dec.U8(), 0xAB);
  EXPECT_EQ(*dec.U16(), 0xBEEF);
  EXPECT_EQ(*dec.U32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*dec.I64(), -42);
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, VarintBoundaries) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 32),
                     ~0ull}) {
    Encoder enc;
    enc.PutVarint(v);
    Decoder dec(enc.bytes());
    ASSERT_OK_AND_ASSIGN(uint64_t got, dec.Varint());
    EXPECT_EQ(got, v);
    EXPECT_TRUE(dec.done());
  }
}

TEST(CodecTest, StringsAndBytes) {
  Encoder enc;
  enc.PutString("hello");
  enc.PutString("");
  enc.PutLengthPrefixed(BytesOf("raw"));
  Decoder dec(enc.bytes());
  EXPECT_EQ(*dec.String(), "hello");
  EXPECT_EQ(*dec.String(), "");
  EXPECT_EQ(StringOf(*dec.LengthPrefixed()), "raw");
}

TEST(CodecTest, UnderrunReportsCorruption) {
  Bytes short_buf = {0x01, 0x02};
  Decoder dec(short_buf);
  EXPECT_EQ(dec.U64().status().code(), ErrorCode::kDataCorruption);
  Decoder dec2(short_buf);
  EXPECT_OK(dec2.U16().status());
  EXPECT_EQ(dec2.U8().status().code(), ErrorCode::kDataCorruption);
}

TEST(CodecTest, MaliciousLengthPrefixRejected) {
  Encoder enc;
  enc.PutVarint(1ull << 40);  // claims a terabyte follows
  enc.PutU8(0);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.LengthPrefixed().status().code(), ErrorCode::kDataCorruption);
}

class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, MixedRoundTrip) {
  Rng rng(GetParam());
  Encoder enc;
  std::vector<std::pair<int, uint64_t>> script;
  std::vector<Bytes> blobs;
  for (int i = 0; i < 200; ++i) {
    int kind = static_cast<int>(rng.Below(5));
    uint64_t v = rng.Next() >> rng.Below(64);
    script.emplace_back(kind, v);
    switch (kind) {
      case 0:
        enc.PutU8(static_cast<uint8_t>(v));
        break;
      case 1:
        enc.PutU32(static_cast<uint32_t>(v));
        break;
      case 2:
        enc.PutU64(v);
        break;
      case 3:
        enc.PutVarint(v);
        break;
      case 4: {
        Bytes b = rng.RandomBytes(rng.Below(64));
        blobs.push_back(b);
        enc.PutLengthPrefixed(b);
        break;
      }
    }
  }
  Decoder dec(enc.bytes());
  size_t blob_index = 0;
  for (const auto& [kind, v] : script) {
    switch (kind) {
      case 0:
        ASSERT_EQ(*dec.U8(), static_cast<uint8_t>(v));
        break;
      case 1:
        ASSERT_EQ(*dec.U32(), static_cast<uint32_t>(v));
        break;
      case 2:
        ASSERT_EQ(*dec.U64(), v);
        break;
      case 3:
        ASSERT_EQ(*dec.Varint(), v);
        break;
      case 4:
        ASSERT_EQ(*dec.LengthPrefixed(), blobs[blob_index++]);
        break;
    }
  }
  EXPECT_TRUE(dec.done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest, ::testing::Values(1, 2, 3, 42, 1234));

TEST(Crc32Test, KnownVectors) {
  // CRC32C("123456789") = 0xE3069283 (iSCSI test vector).
  Bytes v = BytesOf("123456789");
  EXPECT_EQ(Crc32c(v), 0xE3069283u);
  EXPECT_EQ(Crc32c({}), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Rng rng(5);
  Bytes data = rng.RandomBytes(10000);
  uint32_t state = Crc32cInit();
  for (size_t off = 0; off < data.size(); off += 777) {
    size_t n = std::min<size_t>(777, data.size() - off);
    state = Crc32cExtend(state, ByteSpan(data).subspan(off, n));
  }
  EXPECT_EQ(Crc32cFinish(state), Crc32c(data));
}

TEST(Crc32Test, DetectsBitFlips) {
  Rng rng(6);
  Bytes data = rng.RandomBytes(512);
  uint32_t crc = Crc32c(data);
  for (int i = 0; i < 20; ++i) {
    Bytes mutated = data;
    mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
    EXPECT_NE(Crc32c(mutated), crc);
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangeBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, CompressibilityShapesEntropy) {
  Rng rng(8);
  Bytes random = rng.RandomBytes(10000, 0.0);
  Bytes texty = rng.RandomBytes(10000, 0.9);
  // Count distinct bytes as a crude entropy proxy.
  auto distinct = [](const Bytes& b) {
    std::set<uint8_t> s(b.begin(), b.end());
    return s.size();
  };
  EXPECT_GT(distinct(random), 200u);
  EXPECT_LT(distinct(texty), 30u);
}

TEST(LruCacheTest, BasicPutGetEvict) {
  LruCache<int, std::string> cache(100);
  cache.Put(1, "a", 40);
  cache.Put(2, "b", 40);
  ASSERT_NE(cache.Get(1), nullptr);  // 1 is now MRU
  cache.Put(3, "c", 40);             // evicts 2 (LRU)
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.used(), 80u);
}

TEST(LruCacheTest, ReplaceFiresEvictionCallbackWithDisplacedValue) {
  // An entry can carry dirty state whose eviction side effect (e.g.
  // checkpointing an inode) must run even when the entry is *replaced*
  // rather than evicted for space.
  LruCache<int, std::string> cache(1000);
  std::vector<std::pair<int, std::string>> evicted;
  cache.set_evict_fn([&](const int& k, std::string&& v) { evicted.emplace_back(k, v); });

  cache.Put(7, "dirty-v1", 100);
  EXPECT_TRUE(evicted.empty());
  cache.Put(7, "v2", 60);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, 7);
  EXPECT_EQ(evicted[0].second, "dirty-v1");  // the displaced value, not the new one
  EXPECT_EQ(*cache.Peek(7), "v2");
  EXPECT_EQ(cache.used(), 60u);  // cost re-charged, not accumulated
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(LruCacheTest, ReplaceMarksEntryMostRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10, 1);
  cache.Put(2, 20, 1);
  cache.Put(3, 30, 1);
  cache.Put(1, 11, 1);  // replace: 1 becomes MRU, 2 is now LRU
  cache.Put(4, 40, 1);  // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(LruCacheTest, ReplaceGrowthCanTriggerEviction) {
  LruCache<int, std::string> cache(100);
  std::vector<int> evicted;
  cache.set_evict_fn([&](const int& k, std::string&&) { evicted.push_back(k); });
  cache.Put(1, "a", 40);
  cache.Put(2, "b", 40);
  // Replacing 2 with a bigger entry exceeds the budget: 2's old value is
  // displaced (callback) and 1 must be evicted for space (callback).
  cache.Put(2, "big", 90);
  EXPECT_EQ(evicted, (std::vector<int>{2, 1}));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.used(), 90u);
}

TEST(LruCacheTest, RemoveSkipsEvictionCallback) {
  LruCache<int, std::string> cache(100);
  int evictions = 0;
  cache.set_evict_fn([&](const int&, std::string&&) { ++evictions; });
  cache.Put(1, "a", 10);
  EXPECT_TRUE(cache.Remove(1));
  EXPECT_FALSE(cache.Remove(1));
  EXPECT_EQ(evictions, 0);
  EXPECT_EQ(cache.used(), 0u);
}

TEST(LruCacheTest, ClearEvictsEverythingThroughCallback) {
  LruCache<int, std::string> cache(100);
  int evictions = 0;
  cache.set_evict_fn([&](const int&, std::string&&) { ++evictions; });
  cache.Put(1, "a", 10);
  cache.Put(2, "b", 10);
  cache.Clear();
  EXPECT_EQ(evictions, 2);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.used(), 0u);
}

}  // namespace
}  // namespace s4
