// Batched RPC (kBatch) and group-commit write path, exercised end to end:
// S4Client::CallBatch -> one kBatch frame -> S4RpcServer -> per-sub dispatch,
// and the S4FileSystem group-commit mode built on top of it. Covers ordering,
// per-sub error isolation, audit completeness (every sub-op audited plus one
// envelope record), round-trip counts, and durability at commit boundaries.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fs/s4_fs.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class BatchRpcTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    WireStack();
  }

  // (Re)connects the RPC stack to the current drive_; used after remounts.
  void WireStack() {
    server_ = std::make_unique<S4RpcServer>(drive_.get());
    transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
    client_ = std::make_unique<S4Client>(transport_.get(), User(100));
  }

  uint64_t AuditRecordsFor(RpcOp op) {
    AuditQuery query;
    query.op = op;
    auto records = drive_->QueryAudit(Admin(), query);
    EXPECT_TRUE(records.ok()) << records.status().ToString();
    return records.ok() ? records->size() : 0;
  }

  static RpcRequest WriteReq(ObjectId id, uint64_t offset, Bytes data) {
    RpcRequest req;
    req.op = RpcOp::kWrite;
    req.object = id;
    req.offset = offset;
    req.data = std::move(data);
    return req;
  }

  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<S4Client> client_;
};

TEST_F(BatchRpcTest, BatchAppliesSubOpsInOrderWithOneRoundTrip) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));
  uint64_t msgs_before = transport_->stats().messages_sent;

  // Overlapping writes: final contents prove in-order application.
  std::vector<RpcRequest> subs;
  subs.push_back(WriteReq(id, 0, BytesOf("aaaaaaaa")));
  subs.push_back(WriteReq(id, 4, BytesOf("bbbb")));
  subs.push_back(WriteReq(id, 6, BytesOf("cc")));
  RpcRequest sync;
  sync.op = RpcOp::kSync;
  subs.push_back(std::move(sync));

  ASSERT_OK_AND_ASSIGN(std::vector<RpcResponse> resps, client_->CallBatch(subs));
  ASSERT_EQ(resps.size(), 4u);
  for (const RpcResponse& r : resps) {
    EXPECT_TRUE(r.ok()) << static_cast<int>(r.code);
  }
  EXPECT_EQ(transport_->stats().messages_sent, msgs_before + 1)
      << "a batch must be one transport round-trip";

  ASSERT_OK_AND_ASSIGN(Bytes got, client_->Read(id, 0, 8));
  EXPECT_EQ(StringOf(got), "aaaabbcc");
}

TEST_F(BatchRpcTest, PerSubErrorsAreIsolated) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));

  std::vector<RpcRequest> subs;
  subs.push_back(WriteReq(id, 0, BytesOf("first")));
  RpcRequest bad;  // well-formed sub-request that fails in the drive
  bad.op = RpcOp::kRead;
  bad.object = ~0ull;
  bad.length = 8;
  subs.push_back(std::move(bad));
  subs.push_back(WriteReq(id, 5, BytesOf("+last")));

  ASSERT_OK_AND_ASSIGN(std::vector<RpcResponse> resps, client_->CallBatch(subs));
  ASSERT_EQ(resps.size(), 3u);
  EXPECT_TRUE(resps[0].ok());
  EXPECT_EQ(resps[1].code, ErrorCode::kNotFound);
  EXPECT_TRUE(resps[2].ok());

  // Sub-ops after the failing one still applied.
  ASSERT_OK_AND_ASSIGN(Bytes got, client_->Read(id, 0, 10));
  EXPECT_EQ(StringOf(got), "first+last");
}

TEST_F(BatchRpcTest, EveryAppliedSubOpIsAuditedPlusOneEnvelope) {
  uint64_t creates = AuditRecordsFor(RpcOp::kCreate);
  uint64_t envelopes = AuditRecordsFor(RpcOp::kBatch);

  const uint64_t n = 5;
  std::vector<RpcRequest> subs;
  for (uint64_t i = 0; i < n; ++i) {
    RpcRequest req;
    req.op = RpcOp::kCreate;
    subs.push_back(std::move(req));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<RpcResponse> resps, client_->CallBatch(subs));
  ASSERT_EQ(resps.size(), n);

  EXPECT_EQ(AuditRecordsFor(RpcOp::kCreate), creates + n)
      << "every sub-op in an applied batch must leave its own audit record";
  EXPECT_EQ(AuditRecordsFor(RpcOp::kBatch), envelopes + 1);

  // The envelope record counts its sub-ops in the length field and carries
  // the caller's credentials.
  AuditQuery query;
  query.op = RpcOp::kBatch;
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> records,
                       drive_->QueryAudit(Admin(), query));
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().length, n);
  EXPECT_EQ(records.back().user, 100u);

  // The audit trail survives a crash once synced: remount and re-count.
  ASSERT_OK(client_->Sync());
  CrashAndRemount();
  WireStack();
  EXPECT_EQ(AuditRecordsFor(RpcOp::kCreate), creates + n);
  EXPECT_EQ(AuditRecordsFor(RpcOp::kBatch), envelopes + 1);
}

TEST_F(BatchRpcTest, ClientRejectsOversizedAndPassesEmptyBatches) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));

  uint64_t msgs_before = transport_->stats().messages_sent;
  ASSERT_OK_AND_ASSIGN(std::vector<RpcResponse> none, client_->CallBatch({}));
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(transport_->stats().messages_sent, msgs_before) << "empty batch sent a frame";

  std::vector<RpcRequest> subs(RpcBatchRequest::kMaxSubRequests + 1,
                               WriteReq(id, 0, BytesOf("x")));
  auto resps = client_->CallBatch(subs);
  EXPECT_FALSE(resps.ok());
  EXPECT_EQ(resps.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(BatchRpcTest, BatchedWritesAreDurableAfterSyncSubOp) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));
  ASSERT_OK(client_->Sync());

  std::vector<RpcRequest> subs;
  for (uint64_t i = 0; i < 8; ++i) {
    subs.push_back(WriteReq(id, i * 8, Bytes(8, static_cast<uint8_t>('a' + i))));
  }
  RpcRequest sync;
  sync.op = RpcOp::kSync;
  subs.push_back(std::move(sync));
  uint64_t writes_before = device_->stats().writes;
  ASSERT_OK_AND_ASSIGN(std::vector<RpcResponse> resps, client_->CallBatch(subs));
  for (const RpcResponse& r : resps) {
    ASSERT_TRUE(r.ok());
  }
  uint64_t writes_for_batch = device_->stats().writes - writes_before;

  CrashAndRemount();
  WireStack();
  ASSERT_OK_AND_ASSIGN(Bytes got, client_->Read(id, 0, 64));
  ASSERT_EQ(got.size(), 64u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(got[i * 8], static_cast<uint8_t>('a' + i)) << "write " << i << " lost";
  }
  // Group commit: the whole batch journals into few chunk writes, far fewer
  // than one per sub-op.
  EXPECT_LT(writes_for_batch, subs.size() - 1)
      << "batched sub-ops should share chunk writes";
}

class GroupCommitFsTest : public BatchRpcTest {
 protected:
  void MakeFs(uint32_t group_ops, bool batch_rpcs) {
    S4FileSystemOptions opts;
    opts.group_commit_ops = group_ops;
    opts.batch_rpcs = batch_rpcs;
    ASSERT_OK_AND_ASSIGN(fs_, S4FileSystem::Format(client_.get(), "root", opts));
  }

  std::unique_ptr<S4FileSystem> fs_;
};

TEST_F(GroupCommitFsTest, DeferredSyncsCoalesceAndCommitFlushes) {
  MakeFs(/*group_ops=*/8, /*batch_rpcs=*/true);
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "log", 0644));

  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(fs_->WriteFile(f, i * 16, BytesOf("chunk-" + std::to_string(i))));
  }
  const S4FileSystemStats& stats = fs_->stats();
  EXPECT_GT(stats.deferred_syncs, 0u);
  EXPECT_GT(stats.rpc_batches, 0u);
  EXPECT_LT(stats.rpc_syncs, 21u) << "group commit should issue far fewer syncs than ops";

  ASSERT_OK(fs_->Commit());
  uint64_t syncs_after_commit = fs_->stats().rpc_syncs;
  ASSERT_OK(fs_->Commit());  // idempotent when nothing is pending
  EXPECT_EQ(fs_->stats().rpc_syncs, syncs_after_commit);
}

TEST_F(GroupCommitFsTest, CommittedStateSurvivesCrash) {
  MakeFs(/*group_ops=*/8, /*batch_rpcs=*/true);
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "data", 0644));
  ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("must survive")));
  ASSERT_OK(fs_->Commit());

  fs_.reset();
  CrashAndRemount();
  WireStack();
  ASSERT_OK_AND_ASSIGN(fs_, S4FileSystem::Mount(client_.get(), "root"));
  ASSERT_OK_AND_ASSIGN(root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle again, fs_->Lookup(root, "data"));
  ASSERT_OK_AND_ASSIGN(Bytes got, fs_->ReadFile(again, 0, 64));
  EXPECT_EQ(StringOf(got), "must survive");
}

TEST_F(GroupCommitFsTest, StrictModeStillSyncsEveryOp) {
  MakeFs(/*group_ops=*/1, /*batch_rpcs=*/false);
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  uint64_t syncs_before = fs_->stats().rpc_syncs;
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "strict", 0644));
  ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("x")));
  EXPECT_EQ(fs_->stats().rpc_syncs, syncs_before + 2);
  EXPECT_EQ(fs_->stats().deferred_syncs, 0u);
  EXPECT_EQ(fs_->stats().rpc_batches, 0u);
}

}  // namespace
}  // namespace s4
