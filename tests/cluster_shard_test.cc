// ShardRouter: sharded multi-drive S4 with XOR parity redundancy and paced
// online rebuild. Covers deterministic routing/remount, epoch growth,
// degraded current+historical reads after a device loss, survivor audit
// verification, budget-paced rebuild under foreground traffic, and
// idempotent rebuild resume after a power cut on the spare.
#include <gtest/gtest.h>

#include <set>

#include "src/cluster/shard_router.h"
#include "src/fs/s4_fs.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

Bytes BytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string StringOf(const Bytes& b) { return std::string(b.begin(), b.end()); }

class ClusterShardTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;

  void SetUp() override {
    clock_ = std::make_unique<SimClock>(SimTime{1000000});
    opts_ = DriveTest::SmallOptions();
    for (size_t i = 0; i < kShards; ++i) {
      AddDrive();
    }
    auto router = ShardRouter::Format(Endpoints(), clock_.get(), User(100), RouterOpts());
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    router_ = std::move(*router);
  }

  ShardRouter::Options RouterOpts() const {
    ShardRouter::Options o;
    o.admin_key = opts_.admin_key;
    return o;
  }

  // Formats one more drive and returns its endpoint index.
  size_t AddDrive() {
    size_t i = devices_.size();
    devices_.push_back(
        std::make_unique<BlockDevice>((48ull << 20) / kSectorSize, clock_.get()));
    injectors_.push_back(std::make_unique<FaultInjector>());
    devices_.back()->set_fault_injector(injectors_.back().get());
    auto drive = S4Drive::Format(devices_.back().get(), clock_.get(), opts_);
    S4_CHECK(drive.ok());
    drives_.push_back(std::move(*drive));
    servers_.push_back(
        std::make_unique<S4RpcServer>(drives_.back().get(), static_cast<int32_t>(i)));
    transports_.push_back(std::make_unique<LoopbackTransport>(
        servers_.back().get(), clock_.get(), NetModel(), "shard" + std::to_string(i)));
    return i;
  }

  ShardEndpoint Endpoint(size_t i) {
    ShardEndpoint ep;
    ep.drive = drives_[i].get();
    ep.transport = transports_[i].get();
    return ep;
  }

  std::vector<ShardEndpoint> Endpoints(size_t count = kShards) {
    std::vector<ShardEndpoint> eps;
    for (size_t i = 0; i < count; ++i) {
      eps.push_back(Endpoint(i));
    }
    return eps;
  }

  // Remounts drive `i` after a power cut (caches lost, platters intact).
  void RemountDrive(size_t i) {
    injectors_[i]->Reset();
    drives_[i].reset();
    auto drive = S4Drive::Mount(devices_[i].get(), clock_.get(), opts_);
    ASSERT_TRUE(drive.ok()) << drive.status().ToString();
    drives_[i] = std::move(*drive);
    servers_[i] =
        std::make_unique<S4RpcServer>(drives_[i].get(), static_cast<int32_t>(i));
    transports_[i] = std::make_unique<LoopbackTransport>(
        servers_[i].get(), clock_.get(), NetModel(), "shard" + std::to_string(i));
  }

  Credentials User(UserId user, ClientId client = 1) const {
    Credentials c;
    c.user = user;
    c.client = client;
    return c;
  }
  Credentials Admin() const {
    Credentials c;
    c.admin_key = opts_.admin_key;
    return c;
  }

  // Creates `n` objects with distinct content through the router.
  std::vector<std::pair<ObjectId, std::string>> Populate(int n) {
    std::vector<std::pair<ObjectId, std::string>> objs;
    for (int i = 0; i < n; ++i) {
      auto id = router_->Create({});
      S4_CHECK(id.ok());
      std::string content = "object-" + std::to_string(i) + "-content";
      S4_CHECK(router_->Write(*id, 0, BytesOf(content)).ok());
      objs.emplace_back(*id, content);
    }
    return objs;
  }

  // Pumps RebuildTick until completion; returns tick count.
  int PumpRebuild(uint64_t budget) {
    int ticks = 0;
    while (true) {
      auto done = router_->RebuildTick(budget);
      S4_CHECK(done.ok());
      ++ticks;
      if (*done) return ticks;
      S4_CHECK(ticks < 10000);
    }
  }

  std::unique_ptr<SimClock> clock_;
  S4DriveOptions opts_;
  std::vector<std::unique_ptr<BlockDevice>> devices_;
  std::vector<std::unique_ptr<FaultInjector>> injectors_;
  std::vector<std::unique_ptr<S4Drive>> drives_;
  std::vector<std::unique_ptr<S4RpcServer>> servers_;
  std::vector<std::unique_ptr<LoopbackTransport>> transports_;
  std::unique_ptr<ShardRouter> router_;
};

TEST_F(ClusterShardTest, RoutingSpreadsObjectsAcrossShards) {
  auto objs = Populate(24);
  std::set<uint32_t> used;
  for (const auto& [id, content] : objs) {
    const ShardMap::GidInfo* info = router_->map().Find(id);
    ASSERT_NE(info, nullptr);
    used.insert(info->shard);
    ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(id, 0, 64));
    EXPECT_EQ(StringOf(got), content);
  }
  EXPECT_EQ(used.size(), kShards);  // load spread across the array
  // Parity maintenance ran for every mutation.
  EXPECT_GT(router_->rstats().parity_deltas, 0u);
  EXPECT_EQ(router_->rstats().parity_skips, 0u);
}

TEST_F(ClusterShardTest, SyncCleanRemountPreservesRouting) {
  auto objs = Populate(12);
  ASSERT_OK(router_->Delete(objs[4].first));
  ASSERT_OK(router_->Sync());
  router_.reset();
  ASSERT_OK_AND_ASSIGN(
      router_, ShardRouter::Mount(Endpoints(), clock_.get(), User(100), RouterOpts()));
  for (const auto& [id, content] : objs) {
    if (id == objs[4].first) {
      EXPECT_EQ(router_->Read(id, 0, 64).status().code(),
                ErrorCode::kFailedPrecondition);
      continue;
    }
    ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(id, 0, 64));
    EXPECT_EQ(StringOf(got), content);
  }
  // The remounted map keeps minting from the persisted floor.
  ASSERT_OK_AND_ASSIGN(ObjectId fresh, router_->Create({}));
  EXPECT_GT(fresh, objs.back().first);
  ASSERT_OK(router_->Write(fresh, 0, BytesOf("post-remount")));
  ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(fresh, 0, 64));
  EXPECT_EQ(StringOf(got), "post-remount");
}

TEST_F(ClusterShardTest, MountRefusesWithoutSyncCleanShutdown) {
  Populate(6);
  // No Sync: the drives hold creates the persisted map floor never covered.
  router_.reset();
  auto r = ShardRouter::Mount(Endpoints(), clock_.get(), User(100), RouterOpts());
  EXPECT_EQ(r.status().code(), ErrorCode::kDataCorruption);
}

TEST_F(ClusterShardTest, BatchKeepsPerSubOrderAcrossShards) {
  auto objs = Populate(6);
  std::vector<RpcRequest> batch;
  for (const auto& [id, content] : objs) {
    RpcRequest w;
    w.op = RpcOp::kWrite;
    w.object = id;
    w.offset = 0;
    w.data = BytesOf("batched!");
    batch.push_back(std::move(w));
    RpcRequest r;
    r.op = RpcOp::kRead;
    r.object = id;
    r.offset = 0;
    r.length = 64;
    batch.push_back(std::move(r));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<RpcResponse> resps, router_->CallBatch(std::move(batch)));
  ASSERT_EQ(resps.size(), objs.size() * 2);
  for (size_t i = 0; i < resps.size(); i += 2) {
    EXPECT_TRUE(resps[i].ok()) << resps[i].message;
    ASSERT_TRUE(resps[i + 1].ok()) << resps[i + 1].message;
    // The read follows its own shard's write: per-sub order is preserved.
    EXPECT_EQ(StringOf(resps[i + 1].data).substr(0, 8), "batched!");
  }
}

TEST_F(ClusterShardTest, GrowthEpochRoutesNewObjectsToNewShard) {
  auto objs = Populate(10);
  ASSERT_OK(router_->Sync());
  size_t fresh = AddDrive();
  ASSERT_OK(router_->AddShard(Endpoint(fresh)));
  EXPECT_EQ(router_->map().shard_count(), kShards + 1);
  // Old objects did not move...
  for (const auto& [id, content] : objs) {
    ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(id, 0, 64));
    EXPECT_EQ(StringOf(got), content);
    EXPECT_LT(router_->map().Find(id)->shard, kShards);
  }
  // ...and new gids start landing on the grown array, including the spare.
  std::set<uint32_t> used;
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, router_->Create({}));
    ASSERT_OK(router_->Write(id, 0, BytesOf("grown")));
    used.insert(router_->map().Find(id)->shard);
  }
  EXPECT_TRUE(used.count(static_cast<uint32_t>(fresh)) > 0);
  ASSERT_OK(router_->Sync());
  // The grown map survives a remount.
  router_.reset();
  ASSERT_OK_AND_ASSIGN(router_, ShardRouter::Mount(Endpoints(kShards + 1), clock_.get(),
                                                   User(100), RouterOpts()));
  EXPECT_EQ(router_->map().shard_count(), kShards + 1);
}

TEST_F(ClusterShardTest, DegradedReadsServeCurrentAndHistory) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, router_->Create({}));
  ASSERT_OK(router_->Write(id, 0, BytesOf("version-one.")));
  // Surround it with group siblings so reconstruction XORs real content.
  auto siblings = Populate(8);
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(router_->Write(id, 0, BytesOf("version-TWO!")));

  uint32_t shard = router_->map().Find(id)->shard;
  router_->FailShard(shard);
  EXPECT_EQ(router_->shard_state(shard), ShardState::kDead);

  // Current read reconstructs from parity + surviving members.
  ASSERT_OK_AND_ASSIGN(Bytes cur, router_->Read(id, 0, 64));
  EXPECT_EQ(StringOf(cur), "version-TWO!");
  // History read inside the detection window also survives the device loss:
  // the parity object is itself a versioned S4 object.
  ASSERT_OK_AND_ASSIGN(Bytes old, router_->Read(id, 0, 64, t1));
  EXPECT_EQ(StringOf(old), "version-one.");
  // Degraded GetAttr comes from the lane directory.
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs, router_->GetAttr(id));
  EXPECT_EQ(attrs.size, 12u);
  // Siblings on surviving shards read directly; siblings on the dead shard
  // reconstruct.
  for (const auto& [sid, content] : siblings) {
    ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(sid, 0, 64));
    EXPECT_EQ(StringOf(got), content) << sid;
  }
  EXPECT_GT(router_->rstats().degraded_reads, 0u);
  EXPECT_EQ(router_->rstats().shard_failures, 1u);
}

TEST_F(ClusterShardTest, DegradedWritesKeepObjectMutable) {
  auto objs = Populate(8);
  ObjectId id = objs[0].first;
  uint32_t shard = router_->map().Find(id)->shard;
  router_->FailShard(shard);

  ASSERT_OK(router_->Write(id, 0, BytesOf("degraded-mode overwrite")));
  ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(id, 0, 64));
  EXPECT_EQ(StringOf(got), "degraded-mode overwrite");
  ASSERT_OK_AND_ASSIGN(uint64_t new_size, router_->Append(id, BytesOf(" +tail")));
  EXPECT_EQ(new_size, 29u);
  ASSERT_OK_AND_ASSIGN(got, router_->Read(id, 0, 64));
  EXPECT_EQ(StringOf(got), "degraded-mode overwrite +tail");
  ASSERT_OK(router_->Truncate(id, 13));
  ASSERT_OK_AND_ASSIGN(got, router_->Read(id, 0, 64));
  EXPECT_EQ(StringOf(got), "degraded-mode");
  // Permission checks still hold: only the owner (or admin) authenticates.
  router_->set_creds(User(999));
  EXPECT_EQ(router_->Read(id, 0, 64).status().code(), ErrorCode::kPermissionDenied);
  router_->set_creds(User(100));
  // Degraded delete tombstones the lane record.
  ASSERT_OK(router_->Delete(objs[1].first));
  EXPECT_EQ(router_->Read(objs[1].first, 0, 64).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_GT(router_->rstats().degraded_writes, 0u);
}

TEST_F(ClusterShardTest, SurvivorAuditChainsVerifyAfterDeviceLoss) {
  auto objs = Populate(8);
  std::set<uint32_t> data_shards;
  for (const auto& [id, content] : objs) {
    data_shards.insert(router_->map().Find(id)->shard);
  }
  router_->FailShard(router_->map().Find(objs[0].first)->shard);
  ASSERT_OK(router_->Write(objs[0].first, 0, BytesOf("post-loss evidence")));
  // Outcome irrelevant: the read only has to leave audit evidence behind.
  (void)router_->Read(objs[0].first, 0, 64);

  for (size_t i = 0; i < kShards; ++i) {
    if (router_->shard_state(i) == ShardState::kDead) continue;
    // The external auditor's challenge protocol, straight at the survivor.
    S4Client auditor(transports_[i].get(), Admin());
    AuditChainState saved;
    EXPECT_OK(auditor.AuditChallenge(&saved));
    // The survivor's chronicle attributes data ops to the real principal
    // (user 100), not to the array controller.
    if (data_shards.count(static_cast<uint32_t>(i)) == 0) continue;
    AuditQuery q;
    q.user = 100;
    ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> recs,
                         drives_[i]->QueryAudit(Admin(), q));
    EXPECT_FALSE(recs.empty()) << "shard " << i;
  }
}

TEST_F(ClusterShardTest, RebuildRestoresShardUnderForegroundTraffic) {
  auto objs = Populate(12);
  ASSERT_OK(router_->Delete(objs[3].first));
  ASSERT_OK(router_->Sync());
  uint32_t shard = router_->map().Find(objs[0].first)->shard;
  router_->FailShard(shard);

  // Mutations continue while the shard is down...
  ASSERT_OK(router_->Write(objs[0].first, 0, BytesOf("updated while degraded")));

  size_t spare = AddDrive();
  ASSERT_OK(router_->AttachSpare(shard, Endpoint(spare)));
  EXPECT_EQ(router_->shard_state(shard), ShardState::kRebuilding);

  // ...and during the paced rebuild (foreground ops between ticks). A
  // 1-byte budget degenerates to one reconstructed object per tick, making
  // the pacing deterministic.
  int ticks = 0;
  while (true) {
    auto done = router_->RebuildTick(1);
    ASSERT_OK(done.status());
    ++ticks;
    if (*done) break;
    ASSERT_OK(router_->Write(objs[5].first, 0, BytesOf("foreground traffic")));
    ASSERT_LT(ticks, 10000);
  }
  EXPECT_GT(ticks, 1);  // the byte budget actually paced the rebuild
  EXPECT_EQ(router_->shard_state(shard), ShardState::kHealthy);
  EXPECT_FALSE(router_->rebuild_progress().active);

  // The spare is in allocation lockstep with the map.
  EXPECT_EQ(drives_[spare]->PeekNextObjectId(), router_->map().ExpectedNextBackend(shard));

  // Every object reads back with its latest content; tombstones held.
  for (const auto& [id, content] : objs) {
    if (id == objs[3].first) {
      EXPECT_EQ(router_->Read(id, 0, 64).status().code(),
                ErrorCode::kFailedPrecondition);
      continue;
    }
    std::string expect = content;
    if (id == objs[0].first) expect = "updated while degraded";
    if (id == objs[5].first) expect = "foreground traffic";
    ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(id, 0, 64));
    EXPECT_EQ(StringOf(got), expect) << id;
  }
  // New creates route to the rebuilt shard again.
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, router_->Create({}));
    ASSERT_OK(router_->Write(id, 0, BytesOf("fresh")));
  }
  ASSERT_OK(router_->Sync());
}

TEST_F(ClusterShardTest, HistoryReadsSurviveRebuildViaParity) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, router_->Create({}));
  ASSERT_OK(router_->Write(id, 0, BytesOf("pre-loss.")));
  Populate(6);
  ASSERT_OK(router_->Sync());
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);

  uint32_t shard = router_->map().Find(id)->shard;
  router_->FailShard(shard);
  size_t spare = AddDrive();
  ASSERT_OK(router_->AttachSpare(shard, Endpoint(spare)));
  PumpRebuild(1 << 20);

  // Current read hits the rebuilt spare directly.
  ASSERT_OK_AND_ASSIGN(Bytes cur, router_->Read(id, 0, 64));
  EXPECT_EQ(StringOf(cur), "pre-loss.");
  // A history read older than the rebuild cannot come from the spare (its
  // version log starts at the rebuild); the router takes the parity path.
  ASSERT_OK_AND_ASSIGN(Bytes old, router_->Read(id, 0, 64, t1));
  EXPECT_EQ(StringOf(old), "pre-loss.");
}

TEST_F(ClusterShardTest, PowerCutDuringRebuildResumesIdempotently) {
  auto objs = Populate(12);
  ASSERT_OK(router_->Sync());
  uint32_t shard = router_->map().Find(objs[0].first)->shard;
  router_->FailShard(shard);

  size_t spare = AddDrive();
  ASSERT_OK(router_->AttachSpare(shard, Endpoint(spare)));
  // Let one tick land durably, then cut power on the SPARE at its very next
  // write command: the cut strikes mid-reconstruction, after real progress.
  ASSERT_OK_AND_ASSIGN(bool first_done, router_->RebuildTick(1));
  ASSERT_FALSE(first_done);
  injectors_[spare]->SchedulePowerCut(1);
  bool cut = false;
  for (int i = 0; i < 10000; ++i) {
    auto done = router_->RebuildTick(1);
    if (!done.ok()) {
      cut = true;
      break;
    }
    if (*done) break;
  }
  ASSERT_TRUE(cut);
  ASSERT_TRUE(injectors_[spare]->power_cut_fired());
  EXPECT_EQ(router_->shard_state(shard), ShardState::kDead);

  // Power back on, remount the spare, re-attach: the rebuild resumes from
  // the spare's own allocation cursor instead of starting over.
  RemountDrive(spare);
  ASSERT_OK(router_->AttachSpare(shard, Endpoint(spare)));
  uint64_t resumed_from = router_->rebuild_progress().entries_done;
  PumpRebuild(64 << 10);
  // EnsureStarted runs inside the first tick, so re-check after pumping.
  EXPECT_EQ(router_->shard_state(shard), ShardState::kHealthy);
  (void)resumed_from;

  EXPECT_EQ(drives_[spare]->PeekNextObjectId(), router_->map().ExpectedNextBackend(shard));
  for (const auto& [id, content] : objs) {
    ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(id, 0, 64));
    EXPECT_EQ(StringOf(got), content) << id;
  }
  ASSERT_OK(router_->Sync());
  // And the array is sync-clean remountable afterwards.
  router_.reset();
  ASSERT_OK_AND_ASSIGN(
      router_, ShardRouter::Mount(Endpoints(), clock_.get(), User(100), RouterOpts()));
  ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(objs[7].first, 0, 64));
  EXPECT_EQ(StringOf(got), objs[7].second);
}

TEST_F(ClusterShardTest, PartitionPlaneWorksHealthyAndDegraded) {
  auto objs = Populate(6);
  ASSERT_OK(router_->PCreate("home", objs[0].first));
  ASSERT_OK(router_->PCreate("scratch", objs[1].first));
  EXPECT_EQ(router_->PCreate("home", objs[2].first).code(), ErrorCode::kAlreadyExists);
  ASSERT_OK_AND_ASSIGN(ObjectId mounted, router_->PMount("home"));
  EXPECT_EQ(mounted, objs[0].first);
  ASSERT_OK_AND_ASSIGN(auto list, router_->PList());
  EXPECT_EQ(list.size(), 2u);

  // The partition table object is parity-protected like everything else.
  uint32_t ptab_shard = router_->map().Find(kFirstUserObjectId)->shard;
  router_->FailShard(ptab_shard);
  ASSERT_OK_AND_ASSIGN(list, router_->PList());
  EXPECT_EQ(list.size(), 2u);
  ASSERT_OK(router_->PDelete("scratch"));
  ASSERT_OK_AND_ASSIGN(list, router_->PList());
  EXPECT_EQ(list.size(), 1u);
  ASSERT_OK_AND_ASSIGN(mounted, router_->PMount("home"));
  EXPECT_EQ(mounted, objs[0].first);
}

TEST_F(ClusterShardTest, FileSystemMountsTheArray) {
  // S4FileSystem programs against S4ClientApi, so an N-drive array mounts
  // exactly like one drive.
  ASSERT_OK_AND_ASSIGN(auto fs, S4FileSystem::Format(router_.get(), "root"));
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle file, fs->CreateFile(root, "hello.txt", 0644));
  ASSERT_OK(fs->WriteFile(file, 0, BytesOf("fs over shards")));
  ASSERT_OK(fs->Commit());
  ASSERT_OK_AND_ASSIGN(Bytes got, fs->ReadFile(file, 0, 64));
  EXPECT_EQ(StringOf(got), "fs over shards");
  ASSERT_OK_AND_ASSIGN(auto entries, fs->ReadDir(root));
  EXPECT_EQ(entries.size(), 1u);
  // Remount through PMount on the array.
  ASSERT_OK_AND_ASSIGN(auto fs2, S4FileSystem::Mount(router_.get(), "root"));
  ASSERT_OK_AND_ASSIGN(FileHandle root2, fs2->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle file2, fs2->Lookup(root2, "hello.txt"));
  ASSERT_OK_AND_ASSIGN(got, fs2->ReadFile(file2, 0, 64));
  EXPECT_EQ(StringOf(got), "fs over shards");
}

TEST_F(ClusterShardTest, PerEndpointNetCountersAndBusyAttribution) {
  Populate(8);
  ASSERT_OK(router_->Sync());
  for (size_t i = 0; i < kShards; ++i) {
    Counter* sent =
        drives_[i]->metrics().GetCounter("net.shard" + std::to_string(i) + ".messages_sent");
    EXPECT_GT(sent->value(), 0u) << "shard " << i;
  }
  const auto& busy = router_->attributed_busy();
  ASSERT_EQ(busy.size(), kShards);
  for (size_t i = 0; i < kShards; ++i) {
    EXPECT_GT(busy[i], 0) << "shard " << i;
  }
  ASSERT_OK(router_->MaintainShards());
}

TEST_F(ClusterShardTest, CreatesBlockWhileHomeShardIsDownThenResume) {
  auto objs = Populate(4);
  uint32_t next_shard = router_->map().NextCreateDataShard();
  router_->FailShard(next_shard);
  // The next gid's home shard is down: creates fail without consuming gids.
  ObjectId before = router_->map().next_gid();
  EXPECT_EQ(router_->Create({}).status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(router_->map().next_gid(), before);
  // After the rebuild, the same gid mints on the same shard.
  size_t spare = AddDrive();
  ASSERT_OK(router_->AttachSpare(next_shard, Endpoint(spare)));
  PumpRebuild(1 << 20);
  ASSERT_OK_AND_ASSIGN(ObjectId id, router_->Create({}));
  EXPECT_EQ(id, before);
  EXPECT_EQ(router_->map().Find(id)->shard, next_shard);
  ASSERT_OK(router_->Write(id, 0, BytesOf("minted post-rebuild")));
  ASSERT_OK_AND_ASSIGN(Bytes got, router_->Read(id, 0, 64));
  EXPECT_EQ(StringOf(got), "minted post-rebuild");
  (void)objs;
}

}  // namespace
}  // namespace s4
