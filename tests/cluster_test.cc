// Multi-device coordination (paper section 6): mirrored self-securing
// drives with coordinated version history, replica failure/rebuild, and the
// object-placement striped volume with a shared history pool.
#include <gtest/gtest.h>

#include "src/cluster/mirrored_drive.h"
#include "src/cluster/striped_volume.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<SimClock>(SimTime{1000000});
    opts_.segment_sectors = 512;
    opts_.detection_window = kHour;
    for (int i = 0; i < 3; ++i) {
      AddDrive();
    }
  }

  S4Drive* AddDrive() {
    devices_.push_back(
        std::make_unique<BlockDevice>((48ull << 20) / kSectorSize, clock_.get()));
    auto drive = S4Drive::Format(devices_.back().get(), clock_.get(), opts_);
    S4_CHECK(drive.ok());
    drives_.push_back(std::move(*drive));
    return drives_.back().get();
  }

  std::vector<S4Drive*> DrivePtrs() {
    std::vector<S4Drive*> ptrs;
    for (auto& d : drives_) {
      ptrs.push_back(d.get());
    }
    return ptrs;
  }

  Credentials User(UserId user) const {
    Credentials c;
    c.user = user;
    c.client = 1;
    return c;
  }
  Credentials Admin() const {
    Credentials c;
    c.admin_key = opts_.admin_key;
    return c;
  }

  std::unique_ptr<SimClock> clock_;
  S4DriveOptions opts_;
  std::vector<std::unique_ptr<BlockDevice>> devices_;
  std::vector<std::unique_ptr<S4Drive>> drives_;
};

TEST_F(ClusterTest, MirroredWritesVisibleOnAllReplicas) {
  MirroredDrive mirror(DrivePtrs());
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, mirror.Create(alice, {}));
  ASSERT_OK(mirror.Write(alice, id, 0, BytesOf("replicated")));
  ASSERT_OK(mirror.Sync(alice));
  for (auto& drive : drives_) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive->Read(alice, id, 0, 64));
    EXPECT_EQ(StringOf(got), "replicated");
  }
  ASSERT_OK_AND_ASSIGN(bool agree, mirror.ReplicasAgree(Admin(), id));
  EXPECT_TRUE(agree);
}

TEST_F(ClusterTest, CoordinatedTimeBasedReadsAcrossReplicas) {
  MirroredDrive mirror(DrivePtrs());
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, mirror.Create(alice, {}));
  ASSERT_OK(mirror.Write(alice, id, 0, BytesOf("old state")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(mirror.Write(alice, id, 0, BytesOf("new state")));

  // The same time coordinate resolves the same version on every replica —
  // the paper's "recovery operations must also coordinate old versions".
  for (auto& drive : drives_) {
    ASSERT_OK_AND_ASSIGN(Bytes got, drive->Read(alice, id, 0, 64, t1));
    EXPECT_EQ(StringOf(got), "old state");
  }
  ASSERT_OK_AND_ASSIGN(bool agree, mirror.ReplicasAgree(Admin(), id, t1));
  EXPECT_TRUE(agree);
}

TEST_F(ClusterTest, ReadsFailOverWhenReplicaDies) {
  MirroredDrive mirror(DrivePtrs());
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, mirror.Create(alice, {}));
  ASSERT_OK(mirror.Write(alice, id, 0, BytesOf("survivable")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(mirror.Write(alice, id, 0, BytesOf("currently.")));

  mirror.FailReplica(0);
  EXPECT_EQ(mirror.healthy_count(), 2u);
  // Current and historical reads keep working.
  ASSERT_OK_AND_ASSIGN(Bytes cur, mirror.Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(cur), "currently.");
  ASSERT_OK_AND_ASSIGN(Bytes old, mirror.Read(alice, id, 0, 64, t1));
  EXPECT_EQ(StringOf(old), "survivable");
  // Writes continue on the survivors.
  ASSERT_OK(mirror.Write(alice, id, 0, BytesOf("degraded-mode write")));
}

TEST_F(ClusterTest, ReplicaRebuildRestoresCurrentState) {
  MirroredDrive mirror(DrivePtrs());
  Credentials alice = User(100);
  std::vector<std::pair<ObjectId, std::string>> files;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, mirror.Create(alice, {}));
    std::string content = "object " + std::to_string(i);
    ASSERT_OK(mirror.Write(alice, id, 0, BytesOf(content)));
    files.emplace_back(id, content);
  }
  // One object is deleted (its id must stay reserved through rebuild).
  ASSERT_OK(mirror.Delete(alice, files[3].first));

  mirror.FailReplica(1);
  clock_->Advance(kMinute);
  ASSERT_OK(mirror.Write(alice, files[5].first, 0, BytesOf("degraded update")));

  // Bring in a fresh drive and rebuild.
  S4Drive* replacement = AddDrive();
  ASSERT_OK(mirror.ReplaceReplica(1, replacement, Admin()));
  EXPECT_EQ(mirror.healthy_count(), 3u);

  // The rebuilt replica serves current state, with aligned ids, and new
  // writes mirror to it.
  for (const auto& [id, content] : files) {
    if (id == files[3].first) {
      continue;
    }
    std::string expect = id == files[5].first ? "degraded update" : content;
    ASSERT_OK_AND_ASSIGN(Bytes got, replacement->Read(alice, id, 0, 64));
    EXPECT_EQ(StringOf(got), expect) << id;
  }
  ASSERT_OK_AND_ASSIGN(ObjectId fresh, mirror.Create(alice, {}));
  ASSERT_OK(mirror.Write(alice, fresh, 0, BytesOf("post-rebuild")));
  ASSERT_OK_AND_ASSIGN(Bytes got, replacement->Read(alice, fresh, 0, 64));
  EXPECT_EQ(StringOf(got), "post-rebuild");
}

TEST_F(ClusterTest, MirrorDetectsDivergentReplica) {
  MirroredDrive mirror(DrivePtrs());
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, mirror.Create(alice, {}));
  ASSERT_OK(mirror.Write(alice, id, 0, BytesOf("agreed")));
  // Tamper with one replica directly (models a compromised/buggy device).
  ASSERT_OK(drives_[2]->Write(alice, id, 0, BytesOf("DIVERGENT")));
  ASSERT_OK_AND_ASSIGN(bool agree, mirror.ReplicasAgree(Admin(), id));
  EXPECT_FALSE(agree);
}

TEST_F(ClusterTest, StripedVolumeSpreadsObjects) {
  StripedVolume volume(DrivePtrs());
  Credentials alice = User(100);
  Rng rng(41);
  std::vector<std::pair<ObjectId, Bytes>> objects;
  std::set<size_t> used_drives;
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, volume.Create(alice, {}));
    Bytes data = rng.RandomBytes(1 + rng.Below(20000));
    ASSERT_OK(volume.Write(alice, id, 0, data));
    objects.emplace_back(id, std::move(data));
    used_drives.insert(StripedVolume::DriveOf(id));
  }
  EXPECT_EQ(used_drives.size(), 3u);  // load spread across the cluster
  for (const auto& [id, data] : objects) {
    ASSERT_OK_AND_ASSIGN(Bytes got, volume.Read(alice, id, 0, data.size()));
    ASSERT_EQ(got, data);
  }
}

TEST_F(ClusterTest, StripedVolumeHistoryWorksPerObject) {
  StripedVolume volume(DrivePtrs());
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, volume.Create(alice, {}));
  ASSERT_OK(volume.Write(alice, id, 0, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(volume.Write(alice, id, 0, BytesOf("v2")));
  ASSERT_OK_AND_ASSIGN(Bytes old, volume.Read(alice, id, 0, 64, t1));
  EXPECT_EQ(StringOf(old), "v1");
  ASSERT_OK_AND_ASSIGN(std::vector<VersionInfo> versions,
                       volume.GetVersionList(alice, id));
  EXPECT_GE(versions.size(), 3u);
  EXPECT_GT(volume.HistoryPoolBytes(), 0u);
  ASSERT_OK(volume.RunCleanerPasses(2));
}

TEST_F(ClusterTest, StripedVolumeRejectsForeignIds) {
  StripedVolume volume(DrivePtrs());
  Credentials alice = User(100);
  ObjectId bogus = (200ull << 56) | 17;
  EXPECT_EQ(volume.Read(alice, bogus, 0, 10).status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace s4
