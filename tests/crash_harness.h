// Crash-consistency harness: replays a scripted workload against a fresh
// drive through the full RPC stack, cuts power at a chosen disk-write
// boundary via FaultInjector, remounts, and checks the recovery invariants:
//
//   1. Every Sync-acknowledged state is readable after remount: for each
//      snapshot taken at an acknowledged Sync, a time-based admin read at the
//      snapshot time reproduces exactly the modelled contents.
//   2. GetVersionList history is monotone (version times non-decreasing).
//   3. The audit log decodes as a valid prefix (QueryAudit succeeds).
//   4. No S4_CHECK fires anywhere in mount or verification (the process
//      survives; checked implicitly).
//
// Used by fault_injection_test.cc to sweep power cuts across *every* write
// boundary of a workload, in both clean-cut and torn-tail shapes.
#ifndef S4_TESTS_CRASH_HARNESS_H_
#define S4_TESTS_CRASH_HARNESS_H_

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/drive/s4_drive.h"
#include "src/exec/drive_executor.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "tests/test_util.h"

namespace s4 {

// One scripted client operation. `slot` names an object by script-local
// index; the harness maps slots to ObjectIds as Creates succeed.
struct ScriptOp {
  enum Kind { kCreate, kWrite, kAppend, kTruncate, kSetAcl, kSync, kDelete };
  Kind kind;
  size_t slot = 0;
  uint64_t offset = 0;   // kWrite
  uint64_t length = 0;   // kWrite/kAppend payload size; kTruncate new size
  uint8_t fill = 0;      // payload byte pattern
  AclEntry acl;          // kSetAcl
};

class CrashHarness {
 public:
  // With `batched`, mutating ops between Syncs are buffered client-side and
  // sent as one kBatch frame whose last sub-op is the Sync (the group-commit
  // write path). Snapshots are taken only when the Sync sub-op is
  // acknowledged, so the invariant checked is: a sync point is durable as a
  // whole, or the journal ends at the previous intact chunk.
  explicit CrashHarness(std::vector<ScriptOp> script,
                        S4DriveOptions options = DriveTest::SmallOptions(),
                        uint64_t disk_bytes = 64ull << 20, bool batched = false)
      : script_(std::move(script)),
        options_(options),
        disk_bytes_(disk_bytes),
        batched_(batched) {}

  // Runs the script fault-free and returns the number of disk write commands
  // issued after format — the space of crash points to sweep.
  uint64_t CountWritePoints() {
    Run run = StartRun();
    if (::testing::Test::HasFatalFailure()) {
      return 0;
    }
    uint64_t base = run.device->stats().writes;
    ReplayScript(&run);
    EXPECT_TRUE(run.failed_at == kNoFailure)
        << "fault-free run failed at op " << run.failed_at;
    return run.device->stats().writes - base;
  }

  // Cuts power during the kth post-format write command (1-based). With
  // `torn_tail`, half of that write's sectors persist and the next sector is
  // corrupted; otherwise nothing of it reaches the media. Then remounts and
  // verifies all invariants. Reports failures through gtest expectations.
  void RunCrashPoint(uint64_t k, bool torn_tail) {
    SCOPED_TRACE("crash point k=" + std::to_string(k) +
                 (torn_tail ? " (torn tail)" : " (clean cut)"));
    Run run = StartRun();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    if (torn_tail) {
      // persist_sectors is clamped to the faulted write's size, so "half of
      // a large chunk" and "none of a 1-sector journal append" both come out
      // of the same schedule: persist many, corrupt one.
      run.injector.SchedulePowerCut(k, /*persist_sectors=*/options_.segment_sectors / 2,
                                    /*corrupt_sectors=*/1);
    } else {
      run.injector.SchedulePowerCut(k);
    }
    ReplayScript(&run);
    EXPECT_TRUE(run.injector.power_cut_fired()) << "crash point beyond workload";

    // Power restored; the drive object that experienced the cut is dropped
    // cold (its caches die with it), and recovery mounts from the media.
    run.injector.PowerOn();
    run.drive.reset();
    auto mounted = S4Drive::Mount(run.device.get(), run.clock.get(), options_);
    ASSERT_TRUE(mounted.ok()) << "remount failed: " << mounted.status().ToString();
    run.drive = std::move(*mounted);

    // Invariant 5 first: recovering the same media twice is idempotent —
    // same audit chain state, same clean-tail-vs-tamper classification. Must
    // run before the other verifications, whose audited admin ops (version
    // lists, time-based reads) would themselves extend the chain and make
    // the two mounts' states incomparable.
    // Invariant 4 rides along inside VerifyAfterRecovery: every version
    // waypoint rebuilt by recovery points at a reachable, intact journal
    // sector whose newest entry matches the waypoint time. A power cut
    // mid-checkpoint or mid-chunk must never leave a waypoint referencing
    // torn or unreachable territory.
    VerifyAfterRecovery(run);
  }

  // Runs the script fault-free, then counts the disk write commands a clean
  // Unmount issues — the checkpoint plus the three superblock replica
  // rewrites. The space of unmount crash points to sweep.
  uint64_t CountUnmountWrites() {
    Run run = StartRun();
    if (::testing::Test::HasFatalFailure()) {
      return 0;
    }
    ReplayScript(&run);
    EXPECT_TRUE(run.failed_at == kNoFailure)
        << "fault-free run failed at op " << run.failed_at;
    uint64_t base = run.device->stats().writes;
    EXPECT_OK(run.drive->Unmount());
    return run.device->stats().writes - base;
  }

  // Cuts power during the kth write of a clean Unmount (1-based, counted
  // from the unmount's first write), remounts, and verifies every invariant.
  // Sweeping k across CountUnmountWrites() tears the superblock replica
  // rewrites at every boundary: any prefix of the clean-mark must leave a
  // mountable volume no worse than a plain dirty crash at the last Sync.
  void RunUnmountCrashPoint(uint64_t k, bool torn_tail) {
    SCOPED_TRACE("unmount crash point k=" + std::to_string(k) +
                 (torn_tail ? " (torn tail)" : " (clean cut)"));
    Run run = UnmountCrashedRun(k, torn_tail);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    auto mounted = S4Drive::Mount(run.device.get(), run.clock.get(), options_);
    ASSERT_TRUE(mounted.ok()) << "remount failed: " << mounted.status().ToString();
    run.drive = std::move(*mounted);
    VerifyAfterRecovery(run);
  }

  // Counts the disk writes recovery itself performs after a crash at write
  // `k` of the chosen phase (superblock healing, the dirty re-mark, a
  // torn-audit-tail trim) — the space of recovery crash points to sweep.
  // With `during_unmount`, the first crash interrupts a clean Unmount after
  // a fault-free script instead of interrupting the script.
  uint64_t CountRecoveryWrites(uint64_t k, bool torn_tail, bool during_unmount = false) {
    Run run = during_unmount ? UnmountCrashedRun(k, torn_tail)
                             : CrashedRun(k, torn_tail);
    if (::testing::Test::HasFatalFailure()) {
      return 0;
    }
    uint64_t base = run.device->stats().writes;
    auto mounted = S4Drive::Mount(run.device.get(), run.clock.get(), options_);
    EXPECT_TRUE(mounted.ok()) << mounted.status().ToString();
    return run.device->stats().writes - base;
  }

  // Power-cut *during recovery*: crash at write `k_first` (of the workload,
  // or of a clean Unmount with `during_unmount` — the case where recovery
  // itself rewrites superblock replicas), then cut power again during the
  // k_recovery'th write the recovering mount issues. Whatever state that
  // second crash leaves, the next mount must succeed and satisfy every
  // invariant — recovery is restartable from any prefix of its own writes.
  void RunRecoveryCrashPoint(uint64_t k_first, uint64_t k_recovery, bool torn_tail,
                             bool during_unmount = false) {
    SCOPED_TRACE("recovery crash point k=" + std::to_string(k_recovery) + " after " +
                 (during_unmount ? "unmount" : "workload") + " crash at " +
                 std::to_string(k_first) +
                 (torn_tail ? " (torn tail)" : " (clean cut)"));
    Run run = during_unmount ? UnmountCrashedRun(k_first, torn_tail)
                             : CrashedRun(k_first, torn_tail);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    if (torn_tail) {
      run.injector.SchedulePowerCut(k_recovery, /*persist_sectors=*/0,
                                    /*corrupt_sectors=*/1);
    } else {
      run.injector.SchedulePowerCut(k_recovery);
    }
    {
      auto interrupted = S4Drive::Mount(run.device.get(), run.clock.get(), options_);
      EXPECT_TRUE(run.injector.powered_off())
          << "recovery crash point beyond recovery's writes";
      EXPECT_FALSE(interrupted.ok()) << "mount succeeded through a power cut";
    }
    run.injector.PowerOn();
    auto mounted = S4Drive::Mount(run.device.get(), run.clock.get(), options_);
    ASSERT_TRUE(mounted.ok()) << "mount after interrupted recovery failed: "
                              << mounted.status().ToString();
    run.drive = std::move(*mounted);
    VerifyAfterRecovery(run);
  }

 private:
  static constexpr size_t kNoFailure = ~size_t{0};

  // In-memory model of one scripted object.
  struct ModelObject {
    bool created = false;
    bool deleted = false;
    ObjectId id = 0;
    Bytes content;
  };
  // Model state captured at an acknowledged Sync.
  struct Snapshot {
    SimTime time = 0;
    std::vector<ModelObject> objects;
  };

  struct Run;

  // A buffered sub-op awaiting its group-commit batch (batched mode).
  struct PendingSub {
    RpcRequest req;
    size_t script_index = 0;
    std::function<void(Run*)> apply;  // model mutation, run when acked
  };

  struct Run {
    std::unique_ptr<SimClock> clock;
    std::unique_ptr<BlockDevice> device;
    FaultInjector injector;
    std::unique_ptr<S4Drive> drive;
    std::unique_ptr<S4RpcServer> server;
    std::unique_ptr<LoopbackTransport> transport;
    std::unique_ptr<S4Client> client;
    std::vector<ModelObject> model;
    std::vector<Snapshot> snapshots;
    std::vector<PendingSub> pending;  // batched mode: unsent sub-ops
    size_t failed_at = kNoFailure;  // first script op that did not return OK
    // Audit accounting: ops acknowledged in total, and as of the last
    // acknowledged Sync. The Sync body forces the buffered audit tail
    // durable before the ack, so after a crash the recovered log must hold
    // at least one record per op acked before that Sync — a power cut loses
    // at most the post-last-sync tail.
    uint64_t acked_ops = 0;
    uint64_t acked_ops_at_last_sync = 0;
  };

  // Every post-recovery invariant: idempotence first (the other checks'
  // audited admin ops would extend the chain), then snapshot contents,
  // version monotonicity, audit-log survival, and waypoint integrity.
  void VerifyAfterRecovery(Run& run) {
    VerifyRecoveryIdempotent(run);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    VerifySnapshots(run);
    VerifyVersionMonotonicity(run);
    VerifyAuditLog(run);
    EXPECT_OK(run.drive->VerifyAllWaypoints());
  }

  // Runs the script fault-free, then cuts power at write `k` of the clean
  // Unmount. Returns the run with power restored and the drive dropped cold.
  Run UnmountCrashedRun(uint64_t k, bool torn_tail) {
    Run run = StartRun();
    if (::testing::Test::HasFatalFailure() || run.drive == nullptr) {
      return run;
    }
    ReplayScript(&run);
    EXPECT_TRUE(run.failed_at == kNoFailure)
        << "fault-free run failed at op " << run.failed_at;
    if (torn_tail) {
      run.injector.SchedulePowerCut(k, /*persist_sectors=*/0, /*corrupt_sectors=*/1);
    } else {
      run.injector.SchedulePowerCut(k);
    }
    // The unmount dies at the cut; the drive object is dropped cold.
    Status cut = run.drive->Unmount();
    EXPECT_FALSE(cut.ok()) << "unmount succeeded through a power cut";
    EXPECT_TRUE(run.injector.power_cut_fired()) << "crash point beyond the unmount";
    run.injector.PowerOn();
    run.drive.reset();
    return run;
  }

  // Runs the script into a power cut at workload write `k_workload` and
  // returns the run with power restored and the crashed drive dropped cold,
  // ready for a (possibly also-faulted) mount.
  Run CrashedRun(uint64_t k_workload, bool torn_tail) {
    Run run = StartRun();
    if (::testing::Test::HasFatalFailure() || run.drive == nullptr) {
      return run;
    }
    if (torn_tail) {
      run.injector.SchedulePowerCut(k_workload,
                                    /*persist_sectors=*/options_.segment_sectors / 2,
                                    /*corrupt_sectors=*/1);
    } else {
      run.injector.SchedulePowerCut(k_workload);
    }
    ReplayScript(&run);
    EXPECT_TRUE(run.injector.power_cut_fired()) << "crash point beyond workload";
    run.injector.PowerOn();
    run.drive.reset();
    return run;
  }

  Run StartRun() {
    Run run;
    run.clock = std::make_unique<SimClock>(SimTime{1000000});
    run.device = std::make_unique<BlockDevice>(disk_bytes_ / kSectorSize, run.clock.get());
    auto drive = S4Drive::Format(run.device.get(), run.clock.get(), options_);
    EXPECT_TRUE(drive.ok()) << drive.status().ToString();
    if (!drive.ok()) {
      return run;
    }
    run.drive = std::move(*drive);
    // Faults are armed only after format: crash points count the workload's
    // own writes.
    run.device->set_fault_injector(&run.injector);
    run.server = std::make_unique<S4RpcServer>(run.drive.get());
    run.transport = std::make_unique<LoopbackTransport>(run.server.get(), run.clock.get());
    Credentials user;
    user.user = 1;
    user.client = 1;
    run.client = std::make_unique<S4Client>(run.transport.get(), user);
    run.model.resize(SlotCount());
    return run;
  }

  size_t SlotCount() const {
    size_t n = 0;
    for (const auto& op : script_) {
      n = std::max(n, op.slot + 1);
    }
    return n;
  }

  // Applies the script until an op fails (power is gone, or a fault surfaced
  // through the RPC status). Stopping at the first failure mirrors a real
  // client: once the drive reports errors, no further state is trusted.
  void ReplayScript(Run* run) {
    for (size_t i = 0; i < script_.size(); ++i) {
      const ScriptOp& op = script_[i];
      // Space ops out so distinct versions get distinct timestamps.
      run->clock->Advance(10 * kMillisecond);
      if (batched_) {
        if (!BatchedStep(run, i)) {
          return;
        }
        continue;
      }
      ModelObject& m = run->model[op.slot];
      bool ok = false;
      switch (op.kind) {
        case ScriptOp::kCreate: {
          auto r = run->client->Create({});
          ok = r.ok();
          if (ok) {
            m.created = true;
            m.deleted = false;
            m.id = *r;
            m.content.clear();
          }
          break;
        }
        case ScriptOp::kWrite: {
          Bytes data(op.length, op.fill);
          ok = run->client->Write(m.id, op.offset, data).ok();
          if (ok) {
            if (m.content.size() < op.offset + op.length) {
              m.content.resize(op.offset + op.length, 0);
            }
            std::copy(data.begin(), data.end(), m.content.begin() + op.offset);
          }
          break;
        }
        case ScriptOp::kAppend: {
          Bytes data(op.length, op.fill);
          ok = run->client->Append(m.id, data).ok();
          if (ok) {
            m.content.insert(m.content.end(), data.begin(), data.end());
          }
          break;
        }
        case ScriptOp::kTruncate: {
          ok = run->client->Truncate(m.id, op.length).ok();
          if (ok) {
            m.content.resize(op.length, 0);
          }
          break;
        }
        case ScriptOp::kSetAcl:
          ok = run->client->SetAcl(m.id, op.acl).ok();
          break;
        case ScriptOp::kDelete: {
          ok = run->client->Delete(m.id).ok();
          if (ok) {
            m.deleted = true;
            m.content.clear();
          }
          break;
        }
        case ScriptOp::kSync: {
          ok = run->client->Sync().ok();
          if (ok) {
            // The Sync body flushed every record buffered before it; the
            // Sync's own record may still ride the next flush.
            run->acked_ops_at_last_sync = run->acked_ops;
            // Everything acknowledged so far is now durable: snapshot it.
            Snapshot snap;
            snap.time = run->clock->Now();
            snap.objects = run->model;
            run->snapshots.push_back(std::move(snap));
          }
          break;
        }
      }
      if (!ok) {
        run->failed_at = i;
        return;
      }
      ++run->acked_ops;
    }
  }

  // Batched mode: one script op. Mutations are buffered as kBatch sub-ops;
  // the batch is sent when the script reaches a Sync (which rides as the
  // batch's final sub-op) or when an op needs a fresh ObjectId.
  bool BatchedStep(Run* run, size_t i) {
    const ScriptOp& op = script_[i];
    const size_t slot = op.slot;
    switch (op.kind) {
      case ScriptOp::kCreate: {
        // Later buffered sub-ops would need the new id before it exists:
        // drain the open batch (no sync — no snapshot), then create now.
        if (!FlushBatch(run)) {
          return false;
        }
        auto r = run->client->Create({});
        if (!r.ok()) {
          run->failed_at = i;
          return false;
        }
        ModelObject& m = run->model[slot];
        m.created = true;
        m.deleted = false;
        m.id = *r;
        m.content.clear();
        ++run->acked_ops;
        return true;
      }
      case ScriptOp::kWrite: {
        PendingSub sub;
        sub.req.op = RpcOp::kWrite;
        sub.req.object = run->model[slot].id;
        sub.req.offset = op.offset;
        sub.req.data = Bytes(op.length, op.fill);
        sub.script_index = i;
        sub.apply = [slot, op](Run* r) {
          ModelObject& m = r->model[slot];
          Bytes data(op.length, op.fill);
          if (m.content.size() < op.offset + op.length) {
            m.content.resize(op.offset + op.length, 0);
          }
          std::copy(data.begin(), data.end(), m.content.begin() + op.offset);
        };
        run->pending.push_back(std::move(sub));
        return true;
      }
      case ScriptOp::kAppend: {
        PendingSub sub;
        sub.req.op = RpcOp::kAppend;
        sub.req.object = run->model[slot].id;
        sub.req.data = Bytes(op.length, op.fill);
        sub.script_index = i;
        sub.apply = [slot, op](Run* r) {
          Bytes data(op.length, op.fill);
          Bytes& c = r->model[slot].content;
          c.insert(c.end(), data.begin(), data.end());
        };
        run->pending.push_back(std::move(sub));
        return true;
      }
      case ScriptOp::kTruncate: {
        PendingSub sub;
        sub.req.op = RpcOp::kTruncate;
        sub.req.object = run->model[slot].id;
        sub.req.length = op.length;
        sub.script_index = i;
        sub.apply = [slot, op](Run* r) { r->model[slot].content.resize(op.length, 0); };
        run->pending.push_back(std::move(sub));
        return true;
      }
      case ScriptOp::kSetAcl: {
        PendingSub sub;
        sub.req.op = RpcOp::kSetAcl;
        sub.req.object = run->model[slot].id;
        sub.req.acl_entry = op.acl;
        sub.script_index = i;
        run->pending.push_back(std::move(sub));
        return true;
      }
      case ScriptOp::kDelete: {
        PendingSub sub;
        sub.req.op = RpcOp::kDelete;
        sub.req.object = run->model[slot].id;
        sub.script_index = i;
        sub.apply = [slot](Run* r) {
          r->model[slot].deleted = true;
          r->model[slot].content.clear();
        };
        run->pending.push_back(std::move(sub));
        return true;
      }
      case ScriptOp::kSync: {
        PendingSub sub;
        sub.req.op = RpcOp::kSync;
        sub.script_index = i;
        run->pending.push_back(std::move(sub));
        return FlushBatch(run);
      }
    }
    return false;
  }

  // Sends the open batch as one kBatch frame and applies model mutations for
  // acknowledged sub-ops. If the batch ended in an acknowledged Sync, the
  // modelled state becomes a snapshot (the group-commit durability point).
  bool FlushBatch(Run* run) {
    if (run->pending.empty()) {
      return true;
    }
    std::vector<RpcRequest> subs;
    subs.reserve(run->pending.size());
    for (const PendingSub& p : run->pending) {
      subs.push_back(p.req);
    }
    auto resps = run->client->CallBatch(std::move(subs));
    if (!resps.ok()) {
      run->failed_at = run->pending.front().script_index;
      run->pending.clear();
      return false;
    }
    bool synced = false;
    for (size_t j = 0; j < run->pending.size(); ++j) {
      PendingSub& p = run->pending[j];
      if (!(*resps)[j].ok()) {
        run->failed_at = p.script_index;
        run->pending.clear();
        return false;
      }
      if (p.apply) {
        p.apply(run);
      }
      if (p.req.op == RpcOp::kSync) {
        // Sub-ops before the Sync in this batch had their records flushed
        // by the Sync sub-op's body.
        run->acked_ops_at_last_sync = run->acked_ops;
        synced = true;
      } else {
        ++run->acked_ops;
      }
    }
    run->pending.clear();
    if (synced) {
      // Nudge past the batch's execution instant so time-based reads at the
      // snapshot time see every sub-op, deletions included.
      run->clock->Advance(kMillisecond);
      Snapshot snap;
      snap.time = run->clock->Now();
      snap.objects = run->model;
      run->snapshots.push_back(std::move(snap));
    }
    return true;
  }

  Credentials Admin() const {
    Credentials c;
    c.user = 0;
    c.client = 0;
    c.admin_key = options_.admin_key;
    return c;
  }

  // Invariant 1: each snapshot's contents are reproduced by time-based
  // admin reads at the snapshot time.
  void VerifySnapshots(Run& run) {
    for (size_t si = 0; si < run.snapshots.size(); ++si) {
      const Snapshot& snap = run.snapshots[si];
      SCOPED_TRACE("snapshot " + std::to_string(si) + " at t=" + std::to_string(snap.time));
      for (size_t slot = 0; slot < snap.objects.size(); ++slot) {
        const ModelObject& m = snap.objects[slot];
        if (!m.created) {
          continue;
        }
        SCOPED_TRACE("slot " + std::to_string(slot) + " object " + std::to_string(m.id));
        auto attr = run.drive->GetAttr(Admin(), m.id, snap.time);
        if (m.deleted) {
          EXPECT_FALSE(attr.ok()) << "deleted object readable at snapshot time";
          continue;
        }
        ASSERT_TRUE(attr.ok()) << attr.status().ToString();
        EXPECT_EQ(attr->size, m.content.size());
        if (m.content.empty()) {
          continue;
        }
        auto data = run.drive->Read(Admin(), m.id, 0, m.content.size(), snap.time);
        ASSERT_TRUE(data.ok()) << data.status().ToString();
        EXPECT_EQ(*data, m.content) << "content mismatch after recovery";
      }
    }
  }

  // Invariant 2: version history of every surviving object is monotone.
  void VerifyVersionMonotonicity(Run& run) {
    for (const ModelObject& m : run.model) {
      if (!m.created) {
        continue;
      }
      auto versions = run.drive->GetVersionList(Admin(), m.id);
      if (!versions.ok()) {
        continue;  // object never made it to disk, or was deleted: fine
      }
      SimTime prev = 0;
      for (const VersionInfo& v : *versions) {
        EXPECT_GE(v.time, prev) << "version list not monotone for object " << m.id;
        prev = v.time;
      }
    }
  }

  // Invariant 3: the audit log decodes as a valid prefix, the power cut is
  // classified as a torn flush (never tampering), and at most the
  // post-last-sync tail of records is missing.
  void VerifyAuditLog(Run& run) {
    auto records = run.drive->QueryAudit(Admin(), AuditQuery{});
    EXPECT_TRUE(records.ok()) << "audit log unreadable after recovery: "
                              << records.status().ToString();
    const MetricRegistry& reg = run.drive->metrics();
    EXPECT_EQ(reg.CounterValue("audit.chain_breaks"), 0u)
        << "power cut misclassified as tampering (chain break)";
    if (records.ok()) {
      // One record per acknowledged RPC, and the Sync body forces the
      // buffered tail durable before acking — so everything acked before
      // the last acknowledged Sync must have survived.
      EXPECT_GE(records->size(), run.acked_ops_at_last_sync)
          << "audit records acked before the last Sync were lost";
    }
  }

  // Recovery idempotence: mounting the same post-crash media again must land
  // on the identical audit-chain state and still report no tampering (the
  // first mount's clean-tail trim, if any, must be repeatable).
  void VerifyRecoveryIdempotent(Run& run) {
    AuditChainState first = run.drive->DebugAuditChainState();
    uint64_t clean_tails = run.drive->metrics().CounterValue("audit.clean_tail_truncations");
    run.drive.reset();
    auto again = S4Drive::Mount(run.device.get(), run.clock.get(), options_);
    ASSERT_TRUE(again.ok()) << "second remount failed: " << again.status().ToString();
    run.drive = std::move(*again);
    EXPECT_TRUE(run.drive->DebugAuditChainState() == first)
        << "audit chain state differs between two recoveries of the same media";
    EXPECT_EQ(run.drive->metrics().CounterValue("audit.chain_breaks"), 0u)
        << "second recovery flagged tampering that the first did not";
    // The first mount's trim only becomes durable at its next checkpoint;
    // dropping it cold leaves the same media, so the second mount repeats
    // the same classification.
    EXPECT_EQ(run.drive->metrics().CounterValue("audit.clean_tail_truncations"), clean_tails)
        << "clean-tail classification not idempotent";
  }

  std::vector<ScriptOp> script_;
  S4DriveOptions options_;
  uint64_t disk_bytes_;
  bool batched_;
};

// Concurrent crash mode: N client threads push append streams (with periodic
// Syncs) through a multi-worker DriveExecutor at one drive, power is cut at
// the kth post-format disk write, and recovery is verified. The serial
// harness's content-snapshot checks do not transfer (which ops were
// acknowledged before the cut is scheduling-dependent), so the invariants
// here are the ones concurrency must not weaken:
//
//   1. Remount succeeds, twice, with identical audit-chain state
//      (recovery idempotence) and zero chain breaks — a power cut under
//      concurrent load is still classified as a torn flush, never tampering.
//   2. Per-object ordering: each thread appends a distinct per-step fill
//      byte to its own object, so the recovered content must be an exact
//      prefix of that thread's submission sequence. Any executor reordering
//      of same-stripe ops would surface as a non-prefix.
//   3. Version history of every surviving object is monotone.
//   4. Every recovered waypoint is intact.
class ConcurrentCrashHarness {
 public:
  ConcurrentCrashHarness(int threads, int appends_per_thread,
                         S4DriveOptions options = DriveTest::SmallOptions(),
                         uint64_t disk_bytes = 64ull << 20)
      : threads_(threads),
        appends_per_thread_(appends_per_thread),
        options_(options),
        disk_bytes_(disk_bytes) {}

  // Fault-free concurrent run; returns the number of post-setup disk write
  // commands. Interleaving is scheduling-dependent, so treat the count as a
  // scale estimate, not an exact sweep bound: pick crash points well inside.
  uint64_t CountWritePoints() {
    Run run = StartRun();
    if (::testing::Test::HasFatalFailure()) {
      return 0;
    }
    uint64_t base = run.device->stats().writes;
    RunWorkload(&run);
    return run.device->stats().writes - base;
  }

  // Cuts power during the kth post-setup write command (1-based). Returns
  // false (without failing) when the nondeterministic interleave finished in
  // fewer than k writes — callers sweep points inside CountWritePoints().
  bool RunConcurrentCrashPoint(uint64_t k, bool torn_tail) {
    SCOPED_TRACE("concurrent crash point k=" + std::to_string(k) +
                 (torn_tail ? " (torn tail)" : " (clean cut)"));
    Run run = StartRun();
    if (::testing::Test::HasFatalFailure()) {
      return false;
    }
    if (torn_tail) {
      run.injector.SchedulePowerCut(k, /*persist_sectors=*/options_.segment_sectors / 2,
                                    /*corrupt_sectors=*/1);
    } else {
      run.injector.SchedulePowerCut(k);
    }
    RunWorkload(&run);
    if (!run.injector.power_cut_fired()) {
      return false;
    }

    run.injector.PowerOn();
    run.drive.reset();
    auto mounted = S4Drive::Mount(run.device.get(), run.clock.get(), options_);
    EXPECT_TRUE(mounted.ok()) << "remount failed: " << mounted.status().ToString();
    if (!mounted.ok()) {
      return true;
    }
    run.drive = std::move(*mounted);

    VerifyRecoveryIdempotent(&run);
    if (::testing::Test::HasFatalFailure()) {
      return true;
    }
    VerifyPerObjectPrefix(run);
    VerifyVersionMonotonicity(run);
    VerifyAuditChain(run);
    EXPECT_OK(run.drive->VerifyAllWaypoints());
    return true;
  }

 private:
  struct Run {
    std::unique_ptr<SimClock> clock;
    std::unique_ptr<BlockDevice> device;
    FaultInjector injector;
    std::unique_ptr<S4Drive> drive;
    std::unique_ptr<S4RpcServer> server;
    std::vector<ObjectId> objects;  // one per client thread
  };

  static constexpr uint64_t kAppendBytes = 512;
  static constexpr int kSyncEvery = 8;  // appends between Sync barriers

  // Distinct fill byte for thread t's mth append (nonzero so recovered
  // content can never be confused with zero-fill).
  static uint8_t FillByte(int t, int m) {
    return static_cast<uint8_t>(1 + (static_cast<unsigned>(t) * 37 + static_cast<unsigned>(m)) % 251);
  }

  Credentials User() const {
    Credentials c;
    c.user = 1;
    c.client = 1;
    return c;
  }

  Credentials Admin() const {
    Credentials c;
    c.user = 0;
    c.client = 0;
    c.admin_key = options_.admin_key;
    return c;
  }

  Run StartRun() {
    Run run;
    run.clock = std::make_unique<SimClock>(SimTime{1000000});
    run.device = std::make_unique<BlockDevice>(disk_bytes_ / kSectorSize, run.clock.get());
    auto drive = S4Drive::Format(run.device.get(), run.clock.get(), options_);
    EXPECT_TRUE(drive.ok()) << drive.status().ToString();
    if (!drive.ok()) {
      return run;
    }
    run.drive = std::move(*drive);
    run.server = std::make_unique<S4RpcServer>(run.drive.get());
    // Objects are created serially before the clock starts racing: the
    // concurrent phase then has a stable object->thread mapping.
    for (int t = 0; t < threads_; ++t) {
      auto created = run.drive->Create(User(), {});
      EXPECT_TRUE(created.ok()) << created.status().ToString();
      if (!created.ok()) {
        return run;
      }
      run.objects.push_back(*created);
    }
    // Faults armed only after setup: crash points count workload writes.
    run.device->set_fault_injector(&run.injector);
    return run;
  }

  Bytes AppendFrame(ObjectId id, uint8_t fill) const {
    RpcRequest req;
    req.op = RpcOp::kAppend;
    req.creds = User();
    req.object = id;
    req.data.assign(kAppendBytes, fill);
    return req.Encode();
  }

  Bytes SyncFrame() const {
    RpcRequest req;
    req.op = RpcOp::kSync;
    req.creds = User();
    return req.Encode();
  }

  // N client threads submit concurrently; executor workers execute
  // concurrently. Responses are deliberately discarded — after the power cut
  // every remaining op fails, and the verifications below only rely on what
  // reached the media.
  void RunWorkload(Run* run) {
    DriveExecutor::Options eopts;
    eopts.workers = threads_;
    DriveExecutor exec(run->clock.get(), {run->drive.get()}, eopts);
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      clients.emplace_back([this, run, &exec, t] {
        for (int m = 0; m < appends_per_thread_; ++m) {
          exec.SubmitFrame(0, run->server.get(),
                           AppendFrame(run->objects[static_cast<size_t>(t)], FillByte(t, m)));
          if ((m + 1) % kSyncEvery == 0) {
            exec.SubmitFrame(0, run->server.get(), SyncFrame());
          }
        }
      });
    }
    for (std::thread& c : clients) {
      c.join();
    }
    exec.Drain();
  }

  // Invariant 2: recovered content of thread t's object is an exact prefix
  // of its submitted append sequence.
  void VerifyPerObjectPrefix(Run& run) {
    for (int t = 0; t < threads_; ++t) {
      ObjectId id = run.objects[static_cast<size_t>(t)];
      SCOPED_TRACE("thread " + std::to_string(t) + " object " + std::to_string(id));
      auto attr = run.drive->GetAttr(Admin(), id);
      if (!attr.ok()) {
        continue;  // nothing of this object reached the media: fine
      }
      EXPECT_EQ(attr->size % kAppendBytes, 0u)
          << "recovered size is not a whole number of appends";
      uint64_t recovered = attr->size / kAppendBytes;
      EXPECT_LE(recovered, static_cast<uint64_t>(appends_per_thread_));
      if (attr->size == 0) {
        continue;
      }
      auto data = run.drive->Read(Admin(), id, 0, attr->size);
      ASSERT_TRUE(data.ok()) << data.status().ToString();
      for (uint64_t m = 0; m < recovered; ++m) {
        uint8_t want = FillByte(t, static_cast<int>(m));
        for (uint64_t b = 0; b < kAppendBytes; ++b) {
          if ((*data)[m * kAppendBytes + b] != want) {
            FAIL() << "append " << m << " byte " << b << " is "
                   << int((*data)[m * kAppendBytes + b]) << ", want " << int(want)
                   << ": same-object ordering violated or torn append applied";
          }
        }
      }
    }
  }

  // Invariant 3: version history of every surviving object is monotone.
  void VerifyVersionMonotonicity(Run& run) {
    for (ObjectId id : run.objects) {
      auto versions = run.drive->GetVersionList(Admin(), id);
      if (!versions.ok()) {
        continue;
      }
      SimTime prev = 0;
      for (const VersionInfo& v : *versions) {
        EXPECT_GE(v.time, prev) << "version list not monotone for object " << id;
        prev = v.time;
      }
    }
  }

  // Invariant 1b: the chronicle decodes and the cut never reads as tampering.
  void VerifyAuditChain(Run& run) {
    auto records = run.drive->QueryAudit(Admin(), AuditQuery{});
    EXPECT_TRUE(records.ok()) << "audit log unreadable after recovery: "
                              << records.status().ToString();
    EXPECT_EQ(run.drive->metrics().CounterValue("audit.chain_breaks"), 0u)
        << "power cut under concurrent load misclassified as tampering";
  }

  // Invariant 1a: recovery idempotence, same criteria as the serial harness.
  void VerifyRecoveryIdempotent(Run* run) {
    AuditChainState first = run->drive->DebugAuditChainState();
    uint64_t clean_tails = run->drive->metrics().CounterValue("audit.clean_tail_truncations");
    run->drive.reset();
    auto again = S4Drive::Mount(run->device.get(), run->clock.get(), options_);
    ASSERT_TRUE(again.ok()) << "second remount failed: " << again.status().ToString();
    run->drive = std::move(*again);
    EXPECT_TRUE(run->drive->DebugAuditChainState() == first)
        << "audit chain state differs between two recoveries of the same media";
    EXPECT_EQ(run->drive->metrics().CounterValue("audit.chain_breaks"), 0u)
        << "second recovery flagged tampering that the first did not";
    EXPECT_EQ(run->drive->metrics().CounterValue("audit.clean_tail_truncations"), clean_tails)
        << "clean-tail classification not idempotent";
  }

  int threads_;
  int appends_per_thread_;
  S4DriveOptions options_;
  uint64_t disk_bytes_;
};

}  // namespace s4

#endif  // S4_TESTS_CRASH_HARNESS_H_
