// End-to-end intrusion diagnosis and recovery: an attacker with stolen
// credentials scrubs logs, installs a backdoor, stages and deletes an
// exploit tool; the administrator uses the audit log and history pool to
// find and undo everything.
#include <gtest/gtest.h>

#include "src/fs/s4_fs.h"
#include "src/recovery/diagnosis.h"
#include "src/recovery/history_browser.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class RecoveryToolsTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    server_ = std::make_unique<S4RpcServer>(drive_.get());
    transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
    client_ = std::make_unique<S4Client>(transport_.get(), User(100, /*client=*/1));
    ASSERT_OK_AND_ASSIGN(fs_, S4FileSystem::Format(client_.get(), "root"));
    admin_client_ = std::make_unique<S4Client>(transport_.get(), Admin());
  }

  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<S4Client> client_;
  std::unique_ptr<S4Client> admin_client_;
  std::unique_ptr<S4FileSystem> fs_;
};

TEST_F(RecoveryToolsTest, TimeEnhancedLsAndCat) {
  ASSERT_OK_AND_ASSIGN(FileHandle dir, MakeDirs(fs_.get(), "/var/log"));
  ASSERT_OK_AND_ASSIGN(FileHandle log, fs_->CreateFile(dir, "auth.log", 0644));
  ASSERT_OK(fs_->WriteFile(log, 0, BytesOf("line1\n")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kMinute);
  ASSERT_OK(fs_->WriteFile(log, 6, BytesOf("line2\n")));
  ASSERT_OK(fs_->CreateFile(dir, "later.log", 0644).status());

  HistoryBrowser browser(admin_client_.get(), "root");
  // ls at t1: only auth.log existed.
  ASSERT_OK_AND_ASSIGN(std::vector<HistoricalEntry> then, browser.ListAt("/var/log", t1));
  ASSERT_EQ(then.size(), 1u);
  EXPECT_EQ(then[0].name, "auth.log");
  EXPECT_EQ(then[0].size, 6u);
  // cat at t1 shows only the first line.
  ASSERT_OK_AND_ASSIGN(Bytes content, browser.ReadAt("/var/log/auth.log", t1));
  EXPECT_EQ(StringOf(content), "line1\n");
}

TEST_F(RecoveryToolsTest, ScrubbedLogIsRecoverable) {
  ASSERT_OK_AND_ASSIGN(FileHandle dir, MakeDirs(fs_.get(), "/var/log"));
  ASSERT_OK_AND_ASSIGN(FileHandle log, fs_->CreateFile(dir, "messages", 0644));
  ASSERT_OK(fs_->WriteFile(log, 0, BytesOf("sshd: intruder login from evil.host\n")));
  SimTime before_scrub = clock_->Now();
  clock_->Advance(kSecond);
  // The intruder truncates and rewrites the log.
  ASSERT_OK(fs_->SetSize(log, 0));
  ASSERT_OK(fs_->WriteFile(log, 0, BytesOf("nothing to see\n")));

  HistoryBrowser browser(admin_client_.get(), "root");
  ASSERT_OK_AND_ASSIGN(Bytes original, browser.ReadAt("/var/log/messages", before_scrub));
  EXPECT_EQ(StringOf(original), "sshd: intruder login from evil.host\n");

  // Restore it: the scrubbed version remains in history as evidence.
  ASSERT_OK(browser.RestoreFile("/var/log/messages", before_scrub));
  ASSERT_OK_AND_ASSIGN(FileHandle now, ResolvePath(fs_.get(), "/var/log/messages"));
  ASSERT_OK_AND_ASSIGN(Bytes current, fs_->ReadFile(now, 0, 128));
  EXPECT_EQ(StringOf(current), "sshd: intruder login from evil.host\n");
}

TEST_F(RecoveryToolsTest, DeletedExploitToolRecovered) {
  // Intruders stage tools and delete them; S4 captures them anyway.
  ASSERT_OK_AND_ASSIGN(FileHandle tmp, MakeDirs(fs_.get(), "/tmp"));
  ASSERT_OK_AND_ASSIGN(FileHandle tool, fs_->CreateFile(tmp, "rootkit.sh", 0755));
  Bytes payload = BytesOf("#!/bin/sh\n# stage-two exploit\n");
  ASSERT_OK(fs_->WriteFile(tool, 0, payload));
  SimTime staged = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(fs_->Remove(tmp, "rootkit.sh"));

  HistoryBrowser browser(admin_client_.get(), "root");
  ASSERT_OK_AND_ASSIGN(Bytes recovered, browser.ReadAt("/tmp/rootkit.sh", staged));
  EXPECT_EQ(recovered, payload);

  // Resurrect it into the live tree for forensics.
  ASSERT_OK(browser.ResurrectFile(fs_.get(), "/tmp/rootkit.sh", staged,
                                  "/evidence/rootkit.sh"));
  ASSERT_OK_AND_ASSIGN(FileHandle copy, ResolvePath(fs_.get(), "/evidence/rootkit.sh"));
  ASSERT_OK_AND_ASSIGN(Bytes live, fs_->ReadFile(copy, 0, 128));
  EXPECT_EQ(live, payload);
}

TEST_F(RecoveryToolsTest, VersionsOfListsHistory) {
  ASSERT_OK_AND_ASSIGN(FileHandle root, fs_->Root());
  ASSERT_OK_AND_ASSIGN(FileHandle f, fs_->CreateFile(root, "evolving", 0644));
  for (int i = 0; i < 3; ++i) {
    clock_->Advance(kSecond);
    ASSERT_OK(fs_->WriteFile(f, 0, BytesOf("gen" + std::to_string(i))));
  }
  HistoryBrowser browser(admin_client_.get(), "root");
  ASSERT_OK_AND_ASSIGN(auto versions, browser.VersionsOf("/evolving", clock_->Now()));
  EXPECT_GE(versions.size(), 4u);  // create + 3 writes
}

TEST_F(RecoveryToolsTest, DiagnosisFindsIntrudersFootprint) {
  // Legitimate user activity from client 1.
  ASSERT_OK_AND_ASSIGN(FileHandle dir, MakeDirs(fs_.get(), "/home"));
  ASSERT_OK_AND_ASSIGN(FileHandle doc, fs_->CreateFile(dir, "paper.tex", 0644));
  ASSERT_OK(fs_->WriteFile(doc, 0, BytesOf("\\section{intro}")));

  clock_->Advance(kMinute);
  SimTime intrusion_start = clock_->Now();

  // The intruder arrives on client 9 with stolen credentials and:
  S4Client evil_client(transport_.get(), [this] {
    Credentials c = User(100, /*client=*/9);
    return c;
  }());
  // 1. reads a source file,
  ASSERT_OK_AND_ASSIGN(ObjectAttrs doc_attrs, evil_client.GetAttr(doc));
  ASSERT_OK(evil_client.Read(doc, 0, doc_attrs.size).status());
  clock_->Advance(kSecond);
  // 2. tampers with it (taint: read doc -> write doc is same object, then
  //    writes a backdoor right after reading the doc),
  ASSERT_OK_AND_ASSIGN(ObjectId backdoor, evil_client.Create({}));
  ASSERT_OK(evil_client.Write(backdoor, 0, BytesOf("backdoor binary")));
  clock_->Advance(kSecond);
  // 3. overwrites the document,
  ASSERT_OK(evil_client.Write(doc, 0, BytesOf("\\section{defaced}")));
  // 4. and probes something it cannot touch.
  ASSERT_OK(evil_client.SetWindow(kDay).code() == ErrorCode::kPermissionDenied
                ? Status::Ok()
                : Status::Internal("expected denial"));
  SimTime intrusion_end = clock_->Now();

  IntrusionDiagnosis diagnosis(drive_.get(), Admin());
  ASSERT_OK_AND_ASSIGN(IntrusionReport report,
                       diagnosis.Analyze(/*client=*/9, intrusion_start, intrusion_end));

  // The report names both the tampered document and the new backdoor.
  EXPECT_TRUE(report.modified.count(doc) > 0);
  EXPECT_TRUE(report.modified.count(backdoor) > 0);
  EXPECT_TRUE(report.read.count(doc) > 0);
  EXPECT_FALSE(report.denied.empty());
  // Taint: doc was read shortly before the backdoor was written.
  bool taint_found = false;
  for (const TaintLink& link : report.taint) {
    taint_found |= link.source == doc && link.sink == backdoor;
  }
  EXPECT_TRUE(taint_found);

  // Tamper detection against the pre-intrusion baseline.
  ASSERT_OK_AND_ASSIGN(bool tampered, diagnosis.IsTampered(doc, intrusion_start));
  EXPECT_TRUE(tampered);

  // Restore everything the intruder modified.
  ASSERT_OK_AND_ASSIGN(std::vector<ObjectId> restored,
                       diagnosis.RestoreModified(report, intrusion_start));
  EXPECT_FALSE(restored.empty());
  ASSERT_OK_AND_ASSIGN(Bytes doc_now, fs_->ReadFile(doc, 0, 64));
  EXPECT_EQ(StringOf(doc_now), "\\section{intro}");
  ASSERT_OK_AND_ASSIGN(bool still_tampered, diagnosis.IsTampered(doc, intrusion_start));
  EXPECT_FALSE(still_tampered);
}

}  // namespace
}  // namespace s4
