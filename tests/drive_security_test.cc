// The security perimeter: ACL enforcement, the Recovery flag, admin-only
// commands, the audit log, and the space-exhaustion throttle.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace s4 {
namespace {

TEST_F(DriveTest, AclDeniesOtherUsers) {
  Credentials alice = User(100);
  Credentials mallory = User(666);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("private")));

  EXPECT_EQ(drive_->Read(mallory, id, 0, 64).status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->Write(mallory, id, 0, BytesOf("x")).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->Delete(mallory, id).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->SetAttr(mallory, id, {}).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->SetAcl(mallory, id, AclEntry{666, kPermAll}).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(DriveTest, AclGrantsAfterSetAcl) {
  Credentials alice = User(100);
  Credentials bob = User(200);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("shared")));
  ASSERT_OK(drive_->SetAcl(alice, id, AclEntry{200, kPermRead}));
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(bob, id, 0, 64));
  EXPECT_EQ(StringOf(got), "shared");
  // Read-only: writes still denied.
  EXPECT_EQ(drive_->Write(bob, id, 0, BytesOf("x")).code(), ErrorCode::kPermissionDenied);
}

TEST_F(DriveTest, RecoveryFlagGatesHistoryAccess) {
  // Section 3.4: users may read history-pool versions only when the Recovery
  // flag is set; otherwise only the administrator can.
  Credentials alice = User(100);
  Credentials bob = User(200);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("draft v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("draft v2")));

  // Bob gets read access WITHOUT the Recovery flag.
  ASSERT_OK(drive_->SetAcl(alice, id, AclEntry{200, kPermRead}));
  EXPECT_EQ(drive_->Read(bob, id, 0, 64, t1).status().code(), ErrorCode::kPermissionDenied);
  // The owner created the object with Recovery set: allowed.
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64, t1));
  EXPECT_EQ(StringOf(got), "draft v1");
  // The administrator can always read history.
  ASSERT_OK_AND_ASSIGN(Bytes admin_got, drive_->Read(Admin(), id, 0, 64, t1));
  EXPECT_EQ(StringOf(admin_got), "draft v1");
}

TEST_F(DriveTest, ClearingRecoveryFlagHidesOldVersionsFromOwner) {
  // A user may mark data unrecoverable-by-users (embarrassing drafts): even
  // valid credentials then cannot resurrect old versions — only the admin.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("unsent angry email")));
  ASSERT_OK(drive_->SetAcl(alice, id, AclEntry{100, kPermAllNoRecovery}));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("polite version")));

  EXPECT_EQ(drive_->Read(alice, id, 0, 64, t1).status().code(),
            ErrorCode::kPermissionDenied);
  ASSERT_OK_AND_ASSIGN(Bytes admin_got, drive_->Read(Admin(), id, 0, 64, t1));
  EXPECT_EQ(StringOf(admin_got), "unsent angry email");
}

TEST_F(DriveTest, CompromisedCredentialsCannotDestroyHistory) {
  // The core guarantee: an intruder with the owner's credentials can delete
  // and overwrite, but every prior version stays reconstructible.
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("system log: intruder logged in")));
  SimTime before_attack = clock_->Now();
  clock_->Advance(kSecond);

  // "Intruder" scrubs the log and deletes the object with stolen creds.
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("system log: nothing happened")));
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Delete(alice, id));

  // No non-admin RPC can remove the history.
  EXPECT_EQ(drive_->Flush(alice, 0, clock_->Now()).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->FlushObject(alice, id, 0, clock_->Now()).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->SetWindow(alice, 0).code(), ErrorCode::kPermissionDenied);

  ASSERT_OK_AND_ASSIGN(Bytes evidence, drive_->Read(Admin(), id, 0, 64, before_attack));
  EXPECT_EQ(StringOf(evidence), "system log: intruder logged in");
}

TEST_F(DriveTest, AuditLogRecordsAllOperations) {
  Credentials alice = User(100, /*client=*/7);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("data")));
  (void)drive_->Read(alice, id, 0, 4);  // result unused, audit trail is the point
  (void)drive_->Read(User(666, 9), id, 0, 4);  // denied, still audited

  AuditQuery all;
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> records, drive_->QueryAudit(Admin(), all));
  ASSERT_GE(records.size(), 4u);

  AuditQuery by_client;
  by_client.client = 7;
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> mine, drive_->QueryAudit(Admin(), by_client));
  EXPECT_GE(mine.size(), 3u);
  for (const auto& r : mine) {
    EXPECT_EQ(r.client, 7u);
  }

  // The denied read by the intruder is in the log with its failure code.
  AuditQuery intruder;
  intruder.client = 9;
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> bad, drive_->QueryAudit(Admin(), intruder));
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].op, RpcOp::kRead);
  EXPECT_EQ(bad[0].result, static_cast<uint8_t>(ErrorCode::kPermissionDenied));
}

TEST_F(DriveTest, AuditLogNotReadableByUsers) {
  Credentials alice = User(100);
  EXPECT_EQ(drive_->QueryAudit(alice, AuditQuery{}).status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->Read(alice, kAuditLogObjectId, 0, 64).status().code(),
            ErrorCode::kPermissionDenied);
  // And never writable, even by its "owner" semantics.
  EXPECT_EQ(drive_->Write(alice, kAuditLogObjectId, 0, BytesOf("forged")).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->Delete(alice, kAuditLogObjectId).code(), ErrorCode::kPermissionDenied);
}

TEST_F(DriveTest, AuditLogSurvivesCrash) {
  Credentials alice = User(100, 7);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("data")));
  // Audit records ride segment writes in whole blocks; durability is at
  // device-checkpoint granularity. Checkpoint, then crash.
  ASSERT_OK(drive_->WriteCheckpoint());
  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(std::vector<AuditRecord> records,
                       drive_->QueryAudit(Admin(), AuditQuery{}));
  bool saw_create = false;
  bool saw_write = false;
  for (const auto& r : records) {
    saw_create |= r.op == RpcOp::kCreate && r.object == id;
    saw_write |= r.op == RpcOp::kWrite && r.object == id;
  }
  EXPECT_TRUE(saw_create);
  EXPECT_TRUE(saw_write);
}

TEST_F(DriveTest, AdminFlushDestroysVersionsInRange) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v1")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v2")));
  SimTime t2 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("v3")));

  // Purge the middle version (t1, t2]: v1's contents (superseded in range)
  // become unreadable; v3 (current) unaffected.
  ASSERT_OK(drive_->FlushObject(Admin(), id, t1, t2));
  EXPECT_EQ(drive_->Read(Admin(), id, 0, 64, t1).status().code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(cur), "v3");
}

TEST_F(DriveTest, SetWindowAdjustsDetectionWindow) {
  ASSERT_OK(drive_->SetWindow(Admin(), 3 * kDay));
  EXPECT_EQ(drive_->detection_window(), 3 * kDay);
}

TEST_F(DriveTest, ThrottleEngagesWhenSpaceLow) {
  // Fill most of the small disk from one greedy client; once utilisation
  // crosses the threshold its writes get delayed and eventually refused,
  // while a light client keeps working.
  SetUpDrive([] {
    S4DriveOptions o = SmallOptions();
    o.cleaner_enabled = false;       // let pressure build
    o.detection_window = 365 * kDay; // nothing expires
    return o;
  }(), 24ull << 20);

  Credentials greedy = User(1, /*client=*/1);
  Credentials light = User(2, /*client=*/2);
  ASSERT_OK_AND_ASSIGN(ObjectId gobj, drive_->Create(greedy, {}));
  ASSERT_OK_AND_ASSIGN(ObjectId lobj, drive_->Create(light, {}));

  Rng rng(3);
  Bytes chunk = rng.RandomBytes(256 * 1024);
  bool throttled = false;
  for (int i = 0; i < 200; ++i) {
    Status s = drive_->Append(greedy, gobj, chunk).status();
    if (s.code() == ErrorCode::kThrottled) {
      throttled = true;
      break;
    }
    if (s.code() == ErrorCode::kOutOfSpace) {
      break;
    }
  }
  EXPECT_TRUE(throttled);
  EXPECT_GT(drive_->stats().throttle_delays + drive_->stats().throttle_rejects, 0u);
  // The light client still gets service.
  EXPECT_OK(drive_->Write(light, lobj, 0, BytesOf("still fine")));
}

}  // namespace
}  // namespace s4
