// Log-structured layer: on-disk codecs, segment writer behaviour (chunking,
// rollover, pending reads), usage-table accounting, and log scanning.
#include <gtest/gtest.h>

#include "src/lfs/format.h"
#include "src/lfs/scan.h"
#include "src/lfs/segment_writer.h"
#include "src/lfs/usage_table.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class LfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<SimClock>();
    device_ = std::make_unique<BlockDevice>((16ull << 20) / kSectorSize, clock_.get());
    sb_.total_sectors = device_->sector_count();
    sb_.segment_sectors = 256;  // 128KB segments
    sb_.checkpoint_a = 1;
    sb_.checkpoint_b = 2;
    sb_.checkpoint_sectors = 1;
    sb_.first_segment = 3;
    sb_.segment_count =
        static_cast<uint32_t>((sb_.total_sectors - sb_.first_segment) / sb_.segment_sectors);
    sut_ = std::make_unique<SegmentUsageTable>(sb_.segment_count, sb_.segment_sectors);
    writer_ = std::make_unique<SegmentWriter>(device_.get(), &sb_, sut_.get(), clock_.get(), 1);
  }

  Bytes Block(uint8_t fill) { return Bytes(kBlockSize, fill); }

  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<BlockDevice> device_;
  Superblock sb_;
  std::unique_ptr<SegmentUsageTable> sut_;
  std::unique_ptr<SegmentWriter> writer_;
};

TEST_F(LfsTest, SuperblockRoundTrip) {
  Bytes encoded = sb_.Encode();
  ASSERT_EQ(encoded.size(), kSectorSize);
  ASSERT_OK_AND_ASSIGN(Superblock decoded, Superblock::Decode(encoded));
  EXPECT_EQ(decoded.total_sectors, sb_.total_sectors);
  EXPECT_EQ(decoded.segment_sectors, sb_.segment_sectors);
  EXPECT_EQ(decoded.segment_count, sb_.segment_count);
  EXPECT_EQ(decoded.first_segment, sb_.first_segment);

  encoded[10] ^= 0xFF;
  EXPECT_EQ(Superblock::Decode(encoded).status().code(), ErrorCode::kDataCorruption);
}

TEST_F(LfsTest, ChunkSummaryRoundTrip) {
  ChunkSummary summary;
  summary.seq = 42;
  summary.write_time = 12345;
  summary.records.push_back(ChunkRecord{RecordKind::kData, 17, 3, 8});
  summary.records.push_back(ChunkRecord{RecordKind::kJournal, 17, 0, 1});
  ASSERT_OK_AND_ASSIGN(Bytes encoded, summary.Encode());
  ASSERT_EQ(encoded.size(), kSectorSize);
  ASSERT_OK_AND_ASSIGN(ChunkSummary decoded, ChunkSummary::Decode(encoded));
  EXPECT_EQ(decoded.seq, 42u);
  ASSERT_EQ(decoded.records.size(), 2u);
  EXPECT_EQ(decoded.records[0].object_id, 17u);
  EXPECT_EQ(decoded.records[0].sectors, 8u);
  EXPECT_EQ(decoded.PayloadSectors(), 9u);
}

TEST_F(LfsTest, AppendAssignsSequentialAddresses) {
  ASSERT_OK_AND_ASSIGN(DiskAddr a, writer_->Append(RecordKind::kData, 1, 0, Block(0xAA)));
  ASSERT_OK_AND_ASSIGN(DiskAddr b, writer_->Append(RecordKind::kData, 1, 1, Block(0xBB)));
  // Payloads are consecutive (summary sector sits at the chunk head).
  EXPECT_EQ(b, a + kSectorsPerBlock);
}

TEST_F(LfsTest, PendingReadsServeUnflushedData) {
  ASSERT_OK_AND_ASSIGN(DiskAddr a, writer_->Append(RecordKind::kData, 1, 0, Block(0x5A)));
  Bytes out;
  ASSERT_TRUE(writer_->ReadPending(a, kSectorsPerBlock, &out));
  EXPECT_EQ(out, Block(0x5A));
  ASSERT_OK(writer_->Flush());
  EXPECT_FALSE(writer_->ReadPending(a, kSectorsPerBlock, &out));
  // After flush the data is on the device.
  Bytes from_disk;
  ASSERT_OK(device_->Read(a, kSectorsPerBlock, &from_disk));
  EXPECT_EQ(from_disk, Block(0x5A));
}

TEST_F(LfsTest, FlushWritesScannableChunks) {
  ASSERT_OK(writer_->Append(RecordKind::kData, 7, 0, Block(1)).status());
  ASSERT_OK(writer_->Append(RecordKind::kJournal, 7, 0, Bytes(kSectorSize, 2)).status());
  ASSERT_OK(writer_->Flush());
  ASSERT_OK(writer_->Append(RecordKind::kData, 8, 0, Block(3)).status());
  ASSERT_OK(writer_->Flush());

  ASSERT_OK_AND_ASSIGN(std::vector<ScannedChunk> chunks,
                       ScanSegment(device_.get(), sb_, writer_->active_segment()));
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_LT(chunks[0].seq, chunks[1].seq);
  ASSERT_EQ(chunks[0].records.size(), 2u);
  EXPECT_EQ(chunks[0].records[0].kind, RecordKind::kData);
  EXPECT_EQ(chunks[0].records[1].kind, RecordKind::kJournal);
  EXPECT_EQ(chunks[1].records[0].object_id, 8u);
}

TEST_F(LfsTest, SegmentRolloverSealsAndAllocates) {
  // Fill more than one segment worth of blocks.
  uint32_t blocks_per_segment = sb_.segment_sectors / kSectorsPerBlock;
  for (uint32_t i = 0; i < blocks_per_segment + 4; ++i) {
    ASSERT_OK(writer_->Append(RecordKind::kData, 1, i, Block(static_cast<uint8_t>(i)))
                  .status());
  }
  ASSERT_OK(writer_->Flush());
  EXPECT_GE(writer_->stats().segments_sealed, 1u);
  uint32_t full = 0;
  for (SegmentId s = 0; s < sut_->segment_count(); ++s) {
    full += sut_->Info(s).state == SegmentState::kFull ? 1 : 0;
  }
  EXPECT_GE(full, 1u);
}

TEST_F(LfsTest, ScanLogAfterOrdersBySeq) {
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(writer_->Append(RecordKind::kData, 1, i, Block(1)).status());
    if (i % 5 == 4) {
      ASSERT_OK(writer_->Flush());
    }
  }
  ASSERT_OK(writer_->Flush());
  ASSERT_OK_AND_ASSIGN(std::vector<ScannedChunk> all, ScanLogAfter(device_.get(), sb_, 0));
  ASSERT_GE(all.size(), 8u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].seq, all[i - 1].seq);
  }
  // Filtering works.
  uint64_t mid = all[all.size() / 2].seq;
  ASSERT_OK_AND_ASSIGN(std::vector<ScannedChunk> later,
                       ScanLogAfter(device_.get(), sb_, mid));
  EXPECT_EQ(later.size(), all.size() - (all.size() / 2) - 1);
}

TEST_F(LfsTest, UsageTableLifecycle) {
  SimTime now = clock_->Now();
  auto seg = sut_->Allocate(now);
  ASSERT_TRUE(seg.has_value());
  sut_->AddLive(*seg, 16, now);
  sut_->AddWritten(*seg, 16);
  sut_->Seal(*seg);
  EXPECT_FALSE(sut_->Reclaimable(*seg));
  sut_->LiveToHistory(*seg, 16);
  EXPECT_FALSE(sut_->Reclaimable(*seg));  // history pins it
  sut_->ReleaseHistory(*seg, 16);
  EXPECT_TRUE(sut_->Reclaimable(*seg));
  sut_->Reclaim(*seg);
  EXPECT_EQ(sut_->Info(*seg).state, SegmentState::kFree);
}

TEST_F(LfsTest, UsageTableSerializationRoundTrip) {
  SimTime now = clock_->Now();
  auto seg = sut_->Allocate(now);
  sut_->AddLive(*seg, 100, now);
  sut_->AddWritten(*seg, 120);
  sut_->LiveToHistory(*seg, 30);
  Encoder enc;
  sut_->EncodeTo(&enc);
  Decoder dec(enc.bytes());
  ASSERT_OK_AND_ASSIGN(SegmentUsageTable restored, SegmentUsageTable::DecodeFrom(&dec));
  EXPECT_EQ(restored.segment_count(), sut_->segment_count());
  EXPECT_EQ(restored.Info(*seg).live_sectors, 70u);
  EXPECT_EQ(restored.Info(*seg).history_sectors, 30u);
  EXPECT_EQ(restored.Info(*seg).state, SegmentState::kActive);
}

TEST_F(LfsTest, CompactionVictimPrefersEmptiest) {
  SimTime now = clock_->Now();
  SegmentId a = *sut_->Allocate(now);
  sut_->AddWritten(a, 100);
  sut_->AddLive(a, 90, now);
  sut_->Seal(a);
  SegmentId b = *sut_->Allocate(now);
  sut_->AddWritten(b, 100);
  sut_->AddLive(b, 10, now);
  sut_->Seal(b);
  auto victim = sut_->CompactionVictim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, b);
}

TEST_F(LfsTest, OutOfSpaceReported) {
  // Tiny table: 2 segments.
  SegmentUsageTable small(2, sb_.segment_sectors);
  SegmentWriter writer(device_.get(), &sb_, &small, clock_.get(), 1);
  uint32_t blocks_per_segment = sb_.segment_sectors / kSectorsPerBlock;
  Status last = Status::Ok();
  for (uint32_t i = 0; i < 3 * blocks_per_segment && last.ok(); ++i) {
    last = writer.Append(RecordKind::kData, 1, i, Block(0)).status();
  }
  EXPECT_EQ(last.code(), ErrorCode::kOutOfSpace);
}

}  // namespace
}  // namespace s4
