// Journal entry/sector codecs, inode checkpoints, the object map, the LRU
// cache, the block device timing model, and RPC message framing.
#include <gtest/gtest.h>

#include "src/cache/lru.h"
#include "src/journal/sector.h"
#include "src/object/inode.h"
#include "src/object/object_map.h"
#include "src/rpc/messages.h"
#include "src/sim/block_device.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

JournalEntry MakeWrite(SimTime t, uint64_t old_size, uint64_t new_size,
                       std::vector<BlockDelta> deltas) {
  JournalEntry e;
  e.type = JournalEntryType::kWrite;
  e.time = t;
  e.old_size = old_size;
  e.new_size = new_size;
  e.blocks = std::move(deltas);
  return e;
}

TEST(JournalEntryTest, AllTypesRoundTrip) {
  std::vector<JournalEntry> entries;
  entries.push_back(MakeWrite(100, 0, 8192, {{0, 0, 800}, {1, 0, 808}}));
  {
    JournalEntry e;
    e.type = JournalEntryType::kTruncate;
    e.time = 200;
    e.old_size = 8192;
    e.new_size = 100;
    e.blocks = {{1, 808, 0}};
    entries.push_back(e);
  }
  {
    JournalEntry e;
    e.type = JournalEntryType::kCreate;
    e.time = 50;
    e.old_blob = BytesOf("acl-bytes");
    e.new_blob = BytesOf("attrs");
    entries.push_back(e);
  }
  {
    JournalEntry e;
    e.type = JournalEntryType::kSetAttr;
    e.time = 300;
    e.old_blob = BytesOf("old");
    e.new_blob = BytesOf("new");
    entries.push_back(e);
  }
  {
    JournalEntry e;
    e.type = JournalEntryType::kDelete;
    e.time = 400;
    e.checkpoint_addr = 12345;
    e.checkpoint_sectors = 3;
    entries.push_back(e);
  }
  {
    JournalEntry e;
    e.type = JournalEntryType::kCheckpoint;
    e.time = 350;
    e.checkpoint_addr = 999;
    e.checkpoint_sectors = 2;
    entries.push_back(e);
  }

  for (const auto& e : entries) {
    Encoder enc;
    e.EncodeTo(&enc);
    Decoder dec(enc.bytes());
    ASSERT_OK_AND_ASSIGN(JournalEntry back, JournalEntry::DecodeFrom(&dec));
    EXPECT_EQ(back.type, e.type);
    EXPECT_EQ(back.time, e.time);
    EXPECT_EQ(back.old_size, e.old_size);
    EXPECT_EQ(back.new_size, e.new_size);
    EXPECT_EQ(back.blocks.size(), e.blocks.size());
    EXPECT_EQ(back.old_blob, e.old_blob);
    EXPECT_EQ(back.new_blob, e.new_blob);
    EXPECT_EQ(back.checkpoint_addr, e.checkpoint_addr);
    EXPECT_TRUE(dec.done());
  }
}

TEST(JournalSectorTest, PackSplitsAcrossSectors) {
  std::vector<JournalEntry> entries;
  for (int i = 0; i < 60; ++i) {
    entries.push_back(MakeWrite(100 + i, i * 4096, (i + 1) * 4096,
                                {{static_cast<uint64_t>(i), 0, 1000ull + i * 8}}));
  }
  ASSERT_OK_AND_ASSIGN(PackedJournal packed, PackJournalEntries(7, 555, entries));
  ASSERT_GT(packed.sectors.size(), 1u);
  // Every sector encodes to exactly one disk sector; entries stay in order.
  SimTime last = 0;
  size_t total = 0;
  for (const auto& sector : packed.sectors) {
    ASSERT_OK_AND_ASSIGN(Bytes encoded, sector.Encode());
    EXPECT_EQ(encoded.size(), kSectorSize);
    ASSERT_OK_AND_ASSIGN(JournalSector decoded, JournalSector::Decode(encoded));
    EXPECT_EQ(decoded.object_id, 7u);
    for (const auto& e : decoded.entries) {
      EXPECT_GT(e.time, last);
      last = e.time;
      ++total;
    }
  }
  EXPECT_EQ(total, entries.size());
}

TEST(JournalSectorTest, CorruptSectorRejected) {
  JournalSector sector;
  sector.object_id = 3;
  sector.entries.push_back(MakeWrite(1, 0, 10, {}));
  ASSERT_OK_AND_ASSIGN(Bytes encoded, sector.Encode());
  encoded[100] ^= 0x01;
  EXPECT_EQ(JournalSector::Decode(encoded).status().code(), ErrorCode::kDataCorruption);
}

TEST(InodeTest, CheckpointRoundTrip) {
  Inode ino;
  ino.id = 42;
  ino.attrs.size = 1234567;
  ino.attrs.create_time = 10;
  ino.attrs.modify_time = 20;
  ino.attrs.opaque = BytesOf("nfs-attrs");
  ino.acl = {{100, kPermAll}, {kEveryoneUserId, kPermRead}};
  Rng rng(3);
  DiskAddr addr = 1000;
  for (uint64_t b = 0; b < 300; ++b) {
    if (rng.Chance(9, 10)) {  // leave some holes
      ino.blocks[b] = addr;
      addr += rng.Chance(1, 2) ? 8 : 4096;  // sometimes far apart
    }
  }
  Bytes record = ino.EncodeCheckpoint();
  EXPECT_EQ(record.size() % kSectorSize, 0u);
  ASSERT_OK_AND_ASSIGN(Inode back, Inode::DecodeCheckpoint(record));
  EXPECT_EQ(back.id, ino.id);
  EXPECT_EQ(back.attrs.size, ino.attrs.size);
  EXPECT_EQ(back.attrs.opaque, ino.attrs.opaque);
  ASSERT_EQ(back.acl.size(), 2u);
  EXPECT_EQ(back.acl[0].perms, kPermAll);
  EXPECT_EQ(back.blocks, ino.blocks);

  record[8] ^= 0x40;
  EXPECT_EQ(Inode::DecodeCheckpoint(record).status().code(), ErrorCode::kDataCorruption);
}

TEST(ObjectMapTest, IdsMonotonicAndReserved) {
  ObjectMap map;
  ObjectId a = map.AllocateId();
  ObjectId b = map.AllocateId();
  EXPECT_GT(b, a);
  EXPECT_GE(a, kFirstUserObjectId);
  map.ReserveThrough(b + 100);
  EXPECT_GT(map.AllocateId(), b + 100);
}

TEST(ObjectMapTest, SerializationRoundTrip) {
  ObjectMap map;
  ObjectId id = map.AllocateId();
  ObjectMapEntry e;
  e.create_time = 111;
  e.delete_time = 222;
  e.checkpoint_addr = 3333;
  e.checkpoint_sectors = 4;
  e.checkpoint_time = 150;
  e.journal_head = 5555;
  e.history_barrier = 99;
  e.oldest_time = 123;
  map.Put(id, e);
  Encoder enc;
  map.EncodeTo(&enc);
  Decoder dec(enc.bytes());
  ASSERT_OK_AND_ASSIGN(ObjectMap back, ObjectMap::DecodeFrom(&dec));
  const ObjectMapEntry* got = back.Find(id);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->create_time, 111);
  EXPECT_EQ(got->delete_time, 222);
  EXPECT_EQ(got->checkpoint_addr, 3333u);
  EXPECT_EQ(got->journal_head, 5555u);
  EXPECT_EQ(got->oldest_time, 123);
  EXPECT_FALSE(got->live());
  // Fresh ids continue after the restored high-water mark.
  EXPECT_GT(back.AllocateId(), id);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(30);
  std::vector<int> evicted;
  cache.set_evict_fn([&](const int& k, std::string&&) { evicted.push_back(k); });
  cache.Put(1, "a", 10);
  cache.Put(2, "b", 10);
  cache.Put(3, "c", 10);
  EXPECT_NE(cache.Get(1), nullptr);  // touch 1: now 2 is LRU
  cache.Put(4, "d", 10);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
}

TEST(LruCacheTest, OversizedEntryStillHeld) {
  LruCache<int, std::string> cache(10);
  cache.Put(1, "huge", 100);
  EXPECT_NE(cache.Get(1), nullptr);  // newest entry never evicted by itself
}

TEST(LruCacheTest, RemoveSkipsEvictionCallback) {
  LruCache<int, int> cache(100);
  int evictions = 0;
  cache.set_evict_fn([&](const int&, int&&) { ++evictions; });
  cache.Put(1, 11, 10);
  EXPECT_TRUE(cache.Remove(1));
  EXPECT_EQ(evictions, 0);
  EXPECT_FALSE(cache.Remove(1));
}

TEST(BlockDeviceTest, SequentialCheaperThanRandom) {
  SimClock clock;
  BlockDevice dev((64ull << 20) / kSectorSize, &clock);
  Bytes block(kBlockSize, 1);
  // Sequential writes, back to back.
  SimTime t0 = clock.Now();
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(dev.Write(1000 + i * 8, block));
  }
  SimDuration sequential = clock.Now() - t0;
  // Random writes.
  Rng rng(1);
  SimTime t1 = clock.Now();
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(dev.Write(8 * rng.Below(16000), block));
  }
  SimDuration random = clock.Now() - t1;
  EXPECT_GT(random, 5 * sequential);
}

TEST(BlockDeviceTest, IdleGapChargesRotation) {
  SimClock clock;
  BlockDevice dev((64ull << 20) / kSectorSize, &clock);
  Bytes block(kBlockSize, 1);
  ASSERT_OK(dev.Write(1000, block));
  SimTime t0 = clock.Now();
  ASSERT_OK(dev.Write(1008, block));  // immediately sequential: cheap
  SimDuration hot = clock.Now() - t0;
  clock.Advance(kSecond);  // host goes idle; platter keeps spinning
  SimTime t1 = clock.Now();
  ASSERT_OK(dev.Write(1016, block));
  SimDuration cold = clock.Now() - t1;
  EXPECT_GT(cold, hot + 2 * kMillisecond);
}

TEST(BlockDeviceTest, OutOfRangeRejected) {
  SimClock clock;
  BlockDevice dev(1000, &clock);
  Bytes out;
  EXPECT_FALSE(dev.Read(999, 2, &out).ok());
  EXPECT_FALSE(dev.Write(1000, Bytes(kSectorSize, 0)).ok());
}

TEST(RpcMessagesTest, RequestRoundTrip) {
  RpcRequest req;
  req.op = RpcOp::kRead;
  req.creds = {7, 100, 0xABCD};
  req.object = 42;
  req.offset = 1024;
  req.length = 4096;
  req.at = SimTime{999999};
  req.name = "partition";
  req.acl_entry = {55, kPermRead | kPermRecovery};
  Bytes frame = req.Encode();
  ASSERT_OK_AND_ASSIGN(RpcRequest back, RpcRequest::Decode(frame));
  EXPECT_EQ(back.op, RpcOp::kRead);
  EXPECT_EQ(back.creds.user, 100u);
  EXPECT_EQ(back.creds.admin_key, 0xABCDu);
  EXPECT_EQ(back.object, 42u);
  ASSERT_TRUE(back.at.has_value());
  EXPECT_EQ(*back.at, 999999);
  EXPECT_EQ(back.name, "partition");
  EXPECT_EQ(back.acl_entry.perms, kPermRead | kPermRecovery);
}

TEST(RpcMessagesTest, ResponseRoundTrip) {
  RpcResponse resp;
  resp.code = ErrorCode::kThrottled;
  resp.message = "slow down";
  resp.data = BytesOf("payload");
  resp.value = 77;
  resp.partitions = {{"a", 1}, {"b", 2}};
  resp.versions = {{100, 2}, {200, 4}};
  Bytes frame = resp.Encode();
  ASSERT_OK_AND_ASSIGN(RpcResponse back, RpcResponse::Decode(frame));
  EXPECT_EQ(back.code, ErrorCode::kThrottled);
  EXPECT_EQ(back.message, "slow down");
  EXPECT_EQ(StringOf(back.data), "payload");
  EXPECT_EQ(back.partitions.size(), 2u);
  EXPECT_EQ(back.versions.size(), 2u);
}

TEST(RpcMessagesTest, HostileFramesRejectedGracefully) {
  Rng rng(4);
  // Random garbage must never decode.
  for (int i = 0; i < 50; ++i) {
    Bytes garbage = rng.RandomBytes(8 + rng.Below(200));
    EXPECT_FALSE(RpcRequest::Decode(garbage).ok());
  }
  // Bit-flipped real frames must be caught by the CRC.
  RpcRequest req;
  req.op = RpcOp::kWrite;
  req.data = rng.RandomBytes(100);
  Bytes frame = req.Encode();
  for (int i = 0; i < 20; ++i) {
    Bytes mutated = frame;
    mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
    auto result = RpcRequest::Decode(mutated);
    if (result.ok()) {
      // Astronomically unlikely; if it happens the payload must match anyway.
      EXPECT_EQ(result->data, req.data);
    }
  }
}

}  // namespace
}  // namespace s4
