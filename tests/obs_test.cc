// Observability plane: metric registry and histogram semantics, tracer
// bounds, per-op latency histograms recorded by the drive's Execute
// pipeline, and the multi-layer trace — rpc, drive, segment-writer, and
// block-device spans all nested under one request id.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/op_context.h"
#include "src/obs/trace.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

// ---------------------------------------------------------------------------
// Histogram / MetricRegistry units
// ---------------------------------------------------------------------------

TEST(HistogramTest, ExactAggregatesAndLog2Percentiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);

  h.Record(1);
  h.Record(2);
  h.Record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 6);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 3);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);

  // Percentiles are quantised to bucket upper bounds, clamped to max.
  // Samples 1,2,3 land in buckets [1,1], [2,3], [2,3].
  EXPECT_EQ(h.Percentile(0.0), 1);
  EXPECT_EQ(h.Percentile(1.0), 3);

  // A large sample lands in bucket [2^(b-1), 2^b); the reported percentile
  // bound never exceeds the observed max.
  Histogram big;
  big.Record(100);
  EXPECT_EQ(big.Percentile(0.99), 100);
  big.Record(200);
  EXPECT_EQ(big.Percentile(1.0), 200);

  // Negative samples clamp to zero instead of corrupting buckets.
  Histogram neg;
  neg.Record(-5);
  EXPECT_EQ(neg.min(), 0);
  EXPECT_EQ(neg.count(), 1u);
}

TEST(MetricRegistryTest, CreationIsIdempotentAndPointersAreStable) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("x.count");
  Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(reg.CounterValue("x.count"), 3u);
  EXPECT_EQ(reg.CounterValue("never.created"), 0u);
  EXPECT_EQ(reg.FindCounter("never.created"), nullptr);
  EXPECT_EQ(reg.FindHistogram("never.created"), nullptr);

  Histogram* h = reg.GetHistogram("x.latency");
  EXPECT_EQ(h, reg.GetHistogram("x.latency"));
  h->Record(42);

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"x.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"x.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer / ScopedSpan units
// ---------------------------------------------------------------------------

TEST(TracerTest, BoundedBufferDropsInsteadOfGrowing) {
  Tracer tracer;
  for (size_t i = 0; i < Tracer::kMaxEvents + 10; ++i) {
    tracer.Record("e", 1, 0, 1, 0);
  }
  EXPECT_EQ(tracer.events().size(), Tracer::kMaxEvents);
  EXPECT_EQ(tracer.dropped(), 10u);
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);

  tracer.set_enabled(false);
  tracer.Record("e", 1, 0, 1, 0);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, ChromeJsonHasCompleteEvents) {
  Tracer tracer;
  tracer.Record("drive.Write", 7, 100, 50, 1);
  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"drive.Write\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 7"), std::string::npos);
}

TEST(ScopedSpanTest, NullContextAndPartialWiringAreNoOps) {
  { ScopedSpan span(nullptr, "nothing"); }
  OpContext bare;  // no tracer, no clock
  { ScopedSpan span(&bare, "nothing"); }
  EXPECT_EQ(bare.span_depth, 0);
}

TEST(ScopedSpanTest, NestedSpansRecordDepthAndContainment) {
  SimClock clock(0);
  Tracer tracer;
  OpContext ctx;
  ctx.request_id = 9;
  ctx.clock = &clock;
  ctx.tracer = &tracer;
  {
    ScopedSpan outer(&ctx, "outer");
    clock.Advance(10);
    {
      ScopedSpan inner(&ctx, "inner");
      clock.Advance(5);
    }
    clock.Advance(10);
  }
  // Children close (and record) before parents.
  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(ctx.span_depth, 0);
  EXPECT_GE(inner.start, outer.start);
  EXPECT_LE(inner.start + inner.duration, outer.start + outer.duration);
}

// ---------------------------------------------------------------------------
// Drive pipeline: per-op latency histograms and uniform accounting
// ---------------------------------------------------------------------------

class ObsDriveTest : public DriveTest {};

TEST_F(ObsDriveTest, EveryOpRecordsIntoItsLatencyHistogram) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, BytesOf("attrs")));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("payload")));
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 7));
  EXPECT_EQ(StringOf(got), "payload");
  ASSERT_OK(drive_->Sync(alice));

  const MetricRegistry& reg = drive_->metrics();
  for (const char* name :
       {"drive.op.Create.latency", "drive.op.Write.latency", "drive.op.Read.latency",
        "drive.op.Sync.latency"}) {
    const Histogram* h = reg.FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GE(h->count(), 1u) << name;
  }
  // Simulated ops take nonzero sim time (CPU + disk model), so the latency
  // distribution is not degenerate.
  EXPECT_GT(reg.FindHistogram("drive.op.Write.latency")->max(), 0);
}

TEST_F(ObsDriveTest, DeniedOpsAreCountedAndStillTimed) {
  Credentials alice = User(100);
  Credentials mallory = User(666, /*client=*/9);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("private")));

  const MetricRegistry& reg = drive_->metrics();
  uint64_t denied_before = reg.CounterValue("drive.ops_denied");
  uint64_t read_count_before = reg.FindHistogram("drive.op.Read.latency")->count();

  EXPECT_EQ(drive_->Read(mallory, id, 0, 7).status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(drive_->SetWindow(mallory, kMinute).code(), ErrorCode::kPermissionDenied);

  EXPECT_EQ(reg.CounterValue("drive.ops_denied"), denied_before + 2);
  // The denial path still runs the full pipeline epilogue.
  EXPECT_EQ(reg.FindHistogram("drive.op.Read.latency")->count(), read_count_before + 1);
  EXPECT_GE(reg.FindHistogram("drive.op.SetWindow.latency")->count(), 1u);
}

TEST_F(ObsDriveTest, StatsAccessorIsAViewOverTheRegistry) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("x")));
  ASSERT_OK(drive_->Sync(alice));

  DriveStats stats = drive_->stats();
  const MetricRegistry& reg = drive_->metrics();
  EXPECT_EQ(stats.ops_total, reg.CounterValue("drive.ops_total"));
  EXPECT_EQ(stats.journal_entries, reg.CounterValue("drive.journal_entries"));
  EXPECT_EQ(stats.audit_records, reg.CounterValue("audit.records"));
  EXPECT_GT(stats.ops_total, 0u);
}

// ---------------------------------------------------------------------------
// Multi-layer trace through the full RPC stack
// ---------------------------------------------------------------------------

class ObsRpcTest : public DriveTest {
 protected:
  void SetUp() override {
    DriveTest::SetUp();
    server_ = std::make_unique<S4RpcServer>(drive_.get());
    transport_ = std::make_unique<LoopbackTransport>(server_.get(), clock_.get());
    client_ = std::make_unique<S4Client>(transport_.get(), User(100));
  }

  // First event with `name` whose request id is `rid`; nullptr if absent.
  // Takes the snapshot by reference: tracer().events() returns a copy, so
  // callers must hold one vector alive for as long as they keep pointers.
  static const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                                     const char* name, uint64_t rid) {
    for (const TraceEvent& e : events) {
      if (e.request_id == rid && std::string(e.name) == name) {
        return &e;
      }
    }
    return nullptr;
  }

  static bool Contains(const TraceEvent& outer, const TraceEvent& inner) {
    return outer.start <= inner.start &&
           inner.start + inner.duration <= outer.start + outer.duration;
  }

  std::unique_ptr<S4RpcServer> server_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<S4Client> client_;
};

TEST_F(ObsRpcTest, OneRequestIdSpansRpcDriveLfsAndDisk) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));
  drive_->tracer().Clear();  // isolate the interesting requests

  ASSERT_OK(client_->Write(id, 0, BytesOf("trace me")));
  ASSERT_OK(client_->Sync());

  // One snapshot for the whole test: events() copies out under the tracer
  // lock, and every pointer below aims into this vector.
  const std::vector<TraceEvent> events = drive_->tracer().events();

  // The Write RPC: drive and segment-writer spans share the request id the
  // transport allocated for that call.
  const TraceEvent* drive_write = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "drive.Write") {
      drive_write = &e;
      break;
    }
  }
  ASSERT_NE(drive_write, nullptr);
  uint64_t write_rid = drive_write->request_id;
  ASSERT_NE(FindEvent(events, "lfs.append", write_rid), nullptr)
      << "segment-writer span missing from the write request";

  // The Sync RPC flushes the log: one request id covers the rpc dispatch,
  // the drive op, the segment-writer flush, and the block-device write.
  const TraceEvent* drive_sync = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "drive.Sync") {
      drive_sync = &e;
      break;
    }
  }
  ASSERT_NE(drive_sync, nullptr);
  uint64_t sync_rid = drive_sync->request_id;
  EXPECT_NE(sync_rid, write_rid) << "each RPC must get its own request id";

  const TraceEvent* dispatch = FindEvent(events, "rpc.dispatch", sync_rid);
  const TraceEvent* flush = FindEvent(events, "lfs.flush", sync_rid);
  const TraceEvent* disk = FindEvent(events, "disk.write", sync_rid);
  ASSERT_NE(dispatch, nullptr);
  ASSERT_NE(flush, nullptr);
  ASSERT_NE(disk, nullptr);

  // Nesting: rpc.dispatch is the root; each deeper layer is contained in
  // time and strictly deeper in the span tree.
  EXPECT_EQ(dispatch->depth, 0);
  EXPECT_GT(drive_sync->depth, dispatch->depth);
  EXPECT_GT(flush->depth, drive_sync->depth);
  EXPECT_GT(disk->depth, flush->depth);
  EXPECT_TRUE(Contains(*dispatch, *drive_sync));
  EXPECT_TRUE(Contains(*drive_sync, *flush));
  EXPECT_TRUE(Contains(*flush, *disk));

  // The dump loads in chrome://tracing: spot-check the JSON shape.
  std::string json = drive_->tracer().ToChromeJson();
  EXPECT_NE(json.find("\"drive.Sync\""), std::string::npos);
  EXPECT_NE(json.find("\"disk.write\""), std::string::npos);
}

TEST_F(ObsRpcTest, NetworkCountersMirrorTransportStats) {
  ASSERT_OK_AND_ASSIGN(ObjectId id, client_->Create({}));
  ASSERT_OK(client_->Write(id, 0, BytesOf("bytes")));

  const NetStats& net = transport_->stats();
  const MetricRegistry& reg = drive_->metrics();
  EXPECT_EQ(net.messages_sent, reg.CounterValue("net.messages_sent"));
  EXPECT_EQ(net.bytes_sent, reg.CounterValue("net.bytes_sent"));
  EXPECT_EQ(net.messages_received, reg.CounterValue("net.messages_received"));
  EXPECT_EQ(net.bytes_received, reg.CounterValue("net.bytes_received"));
  EXPECT_GT(net.messages_sent, 0u);
}

}  // namespace
}  // namespace s4
