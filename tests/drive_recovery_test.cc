// Crash recovery: power loss drops all in-memory state; mount must restore
// every synced byte, every synced version, and resume appending safely.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace s4 {
namespace {

TEST_F(DriveTest, RemountAfterCleanUnmount) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, BytesOf("a")));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("persistent data")));
  ASSERT_OK(drive_->Unmount());
  drive_.reset();

  auto drive = S4Drive::Mount(device_.get(), clock_.get(), opts_);
  ASSERT_TRUE(drive.ok()) << drive.status().ToString();
  drive_ = std::move(*drive);
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(got), "persistent data");
}

TEST_F(DriveTest, SyncedDataSurvivesCrash) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("synced payload")));
  ASSERT_OK(drive_->Sync(alice));

  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(got), "synced payload");
}

TEST_F(DriveTest, SyncedVersionsSurviveCrash) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("old version")));
  SimTime t1 = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("new version")));
  ASSERT_OK(drive_->Sync(alice));

  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(Bytes cur, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(cur), "new version");
  ASSERT_OK_AND_ASSIGN(Bytes old, drive_->Read(alice, id, 0, 64, t1));
  EXPECT_EQ(StringOf(old), "old version");
}

TEST_F(DriveTest, UnsyncedDataLostButDriveConsistent) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("synced")));
  ASSERT_OK(drive_->Sync(alice));
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("UNSYNCED MUST DIE")));
  // No sync: the second write only lives in RAM.

  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(got), "synced");
}

TEST_F(DriveTest, DeleteSurvivesCrash) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("to be deleted")));
  SimTime before_delete = clock_->Now();
  clock_->Advance(kSecond);
  ASSERT_OK(drive_->Delete(alice, id));
  ASSERT_OK(drive_->Sync(alice));

  CrashAndRemount();
  EXPECT_EQ(drive_->Read(alice, id, 0, 64).status().code(), ErrorCode::kFailedPrecondition);
  ASSERT_OK_AND_ASSIGN(Bytes old, drive_->Read(alice, id, 0, 64, before_delete));
  EXPECT_EQ(StringOf(old), "to be deleted");
}

TEST_F(DriveTest, ObjectIdsNotReusedAfterCrash) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id1, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Sync(alice));
  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(ObjectId id2, drive_->Create(alice, {}));
  EXPECT_GT(id2, id1);
}

TEST_F(DriveTest, MultipleCrashCycles) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  std::vector<std::pair<SimTime, std::string>> synced;
  for (int round = 0; round < 5; ++round) {
    std::string content = "round " + std::to_string(round);
    ASSERT_OK(drive_->Write(alice, id, 0, BytesOf(content)));
    ASSERT_OK(drive_->Sync(alice));
    synced.emplace_back(clock_->Now(), content);
    clock_->Advance(kMinute);
    CrashAndRemount();
    // All previously synced versions remain reconstructible after each crash.
    for (const auto& [t, expect] : synced) {
      ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64, t));
      EXPECT_EQ(StringOf(got), expect) << "round " << round << " at " << t;
    }
  }
}

TEST_F(DriveTest, CrashAfterManyObjectsAndCheckpoints) {
  Credentials alice = User(100);
  std::vector<ObjectId> ids;
  Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
    Bytes data = rng.RandomBytes(1 + rng.Below(20000));
    ASSERT_OK(drive_->Write(alice, id, 0, data));
    ids.push_back(id);
    if (i % 10 == 9) {
      ASSERT_OK(drive_->Sync(alice));
    }
  }
  ASSERT_OK(drive_->Sync(alice));
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs_before, drive_->GetAttr(alice, ids[50]));

  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(ObjectAttrs attrs_after, drive_->GetAttr(alice, ids[50]));
  EXPECT_EQ(attrs_after.size, attrs_before.size);
  for (ObjectId id : ids) {
    EXPECT_OK(drive_->GetAttr(alice, id).status());
  }
}

TEST_F(DriveTest, TornChunkIgnoredOnRecovery) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  ASSERT_OK(drive_->Write(alice, id, 0, BytesOf("good data")));
  ASSERT_OK(drive_->Sync(alice));

  // Corrupt sectors in segments beyond the write frontier — models a torn
  // write during the crash landing in not-yet-valid log space. The recovery
  // scan must treat the garbage as an unwritten tail, not replay it and not
  // crash.
  const auto& sut = drive_->usage_table();
  uint64_t first_segment = 1 + 2ull * 2048;  // format geometry for a 64MB disk
  for (SegmentId seg = 1; seg < sut.segment_count(); ++seg) {
    if (sut.Info(seg).state == SegmentState::kFree) {
      device_->SimulateCrashTornSector(first_segment + static_cast<uint64_t>(seg) * 512);
      break;
    }
  }
  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(Bytes got, drive_->Read(alice, id, 0, 64));
  EXPECT_EQ(StringOf(got), "good data");
}

TEST_F(DriveTest, PartitionTableSurvivesCrash) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId root, drive_->Create(alice, {}));
  ASSERT_OK(drive_->PCreate(alice, "home", root));
  ASSERT_OK(drive_->Sync(alice));
  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(ObjectId mounted, drive_->PMount(alice, "home"));
  EXPECT_EQ(mounted, root);
}

}  // namespace
}  // namespace s4
