// History-pool compaction analysis: differencing a real object's version
// chain must round-trip exactly and save space in the regimes the paper
// projects.
#include <gtest/gtest.h>

#include "src/recovery/history_compaction.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

TEST_F(DriveTest, CompactionOfIncrementalEditsSavesSpace) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(21);
  Bytes content = rng.RandomBytes(120 * 1024, 0.5);
  ASSERT_OK(drive_->Write(alice, id, 0, content));
  // Ten generations of small edits: classic document-editing history.
  for (int v = 0; v < 10; ++v) {
    clock_->Advance(kMinute);
    Bytes patch = rng.RandomBytes(3000, 0.5);
    uint64_t at = rng.Below(content.size() - patch.size());
    std::copy(patch.begin(), patch.end(), content.begin() + at);
    ASSERT_OK(drive_->Write(alice, id, at, patch));
  }

  ASSERT_OK_AND_ASSIGN(HistoryCompactionReport report,
                       AnalyzeHistoryCompaction(drive_.get(), Admin(), id));
  EXPECT_TRUE(report.verified);
  EXPECT_GE(report.versions, 10u);
  EXPECT_GT(report.raw_bytes, 1000000u);  // ~10 x 120KB raw
  // Small-edit histories difference extremely well.
  EXPECT_GT(report.DifferencingRatio(), 10.0);
  EXPECT_GE(report.CombinedRatio(), report.DifferencingRatio() * 0.95);
}

TEST_F(DriveTest, CompactionOfRewritesDegradesGracefully) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(22);
  for (int v = 0; v < 5; ++v) {
    clock_->Advance(kMinute);
    // Full rewrites with unrelated content: differencing can't help, but the
    // compacted form must not blow up either.
    ASSERT_OK(drive_->Write(alice, id, 0, rng.RandomBytes(50 * 1024, 0.0)));
  }
  ASSERT_OK_AND_ASSIGN(HistoryCompactionReport report,
                       AnalyzeHistoryCompaction(drive_.get(), Admin(), id));
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.versions, 5u);  // create + 4 superseded rewrites
  EXPECT_LT(report.delta_bytes, report.raw_bytes + report.versions * 1024);
}

TEST_F(DriveTest, CompactionRequiresAdmin) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  EXPECT_EQ(AnalyzeHistoryCompaction(drive_.get(), alice, id).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(DriveTest, CompactionCoversDeletedObjects) {
  Credentials alice = User(100);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(alice, {}));
  Rng rng(23);
  Bytes v1 = rng.RandomBytes(20000, 0.5);
  ASSERT_OK(drive_->Write(alice, id, 0, v1));
  clock_->Advance(kMinute);
  Bytes v2 = v1;
  std::fill(v2.begin() + 100, v2.begin() + 600, 0xAB);
  ASSERT_OK(drive_->Write(alice, id, 100, ByteSpan(v2).subspan(100, 500)));
  clock_->Advance(kMinute);
  ASSERT_OK(drive_->Delete(alice, id));

  ASSERT_OK_AND_ASSIGN(HistoryCompactionReport report,
                       AnalyzeHistoryCompaction(drive_.get(), Admin(), id));
  EXPECT_TRUE(report.verified);
  EXPECT_GE(report.versions, 1u);
}

}  // namespace
}  // namespace s4
