// Fuzz target: directory stream parsing. Directory objects are stored on the
// (untrusted-after-compromise) drive and replayed by the NFS translator;
// ParseDirStream must tolerate arbitrary corruption, and compaction of any
// accepted directory must be a fixed point: parse(compact(d)) == d with no
// further compaction needed.
#include <cstddef>
#include <cstdint>

#include "src/fs/dir_format.h"
#include "src/util/check.h"

using s4::Bytes;
using s4::ByteSpan;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto dir = s4::ParseDirStream(ByteSpan(data, size));
  if (!dir.ok()) {
    return 0;
  }
  Bytes compacted = s4::CompactDirStream(*dir);
  auto again = s4::ParseDirStream(compacted);
  S4_CHECK(again.ok());
  S4_CHECK(again->entries.size() == dir->entries.size());
  for (const auto& [name, entry] : dir->entries) {
    auto it = again->entries.find(name);
    S4_CHECK(it != again->entries.end());
    S4_CHECK(it->second.handle == entry.handle);
  }
  // A freshly compacted stream is minimal: compaction must not re-trigger.
  S4_CHECK(!again->NeedsCompaction());
  return 0;
}
