// Fuzz target: audit-chain frame scanning. The chain verifier walks bytes
// read back from the audit object after crashes, torn writes, and possible
// tampering — arbitrary input by definition. ScanChain must terminate with a
// verdict (never crash or spin), and whatever prefix it accepts must be
// byte-identical to what the appender would produce for those records.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/audit/audit_chain.h"
#include "src/audit/audit_log.h"
#include "src/util/check.h"
#include "src/util/codec.h"

using s4::Bytes;
using s4::ByteSpan;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteSpan input(data, size);

  // Scan with the whole stream committed (tamper-check posture) and with
  // nothing committed (torn-tail posture). The verdicts must agree on the
  // accepted prefix; only the classification of the failure may differ.
  std::vector<s4::AuditRecord> records;
  s4::AuditChainScan strict =
      s4::ScanChain(input, 0, s4::AuditChainState(), size,
                    [&](const s4::AuditRecord& r) { records.push_back(r); });
  s4::AuditChainScan lax = s4::ScanChain(input, 0, s4::AuditChainState(), 0, nullptr);
  S4_CHECK(strict.records == records.size());
  S4_CHECK(strict.records == lax.records);
  S4_CHECK(strict.end_state == lax.end_state);
  S4_CHECK(strict.end_state.next_offset + strict.tail_bytes == size);
  if (strict.verdict == s4::AuditVerdict::kOk) {
    S4_CHECK(lax.verdict == s4::AuditVerdict::kOk);
    S4_CHECK(strict.tail_bytes == 0);
  } else {
    // With nothing committed, any failure is by definition a clean tail.
    S4_CHECK(lax.verdict == s4::AuditVerdict::kCleanTail);
  }

  // Round-trip: re-appending the accepted records from genesis reproduces
  // the accepted prefix bit-for-bit (the chain admits exactly one encoding).
  s4::AuditChainState state;
  s4::Encoder enc;
  for (const s4::AuditRecord& r : records) {
    s4::AppendChainFrame(r, &state, &enc);
  }
  S4_CHECK(state == strict.end_state);
  ByteSpan accepted = input.subspan(0, strict.end_state.next_offset);
  ByteSpan rebuilt = enc.bytes();
  S4_CHECK(rebuilt.size() == accepted.size());
  S4_CHECK(std::equal(rebuilt.begin(), rebuilt.end(), accepted.begin()));

  // A verified prefix also passes the challenge-proof verifier.
  s4::AuditChainState saved;
  s4::Status proof = s4::VerifyChallengeProof(accepted, &saved);
  S4_CHECK(proof.ok());
  S4_CHECK(saved == strict.end_state);

  // The legacy (unframed) decoder must also survive arbitrary bytes.
  std::vector<s4::AuditRecord> legacy;
  // Any status is fine; the harness only cares that it returns.
  (void)s4::AuditLogCodec::DecodeAll(input, s4::AuditQuery{}, &legacy);
  return 0;
}
