// Fuzz target: JournalEntry decoding. Journal sectors are read back from
// disk after crashes and torn writes, so the decoder sees arbitrary bytes.
// It must fail cleanly, and any entry it accepts must satisfy
// EncodeTo/DecodeFrom/EncodedSize agreement — the sector packer relies on
// EncodedSize being exact.
#include <cstddef>
#include <cstdint>

#include "src/journal/entry.h"
#include "src/util/check.h"
#include "src/util/codec.h"

using s4::Bytes;
using s4::ByteSpan;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  s4::Decoder dec(ByteSpan(data, size));
  // A journal sector holds a sequence of entries; decode until failure or
  // exhaustion, validating every accepted entry.
  while (!dec.done()) {
    size_t before = dec.position();
    auto entry = s4::JournalEntry::DecodeFrom(&dec);
    if (!entry.ok()) {
      break;
    }
    // Forward progress: an accepting decode that consumes nothing would spin
    // the sector replayer forever.
    S4_CHECK(dec.position() > before);

    s4::Encoder enc;
    entry->EncodeTo(&enc);
    S4_CHECK(enc.size() == entry->EncodedSize());

    s4::Decoder redec(enc.bytes());
    auto again = s4::JournalEntry::DecodeFrom(&redec);
    S4_CHECK(again.ok());
    S4_CHECK(redec.done());
    S4_CHECK(again->type == entry->type);
    S4_CHECK(again->time == entry->time);
    S4_CHECK(again->new_size == entry->new_size);
    S4_CHECK(again->blocks.size() == entry->blocks.size());
  }
  return 0;
}
