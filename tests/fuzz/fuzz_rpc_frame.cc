// Fuzz target: the RPC frame codecs — the drive's outermost untrusted
// surface. A hostile client controls every byte here, so Decode must never
// crash, hang, or over-read, and anything it accepts must re-encode into a
// frame it accepts again (round-trip closure).
#include <cstddef>
#include <cstdint>

#include "src/rpc/messages.h"
#include "src/util/check.h"

using s4::Bytes;
using s4::ByteSpan;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteSpan frame(data, size);

  auto req = s4::RpcRequest::Decode(frame);
  if (req.ok()) {
    Bytes re = req->Encode();
    auto again = s4::RpcRequest::Decode(re);
    S4_CHECK(again.ok());
    S4_CHECK(again->op == req->op);
    S4_CHECK(again->object == req->object);
    S4_CHECK(again->data == req->data);
  }

  auto resp = s4::RpcResponse::Decode(frame);
  if (resp.ok()) {
    Bytes re = resp->Encode();
    auto again = s4::RpcResponse::Decode(re);
    S4_CHECK(again.ok());
    S4_CHECK(again->code == resp->code);
    S4_CHECK(again->data == resp->data);
  }

  // Batch envelopes: the same bytes, interpreted as a vectored frame. The
  // magic peek must agree with the full decode's framing acceptance, and an
  // accepted batch obeys the sub-request cap.
  (void)s4::IsBatchRequestFrame(frame);  // must not crash; cheap peek only
  auto batch = s4::RpcBatchRequest::Decode(frame);
  if (batch.ok()) {
    S4_CHECK(batch->subs.size() <= s4::RpcBatchRequest::kMaxSubRequests);
    Bytes re = batch->Encode();
    S4_CHECK(s4::IsBatchRequestFrame(re));
    auto again = s4::RpcBatchRequest::Decode(re);
    S4_CHECK(again.ok());
    S4_CHECK(again->subs.size() == batch->subs.size());
  }
  auto bresp = s4::RpcBatchResponse::Decode(frame);
  if (bresp.ok()) {
    Bytes re = bresp->Encode();
    auto again = s4::RpcBatchResponse::Decode(re);
    S4_CHECK(again.ok());
    S4_CHECK(again->subs.size() == bresp->subs.size());
  }
  return 0;
}
