// Seed-corpus generator for the fuzz targets. Deterministic (fixed Rng
// seeds, no wall clock): the same binary always regenerates byte-identical
// corpora, so the committed files under tests/corpora/ can be refreshed with
//
//   make_fuzz_corpora <repo-root>/tests/corpora
//
// whenever a wire format changes. Seeds are valid frames (so the fuzzer
// starts deep inside the parsers), plus truncations and bit-flips of them
// (so the error paths are seeded too).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/audit/audit_chain.h"
#include "src/audit/audit_log.h"
#include "src/fs/dir_format.h"
#include "src/journal/entry.h"
#include "src/rpc/messages.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace s4 {
namespace {

void WriteCase(const std::filesystem::path& dir, int index, ByteSpan data) {
  char name[32];
  std::snprintf(name, sizeof(name), "seed_%03d.bin", index);
  std::ofstream out(dir / name, std::ios::binary);
  S4_CHECK(out.good());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  S4_CHECK(out.good());
}

// Emits each base case verbatim, a truncated copy, and a bit-flipped copy.
void EmitWithMutations(const std::filesystem::path& dir,
                       const std::vector<Bytes>& bases, uint64_t rng_seed) {
  Rng rng(rng_seed);
  int index = 0;
  for (const Bytes& base : bases) {
    WriteCase(dir, index++, base);
    if (base.size() > 2) {
      Bytes trunc(base.begin(),
                  base.begin() + static_cast<long>(1 + rng.Below(base.size() - 1)));
      WriteCase(dir, index++, trunc);
      Bytes flipped = base;
      flipped[rng.Below(flipped.size())] ^= uint8_t(1u << rng.Below(8));
      WriteCase(dir, index++, flipped);
    }
  }
}

std::vector<Bytes> RpcFrameBases() {
  std::vector<Bytes> bases;

  RpcRequest read;
  read.op = RpcOp::kRead;
  read.creds = Credentials{100, 7};
  read.object = 42;
  read.offset = 4096;
  read.length = 512;
  read.at = 123456789;  // time-based access variant
  bases.push_back(read.Encode());

  RpcRequest write;
  write.op = RpcOp::kWrite;
  write.creds = Credentials{100, 7};
  write.object = 42;
  write.data = BytesOf("self-securing storage keeps every version");
  bases.push_back(write.Encode());

  RpcRequest pmount;
  pmount.op = RpcOp::kPMount;
  pmount.creds = Credentials{200, 1};
  pmount.name = "vol0";
  bases.push_back(pmount.Encode());

  RpcRequest setacl;
  setacl.op = RpcOp::kSetAcl;
  setacl.creds = Credentials{100, 7};
  setacl.object = 42;
  setacl.acl_entry = AclEntry{200, 3};
  bases.push_back(setacl.Encode());

  RpcResponse ok;
  ok.code = ErrorCode::kOk;
  ok.data = BytesOf("payload");
  ok.value = 42;
  bases.push_back(ok.Encode());

  RpcResponse err;
  err.code = ErrorCode::kUnavailable;  // regression: the once-rejected code
  err.message = "device off";
  bases.push_back(err.Encode());

  RpcResponse listing;
  listing.code = ErrorCode::kOk;
  listing.partitions = {{"vol0", 42}, {"vol1", 43}};
  listing.versions = {{1000, 1}, {2000, 0}};
  bases.push_back(listing.Encode());

  RpcBatchRequest batch;
  batch.subs = {read, write, pmount};
  bases.push_back(batch.Encode());

  RpcBatchResponse bresp;
  bresp.subs = {ok, err};
  bases.push_back(bresp.Encode());

  return bases;
}

std::vector<Bytes> JournalEntryBases() {
  std::vector<Bytes> bases;

  JournalEntry create;
  create.type = JournalEntryType::kCreate;
  create.time = 1000;
  create.new_blob = BytesOf("attrs");
  Encoder e1;
  create.EncodeTo(&e1);
  bases.push_back(e1.Take());

  JournalEntry write;
  write.type = JournalEntryType::kWrite;
  write.time = 2000;
  write.old_size = 0;
  write.new_size = 8192;
  write.blocks = {{0, kNullAddr, 111}, {1, kNullAddr, 112}};
  Encoder e2;
  write.EncodeTo(&e2);
  bases.push_back(e2.Take());

  JournalEntry trunc;
  trunc.type = JournalEntryType::kTruncate;
  trunc.time = 3000;
  trunc.old_size = 8192;
  trunc.new_size = 4096;
  trunc.blocks = {{1, 112, kNullAddr}};
  Encoder e3;
  trunc.EncodeTo(&e3);
  bases.push_back(e3.Take());

  JournalEntry ckpt;
  ckpt.type = JournalEntryType::kCheckpoint;
  ckpt.time = 4000;
  ckpt.checkpoint_addr = 777;
  ckpt.checkpoint_sectors = 3;
  Encoder e4;
  ckpt.EncodeTo(&e4);
  bases.push_back(e4.Take());

  // A whole "sector": several entries back to back, as the replayer sees it.
  Encoder seq;
  create.EncodeTo(&seq);
  write.EncodeTo(&seq);
  trunc.EncodeTo(&seq);
  ckpt.EncodeTo(&seq);
  bases.push_back(seq.Take());

  return bases;
}

std::vector<Bytes> DirFormatBases() {
  std::vector<Bytes> bases;

  Bytes stream;
  auto append = [&stream](const DirRecord& r) {
    Bytes rec = EncodeDirRecord(r);
    stream.insert(stream.end(), rec.begin(), rec.end());
  };
  append({DirRecord::Op::kAdd, FileType::kFile, 10, "readme.txt"});
  bases.push_back(stream);
  append({DirRecord::Op::kAdd, FileType::kDirectory, 11, "src"});
  append({DirRecord::Op::kAdd, FileType::kFile, 12, "a.out"});
  append({DirRecord::Op::kRemove, FileType::kFile, 12, "a.out"});
  bases.push_back(stream);  // adds + a tombstone

  // A compaction-worthy stream: many adds/removes of the same name.
  Bytes churn;
  for (int i = 0; i < 12; ++i) {
    DirRecord add{DirRecord::Op::kAdd, FileType::kFile,
                  static_cast<FileHandle>(100 + i), "churn"};
    Bytes rec = EncodeDirRecord(add);
    churn.insert(churn.end(), rec.begin(), rec.end());
    DirRecord rm{DirRecord::Op::kRemove, FileType::kFile,
                 static_cast<FileHandle>(100 + i), "churn"};
    rec = EncodeDirRecord(rm);
    churn.insert(churn.end(), rec.begin(), rec.end());
  }
  bases.push_back(churn);

  return bases;
}

std::vector<Bytes> AuditChainBases() {
  std::vector<Bytes> bases;

  auto record = [](uint64_t i) {
    AuditRecord rec;
    rec.time = static_cast<SimTime>(10000 + i * 31);
    rec.client = static_cast<ClientId>(1 + i % 4);
    rec.user = static_cast<UserId>(100 + i);
    rec.op = (i % 3 == 0) ? RpcOp::kWrite : RpcOp::kRead;
    rec.object = 7 + i;
    rec.offset = i * 512;
    rec.length = 64 + i;
    rec.result = static_cast<uint8_t>(i % 2);
    rec.time_based = i % 5 == 0;
    return rec;
  };

  // Single frame from genesis.
  {
    AuditChainState state;
    Encoder enc;
    AppendChainFrame(record(0), &state, &enc);
    bases.push_back(enc.Take());
  }
  // A multi-frame chain, as the verifier walks it at mount.
  {
    AuditChainState state;
    Encoder enc;
    for (uint64_t i = 0; i < 8; ++i) {
      AppendChainFrame(record(i), &state, &enc);
    }
    bases.push_back(enc.Take());
  }
  // A chain NOT starting at genesis (frames from a challenge round mid-way
  // through the object): from-genesis scanning must reject it cleanly.
  {
    AuditChainState state;
    state.next_seq = 40;
    state.next_offset = 1337;
    state.link = 0xABCD1234;
    Encoder enc;
    for (uint64_t i = 0; i < 3; ++i) {
      AppendChainFrame(record(i), &state, &enc);
    }
    bases.push_back(enc.Take());
  }
  // A legacy (unframed) record stream, which the chained scanner must
  // classify rather than crash on and the legacy decoder must accept.
  {
    Encoder enc;
    for (uint64_t i = 0; i < 6; ++i) {
      record(i).EncodeTo(&enc);
    }
    bases.push_back(enc.Take());
  }

  return bases;
}

int Generate(const std::filesystem::path& out_root) {
  struct Target {
    const char* name;
    std::vector<Bytes> bases;
    uint64_t seed;
  };
  std::vector<Target> targets;
  targets.push_back({"rpc_frame", RpcFrameBases(), 0x5345454431u});
  targets.push_back({"journal_entry", JournalEntryBases(), 0x5345454432u});
  targets.push_back({"dir_format", DirFormatBases(), 0x5345454433u});
  targets.push_back({"audit_chain", AuditChainBases(), 0x5345454434u});

  for (const auto& t : targets) {
    std::filesystem::path dir = out_root / t.name;
    std::filesystem::create_directories(dir);
    EmitWithMutations(dir, t.bases, t.seed);
    std::printf("%s: %zu base case(s)\n", t.name, t.bases.size());
  }
  return 0;
}

}  // namespace
}  // namespace s4

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root> (e.g. tests/corpora)\n",
                 argv[0]);
    return 2;
  }
  return s4::Generate(argv[1]);
}
