// Standalone driver for the fuzz targets: replays a fixed corpus through
// LLVMFuzzerTestOneInput. This is what ctest runs — a deterministic
// regression over the committed seeds (tests/corpora/) plus any crash inputs
// later checked in — and it needs no fuzzer runtime, so it works with any
// compiler. Link one fuzz_*.cc with this file to get a replay binary; under
// S4_FUZZ=ON with libFuzzer available, the same fuzz_*.cc links against
// -fsanitize=fuzzer instead for coverage-guided exploration.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return 1;
  }
  std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(data.data(), data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  size_t cases = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      // Sorted for reproducible ordering across filesystems.
      std::vector<std::filesystem::path> files;
      for (const auto& ent : std::filesystem::directory_iterator(arg)) {
        if (ent.is_regular_file()) {
          files.push_back(ent.path());
        }
      }
      std::sort(files.begin(), files.end());
      for (const auto& f : files) {
        if (RunFile(f) != 0) {
          return 1;
        }
        ++cases;
      }
    } else {
      if (RunFile(arg) != 0) {
        return 1;
      }
      ++cases;
    }
  }
  std::printf("replayed %zu corpus case(s) cleanly\n", cases);
  return 0;
}
