// Quorum superblocks and the O(1) clean-mount path: replica voting, healing
// of torn/stale copies, epoch carry across reformats, checkpoint-bounded
// dirty scans, and serial/parallel scan equivalence.
#include <gtest/gtest.h>

#include "src/drive/s4_drive.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class SuperblockQuorumTest : public DriveTest {
 protected:
  ObjectId WriteWorkload(uint64_t blocks = 8, uint8_t fill = 0x5A) {
    auto u = User(1);
    auto created = drive_->Create(u, {});
    EXPECT_OK(created.status());
    ObjectId id = created.ok() ? *created : 0;
    Bytes data(kBlockSize * blocks, fill);
    EXPECT_OK(drive_->Write(u, id, 0, data));
    EXPECT_OK(drive_->Sync(u));
    return id;
  }

  void ExpectContent(ObjectId id, uint64_t blocks, uint8_t fill) {
    auto back = drive_->Read(Admin(), id, 0, kBlockSize * blocks);
    ASSERT_OK(back.status());
    EXPECT_EQ(*back, Bytes(kBlockSize * blocks, fill));
  }
};

TEST_F(SuperblockQuorumTest, CleanMountSkipsLogScan) {
  ObjectId id = WriteWorkload();
  ASSERT_OK(drive_->Unmount());
  drive_.reset();
  ASSERT_OK_AND_ASSIGN(drive_, S4Drive::Mount(device_.get(), clock_.get(), opts_));

  const MetricRegistry& reg = drive_->metrics();
  EXPECT_EQ(reg.CounterValue("recovery.clean_mounts"), 1u);
  EXPECT_EQ(reg.CounterValue("recovery.segments_scanned"), 0u);
  EXPECT_EQ(reg.CounterValue("recovery.segments_skipped"),
            drive_->superblock().segment_count);
  EXPECT_EQ(reg.CounterValue("recovery.chunks_replayed"), 0u);
  EXPECT_GE(reg.CounterValue("recovery.superblock_votes"), 3u);
  ExpectContent(id, 8, 0x5A);

  // The mount dirty-marked the volume before touching anything else: a crash
  // now must take the scanning path, and the post-mount writes must replay.
  ASSERT_OK(drive_->Write(User(1), id, 0, Bytes(kBlockSize, 0x77)));
  ASSERT_OK(drive_->Sync(User(1)));
  CrashAndRemount();
  EXPECT_EQ(drive_->metrics().CounterValue("recovery.clean_mounts"), 0u);
  EXPECT_GT(drive_->metrics().CounterValue("recovery.chunks_replayed"), 0u);
  auto back = drive_->Read(Admin(), id, 0, kBlockSize);
  ASSERT_OK(back.status());
  EXPECT_EQ(*back, Bytes(kBlockSize, 0x77));
}

TEST_F(SuperblockQuorumTest, AnySingleTornReplicaTolerated) {
  ObjectId id = WriteWorkload();
  ASSERT_OK(drive_->Unmount());
  Superblock sb = drive_->superblock();
  ASSERT_NE(sb.sb_mid, 0u);
  ASSERT_NE(sb.sb_tail, 0u);

  for (DiskAddr addr : {DiskAddr{0}, sb.sb_mid, sb.sb_tail}) {
    SCOPED_TRACE("torn replica at sector " + std::to_string(addr));
    drive_.reset();
    device_->CorruptSectors(addr, 1);
    auto mounted = S4Drive::Mount(device_.get(), clock_.get(), opts_);
    ASSERT_OK(mounted.status());
    drive_ = std::move(*mounted);
    EXPECT_EQ(drive_->metrics().CounterValue("recovery.stale_superblocks_healed"), 1u);
    ExpectContent(id, 8, 0x5A);
    // The dirty re-mark rewrote all replicas; leave the volume clean again
    // so the next iteration tears exactly one fresh copy.
    ASSERT_OK(drive_->Unmount());
  }
}

TEST_F(SuperblockQuorumTest, MidAndTailTornStillMountsFromSectorZero) {
  ObjectId id = WriteWorkload();
  ASSERT_OK(drive_->Unmount());
  Superblock sb = drive_->superblock();
  drive_.reset();
  device_->CorruptSectors(sb.sb_mid, 1);
  device_->CorruptSectors(sb.sb_tail, 1);
  ASSERT_OK_AND_ASSIGN(drive_, S4Drive::Mount(device_.get(), clock_.get(), opts_));
  EXPECT_EQ(drive_->metrics().CounterValue("recovery.superblock_votes"), 1u);
  EXPECT_EQ(drive_->metrics().CounterValue("recovery.stale_superblocks_healed"), 2u);
  ExpectContent(id, 8, 0x5A);
}

TEST_F(SuperblockQuorumTest, BothOuterReplicasTornFailsClosed) {
  WriteWorkload();
  ASSERT_OK(drive_->Unmount());
  Superblock sb = drive_->superblock();
  drive_.reset();
  // The mid replica's address can only be learned from a valid outer copy;
  // with both outer copies gone, the quorum is unreachable and the mount
  // must refuse rather than guess at geometry.
  device_->CorruptSectors(0, 1);
  device_->CorruptSectors(sb.sb_tail, 1);
  auto mounted = S4Drive::Mount(device_.get(), clock_.get(), opts_);
  ASSERT_FALSE(mounted.ok());
  EXPECT_EQ(mounted.status().code(), ErrorCode::kDataCorruption);
}

TEST_F(SuperblockQuorumTest, StaleReplicaIsOutvotedAndHealed) {
  ObjectId id = WriteWorkload();
  // Capture the dirty, older-epoch superblock, then roll sector 0 back to it
  // after the clean unmount — an offline rollback attack on one replica.
  Bytes stale;
  ASSERT_OK(device_->Read(0, 1, &stale));
  ASSERT_OK(drive_->Unmount());
  ASSERT_OK(device_->Write(0, stale));
  drive_.reset();
  ASSERT_OK_AND_ASSIGN(drive_, S4Drive::Mount(device_.get(), clock_.get(), opts_));
  // The newer clean copies outvote the rolled-back sector 0: still a clean
  // mount, and the stale copy is counted (and re-marked) as healed.
  EXPECT_EQ(drive_->metrics().CounterValue("recovery.clean_mounts"), 1u);
  EXPECT_EQ(drive_->metrics().CounterValue("recovery.stale_superblocks_healed"), 1u);
  ExpectContent(id, 8, 0x5A);
}

TEST_F(SuperblockQuorumTest, EpochSurvivesReformat) {
  WriteWorkload();
  ASSERT_OK(drive_->Unmount());
  uint64_t old_epoch = drive_->superblock().epoch;
  EXPECT_GT(old_epoch, 0u);
  drive_.reset();
  // A reformat must start above every epoch the old volume ever wrote, so a
  // surviving replica of the previous layout can never outvote the new one.
  ASSERT_OK_AND_ASSIGN(drive_, S4Drive::Format(device_.get(), clock_.get(), opts_));
  EXPECT_GT(drive_->superblock().epoch, old_epoch);
}

TEST_F(SuperblockQuorumTest, DirtyMountScansOnlyCandidateSegments) {
  auto u = User(1);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(u, {}));
  // ~1.5MB across several 256KB segments, all newer than the format-time
  // checkpoint — the only territory a bounded scan needs to visit.
  Bytes data(kBlockSize * 16, 0x3C);
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK(drive_->Write(u, id, static_cast<uint64_t>(i) * data.size(), data));
  }
  ASSERT_OK(drive_->Sync(u));
  CrashAndRemount();

  const MetricRegistry& reg = drive_->metrics();
  uint64_t scanned = reg.CounterValue("recovery.segments_scanned");
  uint64_t skipped = reg.CounterValue("recovery.segments_skipped");
  EXPECT_GT(scanned, 0u);
  EXPECT_GT(skipped, scanned) << "bounded scan visited most of the disk";
  EXPECT_EQ(scanned + skipped, drive_->superblock().segment_count);
  EXPECT_GT(reg.CounterValue("recovery.chunks_replayed"), 0u);
  for (int i = 0; i < 6; ++i) {
    auto back = drive_->Read(Admin(), id, static_cast<uint64_t>(i) * data.size(),
                             data.size());
    ASSERT_OK(back.status());
    EXPECT_EQ(*back, data) << "region " << i;
  }
}

TEST_F(SuperblockQuorumTest, SerialAndParallelScanRecoverIdenticalState) {
  auto u = User(1);
  ASSERT_OK_AND_ASSIGN(ObjectId id, drive_->Create(u, {}));
  Bytes data(kBlockSize * 16, 0x6B);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(drive_->Write(u, id, static_cast<uint64_t>(i) * data.size(), data));
  }
  ASSERT_OK(drive_->Sync(u));
  drive_.reset();

  S4DriveOptions serial = opts_;
  serial.mount_scan_workers = 1;
  ASSERT_OK_AND_ASSIGN(drive_, S4Drive::Mount(device_.get(), clock_.get(), serial));
  uint64_t scanned = drive_->metrics().CounterValue("recovery.segments_scanned");
  uint64_t replayed = drive_->metrics().CounterValue("recovery.chunks_replayed");
  auto first = drive_->Read(Admin(), id, 0, 4 * data.size());
  ASSERT_OK(first.status());
  drive_.reset();

  S4DriveOptions parallel = opts_;
  parallel.mount_scan_workers = 8;
  ASSERT_OK_AND_ASSIGN(drive_, S4Drive::Mount(device_.get(), clock_.get(), parallel));
  EXPECT_EQ(drive_->metrics().CounterValue("recovery.segments_scanned"), scanned);
  EXPECT_EQ(drive_->metrics().CounterValue("recovery.chunks_replayed"), replayed);
  auto second = drive_->Read(Admin(), id, 0, 4 * data.size());
  ASSERT_OK(second.status());
  EXPECT_EQ(*first, *second);
}

}  // namespace
}  // namespace s4
