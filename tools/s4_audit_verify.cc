// s4_audit_verify: standalone verifier for the hash-chained audit chronicle.
//
// Modes:
//   s4_audit_verify <chain-file> [--committed=N] [--print]
//       Walks a raw audit-object image (chained framing) from genesis and
//       reports the verdict: every frame verified (ok), a torn tail past the
//       committed prefix (clean-tail), or a chain break inside it
//       (corrupted, with the exact first-divergence record and byte offset).
//       Exit code: 0 for ok/clean-tail, 2 for corrupted, 1 for usage/IO.
//   s4_audit_verify --self-test
//       Exhaustive chain-format regression: every-single-byte-flip detection
//       over a multi-record chain, truncation verdicts at every byte, frame
//       splice/reorder/replay, commit-marker round-trip, and the
//       challenge-proof verifier. Exit 0/1.
//   s4_audit_verify --challenge
//       End-to-end challenge/response demo on a simulated drive: an external
//       auditor verifies the chain over RPC, the disk is tampered with
//       behind the drive's back, and the next mount + challenge must detect
//       it. Exit 0/1.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/audit/audit_chain.h"
#include "src/audit/audit_log.h"
#include "src/drive/s4_drive.h"
#include "src/journal/commit_marker.h"
#include "src/rpc/client.h"
#include "src/rpc/transport.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"

namespace s4 {
namespace {

int g_failures = 0;

#define EXPECT(cond, what)                                          \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__,  \
                   (what));                                         \
      ++g_failures;                                                 \
    }                                                               \
  } while (0)

// Deterministic multi-record chain used by the self tests.
Bytes BuildChain(size_t records, AuditChainState* end_state,
                 std::vector<uint64_t>* frame_offsets) {
  AuditChainState state;
  Encoder enc;
  for (size_t i = 0; i < records; ++i) {
    if (frame_offsets != nullptr) {
      frame_offsets->push_back(state.next_offset);
    }
    AuditRecord rec;
    rec.time = static_cast<SimTime>(1000 + i * 37);
    rec.client = static_cast<ClientId>(1 + i % 3);
    rec.user = static_cast<UserId>(100 + i % 5);
    rec.op = (i % 4 == 0) ? RpcOp::kWrite : RpcOp::kRead;
    rec.object = 7 + i;
    rec.offset = i * 4096;
    rec.length = 512 + i;
    rec.result = static_cast<uint8_t>(i % 2);
    rec.time_based = (i % 6 == 0);
    AppendChainFrame(rec, &state, &enc);
  }
  if (end_state != nullptr) {
    *end_state = state;
  }
  return enc.Take();
}

uint64_t FrameStartContaining(const std::vector<uint64_t>& offsets, uint64_t pos,
                              uint64_t total) {
  uint64_t start = 0;
  for (uint64_t off : offsets) {
    if (off <= pos) {
      start = off;
    }
  }
  (void)total;
  return start;
}

int SelfTest() {
  AuditChainState end_state;
  std::vector<uint64_t> offsets;
  Bytes chain = BuildChain(50, &end_state, &offsets);
  std::printf("self-test chain: 50 records, %zu bytes\n", chain.size());

  // Clean scan from genesis accounts for every byte.
  {
    uint64_t seen = 0;
    AuditChainScan scan = ScanChain(chain, 0, AuditChainState(), chain.size(),
                                    [&](const AuditRecord&) { ++seen; });
    EXPECT(scan.verdict == AuditVerdict::kOk, "clean chain must verify");
    EXPECT(scan.records == 50 && seen == 50, "all records must be delivered");
    EXPECT(scan.end_state == end_state, "scan end state must match appender state");
  }

  // Every single-byte flip anywhere in the stream is detected, the verdict is
  // kCorrupted when the flip sits inside the committed prefix, and the first
  // divergence points at the frame containing the flip.
  for (size_t i = 0; i < chain.size(); ++i) {
    Bytes bad = chain;
    bad[i] ^= 0x40;
    AuditChainScan scan = ScanChain(bad, 0, AuditChainState(), bad.size(), nullptr);
    EXPECT(scan.verdict == AuditVerdict::kCorrupted, "byte flip inside committed prefix");
    uint64_t frame_start = FrameStartContaining(offsets, i, chain.size());
    EXPECT(scan.bad_offset <= frame_start,
           "divergence must be at or before the flipped frame");
    // A flip cannot be blamed on a frame after the one containing it.
    EXPECT(scan.bad_offset <= i, "divergence offset must not pass the flip");
    // Records before the failing frame are still recovered.
    uint64_t expect_records = 0;
    for (uint64_t off : offsets) {
      if (off < scan.bad_offset) {
        ++expect_records;
      }
    }
    EXPECT(scan.records == expect_records, "records before the break are kept");
    // The same flip past the committed boundary is a clean tail, never a
    // tamper alarm.
    AuditChainScan torn = ScanChain(bad, 0, AuditChainState(), 0, nullptr);
    EXPECT(torn.verdict == AuditVerdict::kCleanTail, "flip past commit is clean-tail");
  }

  // Every truncation point: with nothing committed, a cut is always a clean
  // tail ending at the last whole frame; with the full size committed, a cut
  // is always corruption (the committed suffix is missing).
  for (size_t cut = 0; cut < chain.size(); ++cut) {
    ByteSpan prefix = ByteSpan(chain).subspan(0, cut);
    uint64_t boundary = FrameStartContaining(offsets, cut, chain.size());
    bool at_boundary = cut == boundary;
    AuditChainScan torn = ScanChain(prefix, 0, AuditChainState(), 0, nullptr);
    EXPECT(torn.verdict == (at_boundary ? AuditVerdict::kOk : AuditVerdict::kCleanTail),
           "truncation with nothing committed");
    EXPECT(torn.end_state.next_offset == boundary,
           "clean tail must end at the last whole frame");
    AuditChainScan corrupt = ScanChain(prefix, 0, AuditChainState(), chain.size(), nullptr);
    EXPECT(corrupt.verdict == AuditVerdict::kCorrupted,
           "truncation below committed size is corruption");
  }

  // Splice: swapping two adjacent frames breaks the chain at the first.
  {
    uint64_t a = offsets[10];
    uint64_t b = offsets[11];
    uint64_t c = 12 < offsets.size() ? offsets[12] : chain.size();
    Bytes spliced;
    spliced.insert(spliced.end(), chain.begin(), chain.begin() + a);
    spliced.insert(spliced.end(), chain.begin() + b, chain.begin() + c);
    spliced.insert(spliced.end(), chain.begin() + a, chain.begin() + b);
    spliced.insert(spliced.end(), chain.begin() + c, chain.end());
    AuditChainScan scan = ScanChain(spliced, 0, AuditChainState(), spliced.size(), nullptr);
    EXPECT(scan.verdict == AuditVerdict::kCorrupted, "frame swap must break the chain");
    EXPECT(scan.bad_offset == a, "swap detected at the first moved frame");
  }

  // Replay/relocation: re-appending a bitwise-valid old frame at the end is
  // caught by the self-address (and link) even though the frame itself is
  // internally consistent.
  {
    Bytes replayed = chain;
    replayed.insert(replayed.end(), chain.begin() + offsets[5],
                    chain.begin() + offsets[6]);
    AuditChainScan scan = ScanChain(replayed, 0, AuditChainState(), replayed.size(),
                                    nullptr);
    EXPECT(scan.verdict == AuditVerdict::kCorrupted, "replayed frame must be rejected");
    EXPECT(scan.bad_offset == chain.size(), "replay detected at the appended copy");
  }

  // Commit marker sector round-trip, including corruption rejection.
  {
    AuditCommitMarker m;
    m.generation = 42;
    m.committed_size = 123456;
    m.chain_seq = 999;
    m.chain_link = 0xDEADBEEF;
    Bytes sector = m.EncodeSector();
    EXPECT(sector.size() == kSectorSize, "marker must be one sector");
    auto back = AuditCommitMarker::DecodeSector(sector);
    EXPECT(back.ok() && back->generation == 42 && back->committed_size == 123456 &&
               back->chain_seq == 999 && back->chain_link == 0xDEADBEEF,
           "marker round-trip");
    for (size_t i : {size_t{0}, size_t{8}, sector.size() - 1}) {
      Bytes bad = sector;
      bad[i] ^= 0x01;
      EXPECT(!AuditCommitMarker::DecodeSector(bad).ok(), "corrupt marker must not decode");
    }
  }

  // Challenge-proof verification: a saved auditor state extends through
  // proof rounds, and any tampering in a round fails the challenge.
  {
    AuditChainState saved;
    uint64_t half = offsets[25];
    EXPECT(VerifyChallengeProof(ByteSpan(chain).subspan(0, half), &saved).ok(),
           "first proof round verifies");
    EXPECT(saved.next_offset == half, "saved state advances with the proof");
    EXPECT(VerifyChallengeProof(ByteSpan(chain).subspan(half), &saved).ok(),
           "second proof round verifies");
    EXPECT(saved == end_state, "auditor catches up to the chain end");
    AuditChainState fresh;
    Bytes bad = chain;
    bad[offsets[3] + 2] ^= 0x10;
    Status s = VerifyChallengeProof(bad, &fresh);
    EXPECT(s.code() == ErrorCode::kDataCorruption, "tampered proof fails the challenge");
    EXPECT(fresh == AuditChainState(), "failed challenge leaves saved state untouched");
  }

  std::printf(g_failures == 0 ? "self-test PASS\n" : "self-test FAIL (%d)\n", g_failures);
  return g_failures == 0 ? 0 : 1;
}

// --------------------------------------------------------------------------
// Challenge/response demo on a simulated drive.
// --------------------------------------------------------------------------

struct Rig {
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<S4Drive> drive;
  std::unique_ptr<S4RpcServer> server;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<S4Client> client;
};

Credentials AdminCreds(const S4DriveOptions& opts) {
  Credentials c;
  c.client = 1;
  c.user = 1;
  c.admin_key = opts.admin_key;
  return c;
}

void WireRig(Rig* rig, const S4DriveOptions& opts) {
  rig->server = std::make_unique<S4RpcServer>(rig->drive.get());
  rig->transport =
      std::make_unique<LoopbackTransport>(rig->server.get(), rig->clock.get(), NetModel{});
  rig->client = std::make_unique<S4Client>(rig->transport.get(), AdminCreds(opts));
}

int ChallengeDemo() {
  S4DriveOptions opts;
  Rig rig;
  rig.clock = std::make_unique<SimClock>(SimTime{0});
  rig.device = std::make_unique<BlockDevice>((64ull << 20) / kSectorSize, rig.clock.get());
  {
    auto drive = S4Drive::Format(rig.device.get(), rig.clock.get(), opts);
    EXPECT(drive.ok(), "format");
    if (!drive.ok()) return 1;
    rig.drive = std::move(*drive);
  }
  WireRig(&rig, opts);

  // Generate history over RPC: an object with several versions.
  auto id = rig.client->Create({});
  EXPECT(id.ok(), "create");
  Bytes payload(1024, 0xAB);
  for (int round = 0; round < 4; ++round) {
    payload[0] = static_cast<uint8_t>(round);
    EXPECT(rig.client->Write(*id, 0, payload).ok(), "write");
    EXPECT(rig.client->Sync().ok(), "sync");
  }

  // The external auditor verifies the whole committed chain from genesis...
  AuditChainState saved;
  Status first = rig.client->AuditChallenge(&saved);
  EXPECT(first.ok(), "initial challenge must verify");
  std::printf("challenge 1: verified chain through seq=%llu (%llu bytes)\n",
              static_cast<unsigned long long>(saved.next_seq),
              static_cast<unsigned long long>(saved.next_offset));

  // ...then incrementally: only the frames since its saved state move.
  EXPECT(rig.client->Write(*id, 0, payload).ok(), "write 2");
  EXPECT(rig.client->Sync().ok(), "sync 2");
  uint64_t before = saved.next_seq;
  Status second = rig.client->AuditChallenge(&saved);
  EXPECT(second.ok(), "incremental challenge must verify");
  EXPECT(saved.next_seq > before, "incremental challenge must advance");

  // Cross-check the chronicle against the version chain: the object's
  // versions must be covered by audited write requests.
  {
    auto versions = rig.client->GetVersionList(*id);
    EXPECT(versions.ok(), "version list");
    AuditQuery q;
    q.object = *id;
    auto records = rig.drive->QueryAudit(AdminCreds(opts), q);
    EXPECT(records.ok(), "audit query");
    if (versions.ok() && records.ok()) {
      // Every version was minted by some audited mutation (create or write).
      EXPECT(records->size() >= versions->size(),
             "every version must have an audited mutation");
      SimTime max_audit = 0;
      for (const AuditRecord& r : *records) {
        max_audit = std::max(max_audit, r.time);
      }
      for (const auto& [vtime, cause] : *versions) {
        (void)cause;
        EXPECT(vtime <= max_audit, "version time must precede the audited trail end");
      }
    }
  }

  // Tamper behind the drive's back: flip one byte inside the first committed
  // audit block while the drive is unmounted.
  auto addrs = rig.drive->DebugObjectBlockAddrs(kAuditLogObjectId);
  EXPECT(addrs.ok() && !addrs->empty(), "audit object must have blocks");
  EXPECT(rig.drive->Unmount().ok(), "unmount");
  rig.drive.reset();
  {
    Bytes sector;
    DiskAddr lba = addrs->front();
    EXPECT(rig.device->Read(lba, 1, &sector).ok(), "read audit sector");
    sector[5] ^= 0x01;
    EXPECT(rig.device->Write(lba, sector).ok(), "write tampered sector");
  }
  auto remount = S4Drive::Mount(rig.device.get(), rig.clock.get(), opts);
  EXPECT(remount.ok(), "remount after tamper");
  if (!remount.ok()) return 1;
  rig.drive = std::move(*remount);
  WireRig(&rig, opts);
  EXPECT(rig.drive->metrics().CounterValue("audit.chain_breaks") >= 1,
         "mount must flag the chain break");

  // A fresh auditor walking from genesis must detect the tampering.
  AuditChainState fresh;
  Status tampered = rig.client->AuditChallenge(&fresh);
  EXPECT(tampered.code() == ErrorCode::kDataCorruption,
         "challenge over tampered chain must fail");
  std::printf("challenge after tamper: %s\n", tampered.ToString().c_str());

  std::printf(g_failures == 0 ? "challenge demo PASS\n" : "challenge demo FAIL (%d)\n",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}

// --------------------------------------------------------------------------
// File mode
// --------------------------------------------------------------------------

int VerifyFile(const std::string& path, uint64_t committed, bool have_committed,
               bool print) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!have_committed) {
    committed = data.size();
  }
  uint64_t printed = 0;
  AuditChainScan scan =
      ScanChain(data, 0, AuditChainState(), committed, [&](const AuditRecord& rec) {
        if (print) {
          std::printf("#%llu t=%lld client=%u user=%u %s obj=%llu off=%llu len=%llu rc=%u\n",
                      static_cast<unsigned long long>(printed),
                      static_cast<long long>(rec.time), rec.client, rec.user,
                      RpcOpName(rec.op), static_cast<unsigned long long>(rec.object),
                      static_cast<unsigned long long>(rec.offset),
                      static_cast<unsigned long long>(rec.length), rec.result);
        }
        ++printed;
      });
  std::printf("%s: %llu bytes, committed %llu, %llu chain-verified records, verdict %s\n",
              path.c_str(), static_cast<unsigned long long>(data.size()),
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(scan.records), AuditVerdictName(scan.verdict));
  if (scan.verdict != AuditVerdict::kOk) {
    std::printf("first divergence: record %llu at byte %llu (%llu trailing bytes): %s\n",
                static_cast<unsigned long long>(scan.first_bad_seq),
                static_cast<unsigned long long>(scan.bad_offset),
                static_cast<unsigned long long>(scan.tail_bytes), scan.detail.c_str());
  }
  return scan.verdict == AuditVerdict::kCorrupted ? 2 : 0;
}

}  // namespace
}  // namespace s4

int main(int argc, char** argv) {
  std::string file;
  uint64_t committed = 0;
  bool have_committed = false;
  bool print = false;
  bool self_test = false;
  bool challenge = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--challenge") {
      challenge = true;
    } else if (arg == "--print") {
      print = true;
    } else if (arg.rfind("--committed=", 0) == 0) {
      committed = std::strtoull(arg.c_str() + 12, nullptr, 10);
      have_committed = true;
    } else if (!arg.empty() && arg[0] != '-') {
      file = arg;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  if (self_test) {
    return s4::SelfTest();
  }
  if (challenge) {
    return s4::ChallengeDemo();
  }
  if (file.empty()) {
    std::fprintf(stderr,
                 "usage: s4_audit_verify <chain-file> [--committed=N] [--print]\n"
                 "       s4_audit_verify --self-test | --challenge\n");
    return 1;
  }
  return s4::VerifyFile(file, committed, have_committed, print);
}
