#!/usr/bin/env python3
"""Compare BENCH_*.json files from two runs (e.g. a committed baseline vs a
fresh CI run) and print a per-benchmark report.

Usage:
    tools/bench_compare.py <baseline_dir> <current_dir> [--threshold PCT]

For every BENCH_<name>.json present in both directories, reports the delta in
simulated wall time, disk writes, network messages, and per-op p50/p99
latency. Regressions beyond --threshold (default 10%) are flagged with '!!'.

The script is a report, not a gate: it always exits 0 so a noisy benchmark
cannot block CI. Flags are for humans reading the job log.
"""

import argparse
import json
import os
import sys


def load_benches(directory):
    benches = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError as e:
        print(f"bench_compare: cannot list {directory}: {e}")
        return benches
    for fname in names:
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        path = os.path.join(directory, fname)
        try:
            with open(path) as f:
                benches[fname] = json.load(f)
        except (OSError, ValueError) as e:
            print(f"bench_compare: skipping unreadable {path}: {e}")
    return benches


def fmt_delta(base, cur, invert=False):
    """Return (formatted string, regressed?). Lower is better unless invert."""
    if base is None or cur is None:
        return "n/a", False
    if base == 0:
        return f"{base} -> {cur}", cur > base
    pct = 100.0 * (cur - base) / base
    regressed = pct < 0 if invert else pct > 0
    return f"{base:g} -> {cur:g} ({pct:+.1f}%)", regressed


def get(d, *keys):
    for k in keys:
        if not isinstance(d, dict) or k not in d:
            return None
        d = d[k]
    return d


def compare_one(name, base, cur, threshold):
    rows = []  # (label, text, flagged)

    def row(label, bval, cval, invert=False):
        text, regressed = fmt_delta(bval, cval, invert)
        # Only flag when the delta is a number and beyond threshold.
        flagged = False
        if regressed and bval not in (None, 0) and cval is not None:
            pct = abs(100.0 * (cval - bval) / bval)
            flagged = pct > threshold
        rows.append((label, text, flagged))

    row("sim_seconds", get(base, "sim_seconds"), get(cur, "sim_seconds"))
    row("disk.writes", get(base, "disk", "writes"), get(cur, "disk", "writes"))
    row("disk.reads", get(base, "disk", "reads"), get(cur, "disk", "reads"))
    row("net.messages", get(base, "net", "messages_sent"),
        get(cur, "net", "messages_sent"))

    base_ops = get(base, "ops") or {}
    cur_ops = get(cur, "ops") or {}
    for op in sorted(set(base_ops) | set(cur_ops)):
        for pct_key in ("p50_us", "p99_us"):
            row(f"op.{op}.{pct_key}", get(base_ops, op, pct_key),
                get(cur_ops, op, pct_key))

    # Optional sections from the history/cleaner/recovery benches. Fail-soft:
    # older baselines predate these sections, in which case the rows are
    # simply omitted rather than reported as regressions.
    def points_by(section, key, d):
        pts = get(d, section, "points") or []
        return {p.get(key): p for p in pts if isinstance(p, dict)}

    if get(base, "history") or get(cur, "history"):
        bpts = points_by("history", "depth", base)
        cpts = points_by("history", "depth", cur)
        for depth in sorted(set(bpts) | set(cpts)):
            row(f"history.depth{depth}.walk_sectors",
                get(bpts.get(depth, {}), "walk_sectors_waypoints"),
                get(cpts.get(depth, {}), "walk_sectors_waypoints"))
            row(f"history.depth{depth}.ratio",
                get(bpts.get(depth, {}), "ratio"),
                get(cpts.get(depth, {}), "ratio"), invert=True)

    if get(base, "cleaner", "steady_state") or get(cur, "cleaner", "steady_state"):
        row("cleaner.steady.walk_sectors",
            get(base, "cleaner", "steady_state", "walk_sectors_incremental"),
            get(cur, "cleaner", "steady_state", "walk_sectors_incremental"))
        row("cleaner.steady.ratio",
            get(base, "cleaner", "steady_state", "ratio"),
            get(cur, "cleaner", "steady_state", "ratio"), invert=True)

    if get(base, "cleaner", "idle_slice") or get(cur, "cleaner", "idle_slice"):
        row("cleaner.idle.fg_p99_us",
            get(base, "cleaner", "idle_slice", "fg_p99_us"),
            get(cur, "cleaner", "idle_slice", "fg_p99_us"))
        row("cleaner.idle.fg_makespan_s",
            get(base, "cleaner", "idle_slice", "fg_makespan_s"),
            get(cur, "cleaner", "idle_slice", "fg_makespan_s"))

    if get(base, "audit") or get(cur, "audit"):
        row("audit.postmark_chained_s", get(base, "audit", "postmark_chained_s"),
            get(cur, "audit", "postmark_chained_s"))
        row("audit.chain_overhead_pct", get(base, "audit", "chain_overhead_pct"),
            get(cur, "audit", "chain_overhead_pct"))
        row("audit.blocks_written", get(base, "audit", "blocks_written"),
            get(cur, "audit", "blocks_written"))

    if get(base, "cluster") or get(cur, "cluster"):
        def scaling_by_n(d):
            pts = get(d, "cluster", "scaling") or []
            return {p.get("n"): p for p in pts if isinstance(p, dict)}

        bpts = scaling_by_n(base)
        cpts = scaling_by_n(cur)
        for n in sorted(set(bpts) | set(cpts)):
            row(f"cluster.n{n}.tx_per_s", get(bpts.get(n, {}), "tx_per_s"),
                get(cpts.get(n, {}), "tx_per_s"), invert=True)
        row("cluster.speedup_4x", get(base, "cluster", "speedup_4x"),
            get(cur, "cluster", "speedup_4x"), invert=True)
        row("cluster.degraded.penalty_x",
            get(base, "cluster", "degraded", "penalty_x"),
            get(cur, "cluster", "degraded", "penalty_x"))
        row("cluster.rebuild.fg_p99_us",
            get(base, "cluster", "rebuild", "foreground_p99_us"),
            get(cur, "cluster", "rebuild", "foreground_p99_us"))
        row("cluster.rebuild.ticks", get(base, "cluster", "rebuild", "ticks"),
            get(cur, "cluster", "rebuild", "ticks"))

    if get(base, "concurrency") or get(cur, "concurrency"):
        def scaling_by_workers(d):
            pts = get(d, "concurrency", "scaling") or []
            return {p.get("workers"): p for p in pts if isinstance(p, dict)}

        bpts = scaling_by_workers(base)
        cpts = scaling_by_workers(cur)
        for w in sorted(set(bpts) | set(cpts)):
            row(f"concurrency.w{w}.ops_per_s", get(bpts.get(w, {}), "ops_per_s"),
                get(cpts.get(w, {}), "ops_per_s"), invert=True)
        row("concurrency.speedup_4x", get(base, "concurrency", "speedup_4x"),
            get(cur, "concurrency", "speedup_4x"), invert=True)
        row("concurrency.read_overlap.speedup",
            get(base, "concurrency", "read_overlap", "speedup"),
            get(cur, "concurrency", "read_overlap", "speedup"), invert=True)

    if get(base, "recovery") or get(cur, "recovery"):
        bpts = points_by("recovery", "journal_mb", base)
        cpts = points_by("recovery", "journal_mb", cur)
        for mb in sorted(set(bpts) | set(cpts)):
            row(f"recovery.{mb}mb.disk_ms", get(bpts.get(mb, {}), "disk_ms"),
                get(cpts.get(mb, {}), "disk_ms"))
            row(f"recovery.{mb}mb.reads", get(bpts.get(mb, {}), "reads"),
                get(cpts.get(mb, {}), "reads"))

    if get(base, "recovery_clean") or get(cur, "recovery_clean"):
        bpts = points_by("recovery_clean", "journal_mb", base)
        cpts = points_by("recovery_clean", "journal_mb", cur)
        for mb in sorted(set(bpts) | set(cpts)):
            row(f"recovery_clean.{mb}mb.disk_ms", get(bpts.get(mb, {}), "disk_ms"),
                get(cpts.get(mb, {}), "disk_ms"))
            row(f"recovery_clean.{mb}mb.audit_ms", get(bpts.get(mb, {}), "audit_ms"),
                get(cpts.get(mb, {}), "audit_ms"))
            row(f"recovery_clean.{mb}mb.reads", get(bpts.get(mb, {}), "reads"),
                get(cpts.get(mb, {}), "reads"))

    print(f"\n== {name} ==")
    any_flag = False
    for label, text, flagged in rows:
        mark = " !!" if flagged else ""
        print(f"  {label:<24} {text}{mark}")
        any_flag = any_flag or flagged
    return any_flag


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="flag regressions beyond this percent (default 10)")
    args = ap.parse_args()

    base = load_benches(args.baseline_dir)
    cur = load_benches(args.current_dir)
    common = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    if not common:
        print("bench_compare: no benchmark files in common; nothing to compare")
        if only_base:
            print(f"  baseline only: {', '.join(only_base)}")
        if only_cur:
            print(f"  current only: {', '.join(only_cur)}")
        return 0

    flagged = [name for name in common
               if compare_one(name, base[name], cur[name], args.threshold)]

    print()
    if only_base:
        print(f"baseline only (not re-run): {', '.join(only_base)}")
    if only_cur:
        print(f"current only (no baseline): {', '.join(only_cur)}")
    if flagged:
        print(f"possible regressions (> {args.threshold:g}%) in: "
              f"{', '.join(flagged)}")
    else:
        print(f"no regressions beyond {args.threshold:g}% threshold")
    # Always succeed: this is a report for humans, not a CI gate.
    return 0


if __name__ == "__main__":
    sys.exit(main())
