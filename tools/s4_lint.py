#!/usr/bin/env python3
"""s4_lint: project-specific invariant linter for the S4 tree.

Enforces structural invariants that clang-tidy cannot express — they are
about *which layer* is allowed to do *what*, mirroring the paper's security
argument (the drive's history pool is only trustworthy if every mutation
flows through the audited, versioning write path):

  S4L001 raw-device-write     BlockDevice::Write may only be called from the
                              segment writer, the superblock/audit paths in
                              s4_drive.cc, the baselines, and the simulator
                              itself. Anything else would bypass versioning.
  S4L002 op-audit-pipeline    Every RpcOp (except kInvalid/kBatch) must be
                              dispatched in transport.cc AND implemented in
                              src/drive via the Execute() pipeline (OpArgs ->
                              Execute), which is what guarantees an audit
                              record precedes any state mutation. OpArgs
                              constructions and Execute calls must pair up.
  S4L003 sim-time-only        No wall-clock or ambient randomness outside
                              src/sim and src/util/rng: determinism is what
                              makes the crash/fault harnesses replayable.
  S4L004 no-throw             src/ never throws; fallible paths return
                              Status/Result (see src/util/status.h).
  S4L005 void-discard-comment (void)-discarding a call result (usually a
                              [[nodiscard]] Status) requires a comment on the
                              same or preceding line saying why it is safe.
  S4L006 include-layering     #include edges between src/ subdirectories must
                              stay within the declared layering DAG.
  S4L007 audit-object-write   Only the drive's audit append/trim path may
                              mutate the reserved audit object
                              (kAuditLogObjectId). Any other writer could
                              forge or destroy the tamper-evident chronicle
                              from inside the trust boundary.
  S4L008 cluster-drive-api    src/cluster may program against member drives
                              only through the S4Drive public API and the RPC
                              surface. Touching drive internals (journal, LFS,
                              cache, audit-log types, raw BlockDevice I/O)
                              would bypass the versioning + audit pipeline the
                              array's recovery argument depends on.
  S4L009 threading-confinement Threading primitives (std::thread/atomic/
                              thread_local/futures and the s4::Mutex wrapper
                              family) may only appear in src/exec (the
                              executor owns all scheduling), src/obs (lock/
                              atomic metric and trace sinks), src/sim (the
                              clock's lanes and the device's busy timeline),
                              and src/util/sync.* (the wrappers themselves).
                              The drive, LFS, journal, cache and RPC layers
                              stay single-threaded by construction: the
                              executor's exclusivity rules are their only
                              lock. (Raw mutex/lock/condvar primitives are
                              S4L010's business.)
  S4L010 lock-discipline      (a) The raw std:: locking primitives (mutex,
                              condition_variable, lock_guard, unique_lock,
                              ...) appear only in src/util/sync.*; everyone
                              else uses s4::Mutex / s4::MutexLock etc., which
                              carry the Clang Thread Safety annotations and
                              the runtime lock-rank checker. (b) Every
                              s4::Mutex / s4::SharedMutex member must have at
                              least one S4_GUARDED_BY / S4_PT_GUARDED_BY
                              referring to it in the same file — an
                              unreferenced lock protects nothing and the
                              static analysis cannot see through it. (c)
                              Every S4_NO_THREAD_SAFETY_ANALYSIS escape hatch
                              needs a rationale comment on the same or the
                              preceding line; the target for src/ is zero.

Usage:
  tools/s4_lint.py [--root DIR]     lint a tree (default: repo root)
  tools/s4_lint.py --self-test      run against tests/lint_fixtures and
                                    verify each rule fires on its fixture

Exit status: 0 = clean, 1 = findings, 2 = self-test failure / bad usage.
No dependencies beyond the Python 3 standard library.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

# ---------------------------------------------------------------------------
# Rule configuration
# ---------------------------------------------------------------------------

# S4L001: files/directories (relative, '/'-separated) allowed to call
# BlockDevice::Write directly. Everything else must go through SegmentWriter
# so the write is versioned, checksummed, and audited.
RAW_WRITE_ALLOWLIST = (
    "src/sim/",                    # the device implementation itself
    "src/lfs/segment_writer.cc",   # the one sanctioned mutation path
    "src/drive/s4_drive.cc",       # superblock + audit-region persistence
    "src/baseline/",               # non-S4 comparison filesystems
)

# S4L002 source locations.
RPC_ENUM_FILE = "src/audit/audit_log.h"
TRANSPORT_FILE = "src/rpc/transport.cc"
DRIVE_DIR = "src/drive"
# Ops that are not implemented as a single Execute() body: kInvalid is the
# audit marker for undecodable requests; kBatch is an envelope whose sub-ops
# are each audited individually.
RPC_ENUM_EXEMPT = {"kInvalid", "kBatch"}

# S4L003: wall-clock / ambient-randomness tokens and where they are allowed.
TIME_RAND_PATTERN = re.compile(
    r"\b(?:std::time\b|time\s*\(\s*(?:NULL|nullptr|0)\s*\)|gettimeofday|"
    r"clock_gettime|system_clock|steady_clock|high_resolution_clock|"
    r"std::rand\b|\bsrand\s*\(|random_device|mt19937|minstd_rand|"
    r"\brandom\s*\(\s*\))"
)
TIME_RAND_ALLOWLIST = (
    "src/sim/",       # SimClock wraps all time
    "src/util/rng.",  # Rng wraps all randomness (seeded, replayable)
)

# S4L004: `throw` as a keyword (exception specifications like `throw()` do
# not appear in this code base; any hit is a violation).
THROW_PATTERN = re.compile(r"\bthrow\b")

# S4L005: a (void) cast applied to something that is (or dereferences into)
# a call — i.e. a discarded return value, not an unused-variable silencer
# like `(void)index;`.
VOID_DISCARD_PATTERN = re.compile(r"\(void\)\s*[A-Za-z_][\w:]*\s*(?:\(|\.|->)")

# S4L006: allowed #include edges between src/ subdirectories. An edge
# dir -> dep means files under src/<dir>/ may include headers from
# src/<dep>/. Self-edges and src/<dir> -> (same dir) are always allowed.
# sim <-> obs is a sanctioned mutual dependency: the simulator reports into
# the observability plane, which timestamps via the sim clock.
LAYERING = {
    "audit":    {"object", "util"},
    "baseline": {"cache", "fs", "lfs", "sim", "util"},
    "cache":    {"lfs", "obs", "sim", "util"},
    "cluster":  {"drive", "obs", "object", "rpc", "sim", "util"},
    "delta":    {"util"},
    "drive":    {"audit", "cache", "journal", "lfs", "object", "obs", "sim",
                 "util"},
    "exec":     {"audit", "drive", "obs", "object", "rpc", "sim", "util"},
    "fs":       {"cache", "rpc", "sim", "util"},
    "journal":  {"lfs", "util"},
    "lfs":      {"sim", "util"},
    "object":   {"lfs", "util"},
    "obs":      {"audit", "object", "sim", "util"},
    "recovery": {"audit", "delta", "drive", "fs", "rpc", "util"},
    "rpc":      {"audit", "drive", "object", "sim", "util"},
    "sim":      {"obs", "util"},
    "util":     set(),
    "workload": {"delta", "fs", "sim", "util"},
}

# S4L007: files allowed to pass kAuditLogObjectId into a mutating storage
# call. AppendAuditBuffered and TrimAuditObject (both in drive_ops.cc) are
# the only sanctioned writers of the audit object; everything else may only
# read it (QueryAudit, challenge rounds, mount verification).
AUDIT_OBJECT_WRITE_ALLOWLIST = (
    "src/drive/drive_ops.cc",
)
AUDIT_OBJECT_WRITE_PATTERN = re.compile(
    r"\b(?:Append|SupersedeBlock|ApplyBlockWrite|BuildBlockContent|Write|"
    r"Truncate)\s*\([^)]*\bkAuditLogObjectId\b")

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literal contents, preserving line
    structure, so token rules do not fire on prose or log messages."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
            elif c == "'":
                state = "char"
                out.append(c)
            else:
                out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail back to code
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append(c)
            elif c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def iter_source_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            # The negative fixtures violate the rules on purpose; they are
            # linted individually by --self-test, not as part of the tree.
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    yield full, rel


def read(full):
    with open(full, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_raw_device_write(root):
    findings = []
    pattern = re.compile(r"\bdevice_?\s*(?:->|\.)\s*Write\s*\(")
    for full, rel in iter_source_files(root, ["src"]):
        if rel.startswith(RAW_WRITE_ALLOWLIST):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            if pattern.search(line):
                findings.append(Finding(
                    "S4L001", rel, lineno,
                    "direct BlockDevice::Write outside the sanctioned write "
                    "path (SegmentWriter / superblock / baselines) bypasses "
                    "versioning and audit"))
    return findings


def parse_rpc_ops(root):
    """Return RpcOp enumerator names from the audit header, or None if the
    enum cannot be found (mini fixture trees for other rules omit it)."""
    path = os.path.join(root, RPC_ENUM_FILE)
    if not os.path.isfile(path):
        return None
    text = strip_comments_and_strings(read(path))
    m = re.search(r"enum\s+class\s+RpcOp[^{]*\{(.*?)\}", text, re.DOTALL)
    if not m:
        return None
    ops = re.findall(r"\b(k[A-Za-z0-9]+)\b\s*(?:=\s*\d+)?\s*,", m.group(1))
    return [op for op in ops if op not in RPC_ENUM_EXEMPT]


def check_op_audit_pipeline(root):
    ops = parse_rpc_ops(root)
    if ops is None:
        return []
    findings = []

    drive_texts = {}
    for full, rel in iter_source_files(root, [DRIVE_DIR]):
        if rel.endswith(".cc"):
            drive_texts[rel] = strip_comments_and_strings(read(full))

    transport_path = os.path.join(root, TRANSPORT_FILE)
    transport_text = (strip_comments_and_strings(read(transport_path))
                      if os.path.isfile(transport_path) else "")

    for op in ops:
        # 1. The drive must implement the op through the Execute pipeline:
        #    `OpArgs a{RpcOp::kX}` is how an op enters BeginOp/EndOp, which
        #    is where the audit record is emitted before any mutation.
        impl = re.compile(r"OpArgs\s+\w+\s*\{\s*RpcOp::" + op + r"\b")
        if not any(impl.search(t) for t in drive_texts.values()):
            findings.append(Finding(
                "S4L002", DRIVE_DIR, 0,
                f"RpcOp::{op} has no OpArgs{{RpcOp::{op}}} Execute-pipeline "
                "implementation in src/drive — the op would mutate state "
                "without an audit record"))
        # 2. The transport must dispatch it.
        if not re.search(r"case\s+RpcOp::" + op + r"\b", transport_text):
            findings.append(Finding(
                "S4L002", TRANSPORT_FILE, 0,
                f"RpcOp::{op} is not dispatched in the transport switch"))

    # 3. Every OpArgs must reach Execute: an OpArgs constructed but never
    #    passed to Execute means the body runs outside the audit pipeline.
    #    Both `return Execute(ctx, ...)` and `<var> = Execute(ctx, ...)` count
    #    (the purge ops capture the result to run a post-op audit barrier).
    for rel, text in drive_texts.items():
        n_args = len(re.findall(r"\bOpArgs\s+\w+\s*\{\s*RpcOp::", text))
        n_exec = len(re.findall(r"(?:\breturn\s+|=\s*)Execute\s*\(\s*ctx\s*,", text))
        if n_args != n_exec:
            findings.append(Finding(
                "S4L002", rel, 0,
                f"{n_args} OpArgs construction(s) but {n_exec} "
                "Execute(ctx, ...) call(s): every op body must go "
                "through the Execute audit pipeline exactly once"))
    return findings


def check_sim_time_only(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        if rel.startswith(TIME_RAND_ALLOWLIST):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            m = TIME_RAND_PATTERN.search(line)
            if m:
                findings.append(Finding(
                    "S4L003", rel, lineno,
                    f"ambient time/randomness ({m.group(0).strip()}) outside "
                    "src/sim and src/util/rng breaks deterministic replay; "
                    "use SimClock / Rng"))
    return findings


def check_no_throw(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            if THROW_PATTERN.search(line):
                findings.append(Finding(
                    "S4L004", rel, lineno,
                    "`throw` in src/: fallible paths return Status/Result "
                    "(src/util/status.h); invariant violations use S4_CHECK"))
    return findings


def check_void_discard_comment(root):
    findings = []
    for full, rel in iter_source_files(
            root, ["src", "tests", "bench", "examples"]):
        lines = read(full).splitlines()
        for lineno, line in enumerate(lines, 1):
            if not VOID_DISCARD_PATTERN.search(line):
                continue
            prev = lines[lineno - 2].strip() if lineno >= 2 else ""
            if "//" in line or prev.startswith("//") or "//" in prev:
                continue
            findings.append(Finding(
                "S4L005", rel, lineno,
                "(void)-discarded call result without a rationale comment; "
                "say why ignoring the error/value is safe (same or "
                "preceding line)"))
    return findings


def check_include_layering(root):
    findings = []
    include_re = re.compile(r'#include\s+"src/([^/"]+)/')
    for full, rel in iter_source_files(root, ["src"]):
        parts = rel.split("/")
        if len(parts) < 3:  # src/<dir>/<file>
            continue
        src_dir = parts[1]
        allowed = LAYERING.get(src_dir)
        for lineno, line in enumerate(read(full).splitlines(), 1):
            m = include_re.search(line)
            if not m:
                continue
            dep = m.group(1)
            if dep == src_dir:
                continue
            if allowed is None:
                findings.append(Finding(
                    "S4L006", rel, lineno,
                    f"directory src/{src_dir} is not in the layering map "
                    "(tools/s4_lint.py LAYERING); declare its dependencies"))
                break  # one finding per unknown dir is enough
            if dep not in allowed:
                findings.append(Finding(
                    "S4L006", rel, lineno,
                    f"illegal include edge src/{src_dir} -> src/{dep}; "
                    "allowed: " + ", ".join(sorted(allowed))))
    return findings


# S4L008: drive-internal subsystems and types the cluster layer must never
# name. The array controller is a *client* of its member drives; everything it
# does has to flow through S4Drive's public ops so each shard's versioning and
# audit chronicle see it.
CLUSTER_FORBIDDEN_INCLUDE = re.compile(
    r'#include\s+"src/(journal|lfs|cache|audit)/')
CLUSTER_FORBIDDEN_TOKEN = re.compile(
    r"\b(BlockDevice|SegmentWriter|SegmentReader|JournalWriter|JournalEntry|"
    r"AuditLog|BlockCache|ObjectMap|Inode)\b")


def check_cluster_drive_api(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        if not rel.startswith("src/cluster/"):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            if CLUSTER_FORBIDDEN_INCLUDE.search(line) or \
                    CLUSTER_FORBIDDEN_TOKEN.search(line):
                findings.append(Finding(
                    "S4L008", rel, lineno,
                    "cluster code must drive shards through the S4Drive "
                    "public API / RPC surface only; drive internals bypass "
                    "the versioning and audit pipeline"))
    return findings


# S4L009: threading primitives and where they are allowed. Everything outside
# the allowlist runs single-threaded under the executor's exclusivity rules;
# a stray thread or atomic elsewhere means a layer is trying to synchronise on
# its own, which the concurrency argument (DESIGN.md §14) does not cover.
# Raw mutex/condvar/lock-RAII primitives are covered by S4L010, which confines
# them to src/util/sync.* tree-wide; this rule confines everything else —
# threads, atomics, thread_local, futures, AND the s4 sync wrappers.
THREADING_PATTERN = re.compile(
    r"(?:#include\s*<(?:thread|atomic|"
    r"future|barrier|latch|semaphore|stop_token)>|"
    r'#include\s*"src/util/sync\.h"|'
    r"\bstd::(?:thread|jthread|"
    r"atomic\w*|"
    r"future|promise|async|call_once|once_flag|barrier|latch|"
    r"counting_semaphore|binary_semaphore)\b|"
    r"\bthread_local\b|"
    r"\b(?:s4::)?(?:Mutex|SharedMutex|CondVar|MutexLock|WriterLock|"
    r"ReaderLock|LockRank)\b)"
)
THREADING_ALLOWLIST = (
    "src/exec/",       # the executor owns scheduling, workers and queues
    "src/obs/",        # thread-safe metric/trace sinks shared by all lanes
    "src/sim/",        # clock lanes and the device's serialised busy timeline
    "src/util/sync.",  # the annotated wrappers themselves
)


def check_threading_confinement(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        if rel.startswith(THREADING_ALLOWLIST):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            m = THREADING_PATTERN.search(line)
            if m:
                findings.append(Finding(
                    "S4L009", rel, lineno,
                    f"threading primitive ({m.group(0).strip()}) outside "
                    "src/exec, src/obs, src/sim; layers below the executor "
                    "are single-threaded by construction — rely on its "
                    "stripe/exclusivity scheduling instead"))
    return findings


# S4L010: the annotated-sync-layer discipline. Three sub-checks:
#   (a) raw std:: locking primitives confined to src/util/sync.*;
#   (b) every s4::Mutex/SharedMutex member declared with a LockRank must be
#       referenced by at least one S4_GUARDED_BY/S4_PT_GUARDED_BY in the same
#       file (a lock no annotation names is invisible to the Clang analysis);
#   (c) every S4_NO_THREAD_SAFETY_ANALYSIS carries a rationale comment on the
#       same or preceding line.
NAKED_SYNC_PATTERN = re.compile(
    r"(?:#include\s*<(?:mutex|shared_mutex|condition_variable)>|"
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock)\b)"
)
SYNC_WRAPPER_FILES = ("src/util/sync.",)
MUTEX_MEMBER_PATTERN = re.compile(
    r"\b(?:s4::)?(?:Mutex|SharedMutex)\s+(\w+)\s*\{\s*LockRank::")
TSA_ESCAPE_TOKEN = "S4_NO_THREAD_SAFETY_ANALYSIS"


def check_lock_discipline(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        raw = read(full)
        code = strip_comments_and_strings(raw)
        in_sync = rel.startswith(SYNC_WRAPPER_FILES)
        code_lines = code.splitlines()
        raw_lines = raw.splitlines()
        for lineno, line in enumerate(code_lines, 1):
            if not in_sync:
                m = NAKED_SYNC_PATTERN.search(line)
                if m:
                    findings.append(Finding(
                        "S4L010", rel, lineno,
                        f"naked locking primitive ({m.group(0).strip()}) "
                        "outside src/util/sync.*; use s4::Mutex / "
                        "s4::MutexLock etc. so the lock participates in "
                        "thread-safety analysis and rank checking"))
                for mm in MUTEX_MEMBER_PATTERN.finditer(line):
                    member = mm.group(1)
                    if (f"S4_GUARDED_BY({member})" not in code and
                            f"S4_PT_GUARDED_BY({member})" not in code):
                        findings.append(Finding(
                            "S4L010", rel, lineno,
                            f"s4 mutex member '{member}' has no "
                            f"S4_GUARDED_BY({member}) / "
                            f"S4_PT_GUARDED_BY({member}) referent in this "
                            "file; a lock that guards nothing declared is "
                            "invisible to the static analysis"))
            if TSA_ESCAPE_TOKEN in line and not in_sync:
                this = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                prev = raw_lines[lineno - 2].strip() if lineno >= 2 else ""
                if "//" not in this and "//" not in prev:
                    findings.append(Finding(
                        "S4L010", rel, lineno,
                        "S4_NO_THREAD_SAFETY_ANALYSIS without a rationale "
                        "comment (same or preceding line); the escape hatch "
                        "needs a written justification — and the target for "
                        "src/ is zero uses"))
    return findings


def check_audit_object_write(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        if rel.startswith(AUDIT_OBJECT_WRITE_ALLOWLIST):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            if AUDIT_OBJECT_WRITE_PATTERN.search(line):
                findings.append(Finding(
                    "S4L007", rel, lineno,
                    "mutating call targeting the reserved audit object "
                    "outside the drive's audit append/trim path "
                    "(src/drive/drive_ops.cc); the chronicle is only "
                    "tamper-evident if nothing else can write it"))
    return findings


RULES = [
    check_raw_device_write,
    check_op_audit_pipeline,
    check_sim_time_only,
    check_no_throw,
    check_void_discard_comment,
    check_include_layering,
    check_audit_object_write,
    check_cluster_drive_api,
    check_threading_confinement,
    check_lock_discipline,
]


def run_all(root):
    findings = []
    for rule in RULES:
        findings.extend(rule(root))
    return findings


# ---------------------------------------------------------------------------
# Self-test: each fixture is a miniature tree under tests/lint_fixtures/<case>
# that must trigger exactly the expected rule(s); `clean` must trigger none.
# ---------------------------------------------------------------------------

FIXTURE_EXPECTATIONS = {
    "raw_device_write": {"S4L001"},
    "op_audit_pipeline": {"S4L002"},
    "sim_time_only": {"S4L003"},
    "no_throw": {"S4L004"},
    "void_discard": {"S4L005"},
    "include_layering": {"S4L006"},
    "audit_object_write": {"S4L007"},
    "cluster_drive_api": {"S4L008"},
    "threading_confinement": {"S4L009"},
    "naked_mutex": {"S4L010"},
    "unguarded_mutex_member": {"S4L010"},
    "tsa_escape_hatch": {"S4L010"},
    "clean": set(),
}


def self_test():
    fixtures = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
    ok = True
    for case, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        case_dir = os.path.join(fixtures, case)
        if not os.path.isdir(case_dir):
            print(f"SELF-TEST FAIL: missing fixture {case_dir}")
            ok = False
            continue
        fired = {f.rule for f in run_all(case_dir)}
        if fired != expected:
            print(f"SELF-TEST FAIL: fixture '{case}' fired {sorted(fired)}, "
                  f"expected {sorted(expected)}")
            for f in run_all(case_dir):
                print(f"    {f}")
            ok = False
        else:
            print(f"self-test: {case}: OK ({sorted(fired) or 'no findings'})")
    return ok


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="tree to lint (default: repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its fixture")
    args = parser.parse_args(argv)

    if args.self_test:
        return 0 if self_test() else 2

    findings = run_all(os.path.abspath(args.root))
    for f in findings:
        print(f)
    if findings:
        print(f"s4_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
