#!/usr/bin/env python3
"""s4_lint: project-specific invariant linter for the S4 tree.

Enforces structural invariants that clang-tidy cannot express — they are
about *which layer* is allowed to do *what*, mirroring the paper's security
argument (the drive's history pool is only trustworthy if every mutation
flows through the audited, versioning write path):

  S4L001 raw-device-write     BlockDevice::Write may only be called from the
                              segment writer, the superblock/audit paths in
                              s4_drive.cc, the baselines, and the simulator
                              itself. Anything else would bypass versioning.
  S4L002 op-audit-pipeline    Every RpcOp (except kInvalid/kBatch) must be
                              dispatched in transport.cc AND implemented in
                              src/drive via the Execute() pipeline (OpArgs ->
                              Execute), which is what guarantees an audit
                              record precedes any state mutation. OpArgs
                              constructions and Execute calls must pair up.
  S4L003 sim-time-only        No wall-clock or ambient randomness outside
                              src/sim and src/util/rng: determinism is what
                              makes the crash/fault harnesses replayable.
  S4L004 no-throw             src/ never throws; fallible paths return
                              Status/Result (see src/util/status.h).
  S4L005 void-discard-comment (void)-discarding a call result (usually a
                              [[nodiscard]] Status) requires a comment on the
                              same or preceding line saying why it is safe.
  S4L006 include-layering     #include edges between src/ subdirectories must
                              stay within the declared layering DAG.
  S4L007 audit-object-write   Only the drive's audit append/trim path may
                              mutate the reserved audit object
                              (kAuditLogObjectId). Any other writer could
                              forge or destroy the tamper-evident chronicle
                              from inside the trust boundary.
  S4L008 cluster-drive-api    src/cluster may program against member drives
                              only through the S4Drive public API and the RPC
                              surface. Touching drive internals (journal, LFS,
                              cache, audit-log types, raw BlockDevice I/O)
                              would bypass the versioning + audit pipeline the
                              array's recovery argument depends on.
  S4L009 threading-confinement Threading primitives (std::thread/mutex/atomic/
                              condition_variable/thread_local, their headers)
                              may only appear in src/exec (the executor owns
                              all scheduling), src/obs (lock/atomic metric and
                              trace sinks), and src/sim (the clock's lanes and
                              the device's busy timeline). The drive, LFS,
                              journal, cache and RPC layers stay single-
                              threaded by construction: the executor's
                              exclusivity rules are their only lock.

Usage:
  tools/s4_lint.py [--root DIR]     lint a tree (default: repo root)
  tools/s4_lint.py --self-test      run against tests/lint_fixtures and
                                    verify each rule fires on its fixture

Exit status: 0 = clean, 1 = findings, 2 = self-test failure / bad usage.
No dependencies beyond the Python 3 standard library.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

# ---------------------------------------------------------------------------
# Rule configuration
# ---------------------------------------------------------------------------

# S4L001: files/directories (relative, '/'-separated) allowed to call
# BlockDevice::Write directly. Everything else must go through SegmentWriter
# so the write is versioned, checksummed, and audited.
RAW_WRITE_ALLOWLIST = (
    "src/sim/",                    # the device implementation itself
    "src/lfs/segment_writer.cc",   # the one sanctioned mutation path
    "src/drive/s4_drive.cc",       # superblock + audit-region persistence
    "src/baseline/",               # non-S4 comparison filesystems
)

# S4L002 source locations.
RPC_ENUM_FILE = "src/audit/audit_log.h"
TRANSPORT_FILE = "src/rpc/transport.cc"
DRIVE_DIR = "src/drive"
# Ops that are not implemented as a single Execute() body: kInvalid is the
# audit marker for undecodable requests; kBatch is an envelope whose sub-ops
# are each audited individually.
RPC_ENUM_EXEMPT = {"kInvalid", "kBatch"}

# S4L003: wall-clock / ambient-randomness tokens and where they are allowed.
TIME_RAND_PATTERN = re.compile(
    r"\b(?:std::time\b|time\s*\(\s*(?:NULL|nullptr|0)\s*\)|gettimeofday|"
    r"clock_gettime|system_clock|steady_clock|high_resolution_clock|"
    r"std::rand\b|\bsrand\s*\(|random_device|mt19937|minstd_rand|"
    r"\brandom\s*\(\s*\))"
)
TIME_RAND_ALLOWLIST = (
    "src/sim/",       # SimClock wraps all time
    "src/util/rng.",  # Rng wraps all randomness (seeded, replayable)
)

# S4L004: `throw` as a keyword (exception specifications like `throw()` do
# not appear in this code base; any hit is a violation).
THROW_PATTERN = re.compile(r"\bthrow\b")

# S4L005: a (void) cast applied to something that is (or dereferences into)
# a call — i.e. a discarded return value, not an unused-variable silencer
# like `(void)index;`.
VOID_DISCARD_PATTERN = re.compile(r"\(void\)\s*[A-Za-z_][\w:]*\s*(?:\(|\.|->)")

# S4L006: allowed #include edges between src/ subdirectories. An edge
# dir -> dep means files under src/<dir>/ may include headers from
# src/<dep>/. Self-edges and src/<dir> -> (same dir) are always allowed.
# sim <-> obs is a sanctioned mutual dependency: the simulator reports into
# the observability plane, which timestamps via the sim clock.
LAYERING = {
    "audit":    {"object", "util"},
    "baseline": {"cache", "fs", "lfs", "sim", "util"},
    "cache":    {"lfs", "obs", "sim", "util"},
    "cluster":  {"drive", "obs", "object", "rpc", "sim", "util"},
    "delta":    {"util"},
    "drive":    {"audit", "cache", "journal", "lfs", "object", "obs", "sim",
                 "util"},
    "exec":     {"audit", "drive", "obs", "object", "rpc", "sim", "util"},
    "fs":       {"cache", "rpc", "sim", "util"},
    "journal":  {"lfs", "util"},
    "lfs":      {"sim", "util"},
    "object":   {"lfs", "util"},
    "obs":      {"audit", "object", "sim", "util"},
    "recovery": {"audit", "delta", "drive", "fs", "rpc", "util"},
    "rpc":      {"audit", "drive", "object", "sim", "util"},
    "sim":      {"obs", "util"},
    "util":     set(),
    "workload": {"delta", "fs", "sim", "util"},
}

# S4L007: files allowed to pass kAuditLogObjectId into a mutating storage
# call. AppendAuditBuffered and TrimAuditObject (both in drive_ops.cc) are
# the only sanctioned writers of the audit object; everything else may only
# read it (QueryAudit, challenge rounds, mount verification).
AUDIT_OBJECT_WRITE_ALLOWLIST = (
    "src/drive/drive_ops.cc",
)
AUDIT_OBJECT_WRITE_PATTERN = re.compile(
    r"\b(?:Append|SupersedeBlock|ApplyBlockWrite|BuildBlockContent|Write|"
    r"Truncate)\s*\([^)]*\bkAuditLogObjectId\b")

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literal contents, preserving line
    structure, so token rules do not fire on prose or log messages."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
            elif c == "'":
                state = "char"
                out.append(c)
            else:
                out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail back to code
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append(c)
            elif c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def iter_source_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            # The negative fixtures violate the rules on purpose; they are
            # linted individually by --self-test, not as part of the tree.
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    yield full, rel


def read(full):
    with open(full, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_raw_device_write(root):
    findings = []
    pattern = re.compile(r"\bdevice_?\s*(?:->|\.)\s*Write\s*\(")
    for full, rel in iter_source_files(root, ["src"]):
        if rel.startswith(RAW_WRITE_ALLOWLIST):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            if pattern.search(line):
                findings.append(Finding(
                    "S4L001", rel, lineno,
                    "direct BlockDevice::Write outside the sanctioned write "
                    "path (SegmentWriter / superblock / baselines) bypasses "
                    "versioning and audit"))
    return findings


def parse_rpc_ops(root):
    """Return RpcOp enumerator names from the audit header, or None if the
    enum cannot be found (mini fixture trees for other rules omit it)."""
    path = os.path.join(root, RPC_ENUM_FILE)
    if not os.path.isfile(path):
        return None
    text = strip_comments_and_strings(read(path))
    m = re.search(r"enum\s+class\s+RpcOp[^{]*\{(.*?)\}", text, re.DOTALL)
    if not m:
        return None
    ops = re.findall(r"\b(k[A-Za-z0-9]+)\b\s*(?:=\s*\d+)?\s*,", m.group(1))
    return [op for op in ops if op not in RPC_ENUM_EXEMPT]


def check_op_audit_pipeline(root):
    ops = parse_rpc_ops(root)
    if ops is None:
        return []
    findings = []

    drive_texts = {}
    for full, rel in iter_source_files(root, [DRIVE_DIR]):
        if rel.endswith(".cc"):
            drive_texts[rel] = strip_comments_and_strings(read(full))

    transport_path = os.path.join(root, TRANSPORT_FILE)
    transport_text = (strip_comments_and_strings(read(transport_path))
                      if os.path.isfile(transport_path) else "")

    for op in ops:
        # 1. The drive must implement the op through the Execute pipeline:
        #    `OpArgs a{RpcOp::kX}` is how an op enters BeginOp/EndOp, which
        #    is where the audit record is emitted before any mutation.
        impl = re.compile(r"OpArgs\s+\w+\s*\{\s*RpcOp::" + op + r"\b")
        if not any(impl.search(t) for t in drive_texts.values()):
            findings.append(Finding(
                "S4L002", DRIVE_DIR, 0,
                f"RpcOp::{op} has no OpArgs{{RpcOp::{op}}} Execute-pipeline "
                "implementation in src/drive — the op would mutate state "
                "without an audit record"))
        # 2. The transport must dispatch it.
        if not re.search(r"case\s+RpcOp::" + op + r"\b", transport_text):
            findings.append(Finding(
                "S4L002", TRANSPORT_FILE, 0,
                f"RpcOp::{op} is not dispatched in the transport switch"))

    # 3. Every OpArgs must reach Execute: an OpArgs constructed but never
    #    passed to Execute means the body runs outside the audit pipeline.
    #    Both `return Execute(ctx, ...)` and `<var> = Execute(ctx, ...)` count
    #    (the purge ops capture the result to run a post-op audit barrier).
    for rel, text in drive_texts.items():
        n_args = len(re.findall(r"\bOpArgs\s+\w+\s*\{\s*RpcOp::", text))
        n_exec = len(re.findall(r"(?:\breturn\s+|=\s*)Execute\s*\(\s*ctx\s*,", text))
        if n_args != n_exec:
            findings.append(Finding(
                "S4L002", rel, 0,
                f"{n_args} OpArgs construction(s) but {n_exec} "
                "Execute(ctx, ...) call(s): every op body must go "
                "through the Execute audit pipeline exactly once"))
    return findings


def check_sim_time_only(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        if rel.startswith(TIME_RAND_ALLOWLIST):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            m = TIME_RAND_PATTERN.search(line)
            if m:
                findings.append(Finding(
                    "S4L003", rel, lineno,
                    f"ambient time/randomness ({m.group(0).strip()}) outside "
                    "src/sim and src/util/rng breaks deterministic replay; "
                    "use SimClock / Rng"))
    return findings


def check_no_throw(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            if THROW_PATTERN.search(line):
                findings.append(Finding(
                    "S4L004", rel, lineno,
                    "`throw` in src/: fallible paths return Status/Result "
                    "(src/util/status.h); invariant violations use S4_CHECK"))
    return findings


def check_void_discard_comment(root):
    findings = []
    for full, rel in iter_source_files(
            root, ["src", "tests", "bench", "examples"]):
        lines = read(full).splitlines()
        for lineno, line in enumerate(lines, 1):
            if not VOID_DISCARD_PATTERN.search(line):
                continue
            prev = lines[lineno - 2].strip() if lineno >= 2 else ""
            if "//" in line or prev.startswith("//") or "//" in prev:
                continue
            findings.append(Finding(
                "S4L005", rel, lineno,
                "(void)-discarded call result without a rationale comment; "
                "say why ignoring the error/value is safe (same or "
                "preceding line)"))
    return findings


def check_include_layering(root):
    findings = []
    include_re = re.compile(r'#include\s+"src/([^/"]+)/')
    for full, rel in iter_source_files(root, ["src"]):
        parts = rel.split("/")
        if len(parts) < 3:  # src/<dir>/<file>
            continue
        src_dir = parts[1]
        allowed = LAYERING.get(src_dir)
        for lineno, line in enumerate(read(full).splitlines(), 1):
            m = include_re.search(line)
            if not m:
                continue
            dep = m.group(1)
            if dep == src_dir:
                continue
            if allowed is None:
                findings.append(Finding(
                    "S4L006", rel, lineno,
                    f"directory src/{src_dir} is not in the layering map "
                    "(tools/s4_lint.py LAYERING); declare its dependencies"))
                break  # one finding per unknown dir is enough
            if dep not in allowed:
                findings.append(Finding(
                    "S4L006", rel, lineno,
                    f"illegal include edge src/{src_dir} -> src/{dep}; "
                    "allowed: " + ", ".join(sorted(allowed))))
    return findings


# S4L008: drive-internal subsystems and types the cluster layer must never
# name. The array controller is a *client* of its member drives; everything it
# does has to flow through S4Drive's public ops so each shard's versioning and
# audit chronicle see it.
CLUSTER_FORBIDDEN_INCLUDE = re.compile(
    r'#include\s+"src/(journal|lfs|cache|audit)/')
CLUSTER_FORBIDDEN_TOKEN = re.compile(
    r"\b(BlockDevice|SegmentWriter|SegmentReader|JournalWriter|JournalEntry|"
    r"AuditLog|BlockCache|ObjectMap|Inode)\b")


def check_cluster_drive_api(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        if not rel.startswith("src/cluster/"):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            if CLUSTER_FORBIDDEN_INCLUDE.search(line) or \
                    CLUSTER_FORBIDDEN_TOKEN.search(line):
                findings.append(Finding(
                    "S4L008", rel, lineno,
                    "cluster code must drive shards through the S4Drive "
                    "public API / RPC surface only; drive internals bypass "
                    "the versioning and audit pipeline"))
    return findings


# S4L009: threading primitives and where they are allowed. Everything outside
# the allowlist runs single-threaded under the executor's exclusivity rules;
# a stray mutex or atomic elsewhere means a layer is trying to synchronise on
# its own, which the concurrency argument (DESIGN.md §14) does not cover.
THREADING_PATTERN = re.compile(
    r"(?:#include\s*<(?:thread|mutex|shared_mutex|condition_variable|atomic|"
    r"future|barrier|latch|semaphore|stop_token)>|"
    r"\bstd::(?:thread|jthread|mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|atomic\w*|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|future|promise|async|call_once|once_flag|barrier|latch|"
    r"counting_semaphore|binary_semaphore)\b|"
    r"\bthread_local\b)"
)
THREADING_ALLOWLIST = (
    "src/exec/",  # the executor owns scheduling, workers and queues
    "src/obs/",   # thread-safe metric/trace sinks shared by all lanes
    "src/sim/",   # clock lanes and the device's serialised busy timeline
)


def check_threading_confinement(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        if rel.startswith(THREADING_ALLOWLIST):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            m = THREADING_PATTERN.search(line)
            if m:
                findings.append(Finding(
                    "S4L009", rel, lineno,
                    f"threading primitive ({m.group(0).strip()}) outside "
                    "src/exec, src/obs, src/sim; layers below the executor "
                    "are single-threaded by construction — rely on its "
                    "stripe/exclusivity scheduling instead"))
    return findings


def check_audit_object_write(root):
    findings = []
    for full, rel in iter_source_files(root, ["src"]):
        if rel.startswith(AUDIT_OBJECT_WRITE_ALLOWLIST):
            continue
        code = strip_comments_and_strings(read(full))
        for lineno, line in enumerate(code.splitlines(), 1):
            if AUDIT_OBJECT_WRITE_PATTERN.search(line):
                findings.append(Finding(
                    "S4L007", rel, lineno,
                    "mutating call targeting the reserved audit object "
                    "outside the drive's audit append/trim path "
                    "(src/drive/drive_ops.cc); the chronicle is only "
                    "tamper-evident if nothing else can write it"))
    return findings


RULES = [
    check_raw_device_write,
    check_op_audit_pipeline,
    check_sim_time_only,
    check_no_throw,
    check_void_discard_comment,
    check_include_layering,
    check_audit_object_write,
    check_cluster_drive_api,
    check_threading_confinement,
]


def run_all(root):
    findings = []
    for rule in RULES:
        findings.extend(rule(root))
    return findings


# ---------------------------------------------------------------------------
# Self-test: each fixture is a miniature tree under tests/lint_fixtures/<case>
# that must trigger exactly the expected rule(s); `clean` must trigger none.
# ---------------------------------------------------------------------------

FIXTURE_EXPECTATIONS = {
    "raw_device_write": {"S4L001"},
    "op_audit_pipeline": {"S4L002"},
    "sim_time_only": {"S4L003"},
    "no_throw": {"S4L004"},
    "void_discard": {"S4L005"},
    "include_layering": {"S4L006"},
    "audit_object_write": {"S4L007"},
    "cluster_drive_api": {"S4L008"},
    "threading_confinement": {"S4L009"},
    "clean": set(),
}


def self_test():
    fixtures = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
    ok = True
    for case, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        case_dir = os.path.join(fixtures, case)
        if not os.path.isdir(case_dir):
            print(f"SELF-TEST FAIL: missing fixture {case_dir}")
            ok = False
            continue
        fired = {f.rule for f in run_all(case_dir)}
        if fired != expected:
            print(f"SELF-TEST FAIL: fixture '{case}' fired {sorted(fired)}, "
                  f"expected {sorted(expected)}")
            for f in run_all(case_dir):
                print(f"    {f}")
            ok = False
        else:
            print(f"self-test: {case}: OK ({sorted(fired) or 'no findings'})")
    return ok


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="tree to lint (default: repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its fixture")
    args = parser.parse_args(argv)

    if args.self_test:
        return 0 if self_test() else 2

    findings = run_all(os.path.abspath(args.root))
    for f in findings:
        print(f)
    if findings:
        print(f"s4_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
