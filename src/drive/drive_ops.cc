// S4Drive data path: the Table 1 object, partition, and device operations.
#include <algorithm>
#include <cstring>

#include "src/drive/s4_drive.h"
#include "src/util/check.h"

namespace s4 {

namespace {

// Caps that keep every journal entry within a single journal sector.
constexpr size_t kMaxOpaqueAttrBytes = 200;
constexpr size_t kMaxAclEntries = 40;
constexpr size_t kMaxPartitionName = 255;

}  // namespace

// ---------------------------------------------------------------------------
// Object operations
// ---------------------------------------------------------------------------

Result<ObjectId> S4Drive::Create(const Credentials& creds, Bytes opaque_attrs) {
  ++stats_.ops_total;
  ChargeCpu();
  if (opaque_attrs.size() > kMaxOpaqueAttrBytes) {
    Status s = Status::InvalidArgument("opaque attrs too large");
    Audit(creds, RpcOp::kCreate, kInvalidObjectId, 0, opaque_attrs.size(), s, false);
    return s;
  }
  SimTime now = clock_->Now();
  ObjectId id = object_map_.AllocateId();
  ObjectMapEntry entry;
  entry.create_time = now;
  entry.oldest_time = now;
  object_map_.Put(id, entry);

  auto obj = std::make_shared<CachedObject>();
  obj->inode.id = id;
  obj->inode.attrs.create_time = now;
  obj->inode.attrs.modify_time = now;
  obj->inode.attrs.opaque = opaque_attrs;
  obj->inode.acl.push_back(AclEntry{creds.user, kPermAll});
  obj->dirty = true;

  JournalEntry e;
  e.type = JournalEntryType::kCreate;
  e.time = now;
  Encoder acl_enc;
  EncodeAcl(obj->inode.acl, &acl_enc);
  e.old_blob = acl_enc.Take();
  e.new_blob = std::move(opaque_attrs);
  obj->pending.push_back(std::move(e));
  ++stats_.journal_entries;
  pending_dirty_.insert(id);

  object_cache_->Put(id, obj, 256);
  Audit(creds, RpcOp::kCreate, id, 0, 0, Status::Ok(), false);
  return id;
}

Result<S4Drive::ObjectHandle> S4Drive::ResolveForWrite(const Credentials& creds, ObjectId id,
                                                       uint8_t needed) {
  if (id == kAuditLogObjectId || id == kPartitionTableObjectId) {
    return Status::PermissionDenied("reserved object is drive-managed");
  }
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
  if (!obj->exists) {
    return Status::FailedPrecondition("object is deleted");
  }
  S4_RETURN_IF_ERROR(CheckAccess(*obj, creds, needed));
  return obj;
}

Result<Bytes> S4Drive::BuildBlockContent(const CachedObject& obj, uint64_t block_index,
                                         uint64_t valid_bytes, uint64_t write_off,
                                         ByteSpan data) {
  // Invariant maintained by all writers: on-disk bytes at offsets >= object
  // size are zero, so reads never leak stale data across truncate/extend.
  uint64_t block_start = block_index * kBlockSize;
  Bytes content;
  DiskAddr old_addr = obj.inode.BlockAddr(block_index);
  if (old_addr != kNullAddr) {
    S4_ASSIGN_OR_RETURN(content, ReadRecord(old_addr, kSectorsPerBlock));
  } else {
    content.assign(kBlockSize, 0);
  }
  // Zero anything beyond the currently valid prefix of this block.
  uint64_t valid_in_block =
      valid_bytes > block_start ? std::min<uint64_t>(valid_bytes - block_start, kBlockSize) : 0;
  if (valid_in_block < kBlockSize) {
    std::memset(content.data() + valid_in_block, 0, kBlockSize - valid_in_block);
  }
  // Lay in the new data overlapping this block.
  uint64_t write_end = write_off + data.size();
  uint64_t block_end = block_start + kBlockSize;
  uint64_t copy_from = std::max(write_off, block_start);
  uint64_t copy_to = std::min(write_end, block_end);
  if (copy_from < copy_to) {
    std::memcpy(content.data() + (copy_from - block_start), data.data() + (copy_from - write_off),
                copy_to - copy_from);
  }
  return content;
}

void S4Drive::SupersedeBlock(ObjectId id, DiskAddr old_addr) {
  if (old_addr == kNullAddr) {
    return;
  }
  if (ObjectIsVersioned(id)) {
    sut_->LiveToHistory(sb_.SegmentOf(old_addr), kSectorsPerBlock);
  } else {
    sut_->ReleaseLive(sb_.SegmentOf(old_addr), kSectorsPerBlock);
  }
}

Status S4Drive::ApplyBlockWrite(ObjectId id, CachedObject* obj, SimTime now, uint64_t old_size,
                                uint64_t new_size, std::vector<BlockDelta> deltas) {
  // Split into journal entries that each fit a single journal sector.
  size_t i = 0;
  do {
    JournalEntry e;
    e.type = JournalEntryType::kWrite;
    e.time = now;
    e.old_size = old_size;
    e.new_size = new_size;
    size_t n = std::min<size_t>(options_.max_deltas_per_entry, deltas.size() - i);
    e.blocks.assign(deltas.begin() + i, deltas.begin() + i + n);
    i += n;
    obj->pending.push_back(std::move(e));
    ++stats_.journal_entries;
  } while (i < deltas.size());
  pending_dirty_.insert(id);

  obj->inode.attrs.size = new_size;
  obj->inode.attrs.modify_time = now;
  obj->dirty = true;

  if (obj->pending.size() >= options_.journal_flush_entries) {
    S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj));
  }
  return Status::Ok();
}

Status S4Drive::WriteInternal(const Credentials& creds, ObjectId id, uint64_t offset,
                              ByteSpan data, bool is_append, RpcOp op) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    if (s.code() == ErrorCode::kPermissionDenied) {
      ++stats_.ops_denied;
    }
    Audit(creds, op, id, offset, data.size(), s, false);
    return s;
  };
  auto resolved = ResolveForWrite(creds, id, kPermWrite);
  if (!resolved.ok()) {
    return fail(resolved.status());
  }
  ObjectHandle obj = *resolved;
  if (Status s = ThrottleCheck(creds, data.size()); !s.ok()) {
    return fail(s);
  }

  SimTime now = clock_->Now();
  uint64_t old_size = obj->inode.attrs.size;
  uint64_t start = is_append ? old_size : offset;
  if (data.empty()) {
    Audit(creds, op, id, start, 0, Status::Ok(), false);
    return Status::Ok();
  }
  uint64_t new_size = std::max(old_size, start + data.size());

  uint64_t first = start / kBlockSize;
  uint64_t last = (start + data.size() - 1) / kBlockSize;
  std::vector<BlockDelta> deltas;
  deltas.reserve(last - first + 1);
  for (uint64_t b = first; b <= last; ++b) {
    S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, old_size, start, data));
    S4_ASSIGN_OR_RETURN(DiskAddr addr, writer_->Append(RecordKind::kData, id, b, content));
    block_cache_->Insert(addr, content);
    DiskAddr old_addr = obj->inode.BlockAddr(b);
    deltas.push_back(BlockDelta{b, old_addr, addr});
    obj->inode.blocks[b] = addr;
    SupersedeBlock(id, old_addr);
    ++stats_.data_blocks_written;
  }
  S4_RETURN_IF_ERROR(ApplyBlockWrite(id, obj.get(), now, old_size, new_size, std::move(deltas)));

  bytes_since_checkpoint_ += data.size();
  NoteClientWrite(creds.client, data.size());
  Audit(creds, op, id, start, data.size(), Status::Ok(), false);
  return MaybeAutoCheckpoint();
}

Status S4Drive::Write(const Credentials& creds, ObjectId id, uint64_t offset, ByteSpan data) {
  return WriteInternal(creds, id, offset, data, /*is_append=*/false, RpcOp::kWrite);
}

Result<uint64_t> S4Drive::Append(const Credentials& creds, ObjectId id, ByteSpan data) {
  S4_RETURN_IF_ERROR(WriteInternal(creds, id, 0, data, /*is_append=*/true, RpcOp::kAppend));
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
  return obj->inode.attrs.size;
}

Result<Bytes> S4Drive::ReadCurrent(const CachedObject& obj, uint64_t offset, uint64_t length) {
  uint64_t size = obj.inode.attrs.size;
  if (offset >= size) {
    return Bytes{};
  }
  length = std::min(length, size - offset);
  Bytes out(length, 0);
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + length - 1) / kBlockSize;
  for (uint64_t b = first; b <= last; ++b) {
    DiskAddr addr = obj.inode.BlockAddr(b);
    uint64_t block_start = b * kBlockSize;
    uint64_t from = std::max(offset, block_start);
    uint64_t to = std::min(offset + length, block_start + kBlockSize);
    if (addr == kNullAddr) {
      continue;  // hole: already zero
    }
    S4_ASSIGN_OR_RETURN(Bytes content, ReadRecord(addr, kSectorsPerBlock));
    std::memcpy(out.data() + (from - offset), content.data() + (from - block_start), to - from);
  }
  return out;
}

Result<Bytes> S4Drive::Read(const Credentials& creds, ObjectId id, uint64_t offset,
                            uint64_t length, std::optional<SimTime> at) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    if (s.code() == ErrorCode::kPermissionDenied) {
      ++stats_.ops_denied;
    }
    Audit(creds, RpcOp::kRead, id, offset, length, s, at.has_value());
    return s;
  };
  if (at.has_value()) {
    ++stats_.time_based_reads;
    if (!options_.versioning_enabled) {
      return fail(Status::Unimplemented("versioning disabled"));
    }
    auto view = ReconstructVersion(id, *at);
    if (!view.ok()) {
      return fail(view.status());
    }
    if (Status s = CheckHistoryAccess(view->acl, creds); !s.ok()) {
      return fail(s);
    }
    auto bytes = ReadVersionBytes(*view, offset, length);
    if (!bytes.ok()) {
      return fail(bytes.status());
    }
    Audit(creds, RpcOp::kRead, id, offset, length, Status::Ok(), true);
    return bytes;
  }
  auto loaded = LoadObject(id);
  if (!loaded.ok()) {
    return fail(loaded.status());
  }
  ObjectHandle obj = *loaded;
  if (!obj->exists) {
    return fail(Status::FailedPrecondition("object is deleted"));
  }
  // The audit log is admin-readable only; everything else goes by ACL.
  if (id == kAuditLogObjectId && !IsAdmin(creds)) {
    return fail(Status::PermissionDenied("audit log is admin-only"));
  }
  if (id != kAuditLogObjectId) {
    if (Status s = CheckAccess(*obj, creds, kPermRead); !s.ok()) {
      return fail(s);
    }
  }
  auto bytes = ReadCurrent(*obj, offset, length);
  if (!bytes.ok()) {
    return fail(bytes.status());
  }
  Audit(creds, RpcOp::kRead, id, offset, length, Status::Ok(), false);
  return bytes;
}

Status S4Drive::Truncate(const Credentials& creds, ObjectId id, uint64_t new_size) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    if (s.code() == ErrorCode::kPermissionDenied) {
      ++stats_.ops_denied;
    }
    Audit(creds, RpcOp::kTruncate, id, new_size, 0, s, false);
    return s;
  };
  auto resolved = ResolveForWrite(creds, id, kPermWrite);
  if (!resolved.ok()) {
    return fail(resolved.status());
  }
  ObjectHandle obj = *resolved;
  SimTime now = clock_->Now();
  uint64_t old_size = obj->inode.attrs.size;
  if (new_size == old_size) {
    Audit(creds, RpcOp::kTruncate, id, new_size, 0, Status::Ok(), false);
    return Status::Ok();
  }

  std::vector<BlockDelta> deltas;
  if (new_size < old_size) {
    // Drop whole blocks past the new end.
    uint64_t keep_blocks = (new_size + kBlockSize - 1) / kBlockSize;
    auto it = obj->inode.blocks.lower_bound(keep_blocks);
    while (it != obj->inode.blocks.end()) {
      deltas.push_back(BlockDelta{it->first, it->second, kNullAddr});
      SupersedeBlock(id, it->second);
      it = obj->inode.blocks.erase(it);
    }
    // Rewrite the boundary block with a zeroed tail to preserve the
    // "bytes beyond size are zero" invariant.
    if (new_size % kBlockSize != 0) {
      uint64_t b = new_size / kBlockSize;
      DiskAddr old_addr = obj->inode.BlockAddr(b);
      if (old_addr != kNullAddr) {
        S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, new_size, 0, ByteSpan{}));
        S4_ASSIGN_OR_RETURN(DiskAddr addr, writer_->Append(RecordKind::kData, id, b, content));
        block_cache_->Insert(addr, content);
        deltas.push_back(BlockDelta{b, old_addr, addr});
        obj->inode.blocks[b] = addr;
        SupersedeBlock(id, old_addr);
        ++stats_.data_blocks_written;
      }
    }
  }

  JournalEntry e;
  e.type = JournalEntryType::kTruncate;
  e.time = now;
  e.old_size = old_size;
  e.new_size = new_size;
  // Split oversized delta lists across multiple entries.
  if (deltas.size() <= options_.max_deltas_per_entry) {
    e.blocks = std::move(deltas);
    obj->pending.push_back(std::move(e));
    ++stats_.journal_entries;
  } else {
    for (size_t i = 0; i < deltas.size(); i += options_.max_deltas_per_entry) {
      JournalEntry part = e;
      size_t n = std::min<size_t>(options_.max_deltas_per_entry, deltas.size() - i);
      part.blocks.assign(deltas.begin() + i, deltas.begin() + i + n);
      obj->pending.push_back(std::move(part));
      ++stats_.journal_entries;
    }
  }
  pending_dirty_.insert(id);
  obj->inode.attrs.size = new_size;
  obj->inode.attrs.modify_time = now;
  obj->dirty = true;
  if (obj->pending.size() >= options_.journal_flush_entries) {
    S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj.get()));
  }
  Audit(creds, RpcOp::kTruncate, id, new_size, 0, Status::Ok(), false);
  return Status::Ok();
}

Status S4Drive::Delete(const Credentials& creds, ObjectId id) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    if (s.code() == ErrorCode::kPermissionDenied) {
      ++stats_.ops_denied;
    }
    Audit(creds, RpcOp::kDelete, id, 0, 0, s, false);
    return s;
  };
  auto resolved = ResolveForWrite(creds, id, kPermDelete);
  if (!resolved.ok()) {
    return fail(resolved.status());
  }
  ObjectHandle obj = *resolved;
  ObjectMapEntry* entry = object_map_.Find(id);
  S4_CHECK(entry != nullptr);

  // Checkpoint the final state: the anchor from which pre-deletion versions
  // are reconstructed.
  if (Status s = CheckpointObject(id, obj.get()); !s.ok()) {
    return fail(s);
  }
  SimTime now = clock_->Now();
  JournalEntry e;
  e.type = JournalEntryType::kDelete;
  e.time = now;
  e.checkpoint_addr = entry->checkpoint_addr;
  e.checkpoint_sectors = entry->checkpoint_sectors;
  obj->pending.push_back(std::move(e));
  ++stats_.journal_entries;
  pending_dirty_.insert(id);
  if (Status s = FlushObjectJournal(id, obj.get()); !s.ok()) {
    return fail(s);
  }

  // All current data becomes history (or is freed when unversioned).
  for (const auto& [index, addr] : obj->inode.blocks) {
    (void)index;
    SupersedeBlock(id, addr);
  }
  entry->delete_time = now;
  obj->exists = false;
  obj->dirty = false;
  Audit(creds, RpcOp::kDelete, id, 0, 0, Status::Ok(), false);
  return Status::Ok();
}

Result<ObjectAttrs> S4Drive::GetAttr(const Credentials& creds, ObjectId id,
                                     std::optional<SimTime> at) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    Audit(creds, RpcOp::kGetAttr, id, 0, 0, s, at.has_value());
    return s;
  };
  if (at.has_value()) {
    if (!options_.versioning_enabled) {
      return fail(Status::Unimplemented("versioning disabled"));
    }
    auto view = ReconstructVersion(id, *at);
    if (!view.ok()) {
      return fail(view.status());
    }
    if (Status s = CheckHistoryAccess(view->acl, creds); !s.ok()) {
      return fail(s);
    }
    ObjectAttrs attrs;
    attrs.size = view->size;
    attrs.create_time = view->create_time;
    attrs.modify_time = view->modify_time;
    attrs.opaque = view->opaque;
    Audit(creds, RpcOp::kGetAttr, id, 0, 0, Status::Ok(), true);
    return attrs;
  }
  auto loaded = LoadObject(id);
  if (!loaded.ok()) {
    return fail(loaded.status());
  }
  ObjectHandle obj = *loaded;
  if (!obj->exists) {
    return fail(Status::FailedPrecondition("object is deleted"));
  }
  if (Status s = CheckAccess(*obj, creds, kPermRead); !s.ok()) {
    return fail(s);
  }
  Audit(creds, RpcOp::kGetAttr, id, 0, 0, Status::Ok(), false);
  return obj->inode.attrs;
}

Status S4Drive::SetAttr(const Credentials& creds, ObjectId id, Bytes opaque_attrs) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    Audit(creds, RpcOp::kSetAttr, id, 0, opaque_attrs.size(), s, false);
    return s;
  };
  if (opaque_attrs.size() > kMaxOpaqueAttrBytes) {
    return fail(Status::InvalidArgument("opaque attrs too large"));
  }
  auto resolved = ResolveForWrite(creds, id, kPermSetAttr);
  if (!resolved.ok()) {
    return fail(resolved.status());
  }
  ObjectHandle obj = *resolved;
  SimTime now = clock_->Now();
  JournalEntry e;
  e.type = JournalEntryType::kSetAttr;
  e.time = now;
  e.old_blob = obj->inode.attrs.opaque;
  e.new_blob = opaque_attrs;
  obj->pending.push_back(std::move(e));
  ++stats_.journal_entries;
  pending_dirty_.insert(id);
  obj->inode.attrs.opaque = std::move(opaque_attrs);
  obj->inode.attrs.modify_time = now;
  obj->dirty = true;
  if (obj->pending.size() >= options_.journal_flush_entries) {
    S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj.get()));
  }
  Audit(creds, RpcOp::kSetAttr, id, 0, 0, Status::Ok(), false);
  return Status::Ok();
}

Result<AclEntry> S4Drive::GetAclByUser(const Credentials& creds, ObjectId id, UserId user,
                                       std::optional<SimTime> at) {
  ++stats_.ops_total;
  ChargeCpu();
  auto find = [&](const Acl& acl) -> Result<AclEntry> {
    for (const auto& e : acl) {
      if (e.user == user) {
        return e;
      }
    }
    return Status::NotFound("no acl entry for user");
  };
  auto fail = [&](Status s) {
    Audit(creds, RpcOp::kGetAclByUser, id, user, 0, s, at.has_value());
    return s;
  };
  if (at.has_value()) {
    auto view = ReconstructVersion(id, *at);
    if (!view.ok()) {
      return fail(view.status());
    }
    if (Status s = CheckHistoryAccess(view->acl, creds); !s.ok()) {
      return fail(s);
    }
    Audit(creds, RpcOp::kGetAclByUser, id, user, 0, Status::Ok(), true);
    return find(view->acl);
  }
  auto loaded = LoadObject(id);
  if (!loaded.ok()) {
    return fail(loaded.status());
  }
  if (Status s = CheckAccess(**loaded, creds, kPermRead); !s.ok()) {
    return fail(s);
  }
  Audit(creds, RpcOp::kGetAclByUser, id, user, 0, Status::Ok(), false);
  return find((*loaded)->inode.acl);
}

Result<AclEntry> S4Drive::GetAclByIndex(const Credentials& creds, ObjectId id, uint32_t index,
                                        std::optional<SimTime> at) {
  ++stats_.ops_total;
  ChargeCpu();
  auto pick = [&](const Acl& acl) -> Result<AclEntry> {
    if (index >= acl.size()) {
      return Status::NotFound("acl index out of range");
    }
    return acl[index];
  };
  auto fail = [&](Status s) {
    Audit(creds, RpcOp::kGetAclByIndex, id, index, 0, s, at.has_value());
    return s;
  };
  if (at.has_value()) {
    auto view = ReconstructVersion(id, *at);
    if (!view.ok()) {
      return fail(view.status());
    }
    if (Status s = CheckHistoryAccess(view->acl, creds); !s.ok()) {
      return fail(s);
    }
    Audit(creds, RpcOp::kGetAclByIndex, id, index, 0, Status::Ok(), true);
    return pick(view->acl);
  }
  auto loaded = LoadObject(id);
  if (!loaded.ok()) {
    return fail(loaded.status());
  }
  if (Status s = CheckAccess(**loaded, creds, kPermRead); !s.ok()) {
    return fail(s);
  }
  Audit(creds, RpcOp::kGetAclByIndex, id, index, 0, Status::Ok(), false);
  return pick((*loaded)->inode.acl);
}

Status S4Drive::SetAcl(const Credentials& creds, ObjectId id, AclEntry new_entry) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    if (s.code() == ErrorCode::kPermissionDenied) {
      ++stats_.ops_denied;
    }
    Audit(creds, RpcOp::kSetAcl, id, new_entry.user, 0, s, false);
    return s;
  };
  auto resolved = ResolveForWrite(creds, id, kPermSetAcl);
  if (!resolved.ok()) {
    return fail(resolved.status());
  }
  ObjectHandle obj = *resolved;
  Acl new_acl = obj->inode.acl;
  bool replaced = false;
  for (auto& e : new_acl) {
    if (e.user == new_entry.user) {
      e = new_entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    if (new_acl.size() >= kMaxAclEntries) {
      return fail(Status::InvalidArgument("acl full"));
    }
    new_acl.push_back(new_entry);
  }

  SimTime now = clock_->Now();
  JournalEntry e;
  e.type = JournalEntryType::kSetAcl;
  e.time = now;
  Encoder old_enc;
  EncodeAcl(obj->inode.acl, &old_enc);
  e.old_blob = old_enc.Take();
  Encoder new_enc;
  EncodeAcl(new_acl, &new_enc);
  e.new_blob = new_enc.Take();
  obj->pending.push_back(std::move(e));
  ++stats_.journal_entries;
  pending_dirty_.insert(id);
  obj->inode.acl = std::move(new_acl);
  obj->dirty = true;
  if (obj->pending.size() >= options_.journal_flush_entries) {
    S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj.get()));
  }
  Audit(creds, RpcOp::kSetAcl, id, new_entry.user, 0, Status::Ok(), false);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Partition (named object) table
// ---------------------------------------------------------------------------

Result<std::vector<std::pair<std::string, ObjectId>>> S4Drive::ReadPartitionTable(
    std::optional<SimTime> at) {
  Bytes raw;
  if (at.has_value()) {
    S4_ASSIGN_OR_RETURN(VersionView view, ReconstructVersion(kPartitionTableObjectId, *at));
    S4_ASSIGN_OR_RETURN(raw, ReadVersionBytes(view, 0, view.size));
  } else {
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kPartitionTableObjectId));
    S4_ASSIGN_OR_RETURN(raw, ReadCurrent(*obj, 0, obj->inode.attrs.size));
  }
  std::vector<std::pair<std::string, ObjectId>> table;
  if (raw.empty()) {
    return table;
  }
  Decoder dec(raw);
  S4_ASSIGN_OR_RETURN(uint64_t n, dec.Varint());
  for (uint64_t i = 0; i < n; ++i) {
    S4_ASSIGN_OR_RETURN(std::string name, dec.String());
    S4_ASSIGN_OR_RETURN(uint64_t id, dec.Varint());
    table.emplace_back(std::move(name), id);
  }
  return table;
}

Status S4Drive::WritePartitionTable(
    const std::vector<std::pair<std::string, ObjectId>>& table) {
  Encoder enc;
  enc.PutVarint(table.size());
  for (const auto& [name, id] : table) {
    enc.PutString(name);
    enc.PutVarint(id);
  }
  Bytes data = enc.Take();
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kPartitionTableObjectId));
  uint64_t old_size = obj->inode.attrs.size;
  SimTime now = clock_->Now();

  uint64_t last = data.empty() ? 0 : (data.size() - 1) / kBlockSize;
  std::vector<BlockDelta> deltas;
  for (uint64_t b = 0; b <= last && !data.empty(); ++b) {
    S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, old_size, 0, data));
    S4_ASSIGN_OR_RETURN(DiskAddr addr,
                        writer_->Append(RecordKind::kData, kPartitionTableObjectId, b, content));
    block_cache_->Insert(addr, content);
    DiskAddr old_addr = obj->inode.BlockAddr(b);
    deltas.push_back(BlockDelta{b, old_addr, addr});
    obj->inode.blocks[b] = addr;
    SupersedeBlock(kPartitionTableObjectId, old_addr);
    ++stats_.data_blocks_written;
  }
  // Drop blocks past the new end (table shrank).
  uint64_t keep_blocks = (data.size() + kBlockSize - 1) / kBlockSize;
  auto it = obj->inode.blocks.lower_bound(keep_blocks);
  while (it != obj->inode.blocks.end()) {
    deltas.push_back(BlockDelta{it->first, it->second, kNullAddr});
    SupersedeBlock(kPartitionTableObjectId, it->second);
    it = obj->inode.blocks.erase(it);
  }
  return ApplyBlockWrite(kPartitionTableObjectId, obj.get(), now, old_size, data.size(),
                         std::move(deltas));
}

Status S4Drive::PCreate(const Credentials& creds, const std::string& name, ObjectId id) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    Audit(creds, RpcOp::kPCreate, id, 0, 0, s, false);
    return s;
  };
  if (name.empty() || name.size() > kMaxPartitionName) {
    return fail(Status::InvalidArgument("bad partition name"));
  }
  if (object_map_.Find(id) == nullptr) {
    return fail(Status::NotFound("no such object"));
  }
  auto table = ReadPartitionTable(std::nullopt);
  if (!table.ok()) {
    return fail(table.status());
  }
  for (const auto& [existing, eid] : *table) {
    (void)eid;
    if (existing == name) {
      return fail(Status::AlreadyExists("partition name in use"));
    }
  }
  table->emplace_back(name, id);
  if (Status s = WritePartitionTable(*table); !s.ok()) {
    return fail(s);
  }
  Audit(creds, RpcOp::kPCreate, id, 0, 0, Status::Ok(), false);
  return Status::Ok();
}

Status S4Drive::PDelete(const Credentials& creds, const std::string& name) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    Audit(creds, RpcOp::kPDelete, kInvalidObjectId, 0, 0, s, false);
    return s;
  };
  auto table = ReadPartitionTable(std::nullopt);
  if (!table.ok()) {
    return fail(table.status());
  }
  auto it = std::find_if(table->begin(), table->end(),
                         [&](const auto& p) { return p.first == name; });
  if (it == table->end()) {
    return fail(Status::NotFound("no such partition"));
  }
  table->erase(it);
  if (Status s = WritePartitionTable(*table); !s.ok()) {
    return fail(s);
  }
  Audit(creds, RpcOp::kPDelete, kInvalidObjectId, 0, 0, Status::Ok(), false);
  return Status::Ok();
}

Result<std::vector<std::pair<std::string, ObjectId>>> S4Drive::PList(
    const Credentials& creds, std::optional<SimTime> at) {
  ++stats_.ops_total;
  ChargeCpu();
  auto table = ReadPartitionTable(at);
  Audit(creds, RpcOp::kPList, kPartitionTableObjectId, 0, 0, table.status(), at.has_value());
  return table;
}

Result<ObjectId> S4Drive::PMount(const Credentials& creds, const std::string& name,
                                 std::optional<SimTime> at) {
  ++stats_.ops_total;
  ChargeCpu();
  auto fail = [&](Status s) {
    Audit(creds, RpcOp::kPMount, kInvalidObjectId, 0, 0, s, at.has_value());
    return s;
  };
  auto table = ReadPartitionTable(at);
  if (!table.ok()) {
    return fail(table.status());
  }
  for (const auto& [existing, id] : *table) {
    if (existing == name) {
      Audit(creds, RpcOp::kPMount, id, 0, 0, Status::Ok(), at.has_value());
      return id;
    }
  }
  return fail(Status::NotFound("no such partition"));
}

// ---------------------------------------------------------------------------
// Device operations
// ---------------------------------------------------------------------------

Status S4Drive::Sync(const Credentials& creds) {
  ++stats_.ops_total;
  ChargeCpu();
  S4_RETURN_IF_ERROR(FlushAllPending());
  S4_RETURN_IF_ERROR(writer_->Flush());
  Audit(creds, RpcOp::kSync, kInvalidObjectId, 0, 0, Status::Ok(), false);
  return MaybeAutoCheckpoint();
}

Status S4Drive::SetWindow(const Credentials& creds, SimDuration window) {
  ++stats_.ops_total;
  ChargeCpu();
  if (!IsAdmin(creds)) {
    ++stats_.ops_denied;
    Status s = Status::PermissionDenied("SetWindow requires administrative access");
    Audit(creds, RpcOp::kSetWindow, kInvalidObjectId, 0, 0, s, false);
    return s;
  }
  if (window < 0) {
    return Status::InvalidArgument("negative window");
  }
  detection_window_ = window;
  Audit(creds, RpcOp::kSetWindow, kInvalidObjectId, 0, static_cast<uint64_t>(window),
        Status::Ok(), false);
  return Status::Ok();
}

Status S4Drive::AppendAuditBuffered(bool force) {
  if (audit_codec_.buffered_bytes() == 0) {
    return Status::Ok();
  }
  if (!force && audit_codec_.buffered_bytes() < kBlockSize) {
    return Status::Ok();
  }
  Bytes data = audit_codec_.TakeBuffered();
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kAuditLogObjectId));
  uint64_t old_size = obj->inode.attrs.size;
  uint64_t start = old_size;
  SimTime now = clock_->Now();
  uint64_t first = start / kBlockSize;
  uint64_t last = (start + data.size() - 1) / kBlockSize;
  std::vector<BlockDelta> deltas;
  for (uint64_t b = first; b <= last; ++b) {
    S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, old_size, start, data));
    S4_ASSIGN_OR_RETURN(DiskAddr addr,
                        writer_->Append(RecordKind::kData, kAuditLogObjectId, b, content));
    block_cache_->Insert(addr, content);
    DiskAddr old_addr = obj->inode.BlockAddr(b);
    deltas.push_back(BlockDelta{b, old_addr, addr});
    obj->inode.blocks[b] = addr;
    SupersedeBlock(kAuditLogObjectId, old_addr);
    ++stats_.audit_blocks_written;
  }
  return ApplyBlockWrite(kAuditLogObjectId, obj.get(), now, old_size, start + data.size(),
                         std::move(deltas));
}

Result<std::vector<AuditRecord>> S4Drive::QueryAudit(const Credentials& creds,
                                                     const AuditQuery& query) {
  if (!IsAdmin(creds)) {
    return Status::PermissionDenied("audit log is admin-only");
  }
  // Include buffered records: flush them into the object first.
  S4_RETURN_IF_ERROR(AppendAuditBuffered(/*force=*/true));
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kAuditLogObjectId));
  S4_ASSIGN_OR_RETURN(Bytes raw, ReadCurrent(*obj, 0, obj->inode.attrs.size));
  std::vector<AuditRecord> out;
  S4_RETURN_IF_ERROR(AuditLogCodec::DecodeAll(raw, query, &out));
  return out;
}

}  // namespace s4
