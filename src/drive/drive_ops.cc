// S4Drive data path: the Table 1 object, partition, and device operations.
//
// Every op here is a thin Execute() body: the shared prologue (op count, CPU
// charge, admin gate, throttle) and epilogue (denial count, audit record,
// latency histogram) live in BeginOp/EndOp in s4_drive.cc. Bodies mutate the
// OpArgs audit fields as the op learns them (e.g. the resolved append
// offset), so the audit record describes what actually happened.
#include <algorithm>
#include <cstring>

#include "src/drive/s4_drive.h"
#include "src/util/check.h"

namespace s4 {

namespace {

// Caps that keep every journal entry within a single journal sector.
constexpr size_t kMaxOpaqueAttrBytes = 200;
constexpr size_t kMaxAclEntries = 40;
constexpr size_t kMaxPartitionName = 255;

// One challenge/response round returns at most this many proof bytes; the
// auditor iterates until it catches up to the drive's claimed chain end.
constexpr uint64_t kMaxChallengeRoundBytes = 1ull << 20;

}  // namespace

// ---------------------------------------------------------------------------
// Object operations
// ---------------------------------------------------------------------------

Result<ObjectId> S4Drive::Create(OpContext& ctx, Bytes opaque_attrs) {
  OpArgs a{RpcOp::kCreate};
  a.length = opaque_attrs.size();
  return Execute(ctx, a, [&](OpArgs& args) -> Result<ObjectId> {
    if (opaque_attrs.size() > kMaxOpaqueAttrBytes) {
      return Status::InvalidArgument("opaque attrs too large");
    }
    SimTime now = clock_->Now();
    ObjectId id = object_map_.AllocateId();
    ObjectMapEntry entry;
    entry.create_time = now;
    entry.oldest_time = now;
    UpdateExpiryIndex(id, &object_map_.Put(id, entry));

    auto obj = std::make_shared<CachedObject>();
    obj->inode.id = id;
    obj->inode.attrs.create_time = now;
    obj->inode.attrs.modify_time = now;
    obj->inode.attrs.opaque = opaque_attrs;
    obj->inode.acl.push_back(AclEntry{ctx.creds.user, kPermAll});
    obj->dirty = true;

    JournalEntry e;
    e.type = JournalEntryType::kCreate;
    e.time = now;
    Encoder acl_enc;
    EncodeAcl(obj->inode.acl, &acl_enc);
    e.old_blob = acl_enc.Take();
    e.new_blob = std::move(opaque_attrs);
    obj->pending.push_back(std::move(e));
    m_.journal_entries->Inc();
    pending_dirty_.insert(id);

    object_cache_->Put(id, obj, 256);
    args.object = id;
    args.length = 0;
    return id;
  });
}

Result<ObjectId> S4Drive::Create(const Credentials& creds, Bytes opaque_attrs) {
  OpContext ctx = MakeContext(creds, RpcOp::kCreate);
  return Create(ctx, std::move(opaque_attrs));
}

Result<S4Drive::ObjectHandle> S4Drive::ResolveForWrite(const Credentials& creds, ObjectId id,
                                                       uint8_t needed) {
  if (id == kAuditLogObjectId || id == kPartitionTableObjectId) {
    return Status::PermissionDenied("reserved object is drive-managed");
  }
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
  if (!obj->exists) {
    return Status::FailedPrecondition("object is deleted");
  }
  S4_RETURN_IF_ERROR(CheckAccess(*obj, creds, needed));
  return obj;
}

Result<Bytes> S4Drive::BuildBlockContent(const CachedObject& obj, uint64_t block_index,
                                         uint64_t valid_bytes, uint64_t write_off,
                                         ByteSpan data) {
  // Invariant maintained by all writers: on-disk bytes at offsets >= object
  // size are zero, so reads never leak stale data across truncate/extend.
  uint64_t block_start = block_index * kBlockSize;
  Bytes content;
  DiskAddr old_addr = obj.inode.BlockAddr(block_index);
  if (old_addr != kNullAddr) {
    S4_ASSIGN_OR_RETURN(content, ReadRecord(old_addr, kSectorsPerBlock));
  } else {
    content.assign(kBlockSize, 0);
  }
  // Zero anything beyond the currently valid prefix of this block.
  uint64_t valid_in_block =
      valid_bytes > block_start ? std::min<uint64_t>(valid_bytes - block_start, kBlockSize) : 0;
  if (valid_in_block < kBlockSize) {
    std::memset(content.data() + valid_in_block, 0, kBlockSize - valid_in_block);
  }
  // Lay in the new data overlapping this block.
  uint64_t write_end = write_off + data.size();
  uint64_t block_end = block_start + kBlockSize;
  uint64_t copy_from = std::max(write_off, block_start);
  uint64_t copy_to = std::min(write_end, block_end);
  if (copy_from < copy_to) {
    std::memcpy(content.data() + (copy_from - block_start), data.data() + (copy_from - write_off),
                copy_to - copy_from);
  }
  return content;
}

void S4Drive::SupersedeBlock(ObjectId id, DiskAddr old_addr) {
  if (old_addr == kNullAddr) {
    return;
  }
  if (ObjectIsVersioned(id)) {
    sut_->LiveToHistory(sb_.SegmentOf(old_addr), kSectorsPerBlock);
  } else {
    sut_->ReleaseLive(sb_.SegmentOf(old_addr), kSectorsPerBlock);
  }
}

Status S4Drive::ApplyBlockWrite(ObjectId id, CachedObject* obj, SimTime now, uint64_t old_size,
                                uint64_t new_size, std::vector<BlockDelta> deltas) {
  // Split into journal entries that each fit a single journal sector.
  size_t i = 0;
  do {
    JournalEntry e;
    e.type = JournalEntryType::kWrite;
    e.time = now;
    e.old_size = old_size;
    e.new_size = new_size;
    size_t n = std::min<size_t>(options_.max_deltas_per_entry, deltas.size() - i);
    e.blocks.assign(deltas.begin() + i, deltas.begin() + i + n);
    i += n;
    obj->pending.push_back(std::move(e));
    m_.journal_entries->Inc();
  } while (i < deltas.size());
  pending_dirty_.insert(id);

  obj->inode.attrs.size = new_size;
  obj->inode.attrs.modify_time = now;
  obj->dirty = true;

  if (obj->pending.size() >= options_.journal_flush_entries) {
    S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj));
  }
  return Status::Ok();
}

Status S4Drive::WriteBody(OpContext& ctx, OpArgs& args, ObjectId id, uint64_t offset,
                          ByteSpan data, bool is_append) {
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, ResolveForWrite(ctx.creds, id, kPermWrite));

  SimTime now = clock_->Now();
  uint64_t old_size = obj->inode.attrs.size;
  uint64_t start = is_append ? old_size : offset;
  args.offset = start;
  if (data.empty()) {
    args.length = 0;
    return Status::Ok();
  }
  uint64_t new_size = std::max(old_size, start + data.size());

  uint64_t first = start / kBlockSize;
  uint64_t last = (start + data.size() - 1) / kBlockSize;
  std::vector<BlockDelta> deltas;
  deltas.reserve(last - first + 1);
  for (uint64_t b = first; b <= last; ++b) {
    S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, old_size, start, data));
    S4_ASSIGN_OR_RETURN(DiskAddr addr, writer_->Append(RecordKind::kData, id, b, content, actx()));
    block_cache_->Insert(addr, content);
    DiskAddr old_addr = obj->inode.BlockAddr(b);
    deltas.push_back(BlockDelta{b, old_addr, addr});
    obj->inode.blocks[b] = addr;
    SupersedeBlock(id, old_addr);
    m_.data_blocks_written->Inc();
  }
  S4_RETURN_IF_ERROR(ApplyBlockWrite(id, obj.get(), now, old_size, new_size, std::move(deltas)));

  bytes_since_checkpoint_ += data.size();
  NoteClientWrite(ctx.creds.client, data.size());
  return MaybeAutoCheckpoint();
}

Status S4Drive::Write(OpContext& ctx, ObjectId id, uint64_t offset, ByteSpan data) {
  OpArgs a{RpcOp::kWrite};
  a.object = id;
  a.offset = offset;
  a.length = data.size();
  a.admission_bytes = data.size();
  return Execute(ctx, a, [&](OpArgs& args) -> Status {
    return WriteBody(ctx, args, id, offset, data, /*is_append=*/false);
  });
}

Status S4Drive::Write(const Credentials& creds, ObjectId id, uint64_t offset, ByteSpan data) {
  OpContext ctx = MakeContext(creds, RpcOp::kWrite);
  return Write(ctx, id, offset, data);
}

Result<uint64_t> S4Drive::Append(OpContext& ctx, ObjectId id, ByteSpan data) {
  OpArgs a{RpcOp::kAppend};
  a.object = id;
  a.length = data.size();
  a.admission_bytes = data.size();
  return Execute(ctx, a, [&](OpArgs& args) -> Result<uint64_t> {
    S4_RETURN_IF_ERROR(WriteBody(ctx, args, id, 0, data, /*is_append=*/true));
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
    return obj->inode.attrs.size;
  });
}

Result<uint64_t> S4Drive::Append(const Credentials& creds, ObjectId id, ByteSpan data) {
  OpContext ctx = MakeContext(creds, RpcOp::kAppend);
  return Append(ctx, id, data);
}

Status S4Drive::XorWrite(OpContext& ctx, ObjectId id, uint64_t offset, ByteSpan data) {
  OpArgs a{RpcOp::kXorWrite};
  a.object = id;
  a.offset = offset;
  a.length = data.size();
  a.admission_bytes = data.size();
  return Execute(ctx, a, [&](OpArgs& args) -> Status {
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, ResolveForWrite(ctx.creds, id, kPermWrite));
    Bytes mixed(data.begin(), data.end());
    if (!mixed.empty()) {
      // Bytes past the current size XOR against zeros, so only the resident
      // prefix needs reading.
      S4_ASSIGN_OR_RETURN(Bytes old, ReadCurrent(*obj, offset, mixed.size()));
      for (size_t i = 0; i < old.size(); ++i) {
        mixed[i] = static_cast<uint8_t>(mixed[i] ^ old[i]);
      }
    }
    return WriteBody(ctx, args, id, offset, mixed, /*is_append=*/false);
  });
}

Status S4Drive::XorWrite(const Credentials& creds, ObjectId id, uint64_t offset,
                         ByteSpan data) {
  OpContext ctx = MakeContext(creds, RpcOp::kXorWrite);
  return XorWrite(ctx, id, offset, data);
}

Result<Bytes> S4Drive::ReadCurrent(const CachedObject& obj, uint64_t offset, uint64_t length) {
  uint64_t size = obj.inode.attrs.size;
  if (offset >= size) {
    return Bytes{};
  }
  length = std::min(length, size - offset);
  Bytes out(length, 0);
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + length - 1) / kBlockSize;
  for (uint64_t b = first; b <= last; ++b) {
    DiskAddr addr = obj.inode.BlockAddr(b);
    uint64_t block_start = b * kBlockSize;
    uint64_t from = std::max(offset, block_start);
    uint64_t to = std::min(offset + length, block_start + kBlockSize);
    if (addr == kNullAddr) {
      continue;  // hole: already zero
    }
    S4_ASSIGN_OR_RETURN(Bytes content, ReadRecord(addr, kSectorsPerBlock));
    std::memcpy(out.data() + (from - offset), content.data() + (from - block_start), to - from);
  }
  return out;
}

Result<Bytes> S4Drive::Read(OpContext& ctx, ObjectId id, uint64_t offset, uint64_t length,
                            std::optional<SimTime> at) {
  OpArgs a{RpcOp::kRead};
  a.object = id;
  a.offset = offset;
  a.length = length;
  a.time_based = at.has_value();
  return Execute(ctx, a, [&](OpArgs&) -> Result<Bytes> {
    if (at.has_value()) {
      if (!options_.versioning_enabled) {
        return Status::Unimplemented("versioning disabled");
      }
      S4_ASSIGN_OR_RETURN(VersionView view, ReconstructForAccess(ctx, id, *at));
      return ReadVersionBytes(view, offset, length);
    }
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
    if (!obj->exists) {
      return Status::FailedPrecondition("object is deleted");
    }
    // The audit log is admin-readable only; everything else goes by ACL.
    if (id == kAuditLogObjectId && !IsAdmin(ctx.creds)) {
      return Status::PermissionDenied("audit log is admin-only");
    }
    if (id != kAuditLogObjectId) {
      S4_RETURN_IF_ERROR(CheckAccess(*obj, ctx.creds, kPermRead));
    }
    return ReadCurrent(*obj, offset, length);
  });
}

Result<Bytes> S4Drive::Read(const Credentials& creds, ObjectId id, uint64_t offset,
                            uint64_t length, std::optional<SimTime> at) {
  OpContext ctx = MakeContext(creds, RpcOp::kRead);
  return Read(ctx, id, offset, length, at);
}

Status S4Drive::Truncate(OpContext& ctx, ObjectId id, uint64_t new_size) {
  OpArgs a{RpcOp::kTruncate};
  a.object = id;
  a.offset = new_size;
  return Execute(ctx, a, [&](OpArgs&) -> Status {
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, ResolveForWrite(ctx.creds, id, kPermWrite));
    SimTime now = clock_->Now();
    uint64_t old_size = obj->inode.attrs.size;
    if (new_size == old_size) {
      return Status::Ok();
    }

    std::vector<BlockDelta> deltas;
    if (new_size < old_size) {
      // Drop whole blocks past the new end.
      uint64_t keep_blocks = (new_size + kBlockSize - 1) / kBlockSize;
      auto it = obj->inode.blocks.lower_bound(keep_blocks);
      while (it != obj->inode.blocks.end()) {
        deltas.push_back(BlockDelta{it->first, it->second, kNullAddr});
        SupersedeBlock(id, it->second);
        it = obj->inode.blocks.erase(it);
      }
      // Rewrite the boundary block with a zeroed tail to preserve the
      // "bytes beyond size are zero" invariant.
      if (new_size % kBlockSize != 0) {
        uint64_t b = new_size / kBlockSize;
        DiskAddr old_addr = obj->inode.BlockAddr(b);
        if (old_addr != kNullAddr) {
          S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, new_size, 0, ByteSpan{}));
          S4_ASSIGN_OR_RETURN(DiskAddr addr,
                              writer_->Append(RecordKind::kData, id, b, content, actx()));
          block_cache_->Insert(addr, content);
          deltas.push_back(BlockDelta{b, old_addr, addr});
          obj->inode.blocks[b] = addr;
          SupersedeBlock(id, old_addr);
          m_.data_blocks_written->Inc();
        }
      }
    }

    JournalEntry e;
    e.type = JournalEntryType::kTruncate;
    e.time = now;
    e.old_size = old_size;
    e.new_size = new_size;
    // Split oversized delta lists across multiple entries.
    if (deltas.size() <= options_.max_deltas_per_entry) {
      e.blocks = std::move(deltas);
      obj->pending.push_back(std::move(e));
      m_.journal_entries->Inc();
    } else {
      for (size_t i = 0; i < deltas.size(); i += options_.max_deltas_per_entry) {
        JournalEntry part = e;
        size_t n = std::min<size_t>(options_.max_deltas_per_entry, deltas.size() - i);
        part.blocks.assign(deltas.begin() + i, deltas.begin() + i + n);
        obj->pending.push_back(std::move(part));
        m_.journal_entries->Inc();
      }
    }
    pending_dirty_.insert(id);
    obj->inode.attrs.size = new_size;
    obj->inode.attrs.modify_time = now;
    obj->dirty = true;
    if (obj->pending.size() >= options_.journal_flush_entries) {
      S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj.get()));
    }
    return Status::Ok();
  });
}

Status S4Drive::Truncate(const Credentials& creds, ObjectId id, uint64_t new_size) {
  OpContext ctx = MakeContext(creds, RpcOp::kTruncate);
  return Truncate(ctx, id, new_size);
}

Status S4Drive::Delete(OpContext& ctx, ObjectId id) {
  OpArgs a{RpcOp::kDelete};
  a.object = id;
  return Execute(ctx, a, [&](OpArgs&) -> Status {
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, ResolveForWrite(ctx.creds, id, kPermDelete));
    ObjectMapEntry* entry = object_map_.Find(id);
    S4_CHECK(entry != nullptr);

    // Checkpoint the final state: the anchor from which pre-deletion versions
    // are reconstructed.
    S4_RETURN_IF_ERROR(CheckpointObject(id, obj.get()));
    SimTime now = clock_->Now();
    JournalEntry e;
    e.type = JournalEntryType::kDelete;
    e.time = now;
    e.checkpoint_addr = entry->checkpoint_addr;
    e.checkpoint_sectors = entry->checkpoint_sectors;
    obj->pending.push_back(std::move(e));
    m_.journal_entries->Inc();
    pending_dirty_.insert(id);
    S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj.get()));

    // All current data becomes history (or is freed when unversioned).
    for (const auto& [index, addr] : obj->inode.blocks) {
      (void)index;
      SupersedeBlock(id, addr);
    }
    entry->delete_time = now;
    UpdateExpiryIndex(id, entry);
    obj->exists = false;
    obj->dirty = false;
    return Status::Ok();
  });
}

Status S4Drive::Delete(const Credentials& creds, ObjectId id) {
  OpContext ctx = MakeContext(creds, RpcOp::kDelete);
  return Delete(ctx, id);
}

Result<ObjectAttrs> S4Drive::GetAttr(OpContext& ctx, ObjectId id, std::optional<SimTime> at) {
  OpArgs a{RpcOp::kGetAttr};
  a.object = id;
  a.time_based = at.has_value();
  return Execute(ctx, a, [&](OpArgs&) -> Result<ObjectAttrs> {
    if (at.has_value()) {
      if (!options_.versioning_enabled) {
        return Status::Unimplemented("versioning disabled");
      }
      S4_ASSIGN_OR_RETURN(VersionView view, ReconstructForAccess(ctx, id, *at));
      ObjectAttrs attrs;
      attrs.size = view.size;
      attrs.create_time = view.create_time;
      attrs.modify_time = view.modify_time;
      attrs.opaque = view.opaque;
      return attrs;
    }
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
    if (!obj->exists) {
      return Status::FailedPrecondition("object is deleted");
    }
    S4_RETURN_IF_ERROR(CheckAccess(*obj, ctx.creds, kPermRead));
    return obj->inode.attrs;
  });
}

Result<ObjectAttrs> S4Drive::GetAttr(const Credentials& creds, ObjectId id,
                                     std::optional<SimTime> at) {
  OpContext ctx = MakeContext(creds, RpcOp::kGetAttr);
  return GetAttr(ctx, id, at);
}

Status S4Drive::SetAttr(OpContext& ctx, ObjectId id, Bytes opaque_attrs) {
  OpArgs a{RpcOp::kSetAttr};
  a.object = id;
  a.length = opaque_attrs.size();
  return Execute(ctx, a, [&](OpArgs& args) -> Status {
    if (opaque_attrs.size() > kMaxOpaqueAttrBytes) {
      return Status::InvalidArgument("opaque attrs too large");
    }
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, ResolveForWrite(ctx.creds, id, kPermSetAttr));
    SimTime now = clock_->Now();
    JournalEntry e;
    e.type = JournalEntryType::kSetAttr;
    e.time = now;
    e.old_blob = obj->inode.attrs.opaque;
    e.new_blob = opaque_attrs;
    obj->pending.push_back(std::move(e));
    m_.journal_entries->Inc();
    pending_dirty_.insert(id);
    obj->inode.attrs.opaque = std::move(opaque_attrs);
    obj->inode.attrs.modify_time = now;
    obj->dirty = true;
    if (obj->pending.size() >= options_.journal_flush_entries) {
      S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj.get()));
    }
    args.length = 0;
    return Status::Ok();
  });
}

Status S4Drive::SetAttr(const Credentials& creds, ObjectId id, Bytes opaque_attrs) {
  OpContext ctx = MakeContext(creds, RpcOp::kSetAttr);
  return SetAttr(ctx, id, std::move(opaque_attrs));
}

Result<AclEntry> S4Drive::GetAclByUser(OpContext& ctx, ObjectId id, UserId user,
                                       std::optional<SimTime> at) {
  OpArgs a{RpcOp::kGetAclByUser};
  a.object = id;
  a.offset = user;
  a.time_based = at.has_value();
  return Execute(ctx, a, [&](OpArgs&) -> Result<AclEntry> {
    auto find = [&](const Acl& acl) -> Result<AclEntry> {
      for (const auto& e : acl) {
        if (e.user == user) {
          return e;
        }
      }
      return Status::NotFound("no acl entry for user");
    };
    if (at.has_value()) {
      S4_ASSIGN_OR_RETURN(VersionView view, ReconstructForAccess(ctx, id, *at));
      return find(view.acl);
    }
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
    S4_RETURN_IF_ERROR(CheckAccess(*obj, ctx.creds, kPermRead));
    return find(obj->inode.acl);
  });
}

Result<AclEntry> S4Drive::GetAclByUser(const Credentials& creds, ObjectId id, UserId user,
                                       std::optional<SimTime> at) {
  OpContext ctx = MakeContext(creds, RpcOp::kGetAclByUser);
  return GetAclByUser(ctx, id, user, at);
}

Result<AclEntry> S4Drive::GetAclByIndex(OpContext& ctx, ObjectId id, uint32_t index,
                                        std::optional<SimTime> at) {
  OpArgs a{RpcOp::kGetAclByIndex};
  a.object = id;
  a.offset = index;
  a.time_based = at.has_value();
  return Execute(ctx, a, [&](OpArgs&) -> Result<AclEntry> {
    auto pick = [&](const Acl& acl) -> Result<AclEntry> {
      if (index >= acl.size()) {
        return Status::NotFound("acl index out of range");
      }
      return acl[index];
    };
    if (at.has_value()) {
      S4_ASSIGN_OR_RETURN(VersionView view, ReconstructForAccess(ctx, id, *at));
      return pick(view.acl);
    }
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
    S4_RETURN_IF_ERROR(CheckAccess(*obj, ctx.creds, kPermRead));
    return pick(obj->inode.acl);
  });
}

Result<AclEntry> S4Drive::GetAclByIndex(const Credentials& creds, ObjectId id, uint32_t index,
                                        std::optional<SimTime> at) {
  OpContext ctx = MakeContext(creds, RpcOp::kGetAclByIndex);
  return GetAclByIndex(ctx, id, index, at);
}

Status S4Drive::SetAcl(OpContext& ctx, ObjectId id, AclEntry new_entry) {
  OpArgs a{RpcOp::kSetAcl};
  a.object = id;
  a.offset = new_entry.user;
  return Execute(ctx, a, [&](OpArgs&) -> Status {
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, ResolveForWrite(ctx.creds, id, kPermSetAcl));
    Acl new_acl = obj->inode.acl;
    bool replaced = false;
    for (auto& e : new_acl) {
      if (e.user == new_entry.user) {
        e = new_entry;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      if (new_acl.size() >= kMaxAclEntries) {
        return Status::InvalidArgument("acl full");
      }
      new_acl.push_back(new_entry);
    }

    SimTime now = clock_->Now();
    JournalEntry e;
    e.type = JournalEntryType::kSetAcl;
    e.time = now;
    Encoder old_enc;
    EncodeAcl(obj->inode.acl, &old_enc);
    e.old_blob = old_enc.Take();
    Encoder new_enc;
    EncodeAcl(new_acl, &new_enc);
    e.new_blob = new_enc.Take();
    obj->pending.push_back(std::move(e));
    m_.journal_entries->Inc();
    pending_dirty_.insert(id);
    obj->inode.acl = std::move(new_acl);
    obj->dirty = true;
    if (obj->pending.size() >= options_.journal_flush_entries) {
      S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj.get()));
    }
    return Status::Ok();
  });
}

Status S4Drive::SetAcl(const Credentials& creds, ObjectId id, AclEntry entry) {
  OpContext ctx = MakeContext(creds, RpcOp::kSetAcl);
  return SetAcl(ctx, id, entry);
}

// ---------------------------------------------------------------------------
// Partition (named object) table
// ---------------------------------------------------------------------------

Result<std::vector<std::pair<std::string, ObjectId>>> S4Drive::ReadPartitionTable(
    std::optional<SimTime> at) {
  Bytes raw;
  if (at.has_value()) {
    S4_ASSIGN_OR_RETURN(VersionView view, ReconstructVersion(kPartitionTableObjectId, *at));
    S4_ASSIGN_OR_RETURN(raw, ReadVersionBytes(view, 0, view.size));
  } else {
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kPartitionTableObjectId));
    S4_ASSIGN_OR_RETURN(raw, ReadCurrent(*obj, 0, obj->inode.attrs.size));
  }
  std::vector<std::pair<std::string, ObjectId>> table;
  if (raw.empty()) {
    return table;
  }
  Decoder dec(raw);
  S4_ASSIGN_OR_RETURN(uint64_t n, dec.Varint());
  for (uint64_t i = 0; i < n; ++i) {
    S4_ASSIGN_OR_RETURN(std::string name, dec.String());
    S4_ASSIGN_OR_RETURN(uint64_t id, dec.Varint());
    table.emplace_back(std::move(name), id);
  }
  return table;
}

Status S4Drive::WritePartitionTable(
    const std::vector<std::pair<std::string, ObjectId>>& table) {
  Encoder enc;
  enc.PutVarint(table.size());
  for (const auto& [name, id] : table) {
    enc.PutString(name);
    enc.PutVarint(id);
  }
  Bytes data = enc.Take();
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kPartitionTableObjectId));
  uint64_t old_size = obj->inode.attrs.size;
  SimTime now = clock_->Now();

  uint64_t last = data.empty() ? 0 : (data.size() - 1) / kBlockSize;
  std::vector<BlockDelta> deltas;
  for (uint64_t b = 0; b <= last && !data.empty(); ++b) {
    S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, old_size, 0, data));
    S4_ASSIGN_OR_RETURN(DiskAddr addr, writer_->Append(RecordKind::kData, kPartitionTableObjectId,
                                                       b, content, actx()));
    block_cache_->Insert(addr, content);
    DiskAddr old_addr = obj->inode.BlockAddr(b);
    deltas.push_back(BlockDelta{b, old_addr, addr});
    obj->inode.blocks[b] = addr;
    SupersedeBlock(kPartitionTableObjectId, old_addr);
    m_.data_blocks_written->Inc();
  }
  // Drop blocks past the new end (table shrank).
  uint64_t keep_blocks = (data.size() + kBlockSize - 1) / kBlockSize;
  auto it = obj->inode.blocks.lower_bound(keep_blocks);
  while (it != obj->inode.blocks.end()) {
    deltas.push_back(BlockDelta{it->first, it->second, kNullAddr});
    SupersedeBlock(kPartitionTableObjectId, it->second);
    it = obj->inode.blocks.erase(it);
  }
  return ApplyBlockWrite(kPartitionTableObjectId, obj.get(), now, old_size, data.size(),
                         std::move(deltas));
}

Status S4Drive::PCreate(OpContext& ctx, const std::string& name, ObjectId id) {
  OpArgs a{RpcOp::kPCreate};
  a.object = id;
  return Execute(ctx, a, [&](OpArgs&) -> Status {
    if (name.empty() || name.size() > kMaxPartitionName) {
      return Status::InvalidArgument("bad partition name");
    }
    if (object_map_.Find(id) == nullptr) {
      return Status::NotFound("no such object");
    }
    S4_ASSIGN_OR_RETURN(auto table, ReadPartitionTable(std::nullopt));
    for (const auto& [existing, eid] : table) {
      (void)eid;
      if (existing == name) {
        return Status::AlreadyExists("partition name in use");
      }
    }
    table.emplace_back(name, id);
    return WritePartitionTable(table);
  });
}

Status S4Drive::PCreate(const Credentials& creds, const std::string& name, ObjectId id) {
  OpContext ctx = MakeContext(creds, RpcOp::kPCreate);
  return PCreate(ctx, name, id);
}

Status S4Drive::PDelete(OpContext& ctx, const std::string& name) {
  OpArgs a{RpcOp::kPDelete};
  return Execute(ctx, a, [&](OpArgs&) -> Status {
    S4_ASSIGN_OR_RETURN(auto table, ReadPartitionTable(std::nullopt));
    auto it = std::find_if(table.begin(), table.end(),
                           [&](const auto& p) { return p.first == name; });
    if (it == table.end()) {
      return Status::NotFound("no such partition");
    }
    table.erase(it);
    return WritePartitionTable(table);
  });
}

Status S4Drive::PDelete(const Credentials& creds, const std::string& name) {
  OpContext ctx = MakeContext(creds, RpcOp::kPDelete);
  return PDelete(ctx, name);
}

Result<std::vector<std::pair<std::string, ObjectId>>> S4Drive::PList(OpContext& ctx,
                                                                     std::optional<SimTime> at) {
  OpArgs a{RpcOp::kPList};
  a.object = kPartitionTableObjectId;
  a.time_based = at.has_value();
  return Execute(ctx, a,
                 [&](OpArgs&) -> Result<std::vector<std::pair<std::string, ObjectId>>> {
                   return ReadPartitionTable(at);
                 });
}

Result<std::vector<std::pair<std::string, ObjectId>>> S4Drive::PList(const Credentials& creds,
                                                                     std::optional<SimTime> at) {
  OpContext ctx = MakeContext(creds, RpcOp::kPList);
  return PList(ctx, at);
}

Result<ObjectId> S4Drive::PMount(OpContext& ctx, const std::string& name,
                                 std::optional<SimTime> at) {
  OpArgs a{RpcOp::kPMount};
  a.time_based = at.has_value();
  return Execute(ctx, a, [&](OpArgs& args) -> Result<ObjectId> {
    S4_ASSIGN_OR_RETURN(auto table, ReadPartitionTable(at));
    for (const auto& [existing, id] : table) {
      if (existing == name) {
        args.object = id;
        return id;
      }
    }
    return Status::NotFound("no such partition");
  });
}

Result<ObjectId> S4Drive::PMount(const Credentials& creds, const std::string& name,
                                 std::optional<SimTime> at) {
  OpContext ctx = MakeContext(creds, RpcOp::kPMount);
  return PMount(ctx, name, at);
}

// ---------------------------------------------------------------------------
// Device operations
// ---------------------------------------------------------------------------

Status S4Drive::Sync(OpContext& ctx) {
  OpArgs a{RpcOp::kSync};
  return Execute(ctx, a, [&](OpArgs&) -> Status {
    // Sync is the durability point clients reason about: force the audit tail
    // out with everything else (a sub-block tail would otherwise sit buffered
    // in RAM and a power cut would eat records clients believe are durable).
    // The commit marker deliberately lags — advancing it here would cost a
    // seek off the log head on every sync-per-op NFS operation. Un-vouched
    // frames still verify (their chain links must hold); they are merely
    // eligible for clean-tail trimming, and the marker catches up at the next
    // checkpoint, purge, challenge, or unmount.
    S4_RETURN_IF_ERROR(SyncAuditTail());
    // A dirty object whose cache eviction failed to write back has lost the
    // durability this Sync is promising: surface the stored failure to this
    // client instead of swallowing it.
    if (!eviction_error_.ok()) {
      Status err = eviction_error_;
      eviction_error_ = Status::Ok();
      return err;
    }
    return MaybeAutoCheckpoint();
  });
}

Status S4Drive::Sync(const Credentials& creds) {
  OpContext ctx = MakeContext(creds, RpcOp::kSync);
  return Sync(ctx);
}

Status S4Drive::SetWindow(OpContext& ctx, SimDuration window) {
  OpArgs a{RpcOp::kSetWindow};
  a.admin_only = true;
  return Execute(ctx, a, [&](OpArgs& args) -> Status {
    if (window < 0) {
      return Status::InvalidArgument("negative window");
    }
    detection_window_ = window;
    args.length = static_cast<uint64_t>(window);
    return Status::Ok();
  });
}

Status S4Drive::SetWindow(const Credentials& creds, SimDuration window) {
  OpContext ctx = MakeContext(creds, RpcOp::kSetWindow);
  return SetWindow(ctx, window);
}

Status S4Drive::AppendAuditBuffered(bool force) {
  if (audit_codec_.buffered_bytes() == 0) {
    return Status::Ok();
  }
  if (!force && audit_codec_.buffered_bytes() < kBlockSize) {
    return Status::Ok();
  }
  const size_t taken_records = audit_codec_.buffered_records();
  const AuditChainState chained_to = audit_codec_.chain_state();
  Bytes data = audit_codec_.TakeBuffered();
  Status appended = [&]() -> Status {
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kAuditLogObjectId));
    uint64_t old_size = obj->inode.attrs.size;
    uint64_t start = old_size;
    // Chained frames self-address their object offset; the append cursor must
    // therefore agree with where the codec framed them.
    S4_CHECK(!audit_codec_.chained() || start == audit_appended_state_.next_offset);
    SimTime now = clock_->Now();
    uint64_t first = start / kBlockSize;
    uint64_t last = (start + data.size() - 1) / kBlockSize;
    std::vector<BlockDelta> deltas;
    for (uint64_t b = first; b <= last; ++b) {
      S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, old_size, start, data));
      S4_ASSIGN_OR_RETURN(DiskAddr addr, writer_->Append(RecordKind::kData, kAuditLogObjectId,
                                                         b, content, actx()));
      block_cache_->Insert(addr, content);
      DiskAddr old_addr = obj->inode.BlockAddr(b);
      deltas.push_back(BlockDelta{b, old_addr, addr});
      obj->inode.blocks[b] = addr;
      SupersedeBlock(kAuditLogObjectId, old_addr);
      m_.audit_blocks_written->Inc();
    }
    return ApplyBlockWrite(kAuditLogObjectId, obj.get(), now, old_size, start + data.size(),
                           std::move(deltas));
  }();
  if (!appended.ok()) {
    // The taken frames never became part of the object (its size is only
    // advanced by ApplyBlockWrite, the last step). Account the loss and
    // rewind the codec chain so the next append re-frames contiguously with
    // what is actually on disk.
    m_.audit_records_dropped->Add(taken_records);
    audit_codec_.ResetChain(audit_appended_state_);
    return appended;
  }
  if (audit_codec_.chained()) {
    audit_appended_state_ = chained_to;
  }
  return Status::Ok();
}

// Truncates the audit object to `new_size` without the Execute/ACL wrapper:
// mount-time recovery trims torn chain tails before any client op runs. The
// trim is idempotent — re-running after a crash mid-trim converges on the
// same verified prefix.
Status S4Drive::TrimAuditObject(uint64_t new_size) {
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kAuditLogObjectId));
  uint64_t old_size = obj->inode.attrs.size;
  if (new_size >= old_size) {
    return Status::Ok();
  }
  SimTime now = clock_->Now();
  std::vector<BlockDelta> deltas;
  uint64_t keep_blocks = (new_size + kBlockSize - 1) / kBlockSize;
  auto it = obj->inode.blocks.lower_bound(keep_blocks);
  while (it != obj->inode.blocks.end()) {
    deltas.push_back(BlockDelta{it->first, it->second, kNullAddr});
    SupersedeBlock(kAuditLogObjectId, it->second);
    it = obj->inode.blocks.erase(it);
  }
  // Re-zero the boundary block's tail so later appends can rely on the
  // "bytes beyond size are zero" invariant.
  if (new_size % kBlockSize != 0) {
    uint64_t b = new_size / kBlockSize;
    DiskAddr old_addr = obj->inode.BlockAddr(b);
    if (old_addr != kNullAddr) {
      S4_ASSIGN_OR_RETURN(Bytes content, BuildBlockContent(*obj, b, new_size, 0, ByteSpan{}));
      S4_ASSIGN_OR_RETURN(DiskAddr addr,
                          writer_->Append(RecordKind::kData, kAuditLogObjectId, b, content,
                                          actx()));
      block_cache_->Insert(addr, content);
      deltas.push_back(BlockDelta{b, old_addr, addr});
      obj->inode.blocks[b] = addr;
      SupersedeBlock(kAuditLogObjectId, old_addr);
      m_.audit_blocks_written->Inc();
    }
  }
  JournalEntry e;
  e.type = JournalEntryType::kTruncate;
  e.time = now;
  e.old_size = old_size;
  e.new_size = new_size;
  if (deltas.size() <= options_.max_deltas_per_entry) {
    e.blocks = std::move(deltas);
    obj->pending.push_back(std::move(e));
    m_.journal_entries->Inc();
  } else {
    for (size_t i = 0; i < deltas.size(); i += options_.max_deltas_per_entry) {
      JournalEntry part = e;
      size_t n = std::min<size_t>(options_.max_deltas_per_entry, deltas.size() - i);
      part.blocks.assign(deltas.begin() + i, deltas.begin() + i + n);
      obj->pending.push_back(std::move(part));
      m_.journal_entries->Inc();
    }
  }
  pending_dirty_.insert(kAuditLogObjectId);
  obj->inode.attrs.size = new_size;
  obj->inode.attrs.modify_time = now;
  obj->dirty = true;
  return Status::Ok();
}

Result<std::vector<AuditRecord>> S4Drive::QueryAudit(const Credentials& creds,
                                                     const AuditQuery& query) {
  if (!IsAdmin(creds)) {
    return Status::PermissionDenied("audit log is admin-only");
  }
  // Include buffered records: flush them into the object first.
  S4_RETURN_IF_ERROR(AppendAuditBuffered(/*force=*/true));
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kAuditLogObjectId));
  S4_ASSIGN_OR_RETURN(Bytes raw, ReadCurrent(*obj, 0, obj->inode.attrs.size));
  std::vector<AuditRecord> out;
  if (audit_codec_.chained()) {
    // Post-mount content is chain-verified end to end (mount trims torn
    // tails), so every byte must account: any break here is corruption.
    AuditChainScan scan = ScanChain(raw, 0, AuditChainState(), raw.size(),
                                    [&](const AuditRecord& rec) {
                                      if (query.Matches(rec)) {
                                        out.push_back(rec);
                                      }
                                    });
    if (scan.verdict != AuditVerdict::kOk) {
      m_.audit_chain_breaks->Inc();
      audit_chain_broken_ = true;
      return Status::DataCorruption("audit chain break: " + scan.detail);
    }
    return out;
  }
  S4_RETURN_IF_ERROR(AuditLogCodec::DecodeAll(raw, query, &out));
  return out;
}

Result<AuditChallengeProof> S4Drive::AuditChallenge(OpContext& ctx, uint64_t from_offset) {
  OpArgs a{RpcOp::kAuditChallenge};
  a.object = kAuditLogObjectId;
  a.offset = from_offset;
  a.admin_only = true;
  return Execute(ctx, a, [&](OpArgs& args) -> Result<AuditChallengeProof> {
    if (!options_.audit_enabled || !audit_codec_.chained()) {
      return Status::FailedPrecondition("audit chain disabled");
    }
    // Make the whole buffered tail durable and marked, so the proof can
    // extend all the way to a committed state the drive stands behind.
    S4_RETURN_IF_ERROR(CommitAuditTail());
    const uint64_t committed = audit_marker_.committed_size;
    if (from_offset > committed) {
      return Status::InvalidArgument("challenge offset beyond committed audit size");
    }
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kAuditLogObjectId));
    uint64_t want = std::min<uint64_t>(committed - from_offset, kMaxChallengeRoundBytes);
    S4_ASSIGN_OR_RETURN(Bytes chunk, ReadCurrent(*obj, from_offset, want));
    // Cut the round at a frame boundary: proofs are verified as whole-frame
    // chain continuations. Frames are <= 64KB so a full round always makes
    // progress.
    size_t cut = 0;
    while (cut + 2 <= chunk.size()) {
      size_t frame_len = static_cast<size_t>(chunk[cut]) |
                         (static_cast<size_t>(chunk[cut + 1]) << 8);
      if (cut + 2 + frame_len > chunk.size()) {
        break;
      }
      cut += 2 + frame_len;
    }
    AuditChallengeProof proof;
    proof.end_state.next_seq = audit_marker_.chain_seq;
    proof.end_state.next_offset = audit_marker_.committed_size;
    proof.end_state.link = audit_marker_.chain_link;
    proof.frames.assign(chunk.begin(), chunk.begin() + cut);
    args.length = proof.frames.size();
    return proof;
  });
}

Result<AuditChallengeProof> S4Drive::AuditChallenge(const Credentials& creds,
                                                    uint64_t from_offset) {
  OpContext ctx = MakeContext(creds, RpcOp::kAuditChallenge);
  return AuditChallenge(ctx, from_offset);
}

}  // namespace s4
