// Configuration of an S4 drive instance.
#ifndef S4_SRC_DRIVE_OPTIONS_H_
#define S4_SRC_DRIVE_OPTIONS_H_

#include <cstdint>

#include "src/util/time.h"

namespace s4 {

struct S4DriveOptions {
  // --- Geometry (used at Format time) ---
  uint32_t segment_sectors = 1024;  // 512KB segments

  // --- Caches (paper: 128MB buffer cache, 32MB object cache) ---
  uint64_t block_cache_bytes = 32ull << 20;
  uint64_t object_cache_bytes = 8ull << 20;
  // Sequential read-ahead window of the buffer cache (sectors). When a miss
  // continues a sequential run inside a sealed segment, up to this many
  // sectors are streamed with one disk command. 0 disables read-ahead.
  uint64_t readahead_sectors = 128;

  // --- Self-securing behaviour ---
  // Guaranteed detection window (adjustable at runtime via SetWindow).
  SimDuration detection_window = 7 * kDay;
  // Comprehensive versioning. Disabling it yields the "no data protection
  // guarantees" comparator of section 5.1.5: journal entries are still
  // written for crash recovery, but superseded data is freed immediately and
  // time-based access is refused.
  bool versioning_enabled = true;
  // Audit log of all requests (section 4.2.3).
  bool audit_enabled = true;
  // Hash-chained, torn-write-safe audit framing with commit markers (see
  // src/audit/audit_chain.h). Disabling falls back to the bare record stream
  // (no tamper evidence; used as the bench_audit baseline).
  bool audit_chain = true;
  // Background/foreground cleaning (section 4.2.1).
  bool cleaner_enabled = true;

  // --- Space-exhaustion defense (section 3.3) ---
  // Above this fraction of consumed segments, clients writing faster than
  // their fair share get progressively delayed.
  double throttle_threshold = 0.90;
  // Above this fraction, such clients are refused with kThrottled.
  double reject_threshold = 0.97;
  // A client's "fair share" of sustained write bandwidth; only clients above
  // it are penalised when space runs low.
  double fair_share_bytes_per_sec = 2.0 * (1 << 20);

  // --- Administrative access (section 3.5) ---
  uint64_t admin_key = 0xA11ACCE55ull;

  // --- History access (version waypoints + journal-sector cache) ---
  // A (time -> sector) waypoint is recorded every this many journal sectors
  // of an object's chain, giving time-bounded walks and deep back-in-time
  // reads a seek target instead of an O(chain) scan from the head. 0 disables
  // waypoints (the pre-indexed behaviour; used as the bench baseline).
  uint32_t waypoint_interval_sectors = 8;
  // Dedicated LRU of *decoded* journal sectors, so repeated chain walks
  // (cleaner, version lists, reconstruction) skip the re-read + re-decode.
  // 0 disables the cache.
  uint64_t jsector_cache_bytes = 2ull << 20;

  // --- Cleaner pacing ---
  // Incremental cleaning: candidate objects come from an expiry index ordered
  // by oldest retained entry instead of a full object-map scan, and chain
  // walks seek past unexpirable territory via waypoints. Disabling restores
  // the full-scan, full-walk behaviour (the bench baseline).
  bool cleaner_incremental = true;
  // Journal sectors one cleaner pass may read while expiring history; objects
  // left unvisited stay queued for the next pass. 0 = unlimited.
  uint64_t cleaner_pass_sector_budget = 4096;

  // --- Mount / recovery ---
  // Clock lanes fanned across independent dirty-segment scans during mount
  // roll-forward (see src/sim/lane_pool.h). 1 = serial scan on the caller's
  // thread.
  int mount_scan_workers = 4;

  // --- Costs / internals ---
  SimDuration cpu_per_op = 20;            // per-RPC firmware overhead (us)
  uint64_t journal_flush_entries = 64;    // pack pending entries at this count
  uint64_t checkpoint_interval_bytes = 8ull << 20;  // auto-checkpoint cadence
  uint32_t reserve_segments = 4;          // kept free for internal flushes
  // Max deltas per journal entry (large writes are split so every entry fits
  // in a single journal sector).
  uint32_t max_deltas_per_entry = 20;
};

}  // namespace s4

#endif  // S4_SRC_DRIVE_OPTIONS_H_
