// S4Drive cleaner (paper section 4.2.1) and space-exhaustion throttle
// (section 3.3).
//
// Unlike a classic LFS cleaner, liveness is not sufficient for reclamation:
// a deprecated version may only be freed once it has aged out of the
// detection window. The cleaner therefore works object-by-object — it scans
// the object map for objects whose oldest retained version predates the
// window, walks their journal chains (the extra reads the paper blames for
// S4's higher cleaning cost), and frees expired data, journal sectors, and
// delete-time checkpoints. Segments whose live and history counts both reach
// zero become reclaimable; they are actually reused only after the next
// device checkpoint so crash recovery can never replay stale chunks.
#include <algorithm>
#include <cmath>

#include "src/drive/s4_drive.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace s4 {

Result<uint64_t> S4Drive::ExpireObjectHistory(ObjectId id, ObjectMapEntry* entry,
                                              SimTime cutoff, uint64_t* sectors_read) {
  bool versioned = ObjectIsVersioned(id);
  bool full_expiry = !entry->live() && entry->delete_time <= cutoff;
  uint64_t freed_sectors = 0;
  SimTime barrier = entry->history_barrier;
  SimTime oldest_surviving = INT64_MAX;
  // Journal entries newer than the last inode checkpoint are the only record
  // of the object's current state; their sectors may not be freed even when
  // every version they describe has aged out. When such sectors block
  // reclamation, the object is checkpointed at the end of this visit so the
  // next visit can free them.
  bool need_checkpoint = false;

  // Walk the chain from the head, sector by sector, so expired journal
  // sectors themselves can be freed. When the chain survives in part, the
  // waypoint index lets the walk skip straight past the unexpirable prefix:
  // every sector newer than the oldest waypoint above the cutoff holds only
  // in-window entries. Those skipped sectors all survive, and the seek-start
  // sector contributes a surviving entry no newer than any skipped entry, so
  // `oldest_surviving` (hence the barrier) stays globally correct. A full
  // expiry must free the whole chain, so it never seeks.
  m_.cleaner_objects_visited->Inc();
  DiskAddr addr = entry->journal_head;
  bool chain_fully_freed = true;
  if (options_.cleaner_incremental && !full_expiry) {
    if (const JournalWaypoint* w = entry->SeekWaypointAbove(cutoff);
        w != nullptr && w->addr != addr) {
      addr = w->addr;
      chain_fully_freed = false;  // the skipped newer sectors remain
    }
  }
  while (addr != kNullAddr) {
    S4_ASSIGN_OR_RETURN(std::shared_ptr<const JournalSector> sector,
                        ReadJournalSector(addr, sectors_read));
    if (sector == nullptr || sector->object_id != id) {
      break;  // already reclaimed territory
    }
    if (!sector->entries.empty() && sector->entries.back().time <= barrier) {
      break;  // entirely below the barrier: freed in an earlier pass
    }
    bool sector_fully_expired = true;
    for (const auto& e : sector->entries) {
      if (e.time <= barrier) {
        continue;  // freed in an earlier pass
      }
      if (e.time > cutoff && !full_expiry) {
        sector_fully_expired = false;
        oldest_surviving = std::min(oldest_surviving, e.time);
        continue;
      }
      // Entries newer than the inode checkpoint are still needed to replay
      // the current state; defer them (and keep the barrier below them) until
      // the end-of-visit checkpoint clears the way.
      if (entry->live() && e.time > entry->checkpoint_time &&
          e.type != JournalEntryType::kCheckpoint) {
        sector_fully_expired = false;
        need_checkpoint = true;
        oldest_surviving = std::min(oldest_surviving, e.time);
        continue;
      }
      // Expired entry: release the data it superseded.
      if (e.type == JournalEntryType::kWrite || e.type == JournalEntryType::kTruncate) {
        for (const auto& d : e.blocks) {
          if (d.old_addr != kNullAddr && versioned && !IsPurged(id, e.time)) {
            sut_->ReleaseHistory(sb_.SegmentOf(d.old_addr), kSectorsPerBlock);
            freed_sectors += kSectorsPerBlock;
          }
        }
      }
    }
    if (sector_fully_expired) {
      sut_->ReleaseLive(sb_.SegmentOf(addr), 1);
      ++freed_sectors;
      block_cache_->Invalidate(addr);
      if (jsector_cache_ != nullptr) {
        jsector_cache_->Remove(addr);
      }
    } else {
      chain_fully_freed = false;
    }
    if (!sector->entries.empty() && sector->entries.front().time <= barrier) {
      break;  // older sectors were freed in earlier passes
    }
    addr = sector->prev;
  }

  if (full_expiry) {
    // Release the final state itself: current blocks (history since the
    // delete) and the delete-time checkpoint.
    if (entry->checkpoint_addr != kNullAddr) {
      auto raw = ReadRecord(entry->checkpoint_addr, entry->checkpoint_sectors);
      Result<Inode> inode = raw.ok() ? Inode::DecodeCheckpoint(*raw) : Result<Inode>(raw.status());
      if (inode.ok()) {
        if (versioned) {
          for (const auto& [index, baddr] : inode->blocks) {
            (void)index;
            if (baddr != kNullAddr) {
              sut_->ReleaseHistory(sb_.SegmentOf(baddr), kSectorsPerBlock);
              freed_sectors += kSectorsPerBlock;
            }
          }
        }
      } else {
        // The checkpoint sectors themselves are still reclaimed below, but
        // the history blocks the unreadable checkpoint references cannot be
        // released — a permanent space leak if it keeps happening. Expiry
        // must not fail over one bad object, so surface the swallowed error
        // through the obs plane instead of propagating it.
        m_.cleaner_checkpoint_decode_errors->Inc();
        S4_LOG(kWarning) << "cleaner: checkpoint of object " << id << " at addr "
                         << entry->checkpoint_addr
                         << " unreadable during full expiry: "
                         << inode.status().ToString();
      }
      sut_->ReleaseLive(sb_.SegmentOf(entry->checkpoint_addr), entry->checkpoint_sectors);
      freed_sectors += entry->checkpoint_sectors;
    }
    (void)chain_fully_freed;
    object_cache_->Remove(id);
    purged_.erase(id);
    object_map_.Erase(id);
    UpdateExpiryIndex(id, nullptr);
  } else {
    // The barrier never passes an entry whose reclamation was deferred.
    entry->history_barrier =
        oldest_surviving == INT64_MAX ? cutoff : std::min(cutoff, oldest_surviving - 1);
    entry->oldest_time = oldest_surviving == INT64_MAX ? clock_->Now() : oldest_surviving;
    if (chain_fully_freed && oldest_surviving == INT64_MAX) {
      // Every reachable sector is gone; drop the head so this object stops
      // being an expiry candidate until it is written again. (The current
      // state lives in the inode checkpoint — the gate above guarantees no
      // replay-needed entry is ever freed.)
      entry->journal_head = kNullAddr;
    }
    // Waypoints at or below the barrier point into freed territory (a freed
    // sector's newest entry never outlives the post-visit barrier); drop
    // them so no later seek can land on a reclaimed sector.
    entry->PruneWaypoints(entry->history_barrier);
    if (need_checkpoint) {
      // Checkpoint, then re-walk once: with checkpoint_time now ahead of the
      // cutoff nothing is gated, so the deferred sectors free immediately.
      S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
      S4_RETURN_IF_ERROR(CheckpointObject(id, obj.get()));
      entry = object_map_.Find(id);
      S4_CHECK(entry != nullptr);
      m_.cleaner_sectors_expired->Add(freed_sectors);
      S4_ASSIGN_OR_RETURN(uint64_t more, ExpireObjectHistory(id, entry, cutoff, sectors_read));
      return freed_sectors + more;
    }
    UpdateExpiryIndex(id, entry);
  }
  m_.cleaner_sectors_expired->Add(freed_sectors);
  return freed_sectors;
}

bool S4Drive::CleanerNeeded() const {
  if (!options_.cleaner_enabled) {
    return false;
  }
  uint32_t total = sut_->segment_count();
  uint32_t free_like = 0;
  for (SegmentId seg = 0; seg < total; ++seg) {
    if (sut_->Info(seg).state == SegmentState::kFree || sut_->Reclaimable(seg)) {
      ++free_like;
    }
  }
  return free_like < std::max<uint32_t>(total / 4, options_.reserve_segments * 2);
}

Result<uint32_t> S4Drive::RunCleanerPass(uint32_t max_compactions, bool force_compaction) {
  // The cleaner is an internal actor: it gets its own context so its disk
  // traffic shows up in the trace under a request id, distinct from any op.
  OpContext cleaner_ctx = MakeContext(Credentials{}, RpcOp::kInvalid);
  ScopedSpan span(&cleaner_ctx, "cleaner.pass");
  ScopedActiveContext active(this, &cleaner_ctx);
  m_.cleaner_passes->Inc();
  SimTime t0 = clock_->Now();
  SimTime cutoff =
      options_.versioning_enabled ? clock_->Now() - detection_window_ : clock_->Now();

  // Phase 1: age-based expiry. Expiry is batched when space is plentiful: an
  // object is visited only once a quarter-window of entries has expired, so
  // frequently cleaned long chains (directories) are walked O(1) times per
  // window instead of on every pass. Under space pressure the batching is
  // dropped so every expirable byte is reclaimed. Reclamation is only ever
  // lazier than the guarantee, never earlier.
  SimDuration slack =
      options_.versioning_enabled && !CleanerNeeded() ? detection_window_ / 4 : 0;
  auto ripe = [&](const ObjectMapEntry& entry) {
    return entry.oldest_time + slack <= cutoff ||
           (!entry.live() && entry.delete_time <= cutoff);
  };
  uint64_t walk_sectors = 0;
  if (options_.cleaner_incremental) {
    // Incremental: pop candidates off the expiry index in oldest-first order
    // instead of scanning the whole object map. The pop bound is the bare
    // cutoff (not cutoff - slack) so dead objects whose delete aged out still
    // surface; objects that are indexed-expirable but batched away by the
    // slack go back in unchanged. A per-pass sector budget caps the walk
    // cost; whatever is left stays queued for the next pass.
    uint64_t budget = options_.cleaner_pass_sector_budget;
    std::vector<std::pair<SimTime, ObjectId>> unripe;
    while (!expiry_index_.empty() && expiry_index_.begin()->first <= cutoff) {
      if (budget != 0 && walk_sectors >= budget) {
        break;
      }
      auto [key, id] = *expiry_index_.begin();
      expiry_index_.erase(expiry_index_.begin());
      expiry_pos_.erase(id);
      ObjectMapEntry* entry = object_map_.Find(id);
      if (entry == nullptr || entry->journal_head == kNullAddr) {
        continue;  // stale index residue; stays dropped
      }
      if (!ripe(*entry)) {
        // Batched away (or the key aged ahead of the entry). Reinsert after
        // the loop — putting it straight back would pop it again forever.
        m_.cleaner_objects_skipped_unripe->Inc();
        unripe.emplace_back(key, id);
        continue;
      }
      auto freed = ExpireObjectHistory(id, entry, cutoff, &walk_sectors);
      if (!freed.ok()) {
        for (const auto& [k, uid] : unripe) {
          if (expiry_pos_.find(uid) == expiry_pos_.end()) {
            expiry_pos_.emplace(uid, expiry_index_.emplace(k, uid));
          }
        }
        return freed.status();
      }
    }
    for (const auto& [k, uid] : unripe) {
      if (expiry_pos_.find(uid) == expiry_pos_.end()) {
        expiry_pos_.emplace(uid, expiry_index_.emplace(k, uid));
      }
    }
    // Candidates deferred by the budget (still indexed at or below the
    // cutoff, beyond the unripe ones just reinserted).
    uint64_t ready = 0;
    for (auto it = expiry_index_.begin();
         it != expiry_index_.end() && it->first <= cutoff; ++it) {
      ++ready;
    }
    if (ready > static_cast<uint64_t>(unripe.size())) {
      m_.cleaner_objects_skipped_budget->Add(ready - unripe.size());
    }
  } else {
    // Full scan (the pre-index behaviour; kept as the bench baseline).
    std::vector<ObjectId> candidates;
    for (const auto& [id, entry] : object_map_.entries()) {
      if (ripe(entry) && entry.journal_head != kNullAddr) {
        candidates.push_back(id);
      }
    }
    // Visit candidates in log order: objects written together have adjacent
    // journal sectors, so the clustered reads of one walk feed the next.
    std::sort(candidates.begin(), candidates.end(), [this](ObjectId a, ObjectId b) {
      const ObjectMapEntry* ea = object_map_.Find(a);
      const ObjectMapEntry* eb = object_map_.Find(b);
      return ea->journal_head < eb->journal_head;
    });
    for (ObjectId id : candidates) {
      ObjectMapEntry* entry = object_map_.Find(id);
      if (entry != nullptr) {
        auto freed = ExpireObjectHistory(id, entry, cutoff, &walk_sectors);
        if (!freed.ok()) {
          return freed.status();
        }
      }
    }
  }
  m_.cleaner_walk_sectors->Add(walk_sectors);

  // Phase 2: compaction of fragmented segments when space is low.
  uint32_t compacted = 0;
  while (compacted < max_compactions && (force_compaction || CleanerNeeded())) {
    auto victim = sut_->CompactionVictim();
    if (!victim.has_value()) {
      break;
    }
    const SegmentInfo& info = sut_->Info(*victim);
    double ratio = info.written_sectors == 0
                       ? 1.0
                       : static_cast<double>(info.live_sectors + info.history_sectors) /
                             info.written_sectors;
    if (ratio > 0.85) {
      break;  // nothing worth copying out, even for a continuous cleaner
    }
    S4_ASSIGN_OR_RETURN(bool moved, CompactSegment(*victim));
    ++compacted;
    m_.cleaner_segments_compacted->Inc();
    if (!moved) {
      break;
    }
  }

  // Phase 3: make expired segments allocatable. Reclamation requires a
  // device checkpoint (see WriteCheckpoint) so roll-forward never replays a
  // reused segment's previous life.
  uint32_t reclaimable = 0;
  for (SegmentId seg = 0; seg < sut_->segment_count(); ++seg) {
    if (sut_->Reclaimable(seg)) {
      ++reclaimable;
    }
  }
  if (reclaimable > 0) {
    S4_RETURN_IF_ERROR(WriteCheckpoint());
  }
  m_.cleaner_time_us->Add(clock_->Now() - t0);
  return reclaimable;
}

Result<bool> S4Drive::CleanForegroundSlice() {
  OpContext cleaner_ctx = MakeContext(Credentials{}, RpcOp::kInvalid);
  ScopedSpan span(&cleaner_ctx, "cleaner.slice");
  ScopedActiveContext active(this, &cleaner_ctx);
  uint32_t total = sut_->segment_count();
  for (uint32_t probe = 0; probe < total; ++probe) {
    SegmentId seg = (foreground_clean_cursor_ + probe) % total;
    if (sut_->Info(seg).state != SegmentState::kFull) {
      continue;
    }
    foreground_clean_cursor_ = (seg + 1) % total;
    SimTime t0 = clock_->Now();
    // The cleaner streams the whole segment to find what it holds — the cost
    // the paper attributes to cleaning objects rather than segments comes on
    // top, in the per-record relocation work of CompactSegment.
    Bytes segment_bytes;
    S4_RETURN_IF_ERROR(
        device_->Read(sb_.SegmentStart(seg), sb_.segment_sectors, &segment_bytes, actx()));
    // Relocation only pays when it can actually free the segment; history
    // still inside the detection window pins it, so copying live data out
    // would consume fresh log space for no gain.
    if (sut_->Info(seg).history_sectors == 0) {
      S4_RETURN_IF_ERROR(CompactSegment(seg).status());
      if (sut_->Reclaimable(seg)) {
        S4_RETURN_IF_ERROR(WriteCheckpoint());
      }
    }
    m_.cleaner_segments_compacted->Inc();
    m_.cleaner_time_us->Add(clock_->Now() - t0);
    return true;
  }
  return false;
}

Result<bool> S4Drive::CompactSegment(SegmentId seg) {
  S4_ASSIGN_OR_RETURN(std::vector<ScannedChunk> chunks, ScanSegment(device_, sb_, seg));
  bool moved_any = false;
  std::vector<ObjectId> touched;
  for (const auto& chunk : chunks) {
    for (const auto& rec : chunk.records) {
      if (rec.kind == RecordKind::kData) {
        // Relocate only blocks that are the object's *current* data; history
        // blocks and journal sectors pin the segment until they expire —
        // that is exactly the extra cleaning pressure the history pool adds.
        const ObjectMapEntry* entry = object_map_.Find(rec.object_id);
        if (entry == nullptr || !entry->live()) {
          continue;
        }
        auto loaded = LoadObject(rec.object_id);
        if (!loaded.ok()) {
          continue;  // skip is safe: the record stays where it is, unfreed
        }
        ObjectHandle obj = *loaded;
        if (obj->inode.BlockAddr(rec.block_index) != rec.addr) {
          continue;  // superseded: history or dead
        }
        S4_ASSIGN_OR_RETURN(Bytes content, ReadRecord(rec.addr, rec.sectors));
        S4_ASSIGN_OR_RETURN(
            DiskAddr new_addr,
            writer_->Append(RecordKind::kData, rec.object_id, rec.block_index, content, actx()));
        block_cache_->Insert(new_addr, content);
        block_cache_->Invalidate(rec.addr);
        obj->inode.blocks[rec.block_index] = new_addr;
        obj->dirty = true;
        // A physical move, not a new version: the old copy's live count moves
        // with it rather than becoming history.
        sut_->ReleaseLive(seg, rec.sectors);
        m_.cleaner_sectors_copied->Add(rec.sectors);
        moved_any = true;
        if (std::find(touched.begin(), touched.end(), rec.object_id) == touched.end()) {
          touched.push_back(rec.object_id);
        }
      } else if (rec.kind == RecordKind::kInodeCheckpoint) {
        ObjectMapEntry* entry = object_map_.Find(rec.object_id);
        if (entry == nullptr || entry->checkpoint_addr != rec.addr || !entry->live()) {
          continue;  // stale or pinned (delete-time checkpoints stay put)
        }
        auto loaded = LoadObject(rec.object_id);
        if (!loaded.ok()) {
          continue;  // skip is safe: the old checkpoint stays valid in place
        }
        // Re-checkpointing writes a fresh copy at the log head and releases
        // this one.
        S4_RETURN_IF_ERROR(CheckpointObject(rec.object_id, loaded->get()));
        m_.cleaner_sectors_copied->Add(rec.sectors);
        moved_any = true;
      }
    }
  }
  // Relocations bypass the journal; affected objects must be re-checkpointed
  // before the vacated space can ever be reused, so that crash recovery
  // never resolves a block to its old address.
  for (ObjectId id : touched) {
    auto loaded = LoadObject(id);
    if (loaded.ok()) {
      S4_RETURN_IF_ERROR(CheckpointObject(id, loaded->get()));
    }
  }
  return moved_any;
}

// ---------------------------------------------------------------------------
// Space-exhaustion throttle (section 3.3)
// ---------------------------------------------------------------------------

void S4Drive::NoteClientWrite(ClientId client, uint64_t bytes) {
  constexpr double kTauSeconds = 5.0;
  ClientLoad& load = client_load_[client];
  SimTime now = clock_->Now();
  double dt = ToSeconds(now - load.last_update);
  load.bytes_per_sec = load.bytes_per_sec * std::exp(-dt / kTauSeconds) +
                       static_cast<double>(bytes) / kTauSeconds;
  load.last_update = now;
}

Status S4Drive::ThrottleCheck(const Credentials& creds, uint64_t bytes) {
  if (IsAdmin(creds)) {
    return Status::Ok();
  }
  double util = SpaceUtilization();
  if (util < options_.throttle_threshold) {
    return Status::Ok();
  }
  auto it = client_load_.find(creds.client);
  double rate = it == client_load_.end() ? 0.0 : it->second.bytes_per_sec;
  if (rate <= options_.fair_share_bytes_per_sec) {
    return Status::Ok();  // well-behaved clients keep full service
  }
  if (util >= options_.reject_threshold) {
    m_.throttle_rejects->Inc();
    return Status::Throttled("history pool near exhaustion; writes from this client refused");
  }
  // Progressive penalty: scale the delay with how far past the threshold the
  // device is and how far past fair share the client is.
  double pressure = (util - options_.throttle_threshold) /
                    (options_.reject_threshold - options_.throttle_threshold);
  double overuse = rate / options_.fair_share_bytes_per_sec;
  double delay_seconds =
      pressure * std::min(overuse, 16.0) *
      (static_cast<double>(bytes) / options_.fair_share_bytes_per_sec);
  clock_->Advance(static_cast<SimDuration>(delay_seconds * kSecond));
  m_.throttle_delays->Inc();
  return Status::Ok();
}

}  // namespace s4
