// S4Drive history pool: version reconstruction (time-based access), version
// enumeration, and administrative purging (Flush/FlushO).
#include <algorithm>
#include <cstring>

#include "src/drive/s4_drive.h"
#include "src/util/check.h"

namespace s4 {

// Defined in s4_drive.cc; the forward-replay reconstruction path reuses it.
void ApplyEntryForward(Inode* inode, bool* exists, const JournalEntry& e);

DiskAddr S4Drive::VersionView::BlockAt(uint64_t index) const {
  auto it = overlay.find(index);
  if (it != overlay.end()) {
    return it->second;
  }
  return base->inode.BlockAddr(index);
}

Status S4Drive::WalkJournal(ObjectId id, const CachedObject* obj, std::optional<SimTime> start_at,
                            const std::function<Result<bool>(const JournalEntry&)>& fn) {
  const ObjectMapEntry* entry = object_map_.Find(id);
  if (entry == nullptr) {
    return Status::NotFound("no such object");
  }
  SimTime barrier = entry->history_barrier;
  uint64_t visited = 0;

  auto walk = [&]() -> Status {
    // Newest first: in-memory pending entries...
    if (obj != nullptr) {
      for (auto it = obj->pending.rbegin(); it != obj->pending.rend(); ++it) {
        if (it->time <= barrier) {
          return Status::Ok();
        }
        S4_ASSIGN_OR_RETURN(bool keep_going, fn(*it));
        if (!keep_going) {
          return Status::Ok();
        }
      }
    }
    // ...then the on-disk backward chain. A time bound lets the walk seek:
    // the oldest waypoint *above* `start_at` marks the newest sector that can
    // matter — every sector newer than it holds only entries newer than the
    // bound (the chain is strictly time-ordered), so they are skipped
    // wholesale. Callers passing `start_at` must not need entries above it.
    DiskAddr addr = entry->journal_head;
    if (start_at.has_value() && addr != kNullAddr) {
      if (const JournalWaypoint* w = entry->SeekWaypointAbove(*start_at);
          w != nullptr && w->addr != addr) {
        addr = w->addr;
        m_.history_waypoint_seeks->Inc();
      }
    }
    while (addr != kNullAddr) {
      S4_ASSIGN_OR_RETURN(std::shared_ptr<const JournalSector> sector,
                          ReadJournalSector(addr, &visited));
      if (sector == nullptr || sector->object_id != id) {
        // The chain crossed into reclaimed space; everything older is gone.
        return Status::Ok();
      }
      for (auto it = sector->entries.rbegin(); it != sector->entries.rend(); ++it) {
        if (it->time <= barrier) {
          return Status::Ok();
        }
        S4_ASSIGN_OR_RETURN(bool keep_going, fn(*it));
        if (!keep_going) {
          return Status::Ok();
        }
      }
      // Never follow the chain past fully expired territory.
      if (!sector->entries.empty() && sector->entries.front().time <= barrier) {
        return Status::Ok();
      }
      addr = sector->prev;
    }
    return Status::Ok();
  };
  Status result = walk();
  m_.history_walk_sectors->Add(visited);
  m_.walk_sectors->Record(static_cast<int64_t>(visited));
  return result;
}

bool S4Drive::IsPurged(ObjectId id, SimTime t) const {
  auto it = purged_.find(id);
  if (it == purged_.end()) {
    return false;
  }
  for (const auto& r : it->second) {
    if (t > r.from && t <= r.to) {
      return true;
    }
  }
  return false;
}

// One step of backward reconstruction: undoes `e` (a mutation newer than
// `at`) on the view, or — once the walk reaches the first entry at or before
// `at` — stamps the version's modify time and stops. Entries inside an
// administratively purged range have had their old data destroyed; affected
// blocks get the sentinel so reads fail loudly instead of returning reused
// disk contents.
Result<bool> S4Drive::ApplyEntryUndo(ObjectId id, const JournalEntry& e, SimTime at,
                                     VersionView* view) {
  if (e.time <= at) {
    view->modify_time = e.time;
    return false;
  }
  bool purged = IsPurged(id, e.time);
  switch (e.type) {
    case JournalEntryType::kWrite:
    case JournalEntryType::kTruncate:
      view->size = e.old_size;
      for (const auto& d : e.blocks) {
        view->overlay[d.block_index] =
            purged && d.old_addr != kNullAddr ? kPurgedAddr : d.old_addr;
      }
      break;
    case JournalEntryType::kSetAttr:
      view->opaque = e.old_blob;
      break;
    case JournalEntryType::kSetAcl: {
      Decoder dec(e.old_blob);
      S4_ASSIGN_OR_RETURN(view->acl, DecodeAcl(&dec));
      break;
    }
    case JournalEntryType::kCreate:
      view->existed = false;
      return false;
    case JournalEntryType::kDelete:
    case JournalEntryType::kCheckpoint:
      break;
  }
  return true;
}

Result<S4Drive::VersionView> S4Drive::ReconstructVersion(ObjectId id, SimTime at) {
  const ObjectMapEntry* entry = object_map_.Find(id);
  if (entry == nullptr) {
    return Status::NotFound("no such object");
  }
  if (at < entry->create_time) {
    return Status::NotFound("object did not exist at that time");
  }
  if (!entry->live() && at >= entry->delete_time) {
    return Status::NotFound("object was deleted at that time");
  }
  if (at < entry->history_barrier) {
    return Status::FailedPrecondition("version aged out of the history pool");
  }
  m_.history_walks->Inc();
  ScopedSpan span(actx(), "history.reconstruct");
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));

  VersionView view;
  view.existed = true;
  view.base = obj;
  view.create_time = entry->create_time;
  view.modify_time = entry->create_time;

  // Two ways to build the version, costed by the waypoint index. Backward
  // undo starts from the current state and must visit every entry *newer*
  // than `at` — O(distance from the present). Forward replay starts from the
  // create entry and visits every entry *at or below* `at` — O(distance from
  // creation) thanks to the waypoint seek — but is only sound when the whole
  // chain back to the create entry is intact (nothing expired) and no
  // administrative purge has destroyed data the replayed addresses reference
  // (purge knowledge hangs off the *superseding* entries, which forward
  // replay never visits).
  size_t below = entry->WaypointsAtOrBelow(at);
  size_t above = entry->waypoints.size() - below;
  bool forward_ok = options_.waypoint_interval_sectors > 0 && below < above &&
                    entry->history_barrier < entry->create_time &&
                    purged_.find(id) == purged_.end();
  if (forward_ok) {
    m_.history_forward_walks->Inc();
    std::vector<JournalEntry> replay;
    Status walk = WalkJournal(id, obj.get(), at, [&](const JournalEntry& e) -> Result<bool> {
      if (e.time <= at) {
        replay.push_back(e);
      }
      return true;
    });
    S4_RETURN_IF_ERROR(walk);
    std::reverse(replay.begin(), replay.end());  // walk order is newest-first
    Inode past;
    past.id = id;
    bool existed = false;
    SimTime modify = entry->create_time;
    for (const JournalEntry& e : replay) {
      ApplyEntryForward(&past, &existed, e);
      modify = e.time;
    }
    if (!existed) {
      return Status::NotFound("object did not exist at that time");
    }
    view.size = past.attrs.size;
    view.opaque = past.attrs.opaque;
    view.acl = past.acl;
    view.modify_time = modify;
    // The overlay must fully shadow the current state: any current block the
    // replayed inode does not have was a hole (or not yet written) at `at`.
    for (const auto& [index, addr] : obj->inode.blocks) {
      (void)addr;
      view.overlay[index] = kNullAddr;
    }
    for (const auto& [index, addr] : past.blocks) {
      view.overlay[index] = addr;
    }
    return view;
  }

  view.size = obj->inode.attrs.size;
  view.opaque = obj->inode.attrs.opaque;
  view.acl = obj->inode.acl;
  // Undo every mutation newer than `at`, newest first. No `start_at` bound:
  // the undo direction needs exactly the entries a bound would skip.
  Status walk = WalkJournal(id, obj.get(), std::nullopt,
                            [&](const JournalEntry& e) -> Result<bool> {
                              return ApplyEntryUndo(id, e, at, &view);
                            });
  S4_RETURN_IF_ERROR(walk);
  if (!view.existed) {
    return Status::NotFound("object did not exist at that time");
  }
  return view;
}

Result<S4Drive::VersionView> S4Drive::ReconstructForAccess(OpContext& ctx, ObjectId id,
                                                           SimTime at) {
  S4_ASSIGN_OR_RETURN(VersionView view, ReconstructVersion(id, at));
  S4_RETURN_IF_ERROR(CheckHistoryAccess(view.acl, ctx.creds));
  return view;
}

Result<Bytes> S4Drive::ReadVersionBytes(const VersionView& view, uint64_t offset,
                                        uint64_t length) {
  if (offset >= view.size) {
    return Bytes{};
  }
  length = std::min(length, view.size - offset);
  Bytes out(length, 0);
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + length - 1) / kBlockSize;
  for (uint64_t b = first; b <= last; ++b) {
    DiskAddr addr = view.BlockAt(b);
    if (addr == kNullAddr) {
      continue;  // hole
    }
    if (addr == kPurgedAddr) {
      return Status::FailedPrecondition("version data was administratively purged");
    }
    uint64_t block_start = b * kBlockSize;
    uint64_t from = std::max(offset, block_start);
    uint64_t to = std::min(offset + length, block_start + kBlockSize);
    S4_ASSIGN_OR_RETURN(Bytes content, ReadRecord(addr, kSectorsPerBlock));
    std::memcpy(out.data() + (from - offset), content.data() + (from - block_start), to - from);
  }
  return out;
}

Status S4Drive::CheckHistoryAccess(const Acl& version_acl, const Credentials& creds) const {
  if (IsAdmin(creds)) {
    return Status::Ok();
  }
  // The Recovery flag (section 3.4): a user may resurrect old versions only
  // when the version's ACL granted them both Read and Recovery.
  if (AclAllows(version_acl, creds, kPermRead | kPermRecovery)) {
    return Status::Ok();
  }
  return Status::PermissionDenied("history pool access requires the Recovery flag or admin");
}

Result<std::vector<VersionInfo>> S4Drive::GetVersionList(OpContext& ctx, ObjectId id) {
  OpArgs a{RpcOp::kGetVersionList};
  a.object = id;
  return Execute(ctx, a, [&](OpArgs& args) -> Result<std::vector<VersionInfo>> {
    const ObjectMapEntry* entry = object_map_.Find(id);
    if (entry == nullptr) {
      return Status::NotFound("no such object");
    }
    S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
    S4_RETURN_IF_ERROR(CheckHistoryAccess(obj->inode.acl, ctx.creds));
    m_.history_walks->Inc();
    std::vector<VersionInfo> versions;
    // No time bound: the list spans the whole reconstructible history.
    Status walk = WalkJournal(id, obj.get(), std::nullopt,
                              [&](const JournalEntry& e) -> Result<bool> {
                                if (e.type != JournalEntryType::kCheckpoint) {
                                  versions.push_back(VersionInfo{e.time, e.type});
                                }
                                return true;
                              });
    S4_RETURN_IF_ERROR(walk);
    std::reverse(versions.begin(), versions.end());
    args.length = versions.size();
    return versions;
  });
}

Result<std::vector<VersionInfo>> S4Drive::GetVersionList(const Credentials& creds, ObjectId id) {
  OpContext ctx = MakeContext(creds, RpcOp::kGetVersionList);
  return GetVersionList(ctx, id);
}

Status S4Drive::PurgeObjectVersions(ObjectId id, SimTime from, SimTime to) {
  ObjectMapEntry* entry = object_map_.Find(id);
  if (entry == nullptr) {
    return Status::NotFound("no such object");
  }
  ObjectHandle obj;
  if (auto loaded = LoadObject(id); loaded.ok()) {
    obj = *loaded;
  }
  bool versioned = ObjectIsVersioned(id);
  uint64_t purged_count = 0;
  // Bound the walk at `to`: entries newer than the purged range are skipped
  // by the waypoint seek instead of being read and ignored.
  Status walk = WalkJournal(id, obj.get(), to, [&](const JournalEntry& e) -> Result<bool> {
    if (e.time <= from) {
      return false;
    }
    if (e.time > to || IsPurged(id, e.time)) {
      return true;
    }
    if (e.type == JournalEntryType::kWrite || e.type == JournalEntryType::kTruncate) {
      for (const auto& d : e.blocks) {
        if (d.old_addr != kNullAddr && versioned) {
          sut_->ReleaseHistory(sb_.SegmentOf(d.old_addr), kSectorsPerBlock);
        }
      }
      ++purged_count;
    }
    return true;
  });
  S4_RETURN_IF_ERROR(walk);
  if (purged_count > 0) {
    auto& ranges = purged_[id];
    ranges.push_back(PurgedRange{from, to});
    m_.versions_purged->Add(purged_count);
  }
  return Status::Ok();
}

Status S4Drive::FlushObject(OpContext& ctx, ObjectId id, SimTime from, SimTime to) {
  OpArgs a{RpcOp::kFlushObject};
  a.object = id;
  a.admin_only = true;
  Status result = Execute(ctx, a, [&](OpArgs& args) -> Status {
    args.offset = static_cast<uint64_t>(from);
    args.length = static_cast<uint64_t>(to);
    // History purges are irreversible: make the audit trail that led up to
    // them durable (and marker-committed) before any version disappears.
    S4_RETURN_IF_ERROR(CommitAuditTail());
    return PurgeObjectVersions(id, from, to);
  });
  // The record attesting the purge itself must also survive a crash: nothing
  // acknowledges an irreversible history deletion that the chronicle could
  // then forget.
  if (result.ok()) {
    S4_RETURN_IF_ERROR(CommitAuditTail());
  }
  return result;
}

Status S4Drive::FlushObject(const Credentials& creds, ObjectId id, SimTime from, SimTime to) {
  OpContext ctx = MakeContext(creds, RpcOp::kFlushObject);
  return FlushObject(ctx, id, from, to);
}

Status S4Drive::Flush(OpContext& ctx, SimTime from, SimTime to) {
  OpArgs a{RpcOp::kFlush};
  a.admin_only = true;
  Status result = Execute(ctx, a, [&](OpArgs& args) -> Status {
    args.offset = static_cast<uint64_t>(from);
    args.length = static_cast<uint64_t>(to);
    // As in FlushObject: the pre-purge audit trail must be durable first.
    S4_RETURN_IF_ERROR(CommitAuditTail());
    std::vector<ObjectId> ids;
    for (const auto& [id, entry] : object_map_.entries()) {
      (void)entry;
      if (id != kAuditLogObjectId) {
        ids.push_back(id);
      }
    }
    for (ObjectId id : ids) {
      Status s = PurgeObjectVersions(id, from, to);
      if (!s.ok() && s.code() != ErrorCode::kNotFound) {
        return s;
      }
    }
    return Status::Ok();
  });
  // As in FlushObject: the purge's own record is committed before the ack.
  if (result.ok()) {
    S4_RETURN_IF_ERROR(CommitAuditTail());
  }
  return result;
}

Status S4Drive::Flush(const Credentials& creds, SimTime from, SimTime to) {
  OpContext ctx = MakeContext(creds, RpcOp::kFlush);
  return Flush(ctx, from, to);
}

}  // namespace s4
