// Operation and internals counters exposed by the drive.
#ifndef S4_SRC_DRIVE_STATS_H_
#define S4_SRC_DRIVE_STATS_H_

#include <cstdint>

#include "src/util/time.h"

namespace s4 {

struct DriveStats {
  // RPC-visible operations.
  uint64_t ops_total = 0;
  uint64_t ops_denied = 0;
  uint64_t time_based_reads = 0;

  // Versioning internals.
  uint64_t journal_entries = 0;
  uint64_t journal_sectors_written = 0;
  uint64_t inode_checkpoints = 0;
  uint64_t data_blocks_written = 0;
  uint64_t device_checkpoints = 0;

  // Audit.
  uint64_t audit_records = 0;
  uint64_t audit_blocks_written = 0;

  // Cleaner.
  uint64_t cleaner_passes = 0;
  uint64_t cleaner_segments_reclaimed = 0;
  uint64_t cleaner_segments_compacted = 0;
  uint64_t cleaner_sectors_expired = 0;
  uint64_t cleaner_sectors_copied = 0;
  SimDuration cleaner_time = 0;

  // Throttling.
  uint64_t throttle_delays = 0;
  uint64_t throttle_rejects = 0;

  // History pool.
  uint64_t versions_purged = 0;
};

}  // namespace s4

#endif  // S4_SRC_DRIVE_STATS_H_
