// S4Drive core: format, mount, crash recovery, checkpointing, caching, and
// the audit plumbing. The data-path operations live in drive_ops.cc, history
// reconstruction in drive_history.cc, and the cleaner in drive_cleaner.cc.
#include "src/drive/s4_drive.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "src/sim/lane_pool.h"
#include "src/util/check.h"
#include "src/util/crc32.h"
#include "src/util/logging.h"

namespace s4 {

// Applies a journal entry in the forward (replay) direction. Defined below;
// shared by crash recovery and lazy object loading.
void ApplyEntryForward(Inode* inode, bool* exists, const JournalEntry& e);

namespace {

// Estimated resident cost of a cached object, for the object cache budget.
uint64_t CachedObjectCostImpl(uint64_t blocks, uint64_t pending, uint64_t opaque,
                              uint64_t acl_entries) {
  return 128 + blocks * 24 + pending * 96 + opaque + acl_entries * 8;
}

}  // namespace

const char* DriveOpSpanName(RpcOp op) {
  switch (op) {
    case RpcOp::kInvalid:
      return "drive.Invalid";
    case RpcOp::kCreate:
      return "drive.Create";
    case RpcOp::kDelete:
      return "drive.Delete";
    case RpcOp::kRead:
      return "drive.Read";
    case RpcOp::kWrite:
      return "drive.Write";
    case RpcOp::kAppend:
      return "drive.Append";
    case RpcOp::kTruncate:
      return "drive.Truncate";
    case RpcOp::kGetAttr:
      return "drive.GetAttr";
    case RpcOp::kSetAttr:
      return "drive.SetAttr";
    case RpcOp::kGetAclByUser:
      return "drive.GetACLByUser";
    case RpcOp::kGetAclByIndex:
      return "drive.GetACLByIndex";
    case RpcOp::kSetAcl:
      return "drive.SetACL";
    case RpcOp::kPCreate:
      return "drive.PCreate";
    case RpcOp::kPDelete:
      return "drive.PDelete";
    case RpcOp::kPList:
      return "drive.PList";
    case RpcOp::kPMount:
      return "drive.PMount";
    case RpcOp::kSync:
      return "drive.Sync";
    case RpcOp::kFlush:
      return "drive.Flush";
    case RpcOp::kFlushObject:
      return "drive.FlushO";
    case RpcOp::kSetWindow:
      return "drive.SetWindow";
    case RpcOp::kGetVersionList:
      return "drive.GetVersionList";
    case RpcOp::kBatch:
      return "drive.Batch";
    case RpcOp::kAuditChallenge:
      return "drive.AuditChallenge";
    case RpcOp::kXorWrite:
      return "drive.XorWrite";
  }
  return "drive.Unknown";
}

S4Drive::S4Drive(BlockDevice* device, SimClock* clock, S4DriveOptions options)
    : device_(device), clock_(clock), options_(options),
      detection_window_(options.detection_window) {
  InitMetrics();
  audit_codec_.set_chained(options_.audit_chain);
}

S4Drive::~S4Drive() = default;

void S4Drive::InitMetrics() {
  m_.ops_total = metrics_.GetCounter("drive.ops_total");
  m_.ops_denied = metrics_.GetCounter("drive.ops_denied");
  m_.time_based_reads = metrics_.GetCounter("drive.time_based_reads");
  m_.journal_entries = metrics_.GetCounter("drive.journal_entries");
  m_.journal_sectors_written = metrics_.GetCounter("drive.journal_sectors_written");
  m_.inode_checkpoints = metrics_.GetCounter("drive.inode_checkpoints");
  m_.data_blocks_written = metrics_.GetCounter("drive.data_blocks_written");
  m_.device_checkpoints = metrics_.GetCounter("drive.device_checkpoints");
  m_.audit_records = metrics_.GetCounter("audit.records");
  m_.audit_blocks_written = metrics_.GetCounter("audit.blocks_written");
  m_.audit_chain_breaks = metrics_.GetCounter("audit.chain_breaks");
  m_.audit_clean_tail_truncations = metrics_.GetCounter("audit.clean_tail_truncations");
  m_.audit_records_dropped = metrics_.GetCounter("audit.records_dropped");
  m_.audit_marker_writes = metrics_.GetCounter("audit.marker_writes");
  m_.cleaner_passes = metrics_.GetCounter("cleaner.passes");
  m_.cleaner_segments_reclaimed = metrics_.GetCounter("cleaner.segments_reclaimed");
  m_.cleaner_segments_compacted = metrics_.GetCounter("cleaner.segments_compacted");
  m_.cleaner_sectors_expired = metrics_.GetCounter("cleaner.sectors_expired");
  m_.cleaner_sectors_copied = metrics_.GetCounter("cleaner.sectors_copied");
  m_.cleaner_time_us = metrics_.GetCounter("cleaner.time_us");
  m_.throttle_delays = metrics_.GetCounter("throttle.delays");
  m_.throttle_rejects = metrics_.GetCounter("throttle.rejects");
  m_.versions_purged = metrics_.GetCounter("history.versions_purged");
  m_.history_walks = metrics_.GetCounter("history.reconstruction_walks");
  m_.history_walk_sectors = metrics_.GetCounter("history.walk_sectors_read");
  m_.history_waypoint_seeks = metrics_.GetCounter("history.waypoint_seeks");
  m_.history_forward_walks = metrics_.GetCounter("history.forward_reconstructions");
  m_.jsector_cache_hits = metrics_.GetCounter("cache.jsector.hits");
  m_.jsector_cache_misses = metrics_.GetCounter("cache.jsector.misses");
  m_.cleaner_walk_sectors = metrics_.GetCounter("cleaner.walk_sectors_read");
  m_.cleaner_objects_visited = metrics_.GetCounter("cleaner.objects_visited");
  m_.cleaner_objects_skipped_unripe = metrics_.GetCounter("cleaner.objects_skipped_unripe");
  m_.cleaner_objects_skipped_budget = metrics_.GetCounter("cleaner.objects_skipped_budget");
  m_.cleaner_checkpoint_decode_errors =
      metrics_.GetCounter("cleaner.checkpoint_decode_errors");
  m_.recovery_clean_mounts = metrics_.GetCounter("recovery.clean_mounts");
  m_.recovery_segments_scanned = metrics_.GetCounter("recovery.segments_scanned");
  m_.recovery_segments_skipped = metrics_.GetCounter("recovery.segments_skipped");
  m_.recovery_superblock_votes = metrics_.GetCounter("recovery.superblock_votes");
  m_.recovery_superblocks_healed = metrics_.GetCounter("recovery.stale_superblocks_healed");
  m_.recovery_chunks_replayed = metrics_.GetCounter("recovery.chunks_replayed");
  m_.walk_sectors = metrics_.GetHistogram("history.walk_sectors");
  for (int op = 0; op <= kMaxRpcOp; ++op) {
    m_.op_latency[op] = metrics_.GetHistogram(
        std::string("drive.op.") + RpcOpName(static_cast<RpcOp>(op)) + ".latency");
  }
}

DriveStats S4Drive::stats() const {
  DriveStats s;
  s.ops_total = metrics_.CounterValue("drive.ops_total");
  s.ops_denied = metrics_.CounterValue("drive.ops_denied");
  s.time_based_reads = metrics_.CounterValue("drive.time_based_reads");
  s.journal_entries = metrics_.CounterValue("drive.journal_entries");
  s.journal_sectors_written = metrics_.CounterValue("drive.journal_sectors_written");
  s.inode_checkpoints = metrics_.CounterValue("drive.inode_checkpoints");
  s.data_blocks_written = metrics_.CounterValue("drive.data_blocks_written");
  s.device_checkpoints = metrics_.CounterValue("drive.device_checkpoints");
  s.audit_records = metrics_.CounterValue("audit.records");
  s.audit_blocks_written = metrics_.CounterValue("audit.blocks_written");
  s.cleaner_passes = metrics_.CounterValue("cleaner.passes");
  s.cleaner_segments_reclaimed = metrics_.CounterValue("cleaner.segments_reclaimed");
  s.cleaner_segments_compacted = metrics_.CounterValue("cleaner.segments_compacted");
  s.cleaner_sectors_expired = metrics_.CounterValue("cleaner.sectors_expired");
  s.cleaner_sectors_copied = metrics_.CounterValue("cleaner.sectors_copied");
  s.cleaner_time = static_cast<SimDuration>(metrics_.CounterValue("cleaner.time_us"));
  s.throttle_delays = metrics_.CounterValue("throttle.delays");
  s.throttle_rejects = metrics_.CounterValue("throttle.rejects");
  s.versions_purged = metrics_.CounterValue("history.versions_purged");
  return s;
}

OpContext S4Drive::MakeContext(const Credentials& creds, RpcOp op) {
  OpContext ctx;
  ctx.request_id = tracer_.NextRequestId();
  ctx.creds = creds;
  ctx.op = op;
  ctx.start_time = clock_->Now();
  ctx.clock = clock_;
  ctx.tracer = &tracer_;
  // On a shared executor lane the op overlaps other readers on this drive:
  // run it in snapshot mode (immutable-state reads only, deferred audit).
  ctx.snapshot = clock_->ActiveLaneIsShared();
  return ctx;
}

Status S4Drive::BeginOp(OpContext& ctx, const OpArgs& args) {
  m_.ops_total->Inc();
  ChargeCpu(&ctx);
  if (args.time_based && args.op == RpcOp::kRead) {
    m_.time_based_reads->Inc();
  }
  if (args.admin_only && !IsAdmin(ctx.creds)) {
    return Status::PermissionDenied(std::string(RpcOpName(args.op)) +
                                    " requires administrative access");
  }
  if (args.admission_bytes > 0) {
    S4_RETURN_IF_ERROR(ThrottleCheck(ctx.creds, args.admission_bytes));
  }
  return Status::Ok();
}

void S4Drive::EndOp(OpContext& ctx, const OpArgs& args, const Status& result,
                    SimTime op_start) {
  if (result.code() == ErrorCode::kPermissionDenied) {
    m_.ops_denied->Inc();
  }
  if (ctx.snapshot) {
    // Concurrent readers must not touch the shared audit buffer; the record
    // is parked on this lane and replayed by FlushDeferredAudits under
    // executor exclusivity, before anything could commit the audit tail.
    DeferAudit(ctx.creds, args.op, args.object, args.offset, args.length, result,
               args.time_based);
  } else {
    Audit(ctx.creds, args.op, args.object, args.offset, args.length, result, args.time_based);
  }
  m_.op_latency[static_cast<uint8_t>(args.op)]->Record(clock_->Now() - op_start);
}

void S4Drive::AuditRejectedFrame(OpContext& ctx, const Status& reason) {
  m_.ops_total->Inc();
  metrics_.GetCounter("rpc.rejected_frames")->Inc();
  ChargeCpu(&ctx);
  if (ctx.snapshot) {
    // A hostile frame can be mis-peeked onto a shared lane; its kInvalid
    // record defers like any snapshot-mode op's.
    DeferAudit(ctx.creds, RpcOp::kInvalid, kInvalidObjectId, 0, 0, reason, false);
  } else {
    Audit(ctx.creds, RpcOp::kInvalid, kInvalidObjectId, 0, 0, reason, false);
  }
  m_.op_latency[0]->Record(clock_->Now() - ctx.start_time);
}

void S4Drive::AuditBatchFrame(OpContext& ctx, uint64_t sub_ops, SimTime batch_start) {
  metrics_.GetCounter("rpc.batches")->Inc();
  metrics_.GetCounter("rpc.batched_sub_ops")->Add(sub_ops);
  Audit(ctx.creds, RpcOp::kBatch, kInvalidObjectId, 0, sub_ops, Status::Ok(), false);
  m_.op_latency[static_cast<uint8_t>(RpcOp::kBatch)]->Record(clock_->Now() - batch_start);
}

Result<std::unique_ptr<S4Drive>> S4Drive::Format(BlockDevice* device, SimClock* clock,
                                                 S4DriveOptions options) {
  std::unique_ptr<S4Drive> drive(new S4Drive(device, clock, options));
  S4_RETURN_IF_ERROR(drive->DoFormat());
  return drive;
}

Result<std::unique_ptr<S4Drive>> S4Drive::Mount(BlockDevice* device, SimClock* clock,
                                                S4DriveOptions options) {
  std::unique_ptr<S4Drive> drive(new S4Drive(device, clock, options));
  S4_RETURN_IF_ERROR(drive->DoMount());
  return drive;
}

Status S4Drive::DoFormat() {
  uint64_t total = device_->sector_count();
  // Checkpoint regions scale with the disk: object map + SUT must fit.
  uint32_t cp_sectors = static_cast<uint32_t>(std::max<uint64_t>(2048, total / 128));
  // Carry the epoch across reformats: a surviving replica of a previous
  // layout must never outvote the fresh one.
  uint64_t base_epoch = 0;
  {
    Bytes sector;
    if (device_->Read(0, 1, &sector).ok()) {
      auto old_sb = Superblock::Decode(sector);
      if (old_sb.ok()) {
        base_epoch = old_sb->epoch;
      }
    }
  }
  sb_ = Superblock();
  sb_.total_sectors = total;
  sb_.segment_sectors = options_.segment_sectors;
  sb_.checkpoint_a = 1;
  sb_.checkpoint_b = 1 + cp_sectors;
  sb_.checkpoint_sectors = cp_sectors;
  // Two dedicated sectors (A/B by marker generation parity) for the audit
  // commit marker, between the checkpoint regions and the segment area.
  sb_.audit_marker_a = 1 + 2ull * cp_sectors;
  sb_.audit_marker_b = sb_.audit_marker_a + 1;
  sb_.first_segment = sb_.audit_marker_b + 1;
  // Superblock replicas: the tail copy takes the device's last sector; the
  // mid-disk copy punches a one-sector hole at the would-be start of segment
  // mid_seg (the first segment boundary at or past the disk midpoint),
  // shifting every later segment by one sector. Both locations are
  // re-derivable at mount: the tail from geometry alone, the mid from the
  // fields of any valid copy.
  sb_.sb_tail = total - 1;
  uint64_t mid = total / 2;
  if (mid > sb_.first_segment && mid + 1 < sb_.sb_tail) {
    sb_.mid_seg = static_cast<SegmentId>((mid - sb_.first_segment +
                                          options_.segment_sectors - 1) /
                                         options_.segment_sectors);
    sb_.sb_mid = sb_.first_segment +
                 static_cast<uint64_t>(sb_.mid_seg) * options_.segment_sectors;
    if (sb_.sb_mid + 1 >= sb_.sb_tail) {
      sb_.sb_mid = 0;  // too little room past the midpoint: two copies only
      sb_.mid_seg = 0;
    }
  }
  // Count the segments that fit below the tail replica, hole included.
  sb_.segment_count = 0;
  while (sb_.SegmentStart(sb_.segment_count) + options_.segment_sectors <= sb_.sb_tail) {
    ++sb_.segment_count;
  }
  if (sb_.segment_count == 0) {
    return Status::InvalidArgument("device too small for S4 layout");
  }
  sb_.epoch = base_epoch;  // WriteSuperblockReplicas bumps to base_epoch + 1

  S4_RETURN_IF_ERROR(WriteSuperblockReplicas(/*clean=*/false, /*clean_seq=*/0));

  sut_ = std::make_unique<SegmentUsageTable>(sb_.segment_count, sb_.segment_sectors);
  writer_ = std::make_unique<SegmentWriter>(device_, &sb_, sut_.get(), clock_, /*next_seq=*/1);
  block_cache_ = std::make_unique<BlockCache>(device_, options_.block_cache_bytes, &metrics_);
  ConfigureReadahead();
  object_cache_ =
      std::make_unique<LruCache<ObjectId, ObjectHandle>>(options_.object_cache_bytes);
  object_cache_->set_evict_fn([this](const ObjectId& id, ObjectHandle&& obj) {
    Status s = EvictObject(id, std::move(obj));
    if (!s.ok() && eviction_error_.ok()) {
      eviction_error_ = s;
    }
  });
  if (options_.jsector_cache_bytes > 0) {
    jsector_cache_ = std::make_unique<LruCache<DiskAddr, std::shared_ptr<const JournalSector>>>(
        options_.jsector_cache_bytes);
  }

  S4_RETURN_IF_ERROR(InitReservedObjects());
  RebuildExpiryIndex();
  return WriteCheckpoint();
}

Status S4Drive::InitReservedObjects() {
  SimTime now = clock_->Now();
  // The audit log: a reserved object only the drive front end writes. It is
  // not user-writable and not versioned (section 4.2.3).
  {
    ObjectMapEntry e;
    e.create_time = now;
    e.oldest_time = now;
    object_map_.Put(kAuditLogObjectId, e);
    auto obj = std::make_shared<CachedObject>();
    obj->inode.id = kAuditLogObjectId;
    obj->inode.attrs.create_time = now;
    obj->inode.attrs.modify_time = now;
    obj->dirty = true;
    object_cache_->Put(kAuditLogObjectId, obj, CachedObjectCostImpl(0, 0, 0, 0));
  }
  // The partition (named object) table: versioned like any other object.
  {
    ObjectMapEntry e;
    e.create_time = now;
    e.oldest_time = now;
    object_map_.Put(kPartitionTableObjectId, e);
    auto obj = std::make_shared<CachedObject>();
    obj->inode.id = kPartitionTableObjectId;
    obj->inode.attrs.create_time = now;
    obj->inode.attrs.modify_time = now;
    obj->inode.acl.push_back(AclEntry{kEveryoneUserId, kPermRead});
    obj->dirty = true;
    object_cache_->Put(kPartitionTableObjectId, obj, CachedObjectCostImpl(0, 0, 0, 1));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Device checkpoint
// ---------------------------------------------------------------------------

Result<Bytes> S4Drive::EncodeDeviceCheckpoint() const {
  Encoder enc(1 << 16);
  enc.PutU32(kCheckpointMagic);
  enc.PutU64(checkpoint_generation_);
  enc.PutU64(writer_->next_seq());
  enc.PutI64(detection_window_);
  object_map_.EncodeTo(&enc);
  sut_->EncodeTo(&enc);
  enc.PutVarint(purged_.size());
  for (const auto& [id, ranges] : purged_) {
    enc.PutVarint(id);
    enc.PutVarint(ranges.size());
    for (const auto& r : ranges) {
      enc.PutI64(r.from);
      enc.PutI64(r.to);
    }
  }
  // Audit chain state at checkpoint time. Serves as a second committed-size
  // floor at mount: destroying both marker sectors cannot shrink the audited
  // prefix below what the checkpoint vouches for.
  enc.PutVarint(audit_appended_state_.next_seq);
  enc.PutVarint(audit_appended_state_.next_offset);
  enc.PutU32(audit_appended_state_.link);
  Bytes out = enc.Take();
  size_t body = out.size();
  size_t total = ((body + 12 + kSectorSize - 1) / kSectorSize) * kSectorSize;
  if (total > static_cast<size_t>(sb_.checkpoint_sectors) * kSectorSize) {
    return Status::OutOfSpace("device checkpoint exceeds checkpoint region");
  }
  Encoder framed(total);
  framed.PutU64(body);
  framed.PutBytes(out);
  Bytes framed_bytes = framed.Take();
  framed_bytes.resize(total - 4, 0);
  uint32_t crc = Crc32c(framed_bytes);
  Encoder tail;
  tail.PutU32(crc);
  framed_bytes.insert(framed_bytes.end(), tail.bytes().begin(), tail.bytes().end());
  return framed_bytes;
}

Status S4Drive::SyncAuditTail() {
  S4_RETURN_IF_ERROR(FlushAllPending(/*force_audit=*/true));
  return writer_->Flush(actx());
}

Status S4Drive::CommitAuditTail() {
  S4_RETURN_IF_ERROR(SyncAuditTail());
  return WriteAuditMarker();
}

Status S4Drive::WriteCheckpoint() {
  S4_RETURN_IF_ERROR(CommitAuditTail());

  ++checkpoint_generation_;
  S4_ASSIGN_OR_RETURN(Bytes blob, EncodeDeviceCheckpoint());
  DiskAddr region = (checkpoint_generation_ % 2 == 0) ? sb_.checkpoint_a : sb_.checkpoint_b;
  S4_RETURN_IF_ERROR(device_->Write(region, blob, actx()));
  checkpoint_seq_ = writer_->next_seq();
  bytes_since_checkpoint_ = 0;
  m_.device_checkpoints->Inc();

  // Segments fully expired by the cleaner become allocatable only now: any
  // recovery from this point on starts from a checkpoint that already knows
  // they are empty, so stale chunks inside them can never be replayed.
  for (SegmentId seg = 0; seg < sut_->segment_count(); ++seg) {
    if (sut_->Reclaimable(seg)) {
      sut_->Reclaim(seg);
      m_.cleaner_segments_reclaimed->Inc();
    }
  }
  return Status::Ok();
}

Status S4Drive::LoadDeviceCheckpoint() {
  auto try_region = [&](DiskAddr region) -> Result<std::pair<uint64_t, Bytes>> {
    Bytes head;
    S4_RETURN_IF_ERROR(device_->Read(region, 1, &head));
    Decoder dec(head);
    S4_ASSIGN_OR_RETURN(uint64_t body, dec.U64());
    uint64_t total = ((body + 12 + kSectorSize - 1) / kSectorSize) * kSectorSize;
    if (total > static_cast<uint64_t>(sb_.checkpoint_sectors) * kSectorSize) {
      return Status::DataCorruption("checkpoint length invalid");
    }
    Bytes blob;
    S4_RETURN_IF_ERROR(device_->Read(region, total / kSectorSize, &blob));
    uint32_t stored_crc;
    {
      Decoder crc_dec(ByteSpan(blob).subspan(blob.size() - 4));
      S4_ASSIGN_OR_RETURN(stored_crc, crc_dec.U32());
    }
    if (Crc32c(ByteSpan(blob).subspan(0, blob.size() - 4)) != stored_crc) {
      return Status::DataCorruption("checkpoint crc mismatch");
    }
    Decoder body_dec(ByteSpan(blob).subspan(8, body));
    S4_ASSIGN_OR_RETURN(uint32_t magic, body_dec.U32());
    if (magic != kCheckpointMagic) {
      return Status::DataCorruption("checkpoint bad magic");
    }
    S4_ASSIGN_OR_RETURN(uint64_t generation, body_dec.U64());
    return std::make_pair(generation, Bytes(blob.begin() + 8, blob.begin() + 8 + body));
  };

  auto a = try_region(sb_.checkpoint_a);
  auto b = try_region(sb_.checkpoint_b);
  const Bytes* chosen = nullptr;
  uint64_t generation = 0;
  if (a.ok() && (!b.ok() || a->first >= b->first)) {
    chosen = &a->second;
    generation = a->first;
  } else if (b.ok()) {
    chosen = &b->second;
    generation = b->first;
  } else {
    return Status::DataCorruption("no valid device checkpoint");
  }

  Decoder dec(*chosen);
  S4_RETURN_IF_ERROR(dec.Skip(4 + 8));  // magic + generation
  S4_ASSIGN_OR_RETURN(uint64_t next_seq, dec.U64());
  S4_ASSIGN_OR_RETURN(detection_window_, dec.I64());
  S4_ASSIGN_OR_RETURN(object_map_, ObjectMap::DecodeFrom(&dec));
  S4_ASSIGN_OR_RETURN(SegmentUsageTable sut, SegmentUsageTable::DecodeFrom(&dec));
  sut_ = std::make_unique<SegmentUsageTable>(std::move(sut));
  S4_ASSIGN_OR_RETURN(uint64_t npurged, dec.Varint());
  purged_.clear();
  for (uint64_t i = 0; i < npurged; ++i) {
    S4_ASSIGN_OR_RETURN(uint64_t id, dec.Varint());
    S4_ASSIGN_OR_RETURN(uint64_t nranges, dec.Varint());
    std::vector<PurgedRange> ranges;
    for (uint64_t k = 0; k < nranges; ++k) {
      PurgedRange r;
      S4_ASSIGN_OR_RETURN(r.from, dec.I64());
      S4_ASSIGN_OR_RETURN(r.to, dec.I64());
      ranges.push_back(r);
    }
    purged_[id] = std::move(ranges);
  }
  ckpt_chain_state_ = AuditChainState();
  if (!dec.done()) {
    S4_ASSIGN_OR_RETURN(ckpt_chain_state_.next_seq, dec.Varint());
    S4_ASSIGN_OR_RETURN(ckpt_chain_state_.next_offset, dec.Varint());
    S4_ASSIGN_OR_RETURN(ckpt_chain_state_.link, dec.U32());
  }
  checkpoint_generation_ = generation;
  checkpoint_seq_ = next_seq;
  // Mirror the reclaim WriteCheckpoint performs right after encoding: the
  // live drive freed every checkpointed-reclaimable segment the moment this
  // checkpoint landed, and may then have reused them. Loading them as kFull
  // would hide any post-checkpoint chunks inside them from roll-forward, and
  // would desynchronise the free-segment enumeration from the allocation
  // order the writer actually followed.
  for (SegmentId seg = 0; seg < sut_->segment_count(); ++seg) {
    if (sut_->Reclaimable(seg)) {
      sut_->Reclaim(seg);
    }
  }
  return Status::Ok();
}

void S4Drive::ConfigureReadahead() {
  if (options_.readahead_sectors == 0) {
    return;
  }
  block_cache_->SetPrefetchPolicy(
      options_.readahead_sectors, [this](DiskAddr addr) -> DiskAddr {
        if (sut_ == nullptr || addr < sb_.first_segment) {
          return addr;  // superblock / checkpoint regions: no prefetch
        }
        SegmentId seg = sb_.SegmentOf(addr);
        if (seg >= sut_->segment_count() ||
            sut_->Info(seg).state != SegmentState::kFull) {
          return addr;  // active or free segment: platter may be stale
        }
        return sb_.SegmentStart(seg) + sb_.segment_sectors;
      });
}

// ---------------------------------------------------------------------------
// Mount & crash recovery
// ---------------------------------------------------------------------------

Status S4Drive::WriteSuperblockReplicas(bool clean, uint64_t clean_seq) {
  // Every replica write is a new epoch: the vote at mount must be able to
  // tell a copy from this write apart from one a crash left behind.
  sb_.epoch += 1;
  sb_.clean = clean ? 1 : 0;
  sb_.clean_seq = clean ? clean_seq : 0;
  Bytes img = sb_.Encode();
  S4_RETURN_IF_ERROR(device_->Write(0, img, actx()));
  if (sb_.sb_mid != 0) {
    S4_RETURN_IF_ERROR(device_->Write(sb_.sb_mid, img, actx()));
  }
  if (sb_.sb_tail != 0) {
    S4_RETURN_IF_ERROR(device_->Write(sb_.sb_tail, img, actx()));
  }
  return Status::Ok();
}

Status S4Drive::LoadSuperblockQuorum(bool* clean) {
  struct Copy {
    DiskAddr addr;
    std::optional<Superblock> sb;
  };
  auto read_copy = [&](DiskAddr addr) -> std::optional<Superblock> {
    Bytes sector;
    if (!device_->Read(addr, 1, &sector).ok()) {
      return std::nullopt;
    }
    auto sb = Superblock::Decode(sector);
    if (!sb.ok()) {
      return std::nullopt;
    }
    return *sb;
  };
  // Sector 0 and the device tail are derivable from geometry alone. The
  // mid-disk replica's address is a layout decision, so it can only be
  // learned from a copy already read — if both outer copies are torn, the
  // mid copy is unreachable, which is fine: the quorum tolerates one torn
  // copy, not two.
  uint64_t total = device_->sector_count();
  std::vector<Copy> copies;
  copies.push_back({0, read_copy(0)});
  if (total > 1) {
    copies.push_back({total - 1, read_copy(total - 1)});
  }
  DiskAddr mid = 0;
  for (const auto& c : copies) {
    if (c.sb.has_value() && c.sb->sb_mid != 0) {
      mid = c.sb->sb_mid;
      break;
    }
  }
  if (mid != 0 && mid != total - 1) {
    copies.push_back({mid, read_copy(mid)});
  }

  // Vote: every copy is self-certifying (CRC), so the highest epoch among the
  // valid ones is the newest state any completed replica write produced.
  const Superblock* winner = nullptr;
  uint64_t valid = 0;
  for (const auto& c : copies) {
    if (!c.sb.has_value()) {
      continue;
    }
    ++valid;
    if (winner == nullptr || c.sb->epoch > winner->epoch) {
      winner = &*c.sb;
    }
  }
  if (winner == nullptr) {
    return Status::DataCorruption("no valid superblock replica");
  }
  m_.recovery_superblock_votes->Add(valid);
  sb_ = *winner;

  // Heal copies the winner outvoted (torn or stale), at the addresses the
  // winner itself declares — never at locations a dead layout named, and
  // never on a pre-replica volume (sb_tail == 0), whose tail sector is
  // segment space. Healing runs even for a clean winner: every later
  // replica-write round (dirty re-mark, clean unmount) bumps the epoch and
  // writes sector 0 first, so starting a round with a torn tail risks a cut
  // leaving BOTH outer copies torn — and the mid copy, whose address only an
  // outer copy can reveal, unreachable. Heal writes carry the winner's exact
  // image, so a cut mid-heal just leaves the same copy torn for the retry.
  // Sector 0 is rewritten first in every round, so it can be torn but never
  // stale while others are newer; healing in declared order therefore fixes
  // the (at most one) torn copy before any write that could tear another.
  if (sb_.sb_tail != 0) {
    std::vector<DiskAddr> declared = {0, sb_.sb_tail};
    if (sb_.sb_mid != 0) {
      declared.push_back(sb_.sb_mid);
    }
    Bytes img = sb_.Encode();
    for (DiskAddr addr : declared) {
      bool current = false;
      for (const auto& c : copies) {
        if (c.addr == addr && c.sb.has_value() && c.sb->epoch == sb_.epoch) {
          current = true;
          break;
        }
      }
      if (current) {
        continue;
      }
      m_.recovery_superblocks_healed->Inc();
      S4_RETURN_IF_ERROR(device_->Write(addr, img, actx()));
    }
  }
  *clean = sb_.clean != 0;
  return Status::Ok();
}

Status S4Drive::ResumeWriterFromCheckpoint() {
  // A checkpoint stores at most one active segment (the writer fills one at a
  // time); written_sectors is its exact on-disk fill, because every pending
  // record is flushed before the checkpoint encodes the table.
  for (SegmentId seg = 0; seg < sut_->segment_count(); ++seg) {
    if (sut_->Info(seg).state == SegmentState::kActive) {
      writer_->Resume(seg, sut_->Info(seg).written_sectors);
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status S4Drive::DoMount() {
  OpContext mount_ctx;
  mount_ctx.request_id = tracer_.NextRequestId();
  mount_ctx.clock = clock_;
  mount_ctx.tracer = &tracer_;

  bool clean = false;
  {
    ScopedSpan span(&mount_ctx, "mount.superblock_vote");
    S4_RETURN_IF_ERROR(LoadSuperblockQuorum(&clean));
  }
  {
    ScopedSpan span(&mount_ctx, "mount.checkpoint_load");
    S4_RETURN_IF_ERROR(LoadDeviceCheckpoint());
  }

  block_cache_ = std::make_unique<BlockCache>(device_, options_.block_cache_bytes, &metrics_);
  ConfigureReadahead();
  object_cache_ =
      std::make_unique<LruCache<ObjectId, ObjectHandle>>(options_.object_cache_bytes);
  object_cache_->set_evict_fn([this](const ObjectId& id, ObjectHandle&& obj) {
    Status s = EvictObject(id, std::move(obj));
    if (!s.ok() && eviction_error_.ok()) {
      eviction_error_ = s;
    }
  });
  if (options_.jsector_cache_bytes > 0) {
    jsector_cache_ = std::make_unique<LruCache<DiskAddr, std::shared_ptr<const JournalSector>>>(
        options_.jsector_cache_bytes);
  }
  writer_ = std::make_unique<SegmentWriter>(device_, &sb_, sut_.get(), clock_, checkpoint_seq_);

  const bool fast_path = clean && sb_.clean_seq == checkpoint_seq_;
  if (fast_path) {
    // Clean unmount vouched for this exact checkpoint: the log holds nothing
    // newer, so the scan has nothing to find. O(checkpoint), not O(journal).
    m_.recovery_clean_mounts->Inc();
    m_.recovery_segments_skipped->Add(sut_->segment_count());
    S4_RETURN_IF_ERROR(ResumeWriterFromCheckpoint());
  } else {
    S4_RETURN_IF_ERROR(RollForward(checkpoint_seq_, &mount_ctx));
  }
  RebuildExpiryIndex();

  // Mark the volume dirty before anything can touch the log (the audit-chain
  // pass below may trim a torn tail): a crash from here on must roll forward.
  if (sb_.clean != 0) {
    S4_RETURN_IF_ERROR(WriteSuperblockReplicas(/*clean=*/false, /*clean_seq=*/0));
  }

  // The audit sweep runs on BOTH paths, clean mounts included. The chronicle
  // is tamper evidence: a byte flipped offline in a committed frame changes
  // neither the object size nor any marker, so only re-hashing the chain can
  // catch it. Its cost is O(audit log), proportional to operation count —
  // not to the journal bytes the skipped log scan would have read.
  ScopedSpan span(&mount_ctx, "mount.audit_verify");
  return VerifyAuditChainAtMount();
}

Status S4Drive::RollForward(uint64_t checkpoint_seq, OpContext* ctx) {
  // Candidate segments — the only ones that can hold post-checkpoint chunks:
  //
  //   1. The checkpoint-time active segment (at most one), which the writer
  //      may have kept filling past its checkpointed fill.
  //   2. Free segments, in round-robin order from the persisted allocation
  //      hint. Between checkpoints the free set only shrinks, and it shrinks
  //      exactly in Allocate()'s round-robin order, so the allocations the
  //      crashed writer performed are a prefix of that enumeration.
  //
  // Everything else was sealed at (or reclaimed before) the checkpoint and
  // cannot have been written since. The free-segment chain ends at the first
  // candidate with no fresh chunk: a rollover flushes the pending tail into
  // the old segment before sealing it, so every allocated segment except
  // possibly the newest holds at least one flushed chunk.
  struct SegmentScan {
    SegmentId seg = kNullSegment;
    uint32_t start = 0;                // checkpointed fill (scan starts here)
    std::vector<ScannedChunk> chunks;  // fresh chunks only (seq >= checkpoint)
    uint32_t fill_sectors = 0;         // on-disk fill = start + fresh sectors
  };
  auto scan_one = [&](SegmentScan* s) -> Status {
    SegmentScanOptions opts;
    opts.start_offset = s->start;
    opts.min_seq = checkpoint_seq;
    S4_ASSIGN_OR_RETURN(s->chunks, ScanSegment(device_, sb_, s->seg, opts));
    uint32_t fill = s->start;
    for (const auto& chunk : s->chunks) {
      uint32_t sectors = 1;
      for (const auto& r : chunk.records) {
        sectors += r.sectors;
      }
      fill += sectors;
    }
    s->fill_sectors = fill;
    return Status::Ok();
  };

  std::vector<SegmentScan> actives;
  std::vector<SegmentId> free_order;
  {
    uint32_t n = sut_->segment_count();
    for (SegmentId seg = 0; seg < n; ++seg) {
      if (sut_->Info(seg).state == SegmentState::kActive) {
        SegmentScan s;
        s.seg = seg;
        s.start = sut_->Info(seg).written_sectors;
        actives.push_back(std::move(s));
      }
    }
    SegmentId hint = sut_->next_alloc_hint();
    for (uint32_t i = 0; i < n; ++i) {
      SegmentId seg = (hint + i) % n;
      if (sut_->Info(seg).state == SegmentState::kFree) {
        free_order.push_back(seg);
      }
    }
  }

  const int workers = std::max(1, options_.mount_scan_workers);
  std::vector<SegmentScan> scans;  // non-empty scans, for replay and resume
  uint64_t scanned = 0;
  {
    ScopedSpan span(ctx, "mount.scan");
    // Wave 0: the checkpoint-time active(s), scanned unconditionally — a
    // rollover with an empty pending queue seals the old active without
    // planting a chunk in its successor, so "active yielded nothing" must
    // not end the chain.
    std::vector<std::function<Status()>> tasks;
    for (auto& s : actives) {
      tasks.push_back([&scan_one, ps = &s] { return scan_one(ps); });
    }
    S4_RETURN_IF_ERROR(RunOnLanes(clock_, workers, tasks));
    scanned += actives.size();
    for (auto& s : actives) {
      if (!s.chunks.empty()) {
        scans.push_back(s);  // copy: `actives` also feeds the resume fallback
      }
    }
    // The free chain, in waves of `workers`: scan a wave in parallel, then
    // inspect it in allocation order and stop at the first empty scan.
    bool done = false;
    for (size_t base = 0; base < free_order.size() && !done; base += workers) {
      size_t count = std::min<size_t>(workers, free_order.size() - base);
      std::vector<SegmentScan> wave(count);
      tasks.clear();
      for (size_t i = 0; i < count; ++i) {
        wave[i].seg = free_order[base + i];
        tasks.push_back([&scan_one, ps = &wave[i]] { return scan_one(ps); });
      }
      S4_RETURN_IF_ERROR(RunOnLanes(clock_, workers, tasks));
      // Count only candidates inspected up to (and including) the chain
      // terminator, so the metric is independent of wave width: a wide wave
      // may speculatively scan segments past the first empty one, but those
      // results are discarded and never feed recovery.
      for (auto& s : wave) {
        ++scanned;
        if (s.chunks.empty()) {
          done = true;
          break;
        }
        scans.push_back(std::move(s));
      }
    }
  }
  m_.recovery_segments_scanned->Add(scanned);
  if (sut_->segment_count() > scanned) {
    m_.recovery_segments_skipped->Add(sut_->segment_count() - scanned);
  }

  // Gather fresh chunks in global seq order. The scans above only return
  // chunks at or past the checkpoint seq, so everything here replays.
  std::vector<const ScannedChunk*> fresh;
  for (const auto& scan : scans) {
    for (const auto& chunk : scan.chunks) {
      fresh.push_back(&chunk);
    }
  }
  std::sort(fresh.begin(), fresh.end(),
            [](const ScannedChunk* a, const ScannedChunk* b) { return a->seq < b->seq; });
  m_.recovery_chunks_replayed->Add(fresh.size());
  ScopedSpan replay_span(ctx, "mount.replay");

  // Replay. Objects touched post-checkpoint are materialised from their inode
  // checkpoints and mutated forward so deletes can account their blocks.
  std::map<ObjectId, std::shared_ptr<CachedObject>> rebuilt;
  auto materialize = [&](ObjectId id) -> Result<std::shared_ptr<CachedObject>> {
    auto it = rebuilt.find(id);
    if (it != rebuilt.end()) {
      return it->second;
    }
    auto obj = std::make_shared<CachedObject>();
    const ObjectMapEntry* entry = object_map_.Find(id);
    if (entry != nullptr && entry->checkpoint_addr != kNullAddr) {
      Bytes record;
      S4_RETURN_IF_ERROR(device_->Read(entry->checkpoint_addr, entry->checkpoint_sectors,
                                       &record));
      S4_ASSIGN_OR_RETURN(obj->inode, Inode::DecodeCheckpoint(record));
      obj->exists = entry->live();
    } else {
      obj->inode.id = id;
      obj->exists = entry != nullptr && entry->live();
    }
    rebuilt[id] = obj;
    return obj;
  };
  // materialize() gives the state as of the object's last inode checkpoint.
  // Entries between that inode checkpoint and the device checkpoint live in
  // journal sectors the checkpointed map already references (journal_head);
  // materialize_full applies those too — the chain replay is done inline so
  // recovery never depends on the object cache.
  auto materialize_full = [&](ObjectId id) -> Result<std::shared_ptr<CachedObject>> {
    auto it = rebuilt.find(id);
    if (it != rebuilt.end()) {
      return it->second;
    }
    S4_ASSIGN_OR_RETURN(std::shared_ptr<CachedObject> obj, materialize(id));
    const ObjectMapEntry* entry = object_map_.Find(id);
    if (entry != nullptr && entry->journal_head != kNullAddr) {
      // Collect sectors newer than the inode checkpoint, oldest first.
      std::vector<JournalSector> sectors;
      DiskAddr addr = entry->journal_head;
      while (addr != kNullAddr) {
        Bytes raw;
        S4_RETURN_IF_ERROR(device_->Read(addr, 1, &raw));
        auto sector = JournalSector::Decode(raw);
        if (!sector.ok() || sector->object_id != id) {
          break;  // chain ran into reclaimed space; older state unreachable
        }
        bool all_older = !sector->entries.empty() &&
                         sector->entries.back().time <= entry->checkpoint_time;
        DiskAddr prev = sector->prev;
        sectors.push_back(std::move(*sector));
        if (all_older) {
          break;
        }
        addr = prev;
      }
      std::reverse(sectors.begin(), sectors.end());
      for (const auto& sector : sectors) {
        for (const auto& e : sector.entries) {
          if (e.time <= entry->checkpoint_time) {
            continue;
          }
          ApplyEntryForward(&obj->inode, &obj->exists, e);
        }
      }
    }
    return obj;
  };

  uint64_t max_seq = checkpoint_seq > 0 ? checkpoint_seq - 1 : 0;
  for (const ScannedChunk* chunk : fresh) {
    max_seq = std::max(max_seq, chunk->seq);
    SegmentId seg = chunk->segment;
    if (sut_->Info(seg).state == SegmentState::kFree) {
      sut_->SetState(seg, SegmentState::kActive);
    }
    sut_->AddWritten(seg, 1);  // summary sector
    for (const auto& rec : chunk->records) {
      sut_->AddWritten(seg, rec.sectors);
      if (rec.kind != RecordKind::kJournal) {
        continue;  // accounted when a journal entry references it
      }
      sut_->AddLive(seg, 1, chunk->write_time);
      // The scan captured the journal sector's bytes while it had the
      // segment in hand; decode in memory rather than seeking back to it.
      Bytes raw = rec.raw;
      if (raw.empty()) {
        S4_RETURN_IF_ERROR(device_->Read(rec.addr, 1, &raw));
      }
      S4_ASSIGN_OR_RETURN(JournalSector sector, JournalSector::Decode(raw));
      ObjectId id = sector.object_id;
      ObjectMapEntry* entry = object_map_.Find(id);
      for (const auto& e : sector.entries) {
        if (e.type == JournalEntryType::kCreate) {
          ObjectMapEntry fresh_entry;
          fresh_entry.create_time = e.time;
          fresh_entry.oldest_time = e.time;
          object_map_.Put(id, fresh_entry);
          object_map_.ReserveThrough(id);
          entry = object_map_.Find(id);
          auto obj = std::make_shared<CachedObject>();
          obj->inode.id = id;
          rebuilt[id] = obj;
        }
        S4_ASSIGN_OR_RETURN(std::shared_ptr<CachedObject> obj, materialize_full(id));
        if (entry == nullptr) {
          entry = object_map_.Find(id);
        }
        if (entry == nullptr) {
          return Status::DataCorruption("journal entry for unknown object");
        }
        bool versioned = ObjectIsVersioned(id);
        // Accounting for data the entry introduced / superseded.
        for (const auto& d : e.blocks) {
          if (d.new_addr != kNullAddr) {
            sut_->AddLive(sb_.SegmentOf(d.new_addr), kSectorsPerBlock, e.time);
          }
          if (d.old_addr != kNullAddr) {
            if (versioned) {
              sut_->LiveToHistory(sb_.SegmentOf(d.old_addr), kSectorsPerBlock);
            } else {
              sut_->ReleaseLive(sb_.SegmentOf(d.old_addr), kSectorsPerBlock);
            }
          }
        }
        if (e.type == JournalEntryType::kCheckpoint ||
            e.type == JournalEntryType::kDelete) {
          if (e.checkpoint_addr != kNullAddr) {
            sut_->AddLive(sb_.SegmentOf(e.checkpoint_addr), e.checkpoint_sectors, e.time);
            if (entry->checkpoint_addr != kNullAddr &&
                entry->checkpoint_addr != e.checkpoint_addr) {
              sut_->ReleaseLive(sb_.SegmentOf(entry->checkpoint_addr),
                                entry->checkpoint_sectors);
            }
            entry->checkpoint_addr = e.checkpoint_addr;
            entry->checkpoint_sectors = e.checkpoint_sectors;
            entry->checkpoint_time = e.time;
          }
        }
        if (e.type == JournalEntryType::kDelete) {
          entry->delete_time = e.time;
          // The object's current blocks become history (or are freed).
          for (const auto& [index, addr] : obj->inode.blocks) {
            (void)index;
            if (addr != kNullAddr) {
              if (versioned) {
                sut_->LiveToHistory(sb_.SegmentOf(addr), kSectorsPerBlock);
              } else {
                sut_->ReleaseLive(sb_.SegmentOf(addr), kSectorsPerBlock);
              }
            }
          }
        }
        ApplyEntryForward(&obj->inode, &obj->exists, e);
      }
      entry->journal_head = rec.addr;
      // Rebuild the waypoint cadence exactly as FlushObjectJournal laid it
      // down: sectors_since_waypoint was checkpointed, and post-checkpoint
      // sectors are re-noted here in append order, so recovery converges on
      // the same waypoints the crashed drive had (modulo never-flushed ones).
      if (!sector.entries.empty()) {
        entry->NoteJournalSector(sector.entries.back().time, rec.addr,
                                 options_.waypoint_interval_sectors);
      }
    }
  }

  // Resume the writer in the segment holding the newest chunk; with no fresh
  // chunk anywhere, fall back to the checkpointed active at its checkpointed
  // fill. Every other active seals: the writer moved past it before the
  // crash, or it was abandoned by a recovery this one supersedes.
  writer_ = std::make_unique<SegmentWriter>(device_, &sb_, sut_.get(), clock_, max_seq + 1);
  SegmentId resume_seg = kNullSegment;
  uint32_t resume_fill = 0;
  uint64_t best_seq = 0;
  for (const auto& scan : scans) {
    uint64_t seg_max = scan.chunks.back().seq;
    if (seg_max >= best_seq) {
      best_seq = seg_max;
      resume_seg = scan.seg;
      resume_fill = scan.fill_sectors;
    }
  }
  if (resume_seg == kNullSegment && !actives.empty()) {
    resume_seg = actives.front().seg;
    resume_fill = actives.front().start;
  }
  for (SegmentId seg = 0; seg < sut_->segment_count(); ++seg) {
    if (seg != resume_seg && sut_->Info(seg).state == SegmentState::kActive) {
      sut_->SetState(seg, SegmentState::kFull);
    }
  }
  if (resume_seg != kNullSegment) {
    if (sut_->Info(resume_seg).state != SegmentState::kActive) {
      sut_->SetState(resume_seg, SegmentState::kActive);
    }
    writer_->Resume(resume_seg, resume_fill);
  }

  // The replay just reconstructed every object the fresh journal touched —
  // the same state LoadObject would rebuild by walking the object's journal
  // chain backward, one clustered read per link. Seed the cache so the
  // audit-chain sweep and first post-mount accesses start warm instead of
  // re-paying that walk (on a long-crashed volume the audit log's chain is
  // one link per sync since the last checkpoint).
  for (auto& [id, obj] : rebuilt) {
    const ObjectMapEntry* entry = object_map_.Find(id);
    if (entry == nullptr) {
      continue;
    }
    obj->exists = entry->live();
    obj->inode.id = id;
    object_cache_->Put(id, obj,
                       CachedObjectCostImpl(obj->inode.blocks.size(), obj->pending.size(),
                                            obj->inode.attrs.opaque.size(),
                                            obj->inode.acl.size()));
  }
  return Status::Ok();
}

// Applies a journal entry forward (roll-forward / chain replay direction).
void ApplyEntryForward(Inode* inode, bool* exists, const JournalEntry& e) {
  switch (e.type) {
    case JournalEntryType::kCreate: {
      Decoder acl_dec(e.old_blob);
      auto acl = DecodeAcl(&acl_dec);
      if (acl.ok()) {
        inode->acl = *acl;
      }
      inode->attrs.opaque = e.new_blob;
      inode->attrs.create_time = e.time;
      inode->attrs.modify_time = e.time;
      *exists = true;
      break;
    }
    case JournalEntryType::kWrite:
    case JournalEntryType::kTruncate:
      inode->attrs.size = e.new_size;
      inode->attrs.modify_time = e.time;
      for (const auto& d : e.blocks) {
        if (d.new_addr == kNullAddr) {
          inode->blocks.erase(d.block_index);
        } else {
          inode->blocks[d.block_index] = d.new_addr;
        }
      }
      break;
    case JournalEntryType::kSetAttr:
      inode->attrs.opaque = e.new_blob;
      inode->attrs.modify_time = e.time;
      break;
    case JournalEntryType::kSetAcl: {
      Decoder acl_dec(e.new_blob);
      auto acl = DecodeAcl(&acl_dec);
      if (acl.ok()) {
        inode->acl = *acl;
      }
      break;
    }
    case JournalEntryType::kDelete:
      *exists = false;
      break;
    case JournalEntryType::kCheckpoint:
      break;
  }
}

// ---------------------------------------------------------------------------
// Object cache and journal/checkpoint plumbing
// ---------------------------------------------------------------------------

void S4Drive::ChargeCpu(OpContext* ctx) {
  clock_->Advance(options_.cpu_per_op);
  if (ctx != nullptr) {
    ctx->cpu_time += options_.cpu_per_op;
  }
}

bool S4Drive::ObjectIsVersioned(ObjectId id) const {
  if (id == kAuditLogObjectId) {
    return false;
  }
  return options_.versioning_enabled;
}

Result<Bytes> S4Drive::ReadRecord(DiskAddr addr, uint32_t sectors) {
  Bytes out;
  if (writer_->ReadPending(addr, sectors, &out)) {
    return out;
  }
  if (sectors == 1) {
    // Journal sectors: cluster the read backward along the chain direction.
    S4_RETURN_IF_ERROR(block_cache_->ReadSectorClustered(addr, &out, actx()));
    return out;
  }
  S4_RETURN_IF_ERROR(block_cache_->Read(addr, sectors, &out, actx()));
  return out;
}

Result<std::shared_ptr<const JournalSector>> S4Drive::ReadJournalSector(
    DiskAddr addr, uint64_t* sectors_visited) {
  if (sectors_visited != nullptr) {
    ++*sectors_visited;
  }
  // Snapshot mode (concurrent readers): the LRU may not be reordered or
  // grown, so hits come from Peek and misses stay uncached.
  bool snapshot = actx() != nullptr && actx()->snapshot;
  if (jsector_cache_ != nullptr) {
    auto* cached = snapshot ? jsector_cache_->Peek(addr) : jsector_cache_->Get(addr);
    if (cached != nullptr) {
      m_.jsector_cache_hits->Inc();
      return *cached;
    }
    m_.jsector_cache_misses->Inc();
  }
  S4_ASSIGN_OR_RETURN(Bytes raw, ReadRecord(addr, 1));
  auto decoded = JournalSector::Decode(raw);
  if (!decoded.ok()) {
    // Not an error to the walker: the chain crossed into reclaimed (possibly
    // reused) territory. Device read failures above DID propagate.
    return std::shared_ptr<const JournalSector>();
  }
  auto sector = std::make_shared<const JournalSector>(*std::move(decoded));
  if (jsector_cache_ != nullptr && !snapshot) {
    jsector_cache_->Put(addr, sector, kSectorSize);
  }
  return sector;
}

Result<S4Drive::ObjectHandle> S4Drive::LoadObject(ObjectId id) {
  // Snapshot mode: serve cache hits without reordering the LRU and build
  // transient handles on misses (inserting could evict a dirty object, whose
  // write-back mutates shared state no concurrent reader may touch).
  bool snapshot = actx() != nullptr && actx()->snapshot;
  if (ObjectHandle* cached = snapshot ? object_cache_->Peek(id) : object_cache_->Get(id);
      cached != nullptr) {
    return *cached;
  }
  const ObjectMapEntry* entry = object_map_.Find(id);
  if (entry == nullptr) {
    return Status::NotFound("no such object");
  }
  auto obj = std::make_shared<CachedObject>();
  obj->exists = entry->live();
  if (entry->checkpoint_addr != kNullAddr) {
    S4_ASSIGN_OR_RETURN(Bytes record, ReadRecord(entry->checkpoint_addr,
                                                 entry->checkpoint_sectors));
    S4_ASSIGN_OR_RETURN(obj->inode, Inode::DecodeCheckpoint(record));
  } else {
    obj->inode.id = id;
  }
  // Replay journal entries newer than the inode checkpoint.
  if (entry->journal_head != kNullAddr) {
    std::vector<JournalSector> sectors;
    DiskAddr addr = entry->journal_head;
    while (addr != kNullAddr) {
      S4_ASSIGN_OR_RETURN(Bytes raw, ReadRecord(addr, 1));
      auto sector = JournalSector::Decode(raw);
      if (!sector.ok() || sector->object_id != id) {
        break;  // chain crossed the history barrier into reclaimed space
      }
      bool all_older = !sector->entries.empty() &&
                       sector->entries.back().time <= entry->checkpoint_time;
      DiskAddr prev = sector->prev;
      bool oldest_reached = !sector->entries.empty() &&
                            sector->entries.front().time <= entry->history_barrier;
      sectors.push_back(std::move(*sector));
      if (all_older || oldest_reached) {
        break;
      }
      addr = prev;
    }
    std::reverse(sectors.begin(), sectors.end());
    bool exists = obj->exists;
    for (const auto& sector : sectors) {
      for (const auto& e : sector.entries) {
        if (e.time <= entry->checkpoint_time) {
          continue;
        }
        ApplyEntryForward(&obj->inode, &exists, e);
      }
    }
    obj->exists = entry->live();
  }
  obj->inode.id = id;
  if (!snapshot) {
    object_cache_->Put(id, obj,
                       CachedObjectCostImpl(obj->inode.blocks.size(), obj->pending.size(),
                                            obj->inode.attrs.opaque.size(),
                                            obj->inode.acl.size()));
  }
  // Re-fetch: Put may have evicted other entries but never the fresh one.
  return obj;
}

Status S4Drive::EvictObject(ObjectId id, ObjectHandle obj) {
  S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj.get()));
  if (obj->dirty) {
    S4_RETURN_IF_ERROR(CheckpointObject(id, obj.get()));
  }
  return Status::Ok();
}

Status S4Drive::FlushObjectJournal(ObjectId id, CachedObject* obj) {
  if (obj->pending.empty()) {
    return Status::Ok();
  }
  ObjectMapEntry* entry = object_map_.Find(id);
  S4_CHECK(entry != nullptr);
  S4_ASSIGN_OR_RETURN(PackedJournal packed,
                      PackJournalEntries(id, entry->journal_head, obj->pending));
  DiskAddr head = entry->journal_head;
  for (auto& sector : packed.sectors) {
    sector.prev = head;
    S4_ASSIGN_OR_RETURN(Bytes encoded, sector.Encode());
    S4_ASSIGN_OR_RETURN(DiskAddr addr,
                        writer_->Append(RecordKind::kJournal, id, 0, encoded, actx()));
    block_cache_->Insert(addr, encoded);
    if (!sector.entries.empty()) {
      entry->NoteJournalSector(sector.entries.back().time, addr,
                               options_.waypoint_interval_sectors);
    }
    if (jsector_cache_ != nullptr) {
      // Warm-insert the decoded form: history walks over recent sectors (the
      // common diagnosis case) then skip both the read and the decode.
      jsector_cache_->Put(addr, std::make_shared<const JournalSector>(sector), kSectorSize);
    }
    head = addr;
    m_.journal_sectors_written->Inc();
  }
  entry->journal_head = head;
  // The object now has an on-disk chain, which makes it an expiry candidate.
  UpdateExpiryIndex(id, entry);
  obj->pending.clear();
  pending_dirty_.erase(id);
  return Status::Ok();
}

Status S4Drive::CheckpointObject(ObjectId id, CachedObject* obj) {
  S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj));
  ObjectMapEntry* entry = object_map_.Find(id);
  S4_CHECK(entry != nullptr);

  Bytes record = obj->inode.EncodeCheckpoint();
  uint32_t sectors = static_cast<uint32_t>(record.size() / kSectorSize);
  S4_ASSIGN_OR_RETURN(DiskAddr addr,
                      writer_->Append(RecordKind::kInodeCheckpoint, id, 0, record, actx()));
  block_cache_->Insert(addr, record);

  // Journal the checkpoint location so chain replay knows where to restart.
  JournalEntry cp;
  cp.type = JournalEntryType::kCheckpoint;
  cp.time = clock_->Now();
  cp.checkpoint_addr = addr;
  cp.checkpoint_sectors = sectors;
  obj->pending.push_back(cp);
  m_.journal_entries->Inc();
  pending_dirty_.insert(id);
  S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj));

  // The superseded checkpoint record is no longer needed: with journal-based
  // metadata, historical versions are reconstructed from the *current* state
  // plus undo entries, never from old checkpoints (the exception is the final
  // checkpoint written at delete time, which is never superseded).
  if (entry->checkpoint_addr != kNullAddr) {
    sut_->ReleaseLive(sb_.SegmentOf(entry->checkpoint_addr), entry->checkpoint_sectors);
  }
  entry->checkpoint_addr = addr;
  entry->checkpoint_sectors = sectors;
  entry->checkpoint_time = cp.time;
  obj->dirty = false;
  m_.inode_checkpoints->Inc();
  return Status::Ok();
}

Status S4Drive::FlushAllPending(bool force_audit) {
  // Audit records first: their append creates journal entries on the audit
  // object that must be part of this flush. Unless forced (device checkpoint
  // or unmount), sub-block audit tails stay buffered so audit writes
  // piggyback on normal segment writes in whole blocks (section 4.2.3).
  S4_RETURN_IF_ERROR(AppendAuditBuffered(force_audit));
  // Pack the pending journal entries of every dirty object. (Eviction
  // flushes as well, so a dirty id may already be gone from the cache.)
  std::vector<ObjectId> dirty(pending_dirty_.begin(), pending_dirty_.end());
  for (ObjectId id : dirty) {
    if (ObjectHandle* obj = object_cache_->Peek(id); obj != nullptr) {
      S4_RETURN_IF_ERROR(FlushObjectJournal(id, obj->get()));
    } else {
      pending_dirty_.erase(id);
    }
  }
  // A sticky eviction failure is NOT consumed here: internal callers (device
  // checkpoint, cleaner) would silently swallow it. It stays set until the
  // next client Sync surfaces it.
  return Status::Ok();
}

Status S4Drive::MaybeAutoCheckpoint() {
  if (bytes_since_checkpoint_ >= options_.checkpoint_interval_bytes) {
    return WriteCheckpoint();
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Audit plumbing
// ---------------------------------------------------------------------------

void S4Drive::Audit(const Credentials& creds, RpcOp op, ObjectId id, uint64_t offset,
                    uint64_t length, const Status& result, bool time_based) {
  AuditAt(creds, op, id, offset, length, result, time_based, clock_->Now());
}

void S4Drive::DeferAudit(const Credentials& creds, RpcOp op, ObjectId id, uint64_t offset,
                         uint64_t length, const Status& result, bool time_based) {
  if (!options_.audit_enabled) {
    return;
  }
  DeferredAudit d;
  d.creds = creds;
  d.op = op;
  d.object = id;
  d.offset = offset;
  d.length = length;
  d.result = result;
  d.time_based = time_based;
  d.time = clock_->Now();
  deferred_audits_[clock_->ActiveLaneId()].push_back(d);
}

SimTime S4Drive::DeviceBusyUntil() const { return device_->busy_until(); }

void S4Drive::FlushDeferredAudits() {
  std::vector<DeferredAudit> all;
  for (auto& lane : deferred_audits_) {
    all.insert(all.end(), lane.begin(), lane.end());
    lane.clear();
  }
  if (all.empty()) {
    return;
  }
  // Replay in time order so the chronicle reads as one serial history even
  // though the records were minted on overlapping snapshot lanes.
  std::stable_sort(all.begin(), all.end(),
                   [](const DeferredAudit& a, const DeferredAudit& b) { return a.time < b.time; });
  for (const DeferredAudit& d : all) {
    AuditAt(d.creds, d.op, d.object, d.offset, d.length, d.result, d.time_based, d.time);
  }
}

void S4Drive::AuditAt(const Credentials& creds, RpcOp op, ObjectId id, uint64_t offset,
                      uint64_t length, const Status& result, bool time_based, SimTime at) {
  if (!options_.audit_enabled) {
    return;
  }
  AuditRecord rec;
  rec.time = at;
  rec.client = creds.client;
  rec.user = creds.user;
  rec.op = op;
  rec.object = id;
  rec.offset = offset;
  rec.length = length;
  rec.result = static_cast<uint8_t>(result.code());
  rec.time_based = time_based;
  audit_codec_.Buffer(rec);
  m_.audit_records->Inc();
  // Whole blocks of audit data ride along with normal segment writes.
  if (audit_codec_.buffered_bytes() >= kBlockSize) {
    Status s = AppendAuditBuffered(/*force=*/false);
    if (!s.ok()) {
      S4_LOG(kWarning) << "audit append failed: " << s.ToString();
    }
  }
}

Status S4Drive::WriteAuditMarker() {
  if (!options_.audit_enabled || !audit_codec_.chained() || sb_.audit_marker_a == 0) {
    return Status::Ok();
  }
  if (audit_marker_.generation > 0 &&
      audit_marker_.committed_size == audit_appended_state_.next_offset) {
    return Status::Ok();  // nothing new became durable since the last marker
  }
  AuditCommitMarker next;
  next.generation = audit_marker_.generation + 1;
  next.committed_size = audit_appended_state_.next_offset;
  next.chain_seq = audit_appended_state_.next_seq;
  next.chain_link = audit_appended_state_.link;
  // A/B by generation parity: a torn marker write can only hit the sector the
  // previous good marker is NOT in.
  DiskAddr sector = (next.generation % 2 == 1) ? sb_.audit_marker_a : sb_.audit_marker_b;
  S4_RETURN_IF_ERROR(device_->Write(sector, next.EncodeSector(), actx()));
  audit_marker_ = next;
  m_.audit_marker_writes->Inc();
  return Status::Ok();
}

Status S4Drive::LoadAuditMarker() {
  audit_marker_ = AuditCommitMarker();
  if (sb_.audit_marker_a == 0) {
    return Status::Ok();  // pre-chain volume: no marker sectors
  }
  for (DiskAddr addr : {sb_.audit_marker_a, sb_.audit_marker_b}) {
    Bytes raw;
    Status read = device_->Read(addr, 1, &raw);
    if (!read.ok()) {
      continue;  // unreadable sector: the sibling may still hold a marker
    }
    auto marker = AuditCommitMarker::DecodeSector(raw);
    if (marker.ok() && marker->generation > audit_marker_.generation) {
      audit_marker_ = *marker;
    }
  }
  return Status::Ok();
}

Status S4Drive::VerifyAuditChainAtMount() {
  if (!options_.audit_enabled || !options_.audit_chain) {
    return Status::Ok();
  }
  S4_RETURN_IF_ERROR(LoadAuditMarker());
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(kAuditLogObjectId));
  const uint64_t raw_size = obj->inode.attrs.size;
  S4_ASSIGN_OR_RETURN(Bytes raw, ReadCurrent(*obj, 0, raw_size));
  // Committed floor: the marker's vouched size OR the chain offset recorded
  // in the device checkpoint, whichever is larger. An attacker who destroys
  // both marker sectors still cannot pass off a truncated chain as a torn
  // tail below what the checkpoint saw.
  const uint64_t committed =
      std::max(audit_marker_.committed_size, ckpt_chain_state_.next_offset);
  AuditChainScan scan = ScanChain(raw, 0, AuditChainState(), committed, nullptr);
  AuditChainState state = scan.end_state;
  switch (scan.verdict) {
    case AuditVerdict::kOk:
      break;
    case AuditVerdict::kCleanTail:
      // A torn flush the crash ate: trim it so future appends stay contiguous
      // with the verified prefix.
      m_.audit_clean_tail_truncations->Inc();
      S4_LOG(kInfo) << "audit chain: trimming torn tail, " << scan.detail;
      S4_RETURN_IF_ERROR(TrimAuditObject(state.next_offset));
      break;
    case AuditVerdict::kCorrupted:
      m_.audit_chain_breaks->Inc();
      audit_chain_broken_ = true;
      S4_LOG(kError) << "audit chain BREAK (tampering or bit-rot): " << scan.detail;
      // Preserve the evidence: keep the damaged bytes on disk and append new
      // frames after them. The chain stays reported-broken until an
      // administrator resolves it.
      state.next_offset = raw_size;
      break;
  }
  // Cross-check the marker against the chain state observed at its boundary:
  // a marker that vouches for a size the chain reaches with a different
  // (seq, link) is itself evidence of tampering.
  if (scan.verdict != AuditVerdict::kCorrupted && audit_marker_.generation > 0 &&
      committed == audit_marker_.committed_size && scan.commit_state_seen &&
      (scan.commit_state.next_seq != audit_marker_.chain_seq ||
       scan.commit_state.link != audit_marker_.chain_link)) {
    m_.audit_chain_breaks->Inc();
    audit_chain_broken_ = true;
    S4_LOG(kError) << "audit chain BREAK: commit marker disagrees with chain state at "
                   << audit_marker_.committed_size;
  }
  audit_codec_.ResetChain(state);
  audit_appended_state_ = state;
  return Status::Ok();
}

Status S4Drive::CheckAccess(const CachedObject& obj, const Credentials& creds,
                            uint8_t needed) const {
  if (IsAdmin(creds)) {
    return Status::Ok();
  }
  if (!AclAllows(obj.inode.acl, creds, needed)) {
    return Status::PermissionDenied("acl denies access");
  }
  return Status::Ok();
}

bool S4Drive::IsAdmin(const Credentials& creds) const {
  return creds.admin_key != 0 && creds.admin_key == options_.admin_key;
}

double S4Drive::SpaceUtilization() const {
  uint32_t total = sut_->segment_count();
  uint32_t usable_free = 0;
  for (SegmentId seg = 0; seg < total; ++seg) {
    const SegmentInfo& info = sut_->Info(seg);
    if (info.state == SegmentState::kFree || sut_->Reclaimable(seg)) {
      ++usable_free;
    }
  }
  return 1.0 - static_cast<double>(usable_free) / total;
}

uint64_t S4Drive::HistoryPoolBytes() const {
  return sut_->HistorySectorsTotal() * kSectorSize;
}

uint64_t S4Drive::LiveBytes() const { return sut_->LiveSectorsTotal() * kSectorSize; }

// ---------------------------------------------------------------------------
// Cleaner expiry index and waypoint introspection
// ---------------------------------------------------------------------------

void S4Drive::UpdateExpiryIndex(ObjectId id, const ObjectMapEntry* entry) {
  auto pos = expiry_pos_.find(id);
  // Only objects with an on-disk chain (or a pending full expiry after
  // delete) can yield reclaimable history. Everything else stays out of the
  // index. The key errs small, never large: a stale-small key costs one
  // wasted pop, while an object missing from the index would never be
  // cleaned.
  bool wanted = entry != nullptr && (entry->journal_head != kNullAddr || !entry->live());
  if (!wanted) {
    if (pos != expiry_pos_.end()) {
      expiry_index_.erase(pos->second);
      expiry_pos_.erase(pos);
    }
    return;
  }
  SimTime key = entry->oldest_time;
  if (pos != expiry_pos_.end()) {
    if (pos->second->first == key) {
      return;
    }
    expiry_index_.erase(pos->second);
    expiry_pos_.erase(pos);
  }
  expiry_pos_.emplace(id, expiry_index_.emplace(key, id));
}

void S4Drive::RebuildExpiryIndex() {
  expiry_index_.clear();
  expiry_pos_.clear();
  for (const auto& [id, entry] : object_map_.entries()) {
    UpdateExpiryIndex(id, &entry);
  }
}

Result<std::vector<DiskAddr>> S4Drive::DebugObjectBlockAddrs(ObjectId id) {
  S4_ASSIGN_OR_RETURN(ObjectHandle obj, LoadObject(id));
  std::vector<DiskAddr> out;
  for (const auto& [index, addr] : obj->inode.blocks) {
    (void)index;
    if (addr != kNullAddr) {
      out.push_back(addr);
    }
  }
  return out;
}

std::optional<ObjectMapEntry> S4Drive::DebugObjectEntry(ObjectId id) const {
  const ObjectMapEntry* e = object_map_.Find(id);
  if (e == nullptr) {
    return std::nullopt;
  }
  return *e;
}

Status S4Drive::VerifyObjectWaypoints(ObjectId id) {
  const ObjectMapEntry* entry = object_map_.Find(id);
  if (entry == nullptr) {
    return Status::NotFound("no such object");
  }
  SimTime prev_time = entry->history_barrier;
  for (const JournalWaypoint& w : entry->waypoints) {
    if (w.time <= prev_time) {
      return Status::DataCorruption("waypoint times must ascend strictly above the barrier");
    }
    prev_time = w.time;
  }
  if (entry->waypoints.empty()) {
    return Status::Ok();
  }
  if (entry->journal_head == kNullAddr) {
    return Status::DataCorruption("waypoints without a journal chain");
  }
  // Walk the on-disk chain newest-to-oldest; waypoints (kept oldest-first)
  // must appear in back-to-front order, each at its recorded address with its
  // recorded newest-entry time.
  size_t next = entry->waypoints.size();
  DiskAddr addr = entry->journal_head;
  while (addr != kNullAddr && next > 0) {
    S4_ASSIGN_OR_RETURN(std::shared_ptr<const JournalSector> sector,
                        ReadJournalSector(addr, nullptr));
    if (sector == nullptr || sector->object_id != id) {
      break;
    }
    if (!sector->entries.empty() && sector->entries.back().time <= entry->history_barrier) {
      break;
    }
    const JournalWaypoint& w = entry->waypoints[next - 1];
    if (addr == w.addr) {
      if (sector->entries.empty() || sector->entries.back().time != w.time) {
        return Status::DataCorruption("waypoint time does not match its sector");
      }
      --next;
    }
    if (!sector->entries.empty() && sector->entries.front().time <= entry->history_barrier) {
      break;
    }
    addr = sector->prev;
  }
  if (next > 0) {
    return Status::DataCorruption("waypoint sector not reachable from journal_head");
  }
  return Status::Ok();
}

Status S4Drive::VerifyAllWaypoints() {
  for (const auto& [id, entry] : object_map_.entries()) {
    (void)entry;
    S4_RETURN_IF_ERROR(VerifyObjectWaypoints(id));
  }
  return Status::Ok();
}

Status S4Drive::Unmount() {
  // Append the buffered audit tail before the cache drains: eviction writes
  // each dirty object's inode checkpoint, and the audit object's checkpoint
  // must already cover the final records. Appending after would journal them
  // at the same SimTime as the checkpoint, and replay-at-mount skips entries
  // at or before the checkpoint time.
  S4_RETURN_IF_ERROR(FlushAllPending(/*force_audit=*/true));
  object_cache_->Clear();
  S4_RETURN_IF_ERROR(WriteCheckpoint());
  // The clean mark, recording the checkpoint it vouches for. A crash between
  // the checkpoint and here just leaves the volume dirty — the next mount
  // rolls forward and finds an empty delta.
  S4_RETURN_IF_ERROR(WriteSuperblockReplicas(/*clean=*/true, checkpoint_seq_));
  if (!eviction_error_.ok()) {
    Status err = eviction_error_;
    eviction_error_ = Status::Ok();
    return err;
  }
  return Status::Ok();
}

}  // namespace s4
