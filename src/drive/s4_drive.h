// S4Drive: the self-securing storage device (paper section 4).
//
// The drive is the security perimeter. It exports exactly the RPC operations
// of Table 1, versions every mutation internally for the guaranteed
// detection window, audits every request, and refuses to let any client —
// including a compromised host OS presenting valid user credentials —
// destroy history before it ages out.
//
// Every Table-1 op runs through one Execute() pipeline: open a span, charge
// front-end CPU, run admission (admin gate, space-exhaustion throttle), run
// the op body, then account denials, append the audit record, and record the
// op's sim-time latency. The per-op boilerplate lives nowhere else.
//
// Internals: log-structured layout (src/lfs), journal-based metadata
// (src/journal), object map + inode checkpoints (src/object), buffer/object
// caches (src/cache), audit log (src/audit), plus the age-driven cleaner and
// the space-exhaustion throttle implemented here.
#ifndef S4_SRC_DRIVE_S4_DRIVE_H_
#define S4_SRC_DRIVE_S4_DRIVE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/audit/audit_chain.h"
#include "src/audit/audit_log.h"
#include "src/cache/block_cache.h"
#include "src/cache/lru.h"
#include "src/drive/options.h"
#include "src/drive/stats.h"
#include "src/journal/commit_marker.h"
#include "src/journal/sector.h"
#include "src/lfs/scan.h"
#include "src/lfs/segment_writer.h"
#include "src/lfs/usage_table.h"
#include "src/object/inode.h"
#include "src/object/object_map.h"
#include "src/obs/metrics.h"
#include "src/obs/op_context.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"

namespace s4 {

// A named version: the time of the mutation that *created* this version.
struct VersionInfo {
  SimTime time = 0;
  JournalEntryType cause = JournalEntryType::kWrite;
};

// Static span name for a drive op ("drive.Write", ...).
const char* DriveOpSpanName(RpcOp op);

class S4Drive {
 public:
  // Formats the device with a fresh S4 layout and returns a mounted drive.
  static Result<std::unique_ptr<S4Drive>> Format(BlockDevice* device, SimClock* clock,
                                                 S4DriveOptions options);
  // Mounts an existing S4 layout, running crash recovery (checkpoint load +
  // log roll-forward).
  static Result<std::unique_ptr<S4Drive>> Mount(BlockDevice* device, SimClock* clock,
                                                S4DriveOptions options);

  ~S4Drive();
  S4Drive(const S4Drive&) = delete;
  S4Drive& operator=(const S4Drive&) = delete;

  // Mints the context for a request entering the drive: fresh request id,
  // claimed credentials, sim-clock start time, and this drive's tracer.
  OpContext MakeContext(const Credentials& creds, RpcOp op);

  // ---- Table 1: object operations ----
  // Each op takes an OpContext created at the request boundary (the RPC
  // server, or MakeContext for in-process callers). The Credentials
  // convenience overloads mint a context and forward.
  //
  // Creates an object owned by creds.user (full perms incl. Recovery) with
  // the given opaque attribute blob.
  Result<ObjectId> Create(OpContext& ctx, Bytes opaque_attrs);
  Result<ObjectId> Create(const Credentials& creds, Bytes opaque_attrs);
  Status Delete(OpContext& ctx, ObjectId id);
  Status Delete(const Credentials& creds, ObjectId id);
  // Read with optional time-based access: `at` selects the version that was
  // most current at that time (requires Recovery flag or admin when the
  // version is in the history pool).
  Result<Bytes> Read(OpContext& ctx, ObjectId id, uint64_t offset, uint64_t length,
                     std::optional<SimTime> at = std::nullopt);
  Result<Bytes> Read(const Credentials& creds, ObjectId id, uint64_t offset, uint64_t length,
                     std::optional<SimTime> at = std::nullopt);
  Status Write(OpContext& ctx, ObjectId id, uint64_t offset, ByteSpan data);
  Status Write(const Credentials& creds, ObjectId id, uint64_t offset, ByteSpan data);
  // Appends at end-of-object; returns the new size.
  Result<uint64_t> Append(OpContext& ctx, ObjectId id, ByteSpan data);
  Result<uint64_t> Append(const Credentials& creds, ObjectId id, ByteSpan data);

  // dst = dst XOR data over [offset, offset+len); bytes beyond the current
  // size XOR against implicit zeros (so the object grows like a write). The
  // RAID small-write offload: an array controller sends one XorWrite instead
  // of read-parity + write-parity.
  Status XorWrite(OpContext& ctx, ObjectId id, uint64_t offset, ByteSpan data);
  Status XorWrite(const Credentials& creds, ObjectId id, uint64_t offset, ByteSpan data);
  Status Truncate(OpContext& ctx, ObjectId id, uint64_t new_size);
  Status Truncate(const Credentials& creds, ObjectId id, uint64_t new_size);
  Result<ObjectAttrs> GetAttr(OpContext& ctx, ObjectId id,
                              std::optional<SimTime> at = std::nullopt);
  Result<ObjectAttrs> GetAttr(const Credentials& creds, ObjectId id,
                              std::optional<SimTime> at = std::nullopt);
  Status SetAttr(OpContext& ctx, ObjectId id, Bytes opaque_attrs);
  Status SetAttr(const Credentials& creds, ObjectId id, Bytes opaque_attrs);
  Result<AclEntry> GetAclByUser(OpContext& ctx, ObjectId id, UserId user,
                                std::optional<SimTime> at = std::nullopt);
  Result<AclEntry> GetAclByUser(const Credentials& creds, ObjectId id, UserId user,
                                std::optional<SimTime> at = std::nullopt);
  Result<AclEntry> GetAclByIndex(OpContext& ctx, ObjectId id, uint32_t index,
                                 std::optional<SimTime> at = std::nullopt);
  Result<AclEntry> GetAclByIndex(const Credentials& creds, ObjectId id, uint32_t index,
                                 std::optional<SimTime> at = std::nullopt);
  Status SetAcl(OpContext& ctx, ObjectId id, AclEntry entry);
  Status SetAcl(const Credentials& creds, ObjectId id, AclEntry entry);

  // ---- Table 1: partition (named object) operations ----
  Status PCreate(OpContext& ctx, const std::string& name, ObjectId id);
  Status PCreate(const Credentials& creds, const std::string& name, ObjectId id);
  Status PDelete(OpContext& ctx, const std::string& name);
  Status PDelete(const Credentials& creds, const std::string& name);
  Result<std::vector<std::pair<std::string, ObjectId>>> PList(
      OpContext& ctx, std::optional<SimTime> at = std::nullopt);
  Result<std::vector<std::pair<std::string, ObjectId>>> PList(
      const Credentials& creds, std::optional<SimTime> at = std::nullopt);
  Result<ObjectId> PMount(OpContext& ctx, const std::string& name,
                          std::optional<SimTime> at = std::nullopt);
  Result<ObjectId> PMount(const Credentials& creds, const std::string& name,
                          std::optional<SimTime> at = std::nullopt);

  // ---- Table 1: device operations ----
  // Commits all buffered state (journal entries, data, audit records) to the
  // log. NFSv2 semantics are built from this. Also the point where a sticky
  // eviction failure (a dirty object whose write-back failed) is surfaced.
  Status Sync(OpContext& ctx);
  Status Sync(const Credentials& creds);
  // Admin: permanently removes versions in (from, to] — all objects.
  Status Flush(OpContext& ctx, SimTime from, SimTime to);
  Status Flush(const Credentials& creds, SimTime from, SimTime to);
  // Admin: same for one object.
  Status FlushObject(OpContext& ctx, ObjectId id, SimTime from, SimTime to);
  Status FlushObject(const Credentials& creds, ObjectId id, SimTime from, SimTime to);
  // Admin: adjusts the guaranteed detection window.
  Status SetWindow(OpContext& ctx, SimDuration window);
  Status SetWindow(const Credentials& creds, SimDuration window);

  // ---- Diagnosis extensions (section 3.6 tooling) ----
  // Enumerates the reconstructible versions of an object, oldest first.
  Result<std::vector<VersionInfo>> GetVersionList(OpContext& ctx, ObjectId id);
  Result<std::vector<VersionInfo>> GetVersionList(const Credentials& creds, ObjectId id);
  // Reads back audit records matching `query` (admin only). In chained mode
  // the whole chain is verified first: a break returns DataCorruption naming
  // the first divergent record and bumps audit.chain_breaks.
  Result<std::vector<AuditRecord>> QueryAudit(const Credentials& creds, const AuditQuery& query);
  // Admin: one round of the external auditor's challenge/response protocol.
  // Forces the buffered audit tail durable, then returns the committed chain
  // frames from `from_offset` (capped per round) plus the drive's claimed
  // chain end; the auditor verifies them against its saved state with
  // VerifyChallengeProof and iterates until it catches up.
  Result<AuditChallengeProof> AuditChallenge(OpContext& ctx, uint64_t from_offset);
  Result<AuditChallengeProof> AuditChallenge(const Credentials& creds, uint64_t from_offset);

  // Audits a request the RPC layer rejected before it could be decoded
  // (bad frame / CRC / op code / size). Recorded with op kInvalid.
  void AuditRejectedFrame(OpContext& ctx, const Status& reason);

  // Audits a batch envelope after its sub-ops ran (each sub-op already has
  // its own audit record from the Execute pipeline). `length` in the record
  // carries the sub-op count; latency is recorded for the whole envelope.
  void AuditBatchFrame(OpContext& ctx, uint64_t sub_ops, SimTime batch_start);

  // Drains audit records deferred by snapshot-mode ops (concurrent readers
  // must not mutate the shared audit buffer) into the chronicle, ordered by
  // op time. The executor calls this with the drive exclusively held —
  // before every exclusive task and at drain — so every record lands in the
  // chain before the next Sync could commit it. A no-op on the serial path.
  void FlushDeferredAudits();

  // Simulated instant until which this drive's device is busy with
  // already-issued commands: the device frontier an executor consults when
  // choosing which drive to feed next.
  SimTime DeviceBusyUntil() const;

  // ---- Cleaner (section 4.2.1) ----
  // One cleaning pass: expires versions older than the detection window,
  // reclaims empty segments, and compacts up to `max_compactions` fragmented
  // segments. Compaction normally runs only when space is low;
  // `force_compaction` makes it unconditional (continuous foreground
  // cleaning, as measured in Figure 5). Returns number of segments made free.
  Result<uint32_t> RunCleanerPass(uint32_t max_compactions, bool force_compaction = false);
  // True when free space is low enough that cleaning should run.
  bool CleanerNeeded() const;

  // One slice of *continuous* cleaning (the paper's "cleaner competing with
  // foreground activity", Figure 5): streams the next sealed segment off the
  // disk in round-robin order and relocates whatever current data it holds.
  // Returns false when there was no sealed segment to process.
  Result<bool> CleanForegroundSlice();

  // Writes a device checkpoint (object map + segment usage table). Called
  // periodically and at clean shutdown; also makes cleaner-freed segments
  // allocatable.
  Status WriteCheckpoint();

  // Clean shutdown: flush everything and checkpoint.
  Status Unmount();

  // ---- Introspection ----
  // Legacy counter view, built from the metric registry (cheap; by value).
  DriveStats stats() const;
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  SimClock* sim_clock() const { return clock_; }
  // On-disk geometry incl. superblock replica locations (tests tear replicas).
  const Superblock& superblock() const { return sb_; }
  const SegmentUsageTable& usage_table() const { return *sut_; }
  const SegmentWriterStats& writer_stats() const { return writer_->stats(); }
  SimDuration detection_window() const { return detection_window_; }
  // Fraction of segments not free (0..1).
  double SpaceUtilization() const;
  uint64_t HistoryPoolBytes() const;
  uint64_t LiveBytes() const;
  bool IsAdmin(const Credentials& creds) const;
  const S4DriveOptions& options() const { return options_; }
  // The next ObjectId this drive would assign (mirror-rebuild coordination).
  ObjectId PeekNextObjectId() const { return object_map_.PeekNextId(); }
  // Copy of the object-map entry for `id` (test/diagnosis introspection).
  std::optional<ObjectMapEntry> DebugObjectEntry(ObjectId id) const;
  // Current data-block addresses of an object, in block-index order
  // (test/diagnosis introspection; tamper tests corrupt these sectors).
  Result<std::vector<DiskAddr>> DebugObjectBlockAddrs(ObjectId id);
  // The audit chain state covering every framed record — including frames
  // still buffered in RAM awaiting their block write (test/diagnosis
  // introspection). Stable across a clean unmount/remount cycle.
  AuditChainState DebugAuditChainState() const { return audit_codec_.chain_state(); }
  // Verifies the waypoint invariants of one object / of every object: times
  // strictly ascending and above the history barrier, and every waypoint
  // address reachable by walking the on-disk chain from journal_head. Used by
  // tests and the crash harness after recovery.
  Status VerifyObjectWaypoints(ObjectId id);
  Status VerifyAllWaypoints();

 private:
  // Time ranges whose versions were purged by Flush/FlushO.
  struct PurgedRange {
    SimTime from;
    SimTime to;
  };

  // An object resident in the object cache.
  struct CachedObject {
    Inode inode;
    bool exists = true;          // false = cached tombstone of a deleted object
    bool dirty = false;          // inode differs from the latest checkpoint
    // Journal entries not yet packed into sectors (newest last).
    std::vector<JournalEntry> pending;
  };
  using ObjectHandle = std::shared_ptr<CachedObject>;

  // Everything an operation needs to read one historical version.
  struct VersionView {
    bool existed = false;
    uint64_t size = 0;
    Bytes opaque;
    Acl acl;
    SimTime create_time = 0;
    SimTime modify_time = 0;
    // Undo overlay: block index -> address at the requested time. Entries
    // present here override `base` (kNullAddr = hole at that time;
    // kPurgedAddr = destroyed by an administrative Flush).
    std::map<uint64_t, DiskAddr> overlay;
    ObjectHandle base;  // current state the overlay applies to
    DiskAddr BlockAt(uint64_t index) const;
  };

  // Sentinel for block data destroyed by Flush/FlushO.
  static constexpr DiskAddr kPurgedAddr = ~0ull;

  S4Drive(BlockDevice* device, SimClock* clock, S4DriveOptions options);

  // --- request pipeline (s4_drive.cc) ---
  // Audit/admission parameters of one op. Bodies mutate the audit fields
  // (object/offset/length) as the op learns them, so the final audit record
  // matches what the op actually did.
  struct OpArgs {
    RpcOp op;
    ObjectId object = kInvalidObjectId;
    uint64_t offset = 0;
    uint64_t length = 0;
    bool time_based = false;
    uint64_t admission_bytes = 0;  // >0: run the space-exhaustion throttle
    bool admin_only = false;       // reject non-admin credentials up front
  };

  // Sets the active context (the context deep layers charge) for a scope.
  // The slot is per executor lane — concurrent snapshot readers each see
  // their own active context without the drive holding any thread state.
  class ScopedActiveContext {
   public:
    ScopedActiveContext(S4Drive* drive, OpContext* ctx)
        : drive_(drive), lane_(drive->clock_->ActiveLaneId()),
          prev_(drive->actx_[lane_]) {
      drive_->actx_[lane_] = ctx;
    }
    ~ScopedActiveContext() { drive_->actx_[lane_] = prev_; }
    ScopedActiveContext(const ScopedActiveContext&) = delete;
    ScopedActiveContext& operator=(const ScopedActiveContext&) = delete;

   private:
    S4Drive* drive_;
    int lane_;
    OpContext* prev_;
  };

  // Uniform prologue: op count, CPU charge, time-based-read count, admin
  // gate, throttle admission.
  Status BeginOp(OpContext& ctx, const OpArgs& args);
  // Uniform epilogue: denial count, the audit record, per-op latency.
  void EndOp(OpContext& ctx, const OpArgs& args, const Status& result, SimTime op_start);

  static const Status& ResultStatus(const Status& s) { return s; }
  template <typename T>
  static const Status& ResultStatus(const Result<T>& r) {
    return r.status();
  }

  // The single pipeline every Table-1 op goes through.
  template <typename Fn>
  auto Execute(OpContext& ctx, OpArgs args, Fn&& body) -> decltype(body(args)) {
    using R = decltype(body(args));
    ScopedSpan span(&ctx, DriveOpSpanName(args.op));
    ScopedActiveContext active(this, &ctx);
    SimTime op_start = clock_->Now();
    R result = [&]() -> R {
      if (Status s = BeginOp(ctx, args); !s.ok()) {
        return R(std::move(s));
      }
      return body(args);
    }();
    EndOp(ctx, args, ResultStatus(result), op_start);
    return result;
  }

  // Cached registry instruments (resolved once at construction).
  struct DriveCounters {
    Counter* ops_total = nullptr;
    Counter* ops_denied = nullptr;
    Counter* time_based_reads = nullptr;
    Counter* journal_entries = nullptr;
    Counter* journal_sectors_written = nullptr;
    Counter* inode_checkpoints = nullptr;
    Counter* data_blocks_written = nullptr;
    Counter* device_checkpoints = nullptr;
    Counter* audit_records = nullptr;
    Counter* audit_blocks_written = nullptr;
    // Chronicle integrity accounting (chained audit mode).
    Counter* audit_chain_breaks = nullptr;           // verified-corrupt chain at record N
    Counter* audit_clean_tail_truncations = nullptr; // torn tails trimmed at mount
    Counter* audit_records_dropped = nullptr;        // buffered records lost (append failure)
    Counter* audit_marker_writes = nullptr;
    Counter* cleaner_passes = nullptr;
    Counter* cleaner_segments_reclaimed = nullptr;
    Counter* cleaner_segments_compacted = nullptr;
    Counter* cleaner_sectors_expired = nullptr;
    Counter* cleaner_sectors_copied = nullptr;
    Counter* cleaner_time_us = nullptr;
    Counter* throttle_delays = nullptr;
    Counter* throttle_rejects = nullptr;
    Counter* versions_purged = nullptr;
    Counter* history_walks = nullptr;
    // History-access fast path (version waypoints + journal-sector cache).
    Counter* history_walk_sectors = nullptr;      // journal sectors decoded by walks
    Counter* history_waypoint_seeks = nullptr;    // walks that skipped via a waypoint
    Counter* history_forward_walks = nullptr;     // reconstructions replayed forward
    Counter* jsector_cache_hits = nullptr;
    Counter* jsector_cache_misses = nullptr;
    // Incremental cleaner accounting.
    Counter* cleaner_walk_sectors = nullptr;      // journal sectors read while expiring
    Counter* cleaner_objects_visited = nullptr;
    Counter* cleaner_objects_skipped_unripe = nullptr;  // popped but still in-window
    Counter* cleaner_objects_skipped_budget = nullptr;  // deferred by sector budget
    // Full-expiry checkpoints that could not be read or decoded: the history
    // blocks they reference cannot be released (a silent space leak without
    // this counter).
    Counter* cleaner_checkpoint_decode_errors = nullptr;
    // Mount/recovery path (quorum superblocks + bounded roll-forward).
    Counter* recovery_clean_mounts = nullptr;       // mounts that skipped the log scan
    Counter* recovery_segments_scanned = nullptr;
    Counter* recovery_segments_skipped = nullptr;
    Counter* recovery_superblock_votes = nullptr;   // valid replicas in the vote
    Counter* recovery_superblocks_healed = nullptr; // stale/torn copies rewritten
    Counter* recovery_chunks_replayed = nullptr;
    Histogram* walk_sectors = nullptr;  // per-walk journal sectors read
    // Per-op sim-time latency, indexed by RpcOp value (0 = kInvalid unused).
    Histogram* op_latency[kMaxRpcOp + 1] = {};
  };
  void InitMetrics();

  // --- setup / recovery (s4_drive.cc) ---
  Status DoFormat();
  Status DoMount();
  Status RollForward(uint64_t checkpoint_seq, OpContext* ctx);
  Status InitReservedObjects();
  Result<Bytes> EncodeDeviceCheckpoint() const;
  Status LoadDeviceCheckpoint();
  // Reads every superblock replica, votes (max epoch among valid copies
  // wins), installs the winner as sb_, and heals stale/torn copies. Sets
  // *clean to the winner's clean flag.
  Status LoadSuperblockQuorum(bool* clean);
  // Rewrites every replica with a bumped epoch and the given lifecycle
  // state. Write order is fixed (sector 0 -> mid -> tail) so a cut mid-batch
  // leaves the newest state in the copy the vote prefers.
  Status WriteSuperblockReplicas(bool clean, uint64_t clean_seq);
  // Clean-mount writer resume: re-opens the checkpointed active segment at
  // its checkpointed fill (the checkpoint flushed all pending chunks first).
  Status ResumeWriterFromCheckpoint();

  // --- generic internals (s4_drive.cc) ---
  // Arms the buffer cache's sequential read-ahead, confined to sealed
  // segments (never the active segment: its tail can still receive appends,
  // and caching its stale platter image would shadow later flushes).
  void ConfigureReadahead();
  void ChargeCpu(OpContext* ctx);
  Result<Bytes> ReadRecord(DiskAddr addr, uint32_t sectors);
  Result<ObjectHandle> LoadObject(ObjectId id);
  Status EvictObject(ObjectId id, ObjectHandle obj);
  Status FlushObjectJournal(ObjectId id, CachedObject* obj);
  Status CheckpointObject(ObjectId id, CachedObject* obj);
  Status FlushAllPending(bool force_audit = false);
  Status MaybeAutoCheckpoint();
  Status AppendAuditBuffered(bool force);
  // --- audit chronicle (s4_drive.cc / drive_ops.cc) ---
  // Persists the audit commit marker (A/B by generation parity). Must only be
  // called after writer_->Flush: the marker vouches the covered audit bytes
  // are on the platter.
  Status WriteAuditMarker();
  // Appends the buffered audit tail and flushes everything pending (including
  // the journal entry carrying the audit object's new size). After this
  // returns, every framed record so far survives a power cut — but the commit
  // marker has not moved, so the new frames verify as clean tail, not yet as
  // committed. This is the cheap per-Sync durability barrier: no marker-sector
  // seek off the log head.
  Status SyncAuditTail();
  // SyncAuditTail plus a commit-marker advance. After this returns, every
  // framed record so far verifies as committed (damage below the marker is
  // tamper, never torn tail). Costs a seek to the marker sectors, so it runs
  // at durability milestones — device checkpoints, history purges, audit
  // challenges, unmount — not on every client Sync.
  Status CommitAuditTail();
  // Loads the newest valid marker sector at mount (none found -> generation
  // stays 0, meaning "nothing vouched for yet").
  Status LoadAuditMarker();
  // Mount-time chain verification: classifies the recovered audit object as
  // intact / torn tail (trimmed) / tampered, and seeds the codec chain state.
  Status VerifyAuditChainAtMount();
  // Shrinks the audit object to `new_size` (drops the torn tail so future
  // appends stay contiguous with the verified chain). Truncate internals
  // without the Execute/ACL wrapper; idempotent across repeated crashes.
  Status TrimAuditObject(uint64_t new_size);
  void Audit(const Credentials& creds, RpcOp op, ObjectId id, uint64_t offset, uint64_t length,
             const Status& result, bool time_based);
  // Audit with an explicit record timestamp (deferred-record replay).
  void AuditAt(const Credentials& creds, RpcOp op, ObjectId id, uint64_t offset,
               uint64_t length, const Status& result, bool time_based, SimTime at);
  // Appends to the calling lane's deferred-audit slot (snapshot-mode ops).
  void DeferAudit(const Credentials& creds, RpcOp op, ObjectId id, uint64_t offset,
                  uint64_t length, const Status& result, bool time_based);
  bool ObjectIsVersioned(ObjectId id) const;
  // ACL check against the *current* object state.
  Status CheckAccess(const CachedObject& obj, const Credentials& creds, uint8_t needed) const;

  // --- data path (drive_ops.cc) ---
  Status WriteBody(OpContext& ctx, OpArgs& args, ObjectId id, uint64_t offset, ByteSpan data,
                   bool is_append);
  Result<Bytes> BuildBlockContent(const CachedObject& obj, uint64_t block_index,
                                  uint64_t valid_bytes, uint64_t write_off, ByteSpan data);
  Status ApplyBlockWrite(ObjectId id, CachedObject* obj, SimTime now, uint64_t old_size,
                         uint64_t new_size, std::vector<BlockDelta> deltas);
  void SupersedeBlock(ObjectId id, DiskAddr old_addr);
  Status ThrottleCheck(const Credentials& creds, uint64_t bytes);
  Result<ObjectHandle> ResolveForWrite(const Credentials& creds, ObjectId id, uint8_t needed);
  Result<Bytes> ReadCurrent(const CachedObject& obj, uint64_t offset, uint64_t length);
  Status WritePartitionTable(const std::vector<std::pair<std::string, ObjectId>>& table);
  Result<std::vector<std::pair<std::string, ObjectId>>> ReadPartitionTable(
      std::optional<SimTime> at);

  // --- history (drive_history.cc) ---
  // Reconstructs the object as it was at time `at`.
  Result<VersionView> ReconstructVersion(ObjectId id, SimTime at);
  // ReconstructVersion + per-version ACL check: the shared shape of every
  // time-based accessor (Read/GetAttr/GetAclByUser/GetAclByIndex).
  Result<VersionView> ReconstructForAccess(OpContext& ctx, ObjectId id, SimTime at);
  // Walks the journal chain newest-to-oldest invoking fn(entry) until fn
  // returns false or the history barrier is passed. When `start_at` is set
  // the walk may skip (via waypoints) any sector whose entries are all newer
  // than `start_at` — callers using it must not need entries above the bound.
  Status WalkJournal(ObjectId id, const CachedObject* obj, std::optional<SimTime> start_at,
                     const std::function<Result<bool>(const JournalEntry&)>& fn);
  // Reads + decodes one journal sector, through the decoded-sector cache when
  // enabled. `sectors_visited` (if non-null) counts every fetch, cached or
  // not — it measures walk length, not disk traffic. Returns null (ok) when
  // the sector no longer decodes as a journal sector of any object: the chain
  // crossed into reclaimed territory and the walker should stop. Device read
  // errors still propagate as errors.
  Result<std::shared_ptr<const JournalSector>> ReadJournalSector(DiskAddr addr,
                                                                 uint64_t* sectors_visited);
  // Applies one journal entry in *undo* direction onto `view` (walking newest
  // to oldest). Returns false once entries at or before `at` are reached.
  Result<bool> ApplyEntryUndo(ObjectId id, const JournalEntry& e, SimTime at, VersionView* view);
  Result<Bytes> ReadVersionBytes(const VersionView& view, uint64_t offset, uint64_t length);
  Status CheckHistoryAccess(const Acl& version_acl, const Credentials& creds) const;
  bool IsPurged(ObjectId id, SimTime t) const;
  Status PurgeObjectVersions(ObjectId id, SimTime from, SimTime to);

  // --- cleaner / throttle (drive_cleaner.cc) ---
  Result<uint64_t> ExpireObjectHistory(ObjectId id, ObjectMapEntry* entry, SimTime cutoff,
                                       uint64_t* sectors_read);
  Result<bool> CompactSegment(SegmentId seg);
  void NoteClientWrite(ClientId client, uint64_t bytes);
  // Expiry index maintenance: (re)positions `id` in expiry_index_ keyed by its
  // oldest retained entry time; `entry` may be null for an erased object.
  void UpdateExpiryIndex(ObjectId id, const ObjectMapEntry* entry);
  // Rebuilds the whole index from the object map (format/mount/roll-forward).
  void RebuildExpiryIndex();

  BlockDevice* device_;
  SimClock* clock_;
  S4DriveOptions options_;

  // Observability plane: registry + tracer are owned here; every layer below
  // (cache, lfs, sim) publishes into them. Declared before the components
  // that capture pointers into them.
  MetricRegistry metrics_;
  Tracer tracer_;
  DriveCounters m_;
  // Context of the op currently inside Execute() (null outside any op);
  // internals that sit below the op bodies charge I/O to it. One slot per
  // executor lane (slot 0 is the serial path): each worker thread only ever
  // touches its own lane's slot, so no locking is needed and the drive stays
  // free of threading primitives.
  OpContext* actx_[SimClock::kMaxLanes] = {};
  OpContext* actx() const { return actx_[clock_->ActiveLaneId()]; }

  Superblock sb_;
  std::unique_ptr<SegmentUsageTable> sut_;
  std::unique_ptr<SegmentWriter> writer_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<LruCache<ObjectId, ObjectHandle>> object_cache_;
  ObjectMap object_map_;
  // Decoded-journal-sector cache: chain walks (history reads, version lists,
  // cleaner) hit this before the buffer cache, skipping re-read + re-decode.
  // Null when options_.jsector_cache_bytes == 0. Entries are invalidated when
  // the cleaner frees the underlying sector.
  std::unique_ptr<LruCache<DiskAddr, std::shared_ptr<const JournalSector>>> jsector_cache_;
  // Incremental-cleaner expiry index: oldest retained entry time -> object.
  // An object with reclaimable history always appears here with a key no
  // larger than its true oldest time (too-small keys cost one wasted pop;
  // a missing object would never be cleaned, so updates err small).
  std::multimap<SimTime, ObjectId> expiry_index_;
  // Reverse position map so UpdateExpiryIndex is O(log n), not a scan.
  std::unordered_map<ObjectId, std::multimap<SimTime, ObjectId>::iterator> expiry_pos_;
  // Objects with unflushed pending journal entries (so Sync never scans the
  // whole object cache).
  std::unordered_set<ObjectId> pending_dirty_;
  std::unordered_map<ObjectId, std::vector<PurgedRange>> purged_;

  SimDuration detection_window_;
  AuditLogCodec audit_codec_;
  // Chain state covering every byte successfully appended to the audit
  // object (not necessarily flushed yet); the marker may only ever be
  // advanced to this state, and only after a writer flush.
  AuditChainState audit_appended_state_;
  // Last marker written (or loaded at mount); generation 0 = none yet.
  AuditCommitMarker audit_marker_;
  // Chain state recorded in the device checkpoint: a second, generation-voted
  // committed-size floor so destroying the marker sectors cannot reclassify
  // checkpointed history as an uncommitted (silently trimmable) tail.
  AuditChainState ckpt_chain_state_;
  // Sticky: mount-time verification found a chain break (tamper evidence is
  // preserved on disk; QueryAudit keeps reporting it).
  bool audit_chain_broken_ = false;
  uint64_t checkpoint_generation_ = 0;  // alternates A/B
  uint64_t checkpoint_seq_ = 0;         // chunk seq covered by last checkpoint
  uint64_t bytes_since_checkpoint_ = 0;

  SegmentId foreground_clean_cursor_ = 0;

  // Throttle state: per-client exponentially decayed write volume.
  struct ClientLoad {
    double bytes_per_sec = 0;
    SimTime last_update = 0;
  };
  std::unordered_map<ClientId, ClientLoad> client_load_;

  // Audit records produced by snapshot-mode (shared-lane) ops, parked until
  // the executor holds the drive exclusively. One slot per lane: a worker
  // only appends to its own lane's vector, and FlushDeferredAudits (which
  // reads all slots) only runs under exclusivity, so no locking is needed.
  struct DeferredAudit {
    Credentials creds;
    RpcOp op = RpcOp::kInvalid;
    ObjectId object = kInvalidObjectId;
    uint64_t offset = 0;
    uint64_t length = 0;
    Status result = Status::Ok();
    bool time_based = false;
    SimTime time = 0;
  };
  std::vector<DeferredAudit> deferred_audits_[SimClock::kMaxLanes];

  Status eviction_error_ = Status::Ok();  // sticky; surfaced by the next Sync
};

}  // namespace s4

#endif  // S4_SRC_DRIVE_S4_DRIVE_H_
