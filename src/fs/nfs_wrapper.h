// NfsServerWrapper: turns any FileSystemApi into a "remote NFS server" by
// charging the network model for each operation's request and reply.
//
// Used for:
//   - the S4-enhanced NFS server configuration (Figure 1b): the NFS-to-S4
//     translation runs next to the drive, so only the NFS operation itself
//     crosses the wire;
//   - the FFS-like / ext2-like baseline NFS servers of Figures 3-4.
#ifndef S4_SRC_FS_NFS_WRAPPER_H_
#define S4_SRC_FS_NFS_WRAPPER_H_

#include "src/fs/file_system.h"
#include "src/sim/net_model.h"
#include "src/sim/sim_clock.h"

namespace s4 {

class NfsServerWrapper : public FileSystemApi {
 public:
  NfsServerWrapper(FileSystemApi* backend, SimClock* clock, NetModel model = NetModel())
      : backend_(backend), clock_(clock), model_(model) {}

  Result<FileHandle> Root() override {
    Charge(64, 64);
    return backend_->Root();
  }
  Result<FileHandle> Lookup(FileHandle dir, const std::string& name) override {
    Charge(64 + name.size(), 96);
    return backend_->Lookup(dir, name);
  }
  Result<FileHandle> CreateFile(FileHandle dir, const std::string& name,
                                uint32_t mode) override {
    Charge(96 + name.size(), 128);
    return backend_->CreateFile(dir, name, mode);
  }
  Result<FileHandle> Mkdir(FileHandle dir, const std::string& name, uint32_t mode) override {
    Charge(96 + name.size(), 128);
    return backend_->Mkdir(dir, name, mode);
  }
  Status Remove(FileHandle dir, const std::string& name) override {
    Charge(64 + name.size(), 64);
    return backend_->Remove(dir, name);
  }
  Status Rmdir(FileHandle dir, const std::string& name) override {
    Charge(64 + name.size(), 64);
    return backend_->Rmdir(dir, name);
  }
  Status Rename(FileHandle from_dir, const std::string& from_name, FileHandle to_dir,
                const std::string& to_name) override {
    Charge(96 + from_name.size() + to_name.size(), 64);
    return backend_->Rename(from_dir, from_name, to_dir, to_name);
  }
  Result<Bytes> ReadFile(FileHandle file, uint64_t offset, uint64_t length) override {
    // NFSv2 caps transfers; the evaluation used 4KB read/write sizes.
    Charge(64, 96 + length);
    return backend_->ReadFile(file, offset, length);
  }
  Status WriteFile(FileHandle file, uint64_t offset, ByteSpan data) override {
    Charge(96 + data.size(), 96);
    return backend_->WriteFile(file, offset, data);
  }
  Result<FileAttr> GetAttr(FileHandle file) override {
    Charge(64, 128);
    return backend_->GetAttr(file);
  }
  Status SetSize(FileHandle file, uint64_t size) override {
    Charge(96, 96);
    return backend_->SetSize(file, size);
  }
  Result<std::vector<DirEntry>> ReadDir(FileHandle dir) override {
    auto r = backend_->ReadDir(dir);
    Charge(64, 64 + (r.ok() ? r->size() * 32 : 0));
    return r;
  }
  Result<FileHandle> Symlink(FileHandle dir, const std::string& name,
                             const std::string& target) override {
    Charge(96 + name.size() + target.size(), 128);
    return backend_->Symlink(dir, name, target);
  }
  Result<std::string> ReadLink(FileHandle link) override {
    Charge(64, 128);
    return backend_->ReadLink(link);
  }

  const NetStats& stats() const { return stats_; }

 private:
  void Charge(uint64_t request_bytes, uint64_t reply_bytes) {
    clock_->Advance(model_.TransferCost(request_bytes));
    clock_->Advance(model_.TransferCost(reply_bytes));
    ++stats_.messages_sent;
    stats_.bytes_sent += request_bytes;
    ++stats_.messages_received;
    stats_.bytes_received += reply_bytes;
  }

  FileSystemApi* backend_;
  SimClock* clock_;
  NetModel model_;
  NetStats stats_;
};

}  // namespace s4

#endif  // S4_SRC_FS_NFS_WRAPPER_H_
