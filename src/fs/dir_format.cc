#include "src/fs/dir_format.h"

namespace s4 {

Bytes EncodeDirRecord(const DirRecord& record) {
  Encoder enc(16 + record.name.size());
  enc.PutU8(static_cast<uint8_t>(record.op));
  enc.PutU8(static_cast<uint8_t>(record.type));
  enc.PutVarint(record.handle);
  enc.PutString(record.name);
  return enc.Take();
}

Result<ParsedDir> ParseDirStream(ByteSpan stream) {
  ParsedDir dir;
  Decoder dec(stream);
  while (!dec.done()) {
    auto op_raw = dec.U8();
    if (!op_raw.ok()) {
      break;
    }
    if (*op_raw != 1 && *op_raw != 2) {
      return Status::DataCorruption("bad directory record op");
    }
    auto type_raw = dec.U8();
    auto handle = type_raw.ok() ? dec.Varint() : Result<uint64_t>(type_raw.status());
    auto name = handle.ok() ? dec.String() : Result<std::string>(handle.status());
    if (!name.ok()) {
      break;  // truncated tail record
    }
    ++dir.record_count;
    if (*op_raw == 1) {
      DirEntry e;
      e.name = *name;
      e.handle = *handle;
      e.type = static_cast<FileType>(*type_raw);
      dir.entries[*name] = e;
    } else {
      dir.entries.erase(*name);
    }
  }
  return dir;
}

Bytes CompactDirStream(const ParsedDir& dir) {
  Encoder enc;
  for (const auto& [name, e] : dir.entries) {
    DirRecord rec;
    rec.op = DirRecord::Op::kAdd;
    rec.type = e.type;
    rec.handle = e.handle;
    rec.name = name;
    Bytes b = EncodeDirRecord(rec);
    enc.PutBytes(b);
  }
  return enc.Take();
}

}  // namespace s4
