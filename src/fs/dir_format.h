// Directory object format, shared by the S4/NFS translator and the FFS-like
// baseline server.
//
// A directory is a byte stream of add/remove records. Mutations append one
// small record (a single block read-modify-write on the backing store) —
// matching the cost profile of a real block-based directory update — and a
// compaction rewrite happens only when tombstones dominate.
#ifndef S4_SRC_FS_DIR_FORMAT_H_
#define S4_SRC_FS_DIR_FORMAT_H_

#include <map>
#include <string>

#include "src/fs/file_system.h"
#include "src/util/codec.h"

namespace s4 {

struct DirRecord {
  enum class Op : uint8_t { kAdd = 1, kRemove = 2 };
  Op op = Op::kAdd;
  FileType type = FileType::kFile;
  FileHandle handle = 0;
  std::string name;
};

// Encodes a single record (appended to the directory stream).
Bytes EncodeDirRecord(const DirRecord& record);

// Parsed directory state plus bookkeeping for compaction decisions.
struct ParsedDir {
  std::map<std::string, DirEntry> entries;
  uint64_t record_count = 0;  // total records in the stream

  bool NeedsCompaction() const {
    return record_count > 16 && record_count > 2 * entries.size() + 8;
  }
};

// Replays a directory stream. Tolerates a truncated tail record.
Result<ParsedDir> ParseDirStream(ByteSpan stream);

// Rewrites the directory as a minimal stream of adds.
Bytes CompactDirStream(const ParsedDir& dir);

}  // namespace s4

#endif  // S4_SRC_FS_DIR_FORMAT_H_
