#include "src/fs/nfs_attr.h"

namespace s4 {

Bytes NfsAttrBlob::Encode() const {
  Encoder enc(12);
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutU32(mode);
  enc.PutU32(uid);
  return enc.Take();
}

Result<NfsAttrBlob> NfsAttrBlob::Decode(ByteSpan blob) {
  Decoder dec(blob);
  NfsAttrBlob a;
  S4_ASSIGN_OR_RETURN(uint8_t type_raw, dec.U8());
  if (type_raw < 1 || type_raw > 3) {
    return Status::DataCorruption("bad file type in attr blob");
  }
  a.type = static_cast<FileType>(type_raw);
  S4_ASSIGN_OR_RETURN(a.mode, dec.U32());
  S4_ASSIGN_OR_RETURN(a.uid, dec.U32());
  return a;
}

}  // namespace s4
