#include "src/fs/s4_fs.h"

namespace s4 {
namespace {

// The prototype's S4 client caches directories and attributes aggressively
// (section 4.1.2); large PostMark directories need real budget.
constexpr uint64_t kDirCacheBytes = 16ull << 20;
constexpr uint64_t kAttrCacheBytes = 2ull << 20;

FileAttr MakeAttr(const NfsAttrBlob& blob, uint64_t size, SimTime mtime, SimTime ctime) {
  FileAttr a;
  a.type = blob.type;
  a.mode = blob.mode;
  a.uid = blob.uid;
  a.size = size;
  a.mtime = mtime;
  a.ctime = ctime;
  return a;
}

}  // namespace

S4FileSystem::S4FileSystem(S4ClientApi* client, S4FileSystemOptions options)
    : client_(client), options_(options), dir_cache_(kDirCacheBytes),
      attr_cache_(kAttrCacheBytes) {
  if (options_.group_commit_ops == 0) {
    options_.group_commit_ops = 1;
  }
}

S4FileSystem::~S4FileSystem() {
  // Best effort: leave no deferred sync behind on teardown.
  (void)Commit();
}

Result<std::unique_ptr<S4FileSystem>> S4FileSystem::Format(S4ClientApi* client,
                                                           const std::string& partition,
                                                           S4FileSystemOptions options) {
  NfsAttrBlob root_attr;
  root_attr.type = FileType::kDirectory;
  root_attr.mode = 0755;
  root_attr.uid = client->creds().user;
  S4_ASSIGN_OR_RETURN(ObjectId root, client->Create(root_attr.Encode()));
  S4_RETURN_IF_ERROR(client->PCreate(partition, root));
  S4_RETURN_IF_ERROR(client->Sync());
  auto fs = std::unique_ptr<S4FileSystem>(new S4FileSystem(client, options));
  fs->root_ = root;
  return fs;
}

Result<std::unique_ptr<S4FileSystem>> S4FileSystem::Mount(S4ClientApi* client,
                                                          const std::string& partition,
                                                          S4FileSystemOptions options) {
  S4_ASSIGN_OR_RETURN(ObjectId root, client->PMount(partition));
  auto fs = std::unique_ptr<S4FileSystem>(new S4FileSystem(client, options));
  fs->root_ = root;
  return fs;
}

Status S4FileSystem::SyncOp() {
  ++unsynced_ops_;
  if (unsynced_ops_ < options_.group_commit_ops) {
    ++stats_.deferred_syncs;
    return Status::Ok();
  }
  return Commit();
}

Status S4FileSystem::Commit() {
  if (unsynced_ops_ == 0) {
    return Status::Ok();
  }
  unsynced_ops_ = 0;
  ++stats_.rpc_syncs;
  return client_->Sync();
}

Status S4FileSystem::MutateThenSyncOp(RpcRequest req) {
  bool sync_due = unsynced_ops_ + 1 >= options_.group_commit_ops;
  if (options_.batch_rpcs) {
    std::vector<RpcRequest> subs;
    subs.reserve(2);
    subs.push_back(std::move(req));
    if (sync_due) {
      RpcRequest sync;
      sync.op = RpcOp::kSync;
      subs.push_back(std::move(sync));
    }
    S4_ASSIGN_OR_RETURN(std::vector<RpcResponse> resps, client_->CallBatch(std::move(subs)));
    ++stats_.rpc_batches;
    if (sync_due) {
      unsynced_ops_ = 0;
      ++stats_.rpc_syncs;
    } else {
      ++unsynced_ops_;
      ++stats_.deferred_syncs;
    }
    for (const RpcResponse& resp : resps) {
      S4_RETURN_IF_ERROR(resp.ToStatus());
    }
    return Status::Ok();
  }
  S4_ASSIGN_OR_RETURN(RpcResponse resp, client_->Call(std::move(req)));
  S4_RETURN_IF_ERROR(resp.ToStatus());
  return SyncOp();
}

Result<ParsedDir*> S4FileSystem::LoadDir(FileHandle dir) {
  if (ParsedDir* cached = dir_cache_.Get(dir); cached != nullptr) {
    ++stats_.dir_cache_hits;
    return cached;
  }
  ++stats_.dir_cache_misses;
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(dir));
  NfsAttrBlob blob;
  if (!attrs.opaque.empty()) {
    S4_ASSIGN_OR_RETURN(blob, NfsAttrBlob::Decode(attrs.opaque));
  }
  if (blob.type != FileType::kDirectory) {
    return Status::InvalidArgument("not a directory");
  }
  S4_ASSIGN_OR_RETURN(Bytes stream, client_->Read(dir, 0, attrs.size));
  S4_ASSIGN_OR_RETURN(ParsedDir parsed, ParseDirStream(stream));
  uint64_t cost = 64 + parsed.entries.size() * 48;
  dir_cache_.Put(dir, std::move(parsed), cost);
  return dir_cache_.Peek(dir);
}

Status S4FileSystem::AppendDirRecord(FileHandle dir, const DirRecord& record, bool then_sync) {
  Bytes encoded = EncodeDirRecord(record);
  if (then_sync) {
    // The op's final mutating RPC: run it through the sync discipline so it
    // can share a kBatch frame with the due Sync.
    RpcRequest req;
    req.op = RpcOp::kAppend;
    req.object = dir;
    req.data = std::move(encoded);
    S4_RETURN_IF_ERROR(MutateThenSyncOp(std::move(req)));
  } else {
    S4_RETURN_IF_ERROR(client_->Append(dir, encoded).status());
  }
  // Keep the cached parse coherent instead of invalidating (single-client
  // loopback mount, as in the prototype).
  if (ParsedDir* cached = dir_cache_.Peek(dir); cached != nullptr) {
    ++cached->record_count;
    if (record.op == DirRecord::Op::kAdd) {
      DirEntry e;
      e.name = record.name;
      e.handle = record.handle;
      e.type = record.type;
      cached->entries[record.name] = e;
    } else {
      cached->entries.erase(record.name);
    }
  }
  attr_cache_.Remove(dir);
  return Status::Ok();
}

Status S4FileSystem::MaybeCompactDir(FileHandle dir) {
  ParsedDir* cached = dir_cache_.Peek(dir);
  if (cached == nullptr || !cached->NeedsCompaction()) {
    return Status::Ok();
  }
  Bytes compacted = CompactDirStream(*cached);
  S4_RETURN_IF_ERROR(client_->Write(dir, 0, compacted));
  S4_RETURN_IF_ERROR(client_->Truncate(dir, compacted.size()));
  cached->record_count = cached->entries.size();
  attr_cache_.Remove(dir);
  return Status::Ok();
}

Result<FileHandle> S4FileSystem::Lookup(FileHandle dir, const std::string& name) {
  S4_ASSIGN_OR_RETURN(ParsedDir* parsed, LoadDir(dir));
  auto it = parsed->entries.find(name);
  if (it == parsed->entries.end()) {
    return Status::NotFound("no such name: " + name);
  }
  return it->second.handle;
}

Result<FileHandle> S4FileSystem::CreateNode(FileHandle dir, const std::string& name,
                                            FileType type, uint32_t mode,
                                            const std::string& symlink_target) {
  S4_ASSIGN_OR_RETURN(ParsedDir* parsed, LoadDir(dir));
  if (parsed->entries.count(name) > 0) {
    return Status::AlreadyExists(name);
  }
  NfsAttrBlob blob;
  blob.type = type;
  blob.mode = mode;
  blob.uid = client_->creds().user;
  S4_ASSIGN_OR_RETURN(ObjectId id, client_->Create(blob.Encode()));
  if (type == FileType::kSymlink) {
    S4_RETURN_IF_ERROR(client_->Write(id, 0, BytesOf(symlink_target)));
  }
  DirRecord rec;
  rec.op = DirRecord::Op::kAdd;
  rec.type = type;
  rec.handle = id;
  rec.name = name;
  S4_RETURN_IF_ERROR(AppendDirRecord(dir, rec, /*then_sync=*/true));
  return id;
}

Result<FileHandle> S4FileSystem::CreateFile(FileHandle dir, const std::string& name,
                                            uint32_t mode) {
  return CreateNode(dir, name, FileType::kFile, mode, "");
}

Result<FileHandle> S4FileSystem::Mkdir(FileHandle dir, const std::string& name, uint32_t mode) {
  return CreateNode(dir, name, FileType::kDirectory, mode, "");
}

Result<FileHandle> S4FileSystem::Symlink(FileHandle dir, const std::string& name,
                                         const std::string& target) {
  return CreateNode(dir, name, FileType::kSymlink, 0777, target);
}

Status S4FileSystem::Remove(FileHandle dir, const std::string& name) {
  S4_ASSIGN_OR_RETURN(ParsedDir* parsed, LoadDir(dir));
  auto it = parsed->entries.find(name);
  if (it == parsed->entries.end()) {
    return Status::NotFound(name);
  }
  if (it->second.type == FileType::kDirectory) {
    return Status::InvalidArgument("is a directory");
  }
  FileHandle victim = it->second.handle;
  S4_RETURN_IF_ERROR(client_->Delete(victim));
  attr_cache_.Remove(victim);
  DirRecord rec;
  rec.op = DirRecord::Op::kRemove;
  rec.name = name;
  S4_RETURN_IF_ERROR(AppendDirRecord(dir, rec));
  S4_RETURN_IF_ERROR(MaybeCompactDir(dir));
  return SyncOp();
}

Status S4FileSystem::Rmdir(FileHandle dir, const std::string& name) {
  S4_ASSIGN_OR_RETURN(ParsedDir* parsed, LoadDir(dir));
  auto it = parsed->entries.find(name);
  if (it == parsed->entries.end()) {
    return Status::NotFound(name);
  }
  if (it->second.type != FileType::kDirectory) {
    return Status::InvalidArgument("not a directory");
  }
  FileHandle victim = it->second.handle;
  S4_ASSIGN_OR_RETURN(ParsedDir* victim_dir, LoadDir(victim));
  if (!victim_dir->entries.empty()) {
    return Status::FailedPrecondition("directory not empty");
  }
  S4_RETURN_IF_ERROR(client_->Delete(victim));
  dir_cache_.Remove(victim);
  attr_cache_.Remove(victim);
  DirRecord rec;
  rec.op = DirRecord::Op::kRemove;
  rec.name = name;
  S4_RETURN_IF_ERROR(AppendDirRecord(dir, rec));
  S4_RETURN_IF_ERROR(MaybeCompactDir(dir));
  return SyncOp();
}

Status S4FileSystem::Rename(FileHandle from_dir, const std::string& from_name,
                            FileHandle to_dir, const std::string& to_name) {
  S4_ASSIGN_OR_RETURN(ParsedDir* src, LoadDir(from_dir));
  auto it = src->entries.find(from_name);
  if (it == src->entries.end()) {
    return Status::NotFound(from_name);
  }
  DirEntry moving = it->second;

  // NFS rename semantics: silently replace an existing target file.
  S4_ASSIGN_OR_RETURN(ParsedDir* dst, LoadDir(to_dir));
  auto target = dst->entries.find(to_name);
  if (target != dst->entries.end()) {
    if (target->second.type == FileType::kDirectory) {
      return Status::InvalidArgument("target is a directory");
    }
    S4_RETURN_IF_ERROR(client_->Delete(target->second.handle));
    attr_cache_.Remove(target->second.handle);
    DirRecord del;
    del.op = DirRecord::Op::kRemove;
    del.name = to_name;
    S4_RETURN_IF_ERROR(AppendDirRecord(to_dir, del));
  }

  DirRecord del;
  del.op = DirRecord::Op::kRemove;
  del.name = from_name;
  S4_RETURN_IF_ERROR(AppendDirRecord(from_dir, del));
  DirRecord add;
  add.op = DirRecord::Op::kAdd;
  add.type = moving.type;
  add.handle = moving.handle;
  add.name = to_name;
  return AppendDirRecord(to_dir, add, /*then_sync=*/true);
}

Result<Bytes> S4FileSystem::ReadFile(FileHandle file, uint64_t offset, uint64_t length) {
  return client_->Read(file, offset, length);
}

Status S4FileSystem::WriteFile(FileHandle file, uint64_t offset, ByteSpan data) {
  RpcRequest req;
  req.op = RpcOp::kWrite;
  req.object = file;
  req.offset = offset;
  req.data.assign(data.begin(), data.end());
  attr_cache_.Remove(file);
  return MutateThenSyncOp(std::move(req));
}

Result<NfsAttrBlob> S4FileSystem::LoadAttrBlob(FileHandle file, uint64_t* size_out,
                                               SimTime* mtime_out, SimTime* ctime_out) {
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(file));
  *size_out = attrs.size;
  *mtime_out = attrs.modify_time;
  *ctime_out = attrs.create_time;
  if (attrs.opaque.empty()) {
    return NfsAttrBlob{};
  }
  return NfsAttrBlob::Decode(attrs.opaque);
}

Result<FileAttr> S4FileSystem::GetAttr(FileHandle file) {
  if (FileAttr* cached = attr_cache_.Get(file); cached != nullptr) {
    ++stats_.attr_cache_hits;
    return *cached;
  }
  ++stats_.attr_cache_misses;
  uint64_t size = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
  S4_ASSIGN_OR_RETURN(NfsAttrBlob blob, LoadAttrBlob(file, &size, &mtime, &ctime));
  FileAttr attr = MakeAttr(blob, size, mtime, ctime);
  attr_cache_.Put(file, attr, 64);
  return attr;
}

Status S4FileSystem::SetSize(FileHandle file, uint64_t size) {
  RpcRequest req;
  req.op = RpcOp::kTruncate;
  req.object = file;
  req.length = size;
  attr_cache_.Remove(file);
  return MutateThenSyncOp(std::move(req));
}

Result<std::vector<DirEntry>> S4FileSystem::ReadDir(FileHandle dir) {
  S4_ASSIGN_OR_RETURN(ParsedDir* parsed, LoadDir(dir));
  std::vector<DirEntry> out;
  out.reserve(parsed->entries.size());
  for (const auto& [name, e] : parsed->entries) {
    (void)name;
    out.push_back(e);
  }
  return out;
}

Result<std::string> S4FileSystem::ReadLink(FileHandle link) {
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(link));
  S4_ASSIGN_OR_RETURN(Bytes target, client_->Read(link, 0, attrs.size));
  return StringOf(target);
}

}  // namespace s4
