#include "src/fs/file_system.h"

#include <sstream>

namespace s4 {
namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(path);
  while (std::getline(in, part, '/')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  return parts;
}

}  // namespace

Result<FileHandle> ResolvePath(FileSystemApi* fs, const std::string& path) {
  S4_ASSIGN_OR_RETURN(FileHandle h, fs->Root());
  for (const std::string& part : SplitPath(path)) {
    S4_ASSIGN_OR_RETURN(h, fs->Lookup(h, part));
  }
  return h;
}

Result<FileHandle> MakeDirs(FileSystemApi* fs, const std::string& path) {
  S4_ASSIGN_OR_RETURN(FileHandle h, fs->Root());
  for (const std::string& part : SplitPath(path)) {
    auto next = fs->Lookup(h, part);
    if (next.ok()) {
      h = *next;
      continue;
    }
    if (next.status().code() != ErrorCode::kNotFound) {
      return next.status();
    }
    S4_ASSIGN_OR_RETURN(h, fs->Mkdir(h, part, 0755));
  }
  return h;
}

}  // namespace s4
