// NFS attribute blob stored in each object's opaque attribute space
// (paper section 4.1.2: "The NFS attribute structure is maintained within
// the opaque attribute space of each object").
#ifndef S4_SRC_FS_NFS_ATTR_H_
#define S4_SRC_FS_NFS_ATTR_H_

#include "src/fs/file_system.h"
#include "src/util/codec.h"

namespace s4 {

struct NfsAttrBlob {
  FileType type = FileType::kFile;
  uint32_t mode = 0644;
  uint32_t uid = 0;

  Bytes Encode() const;
  static Result<NfsAttrBlob> Decode(ByteSpan blob);
};

}  // namespace s4

#endif  // S4_SRC_FS_NFS_ATTR_H_
