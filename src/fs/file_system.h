// FileSystemApi: the NFSv2-flavoured vnode interface that workloads and
// tools program against.
//
// Implementations:
//   - S4FileSystem (src/fs/s4_fs.h): the paper's "S4 client" NFS-to-S4
//     translator, overlaying files and directories on the flat object store.
//   - FfsLikeServer (src/baseline): an in-place-update server standing in
//     for the FreeBSD FFS / Linux ext2 NFS servers of the evaluation.
//   - NfsServerWrapper (src/fs/nfs_wrapper.h): charges per-op network cost,
//     turning any FileSystemApi into a "remote NFS server".
#ifndef S4_SRC_FS_FILE_SYSTEM_H_
#define S4_SRC_FS_FILE_SYSTEM_H_

#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace s4 {

// An NFS-style opaque file handle. For S4FileSystem it is the ObjectId.
using FileHandle = uint64_t;

enum class FileType : uint8_t { kFile = 1, kDirectory = 2, kSymlink = 3 };

struct FileAttr {
  FileType type = FileType::kFile;
  uint32_t mode = 0644;
  uint32_t uid = 0;
  uint64_t size = 0;
  SimTime ctime = 0;
  SimTime mtime = 0;
};

struct DirEntry {
  std::string name;
  FileHandle handle = 0;
  FileType type = FileType::kFile;
};

class FileSystemApi {
 public:
  virtual ~FileSystemApi() = default;

  virtual Result<FileHandle> Root() = 0;
  virtual Result<FileHandle> Lookup(FileHandle dir, const std::string& name) = 0;
  virtual Result<FileHandle> CreateFile(FileHandle dir, const std::string& name,
                                        uint32_t mode) = 0;
  virtual Result<FileHandle> Mkdir(FileHandle dir, const std::string& name, uint32_t mode) = 0;
  virtual Status Remove(FileHandle dir, const std::string& name) = 0;
  virtual Status Rmdir(FileHandle dir, const std::string& name) = 0;
  virtual Status Rename(FileHandle from_dir, const std::string& from_name, FileHandle to_dir,
                        const std::string& to_name) = 0;
  virtual Result<Bytes> ReadFile(FileHandle file, uint64_t offset, uint64_t length) = 0;
  virtual Status WriteFile(FileHandle file, uint64_t offset, ByteSpan data) = 0;
  virtual Result<FileAttr> GetAttr(FileHandle file) = 0;
  virtual Status SetSize(FileHandle file, uint64_t size) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(FileHandle dir) = 0;
  virtual Result<FileHandle> Symlink(FileHandle dir, const std::string& name,
                                     const std::string& target) = 0;
  virtual Result<std::string> ReadLink(FileHandle link) = 0;
};

// Walks an absolute slash-separated path from the root. "" and "/" resolve
// to the root itself.
Result<FileHandle> ResolvePath(FileSystemApi* fs, const std::string& path);

// mkdir -p equivalent; returns the handle of the final directory.
Result<FileHandle> MakeDirs(FileSystemApi* fs, const std::string& path);

}  // namespace s4

#endif  // S4_SRC_FS_FILE_SYSTEM_H_
