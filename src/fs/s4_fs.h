// S4FileSystem: the "S4 client" daemon of Figure 1 — a user-level NFS-to-S4
// translator that overlays an NFSv2-style file system on the drive's flat
// object namespace.
//
//   - Directories are objects holding add/remove records (name -> handle).
//   - NFS attributes live in each object's opaque attribute space.
//   - File handles hash directly to ObjectIds.
//   - To honour NFSv2 stable-storage semantics, every state-modifying NFS
//     operation is followed by a Sync RPC (the drive normally caches writes).
//   - Aggressive read-only attribute and directory caches cut the RPC count,
//     as in the paper (section 4.1.2).
#ifndef S4_SRC_FS_S4_FS_H_
#define S4_SRC_FS_S4_FS_H_

#include <memory>
#include <string>

#include "src/cache/lru.h"
#include "src/fs/dir_format.h"
#include "src/fs/file_system.h"
#include "src/fs/nfs_attr.h"
#include "src/rpc/client.h"

namespace s4 {

struct S4FileSystemStats {
  uint64_t rpc_syncs = 0;
  uint64_t deferred_syncs = 0;  // mutating ops whose sync was coalesced
  uint64_t rpc_batches = 0;     // kBatch frames sent
  uint64_t attr_cache_hits = 0;
  uint64_t attr_cache_misses = 0;
  uint64_t dir_cache_hits = 0;
  uint64_t dir_cache_misses = 0;
};

// Tuning of the translator's RPC traffic. Defaults reproduce the paper's
// prototype exactly: one sync RPC after every mutating NFS op (the NFSv2
// stable-storage discipline section 5.2 blames for most of S4's latency).
struct S4FileSystemOptions {
  // Mutating ops coalesced under one Sync RPC. 1 = sync after every op
  // (strict NFSv2 stable storage); N defers the sync until N ops ran, which
  // lets the drive group-commit their journal entries into one chunk write.
  uint32_t group_commit_ops = 1;
  // Fuse each op's final mutating RPC with its due Sync into one kBatch
  // frame (one network round-trip instead of two).
  bool batch_rpcs = false;
};

class S4FileSystem : public FileSystemApi {
 public:
  // Creates a fresh file system: makes the root directory object and binds
  // it to the partition name.
  static Result<std::unique_ptr<S4FileSystem>> Format(S4ClientApi* client,
                                                      const std::string& partition,
                                                      S4FileSystemOptions options = {});
  // Attaches to an existing file system (PMount).
  static Result<std::unique_ptr<S4FileSystem>> Mount(S4ClientApi* client,
                                                     const std::string& partition,
                                                     S4FileSystemOptions options = {});

  ~S4FileSystem() override;

  Result<FileHandle> Root() override { return root_; }
  Result<FileHandle> Lookup(FileHandle dir, const std::string& name) override;
  Result<FileHandle> CreateFile(FileHandle dir, const std::string& name,
                                uint32_t mode) override;
  Result<FileHandle> Mkdir(FileHandle dir, const std::string& name, uint32_t mode) override;
  Status Remove(FileHandle dir, const std::string& name) override;
  Status Rmdir(FileHandle dir, const std::string& name) override;
  Status Rename(FileHandle from_dir, const std::string& from_name, FileHandle to_dir,
                const std::string& to_name) override;
  Result<Bytes> ReadFile(FileHandle file, uint64_t offset, uint64_t length) override;
  Status WriteFile(FileHandle file, uint64_t offset, ByteSpan data) override;
  Result<FileAttr> GetAttr(FileHandle file) override;
  Status SetSize(FileHandle file, uint64_t size) override;
  Result<std::vector<DirEntry>> ReadDir(FileHandle dir) override;
  Result<FileHandle> Symlink(FileHandle dir, const std::string& name,
                             const std::string& target) override;
  Result<std::string> ReadLink(FileHandle link) override;

  const S4FileSystemStats& stats() const { return stats_; }
  S4ClientApi* client() { return client_; }
  const S4FileSystemOptions& options() const { return options_; }

  // Forces any deferred sync to the drive now (a group-commit boundary).
  // No-op when nothing is pending. Callers that need a durability point
  // under group_commit_ops > 1 (unmount, crash-consistency checks,
  // benchmark epochs) must call this.
  Status Commit();

 private:
  S4FileSystem(S4ClientApi* client, S4FileSystemOptions options);

  Result<ParsedDir*> LoadDir(FileHandle dir);
  Status AppendDirRecord(FileHandle dir, const DirRecord& record, bool then_sync = false);
  Status MaybeCompactDir(FileHandle dir);
  Result<FileHandle> CreateNode(FileHandle dir, const std::string& name, FileType type,
                                uint32_t mode, const std::string& symlink_target);
  Result<NfsAttrBlob> LoadAttrBlob(FileHandle file, uint64_t* size_out, SimTime* mtime_out,
                                   SimTime* ctime_out);
  // NFSv2 commit discipline after a mutating op. With group_commit_ops == 1
  // this issues the Sync RPC immediately; otherwise the sync is deferred
  // until the watermark and the drive group-commits the batch.
  Status SyncOp();
  // Runs a status-only mutating RPC followed by the op's sync discipline.
  // When batch_rpcs is on and the sync is due, both travel in one kBatch
  // frame (one round-trip).
  Status MutateThenSyncOp(RpcRequest req);

  S4ClientApi* client_;
  S4FileSystemOptions options_;
  FileHandle root_ = 0;
  uint32_t unsynced_ops_ = 0;  // mutating ops since the last Sync RPC
  LruCache<FileHandle, ParsedDir> dir_cache_;
  LruCache<FileHandle, FileAttr> attr_cache_;
  S4FileSystemStats stats_;
};

}  // namespace s4

#endif  // S4_SRC_FS_S4_FS_H_
