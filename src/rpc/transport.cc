#include "src/rpc/transport.h"

namespace s4 {

Result<Bytes> LoopbackTransport::Call(ByteSpan request) {
  S4Drive* drive = server_->drive();
  uint64_t request_id = drive->tracer().NextRequestId();
  OpContext net_ctx;
  net_ctx.request_id = request_id;
  net_ctx.start_time = clock_->Now();
  net_ctx.clock = clock_;
  net_ctx.tracer = &drive->tracer();

  {
    ScopedSpan span(&net_ctx, "net.request");
    clock_->Advance(model_.TransferCost(request.size()));
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += request.size();
  messages_sent_->Inc();
  bytes_sent_->Add(request.size());
  if (ep_messages_sent_ != nullptr) {
    ep_messages_sent_->Inc();
    ep_bytes_sent_->Add(request.size());
  }

  Bytes response = server_->Handle(request, request_id);

  {
    ScopedSpan span(&net_ctx, "net.response");
    clock_->Advance(model_.TransferCost(response.size()));
  }
  ++stats_.messages_received;
  stats_.bytes_received += response.size();
  messages_received_->Inc();
  bytes_received_->Add(response.size());
  if (ep_messages_received_ != nullptr) {
    ep_messages_received_->Inc();
    ep_bytes_received_->Add(response.size());
  }
  return response;
}

Bytes S4RpcServer::Handle(ByteSpan request_frame, uint64_t request_id) {
  auto reject = [&](const Status& s) {
    OpContext ctx = drive_->MakeContext(Credentials{}, RpcOp::kInvalid);
    ctx.shard = shard_;
    if (request_id != 0) {
      ctx.request_id = request_id;
    }
    ScopedSpan span(&ctx, "rpc.reject");
    drive_->AuditRejectedFrame(ctx, s);
    RpcResponse resp;
    resp.code = s.code();
    resp.message = s.message();
    return resp.Encode();
  };

  if (request_frame.size() > kMaxFrameBytes) {
    return reject(Status::InvalidArgument("rpc frame exceeds size cap"));
  }
  if (IsBatchRequestFrame(request_frame)) {
    auto batch = RpcBatchRequest::Decode(request_frame);
    if (!batch.ok()) {
      // Rejected as a unit: no sub-op has been dispatched yet, so a hostile
      // batch is never partially applied. The reject path audits kInvalid.
      return reject(batch.status());
    }
    // One OpContext for the whole round-trip; sub-ops update creds/op as
    // they run so their spans, metrics and audit records stay per-op while
    // sharing the envelope's request id.
    OpContext ctx = drive_->MakeContext(batch->subs.front().creds, RpcOp::kBatch);
    ctx.shard = shard_;
    if (request_id != 0) {
      ctx.request_id = request_id;
    }
    SimTime batch_start = ctx.start_time;
    RpcBatchResponse resp;
    resp.subs.reserve(batch->subs.size());
    {
      ScopedSpan span(&ctx, "rpc.batch");
      for (const RpcRequest& sub : batch->subs) {
        ctx.creds = sub.creds;
        ctx.op = sub.op;
        resp.subs.push_back(Dispatch(ctx, sub));
      }
    }
    ctx.creds = batch->subs.front().creds;
    ctx.op = RpcOp::kBatch;
    drive_->AuditBatchFrame(ctx, batch->subs.size(), batch_start);
    return resp.Encode();
  }
  auto req = RpcRequest::Decode(request_frame);
  if (!req.ok()) {
    return reject(req.status());
  }
  OpContext ctx = drive_->MakeContext(req->creds, req->op);
  ctx.shard = shard_;
  if (request_id != 0) {
    ctx.request_id = request_id;
  }
  ScopedSpan span(&ctx, "rpc.dispatch");
  return Dispatch(ctx, *req).Encode();
}

RpcResponse S4RpcServer::Dispatch(OpContext& ctx, const RpcRequest& req) {
  RpcResponse resp;
  auto set_status = [&resp](const Status& s) {
    resp.code = s.code();
    resp.message = s.message();
  };

  switch (req.op) {
    case RpcOp::kCreate: {
      auto r = drive_->Create(ctx, req.data);
      set_status(r.status());
      if (r.ok()) {
        resp.value = *r;
      }
      break;
    }
    case RpcOp::kDelete:
      set_status(drive_->Delete(ctx, req.object));
      break;
    case RpcOp::kRead: {
      auto r = drive_->Read(ctx, req.object, req.offset, req.length, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.data = std::move(*r);
      }
      break;
    }
    case RpcOp::kWrite:
      set_status(drive_->Write(ctx, req.object, req.offset, req.data));
      break;
    case RpcOp::kXorWrite:
      set_status(drive_->XorWrite(ctx, req.object, req.offset, req.data));
      break;
    case RpcOp::kAppend: {
      auto r = drive_->Append(ctx, req.object, req.data);
      set_status(r.status());
      if (r.ok()) {
        resp.value = *r;
      }
      break;
    }
    case RpcOp::kTruncate:
      set_status(drive_->Truncate(ctx, req.object, req.length));
      break;
    case RpcOp::kGetAttr: {
      auto r = drive_->GetAttr(ctx, req.object, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.attrs = std::move(*r);
      }
      break;
    }
    case RpcOp::kSetAttr:
      set_status(drive_->SetAttr(ctx, req.object, req.data));
      break;
    case RpcOp::kGetAclByUser: {
      auto r = drive_->GetAclByUser(ctx, req.object, req.user, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.acl_entry = *r;
      }
      break;
    }
    case RpcOp::kGetAclByIndex: {
      auto r = drive_->GetAclByIndex(ctx, req.object, req.index, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.acl_entry = *r;
      }
      break;
    }
    case RpcOp::kSetAcl:
      set_status(drive_->SetAcl(ctx, req.object, req.acl_entry));
      break;
    case RpcOp::kPCreate:
      set_status(drive_->PCreate(ctx, req.name, req.object));
      break;
    case RpcOp::kPDelete:
      set_status(drive_->PDelete(ctx, req.name));
      break;
    case RpcOp::kPList: {
      auto r = drive_->PList(ctx, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.partitions = std::move(*r);
      }
      break;
    }
    case RpcOp::kPMount: {
      auto r = drive_->PMount(ctx, req.name, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.value = *r;
      }
      break;
    }
    case RpcOp::kSync:
      set_status(drive_->Sync(ctx));
      break;
    case RpcOp::kFlush:
      set_status(drive_->Flush(ctx, req.from, req.to));
      break;
    case RpcOp::kFlushObject:
      set_status(drive_->FlushObject(ctx, req.object, req.from, req.to));
      break;
    case RpcOp::kSetWindow:
      set_status(drive_->SetWindow(ctx, req.window));
      break;
    case RpcOp::kGetVersionList: {
      auto r = drive_->GetVersionList(ctx, req.object);
      set_status(r.status());
      if (r.ok()) {
        for (const auto& v : *r) {
          resp.versions.emplace_back(v.time, static_cast<uint8_t>(v.cause));
        }
      }
      break;
    }
    case RpcOp::kAuditChallenge: {
      auto r = drive_->AuditChallenge(ctx, req.offset);
      set_status(r.status());
      if (r.ok()) {
        // Proof wire form: claimed chain end (seq, offset, link) followed by
        // the raw whole-frame bytes for this round.
        Encoder enc(20 + r->frames.size());
        enc.PutU64(r->end_state.next_seq);
        enc.PutU64(r->end_state.next_offset);
        enc.PutU32(r->end_state.link);
        enc.PutBytes(r->frames);
        resp.data = enc.Take();
      }
      break;
    }
    case RpcOp::kInvalid:
    default:
      // Decode rejects out-of-range op bytes, so this is unreachable from the
      // wire; keep the error response anyway so no future gap can crash.
      set_status(Status::InvalidArgument("unknown rpc op"));
      break;
  }
  return resp;
}

}  // namespace s4
