#include "src/rpc/transport.h"

namespace s4 {

Result<Bytes> LoopbackTransport::Call(ByteSpan request) {
  clock_->Advance(model_.TransferCost(request.size()));
  ++stats_.messages_sent;
  stats_.bytes_sent += request.size();
  Bytes response = server_->Handle(request);
  clock_->Advance(model_.TransferCost(response.size()));
  ++stats_.messages_received;
  stats_.bytes_received += response.size();
  return response;
}

Bytes S4RpcServer::Handle(ByteSpan request_frame) {
  auto req = RpcRequest::Decode(request_frame);
  if (!req.ok()) {
    RpcResponse resp;
    resp.code = req.status().code();
    resp.message = req.status().message();
    return resp.Encode();
  }
  return Dispatch(*req).Encode();
}

RpcResponse S4RpcServer::Dispatch(const RpcRequest& req) {
  RpcResponse resp;
  auto set_status = [&resp](const Status& s) {
    resp.code = s.code();
    resp.message = s.message();
  };

  switch (req.op) {
    case RpcOp::kCreate: {
      auto r = drive_->Create(req.creds, req.data);
      set_status(r.status());
      if (r.ok()) {
        resp.value = *r;
      }
      break;
    }
    case RpcOp::kDelete:
      set_status(drive_->Delete(req.creds, req.object));
      break;
    case RpcOp::kRead: {
      auto r = drive_->Read(req.creds, req.object, req.offset, req.length, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.data = std::move(*r);
      }
      break;
    }
    case RpcOp::kWrite:
      set_status(drive_->Write(req.creds, req.object, req.offset, req.data));
      break;
    case RpcOp::kAppend: {
      auto r = drive_->Append(req.creds, req.object, req.data);
      set_status(r.status());
      if (r.ok()) {
        resp.value = *r;
      }
      break;
    }
    case RpcOp::kTruncate:
      set_status(drive_->Truncate(req.creds, req.object, req.length));
      break;
    case RpcOp::kGetAttr: {
      auto r = drive_->GetAttr(req.creds, req.object, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.attrs = std::move(*r);
      }
      break;
    }
    case RpcOp::kSetAttr:
      set_status(drive_->SetAttr(req.creds, req.object, req.data));
      break;
    case RpcOp::kGetAclByUser: {
      auto r = drive_->GetAclByUser(req.creds, req.object, req.user, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.acl_entry = *r;
      }
      break;
    }
    case RpcOp::kGetAclByIndex: {
      auto r = drive_->GetAclByIndex(req.creds, req.object, req.index, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.acl_entry = *r;
      }
      break;
    }
    case RpcOp::kSetAcl:
      set_status(drive_->SetAcl(req.creds, req.object, req.acl_entry));
      break;
    case RpcOp::kPCreate:
      set_status(drive_->PCreate(req.creds, req.name, req.object));
      break;
    case RpcOp::kPDelete:
      set_status(drive_->PDelete(req.creds, req.name));
      break;
    case RpcOp::kPList: {
      auto r = drive_->PList(req.creds, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.partitions = std::move(*r);
      }
      break;
    }
    case RpcOp::kPMount: {
      auto r = drive_->PMount(req.creds, req.name, req.at);
      set_status(r.status());
      if (r.ok()) {
        resp.value = *r;
      }
      break;
    }
    case RpcOp::kSync:
      set_status(drive_->Sync(req.creds));
      break;
    case RpcOp::kFlush:
      set_status(drive_->Flush(req.creds, req.from, req.to));
      break;
    case RpcOp::kFlushObject:
      set_status(drive_->FlushObject(req.creds, req.object, req.from, req.to));
      break;
    case RpcOp::kSetWindow:
      set_status(drive_->SetWindow(req.creds, req.window));
      break;
    case RpcOp::kGetVersionList: {
      auto r = drive_->GetVersionList(req.creds, req.object);
      set_status(r.status());
      if (r.ok()) {
        for (const auto& v : *r) {
          resp.versions.emplace_back(v.time, static_cast<uint8_t>(v.cause));
        }
      }
      break;
    }
  }
  return resp;
}

}  // namespace s4
