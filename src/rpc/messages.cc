#include "src/rpc/messages.h"

#include "src/util/crc32.h"

namespace s4 {
namespace {

constexpr uint32_t kRequestMagic = 0x53345251;        // "S4RQ"
constexpr uint32_t kResponseMagic = 0x53345250;       // "S4RP"
constexpr uint32_t kBatchRequestMagic = 0x53344251;   // "S4BQ"
constexpr uint32_t kBatchResponseMagic = 0x53344250;  // "S4BP"

Bytes Frame(uint32_t magic, Encoder body) {
  Encoder out(body.size() + 12);
  out.PutU32(magic);
  out.PutBytes(body.bytes());
  uint32_t crc = Crc32c(out.bytes());
  out.PutU32(crc);
  return out.Take();
}

Result<Decoder> Unframe(uint32_t magic, ByteSpan frame) {
  if (frame.size() < 8) {
    return Status::DataCorruption("rpc frame too short");
  }
  uint32_t stored;
  {
    Decoder tail(frame.subspan(frame.size() - 4));
    S4_ASSIGN_OR_RETURN(stored, tail.U32());
  }
  if (Crc32c(frame.subspan(0, frame.size() - 4)) != stored) {
    return Status::DataCorruption("rpc frame crc mismatch");
  }
  Decoder dec(frame.subspan(0, frame.size() - 4));
  S4_ASSIGN_OR_RETURN(uint32_t m, dec.U32());
  if (m != magic) {
    return Status::DataCorruption("rpc frame bad magic");
  }
  return dec;
}

}  // namespace

Bytes RpcRequest::Encode() const {
  Encoder enc(64 + data.size());
  enc.PutU8(static_cast<uint8_t>(op));
  enc.PutU32(creds.client);
  enc.PutU32(creds.user);
  enc.PutU64(creds.admin_key);
  enc.PutVarint(object);
  enc.PutVarint(offset);
  enc.PutVarint(length);
  enc.PutU8(at.has_value() ? 1 : 0);
  if (at.has_value()) {
    enc.PutI64(*at);
  }
  enc.PutLengthPrefixed(data);
  enc.PutString(name);
  enc.PutU32(acl_entry.user);
  enc.PutU8(acl_entry.perms);
  enc.PutU32(user);
  enc.PutU32(index);
  enc.PutI64(from);
  enc.PutI64(to);
  enc.PutI64(window);
  return Frame(kRequestMagic, std::move(enc));
}

Result<RpcRequest> RpcRequest::Decode(ByteSpan frame) {
  S4_ASSIGN_OR_RETURN(Decoder dec, Unframe(kRequestMagic, frame));
  RpcRequest r;
  S4_ASSIGN_OR_RETURN(uint8_t op_raw, dec.U8());
  // kBatch is deliberately excluded: a batch travels under its own frame
  // magic, and rejecting the op byte here keeps batches from nesting.
  if (op_raw < static_cast<uint8_t>(RpcOp::kCreate) ||
      op_raw > static_cast<uint8_t>(RpcOp::kXorWrite) ||
      op_raw == static_cast<uint8_t>(RpcOp::kBatch)) {
    return Status::InvalidArgument("unknown rpc op");
  }
  r.op = static_cast<RpcOp>(op_raw);
  S4_ASSIGN_OR_RETURN(r.creds.client, dec.U32());
  S4_ASSIGN_OR_RETURN(r.creds.user, dec.U32());
  S4_ASSIGN_OR_RETURN(r.creds.admin_key, dec.U64());
  S4_ASSIGN_OR_RETURN(r.object, dec.Varint());
  S4_ASSIGN_OR_RETURN(r.offset, dec.Varint());
  S4_ASSIGN_OR_RETURN(r.length, dec.Varint());
  S4_ASSIGN_OR_RETURN(uint8_t has_at, dec.U8());
  if (has_at != 0) {
    S4_ASSIGN_OR_RETURN(SimTime at, dec.I64());
    r.at = at;
  }
  S4_ASSIGN_OR_RETURN(r.data, dec.LengthPrefixed());
  S4_ASSIGN_OR_RETURN(r.name, dec.String());
  S4_ASSIGN_OR_RETURN(r.acl_entry.user, dec.U32());
  S4_ASSIGN_OR_RETURN(r.acl_entry.perms, dec.U8());
  S4_ASSIGN_OR_RETURN(r.user, dec.U32());
  S4_ASSIGN_OR_RETURN(r.index, dec.U32());
  S4_ASSIGN_OR_RETURN(r.from, dec.I64());
  S4_ASSIGN_OR_RETURN(r.to, dec.I64());
  S4_ASSIGN_OR_RETURN(r.window, dec.I64());
  return r;
}

Bytes RpcResponse::Encode() const {
  Encoder enc(64 + data.size());
  enc.PutU8(static_cast<uint8_t>(code));
  enc.PutString(message);
  enc.PutLengthPrefixed(data);
  enc.PutVarint(value);
  enc.PutVarint(attrs.size);
  enc.PutI64(attrs.create_time);
  enc.PutI64(attrs.modify_time);
  enc.PutLengthPrefixed(attrs.opaque);
  enc.PutU32(acl_entry.user);
  enc.PutU8(acl_entry.perms);
  enc.PutVarint(partitions.size());
  for (const auto& [name, id] : partitions) {
    enc.PutString(name);
    enc.PutVarint(id);
  }
  enc.PutVarint(versions.size());
  for (const auto& [time, cause] : versions) {
    enc.PutI64(time);
    enc.PutU8(cause);
  }
  return Frame(kResponseMagic, std::move(enc));
}

Result<RpcResponse> RpcResponse::Decode(ByteSpan frame) {
  S4_ASSIGN_OR_RETURN(Decoder dec, Unframe(kResponseMagic, frame));
  RpcResponse r;
  S4_ASSIGN_OR_RETURN(uint8_t code_raw, dec.U8());
  if (code_raw >= kNumErrorCodes) {
    return Status::DataCorruption("bad response code");
  }
  r.code = static_cast<ErrorCode>(code_raw);
  S4_ASSIGN_OR_RETURN(r.message, dec.String());
  S4_ASSIGN_OR_RETURN(r.data, dec.LengthPrefixed());
  S4_ASSIGN_OR_RETURN(r.value, dec.Varint());
  S4_ASSIGN_OR_RETURN(r.attrs.size, dec.Varint());
  S4_ASSIGN_OR_RETURN(r.attrs.create_time, dec.I64());
  S4_ASSIGN_OR_RETURN(r.attrs.modify_time, dec.I64());
  S4_ASSIGN_OR_RETURN(r.attrs.opaque, dec.LengthPrefixed());
  S4_ASSIGN_OR_RETURN(r.acl_entry.user, dec.U32());
  S4_ASSIGN_OR_RETURN(r.acl_entry.perms, dec.U8());
  S4_ASSIGN_OR_RETURN(uint64_t nparts, dec.Varint());
  for (uint64_t i = 0; i < nparts; ++i) {
    S4_ASSIGN_OR_RETURN(std::string name, dec.String());
    S4_ASSIGN_OR_RETURN(uint64_t id, dec.Varint());
    r.partitions.emplace_back(std::move(name), id);
  }
  S4_ASSIGN_OR_RETURN(uint64_t nversions, dec.Varint());
  for (uint64_t i = 0; i < nversions; ++i) {
    S4_ASSIGN_OR_RETURN(SimTime time, dec.I64());
    S4_ASSIGN_OR_RETURN(uint8_t cause, dec.U8());
    r.versions.emplace_back(time, cause);
  }
  return r;
}

Bytes RpcBatchRequest::Encode() const {
  Encoder enc(64);
  enc.PutVarint(subs.size());
  for (const RpcRequest& sub : subs) {
    enc.PutLengthPrefixed(sub.Encode());
  }
  return Frame(kBatchRequestMagic, std::move(enc));
}

Result<RpcBatchRequest> RpcBatchRequest::Decode(ByteSpan frame) {
  S4_ASSIGN_OR_RETURN(Decoder dec, Unframe(kBatchRequestMagic, frame));
  S4_ASSIGN_OR_RETURN(uint64_t count, dec.Varint());
  if (count == 0) {
    return Status::InvalidArgument("empty rpc batch");
  }
  if (count > kMaxSubRequests) {
    return Status::InvalidArgument("rpc batch sub-request count exceeds cap");
  }
  RpcBatchRequest r;
  r.subs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    S4_ASSIGN_OR_RETURN(Bytes sub_frame, dec.LengthPrefixed());
    S4_ASSIGN_OR_RETURN(RpcRequest sub, RpcRequest::Decode(sub_frame));
    r.subs.push_back(std::move(sub));
  }
  if (!dec.done()) {
    return Status::DataCorruption("trailing bytes after rpc batch");
  }
  return r;
}

Bytes RpcBatchResponse::Encode() const {
  Encoder enc(64);
  enc.PutVarint(subs.size());
  for (const RpcResponse& sub : subs) {
    enc.PutLengthPrefixed(sub.Encode());
  }
  return Frame(kBatchResponseMagic, std::move(enc));
}

Result<RpcBatchResponse> RpcBatchResponse::Decode(ByteSpan frame) {
  S4_ASSIGN_OR_RETURN(Decoder dec, Unframe(kBatchResponseMagic, frame));
  S4_ASSIGN_OR_RETURN(uint64_t count, dec.Varint());
  if (count > RpcBatchRequest::kMaxSubRequests) {
    return Status::DataCorruption("rpc batch response count exceeds cap");
  }
  RpcBatchResponse r;
  r.subs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    S4_ASSIGN_OR_RETURN(Bytes sub_frame, dec.LengthPrefixed());
    S4_ASSIGN_OR_RETURN(RpcResponse sub, RpcResponse::Decode(sub_frame));
    r.subs.push_back(std::move(sub));
  }
  return r;
}

bool IsBatchRequestFrame(ByteSpan frame) {
  if (frame.size() < 4) {
    return false;
  }
  Decoder dec(frame);
  auto magic = dec.U32();
  return magic.ok() && *magic == kBatchRequestMagic;
}

FramePeek PeekRequestFrame(ByteSpan frame) {
  FramePeek peek;
  Decoder dec(frame);
  auto magic = dec.U32();
  if (!magic.ok()) {
    return peek;  // too short to carry any magic: reject path
  }
  if (*magic == kBatchRequestMagic) {
    peek.batch = true;
    return peek;
  }
  if (*magic != kRequestMagic) {
    return peek;
  }
  // Mirror the RpcRequest::Decode prefix (op, creds, object) without the CRC
  // pass or the tail fields.
  auto op_raw = dec.U8();
  if (!op_raw.ok() || *op_raw < static_cast<uint8_t>(RpcOp::kCreate) ||
      *op_raw > static_cast<uint8_t>(RpcOp::kXorWrite) ||
      *op_raw == static_cast<uint8_t>(RpcOp::kBatch)) {
    return peek;
  }
  if (!dec.U32().ok() || !dec.U32().ok() || !dec.U64().ok()) {
    return peek;  // creds
  }
  auto object = dec.Varint();
  if (!object.ok()) {
    return peek;
  }
  peek.single = true;
  peek.op = static_cast<RpcOp>(*op_raw);
  peek.object = *object;
  return peek;
}

}  // namespace s4
