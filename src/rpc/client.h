// S4ClientApi: the typed client surface file systems and tools program
// against. The typed Table-1 wrappers are implemented once, over the two
// virtual entry points (Call / CallBatch), so any request router — the
// single-drive S4Client or the multi-drive ShardRouter — presents the same
// interface.
#ifndef S4_SRC_RPC_CLIENT_H_
#define S4_SRC_RPC_CLIENT_H_

#include <string>
#include <vector>

#include "src/rpc/messages.h"
#include "src/rpc/transport.h"

namespace s4 {

class S4ClientApi {
 public:
  virtual ~S4ClientApi() = default;

  virtual const Credentials& creds() const = 0;
  virtual void set_creds(Credentials creds) = 0;

  // Sends a raw single-op request (creds stamped by the implementation).
  virtual Result<RpcResponse> Call(RpcRequest req) = 0;
  // Sends N requests under one kBatch envelope and one network round-trip.
  // Returns one response per sub-request, in order. Sub-op failures are
  // reported in the per-sub response codes, not as a transport error.
  virtual Result<std::vector<RpcResponse>> CallBatch(std::vector<RpcRequest> reqs) = 0;

  // Typed wrappers over Call(), shared by every implementation.
  Result<ObjectId> Create(Bytes opaque_attrs);
  Status Delete(ObjectId id);
  Result<Bytes> Read(ObjectId id, uint64_t offset, uint64_t length,
                     std::optional<SimTime> at = std::nullopt);
  Status Write(ObjectId id, uint64_t offset, ByteSpan data);
  Status XorWrite(ObjectId id, uint64_t offset, ByteSpan data);
  Result<uint64_t> Append(ObjectId id, ByteSpan data);
  Status Truncate(ObjectId id, uint64_t new_size);
  Result<ObjectAttrs> GetAttr(ObjectId id, std::optional<SimTime> at = std::nullopt);
  Status SetAttr(ObjectId id, Bytes opaque_attrs);
  Result<AclEntry> GetAclByUser(ObjectId id, UserId user,
                                std::optional<SimTime> at = std::nullopt);
  Result<AclEntry> GetAclByIndex(ObjectId id, uint32_t index,
                                 std::optional<SimTime> at = std::nullopt);
  Status SetAcl(ObjectId id, AclEntry entry);
  Status PCreate(const std::string& name, ObjectId id);
  Status PDelete(const std::string& name);
  Result<std::vector<std::pair<std::string, ObjectId>>> PList(
      std::optional<SimTime> at = std::nullopt);
  Result<ObjectId> PMount(const std::string& name, std::optional<SimTime> at = std::nullopt);
  Status Sync();
  Status Flush(SimTime from, SimTime to);
  Status FlushObject(ObjectId id, SimTime from, SimTime to);
  Status SetWindow(SimDuration window);
  Result<std::vector<std::pair<SimTime, uint8_t>>> GetVersionList(ObjectId id);
  // Challenge/response audit verification (admin-only). `saved` is the chain
  // state this auditor last verified (genesis AuditChainState{} on the first
  // run). Iterates challenge rounds, verifying each returned frame span as a
  // whole-frame chain continuation of `saved`, until it catches up with the
  // drive's claimed committed chain end; on success `saved` has advanced to
  // that end. Any divergence — wrong link, wrong seq, wrong self-address, a
  // shrunk chain — fails with DataCorruption and leaves `saved` at the last
  // verified state.
  Status AuditChallenge(AuditChainState* saved);
};

// Single-endpoint client: stamps this client's credentials on every request
// and ships frames over one transport.
class S4Client : public S4ClientApi {
 public:
  S4Client(RpcTransport* transport, Credentials creds)
      : transport_(transport), creds_(creds) {}

  const Credentials& creds() const override { return creds_; }
  void set_creds(Credentials creds) override { creds_ = creds; }

  Result<RpcResponse> Call(RpcRequest req) override;
  Result<std::vector<RpcResponse>> CallBatch(std::vector<RpcRequest> reqs) override;
  // Like CallBatch, but each sub-request keeps the credentials already set on
  // it. An array controller mixes client-credentialed data sub-ops with its
  // own parity maintenance sub-ops in one frame; the audit log must attribute
  // each to the principal that issued it.
  Result<std::vector<RpcResponse>> CallBatchPrestamped(std::vector<RpcRequest> reqs);

 private:
  Result<std::vector<RpcResponse>> SendBatch(RpcBatchRequest batch);

  RpcTransport* transport_;
  Credentials creds_;
};

}  // namespace s4

#endif  // S4_SRC_RPC_CLIENT_H_
