// Authenticated access (paper section 3.2): "the new security perimeter
// becomes more useful if the device can verify each access as coming from
// both a valid user and a valid client. Such verification allows the device
// to enforce access control decisions and partially track propagation of
// tainted data."
//
// The NFS-style transport carries unauthenticated identity *claims*; this
// layer upgrades it: each request frame travels in an envelope carrying the
// claimed (client, user), a strictly increasing sequence number, and a
// SipHash-2-4 MAC over all of it under a key registered with the drive. The
// gateway in front of the drive verifies the MAC, checks the envelope
// identity against the credentials inside the request, and rejects replays —
// so audit records can be trusted to name the real principal.
#ifndef S4_SRC_RPC_AUTH_H_
#define S4_SRC_RPC_AUTH_H_

#include <array>
#include <map>
#include <memory>

#include "src/rpc/transport.h"

namespace s4 {

using MacKey = std::array<uint8_t, 16>;

// SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.
uint64_t SipHash24(const MacKey& key, ByteSpan data);

// Server-side key registry + verifier. Sits in front of an S4RpcServer and
// only forwards frames whose envelopes check out.
class AuthGateway {
 public:
  explicit AuthGateway(S4RpcServer* server) : server_(server) {}

  // Registers/rotates the key for a principal. In a deployment this happens
  // over the administrative channel (section 3.5).
  void RegisterPrincipal(ClientId client, UserId user, const MacKey& key);
  void RevokePrincipal(ClientId client, UserId user);

  // Verifies and unwraps an envelope; on success dispatches the inner frame
  // to the drive. Every failure mode returns an encoded error response.
  Bytes Handle(ByteSpan envelope_frame);

  uint64_t rejected_bad_mac() const { return rejected_bad_mac_; }
  uint64_t rejected_replay() const { return rejected_replay_; }
  uint64_t rejected_identity_mismatch() const { return rejected_identity_mismatch_; }
  uint64_t rejected_unknown_principal() const { return rejected_unknown_principal_; }

 private:
  struct Principal {
    MacKey key;
    uint64_t last_sequence = 0;
  };

  S4RpcServer* server_;
  std::map<std::pair<ClientId, UserId>, Principal> principals_;
  uint64_t rejected_bad_mac_ = 0;
  uint64_t rejected_replay_ = 0;
  uint64_t rejected_identity_mismatch_ = 0;
  uint64_t rejected_unknown_principal_ = 0;
};

// Transport adapter used by S4RpcServer-facing loopback transports: wraps a
// gateway the same way LoopbackTransport wraps a server.
class AuthLoopbackTransport : public RpcTransport {
 public:
  AuthLoopbackTransport(AuthGateway* gateway, SimClock* clock, NetModel model = NetModel())
      : gateway_(gateway), clock_(clock), model_(model) {}

  Result<Bytes> Call(ByteSpan request) override;

 private:
  AuthGateway* gateway_;
  SimClock* clock_;
  NetModel model_;
};

// Client-side signer: wraps any transport, enveloping each outgoing frame
// with this principal's identity, sequence number, and MAC.
class SigningTransport : public RpcTransport {
 public:
  SigningTransport(RpcTransport* next, ClientId client, UserId user, const MacKey& key)
      : next_(next), client_(client), user_(user), key_(key) {}

  Result<Bytes> Call(ByteSpan request) override;

  // Test hook: corrupt the next MAC (models an attacker without the key).
  void CorruptNextMac() { corrupt_next_ = true; }
  // Test hook: replay the previous envelope verbatim.
  Result<Bytes> ReplayLast();

 private:
  Bytes Envelope(ByteSpan request, uint64_t sequence);

  RpcTransport* next_;
  ClientId client_;
  UserId user_;
  MacKey key_;
  uint64_t sequence_ = 0;
  bool corrupt_next_ = false;
  Bytes last_envelope_;
};

}  // namespace s4

#endif  // S4_SRC_RPC_AUTH_H_
