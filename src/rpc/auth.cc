#include "src/rpc/auth.h"

#include <cstring>

#include "src/rpc/messages.h"
#include "src/util/codec.h"

namespace s4 {
namespace {

constexpr uint32_t kEnvelopeMagic = 0x53344155;  // "S4AU"

inline uint64_t Rotl64(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

Bytes ErrorResponse(ErrorCode code, const char* message) {
  RpcResponse resp;
  resp.code = code;
  resp.message = message;
  return resp.Encode();
}

}  // namespace

uint64_t SipHash24(const MacKey& key, ByteSpan data) {
  uint64_t k0;
  uint64_t k1;
  std::memcpy(&k0, key.data(), 8);
  std::memcpy(&k1, key.data() + 8, 8);

  uint64_t v0 = 0x736f6d6570736575ull ^ k0;
  uint64_t v1 = 0x646f72616e646f6dull ^ k1;
  uint64_t v2 = 0x6c7967656e657261ull ^ k0;
  uint64_t v3 = 0x7465646279746573ull ^ k1;

  auto sipround = [&] {
    v0 += v1;
    v1 = Rotl64(v1, 13);
    v1 ^= v0;
    v0 = Rotl64(v0, 32);
    v2 += v3;
    v3 = Rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = Rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = Rotl64(v1, 17);
    v1 ^= v2;
    v2 = Rotl64(v2, 32);
  };

  size_t len = data.size();
  const uint8_t* p = data.data();
  const uint8_t* end = p + (len - len % 8);
  for (; p != end; p += 8) {
    uint64_t m;
    std::memcpy(&m, p, 8);
    v3 ^= m;
    sipround();
    sipround();
    v0 ^= m;
  }
  uint64_t b = static_cast<uint64_t>(len) << 56;
  for (size_t i = 0; i < len % 8; ++i) {
    b |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  v3 ^= b;
  sipround();
  sipround();
  v0 ^= b;
  v2 ^= 0xFF;
  sipround();
  sipround();
  sipround();
  sipround();
  return v0 ^ v1 ^ v2 ^ v3;
}

// ---------------------------------------------------------------------------
// SigningTransport
// ---------------------------------------------------------------------------

Bytes SigningTransport::Envelope(ByteSpan request, uint64_t sequence) {
  Encoder body(32 + request.size());
  body.PutU32(kEnvelopeMagic);
  body.PutU32(client_);
  body.PutU32(user_);
  body.PutU64(sequence);
  body.PutLengthPrefixed(request);
  uint64_t mac = SipHash24(key_, body.bytes());
  if (corrupt_next_) {
    mac ^= 0xDEADBEEF;
    corrupt_next_ = false;
  }
  body.PutU64(mac);
  return body.Take();
}

Result<Bytes> SigningTransport::Call(ByteSpan request) {
  last_envelope_ = Envelope(request, ++sequence_);
  return next_->Call(last_envelope_);
}

Result<Bytes> SigningTransport::ReplayLast() {
  if (last_envelope_.empty()) {
    return Status::FailedPrecondition("nothing to replay");
  }
  return next_->Call(last_envelope_);
}

// ---------------------------------------------------------------------------
// AuthGateway
// ---------------------------------------------------------------------------

void AuthGateway::RegisterPrincipal(ClientId client, UserId user, const MacKey& key) {
  principals_[{client, user}] = Principal{key, 0};
}

void AuthGateway::RevokePrincipal(ClientId client, UserId user) {
  principals_.erase({client, user});
}

Bytes AuthGateway::Handle(ByteSpan envelope_frame) {
  Decoder dec(envelope_frame);
  auto magic = dec.U32();
  if (!magic.ok() || *magic != kEnvelopeMagic) {
    return ErrorResponse(ErrorCode::kPermissionDenied, "missing auth envelope");
  }
  auto client = dec.U32();
  auto user = client.ok() ? dec.U32() : client;
  auto sequence = user.ok() ? dec.U64() : Result<uint64_t>(user.status());
  auto inner = sequence.ok() ? dec.LengthPrefixed() : Result<Bytes>(sequence.status());
  auto mac = inner.ok() ? dec.U64() : Result<uint64_t>(inner.status());
  if (!mac.ok() || !dec.done()) {
    return ErrorResponse(ErrorCode::kPermissionDenied, "malformed auth envelope");
  }

  auto it = principals_.find({*client, *user});
  if (it == principals_.end()) {
    ++rejected_unknown_principal_;
    return ErrorResponse(ErrorCode::kPermissionDenied, "unknown principal");
  }
  Principal& principal = it->second;

  // Verify the MAC over everything before it.
  size_t mac_offset = envelope_frame.size() - 8;
  uint64_t expected = SipHash24(principal.key, envelope_frame.subspan(0, mac_offset));
  if (expected != *mac) {
    ++rejected_bad_mac_;
    return ErrorResponse(ErrorCode::kPermissionDenied, "bad request mac");
  }
  // Replay protection: sequence numbers are strictly increasing.
  if (*sequence <= principal.last_sequence) {
    ++rejected_replay_;
    return ErrorResponse(ErrorCode::kPermissionDenied, "replayed request");
  }
  principal.last_sequence = *sequence;

  // The credentials inside the request must match the authenticated
  // identity: a valid user may not speak for another.
  auto request = RpcRequest::Decode(*inner);
  if (!request.ok()) {
    return ErrorResponse(request.status().code(), "bad inner frame");
  }
  if (request->creds.client != *client || request->creds.user != *user) {
    ++rejected_identity_mismatch_;
    return ErrorResponse(ErrorCode::kPermissionDenied,
                         "request credentials do not match authenticated identity");
  }
  return server_->Handle(*inner);
}

Result<Bytes> AuthLoopbackTransport::Call(ByteSpan request) {
  clock_->Advance(model_.TransferCost(request.size()));
  Bytes response = gateway_->Handle(request);
  clock_->Advance(model_.TransferCost(response.size()));
  return response;
}

}  // namespace s4
