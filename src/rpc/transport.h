// Transport abstraction between S4 clients and the drive.
//
// LoopbackTransport models the paper's testbed: client and drive on the same
// 100Mb switched Ethernet segment. Each Call charges the network model for
// request and response transfer on the shared simulation clock, then invokes
// the server dispatcher synchronously (S4 RPCs are synchronous in the
// prototype).
#ifndef S4_SRC_RPC_TRANSPORT_H_
#define S4_SRC_RPC_TRANSPORT_H_

#include "src/drive/s4_drive.h"
#include "src/rpc/messages.h"
#include "src/sim/net_model.h"
#include "src/sim/sim_clock.h"

namespace s4 {

class RpcTransport {
 public:
  virtual ~RpcTransport() = default;
  virtual Result<Bytes> Call(ByteSpan request) = 0;
};

// Server-side dispatcher: decodes a request frame, invokes the drive, and
// encodes the response. Malformed frames produce error responses — the drive
// never crashes on hostile input.
class S4RpcServer {
 public:
  explicit S4RpcServer(S4Drive* drive) : drive_(drive) {}

  Bytes Handle(ByteSpan request_frame);

 private:
  RpcResponse Dispatch(const RpcRequest& req);
  S4Drive* drive_;
};

class LoopbackTransport : public RpcTransport {
 public:
  LoopbackTransport(S4RpcServer* server, SimClock* clock, NetModel model = NetModel())
      : server_(server), clock_(clock), model_(model) {}

  Result<Bytes> Call(ByteSpan request) override;

  const NetStats& stats() const { return stats_; }

 private:
  S4RpcServer* server_;
  SimClock* clock_;
  NetModel model_;
  NetStats stats_;
};

}  // namespace s4

#endif  // S4_SRC_RPC_TRANSPORT_H_
