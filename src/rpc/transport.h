// Transport abstraction between S4 clients and the drive.
//
// LoopbackTransport models the paper's testbed: client and drive on the same
// 100Mb switched Ethernet segment. Each Call charges the network model for
// request and response transfer on the shared simulation clock, then invokes
// the server dispatcher synchronously (S4 RPCs are synchronous in the
// prototype).
//
// The server is the request boundary of the observability plane: every frame
// — valid or hostile — gets an OpContext with a fresh request id, so the
// drive's spans, metrics and audit records all hang off one id per RPC.
#ifndef S4_SRC_RPC_TRANSPORT_H_
#define S4_SRC_RPC_TRANSPORT_H_

#include "src/drive/s4_drive.h"
#include "src/rpc/messages.h"
#include "src/sim/net_model.h"
#include "src/sim/sim_clock.h"

namespace s4 {

class RpcTransport {
 public:
  virtual ~RpcTransport() = default;
  virtual Result<Bytes> Call(ByteSpan request) = 0;
};

// Server-side dispatcher: decodes a request frame, invokes the drive, and
// encodes the response. Malformed frames produce error responses and an
// audit record (op kInvalid) — the drive never crashes on hostile input.
class S4RpcServer {
 public:
  // Upper bound on an accepted request frame. Anything larger is rejected
  // before decode: a hostile client must not be able to make the server
  // buffer unbounded payloads.
  static constexpr size_t kMaxFrameBytes = 16u << 20;

  // `shard` is stamped into every OpContext this server mints, so metrics
  // and traces carry the array position; -1 = standalone drive.
  explicit S4RpcServer(S4Drive* drive, int32_t shard = -1)
      : drive_(drive), shard_(shard) {
    if (shard >= 0) {
      drive_->tracer().set_pid(shard + 1);
    }
  }

  Bytes Handle(ByteSpan request_frame) { return Handle(request_frame, 0); }
  // `request_id` ties the server's spans to a transport-allocated id;
  // 0 means mint a fresh one.
  Bytes Handle(ByteSpan request_frame, uint64_t request_id);

  S4Drive* drive() const { return drive_; }
  int32_t shard() const { return shard_; }

 private:
  RpcResponse Dispatch(OpContext& ctx, const RpcRequest& req);
  S4Drive* drive_;
  int32_t shard_ = -1;
};

class LoopbackTransport : public RpcTransport {
 public:
  // `endpoint` names this link in the drive's metric registry. The unlabeled
  // "net.*" counters aggregate every transport bound to the same drive; the
  // labeled "net.<endpoint>.*" set keeps per-link accounting honest when a
  // multi-drive bench or several clients share one registry view.
  LoopbackTransport(S4RpcServer* server, SimClock* clock, NetModel model = NetModel(),
                    const std::string& endpoint = "")
      : server_(server), clock_(clock), model_(model) {
    MetricRegistry& reg = server_->drive()->metrics();
    messages_sent_ = reg.GetCounter("net.messages_sent");
    bytes_sent_ = reg.GetCounter("net.bytes_sent");
    messages_received_ = reg.GetCounter("net.messages_received");
    bytes_received_ = reg.GetCounter("net.bytes_received");
    if (!endpoint.empty()) {
      std::string prefix = "net." + endpoint + ".";
      ep_messages_sent_ = reg.GetCounter(prefix + "messages_sent");
      ep_bytes_sent_ = reg.GetCounter(prefix + "bytes_sent");
      ep_messages_received_ = reg.GetCounter(prefix + "messages_received");
      ep_bytes_received_ = reg.GetCounter(prefix + "bytes_received");
    }
  }

  Result<Bytes> Call(ByteSpan request) override;

  // Per-transport counts (source of truth for this link); the drive's metric
  // registry aggregates the same quantities across all transports. A value
  // snapshot: the live accumulator is atomic so concurrent executor workers
  // pushing frames through one endpoint never race on the counts.
  NetStats stats() const { return stats_.Snapshot(); }

 private:
  S4RpcServer* server_;
  SimClock* clock_;
  NetModel model_;
  AtomicNetStats stats_;
  Counter* messages_sent_;
  Counter* bytes_sent_;
  Counter* messages_received_;
  Counter* bytes_received_;
  // Labeled per-endpoint counters; null when the link is anonymous.
  Counter* ep_messages_sent_ = nullptr;
  Counter* ep_bytes_sent_ = nullptr;
  Counter* ep_messages_received_ = nullptr;
  Counter* ep_bytes_received_ = nullptr;
};

}  // namespace s4

#endif  // S4_SRC_RPC_TRANSPORT_H_
