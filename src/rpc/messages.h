// RPC wire messages for the S4 protocol (Table 1).
//
// A single generic request/response pair keeps the codec small; unused
// fields stay at their defaults and encode compactly as varint zeros. Every
// frame is CRC-protected: the drive sits behind a security perimeter and
// must not trust the transport.
#ifndef S4_SRC_RPC_MESSAGES_H_
#define S4_SRC_RPC_MESSAGES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/audit/audit_log.h"
#include "src/object/types.h"
#include "src/util/codec.h"

namespace s4 {

struct RpcRequest {
  RpcOp op = RpcOp::kRead;
  Credentials creds;
  ObjectId object = kInvalidObjectId;
  uint64_t offset = 0;
  uint64_t length = 0;
  std::optional<SimTime> at;  // time-based access (Table 1 "yes" rows)
  Bytes data;                 // write/append payload or attr blob
  std::string name;           // partition name
  AclEntry acl_entry;         // SetACL
  UserId user = 0;            // GetACLByUser
  uint32_t index = 0;         // GetACLByIndex
  SimTime from = 0;           // Flush / FlushO
  SimTime to = 0;
  SimDuration window = 0;     // SetWindow

  Bytes Encode() const;
  static Result<RpcRequest> Decode(ByteSpan frame);
};

struct RpcResponse {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
  Bytes data;                  // read payload / attr blob
  uint64_t value = 0;          // object id, append size, ...
  ObjectAttrs attrs;
  AclEntry acl_entry;
  std::vector<std::pair<std::string, ObjectId>> partitions;
  std::vector<std::pair<SimTime, uint8_t>> versions;  // GetVersionList

  bool ok() const { return code == ErrorCode::kOk; }
  Status ToStatus() const {
    return ok() ? Status::Ok() : Status(code, message);
  }

  Bytes Encode() const;
  static Result<RpcResponse> Decode(ByteSpan frame);
};

// Vectored batch frame: N complete RpcRequest frames under one envelope and
// one transport round-trip (RpcOp::kBatch). Sub-requests reuse the single-op
// codec verbatim, so every hardening rule of RpcRequest::Decode (CRC, op
// range, field bounds) applies to each sub-request too. The whole batch is
// validated before any sub-op is dispatched: a hostile batch is rejected as
// a unit, never partially applied.
struct RpcBatchRequest {
  // Caps a batch at a size a drive can buffer without letting one client
  // monopolise the front end.
  static constexpr uint64_t kMaxSubRequests = 256;

  std::vector<RpcRequest> subs;

  Bytes Encode() const;
  static Result<RpcBatchRequest> Decode(ByteSpan frame);
};

struct RpcBatchResponse {
  std::vector<RpcResponse> subs;

  Bytes Encode() const;
  static Result<RpcBatchResponse> Decode(ByteSpan frame);
};

// Cheap peek at the frame magic: true if this looks like a batch envelope
// (full validation still happens in RpcBatchRequest::Decode).
bool IsBatchRequestFrame(ByteSpan frame);

// What a request scheduler needs to classify a frame without paying for a
// full decode: the op and the target object. Deliberately does NOT verify
// the CRC or the trailing fields — a frame that peeks one way and decodes
// another merely lands in a stricter (exclusive) scheduling class or on the
// reject path, never in a weaker one, so a hostile frame cannot buy itself
// concurrency it is not entitled to.
struct FramePeek {
  bool single = false;  // prefix parses as a single-request frame
  bool batch = false;   // batch envelope magic
  RpcOp op = RpcOp::kInvalid;
  ObjectId object = kInvalidObjectId;
};
FramePeek PeekRequestFrame(ByteSpan frame);

}  // namespace s4

#endif  // S4_SRC_RPC_MESSAGES_H_
