#include "src/rpc/client.h"

#include "src/audit/audit_chain.h"

namespace s4 {

Result<RpcResponse> S4Client::Call(RpcRequest req) {
  req.creds = creds_;
  S4_ASSIGN_OR_RETURN(Bytes frame, transport_->Call(req.Encode()));
  S4_ASSIGN_OR_RETURN(RpcResponse resp, RpcResponse::Decode(frame));
  return resp;
}

Result<std::vector<RpcResponse>> S4Client::CallBatch(std::vector<RpcRequest> reqs) {
  RpcBatchRequest batch;
  batch.subs = std::move(reqs);
  for (RpcRequest& sub : batch.subs) {
    sub.creds = creds_;
  }
  return SendBatch(std::move(batch));
}

Result<std::vector<RpcResponse>> S4Client::CallBatchPrestamped(std::vector<RpcRequest> reqs) {
  RpcBatchRequest batch;
  batch.subs = std::move(reqs);
  return SendBatch(std::move(batch));
}

Result<std::vector<RpcResponse>> S4Client::SendBatch(RpcBatchRequest batch) {
  if (batch.subs.empty()) {
    return std::vector<RpcResponse>{};
  }
  if (batch.subs.size() > RpcBatchRequest::kMaxSubRequests) {
    return Status::InvalidArgument("batch exceeds sub-request cap");
  }
  S4_ASSIGN_OR_RETURN(Bytes frame, transport_->Call(batch.Encode()));
  auto decoded = RpcBatchResponse::Decode(frame);
  if (!decoded.ok()) {
    // A rejected batch comes back as a single error response frame.
    auto single = RpcResponse::Decode(frame);
    if (single.ok() && !single->ok()) {
      return single->ToStatus();
    }
    return decoded.status();
  }
  RpcBatchResponse resp = std::move(*decoded);
  if (resp.subs.size() != batch.subs.size()) {
    return Status::DataCorruption("batch response count mismatch");
  }
  return std::move(resp.subs);
}

Result<ObjectId> S4ClientApi::Create(Bytes opaque_attrs) {
  RpcRequest req;
  req.op = RpcOp::kCreate;
  req.data = std::move(opaque_attrs);
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return resp.value;
}

Status S4ClientApi::Delete(ObjectId id) {
  RpcRequest req;
  req.op = RpcOp::kDelete;
  req.object = id;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Result<Bytes> S4ClientApi::Read(ObjectId id, uint64_t offset, uint64_t length,
                             std::optional<SimTime> at) {
  RpcRequest req;
  req.op = RpcOp::kRead;
  req.object = id;
  req.offset = offset;
  req.length = length;
  req.at = at;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return std::move(resp.data);
}

Status S4ClientApi::Write(ObjectId id, uint64_t offset, ByteSpan data) {
  RpcRequest req;
  req.op = RpcOp::kWrite;
  req.object = id;
  req.offset = offset;
  req.data.assign(data.begin(), data.end());
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Status S4ClientApi::XorWrite(ObjectId id, uint64_t offset, ByteSpan data) {
  RpcRequest req;
  req.op = RpcOp::kXorWrite;
  req.object = id;
  req.offset = offset;
  req.data.assign(data.begin(), data.end());
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Result<uint64_t> S4ClientApi::Append(ObjectId id, ByteSpan data) {
  RpcRequest req;
  req.op = RpcOp::kAppend;
  req.object = id;
  req.data.assign(data.begin(), data.end());
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return resp.value;
}

Status S4ClientApi::Truncate(ObjectId id, uint64_t new_size) {
  RpcRequest req;
  req.op = RpcOp::kTruncate;
  req.object = id;
  req.length = new_size;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Result<ObjectAttrs> S4ClientApi::GetAttr(ObjectId id, std::optional<SimTime> at) {
  RpcRequest req;
  req.op = RpcOp::kGetAttr;
  req.object = id;
  req.at = at;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return std::move(resp.attrs);
}

Status S4ClientApi::SetAttr(ObjectId id, Bytes opaque_attrs) {
  RpcRequest req;
  req.op = RpcOp::kSetAttr;
  req.object = id;
  req.data = std::move(opaque_attrs);
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Result<AclEntry> S4ClientApi::GetAclByUser(ObjectId id, UserId user, std::optional<SimTime> at) {
  RpcRequest req;
  req.op = RpcOp::kGetAclByUser;
  req.object = id;
  req.user = user;
  req.at = at;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return resp.acl_entry;
}

Result<AclEntry> S4ClientApi::GetAclByIndex(ObjectId id, uint32_t index,
                                         std::optional<SimTime> at) {
  RpcRequest req;
  req.op = RpcOp::kGetAclByIndex;
  req.object = id;
  req.index = index;
  req.at = at;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return resp.acl_entry;
}

Status S4ClientApi::SetAcl(ObjectId id, AclEntry entry) {
  RpcRequest req;
  req.op = RpcOp::kSetAcl;
  req.object = id;
  req.acl_entry = entry;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Status S4ClientApi::PCreate(const std::string& name, ObjectId id) {
  RpcRequest req;
  req.op = RpcOp::kPCreate;
  req.name = name;
  req.object = id;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Status S4ClientApi::PDelete(const std::string& name) {
  RpcRequest req;
  req.op = RpcOp::kPDelete;
  req.name = name;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Result<std::vector<std::pair<std::string, ObjectId>>> S4ClientApi::PList(
    std::optional<SimTime> at) {
  RpcRequest req;
  req.op = RpcOp::kPList;
  req.at = at;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return std::move(resp.partitions);
}

Result<ObjectId> S4ClientApi::PMount(const std::string& name, std::optional<SimTime> at) {
  RpcRequest req;
  req.op = RpcOp::kPMount;
  req.name = name;
  req.at = at;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return resp.value;
}

Status S4ClientApi::Sync() {
  RpcRequest req;
  req.op = RpcOp::kSync;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Status S4ClientApi::Flush(SimTime from, SimTime to) {
  RpcRequest req;
  req.op = RpcOp::kFlush;
  req.from = from;
  req.to = to;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Status S4ClientApi::FlushObject(ObjectId id, SimTime from, SimTime to) {
  RpcRequest req;
  req.op = RpcOp::kFlushObject;
  req.object = id;
  req.from = from;
  req.to = to;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Status S4ClientApi::SetWindow(SimDuration window) {
  RpcRequest req;
  req.op = RpcOp::kSetWindow;
  req.window = window;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  return resp.ToStatus();
}

Status S4ClientApi::AuditChallenge(AuditChainState* saved) {
  while (true) {
    RpcRequest req;
    req.op = RpcOp::kAuditChallenge;
    req.offset = saved->next_offset;
    S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
    S4_RETURN_IF_ERROR(resp.ToStatus());
    Decoder dec(resp.data);
    AuditChainState claimed;
    S4_ASSIGN_OR_RETURN(claimed.next_seq, dec.U64());
    S4_ASSIGN_OR_RETURN(claimed.next_offset, dec.U64());
    S4_ASSIGN_OR_RETURN(claimed.link, dec.U32());
    S4_ASSIGN_OR_RETURN(Bytes frames, dec.RawBytes(dec.remaining()));
    if (claimed.next_offset < saved->next_offset) {
      return Status::DataCorruption(
          "audit challenge failed: drive chain end is behind the saved state");
    }
    S4_RETURN_IF_ERROR(VerifyChallengeProof(frames, saved));
    if (saved->next_offset >= claimed.next_offset) {
      // Caught up: the drive's claimed end must be the state we verified.
      if (!(*saved == claimed)) {
        return Status::DataCorruption(
            "audit challenge failed: claimed end state diverges from verified chain");
      }
      return Status::Ok();
    }
    if (frames.empty()) {
      return Status::DataCorruption("audit challenge failed: drive made no progress");
    }
  }
}

Result<std::vector<std::pair<SimTime, uint8_t>>> S4ClientApi::GetVersionList(ObjectId id) {
  RpcRequest req;
  req.op = RpcOp::kGetVersionList;
  req.object = id;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, Call(std::move(req)));
  if (!resp.ok()) {
    return resp.ToStatus();
  }
  return std::move(resp.versions);
}

}  // namespace s4
