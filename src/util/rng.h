// Deterministic PRNG (xoshiro256**). All stochastic behaviour in workloads
// and tests flows through a seeded Rng so every run is reproducible.
#ifndef S4_SRC_UTIL_RNG_H_
#define S4_SRC_UTIL_RNG_H_

#include <cstdint>

#include "src/util/bytes.h"
#include "src/util/check.h"

namespace s4 {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    const uint64_t result = Rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    S4_CHECK(bound > 0);
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    S4_CHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Filler payloads. `compressibility` in [0,1]: 0 = random bytes,
  // 1 = highly repetitive (compressible) text-like bytes.
  Bytes RandomBytes(size_t n, double compressibility = 0.0);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace s4

#endif  // S4_SRC_UTIL_RNG_H_
