// S4_CHECK: fatal invariant assertions, always on (release builds included).
//
// Used for programmer errors only — anything a hostile client can trigger
// must be reported through Status, never through a CHECK.
#ifndef S4_SRC_UTIL_CHECK_H_
#define S4_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace s4 {

[[noreturn]] inline void CheckFailure(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "S4_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace s4

#define S4_CHECK(expr)                                 \
  do {                                                 \
    if (!(expr)) {                                     \
      ::s4::CheckFailure(__FILE__, __LINE__, #expr);   \
    }                                                  \
  } while (0)

#define S4_CHECK_OK(expr)                                                 \
  do {                                                                    \
    ::s4::Status s4_chk_ = (expr);                                        \
    if (!s4_chk_.ok()) {                                                  \
      ::s4::CheckFailure(__FILE__, __LINE__, s4_chk_.ToString().c_str()); \
    }                                                                     \
  } while (0)

#endif  // S4_SRC_UTIL_CHECK_H_
