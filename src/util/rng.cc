#include "src/util/rng.h"

namespace s4 {

Bytes Rng::RandomBytes(size_t n, double compressibility) {
  Bytes out(n);
  if (compressibility <= 0.0) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(Next());
    }
    return out;
  }
  // Text-like output: draw words from a small alphabet with run-lengths that
  // grow with compressibility, giving LZ-style compressors real matches.
  const uint64_t alphabet = compressibility >= 0.9 ? 4 : 16;
  size_t i = 0;
  while (i < n) {
    uint8_t b = static_cast<uint8_t>('a' + Below(alphabet));
    size_t run = 1 + static_cast<size_t>(compressibility * static_cast<double>(Below(24)));
    for (size_t k = 0; k < run && i < n; ++k) {
      out[i++] = b;
    }
  }
  return out;
}

}  // namespace s4
