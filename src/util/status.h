// Status and Result<T>: error propagation without exceptions.
//
// Every fallible operation in the S4 code base returns either a Status (for
// void operations) or a Result<T>. Hot paths never throw; programming errors
// (broken invariants) use S4_CHECK from check.h instead.
#ifndef S4_SRC_UTIL_STATUS_H_
#define S4_SRC_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace s4 {

// Error categories. Mirrors the failure classes the S4 RPC layer reports to
// clients (Table 1 operations) plus internal conditions.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kNotFound,          // object / partition / version does not exist
  kAlreadyExists,     // create of an existing name
  kPermissionDenied,  // ACL check failed (incl. Recovery-flag denials)
  kInvalidArgument,   // malformed request parameters
  kOutOfSpace,        // segment allocator exhausted
  kThrottled,         // space-exhaustion defense engaged (Section 3.3)
  kDataCorruption,    // checksum mismatch on read
  kFailedPrecondition,// op not valid in current state (e.g. read of deleted)
  kUnimplemented,
  kInternal,
  kUnavailable,       // device unreachable (powered off, transient I/O error)
};

// Number of defined ErrorCode values. Used for codec bound checks (a wire
// byte >= kNumErrorCodes is hostile or corrupt) and by the exhaustiveness
// test that keeps ErrorCodeName in sync with the enum.
inline constexpr uint8_t kNumErrorCodes =
    static_cast<uint8_t>(ErrorCode::kUnavailable) + 1;

// Human-readable name of an ErrorCode ("OK", "NOT_FOUND", ...). Returns
// "UNKNOWN" only for out-of-range values (hostile wire bytes); every defined
// enumerator has a distinct name, enforced by a switch without default (so a
// new ErrorCode fails -Wswitch under S4_WERROR) plus a runtime test.
const char* ErrorCodeName(ErrorCode code);

// A cheap, value-semantic status. OK statuses carry no allocation.
//
// The class is [[nodiscard]]: any call that returns a Status and ignores it
// is a compile-time diagnostic (an error under S4_WERROR=ON). Call sites that
// genuinely cannot act on a failure must write `(void)expr;` with a comment
// explaining why the error is unactionable — see tools/s4_lint.py, which
// flags bare (void) casts without a rationale.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {ErrorCode::kAlreadyExists, std::move(m)}; }
  static Status PermissionDenied(std::string m) {
    return {ErrorCode::kPermissionDenied, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {ErrorCode::kInvalidArgument, std::move(m)};
  }
  static Status OutOfSpace(std::string m) { return {ErrorCode::kOutOfSpace, std::move(m)}; }
  static Status Throttled(std::string m) { return {ErrorCode::kThrottled, std::move(m)}; }
  static Status DataCorruption(std::string m) {
    return {ErrorCode::kDataCorruption, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {ErrorCode::kFailedPrecondition, std::move(m)};
  }
  static Status Unimplemented(std::string m) { return {ErrorCode::kUnimplemented, std::move(m)}; }
  static Status Internal(std::string m) { return {ErrorCode::kInternal, std::move(m)}; }
  static Status Unavailable(std::string m) { return {ErrorCode::kUnavailable, std::move(m)}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such object".
  std::string ToString() const;

  // Equality compares the error *code* only; the message is deliberately
  // ignored. Messages are free-form human-readable detail (they embed object
  // ids, offsets, sector numbers, ...) and callers must never branch on
  // them. This keeps `st == Status::NotFound("...")` usable in tests while
  // preserving the freedom to improve diagnostics without breaking callers.
  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  ErrorCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// Result<T>: either a value or a non-OK Status. [[nodiscard]] for the same
// reason as Status: silently dropping a Result discards both the value and
// the error, which is never intentional.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(rep_);
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagate a non-OK status to the caller.
#define S4_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::s4::Status s4_status_ = (expr);     \
    if (!s4_status_.ok()) {               \
      return s4_status_;                  \
    }                                     \
  } while (0)

// Assign the value of a Result expression or propagate its status.
// Usage: S4_ASSIGN_OR_RETURN(auto blk, ReadBlock(addr));
//
// The value expression is taken variadically, so commas inside it (multiple
// call arguments, template arguments) need no extra parentheses. A declared
// type containing commas must be wrapped in parentheses, which the macro
// strips:
//   S4_ASSIGN_OR_RETURN((std::pair<ObjectId, SimTime> hit), Lookup(name));
#define S4_ASSIGN_OR_RETURN(lhs, ...)                    \
  S4_ASSIGN_OR_RETURN_IMPL_(S4_CONCAT_(s4_res_, __LINE__), lhs, __VA_ARGS__)
#define S4_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, ...)         \
  auto tmp = (__VA_ARGS__);                              \
  if (!tmp.ok()) {                                       \
    return tmp.status();                                 \
  }                                                      \
  S4_STRIP_PARENS_(lhs) = std::move(tmp).value()
#define S4_CONCAT_(a, b) S4_CONCAT_IMPL_(a, b)
#define S4_CONCAT_IMPL_(a, b) a##b

// S4_STRIP_PARENS_(x)   -> x
// S4_STRIP_PARENS_((x)) -> x
// Expands the argument through a probe macro that swallows one optional
// layer of parentheses, then pastes away the probe's name.
#define S4_STRIP_PARENS_(x) S4_SP_ESC_(S4_SP_ISH_ x)
#define S4_SP_ISH_(...) S4_SP_ISH_ __VA_ARGS__
#define S4_SP_ESC_(...) S4_SP_ESC2_(__VA_ARGS__)
#define S4_SP_ESC2_(...) S4_SP_VAN_##__VA_ARGS__
#define S4_SP_VAN_S4_SP_ISH_

}  // namespace s4

#endif  // S4_SRC_UTIL_STATUS_H_
