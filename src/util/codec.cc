#include "src/util/codec.h"

namespace s4 {

void Encoder::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutBytes(ByteSpan b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

void Encoder::PutLengthPrefixed(ByteSpan b) {
  PutVarint(b.size());
  PutBytes(b);
}

void Encoder::PutString(const std::string& s) {
  PutLengthPrefixed(ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

Result<uint8_t> Decoder::U8() {
  if (remaining() < 1) {
    return Status::DataCorruption("decoder underrun (u8)");
  }
  return data_[pos_++];
}

Result<uint16_t> Decoder::U16() {
  if (remaining() < 2) {
    return Status::DataCorruption("decoder underrun (u16)");
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Decoder::U32() {
  if (remaining() < 4) {
    return Status::DataCorruption("decoder underrun (u32)");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::U64() {
  if (remaining() < 8) {
    return Status::DataCorruption("decoder underrun (u64)");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Decoder::I64() {
  S4_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<uint64_t> Decoder::Varint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) {
      return Status::DataCorruption("decoder underrun (varint)");
    }
    if (shift >= 64) {
      return Status::DataCorruption("varint too long");
    }
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  return v;
}

Result<Bytes> Decoder::RawBytes(size_t n) {
  if (remaining() < n) {
    return Status::DataCorruption("decoder underrun (bytes)");
  }
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Result<Bytes> Decoder::LengthPrefixed() {
  S4_ASSIGN_OR_RETURN(uint64_t n, Varint());
  if (n > remaining()) {
    return Status::DataCorruption("length prefix exceeds buffer");
  }
  return RawBytes(n);
}

Result<std::string> Decoder::String() {
  S4_ASSIGN_OR_RETURN(Bytes b, LengthPrefixed());
  return std::string(b.begin(), b.end());
}

Status Decoder::Skip(size_t n) {
  if (remaining() < n) {
    return Status::DataCorruption("decoder underrun (skip)");
  }
  pos_ += n;
  return Status::Ok();
}

}  // namespace s4
