// Minimal leveled logger. Off by default in tests/benchmarks; the drive's
// internal event trace uses kDebug.
#ifndef S4_SRC_UTIL_LOGGING_H_
#define S4_SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace s4 {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace s4

#define S4_LOG(level)                                             \
  if (::s4::LogLevel::level < ::s4::GetLogLevel()) {              \
  } else                                                          \
    ::s4::LogStream(::s4::LogLevel::level, __FILE__, __LINE__)

#endif  // S4_SRC_UTIL_LOGGING_H_
