// Byte buffer aliases and helpers shared across the on-disk codecs.
#ifndef S4_SRC_UTIL_BYTES_H_
#define S4_SRC_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace s4 {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

inline Bytes BytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }

inline std::string StringOf(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace s4

#endif  // S4_SRC_UTIL_BYTES_H_
