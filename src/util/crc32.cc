#include "src/util/crc32.h"

#include <array>

namespace s4 {
namespace {

// CRC32C polynomial (reflected): 0x82F63B78.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  return kTable;
}

}  // namespace

uint32_t Crc32cInit() { return 0xFFFFFFFFu; }

uint32_t Crc32cExtend(uint32_t state, ByteSpan data) {
  const auto& table = Table();
  for (uint8_t b : data) {
    state = table[(state ^ b) & 0xFF] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32cFinish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32c(ByteSpan data) { return Crc32cFinish(Crc32cExtend(Crc32cInit(), data)); }

}  // namespace s4
