#include "src/util/logging.h"

#include <cstdio>

namespace s4 {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line, msg.c_str());
}

}  // namespace s4
