#include "src/util/sync.h"

#include <cstdio>
#include <cstdlib>

namespace s4 {
namespace internal {
namespace {

// Per-thread set of held locks. A fixed array keeps the checker allocation-
// free (it runs inside every Lock/Unlock); depth is bounded by the lock
// hierarchy, which is four ranks deep today.
struct HeldLock {
  const void* mu;
  int rank;
  const char* name;
};

constexpr int kMaxHeld = 32;

thread_local HeldLock tls_held[kMaxHeld];
thread_local int tls_held_count = 0;

[[noreturn]] void RankFailure(const char* what, const char* acquiring_name,
                              int acquiring_rank, const char* held_name,
                              int held_rank) {
  std::fprintf(stderr,
               "s4 lock-rank violation: %s \"%s\" (rank %d) while holding "
               "\"%s\" (rank %d); see the lock hierarchy in DESIGN.md "
               "section 16\n",
               what, acquiring_name, acquiring_rank, held_name, held_rank);
  std::abort();
}

}  // namespace

void PushLockRank(const void* mu, int rank, const char* name) {
  for (int i = 0; i < tls_held_count; ++i) {
    if (tls_held[i].mu == mu) {
      RankFailure("recursive acquisition of", name, rank, tls_held[i].name,
                  tls_held[i].rank);
    }
    if (tls_held[i].rank >= rank) {
      RankFailure("acquiring", name, rank, tls_held[i].name,
                  tls_held[i].rank);
    }
  }
  if (tls_held_count >= kMaxHeld) {
    std::fprintf(stderr,
                 "s4 lock-rank checker: thread holds more than %d locks "
                 "(acquiring \"%s\")\n",
                 kMaxHeld, name);
    std::abort();
  }
  tls_held[tls_held_count++] = HeldLock{mu, rank, name};
}

void PopLockRank(const void* mu) {
  // Search newest-first: unlocks are almost always LIFO, but a CondVar wait
  // may release a mid-stack entry while leaf locks churn above it.
  for (int i = tls_held_count - 1; i >= 0; --i) {
    if (tls_held[i].mu != mu) {
      continue;
    }
    for (int j = i; j + 1 < tls_held_count; ++j) {
      tls_held[j] = tls_held[j + 1];
    }
    --tls_held_count;
    return;
  }
  std::fprintf(stderr,
               "s4 lock-rank checker: releasing a lock this thread does not "
               "hold\n");
  std::abort();
}

}  // namespace internal
}  // namespace s4
