// Simulated time types. All timestamps in S4 (version times, audit records,
// detection windows) are SimTime: microseconds on the simulation clock.
#ifndef S4_SRC_UTIL_TIME_H_
#define S4_SRC_UTIL_TIME_H_

#include <cstdint>

namespace s4 {

// Microseconds since simulation start.
using SimTime = int64_t;
// A span of simulated microseconds.
using SimDuration = int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

inline double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
inline double ToMillis(SimDuration d) { return static_cast<double>(d) / kMillisecond; }

}  // namespace s4

#endif  // S4_SRC_UTIL_TIME_H_
