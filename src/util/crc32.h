// CRC32C (Castagnoli) — integrity checksums for sectors, segments, journal
// sectors, and RPC frames.
#ifndef S4_SRC_UTIL_CRC32_H_
#define S4_SRC_UTIL_CRC32_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace s4 {

// One-shot CRC32C over a buffer.
uint32_t Crc32c(ByteSpan data);

// Incremental form: crc = Crc32cExtend(crc, chunk) chained over chunks,
// starting from Crc32cInit() and finished with Crc32cFinish().
uint32_t Crc32cInit();
uint32_t Crc32cExtend(uint32_t state, ByteSpan data);
uint32_t Crc32cFinish(uint32_t state);

}  // namespace s4

#endif  // S4_SRC_UTIL_CRC32_H_
