#include "src/util/status.h"

namespace s4 {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfSpace:
      return "OUT_OF_SPACE";
    case ErrorCode::kThrottled:
      return "THROTTLED";
    case ErrorCode::kDataCorruption:
      return "DATA_CORRUPTION";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace s4
