// Little-endian wire/on-disk codec.
//
// Every persistent structure (superblock, segment summaries, journal sectors,
// inode checkpoints, audit records) and every RPC message is serialised with
// Encoder and parsed with Decoder. Decoder never aborts on malformed input —
// it reports kDataCorruption / kInvalidArgument so corrupted sectors and
// hostile RPC payloads are handled gracefully.
#ifndef S4_SRC_UTIL_CODEC_H_
#define S4_SRC_UTIL_CODEC_H_

#include <cstdint>
#include <string>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace s4 {

class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  // Unsigned LEB128; compact for the many small counts in journal entries.
  void PutVarint(uint64_t v);
  void PutBytes(ByteSpan b);
  // Length-prefixed (varint) byte string.
  void PutLengthPrefixed(ByteSpan b);
  void PutString(const std::string& s);

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Decoder {
 public:
  explicit Decoder(ByteSpan data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<uint64_t> Varint();
  // Reads exactly n raw bytes.
  Result<Bytes> RawBytes(size_t n);
  // Varint-length-prefixed byte string.
  Result<Bytes> LengthPrefixed();
  Result<std::string> String();

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }
  Status Skip(size_t n);

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace s4

#endif  // S4_SRC_UTIL_CODEC_H_
